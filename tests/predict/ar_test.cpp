#include "predict/ar.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>

#include "util/rng.hpp"

namespace mmog::predict {
namespace {

util::TimeSeries ar1_series(std::size_t n, double phi, double mean,
                            std::uint64_t seed) {
  util::Rng rng(seed);
  util::TimeSeries ts(120.0);
  double x = mean;
  for (std::size_t t = 0; t < n; ++t) {
    x = mean + phi * (x - mean) + rng.normal(0.0, 1.0);
    ts.push_back(x);
  }
  return ts;
}

TEST(ArModelTest, FitRejectsBadInputs) {
  const util::TimeSeries tiny(120.0, {1, 2});
  std::vector<util::TimeSeries> hist = {tiny};
  EXPECT_THROW(ArModel::fit(0, hist), std::invalid_argument);
  EXPECT_THROW(ArModel::fit(3, hist), std::invalid_argument);
}

TEST(ArModelTest, RecoversAr1Coefficient) {
  const auto series = ar1_series(8000, 0.8, 100.0, 3);
  std::vector<util::TimeSeries> hist = {series};
  const auto model = ArModel::fit(1, hist);
  ASSERT_EQ(model.order(), 1u);
  EXPECT_NEAR(model.coefficients()[0], 0.8, 0.05);
  EXPECT_NEAR(model.mean(), 100.0, 1.0);
}

TEST(ArModelTest, ConstantSeriesPredictsTheConstant) {
  const util::TimeSeries constant(120.0, std::vector<double>(50, 42.0));
  std::vector<util::TimeSeries> hist = {constant};
  const auto model = ArModel::fit(2, hist);
  const std::vector<double> recent = {42.0, 42.0};
  EXPECT_NEAR(model.predict_next(recent), 42.0, 1e-9);
}

TEST(ArModelTest, PredictNextUsesRecentValues) {
  const auto series = ar1_series(4000, 0.9, 50.0, 7);
  std::vector<util::TimeSeries> hist = {series};
  const auto model = ArModel::fit(1, hist);
  // Above-mean recent value -> prediction above mean but pulled towards it.
  const std::vector<double> high = {80.0};
  const double pred = model.predict_next(high);
  EXPECT_GT(pred, model.mean());
  EXPECT_LT(pred, 80.0 + 2.0);
}

TEST(ArModelTest, EmptyRecentPredictsMean) {
  const auto series = ar1_series(1000, 0.5, 30.0, 11);
  std::vector<util::TimeSeries> hist = {series};
  const auto model = ArModel::fit(2, hist);
  EXPECT_NEAR(model.predict_next({}), model.mean(), 1e-9);
}

TEST(ArModelTest, PredictionsAreNonNegative) {
  const auto series = ar1_series(1000, 0.9, 2.0, 13);
  std::vector<util::TimeSeries> hist = {series};
  const auto model = ArModel::fit(1, hist);
  const std::vector<double> recent = {0.0};
  EXPECT_GE(model.predict_next(recent), 0.0);
}

TEST(ArPredictorTest, RejectsNullModel) {
  EXPECT_THROW(ArPredictor(nullptr), std::invalid_argument);
}

TEST(ArPredictorTest, BeatsMeanPredictionOnAr1Signal) {
  const auto train = ar1_series(4000, 0.85, 60.0, 17);
  std::vector<util::TimeSeries> hist = {train};
  auto model = std::make_shared<const ArModel>(ArModel::fit(1, hist));
  ArPredictor p(model);
  const auto eval = ar1_series(2000, 0.85, 60.0, 18);
  double ar_err = 0.0, mean_err = 0.0;
  for (std::size_t t = 0; t + 1 < eval.size(); ++t) {
    p.observe(eval[t]);
    ar_err += std::abs(p.predict() - eval[t + 1]);
    mean_err += std::abs(60.0 - eval[t + 1]);
  }
  EXPECT_LT(ar_err, 0.8 * mean_err);
}

TEST(ArPredictorTest, HistoryShorterThanOrderMatchesSpanPrediction) {
  // With fewer observations than the model order, the predictor must hand
  // the model exactly the window it has — not stale or uninitialized slots.
  const auto series = ar1_series(4000, 0.8, 50.0, 23);
  std::vector<util::TimeSeries> hist = {series};
  auto model = std::make_shared<const ArModel>(ArModel::fit(3, hist));
  ArPredictor p(model);
  p.observe(70.0);
  const std::vector<double> one = {70.0};
  EXPECT_DOUBLE_EQ(p.predict(), model->predict_next(one));
  p.observe(55.0);
  const std::vector<double> two = {70.0, 55.0};
  EXPECT_DOUBLE_EQ(p.predict(), model->predict_next(two));
}

TEST(ArPredictorTest, KeepsExactlyTheLastOrderObservations) {
  // The ring window slides: after many observations, predict() must agree
  // bit for bit with handing the model the last `order` values directly —
  // including after the ring has wrapped several times.
  const auto series = ar1_series(4000, 0.8, 50.0, 29);
  std::vector<util::TimeSeries> hist = {series};
  auto model = std::make_shared<const ArModel>(ArModel::fit(3, hist));
  ArPredictor p(model);
  std::vector<double> seen;
  for (int t = 0; t < 17; ++t) {
    const double v = 40.0 + 3.0 * t;
    p.observe(v);
    seen.push_back(v);
    const std::size_t n = std::min<std::size_t>(seen.size(), 3);
    const std::vector<double> window(seen.end() - n, seen.end());
    ASSERT_DOUBLE_EQ(p.predict(), model->predict_next(window)) << "t=" << t;
  }
}

TEST(ArPredictorTest, MakeFreshSharesModelNotHistory) {
  const auto series = ar1_series(500, 0.7, 10.0, 19);
  std::vector<util::TimeSeries> hist = {series};
  auto model = std::make_shared<const ArModel>(ArModel::fit(1, hist));
  ArPredictor p(model);
  p.observe(100.0);
  auto fresh = p.make_fresh();
  EXPECT_EQ(fresh->name(), "AR");
  // The fresh instance has no history (predictor contract: 0 before any
  // observation) but shares the fitted model.
  EXPECT_DOUBLE_EQ(fresh->predict(), 0.0);
  fresh->observe(model->mean());
  EXPECT_NEAR(fresh->predict(), model->mean(), 1e-6);
}

}  // namespace
}  // namespace mmog::predict
