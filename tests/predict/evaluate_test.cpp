#include "predict/evaluate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>

#include "predict/simple.hpp"

namespace mmog::predict {
namespace {

TEST(SeriesErrorTest, PerfectPredictorScoresZero) {
  // A constant series is predicted perfectly by Last value after warm-up.
  LastValuePredictor p;
  const std::vector<double> series(100, 50.0);
  EXPECT_DOUBLE_EQ(series_prediction_error(p, series, 1).value(), 0.0);
}

TEST(SeriesErrorTest, KnownErrorValue) {
  // Series 10, 20, 10, 20... Last value is always off by 10; the paper's
  // metric = sum |err| / sum actual * 100.
  LastValuePredictor p;
  std::vector<double> series;
  for (int i = 0; i < 10; ++i) series.push_back(i % 2 == 0 ? 10.0 : 20.0);
  // From t=1..9: |err| = 10 each (9 errors); actual sum = 5*20 + 4*10 = 140.
  const double expected = 9.0 * 10.0 / 140.0 * 100.0;
  EXPECT_NEAR(series_prediction_error(p, series, 1).value(), expected, 1e-9);
}

TEST(SeriesErrorTest, RejectsBadRanges) {
  LastValuePredictor p;
  const std::vector<double> series = {1.0, 2.0};
  EXPECT_THROW(series_prediction_error(p, series, 0), std::invalid_argument);
  EXPECT_THROW(series_prediction_error(p, series, 2), std::invalid_argument);
  const std::vector<double> single = {1.0};
  EXPECT_THROW(series_prediction_error(p, single, 1), std::invalid_argument);
}

TEST(SeriesErrorTest, ZeroDemandWindowIsUndefined) {
  // An all-zero window used to score 0 % — indistinguishable from a perfect
  // prediction even when the predictor was wrong on every sample. The metric
  // is undefined there and must say so.
  LastValuePredictor p;
  const std::vector<double> series(10, 0.0);
  EXPECT_FALSE(series_prediction_error(p, series, 1).has_value());
}

TEST(SeriesErrorTest, ZeroWindowAfterNonZeroWarmupIsUndefined) {
  // Warm-up demand is not scored, so a non-zero prefix must not rescue a
  // zero evaluation window. Last value predicts 10 at t=1 (|err| = 10), yet
  // the window total is 0 — the old code reported 0 % here.
  LastValuePredictor p;
  const std::vector<double> series = {10.0, 0.0, 0.0};
  EXPECT_FALSE(series_prediction_error(p, series, 1).has_value());
}

TEST(ZonesErrorTest, ScoresEveryZoneSample) {
  // Two anti-phase square waves: the summed world total is constant, but
  // the paper's metric scores each sub-zone sample, so the per-zone errors
  // of a Last-value predictor do NOT cancel.
  std::vector<util::TimeSeries> zones;
  util::TimeSeries a(120.0), b(120.0);
  for (int t = 0; t < 50; ++t) {
    a.push_back(t % 2 == 0 ? 10.0 : 20.0);
    b.push_back(t % 2 == 0 ? 20.0 : 10.0);
  }
  zones.push_back(a);
  zones.push_back(b);
  const PredictorFactory factory = [] {
    return std::make_unique<LastValuePredictor>();
  };
  // Every zone sample is off by 10 against an average value of 15.
  EXPECT_NEAR(zones_prediction_error(factory, zones, 1).value(),
              10.0 / 15.0 * 100.0, 1e-9);
}

TEST(ZonesErrorTest, MatchesSingleSeriesWhenOneZone) {
  std::vector<double> values;
  for (int t = 0; t < 60; ++t) {
    values.push_back(100.0 +
                     30.0 * std::sin(2.0 * std::numbers::pi * t / 20.0));
  }
  std::vector<util::TimeSeries> zones = {util::TimeSeries(120.0, values)};
  const PredictorFactory factory = [] {
    return std::make_unique<LastValuePredictor>();
  };
  LastValuePredictor single;
  EXPECT_NEAR(zones_prediction_error(factory, zones, 5).value(),
              series_prediction_error(single, values, 5).value(), 1e-9);
}

TEST(ZonesErrorTest, AllZeroZonesAreUndefined) {
  std::vector<util::TimeSeries> zones = {
      util::TimeSeries(120.0, std::vector<double>(20, 0.0)),
      util::TimeSeries(120.0, std::vector<double>(20, 0.0))};
  const PredictorFactory factory = [] {
    return std::make_unique<LastValuePredictor>();
  };
  EXPECT_FALSE(zones_prediction_error(factory, zones, 1).has_value());
}

TEST(ZonesErrorTest, RejectsEmptyInput) {
  const PredictorFactory factory = [] {
    return std::make_unique<LastValuePredictor>();
  };
  EXPECT_THROW(zones_prediction_error(factory, {}, 1), std::invalid_argument);
}

TEST(TimePredictionsTest, ReturnsOneSamplePerCall) {
  AveragePredictor p;
  const std::vector<double> series = {1, 2, 3, 4, 5};
  const auto micros = time_predictions(p, series, 3);
  EXPECT_EQ(micros.size(), 15u);
  for (double m : micros) EXPECT_GE(m, 0.0);
}

}  // namespace
}  // namespace mmog::predict
