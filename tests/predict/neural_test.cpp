#include "predict/neural.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>

#include "util/timeseries.hpp"

namespace mmog::predict {
namespace {

util::TimeSeries sine_series(std::size_t n, double period = 120.0,
                             double level = 500.0, double amp = 300.0) {
  util::TimeSeries ts(util::kSampleStepSeconds);
  for (std::size_t t = 0; t < n; ++t) {
    ts.push_back(level +
                 amp * std::sin(2.0 * std::numbers::pi *
                                static_cast<double>(t) / period));
  }
  return ts;
}

NeuralConfig fast_config() {
  NeuralConfig cfg;
  cfg.train.max_eras = 60;
  cfg.train.patience = 10;
  return cfg;
}

TEST(NeuralModelTest, FitRejectsEmptyHistory) {
  EXPECT_THROW(NeuralModel::fit(fast_config(), util::TimeSeries(120.0)),
               std::invalid_argument);
}

TEST(NeuralModelTest, FitRejectsTooShortHistory) {
  const util::TimeSeries tiny(120.0, {1, 2, 3});
  EXPECT_THROW(NeuralModel::fit(fast_config(), tiny), std::invalid_argument);
}

TEST(NeuralModelTest, FitRejectsZeroWindow) {
  auto cfg = fast_config();
  cfg.input_window = 0;
  EXPECT_THROW(NeuralModel::fit(cfg, sine_series(100)),
               std::invalid_argument);
}

TEST(NeuralModelTest, LearnsASmoothPeriodicSignal) {
  const auto series = sine_series(600);
  const auto model = NeuralModel::fit(fast_config(), series);
  // One-step-ahead predictions on the training signal should be accurate to
  // a few percent of the amplitude.
  double abs_err = 0.0, total = 0.0;
  for (std::size_t t = 50; t + 1 < series.size(); ++t) {
    std::vector<double> recent;
    for (std::size_t k = t >= 10 ? t - 10 : 0; k <= t; ++k) {
      recent.push_back(series[k]);
    }
    abs_err += std::abs(model.predict_next(recent) - series[t + 1]);
    total += series[t + 1];
  }
  EXPECT_LT(abs_err / total, 0.05);
}

TEST(NeuralModelTest, PredictNextHandlesShortInput) {
  const auto model = NeuralModel::fit(fast_config(), sine_series(300));
  const std::vector<double> one = {500.0};
  const double pred = model.predict_next(one);
  EXPECT_TRUE(std::isfinite(pred));
  EXPECT_GE(pred, 0.0);
  EXPECT_DOUBLE_EQ(model.predict_next({}), 0.0);
}

TEST(NeuralModelTest, PredictionsAreNonNegative) {
  // Entity counts cannot go below zero even when the signal dives.
  util::TimeSeries diving(util::kSampleStepSeconds);
  for (int t = 0; t < 300; ++t) {
    diving.push_back(std::max(0.0, 300.0 - t * 2.0));
  }
  const auto model = NeuralModel::fit(fast_config(), diving);
  const std::vector<double> recent = {8.0, 6.0, 4.0, 2.0, 0.0, 0.0};
  EXPECT_GE(model.predict_next(recent), 0.0);
}

TEST(NeuralModelTest, FitPoolsMultipleHistories) {
  std::vector<util::TimeSeries> histories = {sine_series(200),
                                             sine_series(200, 90.0, 300.0)};
  const auto model = NeuralModel::fit(fast_config(), histories);
  EXPECT_GT(model.train_result().eras, 0u);
}

TEST(NeuralModelTest, TrainingIsDeterministicGivenSeed) {
  const auto series = sine_series(300);
  const auto a = NeuralModel::fit(fast_config(), series);
  const auto b = NeuralModel::fit(fast_config(), series);
  const std::vector<double> recent = {500, 520, 540, 560, 580, 600};
  EXPECT_DOUBLE_EQ(a.predict_next(recent), b.predict_next(recent));
}

TEST(NeuralPredictorTest, RejectsNullModel) {
  EXPECT_THROW(NeuralPredictor(nullptr), std::invalid_argument);
}

TEST(NeuralPredictorTest, TracksObservedSignal) {
  const auto series = sine_series(600);
  auto model = std::make_shared<const NeuralModel>(
      NeuralModel::fit(fast_config(), series));
  NeuralPredictor p(model);
  EXPECT_EQ(p.name(), "Neural");
  EXPECT_DOUBLE_EQ(p.predict(), 0.0);  // no history yet
  double abs_err = 0.0, total = 0.0;
  for (std::size_t t = 0; t + 1 < series.size(); ++t) {
    p.observe(series[t]);
    if (t > 50) {
      abs_err += std::abs(p.predict() - series[t + 1]);
      total += series[t + 1];
    }
  }
  EXPECT_LT(abs_err / total, 0.05);
}

TEST(NeuralPredictorTest, MakeFreshSharesModelButNotHistory) {
  auto model = std::make_shared<const NeuralModel>(
      NeuralModel::fit(fast_config(), sine_series(300)));
  NeuralPredictor p(model);
  p.observe(500.0);
  auto fresh = p.make_fresh();
  EXPECT_DOUBLE_EQ(fresh->predict(), 0.0);
  EXPECT_NE(p.predict(), 0.0);
}

}  // namespace
}  // namespace mmog::predict
