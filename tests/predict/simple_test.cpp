#include "predict/simple.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace mmog::predict {
namespace {

TEST(LastValueTest, PredictsLastObservation) {
  LastValuePredictor p;
  EXPECT_DOUBLE_EQ(p.predict(), 0.0);
  p.observe(5.0);
  EXPECT_DOUBLE_EQ(p.predict(), 5.0);
  p.observe(7.0);
  EXPECT_DOUBLE_EQ(p.predict(), 7.0);
  EXPECT_EQ(p.name(), "Last value");
}

TEST(AverageTest, PredictsRunningMean) {
  AveragePredictor p;
  EXPECT_DOUBLE_EQ(p.predict(), 0.0);
  p.observe(2.0);
  p.observe(4.0);
  p.observe(6.0);
  EXPECT_DOUBLE_EQ(p.predict(), 4.0);
  EXPECT_EQ(p.name(), "Average");
}

TEST(MovingAverageTest, WindowLimitsHistory) {
  MovingAveragePredictor p(3);
  p.observe(1.0);
  p.observe(2.0);
  p.observe(3.0);
  EXPECT_DOUBLE_EQ(p.predict(), 2.0);
  p.observe(10.0);  // pushes out the 1.0
  EXPECT_DOUBLE_EQ(p.predict(), 5.0);
}

TEST(MovingAverageTest, PartialWindowUsesAvailableSamples) {
  MovingAveragePredictor p(5);
  EXPECT_DOUBLE_EQ(p.predict(), 0.0);
  p.observe(4.0);
  EXPECT_DOUBLE_EQ(p.predict(), 4.0);
}

TEST(MovingAverageTest, RejectsZeroWindow) {
  EXPECT_THROW(MovingAveragePredictor(0), std::invalid_argument);
}

TEST(SlidingMedianTest, OddWindowTakesMiddle) {
  SlidingWindowMedianPredictor p(3);
  p.observe(10.0);
  p.observe(1.0);
  p.observe(5.0);
  EXPECT_DOUBLE_EQ(p.predict(), 5.0);
}

TEST(SlidingMedianTest, EvenCountAveragesMiddlePair) {
  SlidingWindowMedianPredictor p(5);
  p.observe(1.0);
  p.observe(3.0);
  p.observe(5.0);
  p.observe(7.0);
  EXPECT_DOUBLE_EQ(p.predict(), 4.0);
}

TEST(SlidingMedianTest, IsRobustToOutliers) {
  SlidingWindowMedianPredictor p(5);
  for (double v : {10.0, 10.0, 1000.0, 10.0, 10.0}) p.observe(v);
  EXPECT_DOUBLE_EQ(p.predict(), 10.0);
}

TEST(SlidingMedianTest, RejectsZeroWindow) {
  EXPECT_THROW(SlidingWindowMedianPredictor(0), std::invalid_argument);
}

TEST(ExpSmoothingTest, FirstObservationPrimesState) {
  ExponentialSmoothingPredictor p(0.5);
  p.observe(10.0);
  EXPECT_DOUBLE_EQ(p.predict(), 10.0);
}

TEST(ExpSmoothingTest, BlendsWithAlpha) {
  ExponentialSmoothingPredictor p(0.25);
  p.observe(0.0);
  p.observe(100.0);
  EXPECT_DOUBLE_EQ(p.predict(), 25.0);
  p.observe(100.0);
  EXPECT_DOUBLE_EQ(p.predict(), 43.75);
}

TEST(ExpSmoothingTest, AlphaOneIsLastValue) {
  ExponentialSmoothingPredictor p(1.0);
  p.observe(3.0);
  p.observe(9.0);
  EXPECT_DOUBLE_EQ(p.predict(), 9.0);
}

TEST(ExpSmoothingTest, NameIncludesPercentage) {
  EXPECT_EQ(ExponentialSmoothingPredictor(0.25).name(), "Exp. smoothing 25%");
  EXPECT_EQ(ExponentialSmoothingPredictor(0.50).name(), "Exp. smoothing 50%");
  EXPECT_EQ(ExponentialSmoothingPredictor(0.75).name(), "Exp. smoothing 75%");
}

TEST(ExpSmoothingTest, RejectsBadAlpha) {
  EXPECT_THROW(ExponentialSmoothingPredictor(0.0), std::invalid_argument);
  EXPECT_THROW(ExponentialSmoothingPredictor(1.5), std::invalid_argument);
}

TEST(MakeFreshTest, ProducesEmptyCloneOfSameType) {
  MovingAveragePredictor p(4);
  p.observe(100.0);
  auto fresh = p.make_fresh();
  EXPECT_EQ(fresh->name(), p.name());
  EXPECT_DOUBLE_EQ(fresh->predict(), 0.0);  // no history carried over
  fresh->observe(2.0);
  EXPECT_DOUBLE_EQ(fresh->predict(), 2.0);
  EXPECT_DOUBLE_EQ(p.predict(), 100.0);  // original untouched
}

TEST(MakeFreshTest, PreservesParameters) {
  ExponentialSmoothingPredictor p(0.75);
  auto fresh = p.make_fresh();
  fresh->observe(0.0);
  fresh->observe(100.0);
  EXPECT_DOUBLE_EQ(fresh->predict(), 75.0);  // alpha carried over
}

}  // namespace
}  // namespace mmog::predict
