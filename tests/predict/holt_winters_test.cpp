#include "predict/holt_winters.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "predict/simple.hpp"

namespace mmog::predict {
namespace {

TEST(HoltTest, RejectsBadParameters) {
  EXPECT_THROW(HoltPredictor(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(HoltPredictor(0.5, 1.5), std::invalid_argument);
}

TEST(HoltTest, TracksALinearRampWithoutLag) {
  HoltPredictor p(0.5, 0.3);
  // Ramp: 100, 110, 120, ... — after convergence the one-step forecast
  // should be close to the next value, unlike plain smoothing.
  double value = 100.0;
  for (int i = 0; i < 200; ++i) {
    p.observe(value);
    value += 10.0;
  }
  EXPECT_NEAR(p.predict(), value, 1.0);
  EXPECT_NEAR(p.trend(), 10.0, 0.5);
}

TEST(HoltTest, ConstantSignalHasZeroTrend) {
  HoltPredictor p;
  for (int i = 0; i < 50; ++i) p.observe(42.0);
  EXPECT_NEAR(p.predict(), 42.0, 1e-9);
  EXPECT_NEAR(p.trend(), 0.0, 1e-9);
}

TEST(HoltTest, PredictionsAreNonNegative) {
  HoltPredictor p(0.9, 0.9);
  p.observe(10.0);
  p.observe(1.0);
  p.observe(0.0);
  EXPECT_GE(p.predict(), 0.0);
}

TEST(HoltTest, MakeFreshResets) {
  HoltPredictor p;
  p.observe(100.0);
  auto fresh = p.make_fresh();
  EXPECT_DOUBLE_EQ(fresh->predict(), 0.0);
}

TEST(HoltWintersTest, RejectsBadParameters) {
  EXPECT_THROW(HoltWintersPredictor(0), std::invalid_argument);
  EXPECT_THROW(HoltWintersPredictor(10, 0.0), std::invalid_argument);
  EXPECT_THROW(HoltWintersPredictor(10, 0.5, 0.5, 2.0),
               std::invalid_argument);
}

TEST(HoltWintersTest, SeasonalInitializesAfterOneSeason) {
  HoltWintersPredictor p(24);
  for (int i = 0; i < 23; ++i) p.observe(static_cast<double>(i % 24));
  EXPECT_FALSE(p.seasonal_ready());
  p.observe(23.0);
  EXPECT_TRUE(p.seasonal_ready());
}

TEST(HoltWintersTest, BeatsSimpleSmoothingOnSeasonalSignal) {
  // A clean daily sinusoid with period 48: once the seasonal terms settle,
  // Holt-Winters must beat exponential smoothing decisively.
  constexpr std::size_t kSeason = 48;
  HoltWintersPredictor hw(kSeason, 0.4, 0.05, 0.3);
  ExponentialSmoothingPredictor es(0.5);
  auto signal = [](int t) {
    return 500.0 +
           300.0 * std::sin(2.0 * std::numbers::pi * t / double(kSeason));
  };
  double hw_err = 0.0, es_err = 0.0;
  for (int t = 0; t < 48 * 30; ++t) {
    const double v = signal(t);
    if (t > 48 * 5) {
      hw_err += std::abs(hw.predict() - v);
      es_err += std::abs(es.predict() - v);
    }
    hw.observe(v);
    es.observe(v);
  }
  EXPECT_LT(hw_err, 0.25 * es_err);
}

TEST(HoltWintersTest, BehavesLikeHoltBeforeFirstSeason) {
  HoltWintersPredictor hw(1000);
  HoltPredictor holt(0.4, 0.05);
  for (int i = 0; i < 100; ++i) {
    const double v = 100.0 + i;
    hw.observe(v);
    holt.observe(v);
  }
  EXPECT_NEAR(hw.predict(), holt.predict(), 1e-9);
}

TEST(HoltWintersTest, SeasonalIndexAlignsAtTheWarmupBoundary) {
  // Season {100, 0, 0, 0}: after exactly one season the seasonal offsets
  // initialize to {75, -25, -25, -25} around a level of 25. The very first
  // post-warm-up prediction is for phase 0 — the spike — and must be large;
  // one step later the forecast is for a quiet phase and must be small. An
  // off-by-one in the seasonal index flips both assertions.
  HoltWintersPredictor p(4);
  for (double v : {100.0, 0.0, 0.0, 0.0}) p.observe(v);
  ASSERT_TRUE(p.seasonal_ready());
  EXPECT_GT(p.predict(), 50.0);
  p.observe(100.0);
  EXPECT_LT(p.predict(), 50.0);
}

TEST(HoltWintersTest, SeasonalIndexStaysAlignedThroughSecondSeason) {
  // Same property at a non-zero phase: spike at phase 2 of a length-4
  // season. Walking through the second season, the forecast must be large
  // exactly when the next observation is the spike.
  HoltWintersPredictor p(4);
  const std::vector<double> season = {0.0, 0.0, 100.0, 0.0};
  for (double v : season) p.observe(v);
  ASSERT_TRUE(p.seasonal_ready());
  for (int t = 4; t < 12; ++t) {
    const double next = season[static_cast<std::size_t>(t) % 4];
    if (next > 50.0) {
      EXPECT_GT(p.predict(), 50.0) << "t=" << t;
    } else {
      EXPECT_LT(p.predict(), 50.0) << "t=" << t;
    }
    p.observe(next);
  }
}

TEST(HoltWintersTest, PredictionsAreNonNegative) {
  HoltWintersPredictor p(4, 0.9, 0.5, 0.9);
  for (double v : {10.0, 0.0, 0.0, 0.0, 0.0, 0.0}) p.observe(v);
  EXPECT_GE(p.predict(), 0.0);
}

TEST(HoltWintersTest, MakeFreshPreservesConfiguration) {
  HoltWintersPredictor p(36);
  auto fresh = p.make_fresh();
  auto* cast = dynamic_cast<HoltWintersPredictor*>(fresh.get());
  ASSERT_NE(cast, nullptr);
  EXPECT_EQ(cast->season_length(), 36u);
  EXPECT_FALSE(cast->seasonal_ready());
}

TEST(DriftTest, ExtrapolatesAverageSlope) {
  DriftPredictor p;
  for (double v : {0.0, 10.0, 20.0, 30.0}) p.observe(v);
  // Average slope 10; prediction = 30 + 10.
  EXPECT_NEAR(p.predict(), 40.0, 1e-9);
}

TEST(DriftTest, SingleObservationPredictsItself) {
  DriftPredictor p;
  EXPECT_DOUBLE_EQ(p.predict(), 0.0);
  p.observe(7.0);
  EXPECT_DOUBLE_EQ(p.predict(), 7.0);
}

TEST(DriftTest, NonNegativeOnDecline) {
  DriftPredictor p;
  for (double v : {100.0, 50.0, 2.0}) p.observe(v);
  EXPECT_GE(p.predict(), 0.0);
}

}  // namespace
}  // namespace mmog::predict
