// The per-run resource profiler: PhaseScope allocation attribution,
// throughput/RSS gauges, and the zero-overhead contract when no profiler
// is attached.

#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "obs/recorder.hpp"

namespace mmog::obs {
namespace {

TEST(ProfilerTest, PhaseScopeRecordsAllocationHistograms) {
  Recorder rec(TraceLevel::kOff);
  rec.enable_profiler();
  ASSERT_NE(rec.profiler(), nullptr);
  {
    PhaseScope scope(&rec, "work", 0);
    ::operator delete(::operator new(1024));
    ::operator delete(::operator new(2048));
  }
  const Snapshot snap = rec.snapshot();
  const auto allocs = snap.histograms.find("phase.work_allocs");
  ASSERT_NE(allocs, snap.histograms.end());
  EXPECT_EQ(allocs->second.count, 1u);
  EXPECT_GE(allocs->second.mean(), 2.0);
  const auto bytes = snap.histograms.find("phase.work_alloc_bytes");
  ASSERT_NE(bytes, snap.histograms.end());
  EXPECT_GE(bytes->second.mean(), 3072.0);
  // The timing histogram is recorded either way.
  EXPECT_NE(snap.histograms.find("phase.work_us"), snap.histograms.end());
}

TEST(ProfilerTest, NoAllocationHistogramsWithoutProfiler) {
  Recorder rec(TraceLevel::kOff);
  {
    PhaseScope scope(&rec, "work", 0);
    ::operator delete(::operator new(1024));
  }
  const Snapshot snap = rec.snapshot();
  EXPECT_EQ(snap.histograms.find("phase.work_allocs"),
            snap.histograms.end());
  EXPECT_EQ(snap.histograms.find("phase.work_alloc_bytes"),
            snap.histograms.end());
  EXPECT_NE(snap.histograms.find("phase.work_us"), snap.histograms.end());
}

TEST(ProfilerTest, ProfilerPublishesOnlyGaugesAndHistogramsNeverCounters) {
  // The determinism contract: RunReport outcome sections carry every
  // counter, so anything the profiler adds must be a gauge or histogram.
  Recorder rec(TraceLevel::kOff);
  rec.enable_profiler();
  rec.profiler()->begin_run(120);
  {
    PhaseScope scope(&rec, "work", 0);
    ::operator delete(::operator new(64));
  }
  rec.profiler()->note_step(rec.registry(), 1);
  EXPECT_TRUE(rec.snapshot().counters.empty());
}

TEST(ProfilerTest, NoteStepPublishesThroughputAndRssGauges) {
  Recorder rec(TraceLevel::kOff);
  rec.enable_profiler();
  ResourceProfiler* profiler = rec.profiler();
  profiler->begin_run(240);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  profiler->note_step(rec.registry(), 10);

  const Snapshot snap = rec.snapshot();
  const double steps = snap.gauges.at("sim.steps_per_sec");
  EXPECT_GT(steps, 0.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("sim.group_steps_per_sec"),
                   steps * 240.0);
  EXPECT_GT(snap.gauges.at("proc.current_rss_kb"), 0.0);
  EXPECT_GT(snap.gauges.at("proc.peak_rss_kb"), 0.0);

  // The lock-free mirrors /healthz reads agree with the gauges.
  EXPECT_DOUBLE_EQ(profiler->steps_per_sec(), steps);
  EXPECT_EQ(static_cast<double>(profiler->peak_rss_kb()),
            snap.gauges.at("proc.peak_rss_kb"));
}

TEST(ProfilerTest, BeginRunResetsTheThroughputClock) {
  Recorder rec(TraceLevel::kOff);
  rec.enable_profiler();
  ResourceProfiler* profiler = rec.profiler();
  profiler->begin_run(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  profiler->note_step(rec.registry(), 1);
  const double slow = profiler->steps_per_sec();
  // A fresh begin_run() must not inherit the previous run's elapsed time.
  profiler->begin_run(1);
  profiler->note_step(rec.registry(), 1);
  EXPECT_GE(profiler->steps_per_sec(), slow);
}

TEST(ProfilerTest, CurrentRssIsReportedOnThisPlatform) {
  EXPECT_GT(current_rss_kb(), 0u);
}

TEST(ProfilerTest, EnableProfilerArmsAllocationCounting) {
  EXPECT_FALSE(util::alloccount::enabled());
  {
    Recorder rec(TraceLevel::kOff);
    rec.enable_profiler();
    EXPECT_TRUE(util::alloccount::enabled());
  }
  // Recorder teardown disarms the hooks again: unprofiled code that runs
  // after a profiled run is back to the zero-overhead path.
  EXPECT_FALSE(util::alloccount::enabled());
}

}  // namespace
}  // namespace mmog::obs
