#include "obs/export_prometheus.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mmog::obs {
namespace {

TEST(PrometheusExportTest, SanitizesNamesOntoPrometheusCharset) {
  EXPECT_EQ(sanitize_prometheus_name("phase.step_us"), "phase_step_us");
  EXPECT_EQ(sanitize_prometheus_name("offer.rejected.latency-degraded"),
            "offer_rejected_latency_degraded");
  EXPECT_EQ(sanitize_prometheus_name("sla.availability_pct.CLI MMOG"),
            "sla_availability_pct_CLI_MMOG");
  EXPECT_EQ(sanitize_prometheus_name("already_fine:subsystem"),
            "already_fine:subsystem");
  // A leading digit is invalid as a first character: prefix, don't drop.
  EXPECT_EQ(sanitize_prometheus_name("2fast"), "_2fast");
  EXPECT_EQ(sanitize_prometheus_name(""), "_");
  // Multi-byte characters sanitize byte-wise (Υ = U+03A5 is two bytes, so
  // ".|Υ|" becomes five underscores).
  EXPECT_EQ(sanitize_prometheus_name("events.|Υ|"), "events_____");
}

TEST(PrometheusExportTest, GoldenExpositionForCountersAndGauges) {
  Registry reg;
  reg.add("alloc.granted", 42.0);
  reg.set("sim.steps", 720.0);
  reg.set("core.underalloc_frac", 0.0125);
  const std::string expected =
      "# TYPE alloc_granted counter\n"
      "alloc_granted 42\n"
      "# TYPE core_underalloc_frac gauge\n"
      "core_underalloc_frac 0.0125\n"
      "# TYPE sim_steps gauge\n"
      "sim_steps 720\n";
  EXPECT_EQ(to_prometheus(reg.snapshot()), expected);
}

TEST(PrometheusExportTest, GoldenHistogramWithCumulativeBucketsAndInf) {
  Registry reg;
  reg.define_histogram("latency.us", {1.0, 2.5, 5.0});
  for (double v : {0.5, 1.0, 2.0, 3.0, 100.0}) reg.observe("latency.us", v);
  const std::string expected =
      "# TYPE latency_us histogram\n"
      "latency_us_bucket{le=\"1\"} 2\n"       // 0.5, 1.0 (upper-inclusive)
      "latency_us_bucket{le=\"2.5\"} 3\n"     // + 2.0
      "latency_us_bucket{le=\"5\"} 4\n"       // + 3.0
      "latency_us_bucket{le=\"+Inf\"} 5\n"    // + 100.0 overflow
      "latency_us_sum 106.5\n"
      "latency_us_count 5\n";
  EXPECT_EQ(to_prometheus(reg.snapshot()), expected);
}

TEST(PrometheusExportTest, BucketsAreCumulativeAndInfEqualsCount) {
  Registry reg;
  reg.observe("d", 0.07);  // auto-registered duration buckets
  reg.observe("d", 3.0);
  reg.observe("d", 1e9);  // beyond the last bound: only +Inf catches it
  const auto text = to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("d_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("d_count 3\n"), std::string::npos);
  // Cumulative counts never decrease along the bucket series.
  std::size_t pos = 0;
  long prev = -1;
  while ((pos = text.find("d_bucket{le=", pos)) != std::string::npos) {
    const auto space = text.find("} ", pos);
    const auto eol = text.find('\n', space);
    const long count = std::stol(text.substr(space + 2, eol - space - 2));
    EXPECT_GE(count, prev);
    prev = count;
    pos = eol;
  }
  EXPECT_EQ(prev, 3);
}

TEST(PrometheusExportTest, EmptySnapshotSerializesToEmptyString) {
  Registry reg;
  EXPECT_EQ(to_prometheus(reg.snapshot()), "");
}

// Two registry names that sanitize onto the same Prometheus name must not
// silently merge into one series: the exporter walks counters, gauges,
// histograms (each name-sorted), so the later metric deterministically gets
// a numbered suffix and a comment naming the metric that owns the original.
TEST(PrometheusExportTest, CollidingSanitizedNamesAreDisambiguated) {
  Registry reg;
  reg.add("alloc-granted", 1.0);
  reg.add("alloc.granted", 2.0);  // same sanitized name "alloc_granted"
  reg.set("alloc_granted", 3.0);  // gauge collides with both counters
  const auto text = to_prometheus(reg.snapshot());
  // "alloc-granted" sorts first and keeps the bare name.
  EXPECT_NE(text.find("# TYPE alloc_granted counter\n"
                      "alloc_granted 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# NOTE alloc_granted_2 renamed from counter "
                      "alloc.granted"),
            std::string::npos);
  EXPECT_NE(text.find("alloc_granted_2 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE alloc_granted_3 gauge\n"
                      "alloc_granted_3 3\n"),
            std::string::npos);
  // Exactly one bare series line: no duplicate exposition.
  std::size_t bare = 0, pos = 0;
  while ((pos = text.find("\nalloc_granted ", pos)) != std::string::npos) {
    ++bare;
    ++pos;
  }
  EXPECT_EQ(bare, 1u);
}

}  // namespace
}  // namespace mmog::obs
