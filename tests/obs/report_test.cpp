// Canonical run reports: golden stable-schema JSON, parse round-trip,
// config fingerprinting, and the diff verdicts mmog_diff builds on.

#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace mmog::obs {
namespace {

RunReport sample_report() {
  RunReport report;
  report.tool = "mmog_simulate";
  report.label = "seed9/dynamic";
  report.config = {{"mode", "dynamic"},
                   {"predictor", "last_value"},
                   {"safety_factor", "0.5"}};
  report.outcome.steps = 720;
  report.outcome.over_allocation_pct = 27.5;
  report.outcome.under_allocation_pct = 0.125;
  report.outcome.significant_events = 4;
  report.outcome.unplaced_cpu_unit_steps = 1.5;
  report.outcome.total_cost = 12345.5;
  report.outcome.fault_windows = 2;
  report.outcome.availability_pct = 99.5;
  report.outcome.sla_steps = 720;
  report.outcome.downtime_steps = 3;
  report.outcome.breach_episodes = 2;
  report.outcome.longest_breach_steps = 2;
  report.outcome.recoveries = 2;
  report.outcome.mean_time_to_recover_steps = 1.5;
  report.outcome.max_time_to_recover_steps = 2;
  report.outcome.alerts_fired = 1;
  report.outcome.alerts_resolved = 1;
  report.outcome.audit_records = 1440;
  report.outcome.counters = {{"alloc.granted", 321.0},
                             {"offer.rejected.amount", 7.0}};
  report.phases = {{"match", 720, 12.5, 11.0, 20.0, 30.0, 45.5, 96.0,
                    8192.0}};
  report.wall_seconds = 0.25;
  report.peak_rss_kb = 20480;
  report.steps_per_sec = 2880.0;
  report.threads = 4;
  return report;
}

// The whole point of the schema: a default-constructed report serializes to
// exactly these bytes, version "1", fixed key order. Changing this string
// is a schema break and must bump kSchemaVersion.
TEST(RunReportTest, GoldenEmptyReportJson) {
  RunReport report;
  report.tool = "t";
  EXPECT_EQ(
      report.to_json(),
      "{\"schema\":1,\"tool\":\"t\",\"label\":\"\",\"config\":{},"
      "\"fingerprint\":\"cbf29ce484222325\",\"outcome\":{\"steps\":0,"
      "\"over_allocation_pct\":0,\"under_allocation_pct\":0,"
      "\"significant_events\":0,\"unplaced_cpu_unit_steps\":0,"
      "\"total_cost\":0,\"fault_windows\":0,\"sla\":{"
      "\"availability_pct\":100,\"steps\":0,\"downtime_steps\":0,"
      "\"shed_steps\":0,\"breach_episodes\":0,\"longest_breach_steps\":0,"
      "\"recoveries\":0,\"mean_time_to_recover_steps\":0,"
      "\"max_time_to_recover_steps\":0},\"alerts\":{\"fired\":0,"
      "\"resolved\":0,\"firing\":0},\"audit_records\":0,\"counters\":{}},"
      "\"timing\":{\"threads\":1,\"wall_seconds\":0,\"peak_rss_kb\":0,"
      "\"steps_per_sec\":0,\"phases\":[]}}");
}

TEST(RunReportTest, ParseRoundTripsToIdenticalJson) {
  const auto report = sample_report();
  const auto parsed = RunReport::parse(report.to_json());
  EXPECT_EQ(parsed.to_json(), report.to_json());
  EXPECT_EQ(parsed.outcome, report.outcome);
  EXPECT_EQ(parsed.config, report.config);
  EXPECT_EQ(parsed.threads, 4u);
  ASSERT_EQ(parsed.phases.size(), 1u);
  EXPECT_EQ(parsed.phases[0].name, "match");
  EXPECT_DOUBLE_EQ(parsed.phases[0].p99_us, 30.0);
}

TEST(RunReportTest, ParseAcceptsPreProfilerReports) {
  // The profiler fields are additive within schema 1: a report written
  // before them must still parse, with zero defaults.
  auto json = sample_report().to_json();
  for (const std::string cut :
       {",\"steps_per_sec\":2880", ",\"allocs_mean\":96",
        ",\"alloc_bytes_mean\":8192"}) {
    const auto pos = json.find(cut);
    ASSERT_NE(pos, std::string::npos) << cut;
    json.erase(pos, cut.size());
  }
  const auto parsed = RunReport::parse(json);
  EXPECT_DOUBLE_EQ(parsed.steps_per_sec, 0.0);
  ASSERT_EQ(parsed.phases.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.phases[0].allocs_mean, 0.0);
  EXPECT_DOUBLE_EQ(parsed.phases[0].alloc_bytes_mean, 0.0);
  EXPECT_EQ(parsed.outcome, sample_report().outcome);
}

TEST(RunReportTest, ParseRejectsWrongSchemaAndGarbage) {
  EXPECT_THROW(RunReport::parse("nope"), std::invalid_argument);
  auto json = sample_report().to_json();
  json.replace(json.find("\"schema\":1"), 10, "\"schema\":9");
  EXPECT_THROW(RunReport::parse(json), std::invalid_argument);
}

TEST(RunReportTest, FileParserAcceptsObjectOrLabeledArray) {
  const auto report = sample_report();
  EXPECT_EQ(parse_report_file(report.to_json()).size(), 1u);
  auto second = report;
  second.label = "seed9/static";
  const auto parsed = parse_report_file(reports_to_json({report, second}));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].label, "seed9/dynamic");
  EXPECT_EQ(parsed[1].label, "seed9/static");
  EXPECT_THROW(parse_report_file("42"), std::invalid_argument);
}

TEST(RunReportTest, FingerprintHashesExactlyTheConfig) {
  auto a = sample_report();
  auto b = sample_report();
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint().size(), 16u);
  // Execution details and outcomes do not move the fingerprint ...
  b.threads = 16;
  b.wall_seconds = 99.0;
  b.outcome.total_cost = 0.0;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // ... but any config entry does.
  b.config["safety_factor"] = "0.9";
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(RunReportTest, SummaryTextIsRenderedFromTheReport) {
  const auto text = sample_report().summary_text();
  EXPECT_NE(text.find("steps                  720"), std::string::npos);
  EXPECT_NE(text.find("CPU over-allocation    27.50 %"), std::string::npos);
  EXPECT_NE(text.find("CPU under-allocation   0.125 %"), std::string::npos);
  EXPECT_NE(text.find("renting cost           12345.5"), std::string::npos);
  EXPECT_NE(text.find("fault windows        2"), std::string::npos);
  EXPECT_NE(text.find("availability         99.500 %"), std::string::npos);
  // A clean run prints no SLA block at all.
  RunReport clean;
  EXPECT_EQ(clean.summary_text().find("SLA"), std::string::npos);
}

TEST(RunReportDiffTest, IdenticalReportsPass) {
  const auto diff = diff_reports(sample_report(), sample_report(), 10.0);
  EXPECT_FALSE(diff.regression());
  EXPECT_TRUE(diff.notes.empty());
}

TEST(RunReportDiffTest, AnyOutcomeDriftIsARegression) {
  const auto a = sample_report();
  auto b = sample_report();
  b.outcome.under_allocation_pct += 1e-12;  // bit drift is enough
  const auto diff = diff_reports(a, b);
  EXPECT_TRUE(diff.regression());
  EXPECT_FALSE(diff.outcome_identical);
  ASSERT_EQ(diff.notes.size(), 1u);
  EXPECT_NE(diff.notes[0].find("under_allocation_pct"), std::string::npos);
}

TEST(RunReportDiffTest, ConfigAndCounterDriftAreNamed) {
  const auto a = sample_report();
  auto b = sample_report();
  b.config.erase("predictor");
  b.config["mode"] = "static";
  b.outcome.counters["alloc.granted"] = 1.0;
  const auto diff = diff_reports(a, b);
  EXPECT_TRUE(diff.regression());
  std::string joined;
  for (const auto& note : diff.notes) joined += note + '\n';
  EXPECT_NE(joined.find("config.mode"), std::string::npos);
  EXPECT_NE(joined.find("config.predictor: only in first"),
            std::string::npos);
  EXPECT_NE(joined.find("counter alloc.granted"), std::string::npos);
}

TEST(RunReportDiffTest, TimingComparedOnlyAgainstTolerance) {
  const auto a = sample_report();
  auto b = sample_report();
  b.phases[0].p50_us = a.phases[0].p50_us * 3.0;
  // No tolerance given: timing is never a regression.
  EXPECT_FALSE(diff_reports(a, b).regression());
  // 200 % drift vs a 10 % budget: timing regression, outcome still clean.
  const auto tight = diff_reports(a, b, 10.0);
  EXPECT_TRUE(tight.regression());
  EXPECT_TRUE(tight.outcome_identical);
  EXPECT_FALSE(tight.timing_ok);
  // A generous budget passes.
  EXPECT_FALSE(diff_reports(a, b, 500.0).regression());
}

TEST(RunReportTest, PeakRssIsReportedOnThisPlatform) {
  EXPECT_GT(current_peak_rss_kb(), 0u);
}

}  // namespace
}  // namespace mmog::obs
