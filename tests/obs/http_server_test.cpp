#include "obs/http_server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "obs/recorder.hpp"

namespace mmog::obs {
namespace {

/// Blocking one-shot HTTP client: connect, send the request line, read to
/// EOF. Returns the raw response (status line + headers + body).
std::string http_get(std::uint16_t port, const std::string& path,
                     const std::string& method = "GET") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0)
      << std::strerror(errno);
  const std::string request =
      method + " " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

TEST(HttpServerTest, BindsEphemeralPortAndServesHandler) {
  HttpServer server(0, [](const HttpServer::Request& request) {
    HttpServer::Response response;
    response.body = "echo:" + request.path;
    return response;
  });
  ASSERT_GT(server.port(), 0);
  const auto response = http_get(server.port(), "/hello?x=1");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 11"), std::string::npos);
  EXPECT_EQ(body_of(response), "echo:/hello");  // query string stripped
  server.stop();
}

TEST(HttpServerTest, MalformedRequestLineGets400) {
  HttpServer server(0, [](const HttpServer::Request&) {
    return HttpServer::Response{};
  });
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  const std::string junk = "nonsense\r\n\r\n";
  ASSERT_EQ(::send(fd, junk.data(), junk.size(), 0),
            static_cast<ssize_t>(junk.size()));
  std::string response;
  char buf[512];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("400"), std::string::npos);
}

TEST(HttpServerTest, TelemetrySmokeMetricsAndHealthz) {
  Recorder recorder(TraceLevel::kOff);
  recorder.enable_timeseries(8);
  recorder.enable_alerts(default_alert_rules());
  recorder.count("alloc.granted", 3.0);
  recorder.observe_us("phase.step_us", 12.0);
  std::vector<Sample> samples = {{"core.underalloc_frac", 0.05},
                                 {"sla.availability_min_pct", 100.0}};
  for (std::uint64_t t = 0; t <= 6; ++t) recorder.sample_step(t, samples);

  TelemetryService service(recorder, 0);
  ASSERT_GT(service.port(), 0);

  const auto metrics = http_get(service.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  const auto exposition = body_of(metrics);
  EXPECT_NE(exposition.find("# TYPE alloc_granted counter"),
            std::string::npos);
  EXPECT_NE(exposition.find("alloc_granted 3"), std::string::npos);
  EXPECT_NE(exposition.find("core_underalloc_frac 0.05"), std::string::npos);
  EXPECT_NE(exposition.find("# TYPE phase_step_us histogram"),
            std::string::npos);
  EXPECT_NE(exposition.find("phase_step_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  // The underalloc default rule (for=5) fired at step 5: counter visible.
  EXPECT_NE(exposition.find("alert_fired 1"), std::string::npos);

  const auto healthz = http_get(service.port(), "/healthz");
  EXPECT_NE(healthz.find("HTTP/1.0 200 OK"), std::string::npos);
  const auto health = body_of(healthz);
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"step\":6"), std::string::npos);
  EXPECT_NE(health.find("\"firing\":1"), std::string::npos);

  const auto alerts = body_of(http_get(service.port(), "/alerts"));
  EXPECT_NE(alerts.find("\"name\":\"underalloc\""), std::string::npos);
  EXPECT_NE(alerts.find("\"state\":\"firing\""), std::string::npos);

  const auto series = body_of(http_get(service.port(), "/timeseries.json"));
  EXPECT_NE(series.find("\"name\":\"core.underalloc_frac\""),
            std::string::npos);
  EXPECT_NE(series.find("\"samples_seen\":7"), std::string::npos);

  const auto missing = http_get(service.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);

  const auto post = http_get(service.port(), "/metrics", "POST");
  EXPECT_NE(post.find("HTTP/1.0 405"), std::string::npos);

  service.stop();
}

TEST(HttpServerTest, ScrapesRaceSafelyWithSampling) {
  // TSan-oriented: one thread samples while another scrapes every route.
  Recorder recorder(TraceLevel::kOff);
  recorder.enable_timeseries(16);
  recorder.enable_alerts(default_alert_rules());
  TelemetryService service(recorder, 0);
  std::vector<Sample> samples = {{"core.underalloc_frac", 0.0},
                                 {"sla.availability_min_pct", 100.0}};
  std::thread writer([&] {
    for (std::uint64_t t = 0; t < 200; ++t) {
      samples[0].value = (t % 10 == 0) ? 0.05 : 0.0;
      recorder.sample_step(t, samples);
    }
  });
  for (int i = 0; i < 10; ++i) {
    for (const char* path :
         {"/metrics", "/healthz", "/alerts", "/timeseries.json"}) {
      EXPECT_NE(http_get(service.port(), path).find("200"),
                std::string::npos);
    }
  }
  writer.join();
  service.stop();
}

}  // namespace
}  // namespace mmog::obs
