// The JSON layer every artifact rides on: shortest round-trip doubles at
// the numeric extremes, escape handling (including the documented \u
// byte-truncation), and deep-nesting robustness.

#include "obs/jsonio.hpp"

#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace mmog::obs {
namespace {

double reparse(double v) { return parse_json(json_double(v)).as_number(); }

TEST(JsonDoubleTest, ShortestFormIsEmitted) {
  EXPECT_EQ(json_double(0.1), "0.1");
  EXPECT_EQ(json_double(1.0), "1");
  EXPECT_EQ(json_double(-2.5), "-2.5");
  EXPECT_EQ(json_double(0.0), "0");
}

TEST(JsonDoubleTest, ExtremeValuesRoundTripBitForBit) {
  // Bit identity (==, not near): equal strings iff equal bits is the
  // contract the byte-identical artifacts depend on.
  for (const double v :
       {1e308, -1e308, DBL_MAX, DBL_MIN,
        5e-324 /* smallest denormal */, -5e-324, 1e-310 /* denormal */,
        1.0 / 3.0, 0.1 + 0.2, 2.2250738585072011e-308 /* near-min edge */,
        9007199254740993.0 /* 2^53 + 1, not exactly representable */}) {
    EXPECT_EQ(reparse(v), v) << json_double(v);
  }
}

TEST(JsonDoubleTest, NonFiniteRendersAsZero) {
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(json_double(-std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(json_double(std::numeric_limits<double>::quiet_NaN()), "0");
}

TEST(JsonEscapeTest, ControlBytesQuotesAndBackslashRoundTrip) {
  const std::string original =
      std::string("line\nbreak\ttab \"quoted\" back\\slash \r") +
      '\x01' + '\x1f' + "end";
  std::string escaped = "\"";
  append_json_escaped(escaped, original);
  escaped += '"';
  // No raw control bytes may survive escaping.
  for (char c : escaped) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
  EXPECT_EQ(parse_json(escaped).as_string(), original);
}

TEST(JsonEscapeTest, EscapedControlBytesUseLowercaseU) {
  std::string out;
  append_json_escaped(out, std::string(1, '\x02'));
  EXPECT_EQ(out, "\\u0002");
}

TEST(JsonParseTest, StandardEscapesDecode) {
  EXPECT_EQ(parse_json("\"a\\\"b\\\\c\\/d\\b\\f\\n\\r\\t\"").as_string(),
            "a\"b\\c/d\b\f\n\r\t");
}

TEST(JsonParseTest, UnicodeEscapeDecodesLatin1AndTruncatesWiderPoints) {
  EXPECT_EQ(parse_json("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(parse_json("\"\\u000a\"").as_string(), "\n");
  EXPECT_EQ(parse_json("\"\\u00e9\"").as_string(), "\xe9");
  // Documented truncation: the repo's writers only emit \u00XX, so wider
  // code points keep just their low byte (U+20AC -> 0xAC).
  EXPECT_EQ(parse_json("\"\\u20ac\"").as_string(), "\xac");
}

TEST(JsonParseTest, MalformedEscapesThrow) {
  EXPECT_THROW(parse_json("\"\\u12\""), std::invalid_argument);
  EXPECT_THROW(parse_json("\"\\u12zz\""), std::invalid_argument);
  EXPECT_THROW(parse_json("\"\\q\""), std::invalid_argument);
  EXPECT_THROW(parse_json("\"dangling\\"), std::invalid_argument);
  EXPECT_THROW(parse_json("\"unterminated"), std::invalid_argument);
}

TEST(JsonParseTest, DeeplyNestedArraysParse) {
  constexpr int kDepth = 1000;
  std::string text;
  text.append(kDepth, '[');
  text += "42";
  text.append(kDepth, ']');
  const JsonValue doc = parse_json(text);
  const JsonValue* v = &doc;
  int depth = 0;
  while (v->kind() == JsonValue::Kind::kArray) {
    ASSERT_EQ(v->as_array().size(), 1u);
    v = &v->as_array()[0];
    ++depth;
  }
  EXPECT_EQ(depth, kDepth);
  EXPECT_DOUBLE_EQ(v->as_number(), 42.0);
}

TEST(JsonParseTest, DeeplyNestedObjectsParse) {
  constexpr int kDepth = 500;
  std::string text;
  for (int i = 0; i < kDepth; ++i) text += "{\"k\":";
  text += "true";
  text.append(kDepth, '}');
  const JsonValue doc = parse_json(text);
  const JsonValue* v = &doc;
  for (int i = 0; i < kDepth; ++i) v = &v->at("k");
  EXPECT_TRUE(v->as_bool());
}

TEST(JsonParseTest, NumbersParseViaFromChars) {
  EXPECT_DOUBLE_EQ(parse_json("1e308").as_number(), 1e308);
  EXPECT_DOUBLE_EQ(parse_json("5e-324").as_number(), 5e-324);
  EXPECT_DOUBLE_EQ(parse_json("-0.0").as_number(), 0.0);
  EXPECT_TRUE(std::signbit(parse_json("-0.0").as_number()));
  EXPECT_THROW(parse_json("1e"), std::invalid_argument);
  EXPECT_THROW(parse_json("--1"), std::invalid_argument);
}

TEST(JsonParseTest, TrailingGarbageThrows) {
  EXPECT_THROW(parse_json("{} x"), std::invalid_argument);
  EXPECT_THROW(parse_json("1 2"), std::invalid_argument);
}

}  // namespace
}  // namespace mmog::obs
