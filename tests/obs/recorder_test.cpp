#include "obs/recorder.hpp"

#include <gtest/gtest.h>

namespace mmog::obs {
namespace {

TEST(RecorderTest, NullRecorderPhaseScopeIsSafe) {
  const PhaseScope scope(nullptr, "predict", 0);
  // Nothing to assert beyond "does not crash": the null recorder contract
  // is that every instrumentation site short-circuits.
}

TEST(RecorderTest, PhaseScopeRecordsHistogramAndSpan) {
  Recorder rec(TraceLevel::kSteps);
  {
    const PhaseScope scope(&rec, "match", 5);
  }
  const auto snap = rec.snapshot();
  ASSERT_TRUE(snap.histograms.contains("phase.match_us"));
  EXPECT_EQ(snap.histograms.at("phase.match_us").count, 1u);
  const auto events = rec.tracer().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TraceKind::kSpan);
  EXPECT_EQ(events[0].name, "match");
  EXPECT_EQ(events[0].category, "phase");
  EXPECT_EQ(events[0].step, 5u);
  EXPECT_GE(events[0].dur_us, 0.0);
}

TEST(RecorderTest, OffLevelKeepsMetricsButDropsEvents) {
  Recorder rec(TraceLevel::kOff);
  EXPECT_FALSE(rec.tracing());
  EXPECT_FALSE(rec.detail());
  rec.count("offer.matched");
  rec.instant("alloc.granted", "alloc", 0);
  rec.detail_instant("request.padded", "pad", 0);
  {
    const PhaseScope scope(&rec, "step", 0, "step");
  }
  const auto snap = rec.snapshot();
  EXPECT_DOUBLE_EQ(snap.counters.at("offer.matched"), 1.0);
  EXPECT_EQ(snap.histograms.at("phase.step_us").count, 1u);
  EXPECT_EQ(rec.tracer().size(), 0u);
}

TEST(RecorderTest, DetailInstantsGatedByLevel) {
  Recorder steps(TraceLevel::kSteps);
  steps.instant("alloc.granted", "alloc", 0);
  steps.detail_instant("request.padded", "pad", 0);
  EXPECT_EQ(steps.tracer().size(), 1u);

  Recorder detail(TraceLevel::kDetail);
  EXPECT_TRUE(detail.detail());
  detail.instant("alloc.granted", "alloc", 0);
  detail.detail_instant("request.padded", "pad", 0);
  EXPECT_EQ(detail.tracer().size(), 2u);
}

TEST(RecorderTest, AuditTrailFollowsTheNullRecorderContract) {
  Recorder rec(TraceLevel::kOff);
  // Not enabled: instrumentation sites see nullptr and skip all audit work.
  EXPECT_EQ(rec.audit(), nullptr);
  rec.enable_audit();
  ASSERT_NE(rec.audit(), nullptr);
  EXPECT_EQ(rec.audit()->size(), 0u);
  AuditRecord record;
  record.step = 7;
  rec.audit()->append(std::move(record));
  const Recorder& view = rec;
  ASSERT_NE(view.audit(), nullptr);
  EXPECT_EQ(view.audit()->size(), 1u);
}

TEST(RecorderTest, StopwatchMeasuresForward) {
  Stopwatch watch;
  const double a = watch.elapsed_us();
  const double b = watch.elapsed_us();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  watch.reset();
  EXPECT_GE(watch.elapsed_us(), 0.0);
}

}  // namespace
}  // namespace mmog::obs
