#include "obs/alerts.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "obs/alert_parse.hpp"

namespace mmog::obs {
namespace {

std::vector<Sample> sample(double underalloc) {
  return {{"core.underalloc_frac", underalloc}};
}

AlertRule underalloc_rule(std::size_t for_steps) {
  return {"underalloc", "core.underalloc_frac", AlertOp::kGt, 0.01,
          for_steps};
}

TEST(AlertEngineTest, ZeroForFiresOnFirstBreachingSample) {
  AlertEngine engine({underalloc_rule(0)});
  EXPECT_TRUE(engine.observe(0, sample(0.005)).empty());
  const auto edges = engine.observe(1, sample(0.02));
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].kind, AlertTransition::Kind::kFired);
  EXPECT_EQ(edges[0].rule_name, "underalloc");
  EXPECT_EQ(edges[0].step, 1u);
  EXPECT_DOUBLE_EQ(edges[0].value, 0.02);
  EXPECT_EQ(engine.firing_count(), 1u);
}

TEST(AlertEngineTest, ForDebounceHoldsPendingThenFires) {
  AlertEngine engine({underalloc_rule(3)});
  // Breaches at steps 10..13: pending at 10, firing once the condition has
  // held for 3 steps of simulated time (step 13).
  for (std::uint64_t t = 10; t <= 12; ++t) {
    EXPECT_TRUE(engine.observe(t, sample(0.05)).empty()) << t;
    EXPECT_EQ(engine.statuses()[0].state, AlertState::kPending) << t;
  }
  const auto edges = engine.observe(13, sample(0.05));
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].kind, AlertTransition::Kind::kFired);
  const auto status = engine.statuses()[0];
  EXPECT_EQ(status.state, AlertState::kFiring);
  EXPECT_EQ(status.pending_since_step, 10u);
  EXPECT_EQ(status.firing_since_step, 13u);
}

TEST(AlertEngineTest, BreachClearingInsideDebounceNeverFires) {
  AlertEngine engine({underalloc_rule(5)});
  engine.observe(0, sample(0.05));
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kPending);
  EXPECT_TRUE(engine.observe(1, sample(0.0)).empty());
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kInactive);
  EXPECT_EQ(engine.statuses()[0].fired_count, 0u);
}

TEST(AlertEngineTest, FiringResolvesWhenConditionClears) {
  AlertEngine engine({underalloc_rule(0)});
  engine.observe(0, sample(0.05));
  const auto edges = engine.observe(1, sample(0.001));
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].kind, AlertTransition::Kind::kResolved);
  const auto status = engine.statuses()[0];
  EXPECT_EQ(status.state, AlertState::kResolved);
  EXPECT_EQ(status.fired_count, 1u);
  EXPECT_EQ(status.resolved_count, 1u);
  EXPECT_EQ(status.last_resolved_step, 1u);
  // A later breach re-enters pending -> firing and counts again.
  engine.observe(2, sample(0.05));
  EXPECT_EQ(engine.statuses()[0].fired_count, 2u);
}

TEST(AlertEngineTest, MissingMetricCountsAsConditionFalse) {
  AlertEngine engine({underalloc_rule(0)});
  engine.observe(0, sample(0.05));
  EXPECT_EQ(engine.firing_count(), 1u);
  // The sample set no longer carries the metric: resolve, don't latch.
  const auto edges = engine.observe(1, {{"other.metric", 1.0}});
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].kind, AlertTransition::Kind::kResolved);
}

TEST(AlertEngineTest, JsonListsRuleAndState) {
  AlertEngine engine({underalloc_rule(0)});
  engine.observe(4, sample(0.05));
  const auto json = engine.to_json();
  EXPECT_NE(json.find("\"step\":4"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"underalloc\""), std::string::npos);
  EXPECT_NE(json.find("\"metric\":\"core.underalloc_frac\""),
            std::string::npos);
  EXPECT_NE(json.find("\"state\":\"firing\""), std::string::npos);
  EXPECT_NE(json.find("\"fired_count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"last_value\":0.05"), std::string::npos);
}

TEST(AlertEngineTest, DefaultRulesCoverPaperThresholdAndAvailability) {
  const auto rules = default_alert_rules(1.0);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].metric, "core.underalloc_frac");
  EXPECT_DOUBLE_EQ(rules[0].value, 0.01);  // the paper's 1% QoS threshold
  EXPECT_EQ(rules[0].op, AlertOp::kGt);
  EXPECT_EQ(rules[1].metric, "sla.availability_min_pct");
  EXPECT_EQ(rules[1].op, AlertOp::kLt);
}

TEST(AlertParseTest, ParsesTheIssueExample) {
  const auto rule = parse_alert_rule(
      "underalloc:metric=core.underalloc_frac,op=>,value=0.01,for=5");
  EXPECT_EQ(rule.name, "underalloc");
  EXPECT_EQ(rule.metric, "core.underalloc_frac");
  EXPECT_EQ(rule.op, AlertOp::kGt);
  EXPECT_DOUBLE_EQ(rule.value, 0.01);
  EXPECT_EQ(rule.for_steps, 5u);
}

TEST(AlertParseTest, ForAcceptsDurationSuffixes) {
  // 30 minutes = 15 two-minute steps, same units as --fault durations.
  EXPECT_EQ(parse_alert_rule("a:metric=m,value=1,for=30m").for_steps, 15u);
  EXPECT_EQ(parse_alert_rule("a:metric=m,value=1").for_steps, 0u);
}

TEST(AlertParseTest, DefaultsAndOperators) {
  EXPECT_EQ(parse_alert_rule("a:metric=m,value=2").op, AlertOp::kGt);
  EXPECT_EQ(parse_alert_rule("a:metric=m,op=<=,value=2").op, AlertOp::kLe);
  EXPECT_EQ(parse_alert_rule("a:metric=m,op=!=,value=2").op, AlertOp::kNe);
}

TEST(AlertParseTest, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_alert_rule("no-colon"), std::invalid_argument);
  EXPECT_THROW(parse_alert_rule(":metric=m,value=1"), std::invalid_argument);
  EXPECT_THROW(parse_alert_rule("a:value=1"), std::invalid_argument);
  EXPECT_THROW(parse_alert_rule("a:metric=m"), std::invalid_argument);
  EXPECT_THROW(parse_alert_rule("a:metric=m,op=~,value=1"),
               std::invalid_argument);
  EXPECT_THROW(parse_alert_rule("a:metric=m,value=abc"),
               std::invalid_argument);
  EXPECT_THROW(parse_alert_rule("a:metric=m,value=1,bogus=2"),
               std::invalid_argument);
}

TEST(AlertParseTest, ListSplitsOnSemicolonsAndRoundTrips) {
  const auto rules = parse_alert_rules(
      "a:metric=m,value=1;b:metric=n,op=<,value=2,for=3");
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(describe(rules[0]), "a:metric=m,op=>,value=1");
  EXPECT_EQ(describe(rules[1]), "b:metric=n,op=<,value=2,for=3");
  EXPECT_TRUE(parse_alert_rules("").empty());
  const auto reparsed = parse_alert_rule(describe(rules[1]));
  EXPECT_EQ(reparsed.op, rules[1].op);
  EXPECT_EQ(reparsed.for_steps, rules[1].for_steps);
}

}  // namespace
}  // namespace mmog::obs
