// The scale-sweep bench artifact (BENCH_scale.json): golden JSON
// round-trip, google-benchmark folding, and the diff semantics the CI perf
// gate relies on — allocations hard-gated, timing/RSS only by opt-in.

#include "obs/bench_report.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace mmog::obs {
namespace {

BenchReport sample_report() {
  BenchReport report;
  report.machine.os = "Linux";
  report.machine.release = "6.0.0";
  report.machine.arch = "x86_64";
  report.machine.cpus = 8;
  report.machine.page_size = 4096;
  BenchRun run;
  run.label = "g1000/t4";
  run.groups = 1000;
  run.threads = 4;
  run.steps = 240;
  run.wall_seconds = 1.5;
  run.steps_per_sec = 160.0;
  run.group_steps_per_sec = 160000.0;
  run.allocs_per_step = 220.5;
  run.alloc_bytes_per_step = 65536.0;
  run.peak_rss_kb = 102400;
  run.phases = {{"predict", 240, 120.0, 180.0, 130.0, 400.0, 80.0, 4096.0},
                {"match", 240, 300.0, 420.0, 310.0, 900.0, 40.0, 2048.0}};
  report.runs.push_back(std::move(run));
  report.micro = {{"BM_Predict/1000", 5000, 12.5, 12.4}};
  return report;
}

TEST(BenchReportTest, JsonRoundTripsByteForByte) {
  const auto report = sample_report();
  const auto json = report.to_json();
  EXPECT_EQ(json.find("{\"schema\":1,\"kind\":\"mmog-bench\""), 0u);
  const auto parsed = BenchReport::parse(json);
  EXPECT_EQ(parsed.to_json(), json);
  ASSERT_EQ(parsed.runs.size(), 1u);
  EXPECT_EQ(parsed.runs[0].label, "g1000/t4");
  ASSERT_EQ(parsed.runs[0].phases.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.runs[0].phases[1].p95_us, 420.0);
  ASSERT_EQ(parsed.micro.size(), 1u);
  EXPECT_EQ(parsed.micro[0].iterations, 5000u);
}

TEST(BenchReportTest, ParseRejectsWrongKindSchemaAndGarbage) {
  EXPECT_THROW(BenchReport::parse("nope"), std::invalid_argument);
  auto json = sample_report().to_json();
  auto wrong_kind = json;
  wrong_kind.replace(wrong_kind.find("mmog-bench"), 10, "mmog-wrong");
  EXPECT_THROW(BenchReport::parse(wrong_kind), std::invalid_argument);
  json.replace(json.find("\"schema\":1"), 10, "\"schema\":9");
  EXPECT_THROW(BenchReport::parse(json), std::invalid_argument);
}

TEST(BenchReportTest, MachineFingerprintHashesTheIdentityFields) {
  const auto a = sample_report().machine;
  auto b = a;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint().size(), 16u);
  b.cpus = 16;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(BenchReportTest, CollectedMachineLooksSane) {
  const BenchMachine m = collect_bench_machine();
  EXPECT_FALSE(m.os.empty());
  EXPECT_GT(m.cpus, 0u);
  EXPECT_GT(m.page_size, 0u);
}

TEST(BenchReportTest, SummaryTableListsEveryRunAndMicro) {
  const auto text = sample_report().summary_table();
  EXPECT_NE(text.find("g1000/t4"), std::string::npos);
  EXPECT_NE(text.find("Allocs/step"), std::string::npos);
  EXPECT_NE(text.find("BM_Predict/1000"), std::string::npos);
}

TEST(GoogleBenchmarkJsonTest, ParsesIterationRowsAndSkipsAggregates) {
  const std::string json = R"({
    "context": {"host_name": "ci"},
    "benchmarks": [
      {"name": "BM_A/128", "run_type": "iteration", "iterations": 1000,
       "real_time": 2500.0, "cpu_time": 2400.0, "time_unit": "ns"},
      {"name": "BM_A/128_mean", "run_type": "aggregate", "iterations": 3,
       "real_time": 2510.0, "cpu_time": 2410.0, "time_unit": "ns"},
      {"name": "BM_B/1", "run_type": "iteration", "iterations": 10,
       "real_time": 1.25, "cpu_time": 1.20, "time_unit": "ms"}
    ]})";
  const auto micro = parse_google_benchmark_json(json);
  ASSERT_EQ(micro.size(), 2u);
  EXPECT_EQ(micro[0].name, "BM_A/128");
  EXPECT_DOUBLE_EQ(micro[0].real_time_us, 2.5);  // ns -> us
  EXPECT_EQ(micro[1].name, "BM_B/1");
  EXPECT_DOUBLE_EQ(micro[1].real_time_us, 1250.0);  // ms -> us
  EXPECT_THROW(parse_google_benchmark_json("{\"context\":{}}"),
               std::invalid_argument);
}

TEST(BenchDiffTest, IdenticalReportsPassWithDefaults) {
  const auto diff = diff_bench(sample_report(), sample_report(), {});
  EXPECT_FALSE(diff.regression());
  EXPECT_TRUE(diff.notes.empty());
}

TEST(BenchDiffTest, AllocationDriftFailsInBothDirections) {
  const auto base = sample_report();
  auto worse = sample_report();
  worse.runs[0].allocs_per_step *= 1.2;  // 20 % vs the 10 % default
  auto diff = diff_bench(base, worse, {});
  EXPECT_TRUE(diff.regression());
  EXPECT_FALSE(diff.outcome_identical);
  ASSERT_FALSE(diff.notes.empty());
  EXPECT_NE(diff.notes[0].find("allocs/step"), std::string::npos);

  // A large "improvement" is suspicious too: the workload likely changed.
  auto better = sample_report();
  better.runs[0].allocs_per_step *= 0.5;
  EXPECT_TRUE(diff_bench(base, better, {}).regression());

  // Within tolerance passes.
  auto small = sample_report();
  small.runs[0].allocs_per_step *= 1.05;
  EXPECT_FALSE(diff_bench(base, small, {}).regression());
}

TEST(BenchDiffTest, PhaseAllocationDriftIsGatedToo) {
  const auto base = sample_report();
  auto cand = sample_report();
  cand.runs[0].phases[0].allocs_per_step *= 2.0;
  const auto diff = diff_bench(base, cand, {});
  EXPECT_TRUE(diff.regression());
  ASSERT_FALSE(diff.notes.empty());
  EXPECT_NE(diff.notes[0].find("phase predict"), std::string::npos);
}

TEST(BenchDiffTest, TimingComparedOnlyWhenToleranceEnabled) {
  const auto base = sample_report();
  auto cand = sample_report();
  cand.runs[0].steps_per_sec /= 2.0;
  cand.runs[0].phases[0].p50_us *= 3.0;
  // Off by default: two runs of the same build on a noisy runner pass.
  EXPECT_FALSE(diff_bench(base, cand, {}).regression());

  BenchDiffOptions tight;
  tight.timing_tolerance_pct = 10.0;
  const auto diff = diff_bench(base, cand, tight);
  EXPECT_TRUE(diff.regression());
  EXPECT_TRUE(diff.outcome_identical);
  EXPECT_FALSE(diff.timing_ok);

  // Only the slower direction can fail: a faster candidate always passes.
  auto faster = sample_report();
  faster.runs[0].steps_per_sec *= 2.0;
  faster.runs[0].phases[0].p50_us /= 3.0;
  EXPECT_FALSE(diff_bench(base, faster, tight).regression());
}

TEST(BenchDiffTest, MicroRowsFollowTheTimingTolerance) {
  const auto base = sample_report();
  auto cand = sample_report();
  cand.micro[0].real_time_us *= 2.0;
  EXPECT_FALSE(diff_bench(base, cand, {}).regression());
  BenchDiffOptions tight;
  tight.timing_tolerance_pct = 25.0;
  const auto diff = diff_bench(base, cand, tight);
  EXPECT_TRUE(diff.regression());
  EXPECT_FALSE(diff.timing_ok);
}

TEST(BenchDiffTest, PeakRssGatedOnlyWhenEnabledAndOnlyGrowth) {
  const auto base = sample_report();
  auto cand = sample_report();
  cand.runs[0].peak_rss_kb *= 2;
  EXPECT_FALSE(diff_bench(base, cand, {}).regression());
  BenchDiffOptions opts;
  opts.rss_tolerance_pct = 20.0;
  EXPECT_TRUE(diff_bench(base, cand, opts).regression());
  // Shrinking RSS never fails.
  auto smaller = sample_report();
  smaller.runs[0].peak_rss_kb /= 2;
  EXPECT_FALSE(diff_bench(base, smaller, opts).regression());
}

TEST(BenchDiffTest, MissingRunIsARegressionExtraRunIsANote) {
  const auto base = sample_report();
  BenchReport cand = sample_report();
  cand.runs[0].label = "g2000/t4";
  const auto diff = diff_bench(base, cand, {});
  EXPECT_TRUE(diff.regression());
  bool missing_noted = false;
  bool extra_noted = false;
  for (const auto& note : diff.notes) {
    missing_noted |= note.find("only in baseline") != std::string::npos;
    extra_noted |= note.find("only in candidate") != std::string::npos;
  }
  EXPECT_TRUE(missing_noted);
  EXPECT_TRUE(extra_noted);
}

TEST(BenchDiffTest, DifferentMachinesAreNotedButDoNotFail) {
  const auto base = sample_report();
  auto cand = sample_report();
  cand.machine.cpus = 128;
  const auto diff = diff_bench(base, cand, {});
  EXPECT_FALSE(diff.regression());
  ASSERT_FALSE(diff.notes.empty());
  EXPECT_NE(diff.notes[0].find("not comparable"), std::string::npos);
}

}  // namespace
}  // namespace mmog::obs
