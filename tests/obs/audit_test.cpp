// Decision audit trail: record serialization, trail sequencing, JSONL
// round-trip, and the mmog_diff record comparison.

#include "obs/audit.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "obs/report.hpp"

namespace mmog::obs {
namespace {

AuditRecord sample_record() {
  AuditRecord record;
  record.step = 42;
  record.kind = AuditKind::kMatch;
  record.game = 1;
  record.region = "Europe";
  record.predicted_players = 1234.5;
  record.actual_players = 1200.0;
  record.margin_cpu = 2.5;
  record.demand_cpu = 10.0;
  record.held_cpu = 4.0;
  record.released_cpu = 0.5;
  record.requested_cpu = 6.5;
  record.granted_cpu = 6.5;
  record.unmet_cpu = 0.0;
  record.dc = 2;
  record.offers = {
      {1, OfferOutcome::kRejectedBackoff, 0.0, 45},
      {2, OfferOutcome::kGranted, 6.5, 0},
  };
  return record;
}

TEST(AuditTest, OutcomeAndKindNamesRoundTrip) {
  for (const auto outcome :
       {OfferOutcome::kGranted, OfferOutcome::kRejectedOutage,
        OfferOutcome::kRejectedLatencyDegraded, OfferOutcome::kRejectedBackoff,
        OfferOutcome::kRejectedBulk, OfferOutcome::kRejectedAmount,
        OfferOutcome::kGrantFlapped}) {
    EXPECT_EQ(offer_outcome_from_name(offer_outcome_name(outcome)), outcome);
  }
  for (const auto kind : {AuditKind::kMatch, AuditKind::kReplace,
                          AuditKind::kStatic, AuditKind::kForceRelease}) {
    EXPECT_EQ(audit_kind_from_name(audit_kind_name(kind)), kind);
  }
  EXPECT_THROW(offer_outcome_from_name("nope"), std::invalid_argument);
  EXPECT_THROW(audit_kind_from_name(""), std::invalid_argument);
}

// The JSONL line is the regression-diff currency: its key set, key order
// and number rendering must stay byte-stable across refactors.
TEST(AuditTest, GoldenJsonLine) {
  auto record = sample_record();
  record.seq = 3;
  EXPECT_EQ(
      audit_record_to_json(record),
      "{\"seq\":3,\"step\":42,\"kind\":\"match\",\"game\":1,"
      "\"region\":\"Europe\",\"predicted\":1234.5,\"actual\":1200,"
      "\"margin_cpu\":2.5,\"demand_cpu\":10,\"held_cpu\":4,"
      "\"released_cpu\":0.5,\"requested_cpu\":6.5,\"granted_cpu\":6.5,"
      "\"unmet_cpu\":0,\"dc\":2,\"cause\":\"\",\"alloc_id\":0,"
      "\"offers\":[{\"dc\":1,\"outcome\":\"rejected_backoff\",\"cpu\":0,"
      "\"until_step\":45},{\"dc\":2,\"outcome\":\"granted\",\"cpu\":6.5,"
      "\"until_step\":0}]}");
}

TEST(AuditTest, TrailAssignsConsecutiveSequenceNumbers) {
  AuditTrail trail;
  trail.append(sample_record());
  std::vector<AuditRecord> batch(3, sample_record());
  batch[1].kind = AuditKind::kForceRelease;
  batch[1].cause = "outage";
  trail.append_batch(batch);
  EXPECT_TRUE(batch.empty());  // moved out, ready for the next step
  ASSERT_EQ(trail.size(), 4u);
  const auto records = trail.records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, i);
  }
  EXPECT_EQ(records[2].cause, "outage");
}

TEST(AuditTest, JsonlRoundTripPreservesEveryField) {
  AuditTrail trail;
  trail.append(sample_record());
  auto evict = sample_record();
  evict.kind = AuditKind::kForceRelease;
  evict.cause = "latency";
  evict.alloc_id = 17;
  evict.dc = kAuditNoDc;
  evict.region = "quoted \"region\"\n";
  evict.offers.clear();
  trail.append(evict);

  std::stringstream ss;
  trail.write_jsonl(ss);
  const auto parsed = read_audit_jsonl(ss);
  EXPECT_EQ(parsed, trail.records());
}

TEST(AuditTest, ReadSkipsBlanksAndRejectsGarbage) {
  {
    std::string text = "\n";
    text += audit_record_to_json(sample_record());
    text += "\n\n";
    std::stringstream ss(text);
    EXPECT_EQ(read_audit_jsonl(ss).size(), 1u);
  }
  {
    std::stringstream ss("not json\n");
    EXPECT_THROW(read_audit_jsonl(ss), std::invalid_argument);
  }
}

TEST(AuditTest, DiffAuditsFlagsCountAndContentDrift) {
  const std::vector<AuditRecord> a = {sample_record(), sample_record()};
  EXPECT_FALSE(diff_audits(a, a).regression());

  auto b = a;
  b[1].dc = 5;
  const auto diff = diff_audits(a, b);
  EXPECT_TRUE(diff.regression());
  ASSERT_EQ(diff.notes.size(), 1u);
  EXPECT_NE(diff.notes[0].find("record 1"), std::string::npos);

  b.push_back(sample_record());
  EXPECT_TRUE(diff_audits(a, b).regression());
}

TEST(AuditTest, DiffAuditsCapsTheNoteFlood) {
  std::vector<AuditRecord> a(10, sample_record());
  auto b = a;
  for (auto& record : b) record.granted_cpu += 1.0;
  const auto diff = diff_audits(a, b, 2);
  EXPECT_TRUE(diff.regression());
  ASSERT_EQ(diff.notes.size(), 3u);  // 2 records + "and N more"
  EXPECT_NE(diff.notes.back().find("8 more"), std::string::npos);
}

}  // namespace
}  // namespace mmog::obs
