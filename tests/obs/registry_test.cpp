#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>

#include "util/thread_pool.hpp"

namespace mmog::obs {
namespace {

TEST(RegistryTest, CountersAccumulateAndStartAtZero) {
  Registry reg;
  reg.add("a");
  reg.add("a", 2.5);
  reg.add("b", -1.0);
  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.counters.at("a"), 3.5);
  EXPECT_DOUBLE_EQ(snap.counters.at("b"), -1.0);
  EXPECT_FALSE(snap.counters.contains("c"));
}

TEST(RegistryTest, GaugesAreLastWriteWins) {
  Registry reg;
  reg.set("load", 1.0);
  reg.set("load", 7.0);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauges.at("load"), 7.0);
}

TEST(RegistryTest, MergeOnSnapshotCountsExactlyUnderContention) {
  // The merge-on-snapshot contract: N increments from K pool workers are
  // counted exactly, with each worker writing its own thread-local shard.
  Registry reg;
  util::ThreadPool pool(4);
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kIncrements = 2000;
  util::parallel_for(pool, kTasks, [&](std::size_t) {
    for (std::size_t i = 0; i < kIncrements; ++i) {
      reg.add("work.items");
      reg.observe("work.duration_us", 1.0);
    }
  });
  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.counters.at("work.items"),
                   static_cast<double>(kTasks * kIncrements));
  EXPECT_EQ(snap.histograms.at("work.duration_us").count,
            kTasks * kIncrements);
}

TEST(RegistryTest, SnapshotIsSafeWhileWritersRun) {
  Registry reg;
  util::ThreadPool pool(4);
  std::atomic<bool> stop{false};
  auto fut = pool.submit([&] {
    while (!stop.load()) reg.snapshot();
  });
  util::parallel_for(pool, 32, [&](std::size_t) {
    for (std::size_t i = 0; i < 500; ++i) reg.add("racing");
  });
  stop.store(true);
  fut.get();
  EXPECT_DOUBLE_EQ(reg.snapshot().counters.at("racing"), 32.0 * 500.0);
}

TEST(RegistryTest, HistogramBucketBoundariesAreUpperInclusive) {
  Registry reg;
  reg.define_histogram("h", {1.0, 2.0, 5.0});
  for (double v : {0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 7.5}) reg.observe("h", v);
  const auto snap = reg.snapshot();
  const auto& h = snap.histograms.at("h");
  ASSERT_EQ(h.counts.size(), 4u);  // three bounds + overflow
  EXPECT_EQ(h.counts[0], 2u);      // (-inf, 1]: 0.5, 1.0
  EXPECT_EQ(h.counts[1], 2u);      // (1, 2]: 1.5, 2.0
  EXPECT_EQ(h.counts[2], 2u);      // (2, 5]: 3.0, 5.0
  EXPECT_EQ(h.counts[3], 1u);      // (5, inf): 7.5
  EXPECT_EQ(h.count, 7u);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 7.5);
  EXPECT_DOUBLE_EQ(h.sum, 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 5.0 + 7.5);
}

TEST(RegistryTest, HistogramRedefinitionMustMatch) {
  Registry reg;
  reg.define_histogram("h", {1.0, 2.0});
  EXPECT_NO_THROW(reg.define_histogram("h", {1.0, 2.0}));
  EXPECT_THROW(reg.define_histogram("h", {1.0, 3.0}), std::invalid_argument);
  EXPECT_THROW(reg.define_histogram("bad", {}), std::invalid_argument);
  EXPECT_THROW(reg.define_histogram("bad", {2.0, 1.0}),
               std::invalid_argument);
}

TEST(RegistryTest, UndefinedHistogramGetsDurationBuckets) {
  Registry reg;
  reg.observe("lazy", 3.0);
  const auto snap = reg.snapshot();
  const auto& h = snap.histograms.at("lazy");
  EXPECT_EQ(h.bounds, duration_buckets_us());
  EXPECT_EQ(h.count, 1u);
}

TEST(RegistryTest, QuantileInterpolatesWithinBuckets) {
  Registry reg;
  // 1..100 into unit-wide buckets: quantiles must land within one bucket
  // width of the exact order statistic.
  std::vector<double> bounds;
  for (double b = 1.0; b <= 100.0; b += 1.0) bounds.push_back(b);
  reg.define_histogram("u", bounds);
  for (int v = 1; v <= 100; ++v) reg.observe("u", v);
  const auto snap = reg.snapshot();
  const auto& h = snap.histograms.at("u");
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 1.0, 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(RegistryTest, QuantileOfEmptyHistogramIsZero) {
  HistogramData h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(RegistryTest, LogBucketsAreGeometric) {
  const auto b = log_buckets(1.0, 8.0, 2.0);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[3], 8.0);
  EXPECT_THROW(log_buckets(0.0, 8.0, 2.0), std::invalid_argument);
  EXPECT_THROW(log_buckets(1.0, 8.0, 1.0), std::invalid_argument);
}

TEST(RegistryTest, SnapshotSerializesToJsonAndCsv) {
  Registry reg;
  reg.add("offer.matched", 3.0);
  reg.set("sim.steps", 10.0);
  reg.define_histogram("phase.step_us", {1.0, 10.0});
  reg.observe("phase.step_us", 5.0);
  const auto snap = reg.snapshot();

  const auto json = snap.to_json();
  EXPECT_NE(json.find("\"offer.matched\":3"), std::string::npos);
  EXPECT_NE(json.find("\"sim.steps\":10"), std::string::npos);
  EXPECT_NE(json.find("\"phase.step_us\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[0,1,0]"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');

  const auto csv = snap.to_csv();
  EXPECT_NE(csv.find("type,name,stat,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,offer.matched,value,3"), std::string::npos);
  EXPECT_NE(csv.find("histogram,phase.step_us,count,1"), std::string::npos);
}

TEST(RegistryTest, DistinctRegistriesAreIndependent) {
  Registry a;
  Registry b;
  a.add("x");
  b.add("x", 5.0);
  EXPECT_DOUBLE_EQ(a.snapshot().counters.at("x"), 1.0);
  EXPECT_DOUBLE_EQ(b.snapshot().counters.at("x"), 5.0);
}

}  // namespace
}  // namespace mmog::obs
