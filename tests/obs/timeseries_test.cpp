#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

namespace mmog::obs {
namespace {

TEST(TimeSeriesTest, StoresAtFullResolutionBelowCapacity) {
  TimeSeriesBuffer buf(8);
  for (double v : {1.0, 2.0, 3.0}) buf.push(v);
  EXPECT_EQ(buf.stride(), 1u);
  EXPECT_EQ(buf.samples_seen(), 3u);
  EXPECT_EQ(buf.points(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_FALSE(buf.partial(nullptr));
}

TEST(TimeSeriesTest, CompactionHalvesResolutionAndDoublesStride) {
  TimeSeriesBuffer buf(4);
  for (int i = 1; i <= 4; ++i) buf.push(i);  // fills: compacts to pairs
  EXPECT_EQ(buf.stride(), 2u);
  EXPECT_EQ(buf.points(), (std::vector<double>{1.5, 3.5}));

  buf.push(10.0);  // half a stride-2 window: partial, no new point yet
  EXPECT_EQ(buf.points().size(), 2u);
  double tail = 0.0;
  ASSERT_TRUE(buf.partial(&tail));
  EXPECT_DOUBLE_EQ(tail, 10.0);

  buf.push(20.0);  // completes the window as the mean of both samples
  EXPECT_EQ(buf.points(), (std::vector<double>{1.5, 3.5, 15.0}));
  EXPECT_FALSE(buf.partial(nullptr));
}

TEST(TimeSeriesTest, LongRunsAlwaysFitInCapacityPoints) {
  TimeSeriesBuffer buf(16);
  for (int i = 0; i < 100000; ++i) buf.push(1.0);
  EXPECT_LT(buf.points().size(), 16u);
  EXPECT_EQ(buf.samples_seen(), 100000u);
  // 100000 / 16 rounds up to the next power of two.
  EXPECT_EQ(buf.stride(), 8192u);
  for (double p : buf.points()) EXPECT_DOUBLE_EQ(p, 1.0);
}

TEST(TimeSeriesTest, OddCapacityIsRoundedUpToEven) {
  TimeSeriesBuffer buf(5);
  EXPECT_EQ(buf.capacity(), 6u);
  TimeSeriesBuffer tiny(0);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(TimeSeriesTest, StoreCreatesSeriesOnFirstAppend) {
  TimeSeriesStore store(8);
  std::vector<Sample> samples = {{"a", 1.0}, {"b", 2.0}};
  store.append(0, samples);
  samples[0].value = 3.0;
  store.append(1, samples);
  EXPECT_EQ(store.series_count(), 2u);
  EXPECT_EQ(store.names(), (std::vector<std::string>{"a", "b"}));
}

TEST(TimeSeriesTest, JsonCarriesStrideStartStepAndPoints) {
  TimeSeriesStore store(4);
  std::vector<Sample> samples = {{"core.allocated_cpu", 0.0}};
  for (int t = 0; t < 5; ++t) {
    samples[0].value = t;
    store.append(static_cast<std::uint64_t>(t), samples);
  }
  const auto json = store.to_json();
  EXPECT_NE(json.find("\"name\":\"core.allocated_cpu\""), std::string::npos);
  EXPECT_NE(json.find("\"start_step\":0"), std::string::npos);
  EXPECT_NE(json.find("\"stride\":2"), std::string::npos);
  EXPECT_NE(json.find("\"samples_seen\":5"), std::string::npos);
  // Points 0..3 compacted to {0.5, 2.5}; sample 4 rides as the partial.
  EXPECT_NE(json.find("\"points\":[0.5,2.5,4]"), std::string::npos);
}

TEST(TimeSeriesTest, CsvEscapesAwkwardSeriesNames) {
  TimeSeriesStore store(4);
  store.append(7, {{"metric,with \"quotes\"", 1.0}});
  const auto csv = store.to_csv();
  EXPECT_NE(csv.find("name,step,value\n"), std::string::npos);
  EXPECT_NE(csv.find("\"metric,with \"\"quotes\"\"\",7,1"),
            std::string::npos);
}

}  // namespace
}  // namespace mmog::obs
