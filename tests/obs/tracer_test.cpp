#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mmog::obs {
namespace {

TEST(TracerTest, RecordsEventsInSequenceOrder) {
  Tracer tracer;
  tracer.instant("alloc.granted", "alloc", 3, {{"dc", "EU-1"}});
  tracer.complete_span("predict", "phase", 3, 10.0, 2.5);
  ASSERT_EQ(tracer.size(), 2u);
  const auto events = tracer.events();
  EXPECT_EQ(events[0].kind, TraceKind::kInstant);
  EXPECT_EQ(events[0].name, "alloc.granted");
  EXPECT_EQ(events[0].category, "alloc");
  EXPECT_EQ(events[0].step, 3u);
  EXPECT_EQ(events[0].seq, 0u);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].key, "dc");
  EXPECT_EQ(events[0].args[0].value, "EU-1");
  EXPECT_EQ(events[1].kind, TraceKind::kSpan);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_DOUBLE_EQ(events[1].ts_us, 10.0);
  EXPECT_DOUBLE_EQ(events[1].dur_us, 2.5);
}

TEST(TracerTest, JsonlRoundTripPreservesContent) {
  Tracer tracer;
  tracer.instant("event.under_allocation", "event", 7,
                 {{"region", "Europe"}, {"cpu", "12.5"}});
  tracer.complete_span("step", "step", 7, 123.456, 78.9,
                       {{"units", "4"}});
  tracer.instant("quoted \"name\"\n", "esc\\cat", 8);

  std::stringstream ss;
  tracer.write_jsonl(ss);
  const auto parsed = read_trace_jsonl(ss);

  const auto original = tracer.events();
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].kind, original[i].kind) << i;
    EXPECT_EQ(parsed[i].name, original[i].name) << i;
    EXPECT_EQ(parsed[i].category, original[i].category) << i;
    EXPECT_EQ(parsed[i].step, original[i].step) << i;
    EXPECT_EQ(parsed[i].seq, original[i].seq) << i;
    EXPECT_DOUBLE_EQ(parsed[i].ts_us, original[i].ts_us) << i;
    EXPECT_DOUBLE_EQ(parsed[i].dur_us, original[i].dur_us) << i;
    EXPECT_EQ(parsed[i].args, original[i].args) << i;
  }
}

TEST(TracerTest, JsonlOneObjectPerLine) {
  Tracer tracer;
  tracer.instant("a", "c", 0);
  tracer.instant("b", "c", 1);
  std::stringstream ss;
  tracer.write_jsonl(ss);
  std::size_t lines = 0;
  for (std::string line; std::getline(ss, line);) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, 2u);
}

TEST(TracerTest, ReadSkipsBlankLinesAndRejectsGarbage) {
  {
    std::stringstream ss(
        "\n{\"seq\":0,\"kind\":\"instant\",\"name\":\"x\",\"cat\":\"c\","
        "\"step\":2,\"ts_us\":1.5,\"dur_us\":0,\"args\":{}}\n\n");
    const auto events = read_trace_jsonl(ss);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "x");
    EXPECT_EQ(events[0].step, 2u);
  }
  {
    std::stringstream ss("not json\n");
    EXPECT_THROW(read_trace_jsonl(ss), std::invalid_argument);
  }
}

TEST(TracerTest, ChromeTraceIsWellFormedPerfettoInput) {
  Tracer tracer;
  tracer.complete_span("step", "step", 1, 0.0, 50.0);
  tracer.instant("alloc.granted", "alloc", 1, {{"dc", "EU-1"}});
  std::stringstream ss;
  tracer.write_chrome_trace(ss);
  const auto out = ss.str();
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
  // The step lands in args so Perfetto shows which simulation step a span
  // belongs to.
  EXPECT_NE(out.find("\"step\":\"1\""), std::string::npos);
  EXPECT_EQ(out.front(), '{');
}

TEST(TracerTest, NowIsMonotonicNonNegative) {
  Tracer tracer;
  const double a = tracer.now_us();
  const double b = tracer.now_us();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

// ---------------------------------------------------------------------------
// TraceFileGuard: the CLI arms one before core::simulate so a trace file is
// written even when the run unwinds through an exception.

class TempTracePath {
 public:
  TempTracePath() {
    path_ = ::testing::TempDir() + "mmog_trace_guard_test.jsonl";
    std::remove(path_.c_str());
  }
  ~TempTracePath() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }
  std::string contents() const {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

 private:
  std::string path_;
};

TEST(TraceFileGuardTest, FlushWritesOnceAndDisarmsDestructor) {
  Tracer tracer;
  tracer.instant("alloc.granted", "alloc", 1);
  const TempTracePath tmp;
  {
    TraceFileGuard guard(&tracer, tmp.path(), TraceFileGuard::Format::kJsonl);
    guard.flush();
    const auto after_flush = tmp.contents();
    EXPECT_NE(after_flush.find("alloc.granted"), std::string::npos);
    // More events after flush: the destructor must not rewrite the file.
    tracer.instant("late.event", "alloc", 2);
  }
  EXPECT_EQ(tmp.contents().find("late.event"), std::string::npos);
}

TEST(TraceFileGuardTest, ExceptionalExitStillWritesTheTrace) {
  Tracer tracer;
  tracer.instant("alloc.granted", "alloc", 1);
  const TempTracePath tmp;
  try {
    TraceFileGuard guard(&tracer, tmp.path(), TraceFileGuard::Format::kJsonl);
    throw std::runtime_error("simulated failure mid-run");
  } catch (const std::runtime_error&) {
  }
  std::ifstream in(tmp.path());
  const auto events = read_trace_jsonl(in);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "alloc.granted");
}

TEST(TraceFileGuardTest, FlushThrowsOnUnwritablePathButUnwindDoesNot) {
  Tracer tracer;
  tracer.instant("a", "c", 0);
  const std::string bad = ::testing::TempDir() + "no_such_dir/t.jsonl";
  {
    TraceFileGuard guard(&tracer, bad, TraceFileGuard::Format::kJsonl);
    EXPECT_THROW(guard.flush(), std::runtime_error);
  }
  // Destructor path on the same bad target: best-effort, never throws.
  try {
    TraceFileGuard guard(&tracer, bad, TraceFileGuard::Format::kJsonl);
    throw std::runtime_error("unwind");
  } catch (const std::runtime_error&) {
  }
}

TEST(TraceFileGuardTest, NullTracerOrEmptyPathIsInert) {
  const TempTracePath tmp;
  { TraceFileGuard guard(nullptr, tmp.path(), TraceFileGuard::Format::kJsonl); }
  EXPECT_TRUE(tmp.contents().empty());
  Tracer tracer;
  tracer.instant("a", "c", 0);
  { TraceFileGuard guard(&tracer, "", TraceFileGuard::Format::kJsonl); }
}

}  // namespace
}  // namespace mmog::obs
