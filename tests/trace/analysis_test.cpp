#include "trace/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "trace/runescape_model.hpp"
#include "util/stats.hpp"

namespace mmog::trace {
namespace {

RegionalTrace make_region(std::vector<std::vector<double>> group_loads) {
  RegionalTrace region;
  region.name = "Europe";
  for (auto& loads : group_loads) {
    ServerGroupTrace g;
    g.players = util::TimeSeries(120.0, std::move(loads));
    region.groups.push_back(std::move(g));
  }
  return region;
}

TEST(AnalysisTest, AggregateComputesMinMedianMaxPerStep) {
  const auto region = make_region({{1, 10}, {2, 20}, {3, 30}});
  const auto agg = aggregate_over_groups(region);
  ASSERT_EQ(agg.size(), 2u);
  EXPECT_DOUBLE_EQ(agg[0].min, 1.0);
  EXPECT_DOUBLE_EQ(agg[0].median, 2.0);
  EXPECT_DOUBLE_EQ(agg[0].max, 3.0);
  EXPECT_DOUBLE_EQ(agg[1].median, 20.0);
}

TEST(AnalysisTest, AggregateOfEmptyRegionIsEmpty) {
  RegionalTrace region;
  EXPECT_TRUE(aggregate_over_groups(region).empty());
  EXPECT_TRUE(iqr_over_time(region).empty());
}

TEST(AnalysisTest, IqrOverTimeTracksSpread) {
  // Four groups; at step 0 identical (IQR 0), at step 1 spread out.
  const auto region = make_region({{5, 0}, {5, 10}, {5, 20}, {5, 30}});
  const auto iqr = iqr_over_time(region);
  ASSERT_EQ(iqr.size(), 2u);
  EXPECT_DOUBLE_EQ(iqr[0], 0.0);
  EXPECT_GT(iqr[1], 10.0);
}

TEST(AnalysisTest, GroupAutocorrelationsHaveRequestedLags) {
  const auto region = make_region({{1, 2, 3, 4, 5, 6}, {6, 5, 4, 3, 2, 1}});
  const auto acfs = group_autocorrelations(region, 3);
  ASSERT_EQ(acfs.size(), 2u);
  for (const auto& acf : acfs) {
    ASSERT_EQ(acf.size(), 4u);
    EXPECT_DOUBLE_EQ(acf[0], 1.0);
  }
}

TEST(AnalysisTest, CountAlwaysFullFindsPeggedGroups) {
  RegionalTrace region;
  ServerGroupTrace full;
  full.capacity = 100;
  full.players = util::TimeSeries(120.0, {96, 97, 95, 98});
  ServerGroupTrace normal;
  normal.capacity = 100;
  normal.players = util::TimeSeries(120.0, {50, 60, 70, 40});
  region.groups.push_back(std::move(full));
  region.groups.push_back(std::move(normal));
  EXPECT_EQ(count_always_full(region, 0.95, 0.9), 1u);
  EXPECT_EQ(count_always_full(region, 0.99, 0.9), 0u);
}

TEST(AnalysisTest, DetectEventsFindsADrop) {
  // Flat series with a sharp sustained 30 % drop in the middle.
  std::vector<double> values;
  for (int t = 0; t < 3000; ++t) {
    values.push_back(t < 1500 ? 1000.0 : 700.0);
  }
  const util::TimeSeries ts(120.0, std::move(values));
  const auto events = detect_events(ts, 360, 0.18);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().kind, DetectedEvent::Kind::kDrop);
  EXPECT_NEAR(events.front().relative_change, -0.3, 0.05);
  EXPECT_NEAR(static_cast<double>(events.front().step), 1500.0, 120.0);
}

TEST(AnalysisTest, DetectEventsFindsASurge) {
  std::vector<double> values;
  for (int t = 0; t < 3000; ++t) {
    values.push_back(t < 1500 ? 1000.0 : 1600.0);
  }
  const util::TimeSeries ts(120.0, std::move(values));
  const auto events = detect_events(ts, 360, 0.18);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().kind, DetectedEvent::Kind::kSurge);
  EXPECT_GT(events.front().relative_change, 0.4);
}

TEST(AnalysisTest, DetectEventsIgnoresDiurnalCycles) {
  // A pure diurnal sinusoid is not an event at a one-day window.
  std::vector<double> values;
  for (int t = 0; t < 720 * 6; ++t) {
    values.push_back(1000.0 +
                     200.0 * std::sin(2.0 * std::numbers::pi * t / 720.0));
  }
  const util::TimeSeries ts(120.0, std::move(values));
  const auto events = detect_events(ts, 720, 0.18);
  EXPECT_TRUE(events.empty());
}

TEST(AnalysisTest, DetectEventsOnShortSeriesIsEmpty) {
  const util::TimeSeries ts(120.0, {1, 2, 3});
  EXPECT_TRUE(detect_events(ts, 720, 0.18).empty());
}

TEST(AnalysisTest, SyntheticRegionShowsDiurnalIqrCycle) {
  // Fig 3 middle subplot: the IQR across groups follows a diurnal cycle.
  auto cfg = RuneScapeModelConfig::paper_default();
  cfg.steps = util::samples_per_days(4);
  cfg.seed = 3;
  cfg.waves_per_day = 0;  // isolate the diurnal cycle from activity waves
  const auto world = generate(cfg);
  const auto iqr = iqr_over_time(world.regions[0]);
  const auto acf = util::autocorrelation(iqr, 730);
  EXPECT_GT(acf[720], 0.4);
}

}  // namespace
}  // namespace mmog::trace
