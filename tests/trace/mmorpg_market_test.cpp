#include "trace/mmorpg_market.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace mmog::trace {
namespace {

TEST(MarketTest, TitleIsZeroBeforeLaunch) {
  TitleSpec t{"X", 2000.0, 1e6, 2.0};
  EXPECT_DOUBLE_EQ(title_players_at(t, 1999.0), 0.0);
}

TEST(MarketTest, TitleApproachesPlateau) {
  TitleSpec t{"X", 2000.0, 1e6, 2.0};
  EXPECT_NEAR(title_players_at(t, 2010.0), 1e6, 1e4);
}

TEST(MarketTest, TitleGrowsMonotonicallyWithoutDecline) {
  TitleSpec t{"X", 2000.0, 1.5, 0.0};
  t.plateau_players = 5e5;
  double prev = -1.0;
  for (double y = 2000.0; y <= 2012.0; y += 0.5) {
    const double v = title_players_at(t, y);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(MarketTest, DeclineShrinksPopulation) {
  TitleSpec t{"X", 2000.0, 1e6, 2.0, 2005.0, 0.5};
  const double at_peak = title_players_at(t, 2005.0);
  const double later = title_players_at(t, 2008.0);
  EXPECT_LT(later, at_peak * 0.5);
}

TEST(MarketTest, MarketSeriesSamplesInclusive) {
  const auto titles = paper_title_catalog();
  const auto series = market_series(titles, 1997.0, 2008.0, 1.0);
  ASSERT_EQ(series.size(), 12u);
  EXPECT_DOUBLE_EQ(series.front().year, 1997.0);
  EXPECT_DOUBLE_EQ(series.back().year, 2008.0);
  for (const auto& p : series) {
    ASSERT_EQ(p.per_title.size(), titles.size());
  }
}

TEST(MarketTest, MarketSeriesRejectsBadRange) {
  const auto titles = paper_title_catalog();
  EXPECT_TRUE(market_series(titles, 2008.0, 1997.0).empty());
  EXPECT_TRUE(market_series(titles, 1997.0, 2008.0, 0.0).empty());
}

TEST(MarketTest, TotalGrowsOverTheDecade) {
  // Fig 1: the MMORPG market grows steadily from 1997 to 2008.
  const auto titles = paper_title_catalog();
  const auto series = market_series(titles, 1997.0, 2008.0, 1.0);
  EXPECT_LT(series.front().total, 1e6);
  EXPECT_GT(series.back().total, 15e6);
}

TEST(MarketTest, SixTitlesAboveHalfMillionIn2008) {
  // The paper highlights six games with > 500 k players each.
  const auto titles = paper_title_catalog();
  const auto leaders = titles_above(titles, 2008.0, 500e3);
  EXPECT_EQ(leaders.size(), 6u);
  EXPECT_NE(std::find(leaders.begin(), leaders.end(), "World of Warcraft"),
            leaders.end());
  EXPECT_NE(std::find(leaders.begin(), leaders.end(), "RuneScape"),
            leaders.end());
}

TEST(MarketTest, WorldOfWarcraftDominatesBy2008) {
  const auto titles = paper_title_catalog();
  const auto it = std::find_if(titles.begin(), titles.end(), [](const auto& t) {
    return t.name == "World of Warcraft";
  });
  ASSERT_NE(it, titles.end());
  EXPECT_GT(title_players_at(*it, 2008.0), 8e6);
}

TEST(MarketTest, RuneScapeReachesMillionsOfActives) {
  const auto titles = paper_title_catalog();
  const auto it = std::find_if(titles.begin(), titles.end(), [](const auto& t) {
    return t.name == "RuneScape";
  });
  ASSERT_NE(it, titles.end());
  // §III-B: over 5 M active players estimated in 2008.
  EXPECT_GT(title_players_at(*it, 2008.0), 3e6);
}

TEST(MarketTest, GrowthExtrapolatesTowards60MBy2011) {
  // §II-C: assuming the same rate of growth, over 60 M players by 2011.
  const auto titles = paper_title_catalog();
  const auto series = market_series(titles, 2008.0, 2011.0, 3.0);
  // Our catalog only extrapolates existing titles, so expect a healthy
  // fraction of the projection rather than the full market forecast.
  EXPECT_GT(series.back().total, 20e6);
}

}  // namespace
}  // namespace mmog::trace
