#include "trace/runescape_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "trace/analysis.hpp"
#include "util/stats.hpp"

namespace mmog::trace {
namespace {

RuneScapeModelConfig small_config() {
  auto cfg = RuneScapeModelConfig::paper_default();
  cfg.steps = util::samples_per_days(4);
  cfg.seed = 7;
  return cfg;
}

TEST(RuneScapeModelTest, PaperDefaultHasFiveRegions) {
  const auto cfg = RuneScapeModelConfig::paper_default();
  ASSERT_EQ(cfg.regions.size(), 5u);
  EXPECT_EQ(cfg.regions[0].name, "Europe");
  EXPECT_EQ(cfg.regions[0].server_groups, 40u);
  // Region 0 (Europe) shows no weekend effect (§III-C).
  EXPECT_DOUBLE_EQ(cfg.regions[0].weekend_multiplier, 1.0);
}

TEST(RuneScapeModelTest, GeneratesRequestedShape) {
  const auto cfg = small_config();
  const auto world = generate(cfg);
  ASSERT_EQ(world.regions.size(), cfg.regions.size());
  EXPECT_EQ(world.steps(), cfg.steps);
  for (std::size_t r = 0; r < world.regions.size(); ++r) {
    EXPECT_EQ(world.regions[r].groups.size(), cfg.regions[r].server_groups);
    for (const auto& g : world.regions[r].groups) {
      EXPECT_EQ(g.players.size(), cfg.steps);
    }
  }
}

TEST(RuneScapeModelTest, DeterministicForSameSeed) {
  const auto cfg = small_config();
  const auto a = generate(cfg);
  const auto b = generate(cfg);
  for (std::size_t t = 0; t < a.steps(); t += 100) {
    EXPECT_DOUBLE_EQ(a.regions[0].groups[5].players[t],
                     b.regions[0].groups[5].players[t]);
  }
}

TEST(RuneScapeModelTest, DifferentSeedsDiffer) {
  auto cfg = small_config();
  const auto a = generate(cfg);
  cfg.seed = 8;
  const auto b = generate(cfg);
  EXPECT_NE(a.global().values()[100], b.global().values()[100]);
}

TEST(RuneScapeModelTest, LoadsRespectCapacity) {
  const auto world = generate(small_config());
  for (const auto& region : world.regions) {
    for (const auto& group : region.groups) {
      for (double v : group.players.values()) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, static_cast<double>(group.capacity));
      }
    }
  }
}

TEST(RuneScapeModelTest, DiurnalAutocorrelationPeaksAtOneDay) {
  // §III-C / Fig 3: ACF peak near lag 720 (24 h), trough near lag 360 (12 h).
  auto cfg = small_config();
  cfg.steps = util::samples_per_days(6);
  const auto world = generate(cfg);
  const auto total = world.regions[0].total();
  const auto acf = util::autocorrelation(total.values(), 760);
  EXPECT_GT(acf[720], 0.55);
  EXPECT_LT(acf[360], -0.3);
}

TEST(RuneScapeModelTest, PeakMedianExceedsMinimumStrongly) {
  // §III-C: the median is about 50 % higher than the minimum at peak hours.
  const auto world = generate(small_config());
  const auto total = world.regions[0].total();
  const double hi = total.max();
  const double lo = total.min();
  EXPECT_GT(hi / lo, 1.35);
}

TEST(RuneScapeModelTest, AlwaysFullGroupsExist) {
  const auto world = generate(small_config());
  const auto n = count_always_full(world.regions[0], 0.90, 0.9);
  // 3 % of 40 groups = about 1 group pegged near capacity.
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 4u);
}

TEST(RuneScapeModelTest, GlobalScaleIsRealistic) {
  // The paper reports ~100k-250k active concurrent players globally.
  const auto world = generate(small_config());
  const auto global = world.global();
  EXPECT_GT(global.mean(), 60e3);
  EXPECT_LT(global.max(), 300e3);
}

TEST(EventMultiplierTest, NoEventsIsUnity) {
  EXPECT_DOUBLE_EQ(event_multiplier({}, 1000), 1.0);
}

TEST(EventMultiplierTest, BeforeEventIsUnity) {
  EventSpec e;
  e.kind = EventSpec::Kind::kContentRelease;
  e.step = 500;
  EXPECT_DOUBLE_EQ(event_multiplier({e}, 100), 1.0);
}

TEST(EventMultiplierTest, UnpopularDecisionDropsWithinADay) {
  EventSpec e;
  e.kind = EventSpec::Kind::kUnpopularDecision;
  e.step = 0;
  e.magnitude = 0.25;  // "a quarter of its value", §III-B
  e.recovery_delay_steps = 720 * 8;
  e.recovery_level = 0.95;
  // Within a day the multiplier reaches the full drop.
  EXPECT_NEAR(event_multiplier({e}, 720), 0.75, 0.01);
  // After the amendment it recovers to 95 %, not 100 %.
  EXPECT_NEAR(event_multiplier({e}, 720 * 12), 0.95, 0.01);
}

TEST(EventMultiplierTest, ContentReleaseSurgesOverFiftyPercent) {
  EventSpec e;
  e.kind = EventSpec::Kind::kContentRelease;
  e.step = 0;
  e.magnitude = 0.55;
  // During the plateau (~days 1-5) the surge is fully applied.
  EXPECT_NEAR(event_multiplier({e}, 720 * 3), 1.55, 0.01);
  // Long after, only a small residual lift remains.
  EXPECT_LT(event_multiplier({e}, 720 * 30), 1.1);
  EXPECT_GT(event_multiplier({e}, 720 * 30), 1.0);
}

TEST(EventMultiplierTest, EventsCompose) {
  EventSpec drop;
  drop.kind = EventSpec::Kind::kUnpopularDecision;
  drop.step = 0;
  drop.magnitude = 0.2;
  drop.recovery_delay_steps = 100000;  // never amended in range
  EventSpec release;
  release.kind = EventSpec::Kind::kContentRelease;
  release.step = 0;
  release.magnitude = 0.5;
  const double combined = event_multiplier({drop, release}, 720 * 2);
  EXPECT_NEAR(combined, 0.8 * 1.5, 0.02);
}

TEST(RuneScapeModelTest, EventsShapeTheGlobalTrace) {
  auto cfg = small_config();
  cfg.steps = util::samples_per_days(8);
  EventSpec e;
  e.kind = EventSpec::Kind::kUnpopularDecision;
  e.step = util::samples_per_days(4);
  e.magnitude = 0.25;
  e.recovery_delay_steps = 100000;
  cfg.events = {e};
  const auto with_event = generate(cfg);
  cfg.events.clear();
  const auto without = generate(cfg);
  // Compare the same diurnal phase one day before vs two days after.
  const auto g_with = with_event.global();
  const auto g_without = without.global();
  const std::size_t after = util::samples_per_days(6);
  EXPECT_LT(g_with[after], 0.85 * g_without[after]);
}

}  // namespace
}  // namespace mmog::trace
