#include "trace/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/runescape_model.hpp"

namespace mmog::trace {
namespace {

WorldTrace tiny_world() {
  WorldTrace world;
  RegionalTrace region;
  region.name = "Europe";
  region.utc_offset_hours = 1;
  ServerGroupTrace g1;
  g1.name = "Europe-1";
  g1.capacity = 2000;
  g1.players = util::TimeSeries(util::kSampleStepSeconds, {10, 20, 30});
  ServerGroupTrace g2;
  g2.name = "Europe-2";
  g2.capacity = 1500;
  g2.players = util::TimeSeries(util::kSampleStepSeconds, {5, 6, 7});
  region.groups = {g1, g2};
  world.regions.push_back(std::move(region));
  return world;
}

TEST(TraceIoTest, RoundTripPreservesEverything) {
  const auto world = tiny_world();
  std::ostringstream out;
  write_world_csv(out, world);
  std::istringstream in(out.str());
  const auto loaded = read_world_csv(in);

  ASSERT_EQ(loaded.regions.size(), 1u);
  const auto& region = loaded.regions[0];
  EXPECT_EQ(region.name, "Europe");
  EXPECT_EQ(region.utc_offset_hours, 1);
  ASSERT_EQ(region.groups.size(), 2u);
  EXPECT_EQ(region.groups[0].name, "Europe-1");
  EXPECT_EQ(region.groups[1].capacity, 1500u);
  ASSERT_EQ(region.groups[0].players.size(), 3u);
  EXPECT_DOUBLE_EQ(region.groups[0].players[2], 30.0);
  EXPECT_DOUBLE_EQ(region.groups[1].players[0], 5.0);
}

TEST(TraceIoTest, RoundTripOnGeneratedWorld) {
  auto cfg = RuneScapeModelConfig::paper_default();
  cfg.steps = 50;
  cfg.seed = 3;
  cfg.regions.resize(2);
  cfg.regions[0].server_groups = 3;
  cfg.regions[1].server_groups = 2;
  const auto world = generate(cfg);

  std::ostringstream out;
  write_world_csv(out, world);
  std::istringstream in(out.str());
  const auto loaded = read_world_csv(in);

  ASSERT_EQ(loaded.regions.size(), world.regions.size());
  for (std::size_t r = 0; r < world.regions.size(); ++r) {
    ASSERT_EQ(loaded.regions[r].groups.size(), world.regions[r].groups.size());
    for (std::size_t g = 0; g < world.regions[r].groups.size(); ++g) {
      const auto& a = world.regions[r].groups[g].players;
      const auto& b = loaded.regions[r].groups[g].players;
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t t = 0; t < a.size(); ++t) {
        EXPECT_DOUBLE_EQ(a[t], b[t]);
      }
    }
  }
}

TEST(TraceIoTest, RejectsMissingColumns) {
  std::istringstream in("region,group\nEurope,G1\n");
  EXPECT_THROW(read_world_csv(in), std::out_of_range);
}

TEST(TraceIoTest, RejectsNonNumericCells) {
  std::istringstream in(
      "region,utc_offset_hours,group,capacity,step,players\n"
      "Europe,1,G1,2000,0,abc\n");
  EXPECT_THROW(read_world_csv(in), std::runtime_error);
}

TEST(TraceIoTest, RejectsNonContiguousSteps) {
  std::istringstream in(
      "region,utc_offset_hours,group,capacity,step,players\n"
      "Europe,1,G1,2000,0,10\n"
      "Europe,1,G1,2000,2,20\n");
  EXPECT_THROW(read_world_csv(in), std::runtime_error);
}

TEST(TraceIoTest, RejectsShortRows) {
  std::istringstream in(
      "region,utc_offset_hours,group,capacity,step,players\n"
      "Europe,1,G1\n");
  EXPECT_THROW(read_world_csv(in), std::runtime_error);
}

TEST(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(read_world_csv_file("/nonexistent/missing.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace mmog::trace
