#include "trace/trace.hpp"

#include <gtest/gtest.h>

namespace mmog::trace {
namespace {

WorldTrace make_world() {
  WorldTrace world;
  RegionalTrace region;
  region.name = "Europe";
  for (int g = 0; g < 2; ++g) {
    ServerGroupTrace group;
    group.name = "G" + std::to_string(g);
    group.players = util::TimeSeries(120.0, {100.0 * (g + 1), 200.0 * (g + 1)});
    region.groups.push_back(std::move(group));
  }
  world.regions.push_back(std::move(region));
  RegionalTrace region2;
  region2.name = "Australia";
  ServerGroupTrace group;
  group.players = util::TimeSeries(120.0, {10, 20});
  region2.groups.push_back(std::move(group));
  world.regions.push_back(std::move(region2));
  return world;
}

TEST(TraceTest, RegionalTotalSumsGroups) {
  const auto world = make_world();
  const auto total = world.regions[0].total();
  ASSERT_EQ(total.size(), 2u);
  EXPECT_DOUBLE_EQ(total[0], 300.0);
  EXPECT_DOUBLE_EQ(total[1], 600.0);
}

TEST(TraceTest, EmptyRegionTotalIsEmpty) {
  RegionalTrace region;
  EXPECT_TRUE(region.total().empty());
}

TEST(TraceTest, GlobalSumsAllRegions) {
  const auto world = make_world();
  const auto global = world.global();
  ASSERT_EQ(global.size(), 2u);
  EXPECT_DOUBLE_EQ(global[0], 310.0);
  EXPECT_DOUBLE_EQ(global[1], 620.0);
}

TEST(TraceTest, EmptyWorldGlobalIsEmpty) {
  WorldTrace world;
  EXPECT_TRUE(world.global().empty());
  EXPECT_EQ(world.steps(), 0u);
}

TEST(TraceTest, StepsReportsSampleCount) {
  const auto world = make_world();
  EXPECT_EQ(world.steps(), 2u);
}

TEST(TraceTest, DefaultCapacityIsRuneScapeServer) {
  ServerGroupTrace group;
  EXPECT_EQ(group.capacity, 2000u);
}

}  // namespace
}  // namespace mmog::trace
