#include "emu/datasets.hpp"

#include <gtest/gtest.h>

namespace mmog::emu {
namespace {

TEST(DatasetsTest, ProducesEightSets) {
  const auto sets = table1_datasets();
  EXPECT_EQ(sets.size(), 8u);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    EXPECT_EQ(sets[i].name, "Set " + std::to_string(i + 1));
  }
}

TEST(DatasetsTest, BehaviourPercentagesMatchTableOne) {
  const auto sets = table1_datasets();
  // Set 1: 80/10/0/10.
  EXPECT_DOUBLE_EQ(sets[0].mix.aggressive, 0.80);
  EXPECT_DOUBLE_EQ(sets[0].mix.scout, 0.10);
  EXPECT_DOUBLE_EQ(sets[0].mix.team, 0.00);
  EXPECT_DOUBLE_EQ(sets[0].mix.camper, 0.10);
  // Set 6: 10/80/10/0.
  EXPECT_DOUBLE_EQ(sets[5].mix.aggressive, 0.10);
  EXPECT_DOUBLE_EQ(sets[5].mix.scout, 0.80);
  EXPECT_DOUBLE_EQ(sets[5].mix.team, 0.10);
  EXPECT_DOUBLE_EQ(sets[5].mix.camper, 0.00);
}

TEST(DatasetsTest, PeakHoursOnlyForSetsFiveToEight) {
  const auto sets = table1_datasets();
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FALSE(sets[i].peak_hours) << i;
  for (std::size_t i = 4; i < 8; ++i) EXPECT_TRUE(sets[i].peak_hours) << i;
}

TEST(DatasetsTest, SignalTypesFollowSectionIVD) {
  // Type I: sets 2, 3, 4 (indices 1-3); Type II: sets 6, 7, 8 (5-7);
  // Type III: sets 1 and 5 (0, 4).
  EXPECT_EQ(signal_type(0), SignalType::kTypeIII);
  EXPECT_EQ(signal_type(1), SignalType::kTypeI);
  EXPECT_EQ(signal_type(2), SignalType::kTypeI);
  EXPECT_EQ(signal_type(3), SignalType::kTypeI);
  EXPECT_EQ(signal_type(4), SignalType::kTypeIII);
  EXPECT_EQ(signal_type(5), SignalType::kTypeII);
  EXPECT_EQ(signal_type(6), SignalType::kTypeII);
  EXPECT_EQ(signal_type(7), SignalType::kTypeII);
}

TEST(DatasetsTest, DynamicsEncodeSignalTypes) {
  const auto sets = table1_datasets();
  // Type I has the highest instantaneous dynamics, Type II the lowest.
  EXPECT_GT(sets[1].instantaneous_dynamics, sets[0].instantaneous_dynamics);
  EXPECT_GT(sets[0].instantaneous_dynamics, sets[5].instantaneous_dynamics);
}

TEST(DatasetsTest, SignalTypeNames) {
  EXPECT_EQ(signal_type_name(SignalType::kTypeI), "Type I");
  EXPECT_EQ(signal_type_name(SignalType::kTypeII), "Type II");
  EXPECT_EQ(signal_type_name(SignalType::kTypeIII), "Type III");
}

TEST(DatasetsTest, SeedsAreDistinct) {
  const auto sets = table1_datasets(500);
  for (std::size_t i = 1; i < sets.size(); ++i) {
    EXPECT_NE(sets[i].seed, sets[i - 1].seed);
  }
  EXPECT_EQ(sets[0].seed, 500u);
}

TEST(DatasetsTest, OneSimulatedDayAtTwoMinuteSamples) {
  for (const auto& set : table1_datasets()) {
    EXPECT_EQ(set.samples, util::kSamplesPerDay);
  }
}

}  // namespace
}  // namespace mmog::emu
