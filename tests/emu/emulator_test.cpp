#include "emu/emulator.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace mmog::emu {
namespace {

DatasetConfig tiny_config() {
  DatasetConfig c;
  c.name = "tiny";
  c.mix = {0.4, 0.3, 0.2, 0.1};
  c.peak_load = 200.0;
  c.samples = 30;
  c.ticks_per_sample = 8;
  c.seed = 5;
  return c;
}

TEST(WorldConfigTest, GeometryAccessors) {
  WorldConfig w{8, 4, 25.0};
  EXPECT_EQ(w.zone_count(), 32u);
  EXPECT_DOUBLE_EQ(w.width(), 200.0);
  EXPECT_DOUBLE_EQ(w.height(), 100.0);
}

TEST(EmulatorTest, RunProducesRequestedSamples) {
  Emulator emu(WorldConfig{8, 8, 50.0}, tiny_config());
  const auto trace = emu.run();
  EXPECT_EQ(trace.samples.size(), 30u);
  EXPECT_EQ(trace.name, "tiny");
}

TEST(EmulatorTest, ZoneCountsSumToTotal) {
  Emulator emu(WorldConfig{8, 8, 50.0}, tiny_config());
  const auto trace = emu.run();
  for (const auto& s : trace.samples) {
    const double sum =
        std::accumulate(s.zone_counts.begin(), s.zone_counts.end(), 0.0);
    EXPECT_DOUBLE_EQ(sum, s.total);
  }
}

TEST(EmulatorTest, PopulationTracksPeakLoad) {
  auto cfg = tiny_config();
  cfg.peak_hours = false;
  cfg.overall_dynamics = 0.0;  // no slow modulation
  cfg.samples = 60;
  Emulator emu(WorldConfig{8, 8, 50.0}, cfg);
  const auto trace = emu.run();
  // Without peak-hours shaping the population should hover near peak_load.
  const auto total = trace.total_series();
  EXPECT_NEAR(total.mean(), cfg.peak_load, cfg.peak_load * 0.15);
}

TEST(EmulatorTest, PeakHoursCreateDailyVariation) {
  auto cfg = tiny_config();
  cfg.peak_hours = true;
  cfg.overall_dynamics = 0.0;
  cfg.samples = util::kSamplesPerDay;
  cfg.ticks_per_sample = 2;  // keep the test fast
  Emulator emu(WorldConfig{8, 8, 50.0}, cfg);
  const auto trace = emu.run();
  const auto total = trace.total_series();
  // Diurnal shaping: max well above min over a simulated day.
  EXPECT_GT(total.max(), 2.0 * std::max(1.0, total.min()));
}

TEST(EmulatorTest, DeterministicForSameSeed) {
  const auto cfg = tiny_config();
  Emulator a(WorldConfig{}, cfg);
  Emulator b(WorldConfig{}, cfg);
  const auto ta = a.run();
  const auto tb = b.run();
  for (std::size_t s = 0; s < ta.samples.size(); ++s) {
    EXPECT_DOUBLE_EQ(ta.samples[s].total, tb.samples[s].total);
    EXPECT_EQ(ta.samples[s].zone_counts, tb.samples[s].zone_counts);
  }
}

TEST(EmulatorTest, DifferentSeedsDiverge) {
  auto cfg = tiny_config();
  Emulator a(WorldConfig{}, cfg);
  cfg.seed = 6;
  Emulator b(WorldConfig{}, cfg);
  const auto ta = a.run();
  const auto tb = b.run();
  bool any_diff = false;
  for (std::size_t s = 0; s < ta.samples.size() && !any_diff; ++s) {
    any_diff = ta.samples[s].zone_counts != tb.samples[s].zone_counts;
  }
  EXPECT_TRUE(any_diff);
}

TEST(EmulatorTest, AggressiveMixConcentratesEntities) {
  // Aggressive entities seek hot-spots, so occupancy concentrates in fewer
  // zones than with pure scouts (who spread towards uncharted zones).
  auto aggressive = tiny_config();
  aggressive.mix = {1.0, 0.0, 0.0, 0.0};
  aggressive.samples = 40;
  auto scouts = tiny_config();
  scouts.mix = {0.0, 1.0, 0.0, 0.0};
  scouts.samples = 40;

  auto concentration = [](const EmulatorTrace& trace) {
    // Mean interaction intensity normalized by total^2 — higher = denser.
    double sum = 0.0;
    for (const auto& s : trace.samples) {
      if (s.total > 1.0) sum += s.interactions / (s.total * s.total);
    }
    return sum / static_cast<double>(trace.samples.size());
  };

  Emulator ea(WorldConfig{}, aggressive);
  Emulator es(WorldConfig{}, scouts);
  EXPECT_GT(concentration(ea.run()), 1.5 * concentration(es.run()));
}

TEST(EmulatorTest, InteractionsAreConsistentWithZoneCounts) {
  Emulator emu(WorldConfig{4, 4, 50.0}, tiny_config());
  const auto sample = emu.step_sample();
  double expected = 0.0;
  for (double c : sample.zone_counts) expected += c * (c - 1.0) / 2.0;
  EXPECT_DOUBLE_EQ(sample.interactions, expected);
}

TEST(EmulatorTraceTest, SeriesAccessorsMatchSamples) {
  Emulator emu(WorldConfig{4, 4, 50.0}, tiny_config());
  const auto trace = emu.run();
  const auto total = trace.total_series();
  const auto zones = trace.zone_series();
  const auto inter = trace.interaction_series();
  ASSERT_EQ(total.size(), trace.samples.size());
  ASSERT_EQ(inter.size(), trace.samples.size());
  ASSERT_EQ(zones.size(), trace.world.zone_count());
  for (std::size_t t = 0; t < trace.samples.size(); ++t) {
    EXPECT_DOUBLE_EQ(total[t], trace.samples[t].total);
    EXPECT_DOUBLE_EQ(inter[t], trace.samples[t].interactions);
    double sum = 0.0;
    for (const auto& z : zones) sum += z[t];
    EXPECT_DOUBLE_EQ(sum, trace.samples[t].total);
  }
}

TEST(EmulatorTest, HighInstantaneousDynamicsMovesEntitiesMore) {
  // High instantaneous dynamics => faster movement and hot-spot churn =>
  // larger sample-to-sample changes in zone occupancy.
  auto slow = tiny_config();
  slow.instantaneous_dynamics = 0.0;
  slow.samples = 50;
  auto fast = tiny_config();
  fast.instantaneous_dynamics = 1.0;
  fast.samples = 50;

  auto churn = [](const EmulatorTrace& trace) {
    double total = 0.0;
    for (std::size_t t = 1; t < trace.samples.size(); ++t) {
      double diff = 0.0;
      const auto& a = trace.samples[t - 1].zone_counts;
      const auto& b = trace.samples[t].zone_counts;
      for (std::size_t z = 0; z < a.size(); ++z) diff += std::abs(a[z] - b[z]);
      total += diff;
    }
    return total;
  };

  Emulator es(WorldConfig{}, slow);
  Emulator ef(WorldConfig{}, fast);
  EXPECT_GT(churn(ef.run()), churn(es.run()));
}

}  // namespace
}  // namespace mmog::emu
