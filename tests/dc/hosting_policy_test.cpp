#include "dc/hosting_policy.hpp"

#include <gtest/gtest.h>

namespace mmog::dc {
namespace {

TEST(HostingPolicyTest, PresetsMatchTableFour) {
  const auto hp1 = HostingPolicy::preset(1);
  EXPECT_EQ(hp1.name, "HP-1");
  EXPECT_DOUBLE_EQ(hp1.bulk.cpu(), 0.25);
  EXPECT_DOUBLE_EQ(hp1.bulk.memory(), 0.0);  // n/a
  EXPECT_DOUBLE_EQ(hp1.bulk.net_in(), 6.0);
  EXPECT_DOUBLE_EQ(hp1.bulk.net_out(), 0.33);
  EXPECT_DOUBLE_EQ(hp1.time_bulk_minutes, 360.0);

  const auto hp7 = HostingPolicy::preset(7);
  EXPECT_DOUBLE_EQ(hp7.bulk.cpu(), 1.11);
  EXPECT_DOUBLE_EQ(hp7.bulk.memory(), 2.0);
  EXPECT_DOUBLE_EQ(hp7.time_bulk_minutes, 180.0);

  const auto hp11 = HostingPolicy::preset(11);
  EXPECT_DOUBLE_EQ(hp11.bulk.cpu(), 0.37);
  EXPECT_DOUBLE_EQ(hp11.time_bulk_minutes, 2880.0);
}

TEST(HostingPolicyTest, PresetRejectsOutOfRange) {
  EXPECT_THROW(HostingPolicy::preset(0), std::out_of_range);
  EXPECT_THROW(HostingPolicy::preset(12), std::out_of_range);
}

TEST(HostingPolicyTest, AllPresetsReturnsEleven) {
  const auto all = HostingPolicy::all_presets();
  ASSERT_EQ(all.size(), 11u);
  EXPECT_EQ(all.front().name, "HP-1");
  EXPECT_EQ(all.back().name, "HP-11");
}

TEST(HostingPolicyTest, QuantizeRoundsUpToBulkMultiples) {
  const auto hp1 = HostingPolicy::preset(1);
  const auto q =
      hp1.quantize(util::ResourceVector::of(0.3, 0.5, 0.5, 0.5));
  EXPECT_DOUBLE_EQ(q.cpu(), 0.5);      // ceil(0.3/0.25)*0.25
  EXPECT_DOUBLE_EQ(q.memory(), 0.5);   // no bulk: exact
  EXPECT_DOUBLE_EQ(q.net_in(), 6.0);   // ceil(0.5/6)*6
  EXPECT_DOUBLE_EQ(q.net_out(), 0.66); // ceil(0.5/0.33)*0.33
}

TEST(HostingPolicyTest, QuantizeExactMultipleUnchanged) {
  const auto hp3 = HostingPolicy::preset(3);
  const auto q = hp3.quantize(util::ResourceVector::of(0.44, 2.0, 0, 0));
  EXPECT_NEAR(q.cpu(), 0.44, 1e-9);
  EXPECT_DOUBLE_EQ(q.memory(), 2.0);
}

TEST(HostingPolicyTest, QuantizeZeroDemandStaysZero) {
  const auto hp1 = HostingPolicy::preset(1);
  const auto q = hp1.quantize({});
  EXPECT_EQ(q, util::ResourceVector::of(0, 0, 0, 0));
}

TEST(HostingPolicyTest, QuantizeTinyDemandGetsOneBulk) {
  const auto hp1 = HostingPolicy::preset(1);
  const auto q = hp1.quantize(util::ResourceVector::of(0.001, 0, 0.001, 0));
  EXPECT_DOUBLE_EQ(q.cpu(), 0.25);
  EXPECT_DOUBLE_EQ(q.net_in(), 6.0);
}

TEST(HostingPolicyTest, TimeBulkStepsRoundsUpTwoMinuteSamples) {
  const auto hp1 = HostingPolicy::preset(1);   // 360 min = 180 steps
  EXPECT_EQ(hp1.time_bulk_steps(), 180u);
  const auto hp3 = HostingPolicy::preset(3);   // 180 min = 90 steps
  EXPECT_EQ(hp3.time_bulk_steps(), 90u);
  const auto hp11 = HostingPolicy::preset(11); // 2880 min = 1440 steps
  EXPECT_EQ(hp11.time_bulk_steps(), 1440u);
}

TEST(HostingPolicyTest, NoBundlesWhenNothingBulkConstrained) {
  // A policy whose bulks are all "n/a" sells exact amounts: no bundle
  // arithmetic applies, whatever the free capacity.
  HostingPolicy exact;
  exact.bulk = {};
  EXPECT_FALSE(exact.has_bundles());
  EXPECT_EQ(exact.bundles_needed(util::ResourceVector::of(5, 5, 5, 5)), 0u);
  EXPECT_EQ(exact.bundles_fitting(util::ResourceVector::of(100, 100, 100, 100)),
            0u);
  EXPECT_EQ(exact.bundle_amount(7), util::ResourceVector::of(0, 0, 0, 0));
}

TEST(HostingPolicyTest, BundlesFittingCoversOnlyConstrainedResources) {
  // HP-3 constrains CPU (0.22) and memory (2.0) but not the network kinds:
  // the fit count must ignore the unconstrained components entirely.
  const auto hp3 = HostingPolicy::preset(3);
  const auto free = util::ResourceVector::of(2.2, 8.0, 0.0, 0.0);
  // CPU fits 10 bundles, memory fits 4 -> the binding resource wins.
  EXPECT_EQ(hp3.bundles_fitting(free), 4u);
  // Zero free space on a constrained resource means zero bundles.
  EXPECT_EQ(hp3.bundles_fitting(util::ResourceVector::of(2.2, 0.0, 99, 99)),
            0u);
}

TEST(HostingPolicyTest, GranularityOrdersPoliciesByCpuBulkThenTime) {
  // HP-3 (0.22) is finer than HP-7 (1.11); HP-5 (180 min) finer than the
  // same-bulk HP-9 (720 min).
  EXPECT_LT(HostingPolicy::preset(3).granularity_key(),
            HostingPolicy::preset(7).granularity_key());
  EXPECT_LT(HostingPolicy::preset(5).granularity_key(),
            HostingPolicy::preset(9).granularity_key());
}

TEST(HostingPolicyTest, GranularityKeyIsLexicographicNotASum) {
  // Regression for the scalar-score collision bug: the old score folded
  // cpu*1e6 + minutes + other bulks into one double, so a policy with a
  // finer CPU grain could tie — or even rank behind — a coarser one when
  // the minutes/bulk terms bridged the gap. These two policies collided
  // exactly under the old score (both 250100): A trades more minutes for
  // no bulk, B the reverse.
  HostingPolicy a;
  a.bulk = util::ResourceVector::of(0.25, 0.0, 0.0, 0.0);
  a.time_bulk_minutes = 100.0;
  HostingPolicy b;
  b.bulk = util::ResourceVector::of(0.25, 0.0, 20.0, 20.0);
  b.time_bulk_minutes = 60.0;
  // Old: granularity_score(a) == granularity_score(b) == 250100 and the
  // matcher's ordering silently fell through to distance. Now the shorter
  // time bulk wins outright.
  EXPECT_LT(b.granularity_key(), a.granularity_key());
  EXPECT_NE(a.granularity_key(), b.granularity_key());

  // A finer CPU grain always wins, whatever the other fields say.
  HostingPolicy fine;
  fine.bulk = util::ResourceVector::of(0.25, 99.0, 99.0, 99.0);
  fine.time_bulk_minutes = 2880.0;
  HostingPolicy coarse;
  coarse.bulk = util::ResourceVector::of(0.26, 0.0, 0.0, 0.0);
  coarse.time_bulk_minutes = 1.0;
  EXPECT_LT(fine.granularity_key(), coarse.granularity_key());
}

}  // namespace
}  // namespace mmog::dc
