#include "dc/reservation.hpp"

#include <gtest/gtest.h>

namespace mmog::dc {
namespace {

using util::ResourceVector;

ReservationCalendar calendar(double cpu = 10.0, std::size_t horizon = 100) {
  return ReservationCalendar(ResourceVector::of(cpu, 40, 100, 40), horizon);
}

TEST(ReservationTest, RejectsZeroHorizon) {
  EXPECT_THROW(ReservationCalendar({}, 0), std::invalid_argument);
}

TEST(ReservationTest, FreshCalendarIsFullyAvailable) {
  auto cal = calendar();
  EXPECT_DOUBLE_EQ(cal.available_at(0).cpu(), 10.0);
  EXPECT_DOUBLE_EQ(cal.available_at(99).cpu(), 10.0);
  EXPECT_THROW(cal.available_at(100), std::out_of_range);
  EXPECT_EQ(cal.active_bookings(), 0u);
}

TEST(ReservationTest, BookConsumesOnlyTheInterval) {
  auto cal = calendar();
  const auto id = cal.book(ResourceVector::of(4, 0, 0, 0), 10, 20);
  ASSERT_TRUE(id.has_value());
  EXPECT_DOUBLE_EQ(cal.available_at(9).cpu(), 10.0);
  EXPECT_DOUBLE_EQ(cal.available_at(10).cpu(), 6.0);
  EXPECT_DOUBLE_EQ(cal.available_at(19).cpu(), 6.0);
  EXPECT_DOUBLE_EQ(cal.available_at(20).cpu(), 10.0);
  EXPECT_EQ(cal.active_bookings(), 1u);
}

TEST(ReservationTest, OverlappingBookingsStack) {
  auto cal = calendar();
  ASSERT_TRUE(cal.book(ResourceVector::of(4, 0, 0, 0), 0, 50).has_value());
  ASSERT_TRUE(cal.book(ResourceVector::of(4, 0, 0, 0), 25, 75).has_value());
  EXPECT_DOUBLE_EQ(cal.available_at(30).cpu(), 2.0);
  // A third 4-unit booking cannot fit where both overlap.
  EXPECT_FALSE(cal.book(ResourceVector::of(4, 0, 0, 0), 20, 30).has_value());
  // But fits where only one is active.
  EXPECT_TRUE(cal.book(ResourceVector::of(4, 0, 0, 0), 50, 60).has_value());
}

TEST(ReservationTest, FailedBookingHasNoSideEffects) {
  auto cal = calendar();
  ASSERT_TRUE(cal.book(ResourceVector::of(8, 0, 0, 0), 0, 100).has_value());
  EXPECT_FALSE(cal.book(ResourceVector::of(4, 0, 0, 0), 50, 60).has_value());
  EXPECT_DOUBLE_EQ(cal.available_at(55).cpu(), 2.0);  // unchanged
}

TEST(ReservationTest, BookingPastHorizonFails) {
  auto cal = calendar();
  EXPECT_FALSE(cal.book(ResourceVector::of(1, 0, 0, 0), 90, 101).has_value());
  EXPECT_TRUE(cal.book(ResourceVector::of(1, 0, 0, 0), 90, 100).has_value());
}

TEST(ReservationTest, EmptyIntervalAlwaysFits) {
  auto cal = calendar();
  EXPECT_TRUE(cal.fits(ResourceVector::of(999, 0, 0, 0), 5, 5));
}

TEST(ReservationTest, CancelRestoresCapacity) {
  auto cal = calendar();
  const auto id = cal.book(ResourceVector::of(10, 0, 0, 0), 0, 100);
  ASSERT_TRUE(id.has_value());
  EXPECT_FALSE(cal.book(ResourceVector::of(1, 0, 0, 0), 0, 1).has_value());
  EXPECT_TRUE(cal.cancel(*id));
  EXPECT_DOUBLE_EQ(cal.available_at(50).cpu(), 10.0);
  EXPECT_TRUE(cal.book(ResourceVector::of(1, 0, 0, 0), 0, 1).has_value());
  // Double-cancel and unknown ids are rejected.
  EXPECT_FALSE(cal.cancel(*id));
  EXPECT_FALSE(cal.cancel(12345));
}

TEST(ReservationTest, EarliestFitSkipsBusyWindows) {
  auto cal = calendar();
  ASSERT_TRUE(cal.book(ResourceVector::of(10, 0, 0, 0), 0, 30).has_value());
  const auto start = cal.earliest_fit(ResourceVector::of(5, 0, 0, 0), 0, 10);
  ASSERT_TRUE(start.has_value());
  EXPECT_EQ(*start, 30u);
}

TEST(ReservationTest, EarliestFitHonoursFrom) {
  auto cal = calendar();
  const auto start = cal.earliest_fit(ResourceVector::of(1, 0, 0, 0), 42, 5);
  ASSERT_TRUE(start.has_value());
  EXPECT_EQ(*start, 42u);
}

TEST(ReservationTest, EarliestFitReturnsNulloptWhenImpossible) {
  auto cal = calendar();
  // Longer than the horizon.
  EXPECT_FALSE(cal.earliest_fit(ResourceVector::of(1, 0, 0, 0), 0, 101)
                   .has_value());
  // Wider than the capacity.
  ASSERT_TRUE(cal.book(ResourceVector::of(10, 0, 0, 0), 0, 100).has_value());
  EXPECT_FALSE(
      cal.earliest_fit(ResourceVector::of(1, 0, 0, 0), 0, 10).has_value());
}

TEST(ReservationTest, ZeroDurationFitIsClampedToTheHorizon) {
  auto cal = calendar(10.0, 100);
  // Inside the horizon a zero-duration request trivially fits at `from`...
  const auto inside = cal.earliest_fit(ResourceVector::of(1, 0, 0, 0), 42, 0);
  ASSERT_TRUE(inside.has_value());
  EXPECT_EQ(*inside, 42u);
  // ...but past it there is no schedulable step: the old code returned
  // `from` unchecked, handing callers a start that available_at() throws on.
  EXPECT_FALSE(
      cal.earliest_fit(ResourceVector::of(1, 0, 0, 0), 100, 0).has_value());
  EXPECT_FALSE(
      cal.earliest_fit(ResourceVector::of(1, 0, 0, 0), 5000, 0).has_value());
  // Boundary: the last step of the horizon is still valid.
  const auto last = cal.earliest_fit(ResourceVector::of(1, 0, 0, 0), 99, 0);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(*last, 99u);
  EXPECT_NO_THROW(cal.available_at(*last));
}

TEST(ReservationTest, MultiResourceConstraintsAllApply) {
  auto cal = calendar();
  // Memory capacity is 40; a 35-memory booking blocks a second one even
  // though CPU is free.
  ASSERT_TRUE(cal.book(ResourceVector::of(1, 35, 0, 0), 0, 10).has_value());
  EXPECT_FALSE(cal.book(ResourceVector::of(1, 10, 0, 0), 5, 8).has_value());
  EXPECT_TRUE(cal.book(ResourceVector::of(1, 5, 0, 0), 5, 8).has_value());
}

}  // namespace
}  // namespace mmog::dc
