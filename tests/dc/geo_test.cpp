#include "dc/geo.hpp"

#include <gtest/gtest.h>

namespace mmog::dc {
namespace {

constexpr GeoPoint kLondon{51.51, -0.13};
constexpr GeoPoint kAmsterdam{52.37, 4.90};
constexpr GeoPoint kNewYork{40.71, -74.01};
constexpr GeoPoint kSydney{-33.87, 151.21};

TEST(GeoTest, HaversineZeroForSamePoint) {
  EXPECT_NEAR(haversine_km(kLondon, kLondon), 0.0, 1e-9);
}

TEST(GeoTest, HaversineIsSymmetric) {
  EXPECT_NEAR(haversine_km(kLondon, kNewYork),
              haversine_km(kNewYork, kLondon), 1e-9);
}

TEST(GeoTest, KnownDistances) {
  // London-Amsterdam ~ 358 km; London-New York ~ 5570 km.
  EXPECT_NEAR(haversine_km(kLondon, kAmsterdam), 358.0, 15.0);
  EXPECT_NEAR(haversine_km(kLondon, kNewYork), 5570.0, 60.0);
}

TEST(GeoTest, AntipodalDistanceNearHalfCircumference) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, 180.0};
  EXPECT_NEAR(haversine_km(a, b), 20015.0, 50.0);
}

TEST(GeoTest, ClassifyDistanceBoundaries) {
  EXPECT_EQ(classify_distance(0.0), DistanceClass::kSameLocation);
  EXPECT_EQ(classify_distance(100.0), DistanceClass::kSameLocation);
  EXPECT_EQ(classify_distance(500.0), DistanceClass::kVeryClose);
  EXPECT_EQ(classify_distance(1500.0), DistanceClass::kClose);
  EXPECT_EQ(classify_distance(3000.0), DistanceClass::kFar);
  EXPECT_EQ(classify_distance(8000.0), DistanceClass::kVeryFar);
}

TEST(GeoTest, MaxDistanceIsMonotonic) {
  double prev = -1.0;
  for (auto c : {DistanceClass::kSameLocation, DistanceClass::kVeryClose,
                 DistanceClass::kClose, DistanceClass::kFar,
                 DistanceClass::kVeryFar}) {
    EXPECT_GT(max_distance_km(c), prev);
    prev = max_distance_km(c);
  }
}

TEST(GeoTest, WithinToleranceMatchesBounds) {
  EXPECT_TRUE(within_tolerance(50.0, DistanceClass::kSameLocation));
  EXPECT_FALSE(within_tolerance(500.0, DistanceClass::kSameLocation));
  EXPECT_TRUE(within_tolerance(999.0, DistanceClass::kVeryClose));
  EXPECT_FALSE(within_tolerance(1001.0, DistanceClass::kVeryClose));
  EXPECT_TRUE(within_tolerance(1e7, DistanceClass::kVeryFar));
}

TEST(GeoTest, VeryFarCoversEarthScaleDistances) {
  EXPECT_TRUE(within_tolerance(haversine_km(kLondon, kSydney),
                               DistanceClass::kVeryFar));
  EXPECT_FALSE(within_tolerance(haversine_km(kLondon, kSydney),
                                DistanceClass::kFar));
}

TEST(GeoTest, DistanceClassNamesMatchPaper) {
  EXPECT_EQ(distance_class_name(DistanceClass::kSameLocation),
            "Same location");
  EXPECT_EQ(distance_class_name(DistanceClass::kVeryFar),
            "Very far (d>4000km)");
}


TEST(LatencyModelTest, RttGrowsWithDistance) {
  EXPECT_NEAR(estimate_rtt_ms(0.0), 20.0, 1e-9);
  EXPECT_GT(estimate_rtt_ms(1000.0), estimate_rtt_ms(100.0));
  EXPECT_NEAR(estimate_rtt_ms(5000.0), 20.0 + 100.0, 1e-9);
  EXPECT_NEAR(estimate_rtt_ms(-10.0), 20.0, 1e-9);  // clamps negatives
}

TEST(LatencyModelTest, GenreTolerancesFollowClaypool) {
  // [17],[18]: racing < FPS < RPG < RTS.
  EXPECT_LT(latency_tolerance_ms(GameGenre::kRacing),
            latency_tolerance_ms(GameGenre::kFirstPersonShooter));
  EXPECT_LT(latency_tolerance_ms(GameGenre::kFirstPersonShooter),
            latency_tolerance_ms(GameGenre::kRolePlaying));
  EXPECT_LT(latency_tolerance_ms(GameGenre::kRolePlaying),
            latency_tolerance_ms(GameGenre::kRealTimeStrategy));
}

TEST(LatencyModelTest, GenreMapsToDistanceClass) {
  // Racing (~50 ms) must stay within ~1500 km -> Close at most;
  // FPS (~100 ms) reaches Far; RPG/RTS can use any server.
  EXPECT_LE(static_cast<int>(tolerance_class_for_genre(GameGenre::kRacing)),
            static_cast<int>(DistanceClass::kClose));
  EXPECT_EQ(tolerance_class_for_genre(GameGenre::kFirstPersonShooter),
            DistanceClass::kFar);
  EXPECT_EQ(tolerance_class_for_genre(GameGenre::kRolePlaying),
            DistanceClass::kVeryFar);
  EXPECT_EQ(tolerance_class_for_genre(GameGenre::kRealTimeStrategy),
            DistanceClass::kVeryFar);
}

TEST(LatencyModelTest, ClassWorstCaseMeetsGenreBudget) {
  for (auto genre : {GameGenre::kRacing, GameGenre::kFirstPersonShooter,
                     GameGenre::kRolePlaying, GameGenre::kRealTimeStrategy}) {
    const auto cls = tolerance_class_for_genre(genre);
    if (cls == DistanceClass::kVeryFar) continue;  // unbounded by design
    EXPECT_LE(estimate_rtt_ms(max_distance_km(cls)),
              latency_tolerance_ms(genre))
        << genre_name(genre);
  }
}

TEST(LatencyModelTest, GenreNames) {
  EXPECT_EQ(genre_name(GameGenre::kFirstPersonShooter), "FPS");
  EXPECT_EQ(genre_name(GameGenre::kRealTimeStrategy), "RTS");
}

}  // namespace
}  // namespace mmog::dc
