#include "dc/datacenter.hpp"

#include <gtest/gtest.h>

namespace mmog::dc {
namespace {

DataCenterSpec small_spec() {
  DataCenterSpec spec;
  spec.name = "Test DC";
  spec.machines = 4;
  spec.policy = HostingPolicy::preset(1);
  return spec;
}

TEST(DataCenterSpecTest, TotalCapacityScalesWithMachines) {
  const auto spec = small_spec();
  const auto cap = spec.total_capacity();
  EXPECT_DOUBLE_EQ(cap.cpu(), 4.0 * kMachineCapacity.cpu());
  EXPECT_DOUBLE_EQ(cap.net_out(), 4.0 * kMachineCapacity.net_out());
}

TEST(DataCenterSpecTest, MachineHostsAtLeastOneFullServer) {
  // §V-A: each machine handles at least one game server at full load, i.e.
  // one unit of every resource.
  EXPECT_TRUE(kMachineCapacity.covers(util::ResourceVector::of(1, 1, 1, 1)));
}

TEST(LedgerTest, StartsEmpty) {
  DataCenterLedger ledger(small_spec());
  EXPECT_EQ(ledger.in_use(), util::ResourceVector{});
  EXPECT_DOUBLE_EQ(ledger.cpu_utilization(), 0.0);
  EXPECT_EQ(ledger.free(), small_spec().total_capacity());
}

TEST(LedgerTest, GrantConsumesCapacity) {
  DataCenterLedger ledger(small_spec());
  const auto amount = util::ResourceVector::of(1.0, 2.0, 6.0, 0.66);
  ASSERT_TRUE(ledger.grant(amount));
  EXPECT_EQ(ledger.in_use(), amount);
  EXPECT_DOUBLE_EQ(ledger.cpu_utilization(), 0.25);
}

TEST(LedgerTest, GrantFailsWhenFull) {
  DataCenterLedger ledger(small_spec());
  // CPU capacity is 4 units.
  ASSERT_TRUE(ledger.grant(util::ResourceVector::of(4.0, 0, 0, 0)));
  EXPECT_FALSE(ledger.grant(util::ResourceVector::of(0.25, 0, 0, 0)));
  // Failure leaves the ledger untouched.
  EXPECT_DOUBLE_EQ(ledger.in_use().cpu(), 4.0);
}

TEST(LedgerTest, FitsChecksEveryResource) {
  DataCenterLedger ledger(small_spec());
  const auto cap = ledger.spec().total_capacity();
  EXPECT_TRUE(ledger.fits(cap));
  auto too_much_memory = util::ResourceVector::of(0.1, cap.memory() + 1, 0, 0);
  EXPECT_FALSE(ledger.fits(too_much_memory));
}

TEST(LedgerTest, ReleaseReturnsCapacity) {
  DataCenterLedger ledger(small_spec());
  const auto amount = util::ResourceVector::of(2.0, 1.0, 6.0, 1.0);
  ASSERT_TRUE(ledger.grant(amount));
  ledger.release(amount);
  EXPECT_EQ(ledger.in_use(), util::ResourceVector{});
  // Full capacity available again.
  EXPECT_TRUE(ledger.fits(ledger.spec().total_capacity()));
}

TEST(LedgerTest, ReleaseClampsAtZero) {
  DataCenterLedger ledger(small_spec());
  ledger.release(util::ResourceVector::of(5, 5, 5, 5));
  EXPECT_TRUE(ledger.in_use().non_negative());
}

TEST(LedgerTest, CpuUtilizationIsClamped) {
  DataCenterSpec zero = small_spec();
  zero.machines = 0;
  DataCenterLedger ledger(zero);
  EXPECT_DOUBLE_EQ(ledger.cpu_utilization(), 0.0);
}

TEST(AllocationTest, ReleasableAfterTimeBulk) {
  Allocation a;
  a.start_step = 10;
  a.earliest_release_step = 190;
  EXPECT_FALSE(a.releasable_at(10));
  EXPECT_FALSE(a.releasable_at(189));
  EXPECT_TRUE(a.releasable_at(190));
  EXPECT_TRUE(a.releasable_at(1000));
}

}  // namespace
}  // namespace mmog::dc
