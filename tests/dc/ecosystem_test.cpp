#include "dc/ecosystem.hpp"

#include <gtest/gtest.h>

#include <map>

namespace mmog::dc {
namespace {

TEST(EcosystemTest, PaperWorldHasTableThreeShape) {
  const auto dcs = paper_ecosystem();
  // Table III: data centers in 7 countries on 4... (3 continents in our
  // naming: Europe, North America, Australia), 166 machines total.
  std::size_t machines = 0;
  std::map<std::string, std::size_t> per_country;
  for (const auto& d : dcs) {
    machines += d.machines;
    per_country[d.country] += d.machines;
  }
  EXPECT_EQ(machines, 166u);
  EXPECT_EQ(per_country["Finland"], 8u);
  EXPECT_EQ(per_country["Sweden"], 8u);
  EXPECT_EQ(per_country["U.K."], 20u);
  EXPECT_EQ(per_country["Netherlands"], 15u);
  EXPECT_EQ(per_country["U.S. (West)"], 35u);
  EXPECT_EQ(per_country["Canada (West)"], 15u);
  EXPECT_EQ(per_country["U.S. (Central)"], 15u);
  EXPECT_EQ(per_country["U.S. (East)"], 32u);
  EXPECT_EQ(per_country["Canada (East)"], 10u);
  EXPECT_EQ(per_country["Australia"], 8u);
}

TEST(EcosystemTest, PoliciesAlternateHp1Hp2) {
  // §V-B: same-location pairs get HP-1 and HP-2 with half the machines each.
  const auto dcs = paper_ecosystem();
  std::size_t hp1 = 0, hp2 = 0;
  for (const auto& d : dcs) {
    if (d.policy.name == "HP-1") ++hp1;
    if (d.policy.name == "HP-2") ++hp2;
  }
  EXPECT_EQ(hp1 + hp2, dcs.size());
  EXPECT_GE(hp1, 7u);
  EXPECT_GE(hp2, 7u);
}

TEST(EcosystemTest, SameLocationPairsShareCoordinates) {
  const auto dcs = paper_ecosystem();
  const auto find = [&](const std::string& name) {
    for (const auto& d : dcs) {
      if (d.name == name) return d;
    }
    ADD_FAILURE() << "missing " << name;
    return dcs.front();
  };
  const auto fin1 = find("Finland (1)");
  const auto fin2 = find("Finland (2)");
  EXPECT_NEAR(haversine_km(fin1.location, fin2.location), 0.0, 1.0);
  EXPECT_NE(fin1.policy.name, fin2.policy.name);
}

TEST(EcosystemTest, RegionSitesResolve) {
  for (const char* name :
       {"Europe", "US East Coast", "US West Coast", "US Central",
        "Australia", "Canada East", "Canada West"}) {
    const auto site = region_site(name);
    EXPECT_EQ(site.name, name);
    EXPECT_NE(site.location.lat, 0.0);
  }
  EXPECT_THROW(region_site("Atlantis"), std::out_of_range);
}

TEST(EcosystemTest, EuropeSiteIsNearEuropeanDataCenters) {
  const auto site = region_site("Europe");
  const auto dcs = paper_ecosystem();
  bool some_close = false;
  for (const auto& d : dcs) {
    if (d.continent == "Europe" &&
        haversine_km(site.location, d.location) < 1000.0) {
      some_close = true;
    }
  }
  EXPECT_TRUE(some_close);
}

TEST(EcosystemTest, NorthAmericaWorldPolicyGradient) {
  // §V-E: East Coast coarse-grained, gradually finer towards the West.
  const auto dcs = north_america_ecosystem();
  ASSERT_EQ(dcs.size(), 8u);
  const auto grain = [&](const std::string& name) {
    for (const auto& d : dcs) {
      if (d.name == name) return d.policy.granularity_key();
    }
    ADD_FAILURE() << "missing " << name;
    return GranularityKey{};
  };
  EXPECT_LT(grain("US West (1)"), grain("US Cent. (1)"));
  EXPECT_LT(grain("US Cent. (1)"), grain("US East (1)"));
  EXPECT_LT(grain("Canada West"), grain("Canada East"));
}

TEST(EcosystemTest, NorthAmericaMachineCountsFollowTableThree) {
  const auto dcs = north_america_ecosystem();
  std::size_t machines = 0;
  for (const auto& d : dcs) machines += d.machines;
  // 35 (US West) + 15 (Canada West) + 15 (US Central) + 32 (US East) +
  // 10 (Canada East) = 107.
  EXPECT_EQ(machines, 107u);
}

}  // namespace
}  // namespace mmog::dc
