#include "util/args.hpp"

#include <gtest/gtest.h>

namespace mmog::util {
namespace {

Args make_args(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv(tokens);
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgsTest, ParsesOptionsWithValues) {
  const auto args = make_args({"prog", "--days", "14", "--out", "file.csv"});
  EXPECT_EQ(args.program(), "prog");
  EXPECT_TRUE(args.has("days"));
  EXPECT_EQ(args.get("out", ""), "file.csv");
  EXPECT_EQ(args.get_long("days", 0), 14);
}

TEST(ArgsTest, BooleanFlags) {
  const auto args = make_args({"prog", "--verbose", "--seed", "3"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("verbose", "x"), "");
  EXPECT_EQ(args.get_long("seed", 0), 3);
}

TEST(ArgsTest, FlagFollowedByOption) {
  const auto args = make_args({"prog", "--flag", "--next", "v"});
  EXPECT_TRUE(args.has("flag"));
  EXPECT_EQ(args.get("next", ""), "v");
}

TEST(ArgsTest, Positionals) {
  const auto args = make_args({"prog", "input.csv", "--n", "2", "extra"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.csv");
  EXPECT_EQ(args.positional()[1], "extra");
}

TEST(ArgsTest, DefaultsWhenAbsent) {
  const auto args = make_args({"prog"});
  EXPECT_FALSE(args.has("days"));
  EXPECT_EQ(args.get("days", "7"), "7");
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.5), 0.5);
  EXPECT_EQ(args.get_long("count", -1), -1);
}

TEST(ArgsTest, NumericValidation) {
  const auto args = make_args({"prog", "--days", "abc", "--f", "1.5x"});
  EXPECT_THROW(args.get_long("days", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double("f", 0.0), std::invalid_argument);
}

TEST(ArgsTest, DoubleParsing) {
  const auto args = make_args({"prog", "--ratio", "2.75"});
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 2.75);
}

TEST(ArgsTest, EmptyArgv) {
  const Args args(0, nullptr);
  EXPECT_EQ(args.program(), "");
  EXPECT_TRUE(args.positional().empty());
}

}  // namespace
}  // namespace mmog::util
