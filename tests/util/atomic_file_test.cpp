#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "util/atomic_file.hpp"

namespace mmog::util {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

fs::path test_dir() {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  auto dir = fs::path(testing::TempDir()) /
             (std::string("mmog_atomic_") + info->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(AtomicFileWriter, CommitPublishesContent) {
  const auto dir = test_dir();
  const auto path = (dir / "report.json").string();
  AtomicFileWriter w(path);
  w.stream() << "{\"ok\":true}\n";
  w.commit();
  EXPECT_EQ(slurp(path), "{\"ok\":true}\n");
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // nothing torn left behind
}

TEST(AtomicFileWriter, NothingPublishedWithoutCommit) {
  const auto dir = test_dir();
  const auto path = (dir / "report.json").string();
  {
    AtomicFileWriter w(path);
    w.stream() << "half-written";
  }  // destroyed uncommitted — a crash before the commit point
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(AtomicFileWriter, CommitReplacesExistingFile) {
  const auto dir = test_dir();
  const auto path = (dir / "report.json").string();
  write_file_atomic(path, "old\n");
  AtomicFileWriter w(path);
  w.stream() << "new\n";
  w.commit();
  EXPECT_EQ(slurp(path), "new\n");
  EXPECT_FALSE(fs::exists(path + ".prev"));  // not asked to keep it
}

TEST(AtomicFileWriter, KeepPreviousRetainsDisplacedGeneration) {
  const auto dir = test_dir();
  const auto path = (dir / "ckpt.jsonl").string();
  write_file_atomic(path, "generation-1\n");
  write_file_atomic(path, "generation-2\n", /*keep_previous=*/true);
  EXPECT_EQ(slurp(path), "generation-2\n");
  EXPECT_EQ(slurp(path + ".prev"), "generation-1\n");

  // A third generation displaces the second into .prev.
  write_file_atomic(path, "generation-3\n", /*keep_previous=*/true);
  EXPECT_EQ(slurp(path), "generation-3\n");
  EXPECT_EQ(slurp(path + ".prev"), "generation-2\n");
}

TEST(AtomicFileWriter, KeepPreviousWithNoExistingFile) {
  const auto dir = test_dir();
  const auto path = (dir / "ckpt.jsonl").string();
  write_file_atomic(path, "first\n", /*keep_previous=*/true);
  EXPECT_EQ(slurp(path), "first\n");
  EXPECT_FALSE(fs::exists(path + ".prev"));
}

TEST(AtomicFileWriter, ThrowsOnUnwritablePath) {
  AtomicFileWriter w((fs::path("/nonexistent-dir") / "x.json").string());
  w.stream() << "data";
  EXPECT_THROW(w.commit(), std::runtime_error);
}

}  // namespace
}  // namespace mmog::util
