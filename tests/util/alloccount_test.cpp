// The global allocation-counting hooks behind the resource profiler: off
// by default (one relaxed flag load per allocation), ref-counted arming,
// monotonic totals covering every operator new/delete form.

#include "util/alloccount.hpp"

#include <gtest/gtest.h>

#include <new>
#include <thread>

namespace mmog::util::alloccount {
namespace {

TEST(AllocCountTest, DisabledByDefault) { EXPECT_FALSE(enabled()); }

TEST(AllocCountTest, NothingIsCountedWhileDisarmed) {
  const Totals before = totals();
  void* p = ::operator new(256);
  ::operator delete(p);
  const Totals delta = totals() - before;
  EXPECT_EQ(delta.allocs, 0u);
  EXPECT_EQ(delta.frees, 0u);
  EXPECT_EQ(delta.bytes, 0u);
}

// Direct ::operator new calls: unlike new-expressions, these can never be
// elided by the optimizer, so the expected counts are exact lower bounds.
TEST(AllocCountTest, ScopeCountsAllocsFreesAndBytes) {
  Scope scope;
  EXPECT_TRUE(enabled());
  const Totals before = totals();
  void* a = ::operator new(1000);
  void* b = ::operator new[](2000);
  ::operator delete(a);
  ::operator delete[](b);
  const Totals delta = totals() - before;
  EXPECT_GE(delta.allocs, 2u);
  EXPECT_GE(delta.frees, 2u);
  EXPECT_GE(delta.bytes, 3000u);
}

TEST(AllocCountTest, NestedScopesCompose) {
  Scope outer;
  {
    Scope inner;
    EXPECT_TRUE(enabled());
  }
  // The inner disarm must not switch counting off under the outer scope.
  EXPECT_TRUE(enabled());
  const Totals before = totals();
  ::operator delete(::operator new(64));
  EXPECT_GE((totals() - before).allocs, 1u);
}

TEST(AllocCountTest, CountersAreMonotonicAcrossScopes) {
  Totals first;
  {
    Scope scope;
    ::operator delete(::operator new(32));
    first = totals();
  }
  {
    Scope scope;
    ::operator delete(::operator new(32));
  }
  const Totals second = totals();
  EXPECT_GE(second.allocs, first.allocs + 1);
  EXPECT_GE(second.frees, first.frees + 1);
}

TEST(AllocCountTest, AlignedAndNothrowFormsAreCounted) {
  Scope scope;
  const Totals before = totals();
  void* a = ::operator new(512, std::align_val_t(64));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  ::operator delete(a, std::align_val_t(64));
  void* b = ::operator new(128, std::nothrow);
  ASSERT_NE(b, nullptr);
  ::operator delete(b);
  void* c = ::operator new[](96, std::align_val_t(32), std::nothrow);
  ASSERT_NE(c, nullptr);
  ::operator delete[](c, std::align_val_t(32));
  const Totals delta = totals() - before;
  EXPECT_GE(delta.allocs, 3u);
  EXPECT_GE(delta.frees, 3u);
  EXPECT_GE(delta.bytes, 512u + 128u + 96u);
}

TEST(AllocCountTest, WorkerThreadAllocationsLandInTheGlobalTotals) {
  Scope scope;
  const Totals before = totals();
  std::thread worker([] {
    for (int i = 0; i < 10; ++i) ::operator delete(::operator new(100));
  });
  worker.join();  // quiesced: totals() is exact afterwards
  const Totals delta = totals() - before;
  EXPECT_GE(delta.allocs, 10u);
  EXPECT_GE(delta.bytes, 1000u);
}

TEST(AllocCountTest, DeltaAttributionViaDifferencing) {
  Scope scope;
  const Totals t0 = totals();
  void* p = ::operator new(4096);
  const Totals t1 = totals();
  ::operator delete(p);
  const Totals t2 = totals();
  EXPECT_GE((t1 - t0).allocs, 1u);
  EXPECT_GE((t1 - t0).bytes, 4096u);
  EXPECT_EQ((t1 - t0).frees, 0u);
  EXPECT_GE((t2 - t1).frees, 1u);
}

}  // namespace
}  // namespace mmog::util::alloccount
