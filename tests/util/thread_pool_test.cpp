#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mmog::util {
namespace {

TEST(ThreadPoolTest, DefaultHasAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(1);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(pool, visits.size(), [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForTest, ZeroIterationsIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, ComputesCorrectSum) {
  ThreadPool pool(4);
  std::vector<double> out(500, 0.0);
  parallel_for(pool, out.size(),
               [&](std::size_t i) { out[i] = static_cast<double>(i); });
  const double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 499.0 * 500.0 / 2.0);
}

TEST(ParallelForTest, PropagatesWorkerException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 10,
                            [](std::size_t i) {
                              if (i == 7) throw std::runtime_error("x");
                            }),
               std::runtime_error);
}

TEST(ParallelForTest, SharedPoolOverloadWorks) {
  std::atomic<int> counter{0};
  parallel_for(64, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ParallelForTest, MoreIterationsThanThreads) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  parallel_for(pool, 37, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 37);
}

}  // namespace
}  // namespace mmog::util
