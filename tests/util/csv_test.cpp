#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mmog::util {
namespace {

TEST(CsvTest, ParsesSimpleDocument) {
  std::istringstream in("a,b,c\n1,2,3\n4,5,6\n");
  const auto doc = read_csv(in);
  ASSERT_EQ(doc.header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(doc.row_count(), 2u);
  EXPECT_EQ(doc.rows[1][2], "6");
}

TEST(CsvTest, ColumnLookup) {
  std::istringstream in("x,y\n1,2\n");
  const auto doc = read_csv(in);
  EXPECT_EQ(doc.column("y"), 1u);
  EXPECT_THROW(doc.column("z"), std::out_of_range);
}

TEST(CsvTest, HandlesQuotedFields) {
  std::istringstream in("k,v\n\"a,b\",\"say \"\"hi\"\"\"\n");
  const auto doc = read_csv(in);
  ASSERT_EQ(doc.row_count(), 1u);
  EXPECT_EQ(doc.rows[0][0], "a,b");
  EXPECT_EQ(doc.rows[0][1], "say \"hi\"");
}

TEST(CsvTest, HandlesQuotedNewlines) {
  std::istringstream in("k\n\"line1\nline2\"\n");
  const auto doc = read_csv(in);
  ASSERT_EQ(doc.row_count(), 1u);
  EXPECT_EQ(doc.rows[0][0], "line1\nline2");
}

TEST(CsvTest, HandlesCrLf) {
  std::istringstream in("a,b\r\n1,2\r\n");
  const auto doc = read_csv(in);
  ASSERT_EQ(doc.row_count(), 1u);
  EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(CsvTest, SkipsTrailingEmptyLines) {
  std::istringstream in("a\n1\n\n\n");
  const auto doc = read_csv(in);
  EXPECT_EQ(doc.row_count(), 1u);
}

TEST(CsvTest, ThrowsOnUnterminatedQuote) {
  std::istringstream in("a\n\"oops\n");
  EXPECT_THROW(read_csv(in), std::runtime_error);
}

TEST(CsvTest, ThrowsOnQuoteMidField) {
  std::istringstream in("a\nab\"c\n");
  EXPECT_THROW(read_csv(in), std::runtime_error);
}

TEST(CsvTest, EmptyInputYieldsEmptyDocument) {
  std::istringstream in("");
  const auto doc = read_csv(in);
  EXPECT_TRUE(doc.header.empty());
  EXPECT_EQ(doc.row_count(), 0u);
}

TEST(CsvTest, EscapeOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("q\"q"), "\"q\"\"q\"");
  EXPECT_EQ(csv_escape("nl\nnl"), "\"nl\nnl\"");
}

TEST(CsvTest, WriteReadRoundTrip) {
  std::ostringstream out;
  write_csv_row(out, {"name", "value"});
  write_csv_row(out, {"comma,field", "quote\"field"});
  write_csv_row(out, {"multi\nline", "plain"});
  std::istringstream in(out.str());
  const auto doc = read_csv(in);
  ASSERT_EQ(doc.row_count(), 2u);
  EXPECT_EQ(doc.rows[0][0], "comma,field");
  EXPECT_EQ(doc.rows[0][1], "quote\"field");
  EXPECT_EQ(doc.rows[1][0], "multi\nline");
}

TEST(CsvTest, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/definitely_missing.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace mmog::util
