#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace mmog::util {
namespace {

TEST(StatsTest, MeanOfKnownSample) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(StatsTest, MeanOfEmptyIsZero) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(StatsTest, VarianceOfConstantIsZero) {
  const std::vector<double> xs = {5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(StatsTest, VarianceOfKnownSample) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);  // classic example
}

TEST(StatsTest, QuantileEndpoints) {
  const std::vector<double> xs = {3, 1, 4, 1, 5};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> xs = {0, 10};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(StatsTest, QuantileThrowsOnBadInput) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(xs, 1.1), std::invalid_argument);
}

TEST(StatsTest, MedianOddAndEven) {
  const std::vector<double> odd = {9, 1, 5};
  EXPECT_DOUBLE_EQ(median(odd), 5.0);
  const std::vector<double> even = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(StatsTest, IqrOfUniformGrid) {
  std::vector<double> xs;
  for (int i = 0; i <= 100; ++i) xs.push_back(i);
  EXPECT_NEAR(interquartile_range(xs), 50.0, 1e-9);
}

TEST(StatsTest, SummaryOfKnownSample) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.iqr(), 2.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
}

TEST(StatsTest, SummaryOfEmptyIsZeroed) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(StatsTest, AutocorrelationLagZeroIsOne) {
  const std::vector<double> xs = {1, 3, 2, 5, 4, 6};
  const auto acf = autocorrelation(xs, 2);
  ASSERT_EQ(acf.size(), 3u);
  EXPECT_DOUBLE_EQ(acf[0], 1.0);
}

TEST(StatsTest, AutocorrelationDetectsPeriodicity) {
  // A sine with period 24 should have a strong positive ACF at lag 24 and a
  // strong negative ACF at lag 12.
  std::vector<double> xs;
  for (int t = 0; t < 24 * 20; ++t) {
    xs.push_back(std::sin(2.0 * std::numbers::pi * t / 24.0));
  }
  const auto acf = autocorrelation(xs, 30);
  EXPECT_GT(acf[24], 0.9);
  EXPECT_LT(acf[12], -0.9);
}

TEST(StatsTest, AutocorrelationOfConstantIsZeroBeyondLagZero) {
  const std::vector<double> xs(50, 7.0);
  const auto acf = autocorrelation(xs, 5);
  for (double v : acf) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(StatsTest, AutocorrelationOfWhiteNoiseIsSmall) {
  std::vector<double> xs;
  unsigned long long state = 88172645463325252ULL;
  for (int i = 0; i < 5000; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    xs.push_back(static_cast<double>(state % 1000));
  }
  const auto acf = autocorrelation(xs, 10);
  for (std::size_t lag = 1; lag <= 10; ++lag) {
    EXPECT_LT(std::abs(acf[lag]), 0.1) << "lag " << lag;
  }
}

TEST(StatsTest, EmpiricalCdfIsMonotonicAndEndsAtOne) {
  const std::vector<double> xs = {5, 1, 3, 3, 2};
  const auto cdf = empirical_cdf(xs);
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(StatsTest, EmpiricalCdfMergesDuplicates) {
  const std::vector<double> xs = {2, 2, 2, 4};
  const auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 2u);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 0.75);
}

TEST(StatsTest, CdfAtInterpolatesStepwise) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const auto cdf = empirical_cdf(xs);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 10.0), 1.0);
}

TEST(StatsTest, HistogramCountsAndClamps) {
  const std::vector<double> xs = {-1, 0.1, 0.2, 0.6, 2.0};
  const auto h = histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 3u);  // -1 clamps into the first bucket
  EXPECT_EQ(h[1], 2u);  // 2.0 clamps into the last bucket
}

TEST(StatsTest, HistogramDegenerateInputs) {
  EXPECT_TRUE(histogram({}, 0, 1, 0).empty());
  const std::vector<double> xs = {1.0};
  const auto h = histogram(xs, 1.0, 1.0, 4);  // hi == lo
  for (auto c : h) EXPECT_EQ(c, 0u);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(StatsTest, PearsonDegenerateCases) {
  const std::vector<double> xs = {1, 2, 3};
  const std::vector<double> constant = {5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(xs, constant), 0.0);
  const std::vector<double> shorter = {1, 2};
  EXPECT_DOUBLE_EQ(pearson(xs, shorter), 0.0);
}

}  // namespace
}  // namespace mmog::util
