#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/srclint.hpp"

namespace mmog::util::lint {
namespace {

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const auto& f : findings) rules.push_back(f.rule);
  return rules;
}

TEST(SrcLintTest, DeterministicPathDetection) {
  EXPECT_TRUE(is_deterministic_path("src/core/simulation.cpp"));
  EXPECT_TRUE(is_deterministic_path("/root/repo/src/dc/ledger.hpp"));
  EXPECT_TRUE(is_deterministic_path("src/predict/ar.cpp"));
  EXPECT_TRUE(is_deterministic_path("src/nn/mlp.cpp"));
  EXPECT_TRUE(is_deterministic_path("src/emu/emulator.cpp"));
  EXPECT_FALSE(is_deterministic_path("src/obs/registry.cpp"));
  EXPECT_FALSE(is_deterministic_path("src/util/rng.cpp"));
  // Substrings of component names must not count.
  EXPECT_FALSE(is_deterministic_path("src/dcache/foo.cpp"));
  EXPECT_FALSE(is_deterministic_path("src/encore/foo.cpp"));
}

TEST(SrcLintTest, RandRuleFires) {
  const auto findings =
      lint_source("src/util/x.cpp", "int r = rand();\nsrand(7);\n");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "rand");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_EQ(findings[1].rule, "rand");
  EXPECT_EQ(findings[1].line, 2u);
}

TEST(SrcLintTest, RandRuleIgnoresSubstrings) {
  EXPECT_TRUE(lint_source("src/util/x.cpp",
                          "int operand(int);\nint x = operand(3);\n"
                          "double strand(double);\n")
                  .empty());
}

TEST(SrcLintTest, RandomDeviceRuleFires) {
  const auto findings =
      lint_source("src/util/x.cpp", "std::random_device rd;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "random-device");
}

TEST(SrcLintTest, WallClockRuleFires) {
  const auto findings = lint_source(
      "src/util/x.cpp",
      "auto now = std::chrono::system_clock::now();\n"
      "std::time_t t = std::time(nullptr);\n"
      "struct tm* lt = localtime(&t);\n");
  EXPECT_EQ(rules_of(findings),
            (std::vector<std::string>{"wall-clock", "wall-clock",
                                      "wall-clock"}));
}

TEST(SrcLintTest, WallClockAllowsSteadyClockAndTimeWords) {
  EXPECT_TRUE(lint_source("src/util/x.cpp",
                          "auto t0 = std::chrono::steady_clock::now();\n"
                          "std::chrono::steady_clock::time_point start_;\n"
                          "double run_time(int steps);\n")
                  .empty());
}

TEST(SrcLintTest, SeedLiteralRuleFires) {
  const auto findings = lint_source(
      "src/util/x.cpp",
      "util::Rng rng(42);\n"
      "std::mt19937 gen{12345};\n"
      "std::mt19937_64 gen64(0xdeadbeef);\n"
      "engine.seed(7);\n");
  EXPECT_EQ(rules_of(findings),
            (std::vector<std::string>{"seed-literal", "seed-literal",
                                      "seed-literal", "seed-literal"}));
}

TEST(SrcLintTest, SeedLiteralAllowsPlumbedSeeds) {
  EXPECT_TRUE(lint_source("src/util/x.cpp",
                          "util::Rng rng(config.seed);\n"
                          "std::mt19937 gen(seed);\n"
                          "explicit Rng(std::uint64_t seed = 99) noexcept;\n"
                          "engine.seed(derive(base, 3));\n")
                  .empty());
}

TEST(SrcLintTest, UnorderedContainerRuleFiresOnlyInDeterministicPaths) {
  const std::string code =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "std::unordered_set<int> s;\n";
  const auto det = lint_source("src/core/x.cpp", code);
  EXPECT_EQ(rules_of(det),
            (std::vector<std::string>{"unordered-container",
                                      "unordered-container",
                                      "unordered-container"}));
  // The same code outside the deterministic layers is fine (the obs registry
  // legitimately shards into unordered maps and merges into ordered ones).
  EXPECT_TRUE(lint_source("src/obs/x.cpp", code).empty());
}

TEST(SrcLintTest, CommentsAndStringsNeverTrip) {
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "// rand() and std::random_device in prose\n"
                          "/* std::chrono::system_clock discussion */\n"
                          "const char* msg = \"do not call rand()\";\n"
                          "const char* m2 = \"unordered_map is banned\";\n")
                  .empty());
}

TEST(SrcLintTest, SameLineAllowSuppresses) {
  const auto findings = lint_source(
      "src/util/x.cpp",
      "int r = rand();  // mmog-lint: allow(rand)\n"
      "int s = rand();  // mmog-lint: allow(wall-clock)\n");
  // Line 1 suppressed; line 2's allow names a different rule.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[0].rule, "rand");
}

TEST(SrcLintTest, StandaloneAllowCoversNextLine) {
  const auto findings = lint_source(
      "src/util/x.cpp",
      "// mmog-lint: allow(random-device)\n"
      "std::random_device rd;\n"
      "std::random_device rd2;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(SrcLintTest, AllowListAcceptsMultipleRules) {
  EXPECT_TRUE(lint_source("src/util/x.cpp",
                          "int r = rand(); std::random_device rd;  "
                          "// mmog-lint: allow(rand, random-device)\n")
                  .empty());
}

TEST(SrcLintTest, RuleCatalogMatchesImplementedRules) {
  std::vector<std::string> names;
  for (const auto& rule : rule_catalog()) names.emplace_back(rule.name);
  EXPECT_EQ(names, (std::vector<std::string>{"rand", "random-device",
                                             "wall-clock", "seed-literal",
                                             "unordered-container"}));
}

}  // namespace
}  // namespace mmog::util::lint
