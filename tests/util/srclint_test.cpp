#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "util/srclint.hpp"

namespace mmog::util::lint {
namespace {

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const auto& f : findings) rules.push_back(f.rule);
  return rules;
}

TEST(SrcLintTest, DeterministicPathDetection) {
  EXPECT_TRUE(is_deterministic_path("src/core/simulation.cpp"));
  EXPECT_TRUE(is_deterministic_path("/root/repo/src/dc/ledger.hpp"));
  EXPECT_TRUE(is_deterministic_path("src/predict/ar.cpp"));
  EXPECT_TRUE(is_deterministic_path("src/nn/mlp.cpp"));
  EXPECT_TRUE(is_deterministic_path("src/emu/emulator.cpp"));
  EXPECT_FALSE(is_deterministic_path("src/obs/registry.cpp"));
  EXPECT_FALSE(is_deterministic_path("src/util/rng.cpp"));
  // Substrings of component names must not count.
  EXPECT_FALSE(is_deterministic_path("src/dcache/foo.cpp"));
  EXPECT_FALSE(is_deterministic_path("src/encore/foo.cpp"));
}

TEST(SrcLintTest, RandRuleFires) {
  const auto findings =
      lint_source("src/util/x.cpp", "int r = rand();\nsrand(7);\n");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "rand");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_EQ(findings[1].rule, "rand");
  EXPECT_EQ(findings[1].line, 2u);
}

TEST(SrcLintTest, RandRuleIgnoresSubstrings) {
  EXPECT_TRUE(lint_source("src/util/x.cpp",
                          "int operand(int);\nint x = operand(3);\n"
                          "double strand(double);\n")
                  .empty());
}

TEST(SrcLintTest, RandomDeviceRuleFires) {
  const auto findings =
      lint_source("src/util/x.cpp", "std::random_device rd;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "random-device");
}

TEST(SrcLintTest, WallClockRuleFires) {
  const auto findings = lint_source(
      "src/util/x.cpp",
      "auto now = std::chrono::system_clock::now();\n"
      "std::time_t t = std::time(nullptr);\n"
      "struct tm* lt = localtime(&t);\n");
  EXPECT_EQ(rules_of(findings),
            (std::vector<std::string>{"wall-clock", "wall-clock",
                                      "wall-clock"}));
}

TEST(SrcLintTest, WallClockAllowsSteadyClockAndTimeWords) {
  EXPECT_TRUE(lint_source("src/util/x.cpp",
                          "auto t0 = std::chrono::steady_clock::now();\n"
                          "std::chrono::steady_clock::time_point start_;\n"
                          "double run_time(int steps);\n")
                  .empty());
}

TEST(SrcLintTest, SeedLiteralRuleFires) {
  const auto findings = lint_source(
      "src/util/x.cpp",
      "util::Rng rng(42);\n"
      "std::mt19937 gen{12345};\n"
      "std::mt19937_64 gen64(0xdeadbeef);\n"
      "engine.seed(7);\n");
  EXPECT_EQ(rules_of(findings),
            (std::vector<std::string>{"seed-literal", "seed-literal",
                                      "seed-literal", "seed-literal"}));
}

TEST(SrcLintTest, SeedLiteralAllowsPlumbedSeeds) {
  EXPECT_TRUE(lint_source("src/util/x.cpp",
                          "util::Rng rng(config.seed);\n"
                          "std::mt19937 gen(seed);\n"
                          "explicit Rng(std::uint64_t seed = 99) noexcept;\n"
                          "engine.seed(derive(base, 3));\n")
                  .empty());
}

TEST(SrcLintTest, UnorderedContainerRuleFiresOnlyInDeterministicPaths) {
  const std::string code =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "std::unordered_set<int> s;\n";
  const auto det = lint_source("src/core/x.cpp", code);
  EXPECT_EQ(rules_of(det),
            (std::vector<std::string>{"unordered-container",
                                      "unordered-container",
                                      "unordered-container"}));
  // The same code outside the deterministic layers is fine (the obs registry
  // legitimately shards into unordered maps and merges into ordered ones).
  EXPECT_TRUE(lint_source("src/obs/x.cpp", code).empty());
}

TEST(SrcLintTest, CommentsAndStringsNeverTrip) {
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "// rand() and std::random_device in prose\n"
                          "/* std::chrono::system_clock discussion */\n"
                          "const char* msg = \"do not call rand()\";\n"
                          "const char* m2 = \"unordered_map is banned\";\n")
                  .empty());
}

TEST(SrcLintTest, SameLineAllowSuppresses) {
  const auto findings = lint_source(
      "src/util/x.cpp",
      "int r = rand();  // mmog-lint: allow(rand)\n"
      "int s = rand();  // mmog-lint: allow(wall-clock)\n");
  // Line 1 suppressed; line 2's allow names a different rule.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[0].rule, "rand");
}

TEST(SrcLintTest, StandaloneAllowCoversNextLine) {
  const auto findings = lint_source(
      "src/util/x.cpp",
      "// mmog-lint: allow(random-device)\n"
      "std::random_device rd;\n"
      "std::random_device rd2;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(SrcLintTest, AllowListAcceptsMultipleRules) {
  EXPECT_TRUE(lint_source("src/util/x.cpp",
                          "int r = rand(); std::random_device rd;  "
                          "// mmog-lint: allow(rand, random-device)\n")
                  .empty());
}

TEST(SrcLintTest, RuleCatalogMatchesImplementedRules) {
  std::vector<std::string> names;
  for (const auto& rule : rule_catalog()) names.emplace_back(rule.name);
  EXPECT_EQ(names,
            (std::vector<std::string>{
                "rand", "random-device", "wall-clock", "seed-literal",
                "unordered-container", "naked-mutex", "raw-ofstream",
                "pragma-once", "hot-new", "hot-function", "hot-string",
                "hot-container", "hot-push-back", "include-cycle",
                "layer-violation"}));
}

TEST(SrcLintTest, TestPathsAreExemptFromLineRules) {
  // Tests legitimately seed literals, read clocks, and write scratch files;
  // only pragma-once (and the architecture rules) apply to tests/.
  EXPECT_TRUE(lint_source("tests/util/x_test.cpp",
                          "util::Rng rng(42);\n"
                          "std::mt19937 gen{12345};\n"
                          "std::ofstream out(\"scratch.txt\");\n"
                          "std::mutex m;\n")
                  .empty());
}

// --- comment/string stripper edge cases -----------------------------------

TEST(SrcLintStripperTest, EscapedQuoteInCharLiteral) {
  // '\'' must not end the literal early and leak `rand()` into the code.
  const auto code = strip_code("char q = '\\''; // rand()\nint x = 1;\n");
  EXPECT_EQ(code.find("rand"), std::string::npos);
  EXPECT_TRUE(lint_source("src/util/x.cpp",
                          "char q = '\\''; char r = 'x'; // ok\n"
                          "const char* s = \"rand() \\\" srand()\";\n")
                  .empty());
}

TEST(SrcLintStripperTest, DigitSeparatorIsNotACharLiteral) {
  // 1'000'000 must not open a char literal that swallows the next line.
  const auto findings = lint_source("src/util/x.cpp",
                                    "int big = 1'000'000;\n"
                                    "int r = rand();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[0].rule, "rand");
}

TEST(SrcLintStripperTest, RawStringPrefixes) {
  // All five raw-string prefixes open raw literals whose contents vanish.
  for (const char* prefix : {"R", "LR", "uR", "UR", "u8R"}) {
    const std::string src =
        std::string("auto s = ") + prefix + "\"(rand() inside)\";\n";
    EXPECT_EQ(strip_code(src).find("rand"), std::string::npos)
        << "prefix " << prefix;
  }
}

TEST(SrcLintStripperTest, IdentifierTailEndingInRIsNotARawString) {
  // `WER"x"` is an identifier followed by an ordinary string — the old
  // stripper treated any `R` before a quote as a raw-string opener and
  // swallowed the rest of the file.
  const auto findings = lint_source("src/util/x.cpp",
                                    "auto v = WER\"x\";\n"
                                    "int r = rand();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(SrcLintStripperTest, RawStringDelimiterAndAlignment) {
  // Delimited raw string: contents and delimiters are blanked, and every
  // byte position (and newline) is preserved so line/column math holds.
  const std::string src = "auto s = R\"xy(rand()\nsrand())xy\";\nint a;\n";
  const auto code = strip_code(src);
  EXPECT_EQ(code.size(), src.size());
  EXPECT_EQ(std::count(code.begin(), code.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_EQ(code.find("rand"), std::string::npos);
  EXPECT_NE(code.find("int a;"), std::string::npos);
}

TEST(SrcLintStripperTest, FakeRawTerminatorWithWrongDelimiter) {
  // `)zz"` must not close a `R"xy(` literal.
  const auto code =
      strip_code("auto s = R\"xy(rand() )zz\" still inside)xy\"; int ok;\n");
  EXPECT_EQ(code.find("rand"), std::string::npos);
  EXPECT_EQ(code.find("still"), std::string::npos);
  EXPECT_NE(code.find("int ok;"), std::string::npos);
}

TEST(SrcLintStripperTest, UnterminatedRawStringAtEof) {
  // Unterminated raw string: everything to EOF is blanked, newlines kept,
  // and nothing crashes or misindexes.
  const std::string src = "auto s = R\"(rand()\nsrand()\n";
  const auto code = strip_code(src);
  EXPECT_EQ(code.size(), src.size());
  EXPECT_EQ(std::count(code.begin(), code.end(), '\n'), 2);
  EXPECT_EQ(code.find("rand"), std::string::npos);
  EXPECT_TRUE(lint_source("src/util/x.cpp", src).empty());
}

TEST(SrcLintStripperTest, UnterminatedRawDelimiterAtEof) {
  const std::string src = "auto s = R\"abcdefg";  // EOF inside delimiter
  const auto code = strip_code(src);
  EXPECT_EQ(code.size(), src.size());
}

TEST(SrcLintStripperTest, LineCommentDirectiveMustLeadTheComment) {
  // Prose that merely mentions the directive syntax must not activate it.
  const auto findings = lint_source(
      "src/util/x.cpp",
      "// the `// mmog-lint: hot-begin(x)` marker is documented here\n"
      "int r = rand();  // a `mmog-lint: allow(rand)` example in prose\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "rand");
}

// --- lock/IO discipline rules ---------------------------------------------

TEST(SrcLintTest, NakedMutexRuleFires) {
  const auto findings = lint_source("src/obs/x.cpp",
                                    "std::mutex m_;\n"
                                    "std::lock_guard<std::mutex> l(m_);\n"
                                    "std::condition_variable cv_;\n");
  EXPECT_EQ(rules_of(findings),
            (std::vector<std::string>{"naked-mutex", "naked-mutex",
                                      "naked-mutex"}));
  // The annotated wrappers themselves are exempt by path.
  EXPECT_TRUE(lint_source("src/util/mutex.hpp",
                          "#pragma once\nstd::mutex raw_;\n")
                  .empty());
  // And using the wrappers is clean.
  EXPECT_TRUE(lint_source("src/obs/x.cpp",
                          "util::Mutex mutex_;\nutil::MutexLock lock(mutex_);\n")
                  .empty());
}

TEST(SrcLintTest, RawOfstreamRuleFires) {
  const auto findings =
      lint_source("src/obs/x.cpp", "std::ofstream out(path);\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "raw-ofstream");
  // Reads are fine; the atomic writer implementation is exempt by path.
  EXPECT_TRUE(lint_source("src/obs/x.cpp", "std::ifstream in(path);\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/util/atomic_file.cpp",
                          "std::ofstream out(tmp);\n")
                  .empty());
}

TEST(SrcLintTest, PragmaOnceRequiredInHeaders) {
  const auto findings = lint_source("src/util/x.hpp", "int f();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "pragma-once");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_TRUE(lint_source("src/util/x.hpp", "#pragma once\nint f();\n")
                  .empty());
  // Applies to test headers too, but never to .cpp files.
  EXPECT_FALSE(lint_source("tests/util/x.hpp", "int f();\n").empty());
  EXPECT_TRUE(lint_source("src/util/x.cpp", "int f();\n").empty());
}

// --- hot-path allocation rules --------------------------------------------

TEST(SrcLintHotTest, RulesFireOnlyInsideRegions) {
  const std::string src =
      "#include <vector>\n"
      "void f() {\n"
      "  std::vector<int> before;\n"          // outside: fine
      "  // mmog-lint: hot-begin(demo)\n"
      "  std::vector<int> v;\n"               // hot-container
      "  auto* p = new int(3);\n"             // hot-new
      "  auto u = std::make_unique<int>();\n" // hot-new
      "  std::function<void()> fn;\n"         // hot-function
      "  auto s = std::to_string(4);\n"       // hot-string
      "  // mmog-lint: hot-end\n"
      "  std::vector<int> after;\n"           // outside again: fine
      "}\n";
  const auto findings = lint_source("src/core/x.cpp", src);
  EXPECT_EQ(rules_of(findings),
            (std::vector<std::string>{"hot-container", "hot-new", "hot-new",
                                      "hot-function", "hot-string"}));
  for (const auto& f : findings) {
    EXPECT_NE(f.message.find("demo"), std::string::npos) << f.message;
  }
}

TEST(SrcLintHotTest, StringViewDoesNotTripHotString) {
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "// mmog-lint: hot-begin(demo)\n"
                          "std::string_view name = tag;\n"
                          "// mmog-lint: hot-end\n")
                  .empty());
}

TEST(SrcLintHotTest, PushBackFlaggedOnlyWithoutReserve) {
  const std::string unreserved =
      "// mmog-lint: hot-begin(demo)\n"
      "void f(Batch& batch) { batch.push_back(1); }\n"
      "// mmog-lint: hot-end\n";
  const auto findings = lint_source("src/core/x.cpp", unreserved);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "hot-push-back");

  // A reserve() on the same receiver anywhere in the file clears it —
  // growth past the reservation is amortized, not per-step.
  const std::string reserved =
      "void setup(Batch& batch) { batch.reserve(64); }\n"
      "// mmog-lint: hot-begin(demo)\n"
      "void f(Batch& batch) { batch.push_back(1); }\n"
      "void g(Batch* batch) { batch->emplace_back(2); }\n"
      "// mmog-lint: hot-end\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", reserved).empty());
}

TEST(SrcLintHotTest, AllowEscapesHotRules) {
  EXPECT_TRUE(lint_source(
                  "src/core/x.cpp",
                  "// mmog-lint: hot-begin(demo)\n"
                  "auto s = std::to_string(4);  // mmog-lint: allow(hot-string)\n"
                  "// mmog-lint: hot-end\n")
                  .empty());
}

TEST(SrcLintHotTest, HotRegionsApplyEvenInTestsScope) {
  // The hot rules are region-scoped, not path-scoped: a marked region in
  // any file is checked (tests simply never mark one).
  const auto findings = lint_source("tests/util/x_test.cpp",
                                    "// mmog-lint: hot-begin(x)\n"
                                    "auto* p = new int;\n"
                                    "// mmog-lint: hot-end\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "hot-new");
}

}  // namespace
}  // namespace mmog::util::lint
