#include "util/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace mmog::util {
namespace {

TEST(TextTableTest, RendersHeadersAndRows) {
  TextTable t({"Name", "Value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(TextTableTest, PadsMissingCellsAndDropsExtras) {
  TextTable t({"A", "B"});
  t.add_row({"only"});
  t.add_row({"x", "y", "dropped"});
  const auto s = t.to_string();
  EXPECT_EQ(s.find("dropped"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTableTest, NumFormatsWithPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::num(-0.5, 1), "-0.5");
}

TEST(TextTableTest, CsvEscapesSpecialCharacters) {
  TextTable t({"k", "v"});
  t.add_row({"a,b", "say \"hi\""});
  const auto csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTableTest, CsvHasOneLinePerRowPlusHeader) {
  TextTable t({"x"});
  t.add_row({"1"});
  t.add_row({"2"});
  const auto csv = t.to_csv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(TextTableTest, StreamOperatorMatchesToString) {
  TextTable t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.to_string());
}

}  // namespace
}  // namespace mmog::util
