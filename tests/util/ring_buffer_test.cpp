#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace mmog::util {
namespace {

/// Logical content of the buffer, oldest first, via the two span views.
std::vector<int> contents(const RingBuffer<int>& rb) {
  std::vector<int> out;
  for (int v : rb.first()) out.push_back(v);
  for (int v : rb.second()) out.push_back(v);
  return out;
}

TEST(RingBufferTest, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBufferTest, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
  EXPECT_TRUE(rb.first().empty());
  EXPECT_TRUE(rb.second().empty());
}

TEST(RingBufferTest, FillsOldestFirst) {
  RingBuffer<int> rb(4);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.front(), 1);
  EXPECT_EQ(rb.back(), 3);
  EXPECT_EQ(rb[0], 1);
  EXPECT_EQ(rb[2], 3);
  // Before any wrap the whole window is one contiguous span.
  EXPECT_EQ(contents(rb), (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(rb.second().empty());
}

TEST(RingBufferTest, OverwritesOldestWhenFull) {
  RingBuffer<int> rb(3);
  for (int v : {1, 2, 3, 4, 5}) rb.push(v);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.front(), 3);
  EXPECT_EQ(rb.back(), 5);
  EXPECT_EQ(contents(rb), (std::vector<int>{3, 4, 5}));
}

TEST(RingBufferTest, SpansSplitAtTheWrapPoint) {
  RingBuffer<int> rb(4);
  for (int v : {1, 2, 3, 4, 5, 6}) rb.push(v);
  // Window is {3,4,5,6}; storage is [5,6,3,4] with head at index 2, so the
  // views must be first()={3,4}, second()={5,6}.
  EXPECT_EQ(rb.first().size(), 2u);
  EXPECT_EQ(rb.second().size(), 2u);
  EXPECT_EQ(contents(rb), (std::vector<int>{3, 4, 5, 6}));
}

TEST(RingBufferTest, OperatorIndexIsLogicalOrderAcrossWrap) {
  RingBuffer<int> rb(3);
  for (int v : {10, 20, 30, 40}) rb.push(v);
  EXPECT_EQ(rb[0], 20);
  EXPECT_EQ(rb[1], 30);
  EXPECT_EQ(rb[2], 40);
}

TEST(RingBufferTest, ClearResets) {
  RingBuffer<int> rb(3);
  for (int v : {1, 2, 3, 4}) rb.push(v);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_TRUE(rb.first().empty());
  EXPECT_TRUE(rb.second().empty());
  rb.push(9);
  EXPECT_EQ(rb.front(), 9);
  EXPECT_EQ(contents(rb), (std::vector<int>{9}));
}

TEST(RingBufferTest, CapacityOneKeepsOnlyTheNewest) {
  RingBuffer<int> rb(1);
  rb.push(1);
  rb.push(2);
  EXPECT_EQ(rb.size(), 1u);
  EXPECT_EQ(rb.front(), 2);
  EXPECT_EQ(rb.back(), 2);
  EXPECT_EQ(contents(rb), (std::vector<int>{2}));
}

TEST(RingBufferTest, LongPushSequenceMatchesSlidingWindow) {
  // Property: after pushing 0..n-1 into a capacity-k ring, the window reads
  // exactly the last k values in order — for every prefix length.
  constexpr int kCap = 5;
  RingBuffer<int> rb(kCap);
  std::vector<int> expected;
  for (int v = 0; v < 37; ++v) {
    rb.push(v);
    expected.push_back(v);
    const std::size_t start =
        expected.size() > kCap ? expected.size() - kCap : 0;
    const std::vector<int> window(expected.begin() + start, expected.end());
    ASSERT_EQ(contents(rb), window) << "after push " << v;
    ASSERT_EQ(rb.first().size() + rb.second().size(), rb.size());
  }
}

}  // namespace
}  // namespace mmog::util
