// Architecture-analysis tests: a fixture repository is generated on disk
// with a seeded include cycle, a layering violation, and a header missing
// #pragma once; the analyzer must find exactly those (pinned as golden
// JSON/SARIF), and the *real* repository must come back violation-free.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "util/srclint.hpp"

namespace mmog::util::lint {
namespace {

namespace fs = std::filesystem;

void write(const fs::path& path, const std::string& content) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path);
  ASSERT_TRUE(out) << path;
  out << content;
}

/// Two modules, alpha and beta: the CMake link graph says beta -> alpha,
/// but alpha's header includes beta's — a layering violation that also
/// closes an include cycle. One extra header is missing #pragma once.
class SrcLintArchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) / "srclint_fixture";
    fs::remove_all(root_);
    write(root_ / "src/alpha/CMakeLists.txt",
          "add_library(mmog_alpha a.cpp)\n");
    write(root_ / "src/beta/CMakeLists.txt",
          "add_library(mmog_beta b.cpp)\n"
          "target_link_libraries(mmog_beta PUBLIC mmog_alpha)\n");
    write(root_ / "src/alpha/a.hpp",
          "#pragma once\n"
          "#include \"beta/b.hpp\"\n"  // seeded violation + cycle edge
          "int alpha_f();\n");
    write(root_ / "src/alpha/a.cpp",
          "#include \"alpha/a.hpp\"\n"
          "int alpha_f() { return 1; }\n");
    write(root_ / "src/beta/b.hpp",
          "#pragma once\n"
          "int beta_f();\n");
    write(root_ / "src/beta/b.cpp",
          "#include \"beta/b.hpp\"\n"
          "#include \"alpha/a.hpp\"\n"  // legal: beta links alpha
          "int beta_f() { return alpha_f(); }\n");
    write(root_ / "src/beta/nopragma.hpp", "int beta_g();\n");
  }

  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
};

TEST_F(SrcLintArchTest, GraphParsesModulesAndLinkClosure) {
  const auto graph = build_architecture_graph(root_.string());
  EXPECT_EQ(graph.src_modules, (std::vector<std::string>{"alpha", "beta"}));
  // Link DAG: beta -> alpha, alpha is a leaf.
  EXPECT_TRUE(graph.link_deps.at("alpha").empty());
  EXPECT_EQ(graph.link_deps.at("beta"), (std::set<std::string>{"alpha"}));
  // Closures include self.
  EXPECT_EQ(graph.allowed.at("alpha"), (std::set<std::string>{"alpha"}));
  EXPECT_EQ(graph.allowed.at("beta"),
            (std::set<std::string>{"alpha", "beta"}));
  // Observed cross-module edges: alpha->beta (the violation) and
  // beta->alpha (legal); same-module includes are not sites.
  ASSERT_EQ(graph.sites.size(), 2u);
  EXPECT_EQ(graph.sites[0].from_module, "alpha");
  EXPECT_EQ(graph.sites[0].to_module, "beta");
  EXPECT_EQ(graph.sites[0].file, "src/alpha/a.hpp");
  EXPECT_EQ(graph.sites[0].line, 2u);
  EXPECT_EQ(graph.sites[1].from_module, "beta");
  EXPECT_EQ(graph.sites[1].to_module, "alpha");
}

TEST_F(SrcLintArchTest, SeededViolationsAreFound) {
  const auto result = lint_repo(root_.string());
  std::vector<std::string> rules;
  for (const auto& f : result.findings) rules.push_back(f.rule);
  EXPECT_EQ(rules, (std::vector<std::string>{"include-cycle",
                                             "layer-violation",
                                             "pragma-once"}));
  EXPECT_EQ(result.findings[0].path, "src/alpha/a.hpp");
  EXPECT_EQ(result.findings[0].line, 2u);
  EXPECT_EQ(result.findings[0].message,
            "include cycle among src modules: alpha -> beta -> alpha");
  EXPECT_EQ(result.findings[1].path, "src/alpha/a.hpp");
  EXPECT_EQ(result.findings[1].line, 2u);
  EXPECT_EQ(result.findings[2].path, "src/beta/nopragma.hpp");
  EXPECT_EQ(result.findings[2].line, 1u);
}

TEST_F(SrcLintArchTest, GoldenJson) {
  const auto result = lint_repo(root_.string());
  EXPECT_EQ(
      findings_to_json(result.findings),
      "{\"schema\":1,\"kind\":\"mmog-lint\",\"findings\":["
      "{\"path\":\"src/alpha/a.hpp\",\"line\":2,\"rule\":\"include-cycle\","
      "\"message\":\"include cycle among src modules: alpha -> beta -> "
      "alpha\"},"
      "{\"path\":\"src/alpha/a.hpp\",\"line\":2,\"rule\":\"layer-violation\","
      "\"message\":\"module 'alpha' must not include 'beta': the CMake link "
      "graph allows only nothing\"},"
      "{\"path\":\"src/beta/nopragma.hpp\",\"line\":1,"
      "\"rule\":\"pragma-once\",\"message\":\"header missing #pragma "
      "once\"}"
      "],\"count\":3}\n");
}

TEST_F(SrcLintArchTest, GoldenSarif) {
  const auto result = lint_repo(root_.string());
  const auto sarif = findings_to_sarif(result.findings);
  // Envelope pinned exactly; the (long) rule catalog in between is covered
  // by the substring checks below.
  EXPECT_EQ(sarif.rfind("{\"$schema\":"
                        "\"https://json.schemastore.org/sarif-2.1.0.json\","
                        "\"version\":\"2.1.0\",\"runs\":[{\"tool\":"
                        "{\"driver\":{\"name\":\"mmog_lint\",",
                        0),
            0u);
  for (const auto& rule : rule_catalog()) {
    EXPECT_NE(sarif.find("{\"id\":\"" + std::string(rule.name) + "\""),
              std::string::npos)
        << rule.name;
  }
  // The results array is pinned exactly (golden).
  const std::string golden_results =
      "\"results\":["
      "{\"ruleId\":\"include-cycle\",\"level\":\"error\","
      "\"message\":{\"text\":\"include cycle among src modules: alpha -> "
      "beta -> alpha\"},\"locations\":[{\"physicalLocation\":"
      "{\"artifactLocation\":{\"uri\":\"src/alpha/a.hpp\"},"
      "\"region\":{\"startLine\":2}}}]},"
      "{\"ruleId\":\"layer-violation\",\"level\":\"error\","
      "\"message\":{\"text\":\"module 'alpha' must not include 'beta': the "
      "CMake link graph allows only nothing\"},"
      "\"locations\":[{\"physicalLocation\":"
      "{\"artifactLocation\":{\"uri\":\"src/alpha/a.hpp\"},"
      "\"region\":{\"startLine\":2}}}]},"
      "{\"ruleId\":\"pragma-once\",\"level\":\"error\","
      "\"message\":{\"text\":\"header missing #pragma once\"},"
      "\"locations\":[{\"physicalLocation\":"
      "{\"artifactLocation\":{\"uri\":\"src/beta/nopragma.hpp\"},"
      "\"region\":{\"startLine\":1}}}]}"
      "]}]}\n";
  ASSERT_GE(sarif.size(), golden_results.size());
  EXPECT_EQ(sarif.substr(sarif.size() - golden_results.size()),
            golden_results);
}

TEST_F(SrcLintArchTest, DotMarksViolationEdgesRed) {
  const auto graph = build_architecture_graph(root_.string());
  const auto dot = to_dot(graph);
  EXPECT_NE(dot.find("\"alpha\" -> \"beta\" [label=\"1\", color=red, "
                     "penwidth=2];"),
            std::string::npos)
      << dot;
  EXPECT_NE(dot.find("\"beta\" -> \"alpha\" [label=\"1\"];"),
            std::string::npos)
      << dot;
}

TEST_F(SrcLintArchTest, CommentedOutIncludesDoNotCount) {
  write(root_ / "src/beta/extra.cpp",
        "// #include \"gamma/c.hpp\"\n"
        "/* #include \"alpha/a.hpp\" */\n"
        "int beta_extra() { return 0; }\n");
  const auto graph = build_architecture_graph(root_.string());
  for (const auto& site : graph.sites) {
    EXPECT_NE(site.file, "src/beta/extra.cpp");
  }
}

TEST_F(SrcLintArchTest, FixingTheLinkGraphClearsTheViolation) {
  // Declaring alpha -> beta in CMake makes the include edge legal — but the
  // cycle (a property of the include graph, not the link graph) remains.
  write(root_ / "src/alpha/CMakeLists.txt",
        "add_library(mmog_alpha a.cpp)\n"
        "target_link_libraries(mmog_alpha PUBLIC mmog_beta)\n");
  const auto graph = build_architecture_graph(root_.string());
  const auto findings = lint_architecture(graph);
  std::vector<std::string> rules;
  for (const auto& f : findings) rules.push_back(f.rule);
  EXPECT_EQ(rules, (std::vector<std::string>{"include-cycle"}));
}

#ifdef MMOG_SOURCE_DIR
TEST(SrcLintRepoPropertyTest, RealRepositoryIsViolationFree) {
  const auto result = lint_repo(MMOG_SOURCE_DIR);
  for (const auto& f : result.findings) {
    ADD_FAILURE() << f.path << ":" << f.line << " [" << f.rule << "] "
                  << f.message;
  }
  // Graph sanity: the real module set is present and util is the base
  // layer — nothing under src/util includes another module's headers.
  const auto& modules = result.graph.src_modules;
  for (const char* expected : {"core", "dc", "obs", "predict", "util"}) {
    EXPECT_NE(std::find(modules.begin(), modules.end(), expected),
              modules.end())
        << expected;
  }
  for (const auto& site : result.graph.sites) {
    EXPECT_NE(site.from_module, "util")
        << site.file << ":" << site.line << " includes " << site.to_module;
  }
  EXPECT_TRUE(result.graph.allowed.at("core").count("util") > 0);
}
#endif

}  // namespace
}  // namespace mmog::util::lint
