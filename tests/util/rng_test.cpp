#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace mmog::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsProduceDifferentStreams) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 12);
}

TEST(RngTest, UniformStaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCloseToHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 10.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 10.0);
  }
}

TEST(RngTest, UniformIntCoversFullInclusiveRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(1, 6));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(RngTest, UniformIntDegenerateRangeReturnsLow) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
  EXPECT_EQ(rng.uniform_int(9, 2), 9);  // hi < lo falls back to lo
}

TEST(RngTest, NormalHasExpectedMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalWithParametersShiftsAndScales) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.exponential(1.0), 0.0);
  }
}

TEST(RngTest, LognormalMedianIsExpMu) {
  Rng rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 50001; ++i) xs.push_back(rng.lognormal(1.0, 0.5));
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(1.0), 0.1);
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(29);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremesAreDeterministic) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(37);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(rng.poisson(3.5));
  }
  EXPECT_NEAR(sum / kN, 3.5, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApproximation) {
  Rng rng(41);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(rng.poisson(100.0));
  }
  EXPECT_NEAR(sum / kN, 100.0, 1.0);
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(43);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(RngTest, WeightedChoiceFollowsWeights) {
  Rng rng(47);
  const std::array<double, 3> weights = {1.0, 2.0, 1.0};
  std::array<int, 3> counts{};
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    ++counts[rng.weighted_choice(weights)];
  }
  EXPECT_NEAR(static_cast<double>(counts[1]) / kN, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.25, 0.02);
}

TEST(RngTest, WeightedChoiceIgnoresNegativeWeights) {
  Rng rng(53);
  const std::array<double, 3> weights = {-1.0, 0.0, 5.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.weighted_choice(weights), 2u);
  }
}

TEST(RngTest, WeightedChoiceThrowsOnEmptyOrZeroWeights) {
  Rng rng(59);
  EXPECT_THROW(rng.weighted_choice({}), std::invalid_argument);
  const std::array<double, 2> zeros = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_choice(zeros), std::invalid_argument);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(61);
  Rng child = parent.fork();
  // The child stream must differ from a continued parent stream.
  int diff = 0;
  for (int i = 0; i < 16; ++i) {
    if (parent() != child()) ++diff;
  }
  EXPECT_GT(diff, 12);
}

TEST(RngTest, ShuffleKeepsAllElements) {
  Rng rng(67);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  shuffle(copy, rng);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(71);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  shuffle(shuffled, rng);
  EXPECT_NE(shuffled, v);
}

}  // namespace
}  // namespace mmog::util
