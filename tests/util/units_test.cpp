#include "util/units.hpp"

#include <gtest/gtest.h>

namespace mmog::util {
namespace {

TEST(UnitsTest, ResourceNamesMatchPaper) {
  EXPECT_EQ(resource_name(ResourceKind::kCpu), "CPU");
  EXPECT_EQ(resource_name(ResourceKind::kMemory), "Memory");
  EXPECT_EQ(resource_name(ResourceKind::kNetIn), "ExtNet[in]");
  EXPECT_EQ(resource_name(ResourceKind::kNetOut), "ExtNet[out]");
}

TEST(ResourceVectorTest, OfSetsComponentsInOrder) {
  const auto v = ResourceVector::of(1, 2, 3, 4);
  EXPECT_DOUBLE_EQ(v.cpu(), 1.0);
  EXPECT_DOUBLE_EQ(v.memory(), 2.0);
  EXPECT_DOUBLE_EQ(v.net_in(), 3.0);
  EXPECT_DOUBLE_EQ(v.net_out(), 4.0);
}

TEST(ResourceVectorTest, IndexingByKind) {
  ResourceVector v;
  v[ResourceKind::kNetOut] = 7.5;
  EXPECT_DOUBLE_EQ(v[ResourceKind::kNetOut], 7.5);
  EXPECT_DOUBLE_EQ(v[ResourceKind::kCpu], 0.0);
}

TEST(ResourceVectorTest, Arithmetic) {
  const auto a = ResourceVector::of(1, 2, 3, 4);
  const auto b = ResourceVector::of(4, 3, 2, 1);
  const auto sum = a + b;
  EXPECT_EQ(sum, ResourceVector::of(5, 5, 5, 5));
  const auto diff = a - b;
  EXPECT_EQ(diff, ResourceVector::of(-3, -1, 1, 3));
  EXPECT_EQ(a * 2.0, ResourceVector::of(2, 4, 6, 8));
  EXPECT_EQ(2.0 * a, a * 2.0);
}

TEST(ResourceVectorTest, CompoundAssignment) {
  auto v = ResourceVector::of(1, 1, 1, 1);
  v += ResourceVector::of(1, 2, 3, 4);
  EXPECT_EQ(v, ResourceVector::of(2, 3, 4, 5));
  v -= ResourceVector::of(2, 2, 2, 2);
  EXPECT_EQ(v, ResourceVector::of(0, 1, 2, 3));
  v *= 3.0;
  EXPECT_EQ(v, ResourceVector::of(0, 3, 6, 9));
}

TEST(ResourceVectorTest, CoversRequiresEveryComponent) {
  const auto big = ResourceVector::of(2, 2, 2, 2);
  const auto small = ResourceVector::of(1, 2, 1, 0);
  EXPECT_TRUE(big.covers(small));
  EXPECT_FALSE(small.covers(big));
  EXPECT_TRUE(big.covers(big));  // equality counts as covering
}

TEST(ResourceVectorTest, NonNegativeAndClamp) {
  const auto mixed = ResourceVector::of(1, -2, 0, 3);
  EXPECT_FALSE(mixed.non_negative());
  const auto clamped = mixed.clamped_non_negative();
  EXPECT_TRUE(clamped.non_negative());
  EXPECT_EQ(clamped, ResourceVector::of(1, 0, 0, 3));
}

TEST(ResourceVectorTest, DefaultIsZero) {
  const ResourceVector v;
  EXPECT_TRUE(v.non_negative());
  EXPECT_EQ(v, ResourceVector::of(0, 0, 0, 0));
}

}  // namespace
}  // namespace mmog::util
