#include "util/shard_team.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mmog::util {
namespace {

struct CountCtx {
  std::vector<std::atomic<int>> hits;
  std::atomic<std::size_t> observed_shards{0};
  explicit CountCtx(std::size_t n) : hits(n) {}
};

void count_task(void* ctx, std::size_t shard, std::size_t shards) {
  auto* c = static_cast<CountCtx*>(ctx);
  c->hits[shard].fetch_add(1, std::memory_order_relaxed);
  c->observed_shards.store(shards, std::memory_order_relaxed);
}

TEST(ShardTeamTest, SingleThreadRunsInline) {
  ShardTeam team(1);
  EXPECT_EQ(team.threads(), 1u);
  CountCtx ctx(1);
  team.run(&count_task, &ctx);
  EXPECT_EQ(ctx.hits[0].load(), 1);
  EXPECT_EQ(ctx.observed_shards.load(), 1u);
}

TEST(ShardTeamTest, ZeroThreadsClampsToOne) {
  ShardTeam team(0);
  EXPECT_EQ(team.threads(), 1u);
}

TEST(ShardTeamTest, EveryShardRunsExactlyOncePerDispatch) {
  ShardTeam team(4);
  ASSERT_EQ(team.threads(), 4u);
  CountCtx ctx(4);
  team.run(&count_task, &ctx);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(ctx.hits[s].load(), 1) << "shard " << s;
  }
  EXPECT_EQ(ctx.observed_shards.load(), 4u);
}

struct SumCtx {
  std::vector<long long> partial;  // disjoint slots, one per shard
  explicit SumCtx(std::size_t n) : partial(n, 0) {}
};

void sum_task(void* ctx, std::size_t shard, std::size_t shards) {
  auto* c = static_cast<SumCtx*>(ctx);
  // Shard-strided sum over [0, 10000): disjoint writes, join is the barrier.
  long long sum = 0;
  for (std::size_t i = shard; i < 10000; i += shards) {
    sum += static_cast<long long>(i);
  }
  c->partial[shard] = sum;
}

TEST(ShardTeamTest, ReusableAcrossManyDispatchesWithVisibleWrites) {
  ShardTeam team(4);
  for (int round = 0; round < 200; ++round) {
    SumCtx ctx(team.threads());
    team.run(&sum_task, &ctx);
    const long long total =
        std::accumulate(ctx.partial.begin(), ctx.partial.end(), 0LL);
    ASSERT_EQ(total, 10000LL * 9999LL / 2) << "round " << round;
  }
}

void throwing_task(void* ctx, std::size_t shard, std::size_t shards) {
  count_task(ctx, shard, shards);
  if (shard == 2) throw std::runtime_error("shard 2 failed");
}

TEST(ShardTeamTest, ShardExceptionRethrownOnCallerAndTeamStaysUsable) {
  ShardTeam team(4);
  CountCtx ctx(4);
  EXPECT_THROW(team.run(&throwing_task, &ctx), std::runtime_error);
  // The failing dispatch still ran every shard to completion …
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(ctx.hits[s].load(), 1) << "shard " << s;
  }
  // … and the team accepts the next dispatch as if nothing happened.
  CountCtx again(4);
  team.run(&count_task, &again);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(again.hits[s].load(), 1) << "shard " << s;
  }
}

}  // namespace
}  // namespace mmog::util
