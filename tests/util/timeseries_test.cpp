#include "util/timeseries.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mmog::util {
namespace {

TEST(TimeSeriesTest, ConstructorRejectsNonPositiveStep) {
  EXPECT_THROW(TimeSeries(0.0), std::invalid_argument);
  EXPECT_THROW(TimeSeries(-1.0), std::invalid_argument);
}

TEST(TimeSeriesTest, TimeAtUsesStep) {
  TimeSeries ts(120.0, {1, 2, 3});
  EXPECT_DOUBLE_EQ(ts.time_at(0), 0.0);
  EXPECT_DOUBLE_EQ(ts.time_at(2), 240.0);
}

TEST(TimeSeriesTest, PushBackAndIndexing) {
  TimeSeries ts(1.0);
  EXPECT_TRUE(ts.empty());
  ts.push_back(3.0);
  ts.push_back(4.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts[1], 4.0);
  ts[1] = 9.0;
  EXPECT_DOUBLE_EQ(ts.at(1), 9.0);
  EXPECT_THROW(ts.at(5), std::out_of_range);
}

TEST(TimeSeriesTest, SliceClampsToRange) {
  TimeSeries ts(1.0, {0, 1, 2, 3, 4});
  const auto s = ts.slice(3, 10);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 3.0);
  EXPECT_DOUBLE_EQ(s[1], 4.0);
  EXPECT_TRUE(ts.slice(99, 3).empty());
}

TEST(TimeSeriesTest, SlicePreservesStep) {
  TimeSeries ts(120.0, {0, 1, 2});
  EXPECT_DOUBLE_EQ(ts.slice(0, 2).step_seconds(), 120.0);
}

TEST(TimeSeriesTest, DownsampleMeanAveragesWindows) {
  TimeSeries ts(1.0, {1, 3, 5, 7, 10});
  const auto d = ts.downsample_mean(2);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 6.0);
  EXPECT_DOUBLE_EQ(d[2], 10.0);  // trailing partial window
  EXPECT_DOUBLE_EQ(d.step_seconds(), 2.0);
}

TEST(TimeSeriesTest, DownsampleRejectsZeroFactor) {
  TimeSeries ts(1.0, {1, 2});
  EXPECT_THROW(ts.downsample_mean(0), std::invalid_argument);
}

TEST(TimeSeriesTest, SumAddsElementwise) {
  const std::vector<TimeSeries> series = {TimeSeries(1.0, {1, 2, 3}),
                                          TimeSeries(1.0, {10, 20, 30})};
  const auto total = TimeSeries::sum(series);
  ASSERT_EQ(total.size(), 3u);
  EXPECT_DOUBLE_EQ(total[0], 11.0);
  EXPECT_DOUBLE_EQ(total[2], 33.0);
}

TEST(TimeSeriesTest, SumRejectsMismatchedSeries) {
  const std::vector<TimeSeries> bad_len = {TimeSeries(1.0, {1, 2}),
                                           TimeSeries(1.0, {1})};
  EXPECT_THROW(TimeSeries::sum(bad_len), std::invalid_argument);
  const std::vector<TimeSeries> bad_step = {TimeSeries(1.0, {1, 2}),
                                            TimeSeries(2.0, {1, 2})};
  EXPECT_THROW(TimeSeries::sum(bad_step), std::invalid_argument);
}

TEST(TimeSeriesTest, SumOfNothingIsEmpty) {
  EXPECT_TRUE(TimeSeries::sum({}).empty());
}

TEST(TimeSeriesTest, MinMaxMean) {
  TimeSeries ts(1.0, {4, -1, 7, 2});
  EXPECT_DOUBLE_EQ(ts.max(), 7.0);
  EXPECT_DOUBLE_EQ(ts.min(), -1.0);
  EXPECT_DOUBLE_EQ(ts.mean(), 3.0);
  EXPECT_DOUBLE_EQ(TimeSeries().max(), 0.0);
  EXPECT_DOUBLE_EQ(TimeSeries().mean(), 0.0);
}

TEST(TimeSeriesTest, SamplesPerDaysMatchesTwoMinuteCadence) {
  EXPECT_EQ(samples_per_days(1.0), 720u);
  EXPECT_EQ(samples_per_days(14.0), 10080u);
  EXPECT_EQ(kSamplesPerDay, 720u);
  EXPECT_DOUBLE_EQ(kSampleStepSeconds, 120.0);
}

}  // namespace
}  // namespace mmog::util
