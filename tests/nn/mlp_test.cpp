#include "nn/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace mmog::nn {
namespace {

TEST(MlpTest, RejectsDegenerateArchitectures) {
  util::Rng rng(1);
  EXPECT_THROW(Mlp({5}, rng), std::invalid_argument);
  EXPECT_THROW(Mlp({3, 0, 1}, rng), std::invalid_argument);
}

TEST(MlpTest, PaperStructureHasExpectedParameterCount) {
  util::Rng rng(1);
  Mlp net({6, 3, 1}, rng);
  // 6*3 weights + 3 biases + 3*1 weights + 1 bias = 25.
  EXPECT_EQ(net.parameter_count(), 25u);
  EXPECT_EQ(net.input_size(), 6u);
  EXPECT_EQ(net.output_size(), 1u);
}

TEST(MlpTest, ForwardRejectsWrongInputSize) {
  util::Rng rng(2);
  Mlp net({3, 2}, rng);
  const std::vector<double> wrong = {1.0, 2.0};
  EXPECT_THROW(net.forward(wrong), std::invalid_argument);
}

TEST(MlpTest, ForwardIsDeterministic) {
  util::Rng rng(3);
  Mlp net({4, 3, 2}, rng);
  const std::vector<double> in = {0.1, 0.2, 0.3, 0.4};
  const auto a = net.forward(in);
  const auto b = net.forward(in);
  EXPECT_EQ(a, b);
}

TEST(MlpTest, ForwardOutputIsFinite) {
  util::Rng rng(4);
  Mlp net({6, 3, 1}, rng);
  const std::vector<double> in = {1e3, -1e3, 0, 1, -1, 0.5};
  const auto out = net.forward(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(std::isfinite(out[0]));
}

TEST(MlpTest, TrainStepReducesErrorOnSinglePattern) {
  util::Rng rng(5);
  Mlp net({2, 4, 1}, rng);
  const std::vector<double> in = {0.3, 0.7};
  const std::vector<double> target = {0.9};
  const double first = net.train_step(in, target, 0.1);
  double last = first;
  for (int i = 0; i < 200; ++i) last = net.train_step(in, target, 0.1);
  EXPECT_LT(last, first * 0.01);
}

TEST(MlpTest, LearnsXor) {
  util::Rng rng(6);
  Mlp net({2, 4, 1}, rng);
  const std::vector<std::vector<double>> inputs = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const std::vector<std::vector<double>> targets = {{0}, {1}, {1}, {0}};
  for (int era = 0; era < 4000; ++era) {
    for (std::size_t s = 0; s < inputs.size(); ++s) {
      net.train_step(inputs[s], targets[s], 0.2, 0.5);
    }
  }
  EXPECT_LT(net.evaluate_mse(inputs, targets), 0.02);
}

TEST(MlpTest, LearnsLinearFunctionWithLinearOutput) {
  util::Rng rng(7);
  Mlp net({1, 3, 1}, rng);
  // y = 0.5 x + 0.2 on [0,1].
  std::vector<std::vector<double>> inputs, targets;
  for (int i = 0; i <= 20; ++i) {
    const double x = i / 20.0;
    inputs.push_back({x});
    targets.push_back({0.5 * x + 0.2});
  }
  for (int era = 0; era < 2000; ++era) {
    for (std::size_t s = 0; s < inputs.size(); ++s) {
      net.train_step(inputs[s], targets[s], 0.05, 0.3);
    }
  }
  EXPECT_LT(net.evaluate_mse(inputs, targets), 1e-4);
}

TEST(MlpTest, TrainStepRejectsWrongSizes) {
  util::Rng rng(8);
  Mlp net({2, 2, 1}, rng);
  const std::vector<double> in = {1, 2};
  const std::vector<double> bad_target = {1, 2};
  EXPECT_THROW(net.train_step(in, bad_target, 0.1), std::invalid_argument);
}

TEST(MlpTest, EvaluateMseRejectsMismatch) {
  util::Rng rng(9);
  Mlp net({2, 1}, rng);
  const std::vector<std::vector<double>> inputs = {{1, 2}};
  const std::vector<std::vector<double>> targets;
  EXPECT_THROW(net.evaluate_mse(inputs, targets), std::invalid_argument);
}

TEST(MlpTest, EvaluateMseOfEmptyBatchIsZero) {
  util::Rng rng(10);
  Mlp net({2, 1}, rng);
  EXPECT_DOUBLE_EQ(net.evaluate_mse({}, {}), 0.0);
}

TEST(MlpTest, ParameterRoundTripRestoresOutputs) {
  util::Rng rng(11);
  Mlp net({3, 2, 1}, rng);
  const std::vector<double> in = {0.1, 0.5, -0.2};
  const auto before = net.forward(in);
  const auto saved = net.parameters();
  // Perturb by training, then restore.
  const std::vector<double> target = {1.0};
  net.train_step(in, target, 0.5);
  EXPECT_NE(net.forward(in), before);
  net.set_parameters(saved);
  EXPECT_EQ(net.forward(in), before);
}

TEST(MlpTest, SetParametersRejectsWrongSize) {
  util::Rng rng(12);
  Mlp net({2, 1}, rng);
  const std::vector<double> wrong(net.parameter_count() + 1, 0.0);
  EXPECT_THROW(net.set_parameters(wrong), std::invalid_argument);
}

TEST(MlpTest, DifferentSeedsDifferentInitialWeights) {
  util::Rng rng_a(13), rng_b(14);
  Mlp a({4, 3, 1}, rng_a);
  Mlp b({4, 3, 1}, rng_b);
  EXPECT_NE(a.parameters(), b.parameters());
}

}  // namespace
}  // namespace mmog::nn
