#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.hpp"

namespace mmog::nn {
namespace {

TEST(SerializeTest, RoundTripPreservesOutputs) {
  util::Rng rng(1);
  Mlp net({6, 3, 1}, rng);
  // Train a little so weights are non-trivial.
  const std::vector<double> in = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  const std::vector<double> target = {0.7};
  for (int i = 0; i < 50; ++i) net.train_step(in, target, 0.1, 0.3);

  std::stringstream buffer;
  save_mlp(buffer, net);
  const auto loaded = load_mlp(buffer);

  EXPECT_EQ(loaded.layer_sizes(), net.layer_sizes());
  EXPECT_EQ(loaded.forward(in), net.forward(in));
  const std::vector<double> other = {0.9, 0.0, 0.1, 0.8, 0.2, 0.4};
  EXPECT_EQ(loaded.forward(other), net.forward(other));
}

TEST(SerializeTest, RoundTripExactParameters) {
  util::Rng rng(2);
  Mlp net({3, 5, 2}, rng);
  std::stringstream buffer;
  save_mlp(buffer, net);
  const auto loaded = load_mlp(buffer);
  EXPECT_EQ(loaded.parameters(), net.parameters());
}

TEST(SerializeTest, RejectsBadMagic) {
  std::stringstream buffer("not-a-model\n2 3 1\n");
  EXPECT_THROW(load_mlp(buffer), std::runtime_error);
}

TEST(SerializeTest, RejectsTruncatedStream) {
  util::Rng rng(3);
  Mlp net({2, 2, 1}, rng);
  std::stringstream buffer;
  save_mlp(buffer, net);
  const auto text = buffer.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_THROW(load_mlp(truncated), std::runtime_error);
}

TEST(SerializeTest, RejectsZeroLayerSize) {
  std::stringstream buffer("mmog-mlp-v1\n3 2 0 1\n0\n");
  EXPECT_THROW(load_mlp(buffer), std::runtime_error);
}

TEST(SerializeTest, RejectsParameterCountMismatch) {
  std::stringstream buffer("mmog-mlp-v1\n2 2 1\n5\n1 2 3 4 5\n");
  // A (2,1) net has 2 weights + 1 bias = 3 parameters, not 5.
  EXPECT_THROW(load_mlp(buffer), std::runtime_error);
}

}  // namespace
}  // namespace mmog::nn
