#include "nn/preprocess.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace mmog::nn {
namespace {

TEST(PolyfitTest, RecoversLinearCoefficients) {
  const std::vector<double> xs = {0, 1, 2, 3, 4};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.0 * x + 1.0);
  const auto c = polyfit(xs, ys, 1);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_NEAR(c[0], 1.0, 1e-9);
  EXPECT_NEAR(c[1], 2.0, 1e-9);
}

TEST(PolyfitTest, RecoversQuadraticCoefficients) {
  const std::vector<double> xs = {-2, -1, 0, 1, 2};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 * x * x - x + 0.5);
  const auto c = polyfit(xs, ys, 2);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_NEAR(c[0], 0.5, 1e-9);
  EXPECT_NEAR(c[1], -1.0, 1e-9);
  EXPECT_NEAR(c[2], 3.0, 1e-9);
}

TEST(PolyfitTest, ThrowsOnBadInput) {
  EXPECT_THROW(polyfit({}, {}, 1), std::invalid_argument);
  const std::vector<double> xs = {1, 2};
  const std::vector<double> ys = {1};
  EXPECT_THROW(polyfit(xs, ys, 1), std::invalid_argument);
  const std::vector<double> same = {1, 2};
  EXPECT_THROW(polyfit(same, same, 2), std::invalid_argument);
}

TEST(PolyvalTest, EvaluatesHornerCorrectly) {
  const std::vector<double> c = {1.0, 2.0, 3.0};  // 1 + 2x + 3x^2
  EXPECT_DOUBLE_EQ(polyval(c, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(polyval(c, 1.0), 6.0);
  EXPECT_DOUBLE_EQ(polyval(c, 2.0), 17.0);
  EXPECT_DOUBLE_EQ(polyval({}, 5.0), 0.0);
}

TEST(SmootherTest, ConstructorValidatesWindow) {
  EXPECT_THROW(PolynomialSmoother(2, 2), std::invalid_argument);
  EXPECT_NO_THROW(PolynomialSmoother(2, 3));
}

TEST(SmootherTest, PassesShortInputThrough) {
  PolynomialSmoother s(2, 5);
  const std::vector<double> xs = {4.0};
  EXPECT_DOUBLE_EQ(s.smooth_last(xs), 4.0);
  EXPECT_DOUBLE_EQ(s.smooth_last({}), 0.0);
}

TEST(SmootherTest, PreservesPolynomialSignalsExactly) {
  // A degree-2 smoother must reproduce a quadratic series exactly.
  PolynomialSmoother s(2, 5);
  std::vector<double> xs;
  for (int t = 0; t < 20; ++t) xs.push_back(0.5 * t * t - t + 3.0);
  EXPECT_NEAR(s.smooth_last(xs), xs.back(), 1e-6);
}

TEST(SmootherTest, ReducesNoiseVariance) {
  util::Rng rng(1);
  PolynomialSmoother s(1, 9);
  std::vector<double> noisy;
  for (int t = 0; t < 300; ++t) noisy.push_back(100.0 + rng.normal(0.0, 10.0));
  const auto smoothed = s.smooth_series(noisy);
  double raw_dev = 0.0, smooth_dev = 0.0;
  for (std::size_t t = 20; t < noisy.size(); ++t) {
    raw_dev += std::abs(noisy[t] - 100.0);
    smooth_dev += std::abs(smoothed[t] - 100.0);
  }
  EXPECT_LT(smooth_dev, raw_dev * 0.7);
}

TEST(SmootherTest, SmoothSeriesIsCausal) {
  PolynomialSmoother s(1, 4);
  std::vector<double> xs = {1, 2, 3, 4, 5, 6};
  const auto a = s.smooth_series(xs);
  // Appending a sample must not change earlier outputs.
  xs.push_back(100.0);
  const auto b = s.smooth_series(xs);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << "index " << i;
  }
}

TEST(NormalizerTest, MapsRangeToUnitInterval) {
  MinMaxNormalizer n;
  const std::vector<double> xs = {10, 20, 30};
  n.fit(xs);
  EXPECT_DOUBLE_EQ(n.transform(10.0), 0.0);
  EXPECT_DOUBLE_EQ(n.transform(30.0), 1.0);
  EXPECT_DOUBLE_EQ(n.transform(20.0), 0.5);
}

TEST(NormalizerTest, InverseRoundTrips) {
  MinMaxNormalizer n;
  const std::vector<double> xs = {-5, 0, 15};
  n.fit(xs);
  for (double x : {-5.0, 0.0, 7.5, 15.0, 20.0}) {
    EXPECT_NEAR(n.inverse(n.transform(x)), x, 1e-12);
  }
}

TEST(NormalizerTest, ConstantSampleDoesNotDivideByZero) {
  MinMaxNormalizer n;
  const std::vector<double> xs = {4, 4, 4};
  n.fit(xs);
  EXPECT_TRUE(std::isfinite(n.transform(4.0)));
  EXPECT_DOUBLE_EQ(n.transform(4.0), 0.0);
}

TEST(NormalizerTest, EmptyFitYieldsDefaultRange) {
  MinMaxNormalizer n;
  n.fit({});
  EXPECT_DOUBLE_EQ(n.lo(), 0.0);
  EXPECT_DOUBLE_EQ(n.hi(), 1.0);
}

TEST(NormalizerTest, UpdateWidensRange) {
  MinMaxNormalizer n;
  const std::vector<double> xs = {0, 10};
  n.fit(xs);
  n.update(20.0);
  EXPECT_DOUBLE_EQ(n.hi(), 20.0);
  EXPECT_DOUBLE_EQ(n.transform(20.0), 1.0);
  n.update(-10.0);
  EXPECT_DOUBLE_EQ(n.lo(), -10.0);
}

}  // namespace
}  // namespace mmog::nn
