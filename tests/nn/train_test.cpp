#include "nn/train.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/rng.hpp"

namespace mmog::nn {
namespace {

Dataset make_sine_dataset(std::size_t n, std::size_t window) {
  Dataset d;
  std::vector<double> xs;
  for (std::size_t t = 0; t < n + window; ++t) {
    xs.push_back(0.5 + 0.4 * std::sin(2.0 * std::numbers::pi * t / 50.0));
  }
  for (std::size_t t = window; t < xs.size(); ++t) {
    std::vector<double> in(xs.begin() + static_cast<std::ptrdiff_t>(t - window),
                           xs.begin() + static_cast<std::ptrdiff_t>(t));
    d.inputs.push_back(std::move(in));
    d.targets.push_back({xs[t]});
  }
  return d;
}

TEST(DatasetTest, SplitPartitionsInOrder) {
  Dataset d;
  for (int i = 0; i < 10; ++i) {
    d.inputs.push_back({static_cast<double>(i)});
    d.targets.push_back({static_cast<double>(i)});
  }
  const auto [train, test] = d.split(0.8);
  EXPECT_EQ(train.size(), 8u);
  EXPECT_EQ(test.size(), 2u);
  EXPECT_DOUBLE_EQ(train.inputs.front()[0], 0.0);
  EXPECT_DOUBLE_EQ(test.inputs.front()[0], 8.0);
}

TEST(DatasetTest, SplitRejectsBadFraction) {
  Dataset d;
  EXPECT_THROW(d.split(-0.1), std::invalid_argument);
  EXPECT_THROW(d.split(1.1), std::invalid_argument);
}

TEST(DatasetTest, SplitExtremes) {
  Dataset d;
  d.inputs.push_back({1.0});
  d.targets.push_back({1.0});
  const auto [all_train, none_test] = d.split(1.0);
  EXPECT_EQ(all_train.size(), 1u);
  EXPECT_TRUE(none_test.empty());
}

TEST(TrainTest, LearnsSineOneStepAhead) {
  util::Rng rng(1);
  Mlp net({6, 3, 1}, rng);
  const auto data = make_sine_dataset(400, 6);
  const auto [train_set, test_set] = data.split(0.8);
  TrainConfig cfg;
  cfg.max_eras = 150;
  cfg.learning_rate = 0.05;
  cfg.momentum = 0.5;
  cfg.patience = 25;
  const auto result = train(net, train_set, test_set, cfg);
  EXPECT_GT(result.eras, 0u);
  EXPECT_LT(result.test_rmse, 0.05);
}

TEST(TrainTest, EmptyTrainingSetIsNoOp) {
  util::Rng rng(2);
  Mlp net({2, 1}, rng);
  const auto result = train(net, {}, {}, {});
  EXPECT_EQ(result.eras, 0u);
  EXPECT_FALSE(result.converged);
}

TEST(TrainTest, MismatchedDatasetThrows) {
  util::Rng rng(3);
  Mlp net({1, 1}, rng);
  Dataset bad;
  bad.inputs.push_back({1.0});
  // no target
  EXPECT_THROW(train(net, bad, {}, {}), std::invalid_argument);
}

TEST(TrainTest, TargetRmseStopsEarly) {
  util::Rng rng(4);
  Mlp net({6, 3, 1}, rng);
  const auto data = make_sine_dataset(300, 6);
  const auto [train_set, test_set] = data.split(0.8);
  TrainConfig cfg;
  cfg.max_eras = 500;
  cfg.target_rmse = 0.2;  // loose target, hit quickly
  cfg.patience = 0;
  const auto result = train(net, train_set, test_set, cfg);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.eras, 500u);
  EXPECT_LE(result.test_rmse, 0.2 + 1e-9);
}

TEST(TrainTest, PatienceTriggersConvergence) {
  util::Rng rng(5);
  Mlp net({2, 2, 1}, rng);
  // A constant target is learned quickly; afterwards the test RMSE cannot
  // improve materially, so patience must stop the run well short of the cap.
  Dataset data;
  util::Rng noise(99);
  for (int i = 0; i < 60; ++i) {
    data.inputs.push_back({noise.uniform(), noise.uniform()});
    data.targets.push_back({0.5});
  }
  const auto [train_set, test_set] = data.split(0.7);
  TrainConfig cfg;
  cfg.max_eras = 20000;
  cfg.learning_rate = 0.3;
  cfg.patience = 10;
  const auto result = train(net, train_set, test_set, cfg);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.eras, 20000u);
}

TEST(TrainTest, RestoresBestParametersOnTest) {
  util::Rng rng(6);
  Mlp net({6, 3, 1}, rng);
  const auto data = make_sine_dataset(300, 6);
  const auto [train_set, test_set] = data.split(0.8);
  TrainConfig cfg;
  cfg.max_eras = 100;
  cfg.patience = 15;
  const auto result = train(net, train_set, test_set, cfg);
  // The restored network must reproduce the reported test RMSE.
  const double rmse =
      std::sqrt(net.evaluate_mse(test_set.inputs, test_set.targets));
  EXPECT_NEAR(rmse, result.test_rmse, 1e-12);
}

TEST(TrainTest, TrainsWithoutTestSetUsingTrainError) {
  util::Rng rng(7);
  Mlp net({6, 3, 1}, rng);
  const auto data = make_sine_dataset(200, 6);
  TrainConfig cfg;
  cfg.max_eras = 50;
  cfg.patience = 10;
  const auto result = train(net, data, {}, cfg);
  EXPECT_GT(result.eras, 0u);
  EXPECT_DOUBLE_EQ(result.test_rmse, result.train_rmse);
}

}  // namespace
}  // namespace mmog::nn
