#include "core/matcher.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace mmog::core {
namespace {

dc::DataCenterSpec make_dc(std::string name, dc::GeoPoint loc, int policy,
                           std::size_t machines = 10) {
  dc::DataCenterSpec d;
  d.name = std::move(name);
  d.location = loc;
  d.machines = machines;
  d.policy = dc::HostingPolicy::preset(policy);
  return d;
}

// A simple line of data centers: local, ~900 km away, ~3000 km away.
std::vector<dc::DataCenterSpec> line_world() {
  return {
      make_dc("Local", {52.37, 4.90}, 5),       // Amsterdam
      make_dc("Near", {48.86, 2.35}, 5),        // Paris (~430 km)
      make_dc("Far", {40.41, -3.70}, 5),        // Madrid (~1480 km)
      make_dc("VeryFar", {40.71, -74.01}, 5),   // New York (~5860 km)
  };
}

TEST(MatcherTest, FiltersByTolerance) {
  const auto world = line_world();
  const Matcher matcher(world);
  const dc::GeoPoint amsterdam{52.37, 4.90};
  EXPECT_EQ(matcher.candidates(amsterdam, dc::DistanceClass::kSameLocation)
                .size(),
            1u);
  EXPECT_EQ(matcher.candidates(amsterdam, dc::DistanceClass::kVeryClose)
                .size(),
            2u);
  EXPECT_EQ(matcher.candidates(amsterdam, dc::DistanceClass::kClose).size(),
            3u);
  EXPECT_EQ(matcher.candidates(amsterdam, dc::DistanceClass::kVeryFar).size(),
            4u);
}

TEST(MatcherTest, EqualPoliciesSortByDistance) {
  const auto world = line_world();
  const Matcher matcher(world);
  const dc::GeoPoint amsterdam{52.37, 4.90};
  const auto order =
      matcher.candidates(amsterdam, dc::DistanceClass::kVeryFar);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(matcher.spec(order[0]).name, "Local");
  EXPECT_EQ(matcher.spec(order[1]).name, "Near");
  EXPECT_EQ(matcher.spec(order[2]).name, "Far");
  EXPECT_EQ(matcher.spec(order[3]).name, "VeryFar");
}

TEST(MatcherTest, FinerGrainBeatsProximity) {
  // §V-E: a coarse-policy local center loses to a finer remote one within
  // tolerance.
  auto world = line_world();
  world[0].policy = dc::HostingPolicy::preset(7);  // local becomes coarse
  world[2].policy = dc::HostingPolicy::preset(3);  // far becomes finest
  const Matcher matcher(world);
  const dc::GeoPoint amsterdam{52.37, 4.90};
  const auto order = matcher.candidates(amsterdam, dc::DistanceClass::kClose);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(matcher.spec(order[0]).name, "Far");   // finest grain first
  EXPECT_EQ(matcher.spec(order[1]).name, "Near");
  EXPECT_EQ(matcher.spec(order[2]).name, "Local");  // coarse goes last
}

TEST(MatcherTest, ShorterTimeBulkBreaksTies) {
  auto world = line_world();
  world[0].policy = dc::HostingPolicy::preset(9);  // 0.37 CPU, 720 min
  world[1].policy = dc::HostingPolicy::preset(5);  // 0.37 CPU, 180 min
  const Matcher matcher(world);
  const dc::GeoPoint amsterdam{52.37, 4.90};
  const auto order =
      matcher.candidates(amsterdam, dc::DistanceClass::kVeryClose);
  ASSERT_EQ(order.size(), 2u);
  // Same CPU bulk: the shorter reservation period wins despite distance.
  EXPECT_EQ(matcher.spec(order[0]).name, "Near");
}

TEST(MatcherTest, ScalarScoreCollisionsNoLongerFallThroughToDistance) {
  // Regression for the granularity_score() folding bug: these two custom
  // policies scored identically under the old cpu*1e6 + minutes + bulks
  // sum (250100 both), so the matcher ranked them by distance and the
  // farther-but-finer-committed hoster lost. The lexicographic key ranks
  // the shorter time bulk first regardless of distance.
  auto world = line_world();
  world[0].policy.bulk = util::ResourceVector::of(0.25, 0.0, 0.0, 0.0);
  world[0].policy.time_bulk_minutes = 100.0;  // local: longer commitment
  world[1].policy.bulk = util::ResourceVector::of(0.25, 0.0, 20.0, 20.0);
  world[1].policy.time_bulk_minutes = 60.0;   // near: shorter commitment
  const Matcher matcher(world);
  const dc::GeoPoint amsterdam{52.37, 4.90};
  const auto order =
      matcher.candidates(amsterdam, dc::DistanceClass::kVeryClose);
  ASSERT_EQ(order.size(), 2u);
  // Old behavior: "Local" first (equal scores, closest wins). Fixed: the
  // 60-minute time bulk beats the 100-minute one.
  EXPECT_EQ(matcher.spec(order[0]).name, "Near");
  EXPECT_EQ(matcher.spec(order[1]).name, "Local");
}

TEST(MatcherTest, NoCandidatesOutsideTolerance) {
  const auto world = line_world();
  const Matcher matcher(world);
  const dc::GeoPoint sydney{-33.87, 151.21};
  EXPECT_TRUE(
      matcher.candidates(sydney, dc::DistanceClass::kClose).empty());
}

TEST(MatcherTest, DistanceKmMatchesHaversine) {
  const auto world = line_world();
  const Matcher matcher(world);
  const dc::GeoPoint amsterdam{52.37, 4.90};
  EXPECT_NEAR(matcher.distance_km(amsterdam, 0), 0.0, 1.0);
  EXPECT_NEAR(matcher.distance_km(amsterdam, 1), 430.0, 30.0);
}

TEST(MatcherTest, DeterministicOrdering) {
  const auto world = line_world();
  const Matcher matcher(world);
  const dc::GeoPoint amsterdam{52.37, 4.90};
  const auto a = matcher.candidates(amsterdam, dc::DistanceClass::kVeryFar);
  const auto b = matcher.candidates(amsterdam, dc::DistanceClass::kVeryFar);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace mmog::core
