#include "core/predict_phase.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/recorder.hpp"
#include "predict/predictor.hpp"

namespace mmog::core {
namespace {

/// Deterministic stand-in predictor: predict() is a pure function of the
/// constructor argument, so slot outputs are fully checkable.
class FixedPredictor final : public predict::Predictor {
 public:
  explicit FixedPredictor(double value) : value_(value) {}
  std::string_view name() const noexcept override { return "Fixed"; }
  void observe(double) override {}
  double predict() const override { return value_; }
  std::unique_ptr<predict::Predictor> make_fresh() const override {
    return std::make_unique<FixedPredictor>(value_);
  }

 private:
  double value_;
};

class ThrowingPredictor final : public predict::Predictor {
 public:
  std::string_view name() const noexcept override { return "Throwing"; }
  void observe(double) override {}
  double predict() const override {
    throw std::runtime_error("predictor exploded");
  }
  std::unique_ptr<predict::Predictor> make_fresh() const override {
    return std::make_unique<ThrowingPredictor>();
  }
};

/// n predictors whose forecasts are 0.5, 1.5, 2.5, ... plus slots wiring
/// each one to outs[i].
struct Fixture {
  explicit Fixture(std::size_t n) : outs(n, -1.0) {
    predictors.reserve(n);
    slots.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      predictors.push_back(
          std::make_unique<FixedPredictor>(static_cast<double>(i) + 0.5));
      slots.push_back({predictors.back().get(), &outs[i]});
    }
  }
  std::vector<std::unique_ptr<predict::Predictor>> predictors;
  std::vector<double> outs;
  std::vector<PredictSlot> slots;
};

TEST(ParallelPredictTest, SerialRunFillsEverySlot) {
  Fixture f(17);
  ParallelPredictor runner(1);
  EXPECT_EQ(runner.threads(), 1u);
  runner.run(f.slots, nullptr);
  for (std::size_t i = 0; i < f.outs.size(); ++i) {
    EXPECT_DOUBLE_EQ(f.outs[i], static_cast<double>(i) + 0.5) << i;
  }
}

TEST(ParallelPredictTest, ParallelRunMatchesSerialExactly) {
  // More slots than workers forces real sharding; every slot must receive
  // its own predictor's value regardless of which worker computed it.
  for (const std::size_t threads : {2u, 4u, 8u}) {
    Fixture serial(257);
    Fixture parallel(257);
    ParallelPredictor one(1);
    ParallelPredictor many(threads);
    EXPECT_EQ(many.threads(), threads);
    one.run(serial.slots, nullptr);
    many.run(parallel.slots, nullptr);
    EXPECT_EQ(serial.outs, parallel.outs) << "threads=" << threads;
  }
}

TEST(ParallelPredictTest, ZeroThreadsResolvesToHardwareConcurrency) {
  ParallelPredictor runner(0);
  EXPECT_GE(runner.threads(), 1u);
  Fixture f(9);
  runner.run(f.slots, nullptr);
  for (std::size_t i = 0; i < f.outs.size(); ++i) {
    EXPECT_DOUBLE_EQ(f.outs[i], static_cast<double>(i) + 0.5);
  }
}

TEST(ParallelPredictTest, EmptySlotListIsANoop) {
  ParallelPredictor runner(4);
  runner.run({}, nullptr);
  EXPECT_DOUBLE_EQ(runner.last_worst_shard_us(), 0.0);
}

TEST(ParallelPredictTest, FewerSlotsThanThreadsStillFillsAll) {
  Fixture f(3);
  ParallelPredictor runner(8);
  runner.run(f.slots, nullptr);
  EXPECT_DOUBLE_EQ(f.outs[0], 0.5);
  EXPECT_DOUBLE_EQ(f.outs[1], 1.5);
  EXPECT_DOUBLE_EQ(f.outs[2], 2.5);
}

TEST(ParallelPredictTest, WorkerExceptionRethrownOnCaller) {
  Fixture f(10);
  ThrowingPredictor bad;
  double sink = 0.0;
  f.slots[7] = {&bad, &sink};
  ParallelPredictor runner(4);
  EXPECT_THROW(runner.run(f.slots, nullptr), std::runtime_error);
}

TEST(ParallelPredictTest, RecorderTimesEveryInference) {
  Fixture f(25);
  obs::Recorder rec(obs::TraceLevel::kOff);
  ParallelPredictor runner(4);
  runner.run(f.slots, &rec);
  const auto snap = rec.snapshot();
  const auto it = snap.histograms.find("predictor.inference_us");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->second.count, 25u);
  // The parallel path also times each shard's wall clock.
  EXPECT_NE(snap.histograms.find("phase.predict_shard_us"),
            snap.histograms.end());
  EXPECT_GE(runner.last_worst_shard_us(), 0.0);
}

TEST(ParallelPredictTest, SerialRecorderPathSkipsShardTimings) {
  Fixture f(25);
  obs::Recorder rec(obs::TraceLevel::kOff);
  ParallelPredictor runner(1);
  runner.run(f.slots, &rec);
  const auto snap = rec.snapshot();
  const auto it = snap.histograms.find("predictor.inference_us");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->second.count, 25u);
  EXPECT_EQ(snap.histograms.find("phase.predict_shard_us"),
            snap.histograms.end());
  EXPECT_DOUBLE_EQ(runner.last_worst_shard_us(), 0.0);
}

TEST(ParallelPredictTest, RunnerIsReusableAcrossSteps) {
  // core::simulate calls run() once per step on the same runner; outputs
  // must be freshly written each time.
  Fixture f(40);
  ParallelPredictor runner(4);
  for (int step = 0; step < 50; ++step) {
    std::fill(f.outs.begin(), f.outs.end(), -1.0);
    runner.run(f.slots, nullptr);
    for (std::size_t i = 0; i < f.outs.size(); ++i) {
      ASSERT_DOUBLE_EQ(f.outs[i], static_cast<double>(i) + 0.5)
          << "step " << step << " slot " << i;
    }
  }
}

}  // namespace
}  // namespace mmog::core
