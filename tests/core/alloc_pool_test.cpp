#include "core/alloc_pool.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mmog::core {
namespace {

dc::Allocation make_alloc(std::size_t id, double cpu, double net_in = 0.0) {
  dc::Allocation a;
  a.id = id;
  a.dc_index = id % 3;
  a.game_id = id % 2;
  a.group_id = 10 + id;
  a.region_id = 20 + id;
  a.amount = util::ResourceVector::of(cpu, 0.5 * cpu, net_in, 0.33);
  a.start_step = 100 + id;
  a.usable_step = 101 + id;
  a.earliest_release_step = 200 + id;
  return a;
}

TEST(AllocPoolTest, ToVectorReproducesInsertionOrderByteForByte) {
  AllocPool pool;
  AllocPool::List list;
  std::vector<dc::Allocation> reference;
  for (std::size_t i = 0; i < 7; ++i) {
    const auto a = make_alloc(i, 0.25 * static_cast<double>(i + 1), 6.0);
    reference.push_back(a);
    pool.acquire(list, a);
  }
  EXPECT_EQ(list.size, 7u);
  EXPECT_EQ(pool.live(), 7u);
  const auto out = pool.to_vector(list);
  ASSERT_EQ(out.size(), reference.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].id, reference[i].id);
    EXPECT_EQ(out[i].dc_index, reference[i].dc_index);
    EXPECT_EQ(out[i].game_id, reference[i].game_id);
    EXPECT_EQ(out[i].group_id, reference[i].group_id);
    EXPECT_EQ(out[i].region_id, reference[i].region_id);
    EXPECT_EQ(out[i].amount, reference[i].amount);
    EXPECT_EQ(out[i].start_step, reference[i].start_step);
    EXPECT_EQ(out[i].usable_step, reference[i].usable_step);
    EXPECT_EQ(out[i].earliest_release_step,
              reference[i].earliest_release_step);
  }
}

TEST(AllocPoolTest, EraseMiddleHeadAndTailKeepOrder) {
  AllocPool pool;
  AllocPool::List list;
  std::vector<AllocPool::Index> slots;
  for (std::size_t i = 0; i < 5; ++i) {
    slots.push_back(pool.acquire(list, make_alloc(i, 1.0)));
  }
  pool.erase(list, slots[2]);  // middle
  pool.erase(list, slots[0]);  // head
  pool.erase(list, slots[4]);  // tail
  const auto out = pool.to_vector(list);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_EQ(out[1].id, 3u);
  EXPECT_EQ(list.size, 2u);
  EXPECT_EQ(pool.live(), 2u);
  // The list stays walkable both ways after the unlinks.
  EXPECT_EQ(pool.next(list.head), list.tail);
  EXPECT_EQ(pool.prev(list.tail), list.head);
  EXPECT_EQ(pool.prev(list.head), AllocPool::kNil);
  EXPECT_EQ(pool.next(list.tail), AllocPool::kNil);
}

TEST(AllocPoolTest, FreeListRecyclesSlotsWithoutGrowth) {
  AllocPool pool;
  AllocPool::List list;
  std::vector<AllocPool::Index> slots;
  for (std::size_t i = 0; i < 10; ++i) {
    slots.push_back(pool.acquire(list, make_alloc(i, 1.0)));
  }
  const std::size_t carved = pool.capacity();
  for (const auto s : slots) pool.erase(list, s);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(pool.live(), 0u);
  // Ten erase/acquire churn rounds: every slot comes from the free list,
  // the arena never grows.
  for (std::size_t round = 0; round < 10; ++round) {
    std::vector<AllocPool::Index> next_slots;
    for (std::size_t i = 0; i < 10; ++i) {
      next_slots.push_back(pool.acquire(list, make_alloc(100 + i, 2.0)));
    }
    for (const auto s : next_slots) pool.erase(list, s);
  }
  EXPECT_EQ(pool.capacity(), carved);
  EXPECT_EQ(pool.slab_count(), 1u);
}

TEST(AllocPoolTest, ManyListsShareOneArena) {
  AllocPool pool;
  AllocPool::List a, b;
  pool.acquire(a, make_alloc(1, 1.0));
  pool.acquire(b, make_alloc(2, 2.0));
  pool.acquire(a, make_alloc(3, 3.0));
  EXPECT_EQ(pool.live(), 3u);
  const auto va = pool.to_vector(a);
  const auto vb = pool.to_vector(b);
  ASSERT_EQ(va.size(), 2u);
  ASSERT_EQ(vb.size(), 1u);
  EXPECT_EQ(va[0].id, 1u);
  EXPECT_EQ(va[1].id, 3u);
  EXPECT_EQ(vb[0].id, 2u);
}

TEST(AllocPoolTest, GrowthBeyondOneSlabKeepsIndicesStable) {
  AllocPool pool;
  AllocPool::List list;
  const auto first = pool.acquire(list, make_alloc(0, 0.25));
  for (std::size_t i = 1; i <= AllocPool::kSlabSlots + 5; ++i) {
    pool.acquire(list, make_alloc(i, 0.25));
  }
  EXPECT_GE(pool.slab_count(), 2u);
  // Slabs are pinned: the slot handed out before growth still resolves.
  EXPECT_EQ(pool.id(first), 0u);
  EXPECT_EQ(pool.get(first).group_id, 10u);
  EXPECT_EQ(list.size, AllocPool::kSlabSlots + 6);
}

TEST(AllocPoolTest, ReservePreCarvesWithoutLiveSlots) {
  AllocPool pool(3000);
  EXPECT_GE(pool.capacity(), 3000u);
  EXPECT_EQ(pool.slab_count(), 3u);
  EXPECT_EQ(pool.live(), 0u);
  // reserve() never shrinks.
  pool.reserve(100);
  EXPECT_EQ(pool.slab_count(), 3u);
}

TEST(AllocPoolTest, AssignRoundTripsACheckpointVector) {
  AllocPool pool;
  AllocPool::List list;
  for (std::size_t i = 0; i < 4; ++i) {
    pool.acquire(list, make_alloc(i, 1.0));
  }
  std::vector<dc::Allocation> restored;
  for (std::size_t i = 50; i < 53; ++i) {
    restored.push_back(make_alloc(i, 0.5, 12.0));
  }
  pool.assign(list, restored);
  EXPECT_EQ(list.size, 3u);
  EXPECT_EQ(pool.live(), 3u);  // the four old slots went back to the free list
  const auto out = pool.to_vector(list);
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out[i].id, restored[i].id);
    EXPECT_EQ(out[i].amount, restored[i].amount);
  }
}

TEST(AllocPoolTest, SumAmountsIsTheInsertionOrderSum) {
  AllocPool pool;
  AllocPool::List list;
  // Values with non-trivial floating-point tails: the pool sum must equal
  // the left-to-right sum bit for bit, because that is the exact value the
  // simulator's incremental `allocated += amount` accumulates.
  const double cpus[] = {0.1, 0.2, 0.3, 1e-9, 7.77};
  util::ResourceVector expect{};
  for (std::size_t i = 0; i < 5; ++i) {
    const auto a = make_alloc(i, cpus[i], 6.0);
    expect += a.amount;
    pool.acquire(list, a);
  }
  const auto sum = pool.sum_amounts(list);
  EXPECT_EQ(sum.cpu(), expect.cpu());
  EXPECT_EQ(sum.memory(), expect.memory());
  EXPECT_EQ(sum.net_in(), expect.net_in());
  EXPECT_EQ(sum.net_out(), expect.net_out());
}

TEST(AllocPoolTest, FieldAccessorsMatchMaterializedRecord) {
  AllocPool pool;
  AllocPool::List list;
  const auto a = make_alloc(42, 1.25, 6.0);
  const auto slot = pool.acquire(list, a);
  EXPECT_EQ(pool.id(slot), a.id);
  EXPECT_EQ(pool.dc_index(slot), a.dc_index);
  EXPECT_EQ(pool.game_id(slot), a.game_id);
  EXPECT_EQ(pool.amount(slot), a.amount);
  EXPECT_FALSE(pool.releasable_at(slot, a.earliest_release_step - 1));
  EXPECT_TRUE(pool.releasable_at(slot, a.earliest_release_step));
  EXPECT_FALSE(pool.usable_at(slot, a.usable_step - 1));
  EXPECT_TRUE(pool.usable_at(slot, a.usable_step));
}

}  // namespace
}  // namespace mmog::core
