#include "core/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "emu/datasets.hpp"
#include "emu/emulator.hpp"

namespace mmog::core {
namespace {

TEST(ZoneGraphTest, GridBuildsFourNeighbourEdges) {
  // 2x2 grid with all loads 1: 4 edges (2 horizontal + 2 vertical).
  const std::vector<double> loads = {1, 1, 1, 1};
  const auto g = ZoneGraph::from_grid(loads, 2, 2);
  EXPECT_EQ(g.zone_count(), 4u);
  EXPECT_EQ(g.edges.size(), 4u);
  for (const auto& e : g.edges) EXPECT_DOUBLE_EQ(e.weight, 1.0);
}

TEST(ZoneGraphTest, EmptyZonesProduceNoEdges) {
  const std::vector<double> loads = {1, 0, 0, 1};
  const auto g = ZoneGraph::from_grid(loads, 2, 2);
  EXPECT_TRUE(g.edges.empty());  // every edge touches a zero-load zone
}

TEST(ZoneGraphTest, RejectsSizeMismatch) {
  const std::vector<double> loads = {1, 2, 3};
  EXPECT_THROW(ZoneGraph::from_grid(loads, 2, 2), std::invalid_argument);
}

TEST(EvaluatePartitionTest, ComputesLoadsAndCut) {
  ZoneGraph g;
  g.load = {2, 3, 4};
  g.edges = {{0, 1, 5.0}, {1, 2, 7.0}};
  Partition p;
  p.servers = {{0, 1}, {2}};
  const auto cost = evaluate_partition(g, p, 10.0);
  EXPECT_DOUBLE_EQ(cost.max_load, 5.0);
  EXPECT_DOUBLE_EQ(cost.cut_weight, 7.0);  // edge 1-2 crosses
  EXPECT_EQ(cost.overloaded, 0u);
}

TEST(EvaluatePartitionTest, FlagsOverloadedServers) {
  ZoneGraph g;
  g.load = {6, 6};
  Partition p;
  p.servers = {{0, 1}};
  EXPECT_EQ(evaluate_partition(g, p, 10.0).overloaded, 1u);
}

TEST(EvaluatePartitionTest, RejectsBadAssignments) {
  ZoneGraph g;
  g.load = {1, 1};
  Partition missing;
  missing.servers = {{0}};
  EXPECT_THROW(evaluate_partition(g, missing, 10.0), std::invalid_argument);
  Partition duplicate;
  duplicate.servers = {{0, 1}, {1}};
  EXPECT_THROW(evaluate_partition(g, duplicate, 10.0), std::invalid_argument);
  Partition out_of_range;
  out_of_range.servers = {{0, 1, 2}};
  EXPECT_THROW(evaluate_partition(g, out_of_range, 10.0),
               std::invalid_argument);
}

class PartitionStrategyTest
    : public ::testing::TestWithParam<PartitionStrategy> {};

TEST_P(PartitionStrategyTest, EveryZoneAssignedExactlyOnce) {
  ZoneGraph g;
  for (int i = 0; i < 20; ++i) g.load.push_back(0.3 + 0.1 * (i % 5));
  const auto p = partition_zones(g, 1.0, GetParam());
  // evaluate_partition throws on duplicates/missing zones.
  EXPECT_NO_THROW(evaluate_partition(g, p, 1.0));
}

TEST_P(PartitionStrategyTest, RespectsCapacityExceptSingletonOverflow) {
  ZoneGraph g;
  g.load = {0.9, 0.8, 0.7, 0.2, 0.2, 0.1, 1.5};  // 1.5 cannot fit anywhere
  const auto p = partition_zones(g, 1.0, GetParam());
  const auto cost = evaluate_partition(g, p, 1.0);
  if (GetParam() == PartitionStrategy::kRoundRobin) {
    // Round-robin ignores capacity — it may overload, that is its flaw.
    SUCCEED();
  } else {
    // Packing strategies only overload via single zones above capacity.
    EXPECT_LE(cost.overloaded, 1u);
  }
}

TEST_P(PartitionStrategyTest, DeterministicOutput) {
  ZoneGraph g;
  for (int i = 0; i < 30; ++i) g.load.push_back(0.25 + 0.05 * (i % 7));
  g.edges = {{0, 1, 1.0}, {5, 6, 2.0}, {10, 20, 0.5}};
  const auto a = partition_zones(g, 1.0, GetParam());
  const auto b = partition_zones(g, 1.0, GetParam());
  EXPECT_EQ(a.servers, b.servers);
}

TEST_P(PartitionStrategyTest, RejectsBadInput) {
  ZoneGraph empty;
  EXPECT_THROW(partition_zones(empty, 1.0, GetParam()),
               std::invalid_argument);
  ZoneGraph g;
  g.load = {1.0};
  EXPECT_THROW(partition_zones(g, 0.0, GetParam()), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, PartitionStrategyTest,
                         ::testing::Values(PartitionStrategy::kRoundRobin,
                                           PartitionStrategy::kGreedyLoad,
                                           PartitionStrategy::kAffinity),
                         [](const auto& info) {
                           switch (info.param) {
                             case PartitionStrategy::kRoundRobin:
                               return "RoundRobin";
                             case PartitionStrategy::kGreedyLoad:
                               return "GreedyLoad";
                             case PartitionStrategy::kAffinity:
                               return "Affinity";
                           }
                           return "Unknown";
                         });

TEST(PartitionQualityTest, AffinityCutsLessThanGreedy) {
  // A grid with two hot clusters: affinity should keep each cluster on one
  // server where greedy-by-load splits them.
  std::vector<double> loads(36, 0.02);
  // Hot 2x2 cluster top-left and bottom-right.
  for (std::size_t z : {0u, 1u, 6u, 7u}) loads[z] = 0.25;
  for (std::size_t z : {28u, 29u, 34u, 35u}) loads[z] = 0.25;
  const auto g = ZoneGraph::from_grid(loads, 6, 6);
  const auto greedy = partition_zones(g, 1.1, PartitionStrategy::kGreedyLoad);
  const auto affinity = partition_zones(g, 1.1, PartitionStrategy::kAffinity);
  const auto cg = evaluate_partition(g, greedy, 1.1);
  const auto ca = evaluate_partition(g, affinity, 1.1);
  EXPECT_LE(ca.cut_weight, cg.cut_weight);
  EXPECT_LE(affinity.server_count(), greedy.server_count() + 1);
}

TEST(PartitionQualityTest, WorksOnEmulatorSnapshot) {
  auto sets = emu::table1_datasets(77);
  sets[0].samples = 30;
  emu::Emulator emulator(emu::WorldConfig{}, sets[0]);
  const auto trace = emulator.run();
  const auto& sample = trace.samples.back();
  const auto g = ZoneGraph::from_grid(sample.zone_counts,
                                      trace.world.zones_x,
                                      trace.world.zones_y);
  const double capacity = 150.0;  // entities per server
  const auto p = partition_zones(g, capacity, PartitionStrategy::kAffinity);
  const auto cost = evaluate_partition(g, p, capacity);
  EXPECT_LE(cost.overloaded, 1u);
  EXPECT_GE(p.server_count(), 1u);
}

}  // namespace
}  // namespace mmog::core
