// Failure injection and cost accounting in the provisioning simulator.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>

#include "core/simulation.hpp"
#include "predict/simple.hpp"

namespace mmog::core {
namespace {

using util::ResourceKind;

trace::WorldTrace flat_workload(std::size_t groups, std::size_t steps,
                                double players = 1200.0) {
  trace::WorldTrace world;
  trace::RegionalTrace region;
  region.name = "Europe";
  for (std::size_t g = 0; g < groups; ++g) {
    trace::ServerGroupTrace group;
    // Built with += rather than operator+ to sidestep GCC 12's -Wrestrict
    // false positive on inlined string concatenation (GCC bug 105329).
    group.name = "G";
    group.name += std::to_string(g);
    group.players = util::TimeSeries(
        util::kSampleStepSeconds, std::vector<double>(steps, players));
    region.groups.push_back(std::move(group));
  }
  world.regions.push_back(std::move(region));
  return world;
}

SimulationConfig two_dc_config(std::size_t steps) {
  SimulationConfig cfg;
  dc::DataCenterSpec a;
  a.name = "Primary";
  a.location = {52.37, 4.90};
  a.machines = 10;
  a.policy = dc::HostingPolicy::preset(3);
  dc::DataCenterSpec b;
  b.name = "Backup";
  b.location = {51.51, -0.13};
  b.machines = 10;
  b.policy = dc::HostingPolicy::preset(4);  // coarser: used second
  cfg.datacenters = {a, b};
  GameSpec game;
  game.load = LoadModel{UpdateModel::kQuadratic, 2000.0};
  game.workload = flat_workload(4, steps);
  cfg.games.push_back(std::move(game));
  cfg.predictor = [] {
    return std::make_unique<predict::LastValuePredictor>();
  };
  return cfg;
}

TEST(FailureInjectionTest, OutageForcesFailover) {
  auto cfg = two_dc_config(200);
  cfg.outages.push_back({.dc_index = 0, .from_step = 100, .to_step = 150});
  const auto result = simulate(cfg);
  // Before the outage the fine-grained primary serves everything; during it
  // the backup must carry the load.
  const auto& primary = result.datacenters[0];
  const auto& backup = result.datacenters[1];
  EXPECT_GT(primary.avg_allocated_cpu, 0.0);
  EXPECT_GT(backup.avg_allocated_cpu, 0.0);
  EXPECT_GT(backup.peak_allocated_cpu, 1.0);
}

TEST(FailureInjectionTest, OutageCausesBriefUnderAllocation) {
  auto cfg = two_dc_config(200);
  cfg.outages.push_back({.dc_index = 0, .from_step = 100, .to_step = 150});
  const auto with_outage = simulate(cfg);
  auto clean_cfg = two_dc_config(200);
  const auto clean = simulate(clean_cfg);
  // The failover step shows up as extra under-allocation vs the clean run.
  EXPECT_LT(with_outage.metrics.avg_under_allocation_pct(ResourceKind::kCpu),
            clean.metrics.avg_under_allocation_pct(ResourceKind::kCpu));
  // But the dynamic allocator recovers: after re-placement the shortfall
  // ends (fewer events than the outage duration).
  EXPECT_LT(with_outage.metrics.significant_events(), 50u);
}

TEST(FailureInjectionTest, TotalOutageUnplacesDemand) {
  auto cfg = two_dc_config(60);
  cfg.outages.push_back({.dc_index = 0, .from_step = 20, .to_step = 40});
  cfg.outages.push_back({.dc_index = 1, .from_step = 20, .to_step = 40});
  const auto result = simulate(cfg);
  EXPECT_GT(result.unplaced_cpu_unit_steps, 0.0);
  EXPECT_GE(result.metrics.significant_events(), 19u);
}

TEST(FailureInjectionTest, StaticModeCannotRecover) {
  auto cfg = two_dc_config(200);
  cfg.mode = AllocationMode::kStatic;
  cfg.predictor = nullptr;
  // Knock out the primary briefly; static allocations die with it and are
  // never re-established.
  cfg.outages.push_back({.dc_index = 0, .from_step = 50, .to_step = 55});
  cfg.outages.push_back({.dc_index = 1, .from_step = 50, .to_step = 55});
  const auto result = simulate(cfg);
  // Under-allocation persists from step 50 to the end of the run.
  const auto& steps = result.metrics.step_metrics();
  EXPECT_LT(steps.back().under_allocation_pct(ResourceKind::kCpu), -1.0);
}

TEST(ConfigValidationTest, RejectsOutOfRangeOutageIndex) {
  auto cfg = two_dc_config(50);
  cfg.outages.push_back({.dc_index = 2, .from_step = 0, .to_step = 10});
  EXPECT_THROW(simulate(cfg), std::invalid_argument);
}

TEST(ConfigValidationTest, RejectsInvertedOutageWindow) {
  auto cfg = two_dc_config(50);
  cfg.outages.push_back({.dc_index = 0, .from_step = 10, .to_step = 10});
  EXPECT_THROW(simulate(cfg), std::invalid_argument);
}

TEST(ConfigValidationTest, RejectsMalformedFaultSpecsUpFront) {
  auto cfg = two_dc_config(50);
  fault::FaultSpec spec;  // neither window nor mtbf/mttr
  spec.dc_index = 0;
  cfg.faults.push_back(spec);
  EXPECT_THROW(simulate(cfg), std::invalid_argument);

  auto range_cfg = two_dc_config(50);
  fault::FaultSpec out_of_range;
  out_of_range.dc_index = 5;
  out_of_range.window_from = 0;
  out_of_range.window_to = 10;
  range_cfg.faults.push_back(out_of_range);
  EXPECT_THROW(simulate(range_cfg), std::invalid_argument);
}

TEST(ConfigValidationTest, RejectsNegativeKnobs) {
  auto cfg = two_dc_config(50);
  cfg.safety_factor = -0.1;
  EXPECT_THROW(simulate(cfg), std::invalid_argument);

  auto threshold_cfg = two_dc_config(50);
  threshold_cfg.event_threshold_pct = -1.0;
  EXPECT_THROW(simulate(threshold_cfg), std::invalid_argument);

  auto reserve_cfg = two_dc_config(50);
  reserve_cfg.resilience.standby_reserve_servers = -1.0;
  EXPECT_THROW(simulate(reserve_cfg), std::invalid_argument);
}

TEST(CostAccountingTest, CostGrowsWithAllocation) {
  auto cfg = two_dc_config(100);
  const auto result = simulate(cfg);
  EXPECT_GT(result.total_cost, 0.0);
  // Cost approximates avg CPU x hours x price (price >= 1 for fine grain).
  double avg_cpu = 0.0;
  for (const auto& usage : result.datacenters) {
    avg_cpu += usage.avg_allocated_cpu;
  }
  const double hours = 100.0 * util::kSampleStepSeconds / 3600.0;
  EXPECT_GT(result.total_cost, avg_cpu * hours * 0.9);
}

TEST(CostAccountingTest, StaticCostsMoreThanDynamic) {
  // Flat load means the gap is pure sizing: static rents full servers.
  auto dyn_cfg = two_dc_config(300);
  const auto dyn = simulate(dyn_cfg);
  auto sta_cfg = two_dc_config(300);
  sta_cfg.mode = AllocationMode::kStatic;
  const auto sta = simulate(sta_cfg);
  EXPECT_GT(sta.total_cost, 1.5 * dyn.total_cost);
}

TEST(CostAccountingTest, PolicyPremiumsAreOrdered) {
  // Finer CPU grain costs more per unit-hour; longer commitments cost less.
  EXPECT_GT(dc::HostingPolicy::preset(3).cpu_unit_price_per_hour,
            dc::HostingPolicy::preset(7).cpu_unit_price_per_hour);
  EXPECT_GT(dc::HostingPolicy::preset(5).cpu_unit_price_per_hour,
            dc::HostingPolicy::preset(11).cpu_unit_price_per_hour);
}

}  // namespace
}  // namespace mmog::core
