// The decision audit trail as core::simulate writes it: one record per
// provisioning decision with the predict -> pad -> match pipeline numbers,
// actual demand backfilled, and the candidate walk explaining the chosen
// center. These tests answer the "why did group G land in DC D at step S"
// question against a live run instead of hand-built records.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>
#include <sstream>
#include <string>

#include "core/run_report.hpp"
#include "core/simulation.hpp"
#include "fault/parse.hpp"
#include "obs/recorder.hpp"
#include "predict/simple.hpp"

namespace mmog::core {
namespace {

trace::WorldTrace sine_workload(std::size_t groups, std::size_t steps) {
  trace::WorldTrace world;
  trace::RegionalTrace region;
  region.name = "Europe";
  for (std::size_t g = 0; g < groups; ++g) {
    trace::ServerGroupTrace group;
    group.name = "G";
    group.name += std::to_string(g);
    group.players = util::TimeSeries(util::kSampleStepSeconds);
    for (std::size_t t = 0; t < steps; ++t) {
      const double phase =
          2.0 * std::numbers::pi * static_cast<double>(t) / 720.0;
      group.players.push_back(400.0 + 600.0 * (1.0 - std::cos(phase)));
    }
    region.groups.push_back(std::move(group));
  }
  world.regions.push_back(std::move(region));
  return world;
}

SimulationConfig base_config(std::size_t groups, std::size_t steps) {
  SimulationConfig cfg;
  dc::DataCenterSpec d;
  d.name = "NL";
  d.country = "Netherlands";
  d.continent = "Europe";
  d.location = {52.37, 4.90};
  d.machines = 40;
  d.policy = dc::HostingPolicy::preset(1);
  cfg.datacenters = {d};
  GameSpec game;
  game.name = "TestGame";
  game.load = LoadModel{UpdateModel::kQuadratic, 2000.0};
  game.latency_tolerance = dc::DistanceClass::kVeryFar;
  game.workload = sine_workload(groups, steps);
  cfg.games.push_back(std::move(game));
  cfg.predictor = [] {
    return std::make_unique<predict::LastValuePredictor>();
  };
  return cfg;
}

TEST(AuditIntegrationTest, DynamicRunProducesCoherentMatchRecords) {
  auto cfg = base_config(2, 240);
  obs::Recorder rec(obs::TraceLevel::kOff);
  rec.enable_audit();
  cfg.recorder = &rec;
  const auto result = simulate(cfg);
  ASSERT_EQ(result.steps, 240u);

  ASSERT_NE(rec.audit(), nullptr);
  const auto records = rec.audit()->records();
  ASSERT_GT(records.size(), 0u);
  std::size_t granted_records = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    EXPECT_EQ(r.seq, i);  // consecutive, recording order
    if (i > 0) {
      EXPECT_GE(r.step, records[i - 1].step);
    }
    EXPECT_EQ(r.kind, obs::AuditKind::kMatch);  // no faults injected
    EXPECT_EQ(r.game, 0u);
    EXPECT_EQ(r.region, "Europe");
    // The account phase backfilled the same step's materialized load.
    EXPECT_GT(r.actual_players, 0.0);
    EXPECT_GT(r.predicted_players, 0.0);
    // Safety padding only ever adds demand.
    EXPECT_GE(r.margin_cpu, 0.0);
    // Compact trail: a record exists only when the unit acted.
    EXPECT_TRUE(r.released_cpu > 0.0 || r.requested_cpu > 0.0);
    if (r.requested_cpu > 0.0) {
      // Grants come in machine-size bulks, so the walk can over-deliver —
      // but it never under-delivers without booking the rest as unmet.
      EXPECT_GE(r.granted_cpu + r.unmet_cpu, r.requested_cpu - 1e-9);
      ASSERT_FALSE(r.offers.empty());
    }
    if (r.dc != obs::kAuditNoDc) {
      ++granted_records;
      // The chosen center is the first granting offer of the walk.
      bool found = false;
      for (const auto& offer : r.offers) {
        if (offer.outcome == obs::OfferOutcome::kGranted) {
          EXPECT_EQ(static_cast<std::int32_t>(offer.dc), r.dc);
          EXPECT_GT(offer.cpu, 0.0);
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found);
    }
  }
  EXPECT_GT(granted_records, 0u);

  // The trail the HTTP endpoint serves parses back to the same records.
  std::stringstream ss(rec.audit()->to_jsonl());
  EXPECT_EQ(obs::read_audit_jsonl(ss), records);

  // And the canonical report counts exactly these records.
  const auto report = make_run_report(cfg, result, "test", "", 0.0);
  EXPECT_EQ(report.outcome.audit_records, records.size());
}

TEST(AuditIntegrationTest, StaticModeEmitsOneShotProvisioningRecords) {
  auto cfg = base_config(2, 120);
  cfg.mode = AllocationMode::kStatic;
  cfg.predictor = nullptr;
  obs::Recorder rec(obs::TraceLevel::kOff);
  rec.enable_audit();
  cfg.recorder = &rec;
  simulate(cfg);

  const auto records = rec.audit()->records();
  ASSERT_GT(records.size(), 0u);
  for (const auto& r : records) {
    EXPECT_EQ(r.kind, obs::AuditKind::kStatic);
    EXPECT_EQ(r.step, 0u);  // provisioning happens once, up front
    EXPECT_GT(r.requested_cpu, 0.0);
    EXPECT_GT(r.actual_players, 0.0);  // backfilled from step 0's load
  }
}

TEST(AuditIntegrationTest, OutageShowsUpAsEvictionsAndRejectedOffers) {
  auto cfg = base_config(2, 240);
  // Deterministic fixed-window outage of the only center.
  cfg.faults = {fault::parse_fault_spec("outage:dc=0,from=100,to=130")};
  obs::Recorder rec(obs::TraceLevel::kOff);
  rec.enable_audit();
  cfg.recorder = &rec;
  simulate(cfg);

  const auto records = rec.audit()->records();
  bool saw_eviction = false;
  bool saw_cpu_eviction = false;
  bool saw_rejected_offer = false;
  for (const auto& r : records) {
    if (r.kind == obs::AuditKind::kForceRelease) {
      saw_eviction = true;
      EXPECT_EQ(r.cause, "outage");
      EXPECT_EQ(r.dc, 0);
      EXPECT_GE(r.step, 100u);
      EXPECT_LT(r.step, 130u);
      // Bandwidth-only top-up allocations evict with released_cpu == 0;
      // the allocation actually carrying the CPU shows its size.
      if (r.released_cpu > 0.0) saw_cpu_eviction = true;
    }
    for (const auto& offer : r.offers) {
      if (offer.outcome == obs::OfferOutcome::kRejectedOutage) {
        saw_rejected_offer = true;
        EXPECT_GT(r.unmet_cpu, 0.0);  // nowhere else to place it
      }
    }
  }
  EXPECT_TRUE(saw_eviction);
  EXPECT_TRUE(saw_cpu_eviction);
  EXPECT_TRUE(saw_rejected_offer);
}

TEST(AuditIntegrationTest, SatisfiedWalksStopBeforePhantomRejections) {
  // Regression for the satisfied-check placement bug: the "need already
  // met" early-out used to sit after the outage/latency/backoff rejection
  // branches, so a walk that had just been fully granted kept visiting the
  // remaining candidates and booked a rejection for every faulted one —
  // inflating offer.rejected.* and padding audit walks with offers the
  // matcher never needed. Layout here: the closest and farthest centers
  // are down, the middle one grants. Once the middle center satisfies the
  // need, the walk must stop — the farthest center's outage may never be
  // counted.
  auto cfg = base_config(2, 240);
  dc::DataCenterSpec near = cfg.datacenters[0];
  near.name = "Near";
  near.location = {48.86, 2.35};  // Paris
  dc::DataCenterSpec far = cfg.datacenters[0];
  far.name = "Far";
  far.location = {40.41, -3.70};  // Madrid
  cfg.datacenters.push_back(near);
  cfg.datacenters.push_back(far);
  cfg.faults = {fault::parse_fault_spec("outage:dc=0,from=100,to=130"),
                fault::parse_fault_spec("outage:dc=2,from=100,to=130")};
  obs::Recorder rec(obs::TraceLevel::kOff);
  rec.enable_audit();
  cfg.recorder = &rec;
  simulate(cfg);

  // Structural form of the fix: a fully satisfied walk ends on its grant.
  std::size_t granted_walks = 0;
  for (const auto& r : rec.audit()->records()) {
    if (r.kind != obs::AuditKind::kMatch) continue;
    if (r.requested_cpu <= 0.0 || r.unmet_cpu > 0.0) continue;
    ASSERT_FALSE(r.offers.empty());
    EXPECT_EQ(r.offers.back().outcome, obs::OfferOutcome::kGranted)
        << "step " << r.step << ": offers were recorded after the walk "
        << "was already satisfied";
    ++granted_walks;
  }
  EXPECT_GT(granted_walks, 0u);

  // Golden counter: with the early-out hoisted above the rejection
  // branches this scenario books exactly 30 outage rejections — each one a
  // walk that still needed resources when it hit the downed nearest
  // center. Every one of those walks was then satisfied by the middle
  // center, so the pre-fix code went on to visit the downed farthest
  // center too and reported 60: half the old count was phantoms.
  const auto snap = rec.snapshot();
  EXPECT_EQ(snap.counters.at("offer.rejected.outage"), 30.0);
}

}  // namespace
}  // namespace mmog::core
