#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "fault/model.hpp"

namespace mmog::core {
namespace {

using util::ResourceKind;
using util::ResourceVector;

TEST(StepMetricsTest, OverAllocationIsExcessPercent) {
  StepMetrics m;
  m.allocated = ResourceVector::of(12.5, 0, 0, 0);
  m.used = ResourceVector::of(10.0, 0, 0, 0);
  m.machines = 10;
  // Eq. 1 gives 125 %; we report the surplus above a perfect fit: 25 %.
  EXPECT_NEAR(m.over_allocation_pct(ResourceKind::kCpu), 25.0, 1e-12);
}

TEST(StepMetricsTest, OverAllocationWithNoUsageIsZero) {
  StepMetrics m;
  m.allocated = ResourceVector::of(5, 0, 0, 0);
  EXPECT_DOUBLE_EQ(m.over_allocation_pct(ResourceKind::kCpu), 0.0);
}

TEST(StepMetricsTest, UnderAllocationAveragesShortfallPerMachine) {
  StepMetrics m;
  m.machines = 100;
  m.shortfall[ResourceKind::kCpu] = -2.0;  // sum of min(a-l, 0)
  // Eq. 2: -2 / 100 * 100 = -2 %.
  EXPECT_NEAR(m.under_allocation_pct(ResourceKind::kCpu), -2.0, 1e-12);
}

TEST(StepMetricsTest, UnderAllocationWithNoMachinesIsZero) {
  StepMetrics m;
  m.shortfall[ResourceKind::kCpu] = -5.0;
  EXPECT_DOUBLE_EQ(m.under_allocation_pct(ResourceKind::kCpu), 0.0);
}

TEST(StepMetricsTest, SignificantEventRequiresOverOnePercent) {
  StepMetrics m;
  m.machines = 100;
  m.shortfall[ResourceKind::kCpu] = -0.9;
  EXPECT_FALSE(m.significant_under_allocation());  // -0.9 %
  m.shortfall[ResourceKind::kCpu] = -1.1;
  EXPECT_TRUE(m.significant_under_allocation());  // -1.1 %
}

TEST(StepMetricsTest, ThresholdIsConfigurable) {
  StepMetrics m;
  m.machines = 10;
  m.shortfall[ResourceKind::kCpu] = -0.3;  // -3 %
  EXPECT_TRUE(m.significant_under_allocation(1.0));
  EXPECT_FALSE(m.significant_under_allocation(5.0));
}

StepMetrics step_with(double alloc, double used, double shortfall,
                      std::size_t machines = 10) {
  StepMetrics m;
  m.allocated[ResourceKind::kCpu] = alloc;
  m.used[ResourceKind::kCpu] = used;
  m.shortfall[ResourceKind::kCpu] = shortfall;
  m.machines = machines;
  return m;
}

TEST(AccumulatorTest, AveragesPerStepPercentages) {
  MetricsAccumulator acc;
  acc.add(step_with(15, 10, 0));  // +50 %
  acc.add(step_with(10, 10, 0));  // +0 %
  EXPECT_EQ(acc.steps(), 2u);
  EXPECT_NEAR(acc.avg_over_allocation_pct(ResourceKind::kCpu), 25.0, 1e-12);
}

TEST(AccumulatorTest, AveragesUnderAllocation) {
  MetricsAccumulator acc;
  acc.add(step_with(10, 10, -1.0));  // -10 %
  acc.add(step_with(10, 10, 0.0));   // 0 %
  EXPECT_NEAR(acc.avg_under_allocation_pct(ResourceKind::kCpu), -5.0, 1e-12);
}

TEST(AccumulatorTest, CountsSignificantEvents) {
  MetricsAccumulator acc;
  acc.add(step_with(10, 10, -0.05));  // -0.5 %: not significant
  acc.add(step_with(10, 10, -0.2));   // -2 %: significant
  acc.add(step_with(10, 10, -0.3));   // -3 %: significant
  EXPECT_EQ(acc.significant_events(), 2u);
  EXPECT_EQ(acc.significant_events(2.5), 1u);
}

TEST(AccumulatorTest, CumulativeEventsIsMonotonic) {
  MetricsAccumulator acc;
  acc.add(step_with(10, 10, -0.2));
  acc.add(step_with(10, 10, 0.0));
  acc.add(step_with(10, 10, -0.2));
  const auto cum = acc.cumulative_events();
  ASSERT_EQ(cum.size(), 3u);
  EXPECT_EQ(cum[0], 1u);
  EXPECT_EQ(cum[1], 1u);
  EXPECT_EQ(cum[2], 2u);
}

TEST(AccumulatorTest, EmptyAccumulatorIsZero) {
  MetricsAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.avg_over_allocation_pct(ResourceKind::kCpu), 0.0);
  EXPECT_DOUBLE_EQ(acc.avg_under_allocation_pct(ResourceKind::kCpu), 0.0);
  EXPECT_EQ(acc.significant_events(), 0u);
  EXPECT_TRUE(acc.cumulative_events().empty());
}

TEST(SlaTrackerTest, OpenEpisodeAtEndOfRunIsBreachNotRecovery) {
  SlaTracker tracker;
  tracker.observe(false);
  tracker.observe(true);
  tracker.observe(true);  // run ends mid-breach
  const auto stats = tracker.stats();
  EXPECT_EQ(stats.steps, 3u);
  EXPECT_EQ(stats.downtime_steps, 2u);
  EXPECT_EQ(stats.breach_episodes, 1u);
  EXPECT_EQ(stats.recoveries, 0u);
  // The open streak still drives downtime and the longest-breach figure...
  EXPECT_EQ(stats.longest_breach_steps, 2u);
  EXPECT_NEAR(stats.availability_pct(), 100.0 / 3.0, 1e-9);
  // ...but never the time-to-recover stats, which only count ended episodes.
  EXPECT_DOUBLE_EQ(stats.mean_time_to_recover_steps, 0.0);
  EXPECT_EQ(stats.max_time_to_recover_steps, 0u);
}

TEST(SlaTrackerTest, TimeToRecoverOnlyAveragesEndedEpisodes) {
  SlaTracker tracker;
  tracker.observe(true);  // episode 1: 2 steps, recovers
  tracker.observe(true);
  tracker.observe(false);
  tracker.observe(true);  // episode 2: 3 steps, still open at end of run
  tracker.observe(true);
  tracker.observe(true);
  const auto stats = tracker.stats();
  EXPECT_EQ(stats.breach_episodes, 2u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_time_to_recover_steps, 2.0);
  EXPECT_EQ(stats.max_time_to_recover_steps, 2u);
  EXPECT_EQ(stats.longest_breach_steps, 3u);
}

TEST(SlaTrackerTest, TransitionsMarkEpisodeEdges) {
  SlaTracker tracker;
  EXPECT_EQ(tracker.observe(false), SlaTracker::Transition::kNone);
  EXPECT_EQ(tracker.observe(true), SlaTracker::Transition::kBreachBegan);
  EXPECT_EQ(tracker.observe(true), SlaTracker::Transition::kNone);
  EXPECT_EQ(tracker.observe(false), SlaTracker::Transition::kRecovered);
  // A breach on the very last observed step still opens an episode even
  // though no recovery can follow it.
  EXPECT_EQ(tracker.observe(true), SlaTracker::Transition::kBreachBegan);
  EXPECT_EQ(tracker.stats().breach_episodes, 2u);
  EXPECT_EQ(tracker.stats().recoveries, 1u);
}

TEST(RecoveryLagTest, NeverRepairedOutageReportsSentinel) {
  MetricsAccumulator metrics;
  metrics.add(step_with(10, 10, 0.0));   // step 0: healthy
  metrics.add(step_with(10, 10, -0.2));  // steps 1..3: breached to the end
  metrics.add(step_with(10, 10, -0.2));
  metrics.add(step_with(10, 10, -0.2));
  fault::FaultEvent outage;
  outage.from_step = 1;
  outage.to_step = 2;  // repaired mid-run, but the SLA never comes back
  const auto lags = recovery_lag_steps(metrics, {outage}, 1.0);
  ASSERT_EQ(lags.size(), 1u);
  EXPECT_EQ(lags[0], kNeverRecovered);
}

TEST(RecoveryLagTest, RepairBeyondEndOfRunIsSkipped) {
  MetricsAccumulator metrics;
  metrics.add(step_with(10, 10, -0.2));
  metrics.add(step_with(10, 10, -0.2));
  fault::FaultEvent outage;
  outage.from_step = 1;
  outage.to_step = 5;  // still broken when the run ends: lag is undefined
  EXPECT_TRUE(recovery_lag_steps(metrics, {outage}, 1.0).empty());
}

TEST(RecoveryLagTest, ImmediateRecoveryIsZeroLag) {
  MetricsAccumulator metrics;
  metrics.add(step_with(10, 10, -0.2));  // during the outage
  metrics.add(step_with(10, 10, 0.0));   // first post-repair step is clean
  fault::FaultEvent outage;
  outage.from_step = 0;
  outage.to_step = 1;
  const auto lags = recovery_lag_steps(metrics, {outage}, 1.0);
  ASSERT_EQ(lags.size(), 1u);
  EXPECT_EQ(lags[0], 0u);
}

}  // namespace
}  // namespace mmog::core
