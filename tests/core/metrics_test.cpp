#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace mmog::core {
namespace {

using util::ResourceKind;
using util::ResourceVector;

TEST(StepMetricsTest, OverAllocationIsExcessPercent) {
  StepMetrics m;
  m.allocated = ResourceVector::of(12.5, 0, 0, 0);
  m.used = ResourceVector::of(10.0, 0, 0, 0);
  m.machines = 10;
  // Eq. 1 gives 125 %; we report the surplus above a perfect fit: 25 %.
  EXPECT_NEAR(m.over_allocation_pct(ResourceKind::kCpu), 25.0, 1e-12);
}

TEST(StepMetricsTest, OverAllocationWithNoUsageIsZero) {
  StepMetrics m;
  m.allocated = ResourceVector::of(5, 0, 0, 0);
  EXPECT_DOUBLE_EQ(m.over_allocation_pct(ResourceKind::kCpu), 0.0);
}

TEST(StepMetricsTest, UnderAllocationAveragesShortfallPerMachine) {
  StepMetrics m;
  m.machines = 100;
  m.shortfall[ResourceKind::kCpu] = -2.0;  // sum of min(a-l, 0)
  // Eq. 2: -2 / 100 * 100 = -2 %.
  EXPECT_NEAR(m.under_allocation_pct(ResourceKind::kCpu), -2.0, 1e-12);
}

TEST(StepMetricsTest, UnderAllocationWithNoMachinesIsZero) {
  StepMetrics m;
  m.shortfall[ResourceKind::kCpu] = -5.0;
  EXPECT_DOUBLE_EQ(m.under_allocation_pct(ResourceKind::kCpu), 0.0);
}

TEST(StepMetricsTest, SignificantEventRequiresOverOnePercent) {
  StepMetrics m;
  m.machines = 100;
  m.shortfall[ResourceKind::kCpu] = -0.9;
  EXPECT_FALSE(m.significant_under_allocation());  // -0.9 %
  m.shortfall[ResourceKind::kCpu] = -1.1;
  EXPECT_TRUE(m.significant_under_allocation());  // -1.1 %
}

TEST(StepMetricsTest, ThresholdIsConfigurable) {
  StepMetrics m;
  m.machines = 10;
  m.shortfall[ResourceKind::kCpu] = -0.3;  // -3 %
  EXPECT_TRUE(m.significant_under_allocation(1.0));
  EXPECT_FALSE(m.significant_under_allocation(5.0));
}

StepMetrics step_with(double alloc, double used, double shortfall,
                      std::size_t machines = 10) {
  StepMetrics m;
  m.allocated[ResourceKind::kCpu] = alloc;
  m.used[ResourceKind::kCpu] = used;
  m.shortfall[ResourceKind::kCpu] = shortfall;
  m.machines = machines;
  return m;
}

TEST(AccumulatorTest, AveragesPerStepPercentages) {
  MetricsAccumulator acc;
  acc.add(step_with(15, 10, 0));  // +50 %
  acc.add(step_with(10, 10, 0));  // +0 %
  EXPECT_EQ(acc.steps(), 2u);
  EXPECT_NEAR(acc.avg_over_allocation_pct(ResourceKind::kCpu), 25.0, 1e-12);
}

TEST(AccumulatorTest, AveragesUnderAllocation) {
  MetricsAccumulator acc;
  acc.add(step_with(10, 10, -1.0));  // -10 %
  acc.add(step_with(10, 10, 0.0));   // 0 %
  EXPECT_NEAR(acc.avg_under_allocation_pct(ResourceKind::kCpu), -5.0, 1e-12);
}

TEST(AccumulatorTest, CountsSignificantEvents) {
  MetricsAccumulator acc;
  acc.add(step_with(10, 10, -0.05));  // -0.5 %: not significant
  acc.add(step_with(10, 10, -0.2));   // -2 %: significant
  acc.add(step_with(10, 10, -0.3));   // -3 %: significant
  EXPECT_EQ(acc.significant_events(), 2u);
  EXPECT_EQ(acc.significant_events(2.5), 1u);
}

TEST(AccumulatorTest, CumulativeEventsIsMonotonic) {
  MetricsAccumulator acc;
  acc.add(step_with(10, 10, -0.2));
  acc.add(step_with(10, 10, 0.0));
  acc.add(step_with(10, 10, -0.2));
  const auto cum = acc.cumulative_events();
  ASSERT_EQ(cum.size(), 3u);
  EXPECT_EQ(cum[0], 1u);
  EXPECT_EQ(cum[1], 1u);
  EXPECT_EQ(cum[2], 2u);
}

TEST(AccumulatorTest, EmptyAccumulatorIsZero) {
  MetricsAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.avg_over_allocation_pct(ResourceKind::kCpu), 0.0);
  EXPECT_DOUBLE_EQ(acc.avg_under_allocation_pct(ResourceKind::kCpu), 0.0);
  EXPECT_EQ(acc.significant_events(), 0u);
  EXPECT_TRUE(acc.cumulative_events().empty());
}

}  // namespace
}  // namespace mmog::core
