#include "core/simulation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>

#include "predict/simple.hpp"

namespace mmog::core {
namespace {

using util::ResourceKind;

// A small one-region workload: `groups` sine-shaped server groups peaking at
// `peak` players, sampled for `steps` 2-minute steps.
trace::WorldTrace sine_workload(std::size_t groups, std::size_t steps,
                                double peak = 1600.0, double floor = 400.0) {
  trace::WorldTrace world;
  trace::RegionalTrace region;
  region.name = "Europe";
  for (std::size_t g = 0; g < groups; ++g) {
    trace::ServerGroupTrace group;
    group.name = "G" + std::to_string(g);
    group.players = util::TimeSeries(util::kSampleStepSeconds);
    for (std::size_t t = 0; t < steps; ++t) {
      const double phase = 2.0 * std::numbers::pi *
                           static_cast<double>(t) / 720.0;
      group.players.push_back(
          floor + (peak - floor) * 0.5 * (1.0 - std::cos(phase)));
    }
    region.groups.push_back(std::move(group));
  }
  world.regions.push_back(std::move(region));
  return world;
}

std::vector<dc::DataCenterSpec> amsterdam_dc(int policy = 1,
                                             std::size_t machines = 40) {
  dc::DataCenterSpec d;
  d.name = "NL";
  d.country = "Netherlands";
  d.continent = "Europe";
  d.location = {52.37, 4.90};
  d.machines = machines;
  d.policy = dc::HostingPolicy::preset(policy);
  return {d};
}

predict::PredictorFactory last_value_factory() {
  return [] { return std::make_unique<predict::LastValuePredictor>(); };
}

SimulationConfig base_config(std::size_t groups = 4, std::size_t steps = 720) {
  SimulationConfig cfg;
  cfg.datacenters = amsterdam_dc();
  GameSpec game;
  game.name = "TestGame";
  game.load = LoadModel{UpdateModel::kQuadratic, 2000.0};
  game.latency_tolerance = dc::DistanceClass::kVeryFar;
  game.workload = sine_workload(groups, steps);
  cfg.games.push_back(std::move(game));
  cfg.predictor = last_value_factory();
  return cfg;
}

TEST(SimulationTest, RejectsInvalidConfigurations) {
  SimulationConfig empty;
  EXPECT_THROW(simulate(empty), std::invalid_argument);

  auto no_predictor = base_config();
  no_predictor.predictor = nullptr;
  EXPECT_THROW(simulate(no_predictor), std::invalid_argument);

  auto no_dc = base_config();
  no_dc.datacenters.clear();
  EXPECT_THROW(simulate(no_dc), std::invalid_argument);

  auto bad_region = base_config();
  bad_region.games[0].workload.regions[0].name = "Nowhere";
  EXPECT_THROW(simulate(bad_region), std::out_of_range);
}

TEST(SimulationTest, RunsFullTraceByDefault) {
  const auto result = simulate(base_config(2, 100));
  EXPECT_EQ(result.steps, 100u);
  EXPECT_EQ(result.metrics.steps(), 100u);
}

TEST(SimulationTest, StepLimitIsRespected) {
  auto cfg = base_config(2, 100);
  cfg.steps = 40;
  EXPECT_EQ(simulate(cfg).steps, 40u);
}

TEST(SimulationTest, DynamicAllocationCoversLoadAfterWarmup) {
  const auto result = simulate(base_config());
  const auto& steps = result.metrics.step_metrics();
  // After warm-up the allocation should cover the (slow-moving) load: the
  // average under-allocation stays tiny.
  const double avg_under =
      result.metrics.avg_under_allocation_pct(ResourceKind::kCpu);
  EXPECT_GT(avg_under, -1.0);
  // And the allocation is never wildly above the demand.
  EXPECT_LT(result.metrics.avg_over_allocation_pct(ResourceKind::kCpu),
            200.0);
  // Allocated resources exist.
  EXPECT_GT(steps.back().allocated.cpu(), 0.0);
}

TEST(SimulationTest, StaticAllocationNeverUnderAllocates) {
  auto cfg = base_config();
  cfg.mode = AllocationMode::kStatic;
  cfg.predictor = nullptr;  // static mode needs no predictor
  const auto result = simulate(cfg);
  EXPECT_NEAR(result.metrics.avg_under_allocation_pct(ResourceKind::kCpu),
              0.0, 1e-9);
  EXPECT_EQ(result.metrics.significant_events(), 0u);
  EXPECT_DOUBLE_EQ(result.unplaced_cpu_unit_steps, 0.0);
}

TEST(SimulationTest, StaticOverAllocatesMoreThanDynamic) {
  // The paper's headline: static provisioning is several times less
  // efficient than dynamic (§V-B, Fig 8).
  auto dynamic_cfg = base_config();
  const auto dyn = simulate(dynamic_cfg);
  auto static_cfg = base_config();
  static_cfg.mode = AllocationMode::kStatic;
  const auto sta = simulate(static_cfg);
  EXPECT_GT(sta.metrics.avg_over_allocation_pct(ResourceKind::kCpu),
            2.0 * dyn.metrics.avg_over_allocation_pct(ResourceKind::kCpu));
}

TEST(SimulationTest, BulkQuantizationInflatesNetworkAllocation) {
  // HP-1 rents inbound bandwidth in 6-unit bulks: the ExtNet[in]
  // over-allocation must dwarf the CPU over-allocation (Table V).
  const auto result = simulate(base_config());
  EXPECT_GT(result.metrics.avg_over_allocation_pct(ResourceKind::kNetIn),
            5.0 * result.metrics.avg_over_allocation_pct(ResourceKind::kCpu));
}

TEST(SimulationTest, OutOfToleranceDemandGoesUnplaced) {
  auto cfg = base_config(2, 50);
  cfg.games[0].latency_tolerance = dc::DistanceClass::kSameLocation;
  // Move the only data center to Sydney: nothing is within tolerance.
  cfg.datacenters[0].location = {-33.87, 151.21};
  const auto result = simulate(cfg);
  EXPECT_GT(result.unplaced_cpu_unit_steps, 0.0);
  // All demand goes unserved: the shortfall equals the generated load (the
  // 50-step slice starts near the diurnal trough, so a few percent).
  EXPECT_LT(result.metrics.avg_under_allocation_pct(ResourceKind::kCpu),
            -2.0);
  EXPECT_GT(result.metrics.significant_events(), 25u);
}

TEST(SimulationTest, CapacityExhaustionCausesUnderAllocation) {
  // Run into the diurnal peak so the eight groups far exceed one machine.
  auto cfg = base_config(8, 400);
  cfg.datacenters = amsterdam_dc(1, 1);  // one machine for eight busy groups
  const auto result = simulate(cfg);
  EXPECT_LT(result.metrics.avg_under_allocation_pct(ResourceKind::kCpu),
            -1.0);
  EXPECT_GT(result.unplaced_cpu_unit_steps, 0.0);
}

TEST(SimulationTest, ReportsPerDataCenterUsage) {
  auto cfg = base_config(3, 200);
  const auto result = simulate(cfg);
  ASSERT_EQ(result.datacenters.size(), 1u);
  const auto& usage = result.datacenters[0];
  EXPECT_EQ(usage.name, "NL");
  EXPECT_DOUBLE_EQ(usage.capacity_cpu, 40.0);
  EXPECT_GT(usage.avg_allocated_cpu, 0.0);
  EXPECT_GE(usage.peak_allocated_cpu, usage.avg_allocated_cpu);
  ASSERT_TRUE(usage.avg_allocated_by_origin.contains("Europe"));
  EXPECT_NEAR(usage.avg_allocated_by_origin.at("Europe"),
              usage.avg_allocated_cpu, 0.3);
}

TEST(SimulationTest, TimeBulkKeepsAllocationsPinned) {
  // With a 2-day time bulk (HP-11) nothing can be released inside a 1-day
  // run: the allocated CPU can only grow.
  auto cfg = base_config(3, 720);
  cfg.datacenters = amsterdam_dc(11);
  const auto result = simulate(cfg);
  const auto& steps = result.metrics.step_metrics();
  double prev = 0.0;
  for (const auto& m : steps) {
    EXPECT_GE(m.allocated.cpu() + 1e-9, prev);
    prev = m.allocated.cpu();
  }
}

TEST(SimulationTest, ShortTimeBulkAllowsRelease) {
  // HP-3's 3 h time bulk lets the operator release during the diurnal
  // trough: the allocation must shrink at some step.
  auto cfg = base_config(3, 720);
  cfg.datacenters = amsterdam_dc(3);
  const auto result = simulate(cfg);
  const auto& steps = result.metrics.step_metrics();
  bool shrank = false;
  double prev = 0.0;
  for (const auto& m : steps) {
    if (m.allocated.cpu() < prev - 1e-9) shrank = true;
    prev = m.allocated.cpu();
  }
  EXPECT_TRUE(shrank);
}

TEST(SimulationTest, DeterministicAcrossRuns) {
  const auto a = simulate(base_config());
  const auto b = simulate(base_config());
  EXPECT_DOUBLE_EQ(a.metrics.avg_over_allocation_pct(ResourceKind::kCpu),
                   b.metrics.avg_over_allocation_pct(ResourceKind::kCpu));
  EXPECT_EQ(a.metrics.significant_events(), b.metrics.significant_events());
}

TEST(SimulationTest, PriorityModeServesHighPriorityFirst) {
  // Two games compete for one tiny data center; the prioritized game
  // suffers fewer shortfalls than the other.
  auto make_two_games = [](bool prioritize) {
    SimulationConfig cfg;
    cfg.datacenters = amsterdam_dc(1, 2);  // scarce capacity
    for (int g = 0; g < 2; ++g) {
      GameSpec game;
      game.name = g == 0 ? "VIP" : "BestEffort";
      game.priority = g == 0 ? 10 : 0;
      game.load = LoadModel{UpdateModel::kQuadratic, 2000.0};
      game.workload = sine_workload(4, 200);
      cfg.games.push_back(std::move(game));
    }
    cfg.predictor = [] {
      return std::make_unique<predict::LastValuePredictor>();
    };
    cfg.prioritize_by_interaction = prioritize;
    return cfg;
  };
  // With prioritization on, results must still be valid and deterministic.
  const auto result = simulate(make_two_games(true));
  EXPECT_EQ(result.steps, 200u);
  EXPECT_GT(result.unplaced_cpu_unit_steps, 0.0);
}


TEST(SimulationTest, SafetyFactorTradesWasteForEvents) {
  // The SS V-C knob: more safety margin means more over-allocation and
  // fewer (or equal) significant under-allocation events.
  auto lo_cfg = base_config(4, 720);
  lo_cfg.safety_factor = 0.0;
  const auto lo = simulate(lo_cfg);
  auto hi_cfg = base_config(4, 720);
  hi_cfg.safety_factor = 3.0;
  const auto hi = simulate(hi_cfg);
  EXPECT_GE(hi.metrics.avg_over_allocation_pct(ResourceKind::kCpu),
            lo.metrics.avg_over_allocation_pct(ResourceKind::kCpu));
  EXPECT_LE(hi.metrics.significant_events(),
            lo.metrics.significant_events());
  EXPECT_GE(hi.metrics.avg_under_allocation_pct(ResourceKind::kCpu),
            lo.metrics.avg_under_allocation_pct(ResourceKind::kCpu));
}

TEST(SimulationTest, ProvisioningDelayWorsensShortfall) {
  // With a setup delay, freshly granted resources serve load only later:
  // under-allocation must be at least as bad as with instant provisioning.
  auto instant_cfg = base_config(4, 720);
  const auto instant = simulate(instant_cfg);
  auto delayed_cfg = base_config(4, 720);
  delayed_cfg.provisioning_delay_steps = 10;
  const auto delayed = simulate(delayed_cfg);
  EXPECT_LE(delayed.metrics.avg_under_allocation_pct(ResourceKind::kCpu),
            instant.metrics.avg_under_allocation_pct(ResourceKind::kCpu));
  EXPECT_GE(delayed.metrics.significant_events(),
            instant.metrics.significant_events());
}

TEST(SimulationTest, TotalCostScalesWithHorizon) {
  auto short_cfg = base_config(3, 720);
  short_cfg.steps = 200;
  const auto short_run = simulate(short_cfg);
  auto long_cfg = base_config(3, 720);
  long_cfg.steps = 600;
  const auto long_run = simulate(long_cfg);
  EXPECT_GT(long_run.total_cost, 2.0 * short_run.total_cost);
}

TEST(OfferAmountTest, UnconstrainedPolicyOffersExactOverlap) {
  // With every bulk "n/a" there are no bundles: the offer is exactly the
  // component-wise overlap of need and free capacity.
  dc::HostingPolicy exact;
  exact.bulk = {};
  const auto need = util::ResourceVector::of(3.0, 8.0, 2.0, 1.0);
  const auto free = util::ResourceVector::of(5.0, 4.0, 2.0, 0.0);
  const auto offer = offer_amount(need, free, exact);
  EXPECT_DOUBLE_EQ(offer.cpu(), 3.0);      // need-limited
  EXPECT_DOUBLE_EQ(offer.memory(), 4.0);   // free-limited
  EXPECT_DOUBLE_EQ(offer.net_in(), 2.0);   // exact overlap
  EXPECT_DOUBLE_EQ(offer.net_out(), 0.0);  // nothing free
}

TEST(OfferAmountTest, ClampsNegativeComponentsToZero) {
  dc::HostingPolicy exact;
  exact.bulk = {};
  const auto offer = offer_amount(util::ResourceVector::of(-2.0, 1.0, 0, 0),
                                  util::ResourceVector::of(5.0, -3.0, 0, 0),
                                  exact);
  EXPECT_DOUBLE_EQ(offer.cpu(), 0.0);
  EXPECT_DOUBLE_EQ(offer.memory(), 0.0);
}

TEST(OfferAmountTest, BundledResourcesComeInBulkMultiples) {
  // HP-3 constrains CPU (0.22) and memory (2.0): those components arrive as
  // whole bundles, while the unconstrained network kinds stay exact.
  const auto hp3 = dc::HostingPolicy::preset(3);
  const auto need = util::ResourceVector::of(0.5, 1.0, 3.0, 0.5);
  const auto free = util::ResourceVector::of(10.0, 100.0, 2.0, 2.0);
  const auto offer = offer_amount(need, free, hp3);
  // bundles_needed = max(ceil(.5/.22)=3, ceil(1/2)=1) = 3 bundles.
  EXPECT_NEAR(offer.cpu(), 3 * 0.22, 1e-9);
  EXPECT_DOUBLE_EQ(offer.memory(), 3 * 2.0);
  EXPECT_DOUBLE_EQ(offer.net_in(), 2.0);   // exact, free-limited
  EXPECT_DOUBLE_EQ(offer.net_out(), 0.5);  // exact, need-limited
}

TEST(OfferAmountTest, BundleCountLimitedByFreeCapacity) {
  const auto hp3 = dc::HostingPolicy::preset(3);
  const auto need = util::ResourceVector::of(2.2, 1.0, 0, 0);  // wants 10
  const auto free = util::ResourceVector::of(0.5, 100.0, 0, 0);  // fits 2
  const auto offer = offer_amount(need, free, hp3);
  EXPECT_NEAR(offer.cpu(), 2 * 0.22, 1e-9);
  EXPECT_DOUBLE_EQ(offer.memory(), 2 * 2.0);
}

TEST(NeuralFactoryTest, BuildsWorkingPredictors) {
  const auto workload = sine_workload(3, 400);
  predict::NeuralConfig cfg;
  cfg.train.max_eras = 30;
  cfg.train.patience = 5;
  const auto factory = neural_factory_from_workload(workload, 300, cfg, 2);
  auto p = factory();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->name(), "Neural");
  // Feed a ramp; prediction should be in a sane range.
  for (double v : {500.0, 550.0, 600.0, 650.0, 700.0, 750.0}) p->observe(v);
  const double pred = p->predict();
  EXPECT_GT(pred, 300.0);
  EXPECT_LT(pred, 1500.0);
}

TEST(NeuralFactoryTest, RejectsEmptyWorkload) {
  trace::WorldTrace empty;
  EXPECT_THROW(neural_factory_from_workload(empty, 100),
               std::invalid_argument);
}

}  // namespace
}  // namespace mmog::core
