#include "core/load_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mmog::core {
namespace {

TEST(UpdateCostTest, ZeroAndNegativeEntitiesCostNothing) {
  for (auto m : {UpdateModel::kLinear, UpdateModel::kQuadratic,
                 UpdateModel::kCubic}) {
    EXPECT_DOUBLE_EQ(update_cost(m, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(update_cost(m, -5.0), 0.0);
  }
}

TEST(UpdateCostTest, KnownValues) {
  EXPECT_DOUBLE_EQ(update_cost(UpdateModel::kLinear, 8.0), 8.0);
  EXPECT_DOUBLE_EQ(update_cost(UpdateModel::kQuadratic, 8.0), 64.0);
  EXPECT_DOUBLE_EQ(update_cost(UpdateModel::kCubic, 8.0), 512.0);
  EXPECT_NEAR(update_cost(UpdateModel::kNLogN, 8.0), 8.0 * std::log2(9.0),
              1e-12);
  EXPECT_NEAR(update_cost(UpdateModel::kQuadraticLogN, 8.0),
              64.0 * std::log2(9.0), 1e-12);
}

TEST(UpdateCostTest, ComplexityOrderingHolds) {
  // For n > 2 the models order strictly by asymptotic complexity.
  const double n = 100.0;
  EXPECT_LT(update_cost(UpdateModel::kLinear, n),
            update_cost(UpdateModel::kNLogN, n));
  EXPECT_LT(update_cost(UpdateModel::kNLogN, n),
            update_cost(UpdateModel::kQuadratic, n));
  EXPECT_LT(update_cost(UpdateModel::kQuadratic, n),
            update_cost(UpdateModel::kQuadraticLogN, n));
  EXPECT_LT(update_cost(UpdateModel::kQuadraticLogN, n),
            update_cost(UpdateModel::kCubic, n));
}

TEST(UpdateModelTest, NamesMatchPaperNotation) {
  EXPECT_EQ(update_model_name(UpdateModel::kLinear), "O(n)");
  EXPECT_EQ(update_model_name(UpdateModel::kQuadratic), "O(n^2)");
  EXPECT_EQ(update_model_name(UpdateModel::kCubic), "O(n^3)");
}

TEST(UpdateModelTest, AreaOfInterestReducesComplexity) {
  // §II-A: O(n^2) -> O(n log n) and O(n^3) -> O(n^2 log n).
  EXPECT_EQ(with_area_of_interest(UpdateModel::kQuadratic),
            UpdateModel::kNLogN);
  EXPECT_EQ(with_area_of_interest(UpdateModel::kCubic),
            UpdateModel::kQuadraticLogN);
  EXPECT_EQ(with_area_of_interest(UpdateModel::kLinear), UpdateModel::kLinear);
  EXPECT_EQ(with_area_of_interest(UpdateModel::kNLogN), UpdateModel::kNLogN);
}

TEST(LoadModelTest, FullServerNeedsExactlyOneUnitOfEverything) {
  for (auto m : {UpdateModel::kLinear, UpdateModel::kNLogN,
                 UpdateModel::kQuadratic, UpdateModel::kQuadraticLogN,
                 UpdateModel::kCubic}) {
    LoadModel load{m, 2000.0};
    const auto d = load.demand(2000.0);
    EXPECT_NEAR(d.cpu(), 1.0, 1e-12) << update_model_name(m);
    EXPECT_NEAR(d.memory(), 1.0, 1e-12);
    EXPECT_NEAR(d.net_in(), 1.0, 1e-12);
    EXPECT_NEAR(d.net_out(), 1.0, 1e-12);
  }
}

TEST(LoadModelTest, HalfLoadCpuDependsOnModel) {
  LoadModel linear{UpdateModel::kLinear, 2000.0};
  LoadModel quad{UpdateModel::kQuadratic, 2000.0};
  LoadModel cubic{UpdateModel::kCubic, 2000.0};
  EXPECT_NEAR(linear.demand(1000.0).cpu(), 0.5, 1e-12);
  EXPECT_NEAR(quad.demand(1000.0).cpu(), 0.25, 1e-12);
  EXPECT_NEAR(cubic.demand(1000.0).cpu(), 0.125, 1e-12);
}

TEST(LoadModelTest, LinearResourcesAreModelIndependent) {
  LoadModel quad{UpdateModel::kQuadratic, 2000.0};
  const auto d = quad.demand(500.0);
  EXPECT_NEAR(d.memory(), 0.25, 1e-12);
  EXPECT_NEAR(d.net_in(), 0.25, 1e-12);
  EXPECT_NEAR(d.net_out(), 0.25, 1e-12);
}

TEST(LoadModelTest, HigherComplexityAmplifiesLoadSwings) {
  // The key driver of §V-C: between half and full load the O(n^3) CPU demand
  // swings 8x while O(n) swings only 2x.
  LoadModel linear{UpdateModel::kLinear, 2000.0};
  LoadModel cubic{UpdateModel::kCubic, 2000.0};
  const double lin_ratio = linear.demand(2000.0).cpu() / linear.demand(1000.0).cpu();
  const double cub_ratio = cubic.demand(2000.0).cpu() / cubic.demand(1000.0).cpu();
  EXPECT_NEAR(lin_ratio, 2.0, 1e-9);
  EXPECT_NEAR(cub_ratio, 8.0, 1e-9);
}

TEST(LoadModelTest, NegativePlayersClampToZero) {
  LoadModel load{UpdateModel::kQuadratic, 2000.0};
  EXPECT_EQ(load.demand(-10.0), util::ResourceVector{});
}

TEST(LoadModelTest, DemandIsMonotonicInPlayers) {
  LoadModel load{UpdateModel::kQuadraticLogN, 2000.0};
  double prev = -1.0;
  for (double p = 0.0; p <= 2000.0; p += 100.0) {
    const double cpu = load.demand(p).cpu();
    EXPECT_GE(cpu, prev);
    prev = cpu;
  }
}

TEST(LoadModelTest, DegenerateReferenceYieldsZeroDemand) {
  LoadModel load{UpdateModel::kQuadratic, 0.0};
  EXPECT_DOUBLE_EQ(load.demand(100.0).cpu(), 0.0);
}

}  // namespace
}  // namespace mmog::core
