#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <numbers>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "obs/recorder.hpp"
#include "predict/simple.hpp"

namespace mmog::core {
namespace {

using util::ResourceKind;

// Same small setup as simulation_test.cpp: one-region sine workload against
// the single Amsterdam data center.
trace::WorldTrace sine_workload(std::size_t groups, std::size_t steps) {
  trace::WorldTrace world;
  trace::RegionalTrace region;
  region.name = "Europe";
  for (std::size_t g = 0; g < groups; ++g) {
    trace::ServerGroupTrace group;
    group.name = "G" + std::to_string(g);
    group.players = util::TimeSeries(util::kSampleStepSeconds);
    for (std::size_t t = 0; t < steps; ++t) {
      const double phase =
          2.0 * std::numbers::pi * static_cast<double>(t) / 720.0;
      group.players.push_back(400.0 + 600.0 * (1.0 - std::cos(phase)));
    }
    region.groups.push_back(std::move(group));
  }
  world.regions.push_back(std::move(region));
  return world;
}

SimulationConfig base_config(std::size_t groups, std::size_t steps) {
  SimulationConfig cfg;
  dc::DataCenterSpec d;
  d.name = "NL";
  d.country = "Netherlands";
  d.continent = "Europe";
  d.location = {52.37, 4.90};
  d.machines = 40;
  d.policy = dc::HostingPolicy::preset(1);
  cfg.datacenters = {d};
  GameSpec game;
  game.name = "TestGame";
  game.load = LoadModel{UpdateModel::kQuadratic, 2000.0};
  game.latency_tolerance = dc::DistanceClass::kVeryFar;
  game.workload = sine_workload(groups, steps);
  cfg.games.push_back(std::move(game));
  cfg.predictor = [] {
    return std::make_unique<predict::LastValuePredictor>();
  };
  return cfg;
}

TEST(ObsIntegrationTest, DynamicRunEmitsGoldenSpanSequencePerStep) {
  constexpr std::size_t kGroups = 3;
  constexpr std::size_t kSteps = 24;
  obs::Recorder rec(obs::TraceLevel::kSteps);
  auto cfg = base_config(kGroups, kSteps);
  cfg.recorder = &rec;
  simulate(cfg);

  // Golden content check: span names only, never timings. Each step emits
  // exactly the phase spans followed by the enclosing step span; the
  // match_commit span (the serial commit inside the match phase) closes
  // before its parent match span does.
  const std::vector<std::string> golden = {"predict", "pad", "match_commit",
                                           "match", "account", "step"};
  std::map<std::uint64_t, std::vector<std::string>> spans_by_step;
  for (const auto& e : rec.tracer().events()) {
    if (e.kind == obs::TraceKind::kSpan) {
      spans_by_step[e.step].push_back(e.name);
    }
  }
  ASSERT_EQ(spans_by_step.size(), kSteps);
  for (std::uint64_t t = 0; t < kSteps; ++t) {
    EXPECT_EQ(spans_by_step.at(t), golden) << "step " << t;
  }
}

TEST(ObsIntegrationTest, CountersMatchWorkloadShape) {
  constexpr std::size_t kGroups = 3;
  constexpr std::size_t kSteps = 24;
  obs::Recorder rec(obs::TraceLevel::kSteps);
  auto cfg = base_config(kGroups, kSteps);
  cfg.recorder = &rec;
  simulate(cfg);

  const auto snap = rec.snapshot();
  EXPECT_DOUBLE_EQ(snap.counters.at("predict.issued"),
                   static_cast<double>(kSteps * kGroups));
  EXPECT_DOUBLE_EQ(snap.counters.at("request.padded"),
                   static_cast<double>(kSteps));  // one unit (game, region)
  EXPECT_DOUBLE_EQ(snap.counters.at("offer.matched"),
                   snap.counters.at("alloc.granted"));
  EXPECT_GT(snap.counters.at("alloc.granted"), 0.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("sim.steps"), static_cast<double>(kSteps));
  EXPECT_DOUBLE_EQ(snap.gauges.at("sim.units"), 1.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("sim.groups"),
                   static_cast<double>(kGroups));
  EXPECT_DOUBLE_EQ(snap.gauges.at("sim.datacenters"), 1.0);
  // Phase histograms carry one sample per step; inference timing one per
  // prediction.
  for (const char* phase : {"phase.predict_us", "phase.pad_us",
                            "phase.match_us", "phase.match_commit_us",
                            "phase.account_us", "phase.step_us"}) {
    EXPECT_EQ(snap.histograms.at(phase).count, kSteps) << phase;
  }
  EXPECT_EQ(snap.histograms.at("predictor.inference_us").count,
            kSteps * kGroups);
}

TEST(ObsIntegrationTest, DetailLevelAddsPerUnitInstants) {
  constexpr std::size_t kSteps = 12;
  auto count_instants = [&](obs::TraceLevel level, std::string_view name) {
    obs::Recorder rec(level);
    auto cfg = base_config(2, kSteps);
    cfg.recorder = &rec;
    simulate(cfg);
    std::size_t n = 0;
    for (const auto& e : rec.tracer().events()) {
      if (e.kind == obs::TraceKind::kInstant && e.name == name) ++n;
    }
    return n;
  };
  EXPECT_EQ(count_instants(obs::TraceLevel::kSteps, "request.padded"), 0u);
  EXPECT_EQ(count_instants(obs::TraceLevel::kDetail, "request.padded"),
            kSteps);
}

TEST(ObsIntegrationTest, ResultsIdenticalWithAndWithoutRecorder) {
  // The observability layer must be a pure observer: event content derives
  // from simulation state, never the reverse.
  auto cfg = base_config(4, 120);
  const auto plain = simulate(cfg);

  obs::Recorder rec(obs::TraceLevel::kDetail);
  cfg.recorder = &rec;
  const auto observed = simulate(cfg);

  EXPECT_EQ(observed.steps, plain.steps);
  EXPECT_DOUBLE_EQ(observed.total_cost, plain.total_cost);
  EXPECT_DOUBLE_EQ(observed.unplaced_cpu_unit_steps,
                   plain.unplaced_cpu_unit_steps);
  EXPECT_DOUBLE_EQ(observed.metrics.avg_over_allocation_pct(ResourceKind::kCpu),
                   plain.metrics.avg_over_allocation_pct(ResourceKind::kCpu));
  EXPECT_DOUBLE_EQ(
      observed.metrics.avg_under_allocation_pct(ResourceKind::kCpu),
      plain.metrics.avg_under_allocation_pct(ResourceKind::kCpu));
  EXPECT_EQ(observed.metrics.significant_events(),
            plain.metrics.significant_events());
}

TEST(ObsIntegrationTest, ResultsIdenticalWithLiveTelemetryEnabled) {
  // The live sampling path (time-series + alert engine) must be as inert
  // as the base recorder: identical results, bit for bit.
  auto cfg = base_config(4, 120);
  const auto plain = simulate(cfg);

  obs::Recorder rec(obs::TraceLevel::kSteps);
  rec.enable_timeseries(64);
  rec.enable_alerts(obs::default_alert_rules(cfg.event_threshold_pct));
  cfg.recorder = &rec;
  const auto live = simulate(cfg);

  EXPECT_EQ(live.steps, plain.steps);
  EXPECT_DOUBLE_EQ(live.total_cost, plain.total_cost);
  EXPECT_DOUBLE_EQ(live.unplaced_cpu_unit_steps,
                   plain.unplaced_cpu_unit_steps);
  EXPECT_DOUBLE_EQ(live.metrics.avg_under_allocation_pct(ResourceKind::kCpu),
                   plain.metrics.avg_under_allocation_pct(ResourceKind::kCpu));
  EXPECT_EQ(live.metrics.significant_events(),
            plain.metrics.significant_events());
}

TEST(ObsIntegrationTest, LiveSamplingFillsTimeSeriesAndGauges) {
  constexpr std::size_t kSteps = 24;
  obs::Recorder rec(obs::TraceLevel::kOff);
  rec.enable_timeseries(64);
  auto cfg = base_config(2, kSteps);
  cfg.recorder = &rec;
  simulate(cfg);

  ASSERT_NE(rec.timeseries(), nullptr);
  const auto names = rec.timeseries()->names();
  for (const char* expected :
       {"core.allocated_cpu", "core.demand_cpu", "core.underalloc_frac",
        "core.overalloc_frac", "core.predictor_abs_err",
        "sla.availability_min_pct", "sla.availability_pct.TestGame"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  const auto json = rec.timeseries()->to_json();
  EXPECT_NE(json.find("\"samples_seen\":" + std::to_string(kSteps)),
            std::string::npos);
  // The last step's samples are republished as gauges for /metrics scrapes.
  const auto snap = rec.snapshot();
  EXPECT_GT(snap.gauges.at("core.allocated_cpu"), 0.0);
  EXPECT_EQ(rec.last_sampled_step(), kSteps - 1);
}

TEST(ObsIntegrationTest, AlertFiresWhenDemandOverwhelmsCapacity) {
  // One machine against three heavy groups: demand far exceeds capacity on
  // every step, so |Y| > 1 % holds long enough to trip the default
  // under-allocation rule (for=5 steps).
  obs::Recorder rec(obs::TraceLevel::kSteps);
  rec.enable_alerts(obs::default_alert_rules(1.0));
  auto cfg = base_config(3, 40);
  cfg.games[0].load = LoadModel{UpdateModel::kQuadratic, 300.0};
  cfg.datacenters[0].machines = 1;
  cfg.recorder = &rec;
  simulate(cfg);

  ASSERT_NE(rec.alerts(), nullptr);
  const auto statuses = rec.alerts()->statuses();
  ASSERT_FALSE(statuses.empty());
  EXPECT_EQ(statuses[0].rule.name, "underalloc");
  EXPECT_GE(statuses[0].fired_count, 1u);
  const auto snap = rec.snapshot();
  EXPECT_GE(snap.counters.at("alert.fired"), 1.0);
  // Firing edges also land in the trace as "alert" instants.
  bool saw_instant = false;
  for (const auto& e : rec.tracer().events()) {
    if (e.kind == obs::TraceKind::kInstant && e.name == "alert.firing") {
      saw_instant = true;
    }
  }
  EXPECT_TRUE(saw_instant);
}

TEST(ObsIntegrationTest, StaticModeRecordsSingleAllocationPhase) {
  obs::Recorder rec(obs::TraceLevel::kSteps);
  auto cfg = base_config(2, 12);
  cfg.mode = AllocationMode::kStatic;
  cfg.recorder = &rec;
  simulate(cfg);
  const auto snap = rec.snapshot();
  EXPECT_EQ(snap.histograms.at("phase.static_allocate_us").count, 1u);
  EXPECT_FALSE(snap.histograms.contains("phase.predict_us"));
  EXPECT_GT(snap.counters.at("alloc.granted"), 0.0);
}

TEST(ObsIntegrationTest, OutageEmitsForceReleaseAndRejection) {
  obs::Recorder rec(obs::TraceLevel::kSteps);
  auto cfg = base_config(2, 24);
  DataCenterOutage outage;
  outage.dc_index = 0;
  outage.from_step = 10;
  outage.to_step = 12;
  cfg.outages.push_back(outage);
  cfg.recorder = &rec;
  simulate(cfg);
  const auto snap = rec.snapshot();
  EXPECT_GT(snap.counters.at("alloc.force_released"), 0.0);
  EXPECT_GT(snap.counters.at("offer.rejected.outage"), 0.0);
}

}  // namespace
}  // namespace mmog::core
