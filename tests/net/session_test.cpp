#include "net/session.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace mmog::net {
namespace {

SessionTrace make_trace(InteractionClass cls, std::uint64_t seed = 1,
                        double duration = 600.0) {
  SessionConfig cfg;
  cfg.name = "t";
  cfg.interaction = cls;
  cfg.duration_seconds = duration;
  cfg.seed = seed;
  return emulate_session(cfg);
}

TEST(SessionTest, ProducesPacketsWithinDuration) {
  const auto t = make_trace(InteractionClass::kCreatingContent);
  ASSERT_GT(t.packets.size(), 100u);
  for (const auto& p : t.packets) {
    EXPECT_GE(p.timestamp_s, 0.0);
    EXPECT_LT(p.timestamp_s, 600.0);
  }
}

TEST(SessionTest, TimestampsAreMonotonic) {
  const auto t = make_trace(InteractionClass::kFastPaced);
  for (std::size_t i = 1; i < t.packets.size(); ++i) {
    EXPECT_GE(t.packets[i].timestamp_s, t.packets[i - 1].timestamp_s);
  }
}

TEST(SessionTest, PacketLengthsWithinFigureRange) {
  // Fig 4 truncates at 500 B; our model clamps to [40, 500].
  for (auto cls : {InteractionClass::kCreatingContent,
                   InteractionClass::kFastPaced,
                   InteractionClass::kGroupInteraction}) {
    const auto t = make_trace(cls);
    for (const auto& p : t.packets) {
      EXPECT_GE(p.length_bytes, 40u);
      EXPECT_LE(p.length_bytes, 500u);
    }
  }
}

TEST(SessionTest, DeterministicForSameSeed) {
  const auto a = make_trace(InteractionClass::kP2PMarket, 9);
  const auto b = make_trace(InteractionClass::kP2PMarket, 9);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); i += 50) {
    EXPECT_EQ(a.packets[i].length_bytes, b.packets[i].length_bytes);
    EXPECT_DOUBLE_EQ(a.packets[i].timestamp_s, b.packets[i].timestamp_s);
  }
}

TEST(SessionTest, InterArrivalAccessorsConsistent) {
  const auto t = make_trace(InteractionClass::kFastPaced);
  const auto lengths = t.lengths();
  const auto iats = t.inter_arrival_ms();
  EXPECT_EQ(lengths.size(), t.packets.size());
  EXPECT_EQ(iats.size(), t.packets.size() - 1);
  for (double iat : iats) EXPECT_GT(iat, 0.0);
}

TEST(SessionTest, FastPacedHasLowIat) {
  // §III-D: fast-paced servers send packets as often as possible.
  const auto fast = make_trace(InteractionClass::kFastPaced, 2);
  const auto market = make_trace(InteractionClass::kP2PMarket, 2);
  const double fast_iat = util::mean(fast.inter_arrival_ms());
  const double market_iat = util::mean(market.inter_arrival_ms());
  EXPECT_LT(fast_iat, 0.5 * market_iat);
}

TEST(SessionTest, CrowdingDoesNotChangeFastPacedIat) {
  // T1 (non-crowded fast-paced) and T6 (crowded fast-paced) share the class;
  // the paper finds crowding does not increase fast-paced load.
  const auto sessions = fig4_sessions(77);
  const auto& t1 = sessions[1];
  const auto& t6 = sessions[7];
  EXPECT_EQ(t1.interaction, InteractionClass::kFastPaced);
  EXPECT_EQ(t6.interaction, InteractionClass::kFastPaced);
}

TEST(SessionTest, MarketHasLongerThinkTimeThanCrowdedP2P) {
  // §III-D: T2's IAT moments exceed T7/T3 style interaction (players think
  // before trading).
  const auto market = make_trace(InteractionClass::kP2PMarket, 3, 1800);
  const auto crowded = make_trace(InteractionClass::kP2PCrowded, 3, 1800);
  EXPECT_GT(util::mean(market.inter_arrival_ms()),
            1.2 * util::mean(crowded.inter_arrival_ms()));
  // Packet sizes remain similar between the two p2p classes.
  const double market_len = util::mean(market.lengths());
  const double crowded_len = util::mean(crowded.lengths());
  EXPECT_NEAR(market_len / crowded_len, 1.0, 0.15);
}

TEST(SessionTest, GroupInteractionHasLowestIatAndLargestPackets) {
  // §III-D: group interaction packets arrive more often and carry more
  // objects than any other class.
  const auto group = make_trace(InteractionClass::kGroupInteraction, 4);
  for (auto cls : {InteractionClass::kCreatingContent,
                   InteractionClass::kP2PMarket,
                   InteractionClass::kNewContentNonCrowded}) {
    const auto other = make_trace(cls, 4);
    EXPECT_LT(util::mean(group.inter_arrival_ms()),
              util::mean(other.inter_arrival_ms()));
    EXPECT_GT(util::mean(group.lengths()), util::mean(other.lengths()));
  }
}

TEST(SessionTest, ConsecutiveCapturesOfSameEnvironmentMatch) {
  // T5a and T5b validate measurement stability: same class, different
  // seeds, near-identical distributions.
  const auto a = make_trace(InteractionClass::kNewContentCrowded, 100, 1500);
  const auto b = make_trace(InteractionClass::kNewContentCrowded, 101, 1500);
  EXPECT_NEAR(util::mean(a.lengths()) / util::mean(b.lengths()), 1.0, 0.05);
  EXPECT_NEAR(util::mean(a.inter_arrival_ms()) /
                  util::mean(b.inter_arrival_ms()),
              1.0, 0.08);
}

TEST(SessionTest, Fig4SessionSetMatchesPaper) {
  const auto sessions = fig4_sessions();
  ASSERT_EQ(sessions.size(), 9u);  // T0-T7 plus the 5a/5b pair
  // Every session lasts between 5 minutes and 1 hour (§III-D).
  for (const auto& s : sessions) {
    EXPECT_GE(s.duration_seconds, 300.0);
    EXPECT_LE(s.duration_seconds, 3600.0);
  }
  EXPECT_EQ(sessions[5].interaction, InteractionClass::kNewContentCrowded);
  EXPECT_EQ(sessions[6].interaction, InteractionClass::kNewContentCrowded);
  EXPECT_NE(sessions[5].seed, sessions[6].seed);
}

TEST(SessionTest, MeanBandwidthIsPositiveAndSane) {
  const auto t = make_trace(InteractionClass::kFastPaced);
  const double bps = t.mean_bandwidth_bps();
  EXPECT_GT(bps, 100.0);      // more than 100 B/s
  EXPECT_LT(bps, 1000000.0);  // less than 1 MB/s for a single session
}

TEST(SessionTest, ExpectedStatsHelpersAreConsistent) {
  EXPECT_GT(expected_packet_length(InteractionClass::kGroupInteraction),
            expected_packet_length(InteractionClass::kP2PMarket));
  EXPECT_LT(expected_iat_ms(InteractionClass::kFastPaced),
            expected_iat_ms(InteractionClass::kCreatingContent));
}

TEST(SessionTest, EmptyishTraceEdgeCases) {
  SessionConfig cfg;
  cfg.duration_seconds = 0.0;
  const auto t = emulate_session(cfg);
  EXPECT_TRUE(t.inter_arrival_ms().empty());
  EXPECT_DOUBLE_EQ(t.mean_bandwidth_bps(), 0.0);
}

}  // namespace
}  // namespace mmog::net
