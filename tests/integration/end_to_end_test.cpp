// Integration tests exercising the full pipeline the paper's evaluation
// uses: synthetic RuneScape-like traces -> neural predictor training ->
// multi-data-center provisioning -> Ω/Υ metrics.

#include <gtest/gtest.h>

#include <memory>

#include "core/simulation.hpp"
#include "dc/ecosystem.hpp"
#include "emu/datasets.hpp"
#include "emu/emulator.hpp"
#include "predict/evaluate.hpp"
#include "predict/neural.hpp"
#include "predict/simple.hpp"
#include "trace/runescape_model.hpp"

namespace mmog {
namespace {

using core::AllocationMode;
using core::GameSpec;
using core::LoadModel;
using core::SimulationConfig;
using core::UpdateModel;
using util::ResourceKind;

// A scaled-down paper world: 2 regions, few groups, 2 simulated days.
trace::WorldTrace small_paper_world(std::uint64_t seed = 11) {
  trace::RuneScapeModelConfig cfg;
  cfg.steps = util::samples_per_days(2);
  cfg.seed = seed;
  cfg.regions = {
      {.name = "Europe",
       .utc_offset_hours = 1,
       .server_groups = 6,
       .base_players_per_group = 1100.0,
       .weekend_multiplier = 1.0,
       .always_full_fraction = 0.0},
      {.name = "US East Coast",
       .utc_offset_hours = -5,
       .server_groups = 4,
       .base_players_per_group = 1000.0,
       .weekend_multiplier = 1.1,
       .always_full_fraction = 0.0},
  };
  return trace::generate(cfg);
}

SimulationConfig paper_like_config(trace::WorldTrace workload) {
  SimulationConfig cfg;
  cfg.datacenters = dc::paper_ecosystem();
  GameSpec game;
  game.name = "RuneScape-like";
  game.load = LoadModel{UpdateModel::kQuadratic, 2000.0};
  game.latency_tolerance = dc::DistanceClass::kVeryFar;
  game.workload = std::move(workload);
  cfg.games.push_back(std::move(game));
  return cfg;
}

TEST(EndToEndTest, TraceToProvisioningWithLastValue) {
  auto cfg = paper_like_config(small_paper_world());
  cfg.predictor = [] {
    return std::make_unique<predict::LastValuePredictor>();
  };
  const auto result = simulate(cfg);
  EXPECT_EQ(result.steps, util::samples_per_days(2));
  // Healthy dynamic run: moderate over-allocation, tiny under-allocation.
  const double over =
      result.metrics.avg_over_allocation_pct(ResourceKind::kCpu);
  const double under =
      result.metrics.avg_under_allocation_pct(ResourceKind::kCpu);
  EXPECT_GT(over, 0.0);
  EXPECT_LT(over, 300.0);
  EXPECT_GT(under, -3.0);
}

TEST(EndToEndTest, NeuralPredictorWorksInsideProvisioning) {
  const auto workload = small_paper_world();
  predict::NeuralConfig ncfg;
  ncfg.train.max_eras = 25;
  ncfg.train.patience = 5;
  auto cfg = paper_like_config(workload);
  cfg.predictor = core::neural_factory_from_workload(
      workload, util::samples_per_days(1), ncfg, 4);
  const auto result = simulate(cfg);
  // The neural-driven run should be usable: bounded under-allocation and
  // not absurdly many events.
  EXPECT_GT(result.metrics.avg_under_allocation_pct(ResourceKind::kCpu),
            -5.0);
  EXPECT_LT(result.metrics.significant_events(),
            result.metrics.steps() / 2);
}

TEST(EndToEndTest, StaticVersusDynamicHeadline) {
  // The core claim: dynamic provisioning is several times more efficient.
  auto dyn_cfg = paper_like_config(small_paper_world());
  dyn_cfg.predictor = [] {
    return std::make_unique<predict::LastValuePredictor>();
  };
  const auto dyn = simulate(dyn_cfg);

  auto sta_cfg = paper_like_config(small_paper_world());
  sta_cfg.mode = AllocationMode::kStatic;
  const auto sta = simulate(sta_cfg);

  const double dyn_over =
      dyn.metrics.avg_over_allocation_pct(ResourceKind::kCpu);
  const double sta_over =
      sta.metrics.avg_over_allocation_pct(ResourceKind::kCpu);
  EXPECT_GT(sta_over / dyn_over, 3.0);
  EXPECT_EQ(sta.metrics.significant_events(), 0u);
}

TEST(EndToEndTest, HigherInteractionComplexityCostsMore) {
  // Table VI's trend: over-allocation and events grow with the update
  // model's complexity.
  double prev_over = -1.0;
  std::size_t prev_events = 0;
  for (auto model : {UpdateModel::kLinear, UpdateModel::kQuadratic,
                     UpdateModel::kCubic}) {
    auto cfg = paper_like_config(small_paper_world());
    cfg.games[0].load.model = model;
    cfg.predictor = [] {
      return std::make_unique<predict::LastValuePredictor>();
    };
    const auto result = simulate(cfg);
    const double over =
        result.metrics.avg_over_allocation_pct(ResourceKind::kCpu);
    EXPECT_GT(over, prev_over) << core::update_model_name(model);
    EXPECT_GE(result.metrics.significant_events() + 2, prev_events)
        << core::update_model_name(model);
    prev_over = over;
    prev_events = result.metrics.significant_events();
  }
}

TEST(EndToEndTest, EmulatorFeedsPredictorEvaluation) {
  // Fig 5 pipeline: emulate a data set, evaluate two predictors per zone.
  auto sets = emu::table1_datasets(4242);
  auto cfg = sets[0];
  cfg.samples = 240;  // shorter for the test
  cfg.peak_load = 400.0;
  emu::Emulator emulator(emu::WorldConfig{8, 8, 50.0}, cfg);
  const auto trace = emulator.run();
  const auto zones = trace.zone_series();

  const predict::PredictorFactory last = [] {
    return std::make_unique<predict::LastValuePredictor>();
  };
  const predict::PredictorFactory average = [] {
    return std::make_unique<predict::AveragePredictor>();
  };
  const double last_err =
      predict::zones_prediction_error(last, zones, 120).value();
  const double avg_err =
      predict::zones_prediction_error(average, zones, 120).value();
  EXPECT_GT(last_err, 0.0);
  EXPECT_LT(last_err, 100.0);
  EXPECT_GT(avg_err, 0.0);
}

TEST(EndToEndTest, MultiGameEcosystemRuns) {
  // Table VII: several games with different update models share the world.
  SimulationConfig cfg;
  cfg.datacenters = dc::paper_ecosystem();
  const UpdateModel models[] = {UpdateModel::kNLogN, UpdateModel::kQuadratic,
                                UpdateModel::kQuadraticLogN};
  for (int g = 0; g < 3; ++g) {
    GameSpec game;
    game.name = "Game" + std::to_string(g);
    game.load = LoadModel{models[g], 2000.0};
    game.workload = small_paper_world(20 + static_cast<std::uint64_t>(g));
    cfg.games.push_back(std::move(game));
  }
  cfg.predictor = [] {
    return std::make_unique<predict::LastValuePredictor>();
  };
  const auto result = simulate(cfg);
  EXPECT_EQ(result.steps, util::samples_per_days(2));
  EXPECT_EQ(result.datacenters.size(), dc::paper_ecosystem().size());
  // Multiple origins served.
  std::size_t origins = 0;
  for (const auto& usage : result.datacenters) {
    origins = std::max(origins, usage.avg_allocated_by_origin.size());
  }
  EXPECT_GE(origins, 1u);
}

TEST(EndToEndTest, LatencyToleranceRestrictsPlacement) {
  // A same-location game only uses data centers co-located with its
  // regions; Europe demand must land on European centers.
  auto cfg = paper_like_config(small_paper_world());
  cfg.games[0].latency_tolerance = dc::DistanceClass::kVeryClose;
  cfg.predictor = [] {
    return std::make_unique<predict::LastValuePredictor>();
  };
  const auto result = simulate(cfg);
  for (const auto& usage : result.datacenters) {
    if (usage.name.find("Australia") != std::string::npos) {
      EXPECT_NEAR(usage.avg_allocated_cpu, 0.0, 1e-9) << usage.name;
    }
  }
}

}  // namespace
}  // namespace mmog
