// Fault injection + resilience policy inside core::simulate: determinism,
// zero-fault bit-identity, demand conservation across force-release and
// re-placement, SLA accounting and the recovery-lag acceptance criterion.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/simulation.hpp"
#include "obs/recorder.hpp"
#include "predict/simple.hpp"

namespace mmog::core {
namespace {

using util::ResourceKind;

trace::WorldTrace flat_workload(std::size_t groups, std::size_t steps,
                                double players = 1200.0) {
  trace::WorldTrace world;
  trace::RegionalTrace region;
  region.name = "Europe";
  for (std::size_t g = 0; g < groups; ++g) {
    trace::ServerGroupTrace group;
    group.name = "G" + std::to_string(g);
    group.players = util::TimeSeries(
        util::kSampleStepSeconds, std::vector<double>(steps, players));
    region.groups.push_back(std::move(group));
  }
  world.regions.push_back(std::move(region));
  return world;
}

SimulationConfig two_dc_config(std::size_t steps) {
  SimulationConfig cfg;
  dc::DataCenterSpec a;
  a.name = "Primary";
  a.location = {52.37, 4.90};
  a.machines = 10;
  a.policy = dc::HostingPolicy::preset(3);
  dc::DataCenterSpec b;
  b.name = "Backup";
  b.location = {51.51, -0.13};
  b.machines = 10;
  b.policy = dc::HostingPolicy::preset(4);  // coarser: used second
  cfg.datacenters = {a, b};
  GameSpec game;
  game.load = LoadModel{UpdateModel::kQuadratic, 2000.0};
  game.workload = flat_workload(4, steps);
  cfg.games.push_back(std::move(game));
  cfg.predictor = [] {
    return std::make_unique<predict::LastValuePredictor>();
  };
  return cfg;
}

fault::FaultSpec fixed_fault(fault::FaultKind kind, std::size_t dc,
                             std::size_t from, std::size_t to,
                             double severity = 1.0) {
  fault::FaultSpec spec;
  spec.kind = kind;
  spec.dc_index = dc;
  spec.window_from = from;
  spec.window_to = to;
  spec.severity = severity;
  return spec;
}

fault::FaultSpec stochastic_outage(std::size_t dc, double mtbf, double mttr,
                                   std::uint64_t seed) {
  fault::FaultSpec spec;
  spec.dc_index = dc;
  spec.mtbf_steps = mtbf;
  spec.mttr_steps = mttr;
  spec.seed = seed;
  return spec;
}

/// Exact per-step equality of the observable outcome (NOT approximate:
/// the gating invariant is bit-identity).
void expect_identical_outcome(const SimulationResult& a,
                              const SimulationResult& b) {
  ASSERT_EQ(a.steps, b.steps);
  const auto& sa = a.metrics.step_metrics();
  const auto& sb = b.metrics.step_metrics();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t t = 0; t < sa.size(); ++t) {
    for (std::size_t i = 0; i < util::kResourceKinds; ++i) {
      EXPECT_EQ(sa[t].allocated.v[i], sb[t].allocated.v[i]) << "step " << t;
      EXPECT_EQ(sa[t].used.v[i], sb[t].used.v[i]) << "step " << t;
      EXPECT_EQ(sa[t].shortfall.v[i], sb[t].shortfall.v[i]) << "step " << t;
    }
  }
  EXPECT_EQ(a.unplaced_cpu_unit_steps, b.unplaced_cpu_unit_steps);
  EXPECT_EQ(a.total_cost, b.total_cost);
}

void expect_bit_identical(const SimulationResult& a,
                          const SimulationResult& b) {
  expect_identical_outcome(a, b);
  EXPECT_EQ(a.fault_events, b.fault_events);
}

TEST(FaultSimulationTest, StochasticFaultRunsAreDeterministic) {
  auto make = [] {
    auto cfg = two_dc_config(400);
    cfg.faults.push_back(stochastic_outage(0, 100.0, 10.0, 5));
    cfg.resilience.enabled = true;
    return cfg;
  };
  const auto first = simulate(make());
  const auto second = simulate(make());
  ASSERT_FALSE(first.fault_events.empty());
  expect_bit_identical(first, second);
  EXPECT_EQ(first.sla.downtime_steps, second.sla.downtime_steps);
}

TEST(FaultSimulationTest, ResiliencePolicyAloneIsBitIdentical) {
  // With no faults scheduled, flipping the resilience switch must not
  // perturb a single step: every fault code path is gated on the schedule.
  const auto plain = simulate(two_dc_config(300));
  auto cfg = two_dc_config(300);
  cfg.resilience.enabled = true;
  const auto resilient = simulate(cfg);
  expect_bit_identical(plain, resilient);
}

TEST(FaultSimulationTest, RecorderDoesNotAffectFaultResults) {
  auto make = [] {
    auto cfg = two_dc_config(300);
    cfg.faults.push_back(
        fixed_fault(fault::FaultKind::kOutage, 0, 100, 140));
    cfg.faults.push_back(
        fixed_fault(fault::FaultKind::kCapacityLoss, 1, 50, 250, 0.5));
    cfg.resilience.enabled = true;
    return cfg;
  };
  const auto silent = simulate(make());
  obs::Recorder recorder(obs::TraceLevel::kDetail);
  auto observed_cfg = make();
  observed_cfg.recorder = &recorder;
  const auto observed = simulate(observed_cfg);
  expect_bit_identical(silent, observed);
  // The recorder did see the fault windows.
  const auto snap = recorder.snapshot();
  EXPECT_GT(snap.counters.at("fault.begun"), 0.0);
  EXPECT_GT(snap.counters.at("alloc.force_released"), 0.0);
}

TEST(FaultSimulationTest, OutageFailoverConservesDemand) {
  auto cfg = two_dc_config(200);
  cfg.faults.push_back(fixed_fault(fault::FaultKind::kOutage, 0, 80, 120));
  cfg.resilience.enabled = true;
  const auto faulty = simulate(cfg);
  const auto clean = simulate(two_dc_config(200));

  const auto& fs = faulty.metrics.step_metrics();
  const auto& cs = clean.metrics.step_metrics();
  ASSERT_EQ(fs.size(), cs.size());
  const double capacity =
      cfg.datacenters[0].total_capacity().cpu() +
      cfg.datacenters[1].total_capacity().cpu();
  for (std::size_t t = 0; t < fs.size(); ++t) {
    // Faults never change the demand side, only the supply side …
    EXPECT_EQ(fs[t].used.cpu(), cs[t].used.cpu()) << "step " << t;
    // … and re-placement never conjures capacity out of thin air.
    EXPECT_LE(fs[t].allocated.cpu(), capacity + 1e-9) << "step " << t;
    // Same-step re-placement: after warmup the demand force-released by
    // the outage is carried by the surviving center with no shortfall.
    if (t >= 2) {
      EXPECT_GE(fs[t].allocated.cpu() + 1e-6, fs[t].used.cpu())
          << "step " << t;
    }
  }
  // The backup actually hosted the failed-over demand.
  EXPECT_GT(faulty.datacenters[1].peak_allocated_cpu,
            clean.datacenters[1].peak_allocated_cpu);
}

TEST(FaultSimulationTest, SameStepReplacementBeatsNextStepRecovery) {
  auto base = two_dc_config(200);
  base.faults.push_back(fixed_fault(fault::FaultKind::kOutage, 0, 80, 120));
  const auto plain = simulate(base);
  auto resilient_cfg = base;
  resilient_cfg.resilience.enabled = true;
  const auto resilient = simulate(resilient_cfg);
  // Without the policy the outage costs (at least) the eviction step; with
  // same-step re-placement the breach never materializes.
  EXPECT_LT(resilient.sla.downtime_steps, plain.sla.downtime_steps);
  EXPECT_LE(resilient.metrics.significant_events(),
            plain.metrics.significant_events());
}

TEST(FaultSimulationTest, CapacityLossEvictsDownToTheDegradedLimit) {
  auto cfg = two_dc_config(100);
  cfg.faults.push_back(
      fixed_fault(fault::FaultKind::kCapacityLoss, 0, 0, 100, 0.1));
  cfg.resilience.enabled = true;
  const auto result = simulate(cfg);
  // The primary can never hold more than the kept fraction.
  EXPECT_LE(result.datacenters[0].peak_allocated_cpu,
            0.1 * cfg.datacenters[0].total_capacity().cpu() + 1e-9);
  EXPECT_GT(result.datacenters[1].avg_allocated_cpu, 0.0);
}

TEST(FaultSimulationTest, LatencyDegradationPushesDemandOutOfTolerance) {
  auto cfg = two_dc_config(100);
  // +5 classes exceeds even kVeryFar tolerance: the primary is unusable.
  cfg.faults.push_back(
      fixed_fault(fault::FaultKind::kLatencyDegradation, 0, 0, 100, 5.0));
  cfg.resilience.enabled = true;
  const auto result = simulate(cfg);
  EXPECT_LT(result.datacenters[0].peak_allocated_cpu, 1e-9);
  EXPECT_GT(result.datacenters[1].avg_allocated_cpu, 0.0);
  // A mild +1 degradation stays inside the (very tolerant) limit: the run
  // is indistinguishable from a clean one.
  auto mild = two_dc_config(100);
  mild.faults.push_back(
      fixed_fault(fault::FaultKind::kLatencyDegradation, 0, 0, 100, 1.0));
  const auto mild_result = simulate(mild);
  const auto clean = simulate(two_dc_config(100));
  expect_identical_outcome(clean, mild_result);
}

TEST(FaultSimulationTest, GrantFlapBlocksNewGrantsOnly) {
  auto cfg = two_dc_config(100);
  cfg.faults.push_back(
      fixed_fault(fault::FaultKind::kGrantFlap, 0, 0, 100));
  const auto result = simulate(cfg);
  // Every grant attempt on the primary fails to materialize; the demand
  // lands on the backup instead of dying.
  EXPECT_LT(result.datacenters[0].peak_allocated_cpu, 1e-9);
  EXPECT_GT(result.datacenters[1].avg_allocated_cpu, 0.0);
  // Beyond the predictor warm-up step the rerouted grants cover everything.
  EXPECT_LE(result.sla.downtime_steps, 1u);
}

TEST(FaultSimulationTest, TotalOutagePopulatesSlaAccounting) {
  auto cfg = two_dc_config(60);
  cfg.faults.push_back(fixed_fault(fault::FaultKind::kOutage, 0, 20, 40));
  cfg.faults.push_back(fixed_fault(fault::FaultKind::kOutage, 1, 20, 40));
  const auto result = simulate(cfg);
  EXPECT_EQ(result.sla.steps, 60u);
  EXPECT_GE(result.sla.downtime_steps, 19u);
  EXPECT_LE(result.sla.downtime_steps, 22u);
  EXPECT_LT(result.sla.availability_pct(), 100.0);
  EXPECT_GE(result.sla.breach_episodes, 1u);
  EXPECT_GE(result.sla.recoveries, 1u);
  EXPECT_GT(result.sla.mean_time_to_recover_steps, 0.0);
  // Single-game run: the per-game tracker sees the same signal.
  ASSERT_EQ(result.games.size(), 1u);
  EXPECT_EQ(result.games[0].sla.downtime_steps,
            result.sla.downtime_steps);
}

TEST(FaultSimulationTest, ShedSacrificesLowPriorityGames) {
  // Two games on one small center; the high-priority one cannot fit when
  // capacity degrades, so the policy force-releases the low-priority game.
  SimulationConfig cfg;
  dc::DataCenterSpec only;
  only.name = "Only";
  only.location = {52.37, 4.90};
  only.machines = 4;
  only.policy = dc::HostingPolicy::preset(3);
  cfg.datacenters = {only};
  // First-come service order: Low allocates first (older allocations), so
  // the capacity-loss eviction (newest first) hits High, which then sheds.
  GameSpec low;
  low.name = "Low";
  low.priority = 0;
  low.load = LoadModel{UpdateModel::kQuadratic, 2000.0};
  low.workload = flat_workload(2, 80, 1600.0);
  GameSpec high;
  high.name = "High";
  high.priority = 5;
  high.load = LoadModel{UpdateModel::kQuadratic, 2000.0};
  high.workload = flat_workload(2, 80, 1600.0);
  cfg.games = {low, high};
  cfg.predictor = [] {
    return std::make_unique<predict::LastValuePredictor>();
  };
  cfg.faults.push_back(
      fixed_fault(fault::FaultKind::kCapacityLoss, 0, 40, 80, 0.5));
  cfg.resilience.enabled = true;
  cfg.resilience.shed_low_priority = true;
  const auto shed = simulate(cfg);
  ASSERT_EQ(shed.games.size(), 2u);
  EXPECT_GT(shed.games[0].sla.shed_steps, 0u);  // Low was degraded …
  EXPECT_EQ(shed.games[1].sla.shed_steps, 0u);  // … High never was.
  // Shedding bought the high-priority game a better SLA than the low one.
  EXPECT_LE(shed.games[1].sla.downtime_steps,
            shed.games[0].sla.downtime_steps);
}

TEST(FaultSimulationTest, ResilientDynamicRecoversBoundedStaticNever) {
  // The PR's acceptance criterion: under a seeded stochastic outage the
  // resilient dynamic run returns below the |Υ| threshold within a bounded
  // number of steps after every recovery; static provisioning, having lost
  // its dedicated machines, never does.
  const auto spec = stochastic_outage(0, 150.0, 20.0, 3);

  auto dynamic_cfg = two_dc_config(600);
  dynamic_cfg.faults.push_back(spec);
  dynamic_cfg.resilience.enabled = true;
  const auto dynamic_run = simulate(dynamic_cfg);

  auto static_cfg = two_dc_config(600);
  static_cfg.mode = AllocationMode::kStatic;
  static_cfg.predictor = nullptr;
  static_cfg.faults.push_back(spec);
  const auto static_run = simulate(static_cfg);

  ASSERT_FALSE(dynamic_run.fault_events.empty());
  ASSERT_EQ(dynamic_run.fault_events, static_run.fault_events);

  const auto dynamic_lags = recovery_lag_steps(
      dynamic_run.metrics, dynamic_run.fault_events,
      dynamic_cfg.event_threshold_pct);
  const auto static_lags = recovery_lag_steps(
      static_run.metrics, static_run.fault_events,
      static_cfg.event_threshold_pct);
  ASSERT_FALSE(dynamic_lags.empty());
  ASSERT_EQ(dynamic_lags.size(), static_lags.size());
  for (const auto lag : dynamic_lags) {
    EXPECT_NE(lag, kNeverRecovered);
    EXPECT_LE(lag, 2u);
  }
  bool static_stuck = false;
  for (const auto lag : static_lags) {
    static_stuck |= (lag == kNeverRecovered);
  }
  EXPECT_TRUE(static_stuck);
}

TEST(FaultSimulationTest, StandbyReserveAbsorbsTheFirstHit) {
  // With an N+k reserve the operator holds spare full servers, so losing
  // part of the rented pool costs less shortfall than running tight.
  auto lean = two_dc_config(200);
  lean.faults.push_back(
      fixed_fault(fault::FaultKind::kCapacityLoss, 0, 100, 150, 0.1));
  lean.resilience.enabled = true;
  const auto lean_run = simulate(lean);

  auto reserved = two_dc_config(200);
  reserved.faults = lean.faults;
  reserved.resilience.enabled = true;
  reserved.resilience.standby_reserve_servers = 1.0;
  const auto reserved_run = simulate(reserved);

  EXPECT_GE(reserved_run.metrics.avg_over_allocation_pct(ResourceKind::kCpu),
            lean_run.metrics.avg_over_allocation_pct(ResourceKind::kCpu));
  EXPECT_LE(reserved_run.sla.downtime_steps, lean_run.sla.downtime_steps);
}

}  // namespace
}  // namespace mmog::core
