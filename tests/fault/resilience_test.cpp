// Retry/backoff bookkeeping of the resilience policy.

#include <gtest/gtest.h>

#include "fault/resilience.hpp"

namespace mmog::fault {
namespace {

TEST(BackoffTrackerTest, StartsClear) {
  BackoffTracker tracker(2, 16);
  EXPECT_FALSE(tracker.excluded(0, 0));
  EXPECT_EQ(tracker.failures(0), 0u);
  EXPECT_EQ(tracker.excluded_until(0), 0u);
}

TEST(BackoffTrackerTest, FirstFailureExcludesForBaseWindow) {
  BackoffTracker tracker(2, 16);
  tracker.record_failure(3, 10);
  EXPECT_EQ(tracker.failures(3), 1u);
  EXPECT_TRUE(tracker.excluded(3, 10));
  EXPECT_TRUE(tracker.excluded(3, 11));
  EXPECT_FALSE(tracker.excluded(3, 12));  // window [10, 10+2)
  EXPECT_EQ(tracker.excluded_until(3), 12u);
  // Other centers are unaffected.
  EXPECT_FALSE(tracker.excluded(4, 10));
}

TEST(BackoffTrackerTest, ConsecutiveFailuresDoubleTheWindowUpToMax) {
  BackoffTracker tracker(2, 8);
  tracker.record_failure(0, 0);    // window 2 -> until 2
  EXPECT_EQ(tracker.excluded_until(0), 2u);
  tracker.record_failure(0, 2);    // window 4 -> until 6
  EXPECT_EQ(tracker.excluded_until(0), 6u);
  tracker.record_failure(0, 6);    // window 8 -> until 14
  EXPECT_EQ(tracker.excluded_until(0), 14u);
  tracker.record_failure(0, 14);   // capped at max 8 -> until 22
  EXPECT_EQ(tracker.excluded_until(0), 22u);
  EXPECT_EQ(tracker.failures(0), 4u);
}

TEST(BackoffTrackerTest, WindowNeverShrinks) {
  BackoffTracker tracker(4, 32);
  tracker.record_failure(0, 10);   // until 14
  tracker.record_failure(0, 2);    // 2+8=10 < 14: window keeps its end
  EXPECT_EQ(tracker.excluded_until(0), 14u);
  EXPECT_EQ(tracker.failures(0), 2u);
}

TEST(BackoffTrackerTest, SuccessResetsTheCenter) {
  BackoffTracker tracker(2, 16);
  tracker.record_failure(1, 0);
  tracker.record_failure(1, 2);
  ASSERT_TRUE(tracker.excluded(1, 3));
  tracker.record_success(1);
  EXPECT_FALSE(tracker.excluded(1, 3));
  EXPECT_EQ(tracker.failures(1), 0u);
  // The next failure starts from the base window again.
  tracker.record_failure(1, 10);
  EXPECT_EQ(tracker.excluded_until(1), 12u);
}

TEST(BackoffTrackerTest, DegenerateParametersAreSanitized) {
  BackoffTracker zero_base(0, 0);  // base clamps to 1, max to base
  zero_base.record_failure(0, 5);
  EXPECT_TRUE(zero_base.excluded(0, 5));
  EXPECT_EQ(zero_base.excluded_until(0), 6u);
  zero_base.record_failure(0, 6);  // doubling capped at max == 1
  EXPECT_EQ(zero_base.excluded_until(0), 7u);
}

TEST(BackoffTrackerTest, RecordFailureReturnsTheWindowEnd) {
  // The return value feeds the decision audit trail ("excluded until step
  // N"), so it must always equal what excluded_until reports afterwards.
  BackoffTracker tracker(2, 8);
  EXPECT_EQ(tracker.record_failure(0, 10), 12u);
  EXPECT_EQ(tracker.excluded_until(0), 12u);
  EXPECT_EQ(tracker.record_failure(0, 12), 16u);  // doubled window
  EXPECT_EQ(tracker.excluded_until(0), 16u);
  // A stale failure cannot shrink the window; the return value still
  // reflects the effective end.
  EXPECT_EQ(tracker.record_failure(0, 2), 16u);
}

TEST(ResiliencePolicyTest, DefaultsAreInert) {
  const ResiliencePolicy policy;
  EXPECT_FALSE(policy.enabled);
  EXPECT_FALSE(policy.shed_low_priority);
  EXPECT_DOUBLE_EQ(policy.standby_reserve_servers, 0.0);
}

}  // namespace
}  // namespace mmog::fault
