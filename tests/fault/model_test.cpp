// Fault model: deterministic schedule generation, validation and the CLI
// spec grammar.

#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/model.hpp"
#include "fault/parse.hpp"
#include "util/units.hpp"

namespace mmog::fault {
namespace {

FaultSpec stochastic_outage(std::size_t dc = 0, std::uint64_t seed = 7) {
  FaultSpec spec;
  spec.kind = FaultKind::kOutage;
  spec.dc_index = dc;
  spec.mtbf_steps = 300.0;
  spec.mttr_steps = 30.0;
  spec.seed = seed;
  return spec;
}

TEST(FaultSpecValidationTest, AcceptsStochasticAndFixedForms) {
  EXPECT_NO_THROW(validate(stochastic_outage(), 3));
  FaultSpec fixed;
  fixed.window_from = 10;
  fixed.window_to = 20;
  EXPECT_NO_THROW(validate(fixed, 1));
}

TEST(FaultSpecValidationTest, RejectsOutOfRangeDcIndex) {
  EXPECT_THROW(validate(stochastic_outage(/*dc=*/3), 3),
               std::invalid_argument);
}

TEST(FaultSpecValidationTest, RejectsInvertedOrMissingTiming) {
  FaultSpec bad;           // neither window nor mtbf/mttr
  EXPECT_THROW(validate(bad, 1), std::invalid_argument);
  bad.window_from = 20;    // inverted window
  bad.window_to = 10;
  EXPECT_THROW(validate(bad, 1), std::invalid_argument);
  auto no_mttr = stochastic_outage();
  no_mttr.mttr_steps = 0.0;
  EXPECT_THROW(validate(no_mttr, 1), std::invalid_argument);
}

TEST(FaultSpecValidationTest, RejectsKindSpecificSeverityRanges) {
  auto cap = stochastic_outage();
  cap.kind = FaultKind::kCapacityLoss;
  cap.severity = 1.0;  // keeping everything is not a fault
  EXPECT_THROW(validate(cap, 1), std::invalid_argument);
  cap.severity = 0.5;
  EXPECT_NO_THROW(validate(cap, 1));

  auto lat = stochastic_outage();
  lat.kind = FaultKind::kLatencyDegradation;
  lat.severity = 0.0;
  EXPECT_THROW(validate(lat, 1), std::invalid_argument);
  lat.severity = 2.0;
  EXPECT_NO_THROW(validate(lat, 1));

  auto weird = stochastic_outage();
  weird.distribution = FaultDistribution::kWeibull;
  weird.weibull_shape = 0.0;
  EXPECT_THROW(validate(weird, 1), std::invalid_argument);
}

TEST(FaultGenerationTest, SameSpecSameSchedule) {
  const auto spec = stochastic_outage();
  const auto a = generate_events(spec, 5000);
  const auto b = generate_events(spec, 5000);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(FaultGenerationTest, SeedAndTargetDecorrelateSchedules) {
  const auto base = generate_events(stochastic_outage(0, 7), 5000);
  const auto reseeded = generate_events(stochastic_outage(0, 8), 5000);
  const auto retargeted = generate_events(stochastic_outage(1, 7), 5000);
  EXPECT_NE(base, reseeded);
  // Same seed on another center must not replay the same timing.
  ASSERT_FALSE(base.empty());
  ASSERT_FALSE(retargeted.empty());
  EXPECT_NE(base.front().from_step, retargeted.front().from_step);
}

TEST(FaultGenerationTest, EventsAreWellFormedAndInsideHorizon) {
  const std::size_t horizon = 5000;
  for (const auto dist :
       {FaultDistribution::kExponential, FaultDistribution::kWeibull}) {
    auto spec = stochastic_outage();
    spec.distribution = dist;
    spec.weibull_shape = 0.7;
    const auto events = generate_events(spec, horizon);
    ASSERT_FALSE(events.empty());
    for (const auto& ev : events) {
      EXPECT_LT(ev.from_step, ev.to_step);
      EXPECT_LE(ev.to_step, horizon);
      EXPECT_EQ(ev.dc_index, spec.dc_index);
      EXPECT_EQ(ev.kind, spec.kind);
    }
  }
}

TEST(FaultGenerationTest, MeanDurationTracksMttr) {
  auto spec = stochastic_outage();
  spec.mtbf_steps = 50.0;
  spec.mttr_steps = 20.0;
  const auto events = generate_events(spec, 200000);
  ASSERT_GT(events.size(), 100u);
  double total = 0.0;
  for (const auto& ev : events) {
    total += static_cast<double>(ev.to_step - ev.from_step);
  }
  const double mean = total / static_cast<double>(events.size());
  EXPECT_GT(mean, 0.5 * spec.mttr_steps);
  EXPECT_LT(mean, 2.0 * spec.mttr_steps);
}

TEST(FaultGenerationTest, FixedWindowIsClampedToHorizon) {
  FaultSpec spec;
  spec.window_from = 10;
  spec.window_to = 500;
  const auto events = generate_events(spec, 100);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].from_step, 10u);
  EXPECT_EQ(events[0].to_step, 100u);
  EXPECT_TRUE(generate_events(spec, 10).empty());  // starts at the horizon
}

TEST(FaultScheduleTest, QueriesReflectActiveWindows) {
  std::vector<FaultSpec> specs;
  FaultSpec outage;
  outage.window_from = 10;
  outage.window_to = 20;
  specs.push_back(outage);
  FaultSpec cap;
  cap.kind = FaultKind::kCapacityLoss;
  cap.dc_index = 1;
  cap.severity = 0.25;
  cap.window_from = 5;
  cap.window_to = 15;
  specs.push_back(cap);
  FaultSpec flap;
  flap.kind = FaultKind::kGrantFlap;
  flap.dc_index = 1;
  flap.window_from = 12;
  flap.window_to = 14;
  specs.push_back(flap);
  FaultSpec lat;
  lat.kind = FaultKind::kLatencyDegradation;
  lat.dc_index = 2;
  lat.severity = 2.0;
  lat.window_from = 0;
  lat.window_to = 30;
  specs.push_back(lat);

  const auto schedule = FaultSchedule::generate(specs, 3, 100);
  EXPECT_FALSE(schedule.empty());
  EXPECT_EQ(schedule.events().size(), 4u);

  EXPECT_TRUE(schedule.outage_at(0, 10));
  EXPECT_TRUE(schedule.outage_at(0, 19));
  EXPECT_FALSE(schedule.outage_at(0, 20));
  EXPECT_FALSE(schedule.outage_at(1, 10));
  EXPECT_TRUE(schedule.grants_blocked_at(0, 15));

  EXPECT_DOUBLE_EQ(schedule.capacity_fraction_at(1, 7), 0.25);
  EXPECT_DOUBLE_EQ(schedule.capacity_fraction_at(1, 20), 1.0);
  EXPECT_TRUE(schedule.flap_at(1, 12));
  EXPECT_TRUE(schedule.grants_blocked_at(1, 12));
  EXPECT_FALSE(schedule.grants_blocked_at(1, 20));

  EXPECT_EQ(schedule.latency_penalty_at(2, 5), 2u);
  EXPECT_EQ(schedule.latency_penalty_at(2, 30), 0u);
  // Out-of-range queries degrade to "healthy", never crash.
  EXPECT_FALSE(schedule.outage_at(99, 10));
  EXPECT_DOUBLE_EQ(schedule.capacity_fraction_at(99, 10), 1.0);
}

TEST(FaultScheduleTest, EventsAreSortedByStart) {
  auto early = stochastic_outage(0, 3);
  auto late = stochastic_outage(1, 4);
  const auto schedule = FaultSchedule::generate({late, early}, 2, 5000);
  const auto& events = schedule.events();
  ASSERT_GT(events.size(), 1u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].from_step, events[i].from_step);
  }
}

TEST(FaultScheduleTest, LegacyFixedEventsAreClampedOrDropped) {
  const std::vector<FaultEvent> fixed = {
      {FaultKind::kOutage, 0, 50, 500, 1.0},
      {FaultKind::kOutage, 1, 300, 400, 1.0},  // beyond the horizon
  };
  const auto schedule = FaultSchedule::generate({}, 2, 100, fixed);
  ASSERT_EQ(schedule.events().size(), 1u);
  EXPECT_EQ(schedule.events()[0].to_step, 100u);
  EXPECT_THROW(
      FaultSchedule::generate({}, 2, 100,
                              {{FaultKind::kOutage, 5, 1, 2, 1.0}}),
      std::invalid_argument);
}

TEST(FaultParseTest, ParsesDurationsWithSuffixes) {
  // One step is 120 s.
  EXPECT_DOUBLE_EQ(parse_duration_steps("90"), 90.0);
  EXPECT_DOUBLE_EQ(parse_duration_steps("240s"), 2.0);
  EXPECT_DOUBLE_EQ(parse_duration_steps("30m"), 15.0);
  EXPECT_DOUBLE_EQ(parse_duration_steps("2h"), 60.0);
  EXPECT_DOUBLE_EQ(parse_duration_steps("4d"), 4.0 * 720.0);
  EXPECT_DOUBLE_EQ(parse_duration_steps("1w"), 7.0 * 720.0);
  EXPECT_THROW(parse_duration_steps("abc"), std::invalid_argument);
  EXPECT_THROW(parse_duration_steps(""), std::invalid_argument);
  EXPECT_THROW(parse_duration_steps("0"), std::invalid_argument);
  EXPECT_DOUBLE_EQ(parse_duration_steps("0", /*allow_zero=*/true), 0.0);
}

TEST(FaultParseTest, ParsesTheReadmeExample) {
  const auto spec = parse_fault_spec("outage:dc=2,mtbf=4d,mttr=2h,seed=9");
  EXPECT_EQ(spec.kind, FaultKind::kOutage);
  EXPECT_EQ(spec.dc_index, 2u);
  EXPECT_DOUBLE_EQ(spec.mtbf_steps, 4.0 * 720.0);
  EXPECT_DOUBLE_EQ(spec.mttr_steps, 60.0);
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_FALSE(spec.fixed_window());
}

TEST(FaultParseTest, ParsesKindSpecificKeysAndFixedWindows) {
  const auto cap = parse_fault_spec("capacity:dc=1,from=0,to=10,keep=0.3");
  EXPECT_EQ(cap.kind, FaultKind::kCapacityLoss);
  EXPECT_TRUE(cap.fixed_window());
  EXPECT_EQ(cap.window_from, 0u);
  EXPECT_EQ(cap.window_to, 10u);
  EXPECT_DOUBLE_EQ(cap.severity, 0.3);

  const auto lat =
      parse_fault_spec("latency:dc=0,mtbf=1d,mttr=1h,classes=2");
  EXPECT_EQ(lat.kind, FaultKind::kLatencyDegradation);
  EXPECT_DOUBLE_EQ(lat.severity, 2.0);

  const auto wb =
      parse_fault_spec("flap:dc=0,mtbf=1d,mttr=2m,dist=weibull,shape=0.8");
  EXPECT_EQ(wb.distribution, FaultDistribution::kWeibull);
  EXPECT_DOUBLE_EQ(wb.weibull_shape, 0.8);
}

TEST(FaultParseTest, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_fault_spec("outage"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("meteor:dc=0,mtbf=1d,mttr=1h"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("outage:mtbf=1d,mttr=1h"),  // no dc
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("outage:dc=0"),  // no timing
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("outage:dc=0,wat=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("outage:dc=0,mtbf"), std::invalid_argument);
}

TEST(FaultParseTest, ParsesSemicolonSeparatedLists) {
  EXPECT_TRUE(parse_fault_specs("").empty());
  const auto specs = parse_fault_specs(
      "outage:dc=0,mtbf=1d,mttr=1h;flap:dc=1,from=5,to=9");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].kind, FaultKind::kOutage);
  EXPECT_EQ(specs[1].kind, FaultKind::kGrantFlap);
}

TEST(FaultParseTest, DescribeRoundTrips) {
  for (const auto* text :
       {"outage:dc=2,mtbf=4d,mttr=2h,seed=9",
        "capacity:dc=1,from=0,to=10,keep=0.3",
        "latency:dc=0,mtbf=1d,mttr=1h,classes=2"}) {
    const auto spec = parse_fault_spec(text);
    const auto reparsed = parse_fault_spec(describe(spec));
    EXPECT_EQ(reparsed.kind, spec.kind);
    EXPECT_EQ(reparsed.dc_index, spec.dc_index);
    EXPECT_DOUBLE_EQ(reparsed.severity, spec.severity);
    EXPECT_EQ(reparsed.window_from, spec.window_from);
    EXPECT_EQ(reparsed.window_to, spec.window_to);
  }
}

}  // namespace
}  // namespace mmog::fault
