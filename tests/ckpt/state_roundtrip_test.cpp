#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>
#include <sstream>
#include <vector>

#include "core/metrics.hpp"
#include "dc/reservation.hpp"
#include "fault/resilience.hpp"
#include "predict/ar.hpp"
#include "predict/holt_winters.hpp"
#include "predict/neural.hpp"
#include "predict/simple.hpp"
#include "util/timeseries.hpp"

// The serialization contract behind checkpoint/restore: for every stateful
// component, save -> load into a fresh instance -> save must be
// bit-identical, and the restored instance must behave bit-identically
// from that point on. EXPECT_EQ on doubles here is deliberate: byte-level
// replay is exactly the guarantee under test.

namespace mmog {
namespace {

std::vector<double> wave(std::size_t n) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double phase = 2.0 * std::numbers::pi * static_cast<double>(t) / 31.0;
    out.push_back(700.0 + 450.0 * std::sin(phase) +
                  17.0 * std::cos(3.0 * phase));
  }
  return out;
}

/// Feeds `warmup` samples, snapshots, loads into a fresh instance, then
/// verifies (a) save->load->save byte-identity and (b) both instances stay
/// in lockstep over `extra` further samples.
void expect_roundtrip(predict::Predictor& original, std::size_t warmup = 40,
                      std::size_t extra = 25) {
  const auto series = wave(warmup + extra);
  for (std::size_t t = 0; t < warmup; ++t) original.observe(series[t]);

  std::vector<double> saved;
  original.save_state(saved);
  auto restored = original.make_fresh();
  restored->load_state(saved);

  std::vector<double> saved_again;
  restored->save_state(saved_again);
  ASSERT_EQ(saved.size(), saved_again.size()) << original.name();
  for (std::size_t i = 0; i < saved.size(); ++i) {
    EXPECT_EQ(saved[i], saved_again[i])
        << original.name() << " state[" << i << "]";
  }

  for (std::size_t t = warmup; t < warmup + extra; ++t) {
    EXPECT_EQ(original.predict(), restored->predict())
        << original.name() << " diverged at step " << t;
    original.observe(series[t]);
    restored->observe(series[t]);
  }
  EXPECT_EQ(original.predict(), restored->predict()) << original.name();
}

TEST(PredictorRoundtrip, LastValue) {
  predict::LastValuePredictor p;
  expect_roundtrip(p);
}

TEST(PredictorRoundtrip, Average) {
  predict::AveragePredictor p;
  expect_roundtrip(p);
}

TEST(PredictorRoundtrip, MovingAverage) {
  predict::MovingAveragePredictor p(5);
  expect_roundtrip(p);
}

TEST(PredictorRoundtrip, MovingAveragePartialWindow) {
  // Fewer observations than the window: the payload must carry the short
  // history, not a zero-padded window.
  predict::MovingAveragePredictor p(7);
  expect_roundtrip(p, 3, 20);
}

TEST(PredictorRoundtrip, SlidingWindowMedian) {
  predict::SlidingWindowMedianPredictor p(5);
  expect_roundtrip(p);
}

TEST(PredictorRoundtrip, ExponentialSmoothing) {
  predict::ExponentialSmoothingPredictor p(0.5);
  expect_roundtrip(p);
}

TEST(PredictorRoundtrip, ExponentialSmoothingUnprimed) {
  predict::ExponentialSmoothingPredictor p(0.3);
  expect_roundtrip(p, 0, 10);
}

TEST(PredictorRoundtrip, Holt) {
  predict::HoltPredictor p;
  expect_roundtrip(p);
}

TEST(PredictorRoundtrip, HoltWinters) {
  predict::HoltWintersPredictor p;
  expect_roundtrip(p);
}

TEST(PredictorRoundtrip, HoltWintersMidFirstSeason) {
  // Mid first-season snapshot: the payload carries the partial first-season
  // buffer and no seasonal components yet.
  predict::HoltWintersPredictor p;
  expect_roundtrip(p, 10, 40);
}

TEST(PredictorRoundtrip, Drift) {
  predict::DriftPredictor p;
  expect_roundtrip(p);
}

TEST(PredictorRoundtrip, Ar) {
  const auto series = wave(200);
  std::vector<util::TimeSeries> histories;
  histories.emplace_back(util::kSampleStepSeconds, series);
  auto model = std::make_shared<const predict::ArModel>(
      predict::ArModel::fit(4, histories));
  predict::ArPredictor p(model);
  expect_roundtrip(p);
}

TEST(PredictorRoundtrip, ArWrappedRing) {
  // Enough observations that the ring buffer has wrapped: restoring
  // re-pushes oldest-first, normalizing the split, and predictions must
  // not care.
  const auto series = wave(200);
  std::vector<util::TimeSeries> histories;
  histories.emplace_back(util::kSampleStepSeconds, series);
  auto model = std::make_shared<const predict::ArModel>(
      predict::ArModel::fit(3, histories));
  predict::ArPredictor p(model);
  expect_roundtrip(p, 100, 40);
}

TEST(PredictorRoundtrip, Neural) {
  const auto series = wave(300);
  util::TimeSeries history(util::kSampleStepSeconds);
  for (const double v : series) history.push_back(v);
  predict::NeuralConfig cfg;
  cfg.train.max_eras = 10;
  auto model = std::make_shared<const predict::NeuralModel>(
      predict::NeuralModel::fit(cfg, history));
  predict::NeuralPredictor p(model);
  expect_roundtrip(p);
}

TEST(PredictorRoundtrip, RejectsOversizedPayload) {
  predict::MovingAveragePredictor p(3);
  // n = 5 claims more values than the window holds.
  EXPECT_THROW(p.load_state(std::vector<double>{5, 1, 2, 3, 4, 5}),
               std::invalid_argument);
  predict::LastValuePredictor last;
  EXPECT_THROW(last.load_state(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(NeuralModelSerialization, SaveLoadSaveByteIdentical) {
  const auto series = wave(300);
  util::TimeSeries history(util::kSampleStepSeconds);
  for (const double v : series) history.push_back(v);
  predict::NeuralConfig cfg;
  cfg.train.max_eras = 10;
  const auto model = predict::NeuralModel::fit(cfg, history);

  std::ostringstream first;
  model.save(first);
  std::istringstream in(first.str());
  const auto reloaded = predict::NeuralModel::load(in);
  std::ostringstream second;
  reloaded.save(second);
  EXPECT_EQ(first.str(), second.str());

  // And the reloaded model predicts bit-identically.
  const std::vector<double> recent(series.end() - 10, series.end());
  EXPECT_EQ(model.predict_next(recent), reloaded.predict_next(recent));
}

TEST(NeuralModelSerialization, RejectsGarbage) {
  std::istringstream bad("not-a-model\n1 2 3\n");
  EXPECT_THROW(predict::NeuralModel::load(bad), std::runtime_error);
}

TEST(BackoffTrackerRoundtrip, EntriesRestoreExactly) {
  fault::BackoffTracker a(/*base_steps=*/2, /*max_steps=*/64);
  a.record_failure(3, /*step=*/10);
  a.record_failure(3, /*step=*/12);
  a.record_failure(7, /*step=*/12);
  a.record_failure(3, /*step=*/20);
  const auto entries = a.entries();
  ASSERT_EQ(entries.size(), 2u);

  fault::BackoffTracker b(2, 64);
  b.restore_entries(entries);
  const auto entries_b = b.entries();
  ASSERT_EQ(entries.size(), entries_b.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].dc, entries_b[i].dc);
    EXPECT_EQ(entries[i].failures, entries_b[i].failures);
    EXPECT_EQ(entries[i].until, entries_b[i].until);
  }
  // Identical behavior going forward: exclusion windows and the doubling
  // schedule both continue from the restored counts.
  for (std::size_t step = 0; step < 80; ++step) {
    EXPECT_EQ(a.excluded(3, step), b.excluded(3, step)) << step;
    EXPECT_EQ(a.excluded(7, step), b.excluded(7, step)) << step;
  }
  a.record_failure(3, 30);
  b.record_failure(3, 30);
  for (std::size_t step = 0; step < 200; ++step) {
    EXPECT_EQ(a.excluded(3, step), b.excluded(3, step)) << step;
  }
}

TEST(SlaTrackerRoundtrip, StateRestoreExactly) {
  core::SlaTracker a;
  const bool pattern[] = {false, true,  true, false, false, true, false,
                          true,  true,  true, false, false, true, false,
                          false, false, true, true,  false, true};
  for (const bool breached : pattern) a.observe(breached, false);

  core::SlaTracker b;
  b.restore(a.state());

  // Same stats now and after any further shared observations.
  const auto sa = a.stats();
  const auto sb = b.stats();
  EXPECT_EQ(sa.steps, sb.steps);
  EXPECT_EQ(sa.downtime_steps, sb.downtime_steps);
  EXPECT_EQ(sa.breach_episodes, sb.breach_episodes);
  EXPECT_EQ(sa.recoveries, sb.recoveries);
  EXPECT_EQ(sa.longest_breach_steps, sb.longest_breach_steps);
  EXPECT_EQ(sa.mean_time_to_recover_steps, sb.mean_time_to_recover_steps);
  EXPECT_EQ(sa.max_time_to_recover_steps, sb.max_time_to_recover_steps);
  for (const bool breached : {true, true, false, true, false, false}) {
    a.observe(breached, breached);
    b.observe(breached, breached);
    EXPECT_EQ(a.stats().downtime_steps, b.stats().downtime_steps);
    EXPECT_EQ(a.stats().mean_time_to_recover_steps,
              b.stats().mean_time_to_recover_steps);
  }
}

TEST(ReservationCalendarRoundtrip, BookingsRestoreExactly) {
  util::ResourceVector cap;
  cap.v = {16.0, 64.0, 100.0, 100.0};
  dc::ReservationCalendar a(cap, /*horizon_steps=*/50);
  util::ResourceVector amount;
  amount.v = {2.0, 8.0, 10.0, 10.0};
  const auto id0 = a.book(amount, 0, 10);
  const auto id1 = a.book(amount, 5, 25);
  const auto id2 = a.book(amount, 20, 50);
  ASSERT_TRUE(id0 && id1 && id2);
  ASSERT_TRUE(a.cancel(*id1));

  auto b = dc::ReservationCalendar::restore(cap, a.horizon(), a.bookings());

  // Same bookings (ids, intervals, active flags) and same per-step free
  // capacity — cancelled bookings keep their slots so ids stay stable.
  const auto ba = a.bookings();
  const auto bb = b.bookings();
  ASSERT_EQ(ba.size(), bb.size());
  for (std::size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(ba[i].from, bb[i].from);
    EXPECT_EQ(ba[i].to, bb[i].to);
    EXPECT_EQ(ba[i].active, bb[i].active);
    for (std::size_t r = 0; r < util::kResourceKinds; ++r) {
      EXPECT_EQ(ba[i].amount.v[r], bb[i].amount.v[r]);
    }
  }
  for (std::size_t step = 0; step < a.horizon(); ++step) {
    const auto fa = a.available_at(step);
    const auto fb = b.available_at(step);
    for (std::size_t r = 0; r < util::kResourceKinds; ++r) {
      EXPECT_EQ(fa.v[r], fb.v[r]) << "step " << step;
    }
  }
  // Future operations agree too: cancelling a restored booking frees the
  // same capacity.
  EXPECT_TRUE(a.cancel(*id2));
  EXPECT_TRUE(b.cancel(*id2));
  EXPECT_EQ(a.active_bookings(), b.active_bookings());
  EXPECT_EQ(a.earliest_fit(amount, 0, 30), b.earliest_fit(amount, 0, 30));
}

TEST(ReservationCalendarRoundtrip, RejectsBookingOutsideHorizon) {
  util::ResourceVector cap;
  cap.v = {4.0, 4.0, 4.0, 4.0};
  dc::ReservationCalendar::BookingView view;
  view.amount = cap;
  view.from = 0;
  view.to = 20;  // past the 10-step horizon
  view.active = true;
  EXPECT_THROW(dc::ReservationCalendar::restore(cap, 10, {view}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mmog
