#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/run_report.hpp"
#include "core/simulation.hpp"
#include "fault/parse.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"
#include "predict/simple.hpp"

// The checkpoint/restore invariant end to end, in process: restoring at any
// step k and running to the end yields a RunReport and a decision-audit
// trail identical to the uninterrupted run — at any thread count, and with
// the snapshot round-tripped through the serialized format (so what is
// proven is the on-disk artifact, not the in-memory struct).

namespace mmog::core {
namespace {

trace::WorldTrace sine_workload(std::size_t groups, std::size_t steps) {
  trace::WorldTrace world;
  trace::RegionalTrace region;
  region.name = "Europe";
  for (std::size_t g = 0; g < groups; ++g) {
    trace::ServerGroupTrace group;
    group.name = "G";
    group.name += std::to_string(g);
    group.players = util::TimeSeries(util::kSampleStepSeconds);
    for (std::size_t t = 0; t < steps; ++t) {
      const double phase =
          2.0 * std::numbers::pi * static_cast<double>(t + 37 * g) / 720.0;
      group.players.push_back(500.0 + 450.0 * (1.0 - std::cos(phase)));
    }
    region.groups.push_back(std::move(group));
  }
  world.regions.push_back(std::move(region));
  return world;
}

constexpr std::size_t kSteps = 240;

/// Two games, several groups, one fault process, resilience on: every
/// checkpointed section (backoff entries, per-game SLA, fault schedule,
/// audit causes) is exercised, not just the happy path.
SimulationConfig test_config(std::size_t threads) {
  SimulationConfig cfg;
  dc::DataCenterSpec d;
  d.name = "NL";
  d.country = "Netherlands";
  d.continent = "Europe";
  d.location = {52.37, 4.90};
  d.machines = 30;
  d.policy = dc::HostingPolicy::preset(1);
  dc::DataCenterSpec d2 = d;
  d2.name = "DE";
  d2.country = "Germany";
  d2.location = {50.11, 8.68};
  d2.machines = 20;
  cfg.datacenters = {d, d2};
  GameSpec game;
  game.name = "TestGame";
  game.load = LoadModel{UpdateModel::kQuadratic, 2000.0};
  game.latency_tolerance = dc::DistanceClass::kVeryFar;
  game.workload = sine_workload(4, kSteps);
  cfg.games.push_back(std::move(game));
  GameSpec second;
  second.name = "SecondGame";
  second.load = LoadModel{UpdateModel::kQuadratic, 2000.0};
  second.latency_tolerance = dc::DistanceClass::kVeryFar;
  second.workload = sine_workload(3, kSteps);
  cfg.games.push_back(std::move(second));
  cfg.predictor = [] {
    return std::make_unique<predict::LastValuePredictor>();
  };
  cfg.faults = fault::parse_fault_specs("outage:dc=1,mtbf=8h,mttr=1h,seed=9");
  cfg.resilience.enabled = true;
  cfg.threads = threads;
  return cfg;
}

struct RunOutput {
  obs::RunReport report;
  std::string audit_jsonl;
};

RunOutput run_to_end(SimulationConfig cfg,
                     const CheckpointState* restore_from = nullptr,
                     std::vector<CheckpointState>* captured = nullptr,
                     std::size_t checkpoint_every = 0) {
  obs::Recorder rec(obs::TraceLevel::kOff);
  rec.enable_audit();
  cfg.recorder = &rec;
  cfg.restore_from = restore_from;
  if (captured != nullptr) {
    cfg.checkpoint_every_steps = checkpoint_every;
    cfg.checkpoint_sink = [captured](const CheckpointState& st) {
      captured->push_back(st);
    };
  }
  const auto result = simulate(cfg);
  return {make_run_report(cfg, result, "test", "run", 0.0),
          rec.audit()->to_jsonl()};
}

/// Round-trips a captured snapshot through the serialized format, as a real
/// restore would read it off disk.
CheckpointState through_format(const CheckpointState& st) {
  ckpt::CheckpointFile file;
  file.state = st;
  return ckpt::parse_jsonl(ckpt::to_jsonl(file)).state;
}

std::string notes_of(const obs::DiffResult& diff) {
  std::string joined;
  for (const auto& note : diff.notes) joined += note + '\n';
  return joined;
}

class RestoreIdentityTest : public testing::Test {
 protected:
  // One reference run (threads=1), capturing a checkpoint every 20 steps,
  // shared by all restore points.
  static void SetUpTestSuite() {
    captured_ = new std::vector<CheckpointState>();
    reference_ = new RunOutput(
        run_to_end(test_config(1), nullptr, captured_, 20));
  }
  static void TearDownTestSuite() {
    delete captured_;
    delete reference_;
    captured_ = nullptr;
    reference_ = nullptr;
  }

  static const CheckpointState& snapshot_at(std::size_t step) {
    for (const auto& st : *captured_) {
      if (st.next_step == step) return st;
    }
    ADD_FAILURE() << "no checkpoint captured at step " << step;
    return captured_->front();
  }

  static void expect_identical_from(std::size_t step, std::size_t threads) {
    const auto restored = through_format(snapshot_at(step));
    const auto resumed = run_to_end(test_config(threads), &restored);
    const auto report_diff =
        obs::diff_reports(reference_->report, resumed.report);
    EXPECT_FALSE(report_diff.regression())
        << "k=" << step << " threads=" << threads << "\n"
        << notes_of(report_diff);
    EXPECT_EQ(reference_->audit_jsonl, resumed.audit_jsonl)
        << "k=" << step << " threads=" << threads;
  }

  static std::vector<CheckpointState>* captured_;
  static RunOutput* reference_;
};

std::vector<CheckpointState>* RestoreIdentityTest::captured_ = nullptr;
RunOutput* RestoreIdentityTest::reference_ = nullptr;

TEST_F(RestoreIdentityTest, CaptureIsObservational) {
  // A run with the checkpoint sink enabled must be byte-identical to one
  // without it.
  const auto plain = run_to_end(test_config(1));
  const auto diff = obs::diff_reports(reference_->report, plain.report);
  EXPECT_FALSE(diff.regression()) << notes_of(diff);
  EXPECT_EQ(reference_->audit_jsonl, plain.audit_jsonl);
  // And checkpoints were actually captured where expected.
  ASSERT_FALSE(captured_->empty());
  EXPECT_EQ(captured_->front().next_step, 20u);
  EXPECT_EQ(captured_->back().next_step, kSteps);
}

TEST_F(RestoreIdentityTest, EarlyRestoreSingleThread) {
  expect_identical_from(20, 1);
}

TEST_F(RestoreIdentityTest, EarlyRestoreFourThreads) {
  expect_identical_from(20, 4);
}

TEST_F(RestoreIdentityTest, MidRestoreSingleThread) {
  expect_identical_from(120, 1);
}

TEST_F(RestoreIdentityTest, MidRestoreFourThreads) {
  expect_identical_from(120, 4);
}

TEST_F(RestoreIdentityTest, LateRestoreSingleThread) {
  expect_identical_from(220, 1);
}

TEST_F(RestoreIdentityTest, LateRestoreFourThreads) {
  expect_identical_from(220, 4);
}

TEST_F(RestoreIdentityTest, RefusesDivergentConfiguration) {
  // The restore guard: resuming under a configuration that would expand a
  // different fault schedule (or different geometry) must throw, not
  // silently diverge.
  const auto restored = through_format(snapshot_at(120));

  auto other_faults = test_config(1);
  other_faults.faults =
      fault::parse_fault_specs("outage:dc=1,mtbf=8h,mttr=1h,seed=10");
  EXPECT_THROW(run_to_end(std::move(other_faults), &restored),
               std::invalid_argument);

  auto fewer_centers = test_config(1);
  fewer_centers.datacenters.pop_back();
  EXPECT_THROW(run_to_end(std::move(fewer_centers), &restored),
               std::invalid_argument);
}

TEST_F(RestoreIdentityTest, StopFlagEmitsFinalCheckpointAndInterrupts) {
  // Cooperative stop: with the flag already set, the loop completes exactly
  // one step, hands a final checkpoint to the sink, and reports
  // `interrupted`; restoring that checkpoint and finishing matches the
  // uninterrupted reference.
  auto cfg = test_config(1);
  std::atomic<bool> stop{true};
  std::vector<CheckpointState> final_snaps;
  obs::Recorder rec(obs::TraceLevel::kOff);
  rec.enable_audit();
  cfg.recorder = &rec;
  cfg.stop_flag = &stop;
  cfg.checkpoint_sink = [&final_snaps](const CheckpointState& st) {
    final_snaps.push_back(st);
  };
  const auto result = simulate(cfg);
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.steps, 1u);
  ASSERT_EQ(final_snaps.size(), 1u);
  EXPECT_EQ(final_snaps[0].next_step, 1u);

  const auto restored = through_format(final_snaps[0]);
  const auto resumed = run_to_end(test_config(1), &restored);
  const auto diff = obs::diff_reports(reference_->report, resumed.report);
  EXPECT_FALSE(diff.regression()) << notes_of(diff);
  EXPECT_EQ(reference_->audit_jsonl, resumed.audit_jsonl);
}

}  // namespace
}  // namespace mmog::core
