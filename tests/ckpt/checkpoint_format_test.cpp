#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "ckpt/checkpoint.hpp"

// The on-disk checkpoint contract: byte-stable serialization, validation
// that rejects every way a file can be damaged (never a partial load), the
// atomic two-generation write, and path-annotated diffs.

namespace mmog {
namespace {

namespace fs = std::filesystem;

/// A small but fully populated checkpoint: every section non-empty, plus
/// the encoding edge cases (an allocation that never releases, counters and
/// extras with punctuation-heavy keys).
ckpt::CheckpointFile sample_file() {
  ckpt::CheckpointFile f;
  auto& st = f.state;
  st.next_step = 42;
  st.steps = 100;
  st.next_allocation_id = 7;
  st.unplaced_cpu_unit_steps = 3.25;
  st.total_cost = 1234.5625;

  fault::FaultEvent ev;
  ev.kind = fault::FaultKind::kOutage;
  ev.dc_index = 1;
  ev.from_step = 50;
  ev.to_step = 60;
  ev.severity = 1.0;
  st.fault_events.push_back(ev);

  core::LedgerCheckpoint ledger;
  ledger.in_use.v = {2.5, 8.0, 1.0, 1.0};
  ledger.capacity_fraction = 0.75;
  ledger.cpu_sum = 99.125;
  ledger.cpu_peak = 4.5;
  ledger.origin_sum["Europe"] = 77.25;
  st.ledgers.push_back(ledger);
  st.ledgers.push_back(core::LedgerCheckpoint{});

  core::UnitCheckpoint unit;
  unit.game_id = 0;
  unit.region = "Europe";
  unit.allocated.v = {2.5, 8.0, 1.0, 1.0};
  dc::Allocation alloc;
  alloc.id = 3;
  alloc.dc_index = 0;
  alloc.game_id = 0;
  alloc.group_id = 2;
  alloc.region_id = 1;
  alloc.amount.v = {2.5, 8.0, 1.0, 1.0};
  alloc.start_step = 40;
  alloc.usable_step = 40;
  alloc.earliest_release_step = 45;
  unit.allocations.push_back(alloc);
  dc::Allocation forever = alloc;
  forever.id = 4;
  forever.earliest_release_step = SIZE_MAX;  // static-mode "never release"
  unit.allocations.push_back(forever);
  unit.backoff.push_back({.dc = 1, .failures = 2, .until = 44});
  core::GroupCheckpoint group;
  group.predictor = "Last value";
  group.state = {512.0};
  group.last_prediction = 512.0;
  group.abs_error_ewma = 3.5;
  unit.groups.push_back(group);
  st.units.push_back(unit);

  core::StepMetrics m;
  m.allocated.v = {2.5, 8.0, 1.0, 1.0};
  m.used.v = {2.0, 6.0, 0.5, 0.5};
  m.shortfall.v = {0.0, 0.0, 0.0, 0.0};
  m.machines = 3;
  st.step_metrics.push_back(m);
  st.game_step_metrics.push_back({m});

  st.overall_sla.stats.steps = 42;
  st.overall_sla.stats.downtime_steps = 2;
  st.overall_sla.stats.breach_episodes = 1;
  st.overall_sla.stats.recoveries = 1;
  st.overall_sla.stats.longest_breach_steps = 2;
  st.overall_sla.streak = 0;
  st.overall_sla.recovered_steps_sum = 2.0;
  st.game_sla.push_back(st.overall_sla);

  st.counters["sim.steps"] = 42.0;
  st.counters["match.offers_rejected"] = 5.0;

  obs::AuditRecord rec;
  rec.seq = 0;
  rec.step = 0;
  rec.kind = obs::AuditKind::kMatch;
  rec.game = 0;
  rec.region = "Europe";
  rec.predicted_players = 512.0;
  rec.actual_players = 500.0;
  rec.demand_cpu = 2.5;
  rec.granted_cpu = 2.5;
  rec.dc = 0;
  rec.offers.push_back(
      {.dc = 0, .outcome = obs::OfferOutcome::kGranted, .cpu = 2.5});
  st.audit_records.push_back(rec);

  f.extras["mode"] = "dynamic";
  f.extras["in"] = "traces/demo.csv";
  return f;
}

/// Replaces the footer with a freshly computed one — how a hypothetical
/// *consistent* file with tampered content would look (exercises semantic
/// validation past the checksum).
std::string refooter(std::string body_without_footer) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "{\"footer\":\"fnv1a64\",\"hash\":\"%016llx\"}\n",
                static_cast<unsigned long long>(
                    ckpt::fnv1a64(body_without_footer)));
  return body_without_footer + buf;
}

std::string strip_footer(const std::string& text) {
  // Drop the final (footer) line; the text always ends in '\n'.
  const auto last_nl = text.rfind('\n', text.size() - 2);
  return text.substr(0, last_nl + 1);
}

std::string write_file(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << text;
  return path.string();
}

fs::path test_dir() {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  auto dir = fs::path(testing::TempDir()) /
             (std::string("mmog_ckpt_") + info->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(CheckpointFormat, SaveLoadSaveByteIdentical) {
  const auto file = sample_file();
  const auto text = ckpt::to_jsonl(file);
  const auto parsed = ckpt::parse_jsonl(text);
  EXPECT_EQ(text, ckpt::to_jsonl(parsed));
  EXPECT_EQ(parsed.state.next_step, 42u);
  EXPECT_EQ(parsed.state.steps, 100u);
  EXPECT_EQ(parsed.extras.at("mode"), "dynamic");
}

TEST(CheckpointFormat, NeverReleaseStepSurvives) {
  // SIZE_MAX does not survive a JSON double; the format encodes it as -1
  // and must give back exactly SIZE_MAX.
  const auto parsed = ckpt::parse_jsonl(ckpt::to_jsonl(sample_file()));
  ASSERT_EQ(parsed.state.units.size(), 1u);
  ASSERT_EQ(parsed.state.units[0].allocations.size(), 2u);
  EXPECT_EQ(parsed.state.units[0].allocations[0].earliest_release_step, 45u);
  EXPECT_EQ(parsed.state.units[0].allocations[1].earliest_release_step,
            SIZE_MAX);
}

TEST(CheckpointFormat, RejectsBadMagic) {
  auto text = ckpt::to_jsonl(sample_file());
  const auto pos = text.find("mmog-ckpt");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 9, "mmog-XXXX");
  EXPECT_THROW(ckpt::parse_jsonl(refooter(strip_footer(text))),
               ckpt::CheckpointError);
}

TEST(CheckpointFormat, RejectsWrongVersion) {
  auto text = ckpt::to_jsonl(sample_file());
  const auto pos = text.find("\"version\":1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 11, "\"version\":2");
  // Footer recomputed, so only the version check can reject it.
  EXPECT_THROW(ckpt::parse_jsonl(refooter(strip_footer(text))),
               ckpt::CheckpointError);
}

TEST(CheckpointFormat, RejectsBitFlip) {
  auto text = ckpt::to_jsonl(sample_file());
  text[text.size() / 2] ^= 0x01;
  EXPECT_THROW(ckpt::parse_jsonl(text), ckpt::CheckpointError);
}

TEST(CheckpointFormat, RejectsTruncation) {
  const auto text = ckpt::to_jsonl(sample_file());
  // Torn anywhere — mid-line, at a line boundary, before the footer — the
  // file must be rejected, never partially loaded.
  EXPECT_THROW(ckpt::parse_jsonl(text.substr(0, text.size() - 7)),
               ckpt::CheckpointError);
  EXPECT_THROW(ckpt::parse_jsonl(strip_footer(text)), ckpt::CheckpointError);
  EXPECT_THROW(ckpt::parse_jsonl(text.substr(0, text.size() / 3)),
               ckpt::CheckpointError);
  EXPECT_THROW(ckpt::parse_jsonl(""), ckpt::CheckpointError);
}

TEST(CheckpointFormat, RejectsMissingSection) {
  const auto text = ckpt::to_jsonl(sample_file());
  // Drop one interior line (the second line, after the header) and mend the
  // footer: the strict section order must notice.
  const auto first_nl = text.find('\n');
  const auto second_nl = text.find('\n', first_nl + 1);
  auto cut = text.substr(0, first_nl + 1) + text.substr(second_nl + 1);
  EXPECT_THROW(ckpt::parse_jsonl(refooter(strip_footer(cut))),
               ckpt::CheckpointError);
}

TEST(CheckpointWrite, KeepsPreviousGeneration) {
  const auto dir = test_dir();
  const auto path = (dir / "run.ckpt").string();

  auto first = sample_file();
  ckpt::write_checkpoint_file(path, first);
  EXPECT_FALSE(fs::exists(path + ".prev"));

  auto second = first;
  second.state.next_step = 84;
  ckpt::write_checkpoint_file(path, second);
  ASSERT_TRUE(fs::exists(path + ".prev"));

  const auto newest = ckpt::load_newest_valid(path);
  EXPECT_EQ(newest.file.state.next_step, 84u);
  EXPECT_TRUE(newest.notes.empty());
  std::ifstream prev(path + ".prev", std::ios::binary);
  std::string prev_text((std::istreambuf_iterator<char>(prev)),
                        std::istreambuf_iterator<char>());
  EXPECT_EQ(ckpt::parse_jsonl(prev_text).state.next_step, 42u);
}

TEST(CheckpointLoad, FallsBackToPrevWhenNewestCorrupt) {
  const auto dir = test_dir();
  const auto path = (dir / "run.ckpt").string();

  auto older = sample_file();
  write_file(path + ".prev", ckpt::to_jsonl(older));
  auto torn = ckpt::to_jsonl(sample_file());
  write_file(path, torn.substr(0, torn.size() / 2));

  const auto loaded = ckpt::load_newest_valid(path);
  EXPECT_EQ(loaded.path, path + ".prev");
  EXPECT_EQ(loaded.file.state.next_step, 42u);
  ASSERT_FALSE(loaded.notes.empty());  // the skip is reported, not silent
  EXPECT_NE(loaded.notes[0].find(path), std::string::npos);
}

TEST(CheckpointLoad, ThrowsWhenNoCandidateValid) {
  const auto dir = test_dir();
  const auto path = (dir / "run.ckpt").string();
  write_file(path, "garbage\n");
  write_file(path + ".prev", "also garbage\n");
  try {
    ckpt::load_newest_valid(path);
    FAIL() << "expected CheckpointError";
  } catch (const ckpt::CheckpointError& e) {
    // The message names both candidates.
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
    EXPECT_NE(std::string(e.what()).find(".prev"), std::string::npos);
  }
  EXPECT_THROW(ckpt::load_newest_valid((dir / "missing.ckpt").string()),
               ckpt::CheckpointError);
}

TEST(CheckpointDiff, IdenticalFilesMatch) {
  const auto text = ckpt::to_jsonl(sample_file());
  const auto diff = ckpt::diff_checkpoints(text, text);
  EXPECT_FALSE(diff.regression());
  EXPECT_TRUE(diff.notes.empty());
}

TEST(CheckpointDiff, NotesCarryFieldPaths) {
  const auto a = sample_file();
  auto b = sample_file();
  b.state.ledgers[0].in_use.v[0] = 99.0;
  const auto diff =
      ckpt::diff_checkpoints(ckpt::to_jsonl(a), ckpt::to_jsonl(b));
  EXPECT_TRUE(diff.regression());
  ASSERT_FALSE(diff.notes.empty());
  EXPECT_NE(diff.notes[0].find("ledgers"), std::string::npos)
      << diff.notes[0];
}

TEST(CheckpointDiff, RejectsCorruptInput) {
  const auto text = ckpt::to_jsonl(sample_file());
  EXPECT_THROW(ckpt::diff_checkpoints(text.substr(0, text.size() - 5), text),
               ckpt::CheckpointError);
}

TEST(CheckpointChecksum, Fnv1a64KnownVectors) {
  EXPECT_EQ(ckpt::fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(ckpt::fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

}  // namespace
}  // namespace mmog
