#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <numbers>
#include <string>

#include "core/run_report.hpp"
#include "core/simulation.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"
#include "predict/simple.hpp"

// Runtime twin of the mmog_lint rules: the linter proves no nondeterminism
// *source* exists in the simulation layers; this property test proves the
// *outcome* — two runs with identical seeds produce byte-identical results
// and byte-identical metrics snapshots, with live telemetry on or off.

namespace mmog::core {
namespace {

using util::ResourceKind;

trace::WorldTrace sine_workload(std::size_t groups, std::size_t steps) {
  trace::WorldTrace world;
  trace::RegionalTrace region;
  region.name = "Europe";
  for (std::size_t g = 0; g < groups; ++g) {
    trace::ServerGroupTrace group;
    group.name = "G";
    group.name += std::to_string(g);
    group.players = util::TimeSeries(util::kSampleStepSeconds);
    for (std::size_t t = 0; t < steps; ++t) {
      const double phase =
          2.0 * std::numbers::pi * static_cast<double>(t + 37 * g) / 720.0;
      group.players.push_back(500.0 + 450.0 * (1.0 - std::cos(phase)));
    }
    region.groups.push_back(std::move(group));
  }
  world.regions.push_back(std::move(region));
  return world;
}

SimulationConfig base_config(std::size_t groups, std::size_t steps) {
  SimulationConfig cfg;
  dc::DataCenterSpec d;
  d.name = "NL";
  d.country = "Netherlands";
  d.continent = "Europe";
  d.location = {52.37, 4.90};
  d.machines = 30;
  d.policy = dc::HostingPolicy::preset(1);
  cfg.datacenters = {d};
  GameSpec game;
  game.name = "TestGame";
  game.load = LoadModel{UpdateModel::kQuadratic, 2000.0};
  game.latency_tolerance = dc::DistanceClass::kVeryFar;
  game.workload = sine_workload(groups, steps);
  cfg.games.push_back(std::move(game));
  cfg.predictor = [] {
    return std::make_unique<predict::LastValuePredictor>();
  };
  return cfg;
}

// Hexfloat so equal strings mean equal bits, not equal roundings.
void put(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a,", v);
  out += buf;
}
void put(std::string& out, std::size_t v) {
  out += std::to_string(v);
  out += ',';
}
void put(std::string& out, const util::ResourceVector& v) {
  put(out, v.cpu());
  put(out, v.memory());
  put(out, v.net_in());
  put(out, v.net_out());
}
void put(std::string& out, const SlaStats& s) {
  put(out, s.steps);
  put(out, s.downtime_steps);
  put(out, s.shed_steps);
  put(out, s.breach_episodes);
  put(out, s.recoveries);
  put(out, s.longest_breach_steps);
  put(out, s.mean_time_to_recover_steps);
  put(out, s.max_time_to_recover_steps);
}

/// Every numeric field of the result, per step, bit for bit.
std::string serialize(const SimulationResult& result) {
  std::string out;
  put(out, result.steps);
  put(out, result.unplaced_cpu_unit_steps);
  put(out, result.total_cost);
  put(out, result.sla);
  for (const auto& step : result.metrics.step_metrics()) {
    put(out, step.allocated);
    put(out, step.used);
    put(out, step.shortfall);
    put(out, step.machines);
    out += '\n';
  }
  for (const auto& d : result.datacenters) {
    out += d.name;
    out += ',';
    put(out, d.capacity_cpu);
    put(out, d.avg_allocated_cpu);
    put(out, d.peak_allocated_cpu);
    for (const auto& [origin, cpu] : d.avg_allocated_by_origin) {
      out += origin;
      out += ',';
      put(out, cpu);
    }
    out += '\n';
  }
  for (const auto& g : result.games) {
    out += g.name;
    out += ',';
    put(out, g.metrics.avg_over_allocation_pct(ResourceKind::kCpu));
    put(out, g.metrics.avg_under_allocation_pct(ResourceKind::kCpu));
    put(out, g.metrics.significant_events());
    put(out, g.sla);
    out += '\n';
  }
  return out;
}

/// Snapshot minus the wall-clock-derived histograms ("phase.*_us",
/// "predictor.inference_us"): everything else must be bit-deterministic.
std::string deterministic_snapshot_json(const obs::Recorder& rec) {
  obs::Snapshot snap = rec.snapshot();
  for (auto it = snap.histograms.begin(); it != snap.histograms.end();) {
    if (it->first.size() >= 3 &&
        it->first.compare(it->first.size() - 3, 3, "_us") == 0) {
      it = snap.histograms.erase(it);
    } else {
      ++it;
    }
  }
  return snap.to_json();
}

void enable_live(obs::Recorder& rec, const SimulationConfig& cfg) {
  rec.enable_timeseries(64);
  rec.enable_alerts(obs::default_alert_rules(cfg.event_threshold_pct));
}

/// Multi-game, multi-group config so the parallel predict phase has enough
/// slots to shard across workers.
SimulationConfig parallel_config(std::size_t threads) {
  auto cfg = base_config(6, 240);
  GameSpec second;
  second.name = "SecondGame";
  second.load = LoadModel{UpdateModel::kQuadratic, 2000.0};
  second.latency_tolerance = dc::DistanceClass::kVeryFar;
  second.workload = sine_workload(5, 240);
  cfg.games.push_back(std::move(second));
  cfg.threads = threads;
  return cfg;
}

/// Like deterministic_snapshot_json, additionally dropping the one gauge
/// that legitimately differs across thread counts (it reports the thread
/// count itself).
std::string thread_agnostic_snapshot_json(const obs::Recorder& rec) {
  obs::Snapshot snap = rec.snapshot();
  for (auto it = snap.histograms.begin(); it != snap.histograms.end();) {
    if (it->first.size() >= 3 &&
        it->first.compare(it->first.size() - 3, 3, "_us") == 0) {
      it = snap.histograms.erase(it);
    } else {
      ++it;
    }
  }
  snap.gauges.erase("sim.predict_threads");
  return snap.to_json();
}

TEST(DeterminismTest, IdenticalSeedsGiveByteIdenticalResults) {
  auto cfg = base_config(3, 240);
  const auto first = simulate(cfg);
  const auto second = simulate(cfg);
  EXPECT_EQ(serialize(first), serialize(second));
}

TEST(DeterminismTest, TelemetryOnAndOffGiveByteIdenticalResults) {
  auto cfg = base_config(3, 240);
  const auto plain = simulate(cfg);

  obs::Recorder rec(obs::TraceLevel::kSteps);
  enable_live(rec, cfg);
  cfg.recorder = &rec;
  const auto observed = simulate(cfg);

  // The whole result, every step, every field — not just the summary
  // statistics: telemetry must be a pure observer.
  EXPECT_EQ(serialize(plain), serialize(observed));
}

TEST(DeterminismTest, MetricsSnapshotsAreByteIdenticalAcrossRuns) {
  auto cfg = base_config(3, 240);

  obs::Recorder rec_a(obs::TraceLevel::kSteps);
  enable_live(rec_a, cfg);
  cfg.recorder = &rec_a;
  simulate(cfg);

  obs::Recorder rec_b(obs::TraceLevel::kSteps);
  enable_live(rec_b, cfg);
  cfg.recorder = &rec_b;
  simulate(cfg);

  // Counters, gauges, and non-timing histograms must match byte for byte;
  // so must the downsampled time-series rings and the alert state machine.
  EXPECT_EQ(deterministic_snapshot_json(rec_a),
            deterministic_snapshot_json(rec_b));
  ASSERT_NE(rec_a.timeseries(), nullptr);
  ASSERT_NE(rec_b.timeseries(), nullptr);
  EXPECT_EQ(rec_a.timeseries()->to_json(), rec_b.timeseries()->to_json());
  EXPECT_EQ(rec_a.timeseries()->to_csv(), rec_b.timeseries()->to_csv());
  ASSERT_NE(rec_a.alerts(), nullptr);
  ASSERT_NE(rec_b.alerts(), nullptr);
  EXPECT_EQ(rec_a.alerts()->to_json(), rec_b.alerts()->to_json());
}

// ---------------------------------------------------------------------------
// Parallel predict phase: for any worker count, the simulation must be
// bit-identical to the serial path — workers write disjoint slots and the
// pad/match reduction happens serially in fixed order, so thread scheduling
// can reorder only the *timing* of predictions, never their values.

TEST(ParallelDeterminismTest, ThreadCountDoesNotChangeResults) {
  const auto baseline = [&] {
    auto cfg = parallel_config(1);
    return serialize(simulate(cfg));
  }();
  for (const std::size_t threads : {2u, 4u, 8u}) {
    auto cfg = parallel_config(threads);
    EXPECT_EQ(serialize(simulate(cfg)), baseline) << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, HardwareThreadCountMatchesSerial) {
  auto serial_cfg = parallel_config(1);
  const auto serial = simulate(serial_cfg);
  auto hw_cfg = parallel_config(0);  // 0 = hardware concurrency
  const auto parallel = simulate(hw_cfg);
  EXPECT_EQ(serialize(serial), serialize(parallel));
}

TEST(ParallelDeterminismTest, ThreadCountDoesNotChangeTelemetry) {
  // With live telemetry on, every counter, gauge (minus the thread-count
  // gauge itself), non-timing histogram, time-series ring, and alert state
  // must match the serial run byte for byte.
  auto serial_cfg = parallel_config(1);
  obs::Recorder rec_serial(obs::TraceLevel::kSteps);
  enable_live(rec_serial, serial_cfg);
  serial_cfg.recorder = &rec_serial;
  const auto serial = simulate(serial_cfg);

  auto parallel_cfg = parallel_config(4);
  obs::Recorder rec_parallel(obs::TraceLevel::kSteps);
  enable_live(rec_parallel, parallel_cfg);
  parallel_cfg.recorder = &rec_parallel;
  const auto parallel = simulate(parallel_cfg);

  EXPECT_EQ(serialize(serial), serialize(parallel));
  EXPECT_EQ(thread_agnostic_snapshot_json(rec_serial),
            thread_agnostic_snapshot_json(rec_parallel));
  ASSERT_NE(rec_serial.timeseries(), nullptr);
  ASSERT_NE(rec_parallel.timeseries(), nullptr);
  EXPECT_EQ(rec_serial.timeseries()->to_json(),
            rec_parallel.timeseries()->to_json());
  ASSERT_NE(rec_serial.alerts(), nullptr);
  ASSERT_NE(rec_parallel.alerts(), nullptr);
  EXPECT_EQ(rec_serial.alerts()->to_json(), rec_parallel.alerts()->to_json());
}

TEST(ParallelDeterminismTest, AuditTrailIsByteIdenticalAcrossThreadCounts) {
  // The decision audit trail is outcome data: same seed, same config, any
  // thread count -> the same JSONL bytes. This is what CI's mmog_diff
  // threads-1-vs-4 check enforces end to end.
  auto serial_cfg = parallel_config(1);
  obs::Recorder rec_serial(obs::TraceLevel::kOff);
  rec_serial.enable_audit();
  serial_cfg.recorder = &rec_serial;
  simulate(serial_cfg);

  auto parallel_cfg = parallel_config(4);
  obs::Recorder rec_parallel(obs::TraceLevel::kOff);
  rec_parallel.enable_audit();
  parallel_cfg.recorder = &rec_parallel;
  simulate(parallel_cfg);

  ASSERT_NE(rec_serial.audit(), nullptr);
  ASSERT_NE(rec_parallel.audit(), nullptr);
  ASSERT_GT(rec_serial.audit()->size(), 0u);
  EXPECT_EQ(rec_serial.audit()->to_jsonl(), rec_parallel.audit()->to_jsonl());
}

TEST(ParallelDeterminismTest, RunReportOutcomeIsThreadAgnostic) {
  // Canonical reports from a threads=1 and a threads=4 run must agree on
  // config, fingerprint and every outcome field; only the timing section
  // may differ. diff_reports is exactly mmog_diff's comparison.
  auto serial_cfg = parallel_config(1);
  obs::Recorder rec_serial(obs::TraceLevel::kOff);
  rec_serial.enable_audit();
  serial_cfg.recorder = &rec_serial;
  const auto serial = simulate(serial_cfg);
  const auto report_serial =
      make_run_report(serial_cfg, serial, "test", "run", 0.0);

  auto parallel_cfg = parallel_config(4);
  obs::Recorder rec_parallel(obs::TraceLevel::kOff);
  rec_parallel.enable_audit();
  parallel_cfg.recorder = &rec_parallel;
  const auto parallel = simulate(parallel_cfg);
  const auto report_parallel =
      make_run_report(parallel_cfg, parallel, "test", "run", 0.0);

  EXPECT_EQ(report_serial.fingerprint(), report_parallel.fingerprint());
  EXPECT_EQ(report_serial.outcome, report_parallel.outcome);
  const auto diff = obs::diff_reports(report_serial, report_parallel);
  EXPECT_FALSE(diff.regression()) << [&] {
    std::string joined;
    for (const auto& note : diff.notes) joined += note + '\n';
    return joined;
  }();
  // The thread count is reported, but as an execution detail.
  EXPECT_EQ(report_serial.threads, 1u);
  EXPECT_EQ(report_parallel.threads, 4u);
}

TEST(ParallelDeterminismTest, FaultedResilientRunIsThreadAgnostic) {
  // The match/replace phases shard their candidate filter (outage + latency
  // status per unit x center) across the worker team. Statuses are pure in
  // (center, step), workers write disjoint slots, and the commit loop stays
  // serial — so a faulted, resilient run must serialize identically at any
  // thread count, audit trail included.
  auto faulted = [](std::size_t threads) {
    auto cfg = parallel_config(threads);
    fault::FaultSpec outage;
    outage.kind = fault::FaultKind::kOutage;
    outage.dc_index = 0;
    outage.window_from = 60;
    outage.window_to = 90;
    fault::FaultSpec flap;
    flap.dc_index = 0;
    flap.mtbf_steps = 80.0;
    flap.mttr_steps = 10.0;
    flap.seed = 11;
    cfg.faults = {outage, flap};
    cfg.resilience.enabled = true;
    return cfg;
  };
  auto serial_cfg = faulted(1);
  obs::Recorder rec_serial(obs::TraceLevel::kOff);
  rec_serial.enable_audit();
  serial_cfg.recorder = &rec_serial;
  const auto serial = simulate(serial_cfg);
  ASSERT_FALSE(serial.fault_events.empty());
  const auto baseline = serialize(serial);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    auto cfg = faulted(threads);
    obs::Recorder rec(obs::TraceLevel::kOff);
    rec.enable_audit();
    cfg.recorder = &rec;
    const auto parallel = simulate(cfg);
    EXPECT_EQ(serialize(parallel), baseline) << "threads=" << threads;
    EXPECT_EQ(parallel.fault_events, serial.fault_events)
        << "threads=" << threads;
    EXPECT_EQ(rec.audit()->to_jsonl(), rec_serial.audit()->to_jsonl())
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, RepeatedParallelRunsAreByteIdentical) {
  auto cfg = parallel_config(4);
  const auto first = simulate(cfg);
  const auto second = simulate(cfg);
  EXPECT_EQ(serialize(first), serialize(second));
}

// ---------------------------------------------------------------------------
// Resource profiler (PR 8): arming the allocation hooks and publishing
// throughput/RSS gauges is pure observation. Everything deterministic —
// the result, the outcome section of the canonical report, the audit
// trail — must be byte-identical with profiling on or off, at any thread
// count. This is the invariant that lets mmog_simulate keep the profiler
// always-on.

TEST(ProfilerDeterminismTest, ProfilerOnAndOffGiveByteIdenticalOutcomes) {
  for (const std::size_t threads : {1u, 4u}) {
    auto cfg_off = parallel_config(threads);
    obs::Recorder rec_off(obs::TraceLevel::kOff);
    rec_off.enable_audit();
    cfg_off.recorder = &rec_off;
    const auto off = simulate(cfg_off);
    const auto report_off =
        make_run_report(cfg_off, off, "test", "run", 0.0);

    auto cfg_on = parallel_config(threads);
    obs::Recorder rec_on(obs::TraceLevel::kOff);
    rec_on.enable_audit();
    rec_on.enable_profiler();
    cfg_on.recorder = &rec_on;
    const auto on = simulate(cfg_on);
    const auto report_on = make_run_report(cfg_on, on, "test", "run", 0.0);

    EXPECT_EQ(serialize(off), serialize(on)) << "threads=" << threads;
    EXPECT_EQ(rec_off.audit()->to_jsonl(), rec_on.audit()->to_jsonl())
        << "threads=" << threads;
    // mmog_diff's comparison must see nothing: the profiler publishes
    // only gauges and histograms, and those live outside the outcome.
    EXPECT_EQ(report_off.fingerprint(), report_on.fingerprint());
    EXPECT_EQ(report_off.outcome, report_on.outcome);
    const auto diff = obs::diff_reports(report_off, report_on);
    EXPECT_FALSE(diff.regression()) << [&] {
      std::string joined;
      for (const auto& note : diff.notes) joined += note + '\n';
      return joined;
    }();
    // The profiled run does carry the extra observability: allocation
    // histograms next to the timing ones, throughput and RSS gauges.
    const auto snap = rec_on.snapshot();
    EXPECT_NE(snap.histograms.find("phase.step_allocs"),
              snap.histograms.end());
    EXPECT_GT(snap.gauges.at("sim.steps_per_sec"), 0.0);
    EXPECT_EQ(rec_off.snapshot().histograms.count("phase.step_allocs"), 0u);
  }
}

TEST(ProfilerDeterminismTest, ProfiledCountersMatchUnprofiledByteForByte) {
  // The registry's counter section (what RunReport folds into the outcome)
  // must be bit-identical across profiling modes.
  auto cfg = base_config(3, 240);

  obs::Recorder rec_off(obs::TraceLevel::kOff);
  cfg.recorder = &rec_off;
  simulate(cfg);

  obs::Recorder rec_on(obs::TraceLevel::kOff);
  rec_on.enable_profiler();
  cfg.recorder = &rec_on;
  simulate(cfg);

  auto counters_json = [](const obs::Recorder& rec) {
    obs::Snapshot snap = rec.snapshot();
    snap.histograms.clear();
    snap.gauges.clear();
    return snap.to_json();
  };
  EXPECT_EQ(counters_json(rec_off), counters_json(rec_on));
}

TEST(DeterminismTest, SnapshotCsvIsByteIdenticalAcrossRuns) {
  auto cfg = base_config(2, 120);

  obs::Recorder rec_a(obs::TraceLevel::kOff);
  cfg.recorder = &rec_a;
  simulate(cfg);

  obs::Recorder rec_b(obs::TraceLevel::kOff);
  cfg.recorder = &rec_b;
  simulate(cfg);

  auto csv_without_timings = [](const obs::Recorder& rec) {
    obs::Snapshot snap = rec.snapshot();
    snap.histograms.clear();  // timing-only in core::simulate
    return snap.to_csv();
  };
  EXPECT_EQ(csv_without_timings(rec_a), csv_without_timings(rec_b));
}

}  // namespace
}  // namespace mmog::core
