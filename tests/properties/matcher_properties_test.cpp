// Property-based tests of the request-offer matcher across every latency
// tolerance class and several demand origins.

#include <gtest/gtest.h>

#include <tuple>

#include "core/matcher.hpp"
#include "dc/ecosystem.hpp"

namespace mmog::core {
namespace {

using Combo = std::tuple<dc::DistanceClass, const char*>;

class MatcherProperties : public ::testing::TestWithParam<Combo> {
 protected:
  dc::DistanceClass tolerance() const { return std::get<0>(GetParam()); }
  dc::GeoPoint origin() const {
    return dc::region_site(std::get<1>(GetParam())).location;
  }
};

TEST_P(MatcherProperties, CandidatesRespectTolerance) {
  const auto dcs = dc::paper_ecosystem();
  const Matcher matcher(dcs);
  for (std::size_t i : matcher.candidates(origin(), tolerance())) {
    EXPECT_TRUE(dc::within_tolerance(matcher.distance_km(origin(), i),
                                     tolerance()))
        << dcs[i].name;
  }
}

TEST_P(MatcherProperties, WiderToleranceIsASuperset) {
  const auto dcs = dc::paper_ecosystem();
  const Matcher matcher(dcs);
  const auto narrow = matcher.candidates(origin(), tolerance());
  const auto wide =
      matcher.candidates(origin(), dc::DistanceClass::kVeryFar);
  for (std::size_t i : narrow) {
    EXPECT_NE(std::find(wide.begin(), wide.end(), i), wide.end());
  }
  EXPECT_GE(wide.size(), narrow.size());
}

TEST_P(MatcherProperties, OrderedFinerGrainFirst) {
  const auto dcs = dc::paper_ecosystem();
  const Matcher matcher(dcs);
  const auto order = matcher.candidates(origin(), tolerance());
  for (std::size_t i = 1; i < order.size(); ++i) {
    const auto prev = dcs[order[i - 1]].policy.granularity_key();
    const auto cur = dcs[order[i]].policy.granularity_key();
    EXPECT_FALSE(cur < prev);
    if (prev == cur) {
      // Equal grain: closest first.
      EXPECT_LE(matcher.distance_km(origin(), order[i - 1]),
                matcher.distance_km(origin(), order[i]) + 1e-9);
    }
  }
}

TEST_P(MatcherProperties, NoDuplicates) {
  const Matcher matcher(dc::paper_ecosystem());
  auto order = matcher.candidates(origin(), tolerance());
  auto sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST_P(MatcherProperties, VeryFarSeesEveryCenter) {
  const auto dcs = dc::paper_ecosystem();
  const Matcher matcher(dcs);
  EXPECT_EQ(
      matcher.candidates(origin(), dc::DistanceClass::kVeryFar).size(),
      dcs.size());
}

INSTANTIATE_TEST_SUITE_P(
    TolerancesAndOrigins, MatcherProperties,
    ::testing::Combine(::testing::Values(dc::DistanceClass::kSameLocation,
                                         dc::DistanceClass::kVeryClose,
                                         dc::DistanceClass::kClose,
                                         dc::DistanceClass::kFar,
                                         dc::DistanceClass::kVeryFar),
                       ::testing::Values("Europe", "US East Coast",
                                         "Australia")),
    [](const auto& info) {
      std::string name = "T" + std::to_string(static_cast<int>(
                                   std::get<0>(info.param)));
      for (char c : std::string(std::get<1>(info.param))) {
        if (std::isalnum(static_cast<unsigned char>(c))) name += c;
      }
      return name;
    });

}  // namespace
}  // namespace mmog::core
