// Property-based tests over the provisioning simulator: invariants that
// must hold for every (allocation mode x update model) combination.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>
#include <tuple>

#include "core/simulation.hpp"
#include "predict/simple.hpp"

namespace mmog::core {
namespace {

using util::ResourceKind;

trace::WorldTrace sine_workload(std::size_t steps) {
  trace::WorldTrace world;
  trace::RegionalTrace region;
  region.name = "Europe";
  for (std::size_t g = 0; g < 3; ++g) {
    trace::ServerGroupTrace group;
    group.name = "G" + std::to_string(g);
    group.players = util::TimeSeries(util::kSampleStepSeconds);
    for (std::size_t t = 0; t < steps; ++t) {
      group.players.push_back(
          900.0 + 500.0 * std::sin(2.0 * std::numbers::pi *
                                   static_cast<double>(t + g * 60) / 720.0));
    }
    region.groups.push_back(std::move(group));
  }
  world.regions.push_back(std::move(region));
  return world;
}

using Combo = std::tuple<AllocationMode, UpdateModel>;

class SimulationInvariants : public ::testing::TestWithParam<Combo> {
 protected:
  SimulationResult run(std::size_t steps = 300) const {
    SimulationConfig cfg;
    dc::DataCenterSpec center;
    center.name = "NL";
    center.location = {52.37, 4.90};
    center.machines = 20;
    center.policy = dc::HostingPolicy::preset(3);
    cfg.datacenters = {center};
    GameSpec game;
    game.load = LoadModel{std::get<1>(GetParam()), 2000.0};
    game.workload = sine_workload(steps);
    cfg.games.push_back(std::move(game));
    cfg.mode = std::get<0>(GetParam());
    if (cfg.mode == AllocationMode::kDynamic) {
      cfg.predictor = [] {
        return std::make_unique<predict::LastValuePredictor>();
      };
    }
    return simulate(cfg);
  }
};

TEST_P(SimulationInvariants, MetricsArePresentForEveryStep) {
  const auto result = run();
  EXPECT_EQ(result.metrics.steps(), result.steps);
  EXPECT_EQ(result.games.size(), 1u);
  EXPECT_EQ(result.games[0].metrics.steps(), result.steps);
}

TEST_P(SimulationInvariants, AllocationsAreNonNegativeAndWithinCapacity) {
  const auto result = run();
  for (const auto& m : result.metrics.step_metrics()) {
    EXPECT_TRUE(m.allocated.non_negative());
    EXPECT_LE(m.allocated.cpu(), 20.0 + 1e-9);  // DC capacity
  }
  for (const auto& usage : result.datacenters) {
    EXPECT_GE(usage.peak_allocated_cpu, usage.avg_allocated_cpu - 1e-9);
    EXPECT_LE(usage.peak_allocated_cpu, usage.capacity_cpu + 1e-9);
  }
}

TEST_P(SimulationInvariants, ShortfallIsNeverPositive) {
  const auto result = run();
  for (const auto& m : result.metrics.step_metrics()) {
    for (double v : m.shortfall.v) EXPECT_LE(v, 1e-9);
    EXPECT_LE(m.under_allocation_pct(ResourceKind::kCpu), 1e-9);
  }
}

TEST_P(SimulationInvariants, UsedLoadMatchesTraceIndependentOfMode) {
  // The generated load is a property of the workload, not the allocator.
  const auto result = run();
  const auto& m = result.metrics.step_metrics()[100];
  LoadModel load{std::get<1>(GetParam()), 2000.0};
  const auto world = sine_workload(300);
  util::ResourceVector expected{};
  for (const auto& g : world.regions[0].groups) {
    expected += load.demand(g.players[100]);
  }
  EXPECT_NEAR(m.used.cpu(), expected.cpu(), 1e-9);
  EXPECT_NEAR(m.used.memory(), expected.memory(), 1e-9);
}

TEST_P(SimulationInvariants, CostIsPositiveAndFinite) {
  const auto result = run();
  EXPECT_GT(result.total_cost, 0.0);
  EXPECT_TRUE(std::isfinite(result.total_cost));
}

TEST_P(SimulationInvariants, RunsAreDeterministic) {
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.metrics.avg_over_allocation_pct(ResourceKind::kCpu),
                   b.metrics.avg_over_allocation_pct(ResourceKind::kCpu));
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.metrics.significant_events(), b.metrics.significant_events());
}

TEST_P(SimulationInvariants, OverAllocationIsNonNegativeOnAverage) {
  // The allocator never systematically grants less than the load unless
  // capacity runs out; with 20 machines for ~2 units of demand it cannot.
  const auto result = run();
  EXPECT_GE(result.metrics.avg_over_allocation_pct(ResourceKind::kCpu),
            -1e-9);
  EXPECT_DOUBLE_EQ(result.unplaced_cpu_unit_steps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndModels, SimulationInvariants,
    ::testing::Combine(::testing::Values(AllocationMode::kDynamic,
                                         AllocationMode::kStatic),
                       ::testing::Values(UpdateModel::kLinear,
                                         UpdateModel::kQuadratic,
                                         UpdateModel::kCubic)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) == AllocationMode::kDynamic
                             ? "Dynamic"
                             : "Static";
      switch (std::get<1>(info.param)) {
        case UpdateModel::kLinear: name += "Linear"; break;
        case UpdateModel::kQuadratic: name += "Quadratic"; break;
        case UpdateModel::kCubic: name += "Cubic"; break;
        default: name += "Other"; break;
      }
      return name;
    });

}  // namespace
}  // namespace mmog::core
