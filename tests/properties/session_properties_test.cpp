// Property-based tests of the packet-session emulator across every
// interaction class.

#include <gtest/gtest.h>

#include "net/session.hpp"
#include "util/stats.hpp"

namespace mmog::net {
namespace {

class SessionClassProperties
    : public ::testing::TestWithParam<InteractionClass> {
 protected:
  SessionTrace session(std::uint64_t seed = 3,
                       double duration = 600.0) const {
    SessionConfig cfg;
    cfg.interaction = GetParam();
    cfg.duration_seconds = duration;
    cfg.seed = seed;
    return emulate_session(cfg);
  }
};

TEST_P(SessionClassProperties, PacketsRespectFigureBounds) {
  const auto t = session();
  ASSERT_GT(t.packets.size(), 50u);
  for (const auto& p : t.packets) {
    EXPECT_GE(p.length_bytes, 40u);
    EXPECT_LE(p.length_bytes, 500u);
  }
  for (double iat : t.inter_arrival_ms()) {
    EXPECT_GT(iat, 0.0);
    EXPECT_LE(iat, 600.0 + 1e-9);
  }
}

TEST_P(SessionClassProperties, TimestampsMonotoneWithinDuration) {
  const auto t = session();
  double prev = -1.0;
  for (const auto& p : t.packets) {
    EXPECT_GE(p.timestamp_s, prev);
    EXPECT_LT(p.timestamp_s, 600.0);
    prev = p.timestamp_s;
  }
}

TEST_P(SessionClassProperties, SeedsChangeTheStream) {
  const auto a = session(3);
  const auto b = session(4);
  // Same class, different seed: close in distribution, not identical.
  EXPECT_NE(a.packets.size(), 0u);
  bool differs = a.packets.size() != b.packets.size();
  for (std::size_t i = 0; !differs && i < std::min(a.packets.size(),
                                                   b.packets.size());
       ++i) {
    differs = a.packets[i].length_bytes != b.packets[i].length_bytes;
  }
  EXPECT_TRUE(differs);
  EXPECT_NEAR(util::mean(a.lengths()) / util::mean(b.lengths()), 1.0, 0.15);
}

TEST_P(SessionClassProperties, ExpectedMomentsMatchEmpirical) {
  const auto t = session(9, 1800.0);
  EXPECT_NEAR(util::mean(t.lengths()),
              expected_packet_length(GetParam()), 12.0);
  EXPECT_NEAR(util::mean(t.inter_arrival_ms()),
              expected_iat_ms(GetParam()),
              0.12 * expected_iat_ms(GetParam()));
}

TEST_P(SessionClassProperties, BandwidthConsistentWithMoments) {
  const auto t = session(5, 1200.0);
  const double expected_bps = expected_packet_length(GetParam()) /
                              (expected_iat_ms(GetParam()) / 1e3);
  EXPECT_NEAR(t.mean_bandwidth_bps() / expected_bps, 1.0, 0.25);
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, SessionClassProperties,
    ::testing::Values(InteractionClass::kCreatingContent,
                      InteractionClass::kFastPaced,
                      InteractionClass::kP2PMarket,
                      InteractionClass::kP2PCrowded,
                      InteractionClass::kGroupInteraction,
                      InteractionClass::kNewContentNonCrowded,
                      InteractionClass::kNewContentCrowded,
                      InteractionClass::kNewContentLocks),
    [](const auto& info) {
      switch (info.param) {
        case InteractionClass::kCreatingContent: return "CreatingContent";
        case InteractionClass::kFastPaced: return "FastPaced";
        case InteractionClass::kP2PMarket: return "P2PMarket";
        case InteractionClass::kP2PCrowded: return "P2PCrowded";
        case InteractionClass::kGroupInteraction: return "GroupInteraction";
        case InteractionClass::kNewContentNonCrowded:
          return "NewContentNonCrowded";
        case InteractionClass::kNewContentCrowded: return "NewContentCrowded";
        case InteractionClass::kNewContentLocks: return "NewContentLocks";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace mmog::net
