// Property-based tests of the workload generator across seeds: every seed
// must produce a structurally valid, statistically plausible world.

#include <gtest/gtest.h>

#include <cmath>

#include "trace/analysis.hpp"
#include "trace/runescape_model.hpp"
#include "util/stats.hpp"

namespace mmog::trace {
namespace {

class TraceGeneratorProperties : public ::testing::TestWithParam<int> {
 protected:
  WorldTrace world() const {
    auto cfg = RuneScapeModelConfig::paper_default();
    cfg.steps = util::samples_per_days(3);
    cfg.seed = static_cast<std::uint64_t>(GetParam());
    return generate(cfg);
  }
};

TEST_P(TraceGeneratorProperties, StructureMatchesConfig) {
  const auto w = world();
  ASSERT_EQ(w.regions.size(), 5u);
  for (const auto& region : w.regions) {
    for (const auto& group : region.groups) {
      ASSERT_EQ(group.players.size(), util::samples_per_days(3));
    }
  }
}

TEST_P(TraceGeneratorProperties, LoadsWithinCapacity) {
  const auto w = world();
  for (const auto& region : w.regions) {
    for (const auto& group : region.groups) {
      for (double v : group.players.values()) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, static_cast<double>(group.capacity));
        EXPECT_EQ(v, std::floor(v));  // whole players
      }
    }
  }
}

TEST_P(TraceGeneratorProperties, GlobalScalePlausible) {
  const auto g = world().global();
  EXPECT_GT(g.mean(), 50e3);
  EXPECT_LT(g.max(), 350e3);
  EXPECT_GT(g.min(), 10e3);
}

TEST_P(TraceGeneratorProperties, DiurnalStructurePresent) {
  const auto w = world();
  const auto total = w.regions[0].total();
  const auto acf = util::autocorrelation(total.values(), 720);
  EXPECT_GT(acf[720], 0.35) << "seed " << GetParam();
}

TEST_P(TraceGeneratorProperties, StepToStepChangesAreSessionLike) {
  // No teleporting populations: the global count never jumps by more than
  // ~20 % between two-minute samples (activity waves ramp, never step).
  const auto g = world().global();
  for (std::size_t t = 1; t < g.size(); ++t) {
    EXPECT_LT(std::abs(g[t] - g[t - 1]) / std::max(1.0, g[t - 1]), 0.2)
        << "step " << t;
  }
}

TEST_P(TraceGeneratorProperties, RegionsPeakAtDifferentTimes) {
  // Time zones shift the regional peaks: Europe and US West Coast must not
  // peak within the same hour.
  const auto w = world();
  auto argmax = [](const util::TimeSeries& s) {
    std::size_t best = 0;
    for (std::size_t t = 1; t < s.size(); ++t) {
      if (s[t] > s[best]) best = t;
    }
    return best % 720;  // time of day
  };
  const auto eu = argmax(w.regions[0].total());
  const auto us_west = argmax(w.regions[2].total());
  const auto diff =
      std::min((eu + 720 - us_west) % 720, (us_west + 720 - eu) % 720);
  EXPECT_GT(diff, 30u);  // more than an hour apart
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceGeneratorProperties,
                         ::testing::Values(1, 7, 42, 1337, 20080815),
                         [](const auto& info) {
                           return "Seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mmog::trace
