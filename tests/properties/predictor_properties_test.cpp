// Property-based tests over the whole predictor family: every predictor
// must satisfy the same behavioural contract regardless of algorithm, and
// basic accuracy sanity must hold on canonical signal families.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>
#include <string>

#include "predict/ar.hpp"
#include "predict/evaluate.hpp"
#include "predict/holt_winters.hpp"
#include "predict/neural.hpp"
#include "predict/simple.hpp"
#include "util/rng.hpp"
#include "util/timeseries.hpp"

namespace mmog::predict {
namespace {

struct PredictorCase {
  std::string name;
  PredictorFactory factory;
};

util::TimeSeries training_signal() {
  util::TimeSeries ts(120.0);
  util::Rng rng(5);
  for (int t = 0; t < 800; ++t) {
    ts.push_back(std::max(
        0.0, 400.0 + 200.0 * std::sin(2.0 * std::numbers::pi * t / 120.0) +
                 rng.normal(0.0, 15.0)));
  }
  return ts;
}

std::vector<PredictorCase> all_predictors() {
  predict::NeuralConfig ncfg;
  ncfg.train.max_eras = 20;
  ncfg.train.patience = 4;
  auto neural_model = std::make_shared<const NeuralModel>(
      NeuralModel::fit(ncfg, training_signal()));
  std::vector<util::TimeSeries> hist = {training_signal()};
  auto ar_model = std::make_shared<const ArModel>(ArModel::fit(3, hist));
  return {
      {"LastValue", [] { return std::make_unique<LastValuePredictor>(); }},
      {"Average", [] { return std::make_unique<AveragePredictor>(); }},
      {"MovingAverage",
       [] { return std::make_unique<MovingAveragePredictor>(5); }},
      {"SlidingMedian",
       [] { return std::make_unique<SlidingWindowMedianPredictor>(5); }},
      {"ExpSmoothing",
       [] { return std::make_unique<ExponentialSmoothingPredictor>(0.5); }},
      {"Holt", [] { return std::make_unique<HoltPredictor>(); }},
      {"HoltWinters",
       [] { return std::make_unique<HoltWintersPredictor>(120); }},
      {"Drift", [] { return std::make_unique<DriftPredictor>(); }},
      {"Neural",
       [neural_model] {
         return std::make_unique<NeuralPredictor>(neural_model);
       }},
      {"AR", [ar_model] { return std::make_unique<ArPredictor>(ar_model); }},
  };
}

class PredictorContract : public ::testing::TestWithParam<PredictorCase> {};

TEST_P(PredictorContract, PredictsZeroBeforeAnyObservation) {
  auto p = GetParam().factory();
  EXPECT_DOUBLE_EQ(p->predict(), 0.0);
}

TEST_P(PredictorContract, PredictionsAreFiniteAndNonNegative) {
  auto p = GetParam().factory();
  util::Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    p->observe(std::max(0.0, rng.normal(300.0, 200.0)));
    const double pred = p->predict();
    EXPECT_TRUE(std::isfinite(pred)) << GetParam().name;
    EXPECT_GE(pred, 0.0) << GetParam().name;
  }
}

TEST_P(PredictorContract, ConvergesOnAConstantSignal) {
  auto p = GetParam().factory();
  for (int i = 0; i < 600; ++i) p->observe(250.0);
  EXPECT_NEAR(p->predict(), 250.0, 12.5) << GetParam().name;
}

TEST_P(PredictorContract, DeterministicGivenSameInput) {
  auto a = GetParam().factory();
  auto b = GetParam().factory();
  util::Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniform(0.0, 1000.0);
    a->observe(v);
    b->observe(v);
  }
  EXPECT_DOUBLE_EQ(a->predict(), b->predict()) << GetParam().name;
}

TEST_P(PredictorContract, MakeFreshHasNoHistory) {
  auto p = GetParam().factory();
  for (int i = 0; i < 50; ++i) p->observe(777.0);
  auto fresh = p->make_fresh();
  EXPECT_DOUBLE_EQ(fresh->predict(), 0.0) << GetParam().name;
  EXPECT_EQ(fresh->name(), p->name());
}

TEST_P(PredictorContract, ObserveAfterPredictDoesNotCrashOrDiverge) {
  auto p = GetParam().factory();
  // Alternate observe/predict over a hostile signal: spikes and zeros.
  util::Rng rng(17);
  for (int i = 0; i < 300; ++i) {
    p->observe(rng.bernoulli(0.1) ? 5000.0 : 0.0);
    EXPECT_TRUE(std::isfinite(p->predict())) << GetParam().name;
  }
}

TEST_P(PredictorContract, BoundedErrorOnSlowSinusoid) {
  // Every reasonable predictor keeps its error under 100 % of the mean on a
  // slow clean sinusoid (the Average predictor is the worst at ~40 %).
  auto p = GetParam().factory();
  std::vector<double> series;
  for (int t = 0; t < 700; ++t) {
    series.push_back(500.0 +
                     250.0 * std::sin(2.0 * std::numbers::pi * t / 240.0));
  }
  const double err = series_prediction_error(*p, series, 300).value();
  EXPECT_LT(err, 100.0) << GetParam().name;
  EXPECT_GE(err, 0.0) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(AllPredictors, PredictorContract,
                         ::testing::ValuesIn(all_predictors()),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace mmog::predict
