// Property-based tests of the game emulator across all eight Table I
// configurations.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "emu/datasets.hpp"
#include "emu/emulator.hpp"

namespace mmog::emu {
namespace {

class EmulatorDatasetProperties : public ::testing::TestWithParam<int> {
 protected:
  DatasetConfig config() const {
    auto sets = table1_datasets(4000);
    auto cfg = sets[static_cast<std::size_t>(GetParam())];
    cfg.samples = 120;  // four simulated hours keep the suite fast
    return cfg;
  }
};

TEST_P(EmulatorDatasetProperties, ZoneCountsAreConsistent) {
  Emulator emulator(WorldConfig{}, config());
  const auto trace = emulator.run();
  ASSERT_EQ(trace.samples.size(), 120u);
  for (const auto& s : trace.samples) {
    ASSERT_EQ(s.zone_counts.size(), trace.world.zone_count());
    double sum = 0.0;
    for (double c : s.zone_counts) {
      EXPECT_GE(c, 0.0);
      EXPECT_EQ(c, std::floor(c));  // whole entities
      sum += c;
    }
    EXPECT_DOUBLE_EQ(sum, s.total);
  }
}

TEST_P(EmulatorDatasetProperties, InteractionsMatchZoneFormula) {
  Emulator emulator(WorldConfig{8, 8, 60.0}, config());
  const auto trace = emulator.run();
  for (const auto& s : trace.samples) {
    double expected = 0.0;
    for (double c : s.zone_counts) expected += c * (c - 1.0) / 2.0;
    EXPECT_DOUBLE_EQ(s.interactions, expected);
  }
}

TEST_P(EmulatorDatasetProperties, PopulationWithinConfiguredBounds) {
  const auto cfg = config();
  Emulator emulator(WorldConfig{}, cfg);
  const auto total = emulator.run().total_series();
  // Population tracks peak_load modulated by at most (1 + 0.35*overall).
  const double ceiling = cfg.peak_load * (1.0 + 0.4 * cfg.overall_dynamics) +
                         cfg.peak_load * 0.1;
  for (std::size_t t = 0; t < total.size(); ++t) {
    EXPECT_GE(total[t], 0.0);
    EXPECT_LE(total[t], ceiling) << "sample " << t;
  }
}

TEST_P(EmulatorDatasetProperties, PopulationChurnIsBounded) {
  // Joins/quits are sessions, not teleports: at most ~5 % + 4 entities of
  // churn between consecutive samples.
  Emulator emulator(WorldConfig{}, config());
  const auto total = emulator.run().total_series();
  for (std::size_t t = 1; t < total.size(); ++t) {
    EXPECT_LE(std::abs(total[t] - total[t - 1]),
              0.05 * std::max(total[t - 1], 80.0) + 4.0)
        << "sample " << t;
  }
}

TEST_P(EmulatorDatasetProperties, DeterministicPerSeed) {
  Emulator a(WorldConfig{}, config());
  Emulator b(WorldConfig{}, config());
  const auto ta = a.run();
  const auto tb = b.run();
  for (std::size_t s = 0; s < ta.samples.size(); s += 17) {
    EXPECT_EQ(ta.samples[s].zone_counts, tb.samples[s].zone_counts);
  }
}

TEST_P(EmulatorDatasetProperties, OccupancyIsNotUniform) {
  // AI profiles concentrate entities (hot-spots, camps, team clusters):
  // the busiest zone must clearly exceed the mean occupancy.
  Emulator emulator(WorldConfig{}, config());
  const auto trace = emulator.run();
  const auto& s = trace.samples.back();
  const double mean =
      s.total / static_cast<double>(trace.world.zone_count());
  const double busiest =
      *std::max_element(s.zone_counts.begin(), s.zone_counts.end());
  EXPECT_GT(busiest, 2.0 * mean);
}

INSTANTIATE_TEST_SUITE_P(TableOneSets, EmulatorDatasetProperties,
                         ::testing::Range(0, 8), [](const auto& info) {
                           return "Set" + std::to_string(info.param + 1);
                         });

}  // namespace
}  // namespace mmog::emu
