// Allocation-conservation properties of core::simulate: at every step, for
// every demand unit, `allocated` must equal the left-to-right sum of the
// live allocation amounts — bit for bit, in every resource dimension. The
// old release loop clamped `allocated` both before the covers() check and
// after the subtraction, so a float tail in either place let the ledger
// drift away from the actual holdings; the clamp also hid releases that
// would have driven a non-CPU dimension negative. These tests observe the
// ledger through per-step checkpoints, which capture the exact internal
// state (UnitCheckpoint::allocated next to the materialized allocations).

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <numbers>
#include <set>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/simulation.hpp"
#include "obs/recorder.hpp"
#include "predict/simple.hpp"

namespace mmog::core {
namespace {

trace::WorldTrace sine_workload(std::size_t groups, std::size_t steps,
                                double base = 500.0, double swing = 450.0) {
  trace::WorldTrace world;
  trace::RegionalTrace region;
  region.name = "Europe";
  for (std::size_t g = 0; g < groups; ++g) {
    trace::ServerGroupTrace group;
    group.name = "G";
    group.name += std::to_string(g);
    group.players = util::TimeSeries(util::kSampleStepSeconds);
    for (std::size_t t = 0; t < steps; ++t) {
      const double phase =
          2.0 * std::numbers::pi * static_cast<double>(t + 29 * g) / 240.0;
      group.players.push_back(base + swing * (1.0 - std::cos(phase)));
    }
    region.groups.push_back(std::move(group));
  }
  world.regions.push_back(std::move(region));
  return world;
}

/// A staircase ramp, then a collapse to a trickle. Each stair adds a
/// top-up allocation on top of the earlier ones (so units end up holding
/// several separately releasable records), and the collapse strands all of
/// them above demand — the release loop has to give most of them back as
/// their time bulks expire.
trace::WorldTrace staircase_cliff_workload(std::size_t groups,
                                           std::size_t steps) {
  trace::WorldTrace world;
  trace::RegionalTrace region;
  region.name = "Europe";
  for (std::size_t g = 0; g < groups; ++g) {
    trace::ServerGroupTrace group;
    group.name = "G";
    group.name += std::to_string(g);
    group.players = util::TimeSeries(util::kSampleStepSeconds);
    for (std::size_t t = 0; t < steps; ++t) {
      double players = 60.0;
      if (t < steps / 2) {
        const std::size_t stair = 1 + t / (steps / 8);  // 1..4
        players = 400.0 + 500.0 * static_cast<double>(stair);
      }
      group.players.push_back(players);
    }
    region.groups.push_back(std::move(group));
  }
  world.regions.push_back(std::move(region));
  return world;
}

SimulationConfig checkpointing_config(trace::WorldTrace workload,
                                      std::vector<CheckpointState>* sink) {
  SimulationConfig cfg;
  dc::DataCenterSpec a;
  a.name = "Primary";
  a.location = {52.37, 4.90};
  a.machines = 12;
  a.policy = dc::HostingPolicy::preset(1);  // CPU + both network bulks
  dc::DataCenterSpec b;
  b.name = "Backup";
  b.location = {51.51, -0.13};
  b.machines = 12;
  b.policy = dc::HostingPolicy::preset(2);
  cfg.datacenters = {a, b};
  GameSpec game;
  game.name = "TestGame";
  game.load = LoadModel{UpdateModel::kQuadratic, 2000.0};
  game.latency_tolerance = dc::DistanceClass::kVeryFar;
  game.workload = std::move(workload);
  cfg.games.push_back(std::move(game));
  cfg.predictor = [] {
    return std::make_unique<predict::LastValuePredictor>();
  };
  cfg.checkpoint_every_steps = 1;
  cfg.checkpoint_sink = [sink](const CheckpointState& state) {
    sink->push_back(state);
  };
  return cfg;
}

/// The invariant, verbatim: every component of every unit's ledger equals
/// the in-insertion-order sum of its live allocations, exactly.
void expect_conserved(const std::vector<CheckpointState>& states) {
  ASSERT_FALSE(states.empty());
  for (const auto& state : states) {
    for (std::size_t u = 0; u < state.units.size(); ++u) {
      const auto& unit = state.units[u];
      util::ResourceVector sum{};
      for (const auto& a : unit.allocations) sum += a.amount;
      for (std::size_t k = 0; k < util::kResourceKinds; ++k) {
        EXPECT_EQ(unit.allocated.v[k], sum.v[k])
            << "step " << state.steps << " unit " << u << " kind " << k;
        // The in-order sum of non-negative grants is non-negative; a
        // negative component means a release oversubtracted (the bug the
        // old clamp used to paper over).
        EXPECT_GE(unit.allocated.v[k], 0.0)
            << "step " << state.steps << " unit " << u << " kind " << k;
      }
    }
  }
}

TEST(ConservationPropertiesTest, CleanDynamicRunConservesEveryStep) {
  std::vector<CheckpointState> states;
  auto cfg = checkpointing_config(sine_workload(4, 240), &states);
  const auto result = simulate(cfg);
  ASSERT_EQ(result.steps, 240u);
  EXPECT_EQ(states.size(), 240u);
  expect_conserved(states);
}

TEST(ConservationPropertiesTest, ReleaseStormAfterDemandCliffConserves) {
  std::vector<CheckpointState> states;
  auto cfg =
      checkpointing_config(staircase_cliff_workload(4, 480), &states);
  obs::Recorder rec(obs::TraceLevel::kOff);
  cfg.recorder = &rec;
  const auto result = simulate(cfg);
  ASSERT_EQ(result.steps, 480u);
  expect_conserved(states);
  // The cliff actually exercised the release loop: records were given back
  // and the held CPU shrank well below the plateau's holdings.
  EXPECT_GT(rec.snapshot().counters.at("alloc.released"), 0.0);
  const auto held_cpu = [](const CheckpointState& s) {
    double cpu = 0.0;
    for (const auto& u : s.units) cpu += u.allocated.cpu();
    return cpu;
  };
  EXPECT_LT(held_cpu(states.back()), 0.5 * held_cpu(states[states.size() / 2]));
}

TEST(ConservationPropertiesTest, FaultedMultiResourceRunConserves) {
  // Outage eviction, degraded-capacity eviction, stochastic flapping and
  // same-step re-placement all mutate the ledger mid-step; none of them may
  // break the sum, in any dimension.
  std::vector<CheckpointState> states;
  auto cfg = checkpointing_config(sine_workload(4, 300), &states);
  fault::FaultSpec outage;
  outage.kind = fault::FaultKind::kOutage;
  outage.dc_index = 0;
  outage.window_from = 80;
  outage.window_to = 120;
  fault::FaultSpec degrade;
  degrade.kind = fault::FaultKind::kCapacityLoss;
  degrade.dc_index = 1;
  degrade.window_from = 150;
  degrade.window_to = 250;
  degrade.severity = 0.5;
  fault::FaultSpec flap;
  flap.dc_index = 0;
  flap.mtbf_steps = 90.0;
  flap.mttr_steps = 12.0;
  flap.seed = 7;
  cfg.faults = {outage, degrade, flap};
  cfg.resilience.enabled = true;
  const auto result = simulate(cfg);
  ASSERT_FALSE(result.fault_events.empty());
  expect_conserved(states);
}

TEST(ConservationPropertiesTest, ShedUnderPressureConserves) {
  // Priority shedding force-releases a *different* unit's allocations in
  // the middle of another unit's grant walk — the nastiest ledger path.
  std::vector<CheckpointState> states;
  SimulationConfig cfg;
  dc::DataCenterSpec only;
  only.name = "Only";
  only.location = {52.37, 4.90};
  only.machines = 4;
  only.policy = dc::HostingPolicy::preset(3);
  cfg.datacenters = {only};
  GameSpec low;
  low.name = "Low";
  low.priority = 0;
  low.load = LoadModel{UpdateModel::kQuadratic, 2000.0};
  low.workload = sine_workload(2, 120, 1500.0, 200.0);
  GameSpec high;
  high.name = "High";
  high.priority = 5;
  high.load = LoadModel{UpdateModel::kQuadratic, 2000.0};
  high.workload = sine_workload(2, 120, 1500.0, 200.0);
  cfg.games = {low, high};
  cfg.predictor = [] {
    return std::make_unique<predict::LastValuePredictor>();
  };
  fault::FaultSpec degrade;
  degrade.kind = fault::FaultKind::kCapacityLoss;
  degrade.dc_index = 0;
  degrade.window_from = 40;
  degrade.window_to = 120;
  degrade.severity = 0.5;
  cfg.faults = {degrade};
  cfg.resilience.enabled = true;
  cfg.resilience.shed_low_priority = true;
  cfg.checkpoint_every_steps = 1;
  cfg.checkpoint_sink = [&states](const CheckpointState& state) {
    states.push_back(state);
  };
  const auto shed = simulate(cfg);
  ASSERT_EQ(shed.games.size(), 2u);
  EXPECT_GT(shed.games[0].sla.shed_steps, 0u);
  expect_conserved(states);
}

TEST(ConservationPropertiesTest, ZeroCpuAllocationsAreNeverAutoReleased) {
  // Under a quadratic load model, CPU demand falls with the square of the
  // player count while network demand falls only linearly — so low-demand
  // units hold bandwidth-only top-up allocations (amount.cpu() == 0). The
  // release loop ranks candidates by CPU recovered and deliberately skips
  // zero-CPU records (releasing them frees no CPU and just sheds paid-for
  // headroom early); only fault eviction may remove them. A fault-free run
  // must therefore leave every zero-CPU allocation in place once granted.
  std::vector<CheckpointState> states;
  auto cfg =
      checkpointing_config(sine_workload(2, 240, 400.0, 600.0), &states);
  const auto result = simulate(cfg);
  ASSERT_EQ(result.steps, 240u);
  std::size_t zero_cpu_seen = 0;
  std::set<std::size_t> prev_zero_ids;
  for (const auto& state : states) {
    std::set<std::size_t> zero_ids;
    for (const auto& unit : state.units) {
      for (const auto& a : unit.allocations) {
        if (a.amount.cpu() == 0.0) zero_ids.insert(a.id);
      }
    }
    zero_cpu_seen += zero_ids.size();
    for (const auto id : prev_zero_ids) {
      EXPECT_TRUE(zero_ids.count(id))
          << "zero-CPU allocation " << id << " vanished by step "
          << state.steps;
    }
    prev_zero_ids = std::move(zero_ids);
  }
  // The property must not hold vacuously.
  ASSERT_GT(zero_cpu_seen, 0u);
}

TEST(ConservationPropertiesTest, PerStepAllocatedNeverGoesNegative) {
  // The outward-facing mirror of the internal invariant: the global metrics
  // accumulator's per-step allocated vector is a sum over unit ledgers, so
  // conservation implies componentwise non-negativity there too.
  std::vector<CheckpointState> states;
  auto cfg =
      checkpointing_config(staircase_cliff_workload(4, 480), &states);
  const auto result = simulate(cfg);
  for (const auto& step : result.metrics.step_metrics()) {
    for (std::size_t k = 0; k < util::kResourceKinds; ++k) {
      EXPECT_GE(step.allocated.v[k], 0.0);
    }
  }
}

}  // namespace
}  // namespace mmog::core
