// Property-based tests over all five update models: the load-model algebra
// the provisioning pipeline relies on must hold for each of them.

#include <gtest/gtest.h>

#include <cmath>

#include "core/load_model.hpp"
#include "util/rng.hpp"

namespace mmog::core {
namespace {

class LoadModelProperties : public ::testing::TestWithParam<UpdateModel> {
 protected:
  LoadModel model() const { return LoadModel{GetParam(), 2000.0}; }
};

TEST_P(LoadModelProperties, NormalizedAtReference) {
  const auto m = model();
  const auto d = m.demand(2000.0);
  for (std::size_t r = 0; r < util::kResourceKinds; ++r) {
    EXPECT_NEAR(d.v[r], 1.0, 1e-9);
  }
}

TEST_P(LoadModelProperties, ZeroPlayersZeroDemand) {
  EXPECT_EQ(model().demand(0.0), util::ResourceVector{});
  EXPECT_EQ(model().demand(-5.0), util::ResourceVector{});
}

TEST_P(LoadModelProperties, DemandIsMonotonic) {
  const auto m = model();
  util::ResourceVector prev{};
  for (double p = 0.0; p <= 2400.0; p += 40.0) {
    const auto d = m.demand(p);
    EXPECT_TRUE(d.covers(prev)) << "players " << p;
    prev = d;
  }
}

TEST_P(LoadModelProperties, DemandIsNonNegativeAndFinite) {
  const auto m = model();
  util::Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const auto d = m.demand(rng.uniform(-100.0, 5000.0));
    EXPECT_TRUE(d.non_negative());
    for (double v : d.v) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST_P(LoadModelProperties, CpuConvexityOrdersHalfLoad) {
  // For superlinear models, half the players need at most half the CPU.
  const auto m = model();
  const double half = m.demand(1000.0).cpu();
  EXPECT_LE(half, 0.5 + 1e-9);
  EXPECT_GT(half, 0.0);
}

TEST_P(LoadModelProperties, LinearResourcesScaleLinearly) {
  const auto m = model();
  util::Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const double p = rng.uniform(0.0, 2000.0);
    const auto d = m.demand(p);
    EXPECT_NEAR(d.memory(), p / 2000.0, 1e-9);
    EXPECT_NEAR(d.net_in(), p / 2000.0, 1e-9);
    EXPECT_NEAR(d.net_out(), p / 2000.0, 1e-9);
  }
}

TEST_P(LoadModelProperties, AreaOfInterestNeverRaisesCost) {
  const auto base = GetParam();
  const auto reduced = with_area_of_interest(base);
  for (double n = 1.0; n <= 4000.0; n *= 2.0) {
    EXPECT_LE(update_cost(reduced, n), update_cost(base, n) + 1e-9)
        << "n = " << n;
  }
}

TEST_P(LoadModelProperties, AreaOfInterestIsIdempotent) {
  const auto once = with_area_of_interest(GetParam());
  EXPECT_EQ(with_area_of_interest(once), once);
}

TEST_P(LoadModelProperties, UpdateCostGrowsAtLeastLinearly) {
  // Every model is Omega(n): doubling the entities at least doubles cost.
  for (double n = 8.0; n <= 2048.0; n *= 2.0) {
    EXPECT_GE(update_cost(GetParam(), 2.0 * n),
              2.0 * update_cost(GetParam(), n) - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllUpdateModels, LoadModelProperties,
    ::testing::Values(UpdateModel::kLinear, UpdateModel::kNLogN,
                      UpdateModel::kQuadratic, UpdateModel::kQuadraticLogN,
                      UpdateModel::kCubic),
    [](const auto& info) {
      switch (info.param) {
        case UpdateModel::kLinear: return "Linear";
        case UpdateModel::kNLogN: return "NLogN";
        case UpdateModel::kQuadratic: return "Quadratic";
        case UpdateModel::kQuadraticLogN: return "QuadraticLogN";
        case UpdateModel::kCubic: return "Cubic";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace mmog::core
