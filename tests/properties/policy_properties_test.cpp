// Property-based tests over all eleven Table IV hosting policies: the
// quantization and bundle algebra must hold for every policy and every
// demand the simulator can produce.

#include <gtest/gtest.h>

#include <cmath>

#include "dc/hosting_policy.hpp"
#include "util/rng.hpp"

namespace mmog::dc {
namespace {

class PolicyProperties : public ::testing::TestWithParam<int> {
 protected:
  HostingPolicy policy() const { return HostingPolicy::preset(GetParam()); }
};

TEST_P(PolicyProperties, QuantizeCoversDemand) {
  const auto p = policy();
  util::Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const auto demand = util::ResourceVector::of(
        rng.uniform(0.0, 50.0), rng.uniform(0.0, 100.0),
        rng.uniform(0.0, 50.0), rng.uniform(0.0, 50.0));
    const auto q = p.quantize(demand);
    EXPECT_TRUE(q.covers(demand));
  }
}

TEST_P(PolicyProperties, QuantizeIsIdempotent) {
  const auto p = policy();
  util::Rng rng(100 + GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto demand = util::ResourceVector::of(
        rng.uniform(0.0, 20.0), rng.uniform(0.0, 20.0),
        rng.uniform(0.0, 20.0), rng.uniform(0.0, 20.0));
    const auto once = p.quantize(demand);
    const auto twice = p.quantize(once);
    for (std::size_t r = 0; r < util::kResourceKinds; ++r) {
      EXPECT_NEAR(once.v[r], twice.v[r], 1e-9);
    }
  }
}

TEST_P(PolicyProperties, QuantizeWasteBoundedByOneBulk) {
  const auto p = policy();
  util::Rng rng(200 + GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto demand = util::ResourceVector::of(
        rng.uniform(0.01, 30.0), rng.uniform(0.01, 30.0),
        rng.uniform(0.01, 30.0), rng.uniform(0.01, 30.0));
    const auto q = p.quantize(demand);
    for (std::size_t r = 0; r < util::kResourceKinds; ++r) {
      const double bulk = p.bulk.v[r];
      EXPECT_LE(q.v[r], demand.v[r] + (bulk > 0.0 ? bulk : 0.0) + 1e-9);
    }
  }
}

TEST_P(PolicyProperties, BundlesCoverConstrainedDemand) {
  const auto p = policy();
  util::Rng rng(300 + GetParam());
  for (int i = 0; i < 300; ++i) {
    const auto demand = util::ResourceVector::of(
        rng.uniform(0.0, 40.0), rng.uniform(0.0, 40.0),
        rng.uniform(0.0, 40.0), rng.uniform(0.0, 40.0));
    const auto k = p.bundles_needed(demand);
    const auto amount = p.bundle_amount(k);
    for (std::size_t r = 0; r < util::kResourceKinds; ++r) {
      if (p.bulk.v[r] > 0.0 && demand.v[r] > 0.0) {
        EXPECT_GE(amount.v[r], demand.v[r] - 1e-9)
            << "resource " << r << " demand " << demand.v[r];
      }
    }
    // Minimality: one fewer bundle would leave some resource uncovered.
    if (k > 0) {
      const auto less = p.bundle_amount(k - 1);
      bool some_uncovered = false;
      for (std::size_t r = 0; r < util::kResourceKinds; ++r) {
        if (p.bulk.v[r] > 0.0 && demand.v[r] > less.v[r] + 1e-9) {
          some_uncovered = true;
        }
      }
      EXPECT_TRUE(some_uncovered);
    }
  }
}

TEST_P(PolicyProperties, BundlesFittingNeverOverCommits) {
  const auto p = policy();
  util::Rng rng(400 + GetParam());
  for (int i = 0; i < 300; ++i) {
    const auto free = util::ResourceVector::of(
        rng.uniform(0.0, 30.0), rng.uniform(0.0, 60.0),
        rng.uniform(0.0, 200.0), rng.uniform(0.0, 60.0));
    const auto k = p.bundles_fitting(free);
    const auto amount = p.bundle_amount(k);
    EXPECT_TRUE(free.covers(amount));
    // Maximality: one more bundle would not fit.
    const auto more = p.bundle_amount(k + 1);
    EXPECT_FALSE(free.covers(more));
  }
}

TEST_P(PolicyProperties, BundleAmountIsLinearInCount) {
  const auto p = policy();
  const auto one = p.bundle_amount(1);
  const auto five = p.bundle_amount(5);
  for (std::size_t r = 0; r < util::kResourceKinds; ++r) {
    EXPECT_NEAR(five.v[r], 5.0 * one.v[r], 1e-9);
  }
}

TEST_P(PolicyProperties, TimeBulkStepsMatchesMinutes) {
  const auto p = policy();
  EXPECT_EQ(p.time_bulk_steps(),
            static_cast<std::size_t>(std::ceil(p.time_bulk_minutes / 2.0)));
  EXPECT_GT(p.time_bulk_steps(), 0u);
}

TEST_P(PolicyProperties, ZeroDemandNeedsNothing) {
  const auto p = policy();
  EXPECT_EQ(p.bundles_needed({}), 0u);
  EXPECT_EQ(p.quantize({}), util::ResourceVector{});
}

TEST_P(PolicyProperties, AllPresetsHaveCpuBulk) {
  // Every Table IV policy constrains CPU — the resource that drives
  // placement in the simulator.
  EXPECT_GT(policy().bulk.cpu(), 0.0);
  EXPECT_TRUE(policy().has_bundles());
}

INSTANTIATE_TEST_SUITE_P(AllHostingPolicies, PolicyProperties,
                         ::testing::Range(1, 12),
                         [](const auto& info) {
                           return "HP" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mmog::dc
