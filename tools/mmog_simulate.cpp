// mmog-simulate: run the dynamic/static provisioning simulation on a CSV
// workload trace against a chosen hosting setup.
//
// Usage:
//   mmog_simulate --in FILE [--mode dynamic|static]
//                 [--predictor neural|lastvalue|average|movingavg|median|
//                              expsmooth|holt|holtwinters]
//                 [--world table3|policy] [--policy N] [--machines M]
//                 [--model n|nlogn|n2|n2logn|n3] [--tolerance 0..4]
//                 [--safety F] [--lead-in-days D] [--threads N]
//                 [--fault "SPEC[;SPEC...]"] [--resilience]
//                 [--reserve K] [--shed]
//                 [--metrics-out FILE.{json,csv}]
//                 [--trace-out FILE[.jsonl]] [--trace-detail]
//                 [--audit-out FILE.jsonl] [--report-out FILE.json]
//                 [--checkpoint-out FILE] [--checkpoint-every N]
//                 [--restore FILE]
//                 [--serve PORT] [--serve-hold SEC]
//                 [--alert "SPEC[;SPEC...]"] [--no-default-alerts]
//
// --checkpoint-out writes a versioned, checksummed snapshot of the
// complete provisioning state every --checkpoint-every steps (default 30;
// 0 = only on shutdown). Writes are atomic (temp file + rename) and the
// previous generation is kept at FILE.prev, so a kill mid-write can never
// leave a torn newest-and-only checkpoint. --restore resumes from a
// checkpoint (falling back to FILE.prev when FILE is damaged) and runs to
// the end; the resulting report and audit trail are byte-identical to the
// uninterrupted run's, at any --threads. SIGINT/SIGTERM stop the run
// gracefully: the current step completes, a final checkpoint and every
// requested artifact are flushed, and the exit code is 3.
//
// --metrics-out snapshots the observability registry (per-phase duration
// histograms, offer/allocation counters) as JSON (.json) or CSV (anything
// else). --trace-out writes per-step spans and allocation events as JSONL
// (.jsonl) or Chrome trace_event JSON loadable in chrome://tracing and
// ui.perfetto.dev (any other extension); the file is also written when the
// run dies on an exception, so a crashed run leaves its partial trace.
// --trace-detail adds per-unit prediction/padding point events.
//
// --audit-out records one structured decision-audit record per
// provisioning decision (predicted vs. actual demand, safety margin, every
// candidate offer considered and why it was taken or rejected, fault /
// backoff / shed causes) as JSONL. Trails are byte-identical for same-seed
// runs at any --threads value. With --serve the live trail is also
// queryable at GET /audit.
//
// --report-out writes the canonical RunReport JSON (config fingerprint,
// deterministic outcome totals, per-phase timing quantiles, peak RSS) —
// the BENCH_core.json input of tools/mmog_diff. The end-of-run summary
// printed below is rendered from this same report.
//
// --fault injects failures: each ';'-separated spec is
// kind:key=value,... with kind outage|capacity|latency|flap, e.g.
//   --fault "outage:dc=2,mtbf=4d,mttr=2h,seed=9;flap:dc=0,mtbf=1d,mttr=2m"
// (see src/fault/parse.hpp for the full key list). --resilience turns on
// same-step re-placement with exponential backoff; --reserve K requests an
// N+k standby reserve of K full servers per demand unit; --shed sacrifices
// lower-priority games when supply cannot cover demand.
//
// --threads N runs the per-step predict phase on N worker threads (0 =
// hardware concurrency; default 1 = serial). Results are bit-identical for
// any N; the speedup shows up in the phase.predict_us histogram of
// --metrics-out / the /metrics endpoint.
//
// --serve starts the live telemetry endpoint on 127.0.0.1:PORT (0 picks an
// ephemeral port; the bound port is printed to stderr): GET /metrics
// (Prometheus text exposition), /healthz, /alerts and /timeseries.json
// serve the running simulation's state. --serve-hold keeps serving SEC
// seconds after the run finishes so short runs can still be scraped.
// --alert adds SLA alert rules, each ';'-separated spec mirroring the
// --fault grammar:
//   --alert "underalloc:metric=core.underalloc_frac,op=>,value=0.01,for=5"
// (see src/obs/alert_parse.hpp). The built-in rules — the paper's 1%
// under-provisioning threshold and worst-game SLA availability < 99% —
// are always on with --serve/--alert unless --no-default-alerts is given.
// Firing/resolve edges land in the trace (category "alert"), the
// `alert.fired`/`alert.resolved` counters, and the end-of-run summary.

#include <csignal>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <thread>

#include "ckpt/checkpoint.hpp"
#include "core/run_report.hpp"
#include "core/simulation.hpp"
#include "fault/parse.hpp"
#include "obs/alert_parse.hpp"
#include "obs/http_server.hpp"
#include "obs/jsonio.hpp"
#include "obs/recorder.hpp"
#include "predict/holt_winters.hpp"
#include "predict/neural.hpp"
#include "predict/simple.hpp"
#include "trace/io.hpp"
#include "util/args.hpp"
#include "util/atomic_file.hpp"

using namespace mmog;
using util::ResourceKind;

namespace {

core::UpdateModel parse_model(const std::string& name) {
  if (name == "n") return core::UpdateModel::kLinear;
  if (name == "nlogn") return core::UpdateModel::kNLogN;
  if (name == "n2") return core::UpdateModel::kQuadratic;
  if (name == "n2logn") return core::UpdateModel::kQuadraticLogN;
  if (name == "n3") return core::UpdateModel::kCubic;
  throw std::invalid_argument("unknown --model " + name);
}

// The neural predictor is handled in main (the shared model is trained or
// restored there so checkpoints can carry it); this covers the rest.
predict::PredictorFactory parse_predictor(const std::string& name) {
  if (name == "lastvalue") {
    return [] { return std::make_unique<predict::LastValuePredictor>(); };
  }
  if (name == "average") {
    return [] { return std::make_unique<predict::AveragePredictor>(); };
  }
  if (name == "movingavg") {
    return [] { return std::make_unique<predict::MovingAveragePredictor>(5); };
  }
  if (name == "median") {
    return [] {
      return std::make_unique<predict::SlidingWindowMedianPredictor>(5);
    };
  }
  if (name == "expsmooth") {
    return [] {
      return std::make_unique<predict::ExponentialSmoothingPredictor>(0.5);
    };
  }
  if (name == "holt") {
    return [] { return std::make_unique<predict::HoltPredictor>(); };
  }
  if (name == "holtwinters") {
    return [] { return std::make_unique<predict::HoltWintersPredictor>(); };
  }
  throw std::invalid_argument("unknown --predictor " + name);
}

// Cooperative shutdown: SIGINT/SIGTERM flip the flag, the simulation loop
// finishes its current step, writes a final checkpoint (when configured)
// and the tool flushes every artifact before exiting with code 3.
std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) { g_stop.store(true); }

void install_stop_handlers() {
  struct sigaction sa{};
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto in_path = args.get("in", "");
  if (args.has("help") || in_path.empty()) {
    std::printf(
        "usage: %s --in FILE [--mode dynamic|static] [--predictor NAME]\n"
        "          [--world table3|policy] [--policy N] [--machines M]\n"
        "          [--model n|nlogn|n2|n2logn|n3] [--tolerance 0..4]\n"
        "          [--safety F] [--lead-in-days D] [--threads N]\n"
        "          [--fault \"SPEC[;SPEC...]\"] [--resilience]\n"
        "          [--reserve K] [--shed]\n"
        "          [--metrics-out FILE.{json,csv}]\n"
        "          [--trace-out FILE[.jsonl]] [--trace-detail]\n"
        "          [--audit-out FILE.jsonl] [--report-out FILE.json]\n"
        "          [--checkpoint-out FILE] [--checkpoint-every N]\n"
        "          [--restore FILE]\n"
        "          [--serve PORT] [--serve-hold SEC]\n"
        "          [--alert \"SPEC[;SPEC...]\"] [--no-default-alerts]\n",
        args.program().c_str());
    return in_path.empty() && !args.has("help") ? 1 : 0;
  }

  try {
    // SIGINT/SIGTERM land as a cooperative stop: the run finishes its
    // current step, writes a final checkpoint (with --checkpoint-out),
    // flushes every requested artifact and exits with code 3. Installed
    // before the workload load so an early signal is not fatal either.
    install_stop_handlers();

    auto workload = trace::read_world_csv_file(in_path);
    const auto lead_in = util::samples_per_days(
        args.get_double("lead-in-days", 1.0));

    core::SimulationConfig cfg;
    const auto world_kind = args.get("world", "table3");
    if (world_kind == "table3") {
      cfg.datacenters = dc::paper_ecosystem();
    } else if (world_kind == "policy") {
      dc::DataCenterSpec center;
      center.name = "DC";
      center.location = dc::region_site(workload.regions.front().name).location;
      center.machines = static_cast<std::size_t>(args.get_long("machines", 40));
      center.policy = dc::HostingPolicy::preset(
          static_cast<int>(args.get_long("policy", 1)));
      cfg.datacenters = {center};
    } else {
      throw std::invalid_argument("unknown --world " + world_kind);
    }

    core::GameSpec game;
    game.name = "CLI MMOG";
    game.load = core::LoadModel{parse_model(args.get("model", "n2")), 2000.0};
    const long tolerance = args.get_long("tolerance", 4);
    if (tolerance < 0 || tolerance > 4) {
      throw std::invalid_argument("--tolerance must be 0..4");
    }
    game.latency_tolerance = static_cast<dc::DistanceClass>(tolerance);
    game.workload = std::move(workload);
    cfg.games.push_back(std::move(game));

    cfg.safety_factor = args.get_double("safety", 0.5);
    const long threads = args.get_long("threads", 1);
    if (threads < 0) throw std::invalid_argument("--threads must be >= 0");
    cfg.threads = static_cast<std::size_t>(threads);
    cfg.faults = fault::parse_fault_specs(args.get("fault", ""));
    cfg.resilience.enabled =
        args.has("resilience") || args.has("reserve") || args.has("shed");
    cfg.resilience.standby_reserve_servers = args.get_double("reserve", 0.0);
    cfg.resilience.shed_low_priority = args.has("shed");
    const auto mode = args.get("mode", "dynamic");
    if (mode != "static" && mode != "dynamic") {
      throw std::invalid_argument("unknown --mode " + mode);
    }
    if (mode == "static") cfg.mode = core::AllocationMode::kStatic;
    const auto predictor_name =
        mode == "static" ? std::string() : args.get("predictor", "lastvalue");

    // The configuration echo stored in checkpoints and verified on
    // --restore: resuming under a different workload, world, predictor or
    // fault plan is refused up front (simulate() additionally verifies the
    // geometry and the expanded fault schedule). These same entries feed
    // the run report's config block.
    std::map<std::string, std::string> config_echo;
    config_echo["in"] = in_path;
    config_echo["world"] = world_kind;
    config_echo["model"] = args.get("model", "n2");
    config_echo["tolerance"] = std::to_string(tolerance);
    config_echo["predictor"] = predictor_name;
    config_echo["lead_in_steps"] = std::to_string(lead_in);
    config_echo["fault_spec"] = args.get("fault", "");
    config_echo["mode"] = mode;
    config_echo["safety"] = obs::json_double(cfg.safety_factor);
    if (world_kind == "policy") {
      config_echo["policy"] = std::to_string(args.get_long("policy", 1));
      config_echo["machines"] = std::to_string(args.get_long("machines", 40));
    }

    const auto restore_path = args.get("restore", "");
    std::optional<ckpt::LoadedCheckpoint> restored;
    if (!restore_path.empty()) {
      restored = ckpt::load_newest_valid(restore_path);
      for (const auto& note : restored->notes) {
        std::fprintf(stderr, "mmog_simulate: skipped checkpoint: %s\n",
                     note.c_str());
      }
      for (const auto& [key, value] : config_echo) {
        const auto it = restored->file.extras.find(key);
        if (it == restored->file.extras.end() || it->second != value) {
          throw std::invalid_argument(
              "--restore: checkpoint was produced under a different "
              "configuration (key \"" +
              key + "\": checkpoint \"" +
              (it == restored->file.extras.end() ? std::string("<absent>")
                                                 : it->second) +
              "\", this run \"" + value + "\")");
        }
      }
      cfg.restore_from = &restored->file.state;
      std::fprintf(stderr, "mmog_simulate: restoring at step %zu from %s\n",
                   restored->file.state.next_step, restored->path.c_str());
    }

    // The neural predictor's shared model rides inside checkpoints, so a
    // restore never retrains: same weights, bit-identical predictions.
    std::string nn_model_text;
    if (mode == "dynamic") {
      if (predictor_name == "neural") {
        std::shared_ptr<const predict::NeuralModel> model;
        if (restored && restored->file.extras.contains("nn_model")) {
          std::istringstream saved(restored->file.extras.at("nn_model"));
          model = std::make_shared<const predict::NeuralModel>(
              predict::NeuralModel::load(saved));
        } else {
          predict::NeuralConfig ncfg;
          ncfg.train.max_eras = 40;
          ncfg.train.patience = 8;
          model = core::neural_model_from_workload(cfg.games[0].workload,
                                                   lead_in, ncfg, 6);
        }
        std::ostringstream serialized;
        model->save(serialized);
        nn_model_text = serialized.str();
        cfg.predictor = core::neural_factory_from_model(std::move(model));
      } else {
        cfg.predictor = parse_predictor(predictor_name);
      }
    }

    const auto metrics_out = args.get("metrics-out", "");
    const auto trace_out = args.get("trace-out", "");
    const auto audit_out = args.get("audit-out", "");
    const auto report_out = args.get("report-out", "");
    const auto checkpoint_out = args.get("checkpoint-out", "");
    const bool serve = args.has("serve");
    const bool live = serve || args.has("alert");
    std::unique_ptr<obs::Recorder> recorder;
    if (!metrics_out.empty() || !trace_out.empty() || !audit_out.empty() ||
        !report_out.empty() || !checkpoint_out.empty() || live) {
      auto level = obs::TraceLevel::kOff;
      if (!trace_out.empty()) {
        level = args.has("trace-detail") ? obs::TraceLevel::kDetail
                                         : obs::TraceLevel::kSteps;
      }
      recorder = std::make_unique<obs::Recorder>(level);
      cfg.recorder = recorder.get();
      // Per-phase allocation counts, steps/s and RSS gauges. Purely
      // observational: reports stay byte-identical with or without it.
      recorder->enable_profiler();
      // The decision trail costs one record per acting decision; keep it
      // on whenever it has a consumer: an --audit-out file, GET /audit, or
      // a checkpoint (which must carry the trail prefix so a restarted run
      // reproduces the full trail with identical sequence numbers).
      if (!audit_out.empty() || serve || !checkpoint_out.empty()) {
        recorder->enable_audit();
      }
    }
    if (live) {
      recorder->enable_timeseries();
      auto rules = args.has("no-default-alerts")
                       ? std::vector<obs::AlertRule>{}
                       : obs::default_alert_rules(cfg.event_threshold_pct);
      for (auto& rule : obs::parse_alert_rules(args.get("alert", ""))) {
        rules.push_back(std::move(rule));
      }
      if (!rules.empty()) recorder->enable_alerts(std::move(rules));
    }
    std::unique_ptr<obs::TelemetryService> telemetry;
    if (serve) {
      const long port = args.get_long("serve", 0);
      if (port < 0 || port > 65535) {
        throw std::invalid_argument("--serve PORT must be 0..65535");
      }
      telemetry = std::make_unique<obs::TelemetryService>(
          *recorder, static_cast<std::uint16_t>(port));
      std::fprintf(stderr,
                   "mmog_simulate: serving telemetry on "
                   "http://127.0.0.1:%u (/metrics /healthz /alerts "
                   "/timeseries.json /audit)\n",
                   telemetry->port());
      std::fflush(stderr);
    }

    const long checkpoint_every = args.get_long("checkpoint-every", 30);
    if (checkpoint_every < 0) {
      throw std::invalid_argument("--checkpoint-every must be >= 0");
    }
    std::map<std::string, std::string> ckpt_extras = config_echo;
    if (!nn_model_text.empty()) ckpt_extras["nn_model"] = nn_model_text;
    if (!checkpoint_out.empty()) {
      cfg.checkpoint_every_steps =
          static_cast<std::size_t>(checkpoint_every);
      obs::Recorder* rec = recorder.get();
      cfg.checkpoint_sink = [&ckpt_extras, checkpoint_out,
                             rec](const core::CheckpointState& st) {
        ckpt::CheckpointFile file;
        file.state = st;
        file.extras = ckpt_extras;
        ckpt::write_checkpoint_file(checkpoint_out, file);
        if (rec) rec->note_checkpoint(st.next_step);
      };
    }
    cfg.stop_flag = &g_stop;

    auto ends_with = [](const std::string& s, std::string_view suffix) {
      return s.size() >= suffix.size() &&
             s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
    };
    // The trace survives an exception inside simulate(): the guard's
    // destructor writes the (partial) file during unwinding; the explicit
    // flush() below covers the happy path and surfaces I/O errors.
    obs::TraceFileGuard trace_guard(
        recorder && !trace_out.empty() ? &recorder->tracer() : nullptr,
        trace_out,
        ends_with(trace_out, ".jsonl")
            ? obs::TraceFileGuard::Format::kJsonl
            : obs::TraceFileGuard::Format::kChromeTrace);

    const auto wall_start = std::chrono::steady_clock::now();
    const auto result = core::simulate(cfg);
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    // Artifacts land via temp-file + rename: a crash or full disk while
    // writing leaves the previous file intact, never a torn half-report.
    if (!metrics_out.empty()) {
      util::AtomicFileWriter out(metrics_out);
      const auto snap = recorder->snapshot();
      out.stream() << (ends_with(metrics_out, ".json") ? snap.to_json()
                                                       : snap.to_csv());
      out.commit();
    }
    trace_guard.flush();
    if (!audit_out.empty()) {
      util::AtomicFileWriter out(audit_out);
      recorder->audit()->write_jsonl(out.stream());
      out.commit();
    }

    // The canonical report is the single source of truth for the run's
    // totals: BENCH_core.json (--report-out), the stdout summary and the
    // stderr one-liner all render from it.
    const auto report = core::make_run_report(
        cfg, result, "mmog_simulate", "", wall_seconds, config_echo);
    if (!report_out.empty()) {
      util::AtomicFileWriter out(report_out);
      out.stream() << report.to_json() << '\n';
      out.commit();
    }

    const obs::AlertEngine* engine =
        recorder ? recorder->alerts() : nullptr;
    if (engine) {
      std::fprintf(stderr,
                   "mmog_simulate: %zu steps, %zu game(s), %zu data "
                   "center(s), %.2f s wall, %.1f steps/s, peak RSS %zu "
                   "KiB, alerts: %zu fired / %zu resolved / %zu still "
                   "firing\n",
                   static_cast<std::size_t>(report.outcome.steps),
                   cfg.games.size(), cfg.datacenters.size(),
                   report.wall_seconds, report.steps_per_sec,
                   static_cast<std::size_t>(report.peak_rss_kb),
                   static_cast<std::size_t>(report.outcome.alerts_fired),
                   static_cast<std::size_t>(report.outcome.alerts_resolved),
                   static_cast<std::size_t>(report.outcome.alerts_firing));
    } else {
      std::fprintf(stderr,
                   "mmog_simulate: %zu steps, %zu game(s), %zu data "
                   "center(s), %.2f s wall, %.1f steps/s, peak RSS %zu "
                   "KiB\n",
                   static_cast<std::size_t>(report.outcome.steps),
                   cfg.games.size(), cfg.datacenters.size(),
                   report.wall_seconds, report.steps_per_sec,
                   static_cast<std::size_t>(report.peak_rss_kb));
    }

    std::fputs(report.summary_text().c_str(), stdout);
    std::printf("\nPer data center (avg CPU units):\n");
    for (const auto& usage : result.datacenters) {
      if (usage.avg_allocated_cpu < 0.005) continue;
      std::printf("  %-16s %7.2f / %-4.0f\n", usage.name.c_str(),
                  usage.avg_allocated_cpu, usage.capacity_cpu);
    }
    if (engine) {
      std::printf("\nAlerts:\n");
      for (const auto& status : engine->statuses()) {
        std::printf("  %-20s %-9s fired %zu, resolved %zu  (%s)\n",
                    status.rule.name.c_str(),
                    std::string(obs::alert_state_name(status.state)).c_str(),
                    static_cast<std::size_t>(status.fired_count),
                    static_cast<std::size_t>(status.resolved_count),
                    obs::describe(status.rule).c_str());
      }
    }
    if (telemetry) {
      const double hold = args.get_double("serve-hold", 0.0);
      if (hold > 0.0) {
        std::fprintf(stderr,
                     "mmog_simulate: holding telemetry endpoint for %.0f s\n",
                     hold);
        std::fflush(stderr);
        std::fflush(stdout);
        std::this_thread::sleep_for(std::chrono::duration<double>(hold));
      }
      telemetry->stop();
    }
    if (result.interrupted) {
      std::fprintf(stderr,
                   "mmog_simulate: interrupted after %zu steps; artifacts "
                   "flushed%s\n",
                   result.steps,
                   checkpoint_out.empty() ? ""
                                          : ", final checkpoint written");
      return 3;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
