// mmog-simulate: run the dynamic/static provisioning simulation on a CSV
// workload trace against a chosen hosting setup.
//
// Usage:
//   mmog_simulate --in FILE [--mode dynamic|static]
//                 [--predictor neural|lastvalue|average|movingavg|median|
//                              expsmooth|holt|holtwinters]
//                 [--world table3|policy] [--policy N] [--machines M]
//                 [--model n|nlogn|n2|n2logn|n3] [--tolerance 0..4]
//                 [--safety F] [--lead-in-days D] [--threads N]
//                 [--fault "SPEC[;SPEC...]"] [--resilience]
//                 [--reserve K] [--shed]
//                 [--metrics-out FILE.{json,csv}]
//                 [--trace-out FILE[.jsonl]] [--trace-detail]
//                 [--audit-out FILE.jsonl] [--report-out FILE.json]
//                 [--serve PORT] [--serve-hold SEC]
//                 [--alert "SPEC[;SPEC...]"] [--no-default-alerts]
//
// --metrics-out snapshots the observability registry (per-phase duration
// histograms, offer/allocation counters) as JSON (.json) or CSV (anything
// else). --trace-out writes per-step spans and allocation events as JSONL
// (.jsonl) or Chrome trace_event JSON loadable in chrome://tracing and
// ui.perfetto.dev (any other extension); the file is also written when the
// run dies on an exception, so a crashed run leaves its partial trace.
// --trace-detail adds per-unit prediction/padding point events.
//
// --audit-out records one structured decision-audit record per
// provisioning decision (predicted vs. actual demand, safety margin, every
// candidate offer considered and why it was taken or rejected, fault /
// backoff / shed causes) as JSONL. Trails are byte-identical for same-seed
// runs at any --threads value. With --serve the live trail is also
// queryable at GET /audit.
//
// --report-out writes the canonical RunReport JSON (config fingerprint,
// deterministic outcome totals, per-phase timing quantiles, peak RSS) —
// the BENCH_core.json input of tools/mmog_diff. The end-of-run summary
// printed below is rendered from this same report.
//
// --fault injects failures: each ';'-separated spec is
// kind:key=value,... with kind outage|capacity|latency|flap, e.g.
//   --fault "outage:dc=2,mtbf=4d,mttr=2h,seed=9;flap:dc=0,mtbf=1d,mttr=2m"
// (see src/fault/parse.hpp for the full key list). --resilience turns on
// same-step re-placement with exponential backoff; --reserve K requests an
// N+k standby reserve of K full servers per demand unit; --shed sacrifices
// lower-priority games when supply cannot cover demand.
//
// --threads N runs the per-step predict phase on N worker threads (0 =
// hardware concurrency; default 1 = serial). Results are bit-identical for
// any N; the speedup shows up in the phase.predict_us histogram of
// --metrics-out / the /metrics endpoint.
//
// --serve starts the live telemetry endpoint on 127.0.0.1:PORT (0 picks an
// ephemeral port; the bound port is printed to stderr): GET /metrics
// (Prometheus text exposition), /healthz, /alerts and /timeseries.json
// serve the running simulation's state. --serve-hold keeps serving SEC
// seconds after the run finishes so short runs can still be scraped.
// --alert adds SLA alert rules, each ';'-separated spec mirroring the
// --fault grammar:
//   --alert "underalloc:metric=core.underalloc_frac,op=>,value=0.01,for=5"
// (see src/obs/alert_parse.hpp). The built-in rules — the paper's 1%
// under-provisioning threshold and worst-game SLA availability < 99% —
// are always on with --serve/--alert unless --no-default-alerts is given.
// Firing/resolve edges land in the trace (category "alert"), the
// `alert.fired`/`alert.resolved` counters, and the end-of-run summary.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string_view>
#include <thread>

#include "core/run_report.hpp"
#include "core/simulation.hpp"
#include "fault/parse.hpp"
#include "obs/alert_parse.hpp"
#include "obs/http_server.hpp"
#include "obs/recorder.hpp"
#include "predict/holt_winters.hpp"
#include "predict/simple.hpp"
#include "trace/io.hpp"
#include "util/args.hpp"

using namespace mmog;
using util::ResourceKind;

namespace {

core::UpdateModel parse_model(const std::string& name) {
  if (name == "n") return core::UpdateModel::kLinear;
  if (name == "nlogn") return core::UpdateModel::kNLogN;
  if (name == "n2") return core::UpdateModel::kQuadratic;
  if (name == "n2logn") return core::UpdateModel::kQuadraticLogN;
  if (name == "n3") return core::UpdateModel::kCubic;
  throw std::invalid_argument("unknown --model " + name);
}

predict::PredictorFactory parse_predictor(const std::string& name,
                                          const trace::WorldTrace& workload,
                                          std::size_t lead_in) {
  if (name == "neural") {
    predict::NeuralConfig cfg;
    cfg.train.max_eras = 40;
    cfg.train.patience = 8;
    return core::neural_factory_from_workload(workload, lead_in, cfg, 6);
  }
  if (name == "lastvalue") {
    return [] { return std::make_unique<predict::LastValuePredictor>(); };
  }
  if (name == "average") {
    return [] { return std::make_unique<predict::AveragePredictor>(); };
  }
  if (name == "movingavg") {
    return [] { return std::make_unique<predict::MovingAveragePredictor>(5); };
  }
  if (name == "median") {
    return [] {
      return std::make_unique<predict::SlidingWindowMedianPredictor>(5);
    };
  }
  if (name == "expsmooth") {
    return [] {
      return std::make_unique<predict::ExponentialSmoothingPredictor>(0.5);
    };
  }
  if (name == "holt") {
    return [] { return std::make_unique<predict::HoltPredictor>(); };
  }
  if (name == "holtwinters") {
    return [] { return std::make_unique<predict::HoltWintersPredictor>(); };
  }
  throw std::invalid_argument("unknown --predictor " + name);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto in_path = args.get("in", "");
  if (args.has("help") || in_path.empty()) {
    std::printf(
        "usage: %s --in FILE [--mode dynamic|static] [--predictor NAME]\n"
        "          [--world table3|policy] [--policy N] [--machines M]\n"
        "          [--model n|nlogn|n2|n2logn|n3] [--tolerance 0..4]\n"
        "          [--safety F] [--lead-in-days D] [--threads N]\n"
        "          [--fault \"SPEC[;SPEC...]\"] [--resilience]\n"
        "          [--reserve K] [--shed]\n"
        "          [--metrics-out FILE.{json,csv}]\n"
        "          [--trace-out FILE[.jsonl]] [--trace-detail]\n"
        "          [--audit-out FILE.jsonl] [--report-out FILE.json]\n"
        "          [--serve PORT] [--serve-hold SEC]\n"
        "          [--alert \"SPEC[;SPEC...]\"] [--no-default-alerts]\n",
        args.program().c_str());
    return in_path.empty() && !args.has("help") ? 1 : 0;
  }

  try {
    auto workload = trace::read_world_csv_file(in_path);
    const auto lead_in = util::samples_per_days(
        args.get_double("lead-in-days", 1.0));

    core::SimulationConfig cfg;
    const auto world_kind = args.get("world", "table3");
    if (world_kind == "table3") {
      cfg.datacenters = dc::paper_ecosystem();
    } else if (world_kind == "policy") {
      dc::DataCenterSpec center;
      center.name = "DC";
      center.location = dc::region_site(workload.regions.front().name).location;
      center.machines = static_cast<std::size_t>(args.get_long("machines", 40));
      center.policy = dc::HostingPolicy::preset(
          static_cast<int>(args.get_long("policy", 1)));
      cfg.datacenters = {center};
    } else {
      throw std::invalid_argument("unknown --world " + world_kind);
    }

    core::GameSpec game;
    game.name = "CLI MMOG";
    game.load = core::LoadModel{parse_model(args.get("model", "n2")), 2000.0};
    const long tolerance = args.get_long("tolerance", 4);
    if (tolerance < 0 || tolerance > 4) {
      throw std::invalid_argument("--tolerance must be 0..4");
    }
    game.latency_tolerance = static_cast<dc::DistanceClass>(tolerance);
    game.workload = std::move(workload);
    cfg.games.push_back(std::move(game));

    cfg.safety_factor = args.get_double("safety", 0.5);
    const long threads = args.get_long("threads", 1);
    if (threads < 0) throw std::invalid_argument("--threads must be >= 0");
    cfg.threads = static_cast<std::size_t>(threads);
    cfg.faults = fault::parse_fault_specs(args.get("fault", ""));
    cfg.resilience.enabled =
        args.has("resilience") || args.has("reserve") || args.has("shed");
    cfg.resilience.standby_reserve_servers = args.get_double("reserve", 0.0);
    cfg.resilience.shed_low_priority = args.has("shed");
    const auto mode = args.get("mode", "dynamic");
    if (mode == "static") {
      cfg.mode = core::AllocationMode::kStatic;
    } else if (mode == "dynamic") {
      cfg.predictor = parse_predictor(args.get("predictor", "lastvalue"),
                                      cfg.games[0].workload, lead_in);
    } else {
      throw std::invalid_argument("unknown --mode " + mode);
    }

    const auto metrics_out = args.get("metrics-out", "");
    const auto trace_out = args.get("trace-out", "");
    const auto audit_out = args.get("audit-out", "");
    const auto report_out = args.get("report-out", "");
    const bool serve = args.has("serve");
    const bool live = serve || args.has("alert");
    std::unique_ptr<obs::Recorder> recorder;
    if (!metrics_out.empty() || !trace_out.empty() || !audit_out.empty() ||
        !report_out.empty() || live) {
      auto level = obs::TraceLevel::kOff;
      if (!trace_out.empty()) {
        level = args.has("trace-detail") ? obs::TraceLevel::kDetail
                                         : obs::TraceLevel::kSteps;
      }
      recorder = std::make_unique<obs::Recorder>(level);
      cfg.recorder = recorder.get();
      // The decision trail costs one record per acting decision; keep it
      // on whenever it has a consumer (--audit-out file or GET /audit).
      if (!audit_out.empty() || serve) recorder->enable_audit();
    }
    if (live) {
      recorder->enable_timeseries();
      auto rules = args.has("no-default-alerts")
                       ? std::vector<obs::AlertRule>{}
                       : obs::default_alert_rules(cfg.event_threshold_pct);
      for (auto& rule : obs::parse_alert_rules(args.get("alert", ""))) {
        rules.push_back(std::move(rule));
      }
      if (!rules.empty()) recorder->enable_alerts(std::move(rules));
    }
    std::unique_ptr<obs::TelemetryService> telemetry;
    if (serve) {
      const long port = args.get_long("serve", 0);
      if (port < 0 || port > 65535) {
        throw std::invalid_argument("--serve PORT must be 0..65535");
      }
      telemetry = std::make_unique<obs::TelemetryService>(
          *recorder, static_cast<std::uint16_t>(port));
      std::fprintf(stderr,
                   "mmog_simulate: serving telemetry on "
                   "http://127.0.0.1:%u (/metrics /healthz /alerts "
                   "/timeseries.json /audit)\n",
                   telemetry->port());
      std::fflush(stderr);
    }

    auto ends_with = [](const std::string& s, std::string_view suffix) {
      return s.size() >= suffix.size() &&
             s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
    };
    // The trace survives an exception inside simulate(): the guard's
    // destructor writes the (partial) file during unwinding; the explicit
    // flush() below covers the happy path and surfaces I/O errors.
    obs::TraceFileGuard trace_guard(
        recorder && !trace_out.empty() ? &recorder->tracer() : nullptr,
        trace_out,
        ends_with(trace_out, ".jsonl")
            ? obs::TraceFileGuard::Format::kJsonl
            : obs::TraceFileGuard::Format::kChromeTrace);

    const auto wall_start = std::chrono::steady_clock::now();
    const auto result = core::simulate(cfg);
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      if (!out) throw std::runtime_error("cannot write " + metrics_out);
      const auto snap = recorder->snapshot();
      out << (ends_with(metrics_out, ".json") ? snap.to_json()
                                              : snap.to_csv());
    }
    trace_guard.flush();
    if (!audit_out.empty()) {
      std::ofstream out(audit_out);
      if (!out) throw std::runtime_error("cannot write " + audit_out);
      recorder->audit()->write_jsonl(out);
    }

    // The canonical report is the single source of truth for the run's
    // totals: BENCH_core.json (--report-out), the stdout summary and the
    // stderr one-liner all render from it.
    std::map<std::string, std::string> extra;
    extra["in"] = in_path;
    extra["world"] = world_kind;
    extra["model"] = args.get("model", "n2");
    extra["tolerance"] = std::to_string(tolerance);
    extra["predictor"] =
        cfg.mode == core::AllocationMode::kStatic
            ? ""
            : args.get("predictor", "lastvalue");
    extra["lead_in_steps"] = std::to_string(lead_in);
    extra["fault_spec"] = args.get("fault", "");
    if (world_kind == "policy") {
      extra["policy"] = std::to_string(args.get_long("policy", 1));
      extra["machines"] = std::to_string(args.get_long("machines", 40));
    }
    const auto report = core::make_run_report(
        cfg, result, "mmog_simulate", "", wall_seconds, std::move(extra));
    if (!report_out.empty()) {
      std::ofstream out(report_out);
      if (!out) throw std::runtime_error("cannot write " + report_out);
      out << report.to_json() << '\n';
    }

    const obs::AlertEngine* engine =
        recorder ? recorder->alerts() : nullptr;
    if (engine) {
      std::fprintf(stderr,
                   "mmog_simulate: %zu steps, %zu game(s), %zu data "
                   "center(s), %.2f s wall, alerts: %zu fired / %zu "
                   "resolved / %zu still firing\n",
                   static_cast<std::size_t>(report.outcome.steps),
                   cfg.games.size(), cfg.datacenters.size(),
                   report.wall_seconds,
                   static_cast<std::size_t>(report.outcome.alerts_fired),
                   static_cast<std::size_t>(report.outcome.alerts_resolved),
                   static_cast<std::size_t>(report.outcome.alerts_firing));
    } else {
      std::fprintf(stderr,
                   "mmog_simulate: %zu steps, %zu game(s), %zu data "
                   "center(s), %.2f s wall\n",
                   static_cast<std::size_t>(report.outcome.steps),
                   cfg.games.size(), cfg.datacenters.size(),
                   report.wall_seconds);
    }

    std::fputs(report.summary_text().c_str(), stdout);
    std::printf("\nPer data center (avg CPU units):\n");
    for (const auto& usage : result.datacenters) {
      if (usage.avg_allocated_cpu < 0.005) continue;
      std::printf("  %-16s %7.2f / %-4.0f\n", usage.name.c_str(),
                  usage.avg_allocated_cpu, usage.capacity_cpu);
    }
    if (engine) {
      std::printf("\nAlerts:\n");
      for (const auto& status : engine->statuses()) {
        std::printf("  %-20s %-9s fired %zu, resolved %zu  (%s)\n",
                    status.rule.name.c_str(),
                    std::string(obs::alert_state_name(status.state)).c_str(),
                    static_cast<std::size_t>(status.fired_count),
                    static_cast<std::size_t>(status.resolved_count),
                    obs::describe(status.rule).c_str());
      }
    }
    if (telemetry) {
      const double hold = args.get_double("serve-hold", 0.0);
      if (hold > 0.0) {
        std::fprintf(stderr,
                     "mmog_simulate: holding telemetry endpoint for %.0f s\n",
                     hold);
        std::fflush(stderr);
        std::fflush(stdout);
        std::this_thread::sleep_for(std::chrono::duration<double>(hold));
      }
      telemetry->stop();
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
