// mmog-bench: scale-sweep benchmark harness. Runs the provisioning
// simulation across a (server groups) x (predict threads) grid with the
// in-process resource profiler attached and writes one stable-schema
// artifact (BENCH_scale.json) holding, per sweep cell: steps/s, per-phase
// duration quantiles, heap allocations per step, and peak RSS — plus the
// machine fingerprint that makes cross-host timing comparisons detectable.
//
// Usage:
//   mmog_bench [--groups LIST] [--threads LIST] [--steps N] [--seed S]
//              [--predictor lastvalue|average|movingavg|median|expsmooth]
//              [--micro FILE] [--out FILE]
//
// --groups    comma list of total server-group counts (default 120, the
//             paper's world; the five regions scale proportionally and the
//             Table III machine counts scale to match)
// --threads   comma list of predict worker counts; "hw" = hardware
//             concurrency (default "1")
// --steps     simulated 2-minute steps per cell (default 240 = 8 hours)
// --micro     fold a google-benchmark --benchmark_format=json file into
//             the artifact so micro and macro numbers ship together
// --out       artifact path (default BENCH_scale.json; "-" = stdout only)
//
// Compare two artifacts with `mmog_diff --kind bench BASE CAND`: the
// allocation counts are deterministic and machine-independent, so they are
// gated hard; timings only against opt-in tolerances.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "obs/bench_report.hpp"
#include "obs/recorder.hpp"
#include "predict/simple.hpp"
#include "trace/runescape_model.hpp"
#include "util/args.hpp"
#include "util/atomic_file.hpp"

using namespace mmog;

namespace {

/// The paper_default() world size every sweep is expressed relative to.
constexpr double kPaperGroups = 120.0;

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(csv);
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

predict::PredictorFactory parse_predictor(const std::string& name) {
  if (name == "lastvalue") {
    return [] { return std::make_unique<predict::LastValuePredictor>(); };
  }
  if (name == "average") {
    return [] { return std::make_unique<predict::AveragePredictor>(); };
  }
  if (name == "movingavg") {
    return [] { return std::make_unique<predict::MovingAveragePredictor>(5); };
  }
  if (name == "median") {
    return [] {
      return std::make_unique<predict::SlidingWindowMedianPredictor>(5);
    };
  }
  if (name == "expsmooth") {
    return [] {
      return std::make_unique<predict::ExponentialSmoothingPredictor>(0.5);
    };
  }
  throw std::invalid_argument("unknown --predictor " + name +
                              " (lastvalue|average|movingavg|median|"
                              "expsmooth)");
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Runs one (groups, threads) sweep cell with a profiling recorder and
/// reduces the registry snapshot to the artifact's BenchRun row.
obs::BenchRun run_cell(std::size_t groups, std::size_t threads,
                       const std::string& thread_token, std::size_t steps,
                       std::uint64_t seed, const std::string& predictor) {
  trace::RuneScapeModelConfig tcfg =
      trace::RuneScapeModelConfig::paper_default();
  tcfg.scale_to_groups(groups);
  tcfg.steps = steps;
  tcfg.seed = seed;

  core::SimulationConfig cfg;
  cfg.datacenters = dc::paper_ecosystem();
  // Table III sizes the ecosystem for the 120-group paper world; a larger
  // sweep would just measure allocation starvation, so machine counts
  // scale with the fleet.
  const double factor =
      static_cast<double>(tcfg.total_groups()) / kPaperGroups;
  if (factor > 1.0) {
    for (auto& d : cfg.datacenters) {
      d.machines = static_cast<std::size_t>(
          std::ceil(static_cast<double>(d.machines) * factor));
    }
  }
  core::GameSpec game;
  game.name = "bench";
  game.load = core::LoadModel{core::UpdateModel::kQuadratic, 2000.0};
  game.latency_tolerance = dc::DistanceClass::kVeryFar;
  game.workload = trace::generate(tcfg);
  cfg.games.push_back(std::move(game));
  cfg.threads = threads;
  cfg.predictor = parse_predictor(predictor);

  obs::Recorder recorder(obs::TraceLevel::kOff);
  recorder.enable_profiler();
  cfg.recorder = &recorder;

  const auto wall_start = std::chrono::steady_clock::now();
  const auto result = core::simulate(cfg);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  const obs::Snapshot snap = recorder.snapshot();
  auto gauge = [&snap](const char* name) {
    const auto it = snap.gauges.find(name);
    return it == snap.gauges.end() ? 0.0 : it->second;
  };

  obs::BenchRun run;
  run.label = "g" + std::to_string(groups) + "/t" + thread_token;
  run.groups = tcfg.total_groups();
  const double resolved = gauge("sim.predict_threads");
  run.threads = resolved >= 1.0 ? static_cast<std::uint64_t>(resolved)
                                : threads;
  run.steps = result.steps;
  run.wall_seconds = wall_seconds;
  run.steps_per_sec = gauge("sim.steps_per_sec");
  if (run.steps_per_sec == 0.0 && wall_seconds > 0.0) {
    run.steps_per_sec = static_cast<double>(result.steps) / wall_seconds;
  }
  run.group_steps_per_sec = gauge("sim.group_steps_per_sec");
  run.peak_rss_kb = static_cast<std::uint64_t>(gauge("proc.peak_rss_kb"));

  constexpr std::string_view kPrefix = "phase.";
  constexpr std::string_view kSuffix = "_us";
  auto hist_mean = [&snap](const std::string& name) {
    const auto it = snap.histograms.find(name);
    return it == snap.histograms.end() ? 0.0 : it->second.mean();
  };
  for (const auto& [name, hist] : snap.histograms) {
    if (name.size() <= kPrefix.size() + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0 ||
        hist.count == 0) {
      continue;
    }
    obs::BenchPhase phase;
    phase.name = name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
    phase.count = hist.count;
    phase.p50_us = hist.quantile(0.5);
    phase.p95_us = hist.quantile(0.95);
    phase.mean_us = hist.mean();
    phase.max_us = hist.max;
    phase.allocs_per_step = hist_mean("phase." + phase.name + "_allocs");
    phase.alloc_bytes_per_step =
        hist_mean("phase." + phase.name + "_alloc_bytes");
    run.phases.push_back(std::move(phase));
  }
  // The "step" scope wraps each whole simulation step, so its allocation
  // histogram is the fleet-level allocs-per-step number.
  run.allocs_per_step = hist_mean("phase.step_allocs");
  run.alloc_bytes_per_step = hist_mean("phase.step_alloc_bytes");
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.has("help")) {
    std::printf(
        "usage: %s [--groups LIST] [--threads LIST] [--steps N] [--seed S]\n"
        "          [--predictor NAME] [--micro FILE] [--out FILE]\n"
        "  --groups   comma list of total server-group counts (default 120)\n"
        "  --threads  comma list of predict worker counts, \"hw\" = all\n"
        "             cores (default 1)\n"
        "  --steps    2-minute steps per sweep cell (default 240)\n"
        "  --micro    google-benchmark JSON file to fold into the artifact\n"
        "  --out      artifact path (default BENCH_scale.json, - = stdout)\n",
        args.program().c_str());
    return 0;
  }

  try {
    const long steps = args.get_long("steps", 240);
    if (steps <= 0) throw std::invalid_argument("--steps must be > 0");
    const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 2008));
    const auto predictor = args.get("predictor", "lastvalue");
    parse_predictor(predictor);  // fail fast, before any sweep work

    const auto parse_count = [](const std::string& token,
                                const char* flag) -> long {
      std::size_t used = 0;
      long value = 0;
      try {
        value = std::stol(token, &used);
      } catch (const std::exception&) {
        used = 0;
      }
      if (used != token.size() || value <= 0) {
        throw std::invalid_argument(std::string(flag) +
                                    " expects positive integers, got \"" +
                                    token + "\"");
      }
      return value;
    };

    std::vector<std::size_t> group_counts;
    for (const auto& token : split_list(args.get("groups", "120"))) {
      group_counts.push_back(
          static_cast<std::size_t>(parse_count(token, "--groups")));
    }
    struct ThreadSpec {
      std::size_t count;
      std::string token;  ///< label spelling, stable across machines
    };
    std::vector<ThreadSpec> thread_specs;
    for (const auto& token : split_list(args.get("threads", "1"))) {
      if (token == "hw") {
        thread_specs.push_back({0, "hw"});
      } else {
        const long value = parse_count(token, "--threads");
        thread_specs.push_back({static_cast<std::size_t>(value), token});
      }
    }
    if (group_counts.empty() || thread_specs.empty()) {
      throw std::invalid_argument("--groups and --threads must be non-empty");
    }

    obs::BenchReport report;
    report.machine = obs::collect_bench_machine();
    if (const auto micro_path = args.get("micro", ""); !micro_path.empty()) {
      report.micro = obs::parse_google_benchmark_json(slurp(micro_path));
    }

    for (const std::size_t groups : group_counts) {
      for (const ThreadSpec& spec : thread_specs) {
        std::fprintf(stderr, "mmog_bench: g%zu/t%s ...\n", groups,
                     spec.token.c_str());
        report.runs.push_back(run_cell(groups, spec.count, spec.token,
                                       static_cast<std::size_t>(steps),
                                       seed, predictor));
        const obs::BenchRun& run = report.runs.back();
        std::fprintf(stderr,
                     "mmog_bench: g%zu/t%s: %.1f steps/s, %.0f allocs/step, "
                     "peak RSS %.1f MiB (%.2f s wall)\n",
                     groups, spec.token.c_str(), run.steps_per_sec,
                     run.allocs_per_step,
                     static_cast<double>(run.peak_rss_kb) / 1024.0,
                     run.wall_seconds);
      }
    }

    std::fputs(report.summary_table().c_str(), stdout);
    const auto out_path = args.get("out", "BENCH_scale.json");
    if (out_path == "-") {
      std::puts(report.to_json().c_str());
    } else {
      util::AtomicFileWriter out(out_path);
      out.stream() << report.to_json() << '\n';
      out.commit();
      std::fprintf(stderr, "mmog_bench: wrote %s (%zu runs, %zu micro)\n",
                   out_path.c_str(), report.runs.size(),
                   report.micro.size());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
