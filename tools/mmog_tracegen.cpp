// mmog-tracegen: generate a synthetic RuneScape-like workload trace and
// write it as long-format CSV (the drop-in shape for real status-page
// scrapes).
//
// Usage:
//   mmog_tracegen [--days N] [--seed S] [--world paper|europe]
//                 [--waves-per-day W] [--out FILE]
//
// Without --out the CSV goes to stdout.

#include <cstdio>
#include <iostream>

#include "trace/io.hpp"
#include "trace/runescape_model.hpp"
#include "util/args.hpp"

using namespace mmog;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.has("help")) {
    std::printf(
        "usage: %s [--days N] [--seed S] [--world paper|europe]\n"
        "          [--groups N] [--waves-per-day W] [--out FILE]\n"
        "  --groups N  rescale the world to N total server groups\n"
        "              (regions keep their relative sizes)\n",
        args.program().c_str());
    return 0;
  }

  try {
  trace::RuneScapeModelConfig cfg = trace::RuneScapeModelConfig::paper_default();
  const auto world_kind = args.get("world", "paper");
  if (world_kind == "europe") {
    cfg.regions.resize(1);  // region 0 only
  } else if (world_kind != "paper") {
    std::fprintf(stderr, "unknown --world '%s' (paper|europe)\n",
                 world_kind.c_str());
    return 1;
  }
  cfg.steps = util::samples_per_days(args.get_double("days", 2.0));
  cfg.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  cfg.waves_per_day = args.get_double("waves-per-day", cfg.waves_per_day);
  if (const long groups = args.get_long("groups", 0); groups > 0) {
    cfg.scale_to_groups(static_cast<std::size_t>(groups));
  }

  const auto world = trace::generate(cfg);

  const auto out_path = args.get("out", "");
  if (out_path.empty()) {
    trace::write_world_csv(std::cout, world);
  } else {
    trace::write_world_csv_file(out_path, world);
    std::size_t groups = 0;
    for (const auto& r : world.regions) groups += r.groups.size();
    std::fprintf(stderr, "wrote %zu regions / %zu groups / %zu samples to %s\n",
                 world.regions.size(), groups, world.steps(),
                 out_path.c_str());
  }
  return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
