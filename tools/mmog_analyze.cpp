// mmog-analyze: run the paper's SS III workload analysis on a CSV trace
// (as produced by mmog-tracegen or scraped from a live game).
//
// Usage:
//   mmog_analyze --in FILE [--acf-lag-hours H]

#include <cstdio>

#include "trace/analysis.hpp"
#include "trace/io.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"

using namespace mmog;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto in_path = args.get("in", "");
  if (args.has("help") || in_path.empty()) {
    std::printf("usage: %s --in FILE [--acf-lag-hours H]\n",
                args.program().c_str());
    return in_path.empty() && !args.has("help") ? 1 : 0;
  }

  try {
  const auto world = trace::read_world_csv_file(in_path);
  const auto lag_hours = args.get_double("acf-lag-hours", 24.0);
  const auto lag = static_cast<std::size_t>(lag_hours * 30.0);

  const auto global = world.global();
  std::printf("Trace: %zu regions, %zu samples (%.1f days)\n",
              world.regions.size(), world.steps(), world.steps() / 720.0);
  std::printf("Global players: mean %.0f, min %.0f, max %.0f\n\n",
              global.mean(), global.min(), global.max());

  std::printf("%-18s %7s %8s %8s %9s %8s %11s\n", "region", "groups", "mean",
              "peak", "ACF@lag", "IQR", "always-full");
  for (const auto& region : world.regions) {
    const auto total = region.total();
    const auto acf = util::autocorrelation(total.values(), lag);
    const auto iqr = trace::iqr_over_time(region);
    std::printf("%-18s %7zu %8.0f %8.0f %9.2f %8.0f %11zu\n",
                region.name.c_str(), region.groups.size(), total.mean(),
                total.max(), acf.back(), util::mean(iqr),
                trace::count_always_full(region, 0.92, 0.9));
  }

  const auto events = trace::detect_events(global);
  if (!events.empty()) {
    std::printf("\nDetected population shocks:\n");
    for (const auto& ev : events) {
      std::printf("  day %5.1f: %s %+0.1f%%\n",
                  static_cast<double>(ev.step) / 720.0,
                  ev.kind == trace::DetectedEvent::Kind::kDrop ? "drop "
                                                               : "surge",
                  ev.relative_change * 100.0);
    }
  }
  return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
