// mmog_lint — project-wide static analysis over the C++ sources.
//
// The paper's 5-10x efficiency claim is only reproducible when a fixed seed
// gives a bit-identical run and the hot phases stay fast enough to track
// live load, so the source itself is scanned for the ways those invariants
// decay: nondeterminism leaks (libc rand(), std::random_device, wall-clock
// reads, invented seed literals, unordered-container iteration), heap
// traffic inside marked hot-phase regions, lock/IO discipline breaks
// (std::mutex outside the TSA wrappers, std::ofstream outside
// AtomicFileWriter), and module-layering violations against the CMake link
// graph. See util/srclint.hpp for the rule catalog and the
// `// mmog-lint: allow(<rule>)` escape hatch.
//
// Usage:
//   mmog_lint [--markdown|--json|--sarif] [--graph=dot] [--list-rules]
//             [--repo <root> | <path>...]
//
// `--repo <root>` runs the full suite (line rules + architecture analysis)
// over a repository checkout with repo-relative paths; bare <path> args run
// the line rules only, over files or directories scanned recursively for
// .hpp/.cpp/.h/.cc. Exits 1 when any unsuppressed finding remains (so the
// ctest/CI wiring fails the build), 0 on a clean tree.

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "util/srclint.hpp"

namespace {

using mmog::util::lint::Finding;
using mmog::util::lint::RuleScope;

std::string_view scope_text(RuleScope scope) {
  switch (scope) {
    case RuleScope::kProduction:
      return "production (src/tools/bench/examples)";
    case RuleScope::kDeterministic:
      return "deterministic paths (core/dc/predict/nn/emu)";
    case RuleScope::kHotRegion:
      return "hot regions (hot-begin..hot-end)";
    case RuleScope::kHeaders:
      return "all headers";
    case RuleScope::kArchitecture:
      return "module include graph";
  }
  return "";
}

void print_rules() {
  std::printf("rule catalog:\n");
  for (const auto& rule : mmog::util::lint::rule_catalog()) {
    std::printf("  %-20s [%s]\n      %s\n", std::string(rule.name).c_str(),
                std::string(scope_text(rule.scope)).c_str(),
                std::string(rule.summary).c_str());
  }
}

void print_markdown(const std::vector<Finding>& findings) {
  std::printf("### mmog_lint findings\n\n");
  if (findings.empty()) {
    std::printf("No findings — tree is clean.\n");
    return;
  }
  std::printf("| File | Line | Rule | Message |\n|---|---|---|---|\n");
  for (const auto& f : findings) {
    std::printf("| `%s` | %zu | `%s` | %s |\n", f.path.c_str(), f.line,
                f.rule.c_str(), f.message.c_str());
  }
}

void print_text(const std::vector<Finding>& findings) {
  for (const auto& f : findings) {
    std::fprintf(stderr, "%s:%zu: error: [%s] %s\n", f.path.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  std::fprintf(stderr, "mmog_lint: %zu finding(s)\n", findings.size());
}

void print_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: mmog_lint [--markdown|--json|--sarif] [--graph=dot]\n"
               "                 [--list-rules] [--repo <root> | <path>...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  enum class Format { kText, kMarkdown, kJson, kSarif };
  Format format = Format::kText;
  bool graph_dot = false;
  std::string repo_root;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-rules") {
      print_rules();
      return 0;
    }
    if (arg == "--markdown") {
      format = Format::kMarkdown;
    } else if (arg == "--json") {
      format = Format::kJson;
    } else if (arg == "--sarif") {
      format = Format::kSarif;
    } else if (arg == "--graph=dot") {
      graph_dot = true;
    } else if (arg == "--repo") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mmog_lint: --repo needs a path\n");
        return 2;
      }
      repo_root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "mmog_lint: unknown flag '%s'\n", argv[i]);
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (repo_root.empty() && paths.empty()) {
    print_usage(stderr);
    return 2;
  }
  if (!repo_root.empty() && !paths.empty()) {
    std::fprintf(stderr,
                 "mmog_lint: --repo and bare paths are mutually exclusive\n");
    return 2;
  }
  if (graph_dot && repo_root.empty()) {
    std::fprintf(stderr, "mmog_lint: --graph=dot requires --repo <root>\n");
    return 2;
  }

  std::vector<Finding> findings;
  if (!repo_root.empty()) {
    auto result = mmog::util::lint::lint_repo(repo_root);
    if (graph_dot) {
      std::fputs(mmog::util::lint::to_dot(result.graph).c_str(), stdout);
      return 0;
    }
    findings = std::move(result.findings);
  } else {
    for (const auto& path : paths) {
      auto part = mmog::util::lint::lint_tree(path);
      findings.insert(findings.end(), part.begin(), part.end());
    }
  }

  switch (format) {
    case Format::kMarkdown:
      print_markdown(findings);
      break;
    case Format::kJson:
      std::fputs(mmog::util::lint::findings_to_json(findings).c_str(), stdout);
      break;
    case Format::kSarif:
      std::fputs(mmog::util::lint::findings_to_sarif(findings).c_str(),
                 stdout);
      break;
    case Format::kText:
      print_text(findings);
      break;
  }
  return findings.empty() ? 0 : 1;
}
