// mmog_lint — determinism and project-invariant lint over the C++ sources.
//
// The paper's 5-10x efficiency claim is only reproducible when a fixed seed
// gives a bit-identical run, so the source itself is scanned for the ways
// nondeterminism leaks in: libc rand(), std::random_device, wall-clock
// reads, invented seed literals, and unordered-container iteration inside
// the deterministic simulation layers. See util/srclint.hpp for the rule
// catalog and the `// mmog-lint: allow(<rule>)` escape hatch.
//
// Usage:
//   mmog_lint [--markdown] [--list-rules] <path>...
//
// Each <path> is a file or a directory scanned recursively for
// .hpp/.cpp/.h/.cc. Exits 1 when any unsuppressed finding remains (so the
// ctest/CI wiring fails the build), 0 on a clean tree.

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "util/srclint.hpp"

namespace {

void print_rules() {
  std::printf("rule catalog:\n");
  for (const auto& rule : mmog::util::lint::rule_catalog()) {
    std::printf("  %-20s %s%s\n", std::string(rule.name).c_str(),
                rule.deterministic_only ? "[core/dc/predict/nn/emu only] "
                                        : "",
                std::string(rule.summary).c_str());
  }
}

void print_markdown(const std::vector<mmog::util::lint::Finding>& findings) {
  std::printf("### mmog_lint findings\n\n");
  if (findings.empty()) {
    std::printf("No findings — tree is clean.\n");
    return;
  }
  std::printf("| File | Line | Rule | Message |\n|---|---|---|---|\n");
  for (const auto& f : findings) {
    std::printf("| `%s` | %zu | `%s` | %s |\n", f.path.c_str(), f.line,
                f.rule.c_str(), f.message.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool markdown = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-rules") {
      print_rules();
      return 0;
    }
    if (arg == "--markdown") {
      markdown = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: mmog_lint [--markdown] [--list-rules] <path>...\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "mmog_lint: unknown flag '%s'\n", argv[i]);
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: mmog_lint [--markdown] [--list-rules] "
                         "<path>...\n");
    return 2;
  }

  std::vector<mmog::util::lint::Finding> findings;
  for (const auto& path : paths) {
    auto part = mmog::util::lint::lint_tree(path);
    findings.insert(findings.end(), part.begin(), part.end());
  }

  if (markdown) {
    print_markdown(findings);
  } else {
    for (const auto& f : findings) {
      std::fprintf(stderr, "%s:%zu: error: [%s] %s\n", f.path.c_str(), f.line,
                   f.rule.c_str(), f.message.c_str());
    }
    std::fprintf(stderr, "mmog_lint: %zu finding(s)\n", findings.size());
  }
  return findings.empty() ? 0 : 1;
}
