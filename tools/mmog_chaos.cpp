// mmog-chaos: fault-injection scenario sweep. Runs the same workload and
// fault schedule through three provisioning strategies — static
// over-provisioning, plain dynamic allocation, and dynamic allocation with
// the resilience policy (re-placement + backoff, optional N+k reserve and
// priority shedding) — across several schedule seeds, and tabulates the
// service-level outcome of each: under-allocation, significant events,
// availability, downtime, time-to-recover and the worst post-fault
// recovery lag.
//
// Usage:
//   mmog_chaos [--in FILE | --days D --trace-seed S]
//              [--fault "SPEC[;SPEC...]"] [--seeds N]
//              [--model n|nlogn|n2|n2logn|n3] [--tolerance 0..4]
//              [--safety F] [--reserve K] [--shed] [--threads N]
//              [--report-out FILE.json]
//
// Each sweep iteration i clones every fault spec with seed+i, so one
// invocation samples N independent but reproducible fault histories.
// Without --fault a default stochastic outage on the busiest center of the
// Table III ecosystem is injected.
//
// --report-out writes one canonical RunReport per (seed, scenario) cell as
// a JSON array, labeled "seed<S>/<scenario>" — mmog_diff pairs two such
// files by label and verdicts outcome drift across the whole sweep.
//
// Kill/restart mode (--kill-restart --simulate-bin PATH) exercises the
// checkpoint/restore crash-safety end to end: it runs an uninterrupted
// reference via the real mmog_simulate binary, SIGKILLs a second run mid
// flight once its newest valid checkpoint passes --kill-at-step, restarts
// from that checkpoint, and verdicts the restarted run's report and audit
// trail against the reference with the mmog_diff comparators. All
// artifacts land in --workdir (default ".") so CI can re-diff them. Exit
// 0 = byte-identical recovery, 1 = drift or a failed child run.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/run_report.hpp"
#include "core/simulation.hpp"
#include "fault/parse.hpp"
#include "obs/audit.hpp"
#include "obs/report.hpp"
#include "predict/simple.hpp"
#include "trace/io.hpp"
#include "trace/runescape_model.hpp"
#include "util/args.hpp"
#include "util/atomic_file.hpp"
#include "util/table.hpp"

using namespace mmog;
using util::ResourceKind;

namespace {

core::UpdateModel parse_model(const std::string& name) {
  if (name == "n") return core::UpdateModel::kLinear;
  if (name == "nlogn") return core::UpdateModel::kNLogN;
  if (name == "n2") return core::UpdateModel::kQuadratic;
  if (name == "n2logn") return core::UpdateModel::kQuadraticLogN;
  if (name == "n3") return core::UpdateModel::kCubic;
  throw std::invalid_argument("unknown --model " + name);
}

struct ScenarioOutcome {
  std::string name;
  core::SimulationResult result;
};

// ------------------------------------------------------- kill/restart mode

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Starts `argv` as a child process (argv[0] is the binary path).
pid_t spawn(const std::vector<std::string>& argv) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  const pid_t pid = fork();
  if (pid < 0) throw std::runtime_error("fork failed");
  if (pid == 0) {
    execv(cargv[0], cargv.data());
    std::perror("mmog_chaos: execv");
    _exit(127);
  }
  return pid;
}

int wait_exit(pid_t pid) {
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) {
    throw std::runtime_error("waitpid failed");
  }
  return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

/// The end-to-end crash-safety scenario: reference run, SIGKILL a second
/// run once its checkpoint passes `kill_at`, restart from the checkpoint,
/// verdict the restarted artifacts against the reference.
int run_kill_restart(const std::string& bin, const std::string& csv,
                     const std::string& spec_text, long threads,
                     long checkpoint_every, std::size_t kill_at,
                     const std::string& workdir) {
  const std::string ck = workdir + "/kill-restart-ck.jsonl";
  const std::string ref_report = workdir + "/kill-restart-ref-report.json";
  const std::string ref_audit = workdir + "/kill-restart-ref-audit.jsonl";
  const std::string res_report = workdir + "/kill-restart-res-report.json";
  const std::string res_audit = workdir + "/kill-restart-res-audit.jsonl";

  std::vector<std::string> common = {bin,       "--in",
                                     csv,       "--predictor",
                                     "lastvalue", "--threads",
                                     std::to_string(threads)};
  if (!spec_text.empty()) {
    common.push_back("--fault");
    common.push_back(spec_text);
  }

  std::printf("kill/restart: reference run...\n");
  auto ref = common;
  ref.insert(ref.end(), {"--report-out", ref_report, "--audit-out",
                         ref_audit});
  if (const int rc = wait_exit(spawn(ref)); rc != 0) {
    throw std::runtime_error("reference run failed (exit " +
                             std::to_string(rc) + ")");
  }

  std::printf("kill/restart: victim run, SIGKILL once checkpoint >= %zu\n",
              kill_at);
  auto victim = common;
  victim.insert(victim.end(),
                {"--checkpoint-out", ck, "--checkpoint-every",
                 std::to_string(checkpoint_every)});
  const pid_t pid = spawn(victim);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(300);
  for (;;) {
    int status = 0;
    if (waitpid(pid, &status, WNOHANG) == pid) {
      throw std::runtime_error(
          "victim run finished before the kill landed — lower "
          "--kill-at-step or --checkpoint-every");
    }
    if (std::chrono::steady_clock::now() > deadline) {
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);
      throw std::runtime_error("victim run made no checkpoint progress");
    }
    std::size_t at = 0;
    try {
      at = ckpt::load_newest_valid(ck).file.state.next_step;
    } catch (const ckpt::CheckpointError&) {
      // No (valid) checkpoint yet — keep polling.
    }
    if (at >= kill_at) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  kill(pid, SIGKILL);
  int status = 0;
  waitpid(pid, &status, 0);
  if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
    throw std::runtime_error("victim did not die from SIGKILL");
  }

  const auto loaded = ckpt::load_newest_valid(ck);
  std::printf("kill/restart: killed; newest valid checkpoint at step %zu "
              "(%s), restarting\n",
              loaded.file.state.next_step, loaded.path.c_str());
  auto resume = common;
  resume.insert(resume.end(), {"--restore", ck, "--report-out", res_report,
                               "--audit-out", res_audit});
  if (const int rc = wait_exit(spawn(resume)); rc != 0) {
    throw std::runtime_error("restarted run failed (exit " +
                             std::to_string(rc) + ")");
  }

  const auto reports_a = obs::parse_report_file(slurp(ref_report));
  const auto reports_b = obs::parse_report_file(slurp(res_report));
  if (reports_a.size() != 1 || reports_b.size() != 1) {
    throw std::runtime_error("expected exactly one report per run");
  }
  const auto report_diff = obs::diff_reports(reports_a[0], reports_b[0]);
  std::ifstream audit_a(ref_audit), audit_b(res_audit);
  const auto diff_audit = obs::diff_audits(obs::read_audit_jsonl(audit_a),
                                           obs::read_audit_jsonl(audit_b));
  bool ok = true;
  for (const auto* diff : {&report_diff, &diff_audit}) {
    if (!diff->regression()) continue;
    ok = false;
    for (const auto& note : diff->notes) {
      std::printf("  %s\n", note.c_str());
    }
  }
  std::printf(ok ? "kill/restart: OK — restarted run byte-identical to the "
                   "reference\n"
                 : "kill/restart: REGRESSION — restarted run drifted from "
                   "the reference\n");
  return ok ? 0 : 1;
}

std::string worst_lag_string(const core::SimulationResult& result,
                             double threshold_pct) {
  const auto lags = core::recovery_lag_steps(result.metrics,
                                             result.fault_events,
                                             threshold_pct);
  if (lags.empty()) return "-";
  std::size_t worst = 0;
  for (const auto lag : lags) {
    if (lag == core::kNeverRecovered) return "never";
    worst = std::max(worst, lag);
  }
  return std::to_string(worst);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.has("help")) {
    std::printf(
        "usage: %s [--in FILE | --days D --trace-seed S]\n"
        "          [--fault \"SPEC[;SPEC...]\"] [--seeds N]\n"
        "          [--model n|nlogn|n2|n2logn|n3] [--tolerance 0..4]\n"
        "          [--safety F] [--reserve K] [--shed] [--threads N]\n"
        "          [--report-out FILE.json]\n"
        "          [--kill-restart --simulate-bin PATH [--workdir DIR]\n"
        "           [--kill-at-step N] [--checkpoint-every N]]\n",
        args.program().c_str());
    return 0;
  }

  try {
    trace::WorldTrace workload;
    const auto in_path = args.get("in", "");
    if (!in_path.empty()) {
      workload = trace::read_world_csv_file(in_path);
    } else {
      auto model = trace::RuneScapeModelConfig::paper_default();
      model.steps = util::samples_per_days(args.get_double("days", 4.0));
      model.seed = static_cast<std::uint64_t>(
          args.get_long("trace-seed", 2008));
      workload = trace::generate(model);
    }

    if (args.has("kill-restart")) {
      const auto bin = args.get("simulate-bin", "");
      if (bin.empty()) {
        throw std::invalid_argument(
            "--kill-restart needs --simulate-bin PATH (the mmog_simulate "
            "binary to crash and restart)");
      }
      const auto workdir = args.get("workdir", ".");
      std::string csv = in_path;
      if (csv.empty()) {
        csv = workdir + "/kill-restart-workload.csv";
        trace::write_world_csv_file(csv, workload);
      }
      // A fixed stochastic outage by default: the point is exercising
      // recovery under active fault windows, not finding the busiest DC.
      auto spec = args.get("fault", "outage:dc=2,mtbf=1d,mttr=3h,seed=9");
      const long threads = args.get_long("threads", 1);
      const long every = args.get_long("checkpoint-every", 25);
      if (every <= 0) {
        throw std::invalid_argument("--checkpoint-every must be > 0");
      }
      const long kill_at_arg = args.get_long("kill-at-step", 0);
      const std::size_t kill_at = kill_at_arg > 0
                                      ? static_cast<std::size_t>(kill_at_arg)
                                      : workload.steps() / 2;
      return run_kill_restart(bin, csv, spec, threads, every, kill_at,
                              workdir);
    }

    const auto sweeps =
        static_cast<std::size_t>(std::max(1L, args.get_long("seeds", 3)));

    core::SimulationConfig base;
    base.datacenters = dc::paper_ecosystem();
    core::GameSpec game;
    game.name = "Chaos MMOG";
    game.load =
        core::LoadModel{parse_model(args.get("model", "n2")), 2000.0};
    const long tolerance = args.get_long("tolerance", 4);
    if (tolerance < 0 || tolerance > 4) {
      throw std::invalid_argument("--tolerance must be 0..4");
    }
    game.latency_tolerance = static_cast<dc::DistanceClass>(tolerance);
    game.workload = std::move(workload);
    base.games.push_back(std::move(game));
    base.safety_factor = args.get_double("safety", 0.5);
    const long threads = args.get_long("threads", 1);
    if (threads < 0) throw std::invalid_argument("--threads must be >= 0");
    base.threads = static_cast<std::size_t>(threads);

    auto spec_text = args.get("fault", "");
    if (spec_text.empty()) {
      // Default scenario: a stochastic outage aimed at the center that a
      // clean dynamic probe run loads the most, so the injected failures
      // actually take live game servers down.
      auto probe = base;
      probe.predictor = [] {
        return std::make_unique<predict::LastValuePredictor>();
      };
      const auto clean = core::simulate(probe);
      std::size_t busiest = 0;
      for (std::size_t i = 1; i < clean.datacenters.size(); ++i) {
        if (clean.datacenters[i].avg_allocated_cpu >
            clean.datacenters[busiest].avg_allocated_cpu) {
          busiest = i;
        }
      }
      spec_text = "outage:dc=" + std::to_string(busiest) +
                  ",mtbf=1d,mttr=3h,seed=9";
    }
    const auto base_specs = fault::parse_fault_specs(spec_text);
    if (base_specs.empty()) {
      throw std::invalid_argument("--fault must name at least one spec");
    }

    std::printf("mmog_chaos: %zu seed sweep(s) over \"%s\"\n\n",
                sweeps, spec_text.c_str());
    for (const auto& spec : base_specs) {
      std::printf("  %s\n", fault::describe(spec).c_str());
    }
    std::printf("\n");

    const auto report_out = args.get("report-out", "");
    std::vector<obs::RunReport> reports;

    util::TextTable table({"Seed", "Scenario", "Under %", "Events",
                           "Avail %", "Down", "MTTR", "Worst lag"});
    for (std::size_t sweep = 0; sweep < sweeps; ++sweep) {
      auto specs = base_specs;
      for (auto& spec : specs) spec.seed += sweep;
      const auto fault_seed = base_specs.front().seed + sweep;

      std::vector<ScenarioOutcome> outcomes;
      // Run one scenario cell, tabulate it and (under --report-out) emit a
      // canonical RunReport labeled "seed<S>/<scenario>" so two sweep runs
      // can be paired cell-by-cell with mmog_diff.
      auto run_scenario = [&](const char* name,
                              const core::SimulationConfig& cfg) {
        const auto start = std::chrono::steady_clock::now();
        auto result = core::simulate(cfg);
        if (!report_out.empty()) {
          const double wall =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
          std::map<std::string, std::string> extra;
          extra["scenario"] = name;
          extra["fault_spec"] = spec_text;
          extra["fault_seed"] = std::to_string(fault_seed);
          extra["model"] = args.get("model", "n2");
          extra["tolerance"] = std::to_string(tolerance);
          reports.push_back(core::make_run_report(
              cfg, result, "mmog_chaos",
              "seed" + std::to_string(fault_seed) + "/" + name, wall,
              std::move(extra)));
        }
        outcomes.push_back({name, std::move(result)});
      };

      auto static_cfg = base;
      static_cfg.mode = core::AllocationMode::kStatic;
      static_cfg.faults = specs;
      run_scenario("static", static_cfg);

      auto dynamic_cfg = base;
      dynamic_cfg.faults = specs;
      dynamic_cfg.predictor = [] {
        return std::make_unique<predict::LastValuePredictor>();
      };
      run_scenario("dynamic", dynamic_cfg);

      auto resilient_cfg = dynamic_cfg;
      resilient_cfg.resilience.enabled = true;
      resilient_cfg.resilience.standby_reserve_servers =
          args.get_double("reserve", 0.0);
      resilient_cfg.resilience.shed_low_priority = args.has("shed");
      run_scenario("dynamic+resilient", resilient_cfg);

      for (const auto& [name, result] : outcomes) {
        table.add_row(
            {std::to_string(base_specs.front().seed + sweep), name,
             util::TextTable::num(
                 result.metrics.avg_under_allocation_pct(ResourceKind::kCpu),
                 3),
             std::to_string(result.metrics.significant_events()),
             util::TextTable::num(result.sla.availability_pct(), 2),
             std::to_string(result.sla.downtime_steps),
             util::TextTable::num(result.sla.mean_time_to_recover_steps, 1),
             worst_lag_string(result, base.event_threshold_pct)});
      }
    }
    if (!report_out.empty()) {
      util::AtomicFileWriter writer(report_out);
      writer.stream() << obs::reports_to_json(reports) << '\n';
      writer.commit();
      std::fprintf(stderr, "mmog_chaos: wrote %zu run report(s) to %s\n",
                   reports.size(), report_out.c_str());
    }

    std::printf("%s\n", table.to_string().c_str());
    std::printf(
        "Down = steps with |Y| above the %.1f %% threshold; MTTR and the\n"
        "worst post-fault recovery lag are in 2-minute steps ('never' =\n"
        "still in breach at the end of the run).\n",
        base.event_threshold_pct);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
