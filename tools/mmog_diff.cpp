// mmog-diff: regression verdict between two canonical run reports, two
// decision-audit trails, two checkpoint files, or two scale-sweep bench
// artifacts produced by mmog_simulate / mmog_chaos / mmog_bench.
//
// Usage:
//   mmog_diff A B [--kind report|audit|checkpoint|bench]
//            [--timing-tolerance PCT] [--alloc-tolerance PCT]
//            [--rss-tolerance PCT] [--quiet]
//
// Report mode (default; a ".jsonl" extension on both inputs selects audit
// mode, and files beginning with the "mmog-ckpt" magic select checkpoint
// mode): each input holds one RunReport object (--report-out) or a JSON
// array of labeled reports (mmog_chaos --report-out). Reports are paired
// by label; every config entry and outcome field must match EXACTLY —
// outcome sections are a deterministic function of (config, seed), so for
// same-seed runs byte equality is the correct bar, at any --threads
// value. Phase timing quantiles (p50) are compared only when
// --timing-tolerance PCT is given, as relative drift; wall-clock seconds,
// peak RSS and the thread count are execution details and never compared.
//
// Audit mode: both inputs are JSONL decision trails (--audit-out or
// GET /audit). Trails must match record for record.
//
// Checkpoint mode: both inputs are --checkpoint-out files. Each side is
// first validated (magic, version, FNV footer — a corrupted file is a
// usage error, exit 2), then compared field for field; differences are
// reported with their full path, e.g. "unit[3].groups[2].state[17]".
//
// Bench mode (autodetected from the artifacts' "kind":"mmog-bench"
// discriminator): both inputs are BENCH_scale.json files from mmog_bench.
// Sweep cells pair by label ("g1000/t4"). Allocations per step are a
// deterministic property of the code and the workload, so they are gated
// hard against --alloc-tolerance (default 10 %, either direction).
// Throughput/phase timings and peak RSS depend on the machine and are
// compared only when --timing-tolerance / --rss-tolerance are given, and
// only in the slower/bigger direction — two runs of the same build gate
// clean by default. A differing machine fingerprint is noted.
//
// Exit status: 0 = no regression, 1 = regression (any outcome/config
// difference, or timing/allocations beyond tolerance), 2 = usage or I/O
// error. The verdict and the first differences are printed to stdout.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include "ckpt/checkpoint.hpp"
#include "obs/bench_report.hpp"
#include "obs/report.hpp"
#include "util/args.hpp"

using namespace mmog;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

void print_notes(const obs::DiffResult& diff, bool quiet) {
  if (quiet) return;
  for (const auto& note : diff.notes) {
    std::printf("  %s\n", note.c_str());
  }
}

int finish(const obs::DiffResult& diff, const std::string& what,
           bool quiet) {
  if (diff.regression()) {
    std::printf("REGRESSION: %s %s\n", what.c_str(),
                !diff.outcome_identical ? "outcome differs"
                                        : "timing beyond tolerance");
    print_notes(diff, quiet);
    return 1;
  }
  std::printf("OK: %s identical%s\n", what.c_str(),
              diff.notes.empty() ? "" : " (timing within tolerance)");
  return 0;
}

int diff_report_files(const std::string& path_a, const std::string& path_b,
                      double timing_tolerance_pct, bool quiet) {
  const auto reports_a = obs::parse_report_file(slurp(path_a));
  const auto reports_b = obs::parse_report_file(slurp(path_b));
  int worst = 0;
  std::size_t paired = 0;
  for (const auto& a : reports_a) {
    const obs::RunReport* b = nullptr;
    for (const auto& candidate : reports_b) {
      if (candidate.label == a.label) {
        b = &candidate;
        break;
      }
    }
    if (b == nullptr) {
      std::printf("REGRESSION: label \"%s\" only in %s\n", a.label.c_str(),
                  path_a.c_str());
      worst = 1;
      continue;
    }
    ++paired;
    const auto diff = obs::diff_reports(a, *b, timing_tolerance_pct);
    const std::string what =
        a.label.empty() ? "report" : "report \"" + a.label + "\"";
    worst = std::max(worst, finish(diff, what, quiet));
  }
  if (paired < reports_b.size()) {
    for (const auto& b : reports_b) {
      bool found = false;
      for (const auto& a : reports_a) found = found || a.label == b.label;
      if (!found) {
        std::printf("REGRESSION: label \"%s\" only in %s\n",
                    b.label.c_str(), path_b.c_str());
        worst = 1;
      }
    }
  }
  return worst;
}

int diff_audit_files(const std::string& path_a, const std::string& path_b,
                     bool quiet) {
  std::ifstream in_a(path_a);
  if (!in_a) throw std::runtime_error("cannot read " + path_a);
  std::ifstream in_b(path_b);
  if (!in_b) throw std::runtime_error("cannot read " + path_b);
  const auto records_a = obs::read_audit_jsonl(in_a);
  const auto records_b = obs::read_audit_jsonl(in_b);
  const auto diff = obs::diff_audits(records_a, records_b);
  std::printf("audit trails: %zu vs %zu records\n", records_a.size(),
              records_b.size());
  return finish(diff, "audit trail", quiet);
}

int diff_checkpoint_files(const std::string& path_a,
                          const std::string& path_b, bool quiet) {
  const auto diff = ckpt::diff_checkpoints(slurp(path_a), slurp(path_b));
  return finish(diff, "checkpoint", quiet);
}

int diff_bench_files(const std::string& path_a, const std::string& path_b,
                     const obs::BenchDiffOptions& options, bool quiet) {
  const auto base = obs::BenchReport::parse(slurp(path_a));
  const auto cand = obs::BenchReport::parse(slurp(path_b));
  const auto diff = obs::diff_bench(base, cand, options);
  std::printf("bench sweeps: %zu vs %zu runs, %zu vs %zu micro\n",
              base.runs.size(), cand.runs.size(), base.micro.size(),
              cand.micro.size());
  if (diff.regression()) {
    std::printf("REGRESSION: bench %s\n",
                !diff.outcome_identical ? "allocations/sweep drifted"
                                        : "timing beyond tolerance");
    print_notes(diff, quiet);
    return 1;
  }
  std::printf("OK: bench within tolerance%s\n",
              diff.notes.empty() ? "" : " (notes below)");
  print_notes(diff, quiet);
  return 0;
}

/// A bench artifact announces itself via its "kind" discriminator in the
/// first bytes: {"schema":1,"kind":"mmog-bench",...}.
bool looks_like_bench(const std::string& text) {
  const auto pos = text.find("\"kind\":\"mmog-bench\"");
  return pos != std::string::npos && pos < 64;
}

/// A checkpoint file starts with its magic on the first line; extensions
/// are not distinctive enough (checkpoints are JSONL too).
bool looks_like_checkpoint(const std::string& text) {
  return text.starts_with("{\"magic\":\"") &&
         text.find(ckpt::kMagic) != std::string::npos &&
         text.find(ckpt::kMagic) < 32;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.has("help") || args.positional().size() != 2) {
    std::printf(
        "usage: %s A B [--kind report|audit|checkpoint|bench] "
        "[--timing-tolerance PCT] [--alloc-tolerance PCT] "
        "[--rss-tolerance PCT] [--quiet]\n",
        args.program().c_str());
    return args.has("help") ? 0 : 2;
  }
  try {
    const std::string& path_a = args.positional()[0];
    const std::string& path_b = args.positional()[1];
    std::string kind = args.get("kind", "");
    if (kind.empty()) {
      const std::string head_a = slurp(path_a);
      const std::string head_b = slurp(path_b);
      if (looks_like_checkpoint(head_a) && looks_like_checkpoint(head_b)) {
        kind = "checkpoint";
      } else if (looks_like_bench(head_a) && looks_like_bench(head_b)) {
        kind = "bench";
      } else {
        kind = ends_with(path_a, ".jsonl") && ends_with(path_b, ".jsonl")
                   ? "audit"
                   : "report";
      }
    }
    const bool quiet = args.has("quiet");
    if (kind == "checkpoint") {
      return diff_checkpoint_files(path_a, path_b, quiet);
    }
    if (kind == "audit") {
      return diff_audit_files(path_a, path_b, quiet);
    }
    if (kind == "bench") {
      obs::BenchDiffOptions options;
      options.alloc_tolerance_pct = args.get_double("alloc-tolerance", 10.0);
      options.timing_tolerance_pct =
          args.get_double("timing-tolerance", -1.0);
      options.rss_tolerance_pct = args.get_double("rss-tolerance", -1.0);
      return diff_bench_files(path_a, path_b, options, quiet);
    }
    if (kind == "report") {
      return diff_report_files(path_a, path_b,
                               args.get_double("timing-tolerance", -1.0),
                               quiet);
    }
    throw std::invalid_argument("unknown --kind " + kind);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
