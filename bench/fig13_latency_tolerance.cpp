// Reproduces Figure 13: the distribution of the allocated resources over
// the North American data centers for the five latency-tolerance classes
// (§V-E). With low tolerance every region is pinned to its co-located
// centers; as the tolerance grows the matching mechanism moves demand to
// the finer-grained (westward) hosting policies.

#include <cstdio>

#include "bench/na_common.hpp"

using namespace mmog;

int main() {
  bench::banner("Figure 13",
                "Allocated-resource distribution by latency tolerance");

  const auto workload = bench::north_america_workload();
  const auto neural = bench::neural_factory(workload);

  const dc::DistanceClass tolerances[] = {
      dc::DistanceClass::kSameLocation, dc::DistanceClass::kVeryClose,
      dc::DistanceClass::kClose, dc::DistanceClass::kFar,
      dc::DistanceClass::kVeryFar};

  // Header: one column per data center.
  const auto dcs = dc::north_america_ecosystem();
  std::printf("# Share of allocated CPU resources per data center [%%]\n");
  std::printf("  %-26s", "tolerance");
  for (const auto& d : dcs) std::printf(" %12s", d.name.c_str());
  std::printf(" %10s\n", "unplaced");

  for (auto tolerance : tolerances) {
    const auto result =
        bench::run_north_america(workload, tolerance, neural.factory);
    double total = 0.0;
    for (const auto& usage : result.datacenters) {
      total += usage.avg_allocated_cpu;
    }
    std::printf("  %-26s",
                std::string(dc::distance_class_name(tolerance)).c_str());
    for (const auto& usage : result.datacenters) {
      std::printf(" %11.1f%%",
                  total > 0 ? usage.avg_allocated_cpu / total * 100.0 : 0.0);
    }
    std::printf(" %10.1f\n",
                result.unplaced_cpu_unit_steps /
                    static_cast<double>(result.steps));
  }

  std::printf(
      "\nPaper reference (Fig 13): under Same-location each region is\n"
      "handled by its co-located centers; with growing tolerance the\n"
      "requests migrate towards the finer-grained Central/West policies\n"
      "and the coarse East Coast centers lose share.\n");
  return 0;
}
