// Reproduces Figure 6: the statistical properties (min, quartiles, median,
// max) of the time needed to make one prediction, for the prediction
// methods of §IV-D2, plus google-benchmark micro-timings. The paper
// measures ~7 us per neural prediction on a 2006 desktop; absolute numbers
// differ on modern hardware but the ordering (neural slowest, still
// microsecond-scale and thus "fast enough") must hold.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench/common.hpp"
#include "emu/datasets.hpp"
#include "obs/recorder.hpp"

using namespace mmog;

namespace {

util::TimeSeries sample_signal() {
  auto sets = emu::table1_datasets();
  sets[0].samples = 240;
  emu::Emulator emulator(emu::WorldConfig{8, 8, 50.0}, sets[0]);
  return emulator.run().total_series();
}

std::shared_ptr<const predict::NeuralModel> trained_model() {
  static std::shared_ptr<const predict::NeuralModel> model = [] {
    predict::NeuralConfig cfg;
    cfg.train.max_eras = 25;
    cfg.train.patience = 5;
    return std::make_shared<const predict::NeuralModel>(
        predict::NeuralModel::fit(cfg, sample_signal()));
  }();
  return model;
}

void run_quartile_table() {
  bench::banner("Figure 6", "Time to make one prediction (quartile table)");
  const auto signal = sample_signal();

  std::vector<std::pair<std::string, std::unique_ptr<predict::Predictor>>>
      predictors;
  predictors.emplace_back(
      "Neural", std::make_unique<predict::NeuralPredictor>(trained_model()));
  predictors.emplace_back(
      "Sliding window",
      std::make_unique<predict::SlidingWindowMedianPredictor>(5));
  predictors.emplace_back("Average",
                          std::make_unique<predict::AveragePredictor>());
  predictors.emplace_back(
      "Exp smoothing",
      std::make_unique<predict::ExponentialSmoothingPredictor>(0.5));

  // Per-predictor inference timing through the observability registry: each
  // predict() call lands in a fine log-bucketed duration histogram, the
  // same machinery the simulator uses for its "predictor.inference_us"
  // metric (quantiles are interpolated within buckets).
  obs::Registry registry;
  const auto fine_buckets = obs::log_buckets(0.005, 1e5, 1.15);
  util::TextTable table(
      {"Method", "Min [us]", "Q1 [us]", "Median [us]", "Q3 [us]", "Max [us]"});
  for (auto& [name, predictor] : predictors) {
    const std::string hist = "predict." + name + "_us";
    registry.define_histogram(hist, fine_buckets);
    volatile double sink = 0.0;  // keep the calls observable
    for (std::size_t rep = 0; rep < 20; ++rep) {
      for (double v : signal.values()) {
        predictor->observe(v);
        const obs::Stopwatch watch;
        sink = predictor->predict();
        registry.observe(hist, watch.elapsed_us());
      }
    }
    (void)sink;
  }
  const auto snap = registry.snapshot();
  for (const auto& [name, predictor] : predictors) {
    const auto& h = snap.histograms.at("predict." + name + "_us");
    table.add_row({name, util::TextTable::num(h.min, 3),
                   util::TextTable::num(h.quantile(0.25), 3),
                   util::TextTable::num(h.quantile(0.5), 3),
                   util::TextTable::num(h.quantile(0.75), 3),
                   util::TextTable::num(h.max, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper reference: the neural predictor is the slowest (~7 us on a\n"
      "2006 Core Duo) yet still in the fast-prediction category; the last\n"
      "value method has no computational cost and is omitted.\n\n");
}

void BM_NeuralPredict(benchmark::State& state) {
  predict::NeuralPredictor p(trained_model());
  const auto signal = sample_signal();
  std::size_t t = 0;
  for (std::size_t i = 0; i < 12; ++i) p.observe(signal[i]);
  for (auto _ : state) {
    p.observe(signal[t % signal.size()]);
    benchmark::DoNotOptimize(p.predict());
    ++t;
  }
}
BENCHMARK(BM_NeuralPredict);

void BM_SlidingWindowMedianPredict(benchmark::State& state) {
  predict::SlidingWindowMedianPredictor p(5);
  const auto signal = sample_signal();
  std::size_t t = 0;
  for (auto _ : state) {
    p.observe(signal[t % signal.size()]);
    benchmark::DoNotOptimize(p.predict());
    ++t;
  }
}
BENCHMARK(BM_SlidingWindowMedianPredict);

void BM_AveragePredict(benchmark::State& state) {
  predict::AveragePredictor p;
  const auto signal = sample_signal();
  std::size_t t = 0;
  for (auto _ : state) {
    p.observe(signal[t % signal.size()]);
    benchmark::DoNotOptimize(p.predict());
    ++t;
  }
}
BENCHMARK(BM_AveragePredict);

void BM_ExpSmoothingPredict(benchmark::State& state) {
  predict::ExponentialSmoothingPredictor p(0.5);
  const auto signal = sample_signal();
  std::size_t t = 0;
  for (auto _ : state) {
    p.observe(signal[t % signal.size()]);
    benchmark::DoNotOptimize(p.predict());
    ++t;
  }
}
BENCHMARK(BM_ExpSmoothingPredict);

void BM_LastValuePredict(benchmark::State& state) {
  predict::LastValuePredictor p;
  const auto signal = sample_signal();
  std::size_t t = 0;
  for (auto _ : state) {
    p.observe(signal[t % signal.size()]);
    benchmark::DoNotOptimize(p.predict());
    ++t;
  }
}
BENCHMARK(BM_LastValuePredict);

}  // namespace

int main(int argc, char** argv) {
  run_quartile_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
