#pragma once

// Shared setup for the §V-E latency-tolerance experiments (Figs 13-14):
// the North American sub-world of Table III with the East-coarse /
// West-fine hosting-policy gradient, under the combined workload of all
// North American game operators.

#include "bench/common.hpp"

namespace mmog::bench {

/// The combined North American workload: the three US regions of the trace
/// model, scaled so the continent's demand approaches its data-center
/// capacity (the paper's "busy system" with resource contention).
inline trace::WorldTrace north_america_workload(std::uint64_t seed = 513) {
  trace::RuneScapeModelConfig cfg;
  cfg.steps = util::samples_per_days(kLeadInDays + kExperimentDays);
  cfg.seed = seed;
  cfg.regions = {
      {.name = "US East Coast",
       .utc_offset_hours = -5,
       .server_groups = 40,
       .base_players_per_group = 1450.0,
       .weekend_multiplier = 1.10,
       .always_full_fraction = 0.03},
      {.name = "US West Coast",
       .utc_offset_hours = -8,
       .server_groups = 30,
       .base_players_per_group = 1400.0,
       .weekend_multiplier = 1.10,
       .always_full_fraction = 0.03},
      {.name = "US Central",
       .utc_offset_hours = -6,
       .server_groups = 20,
       .base_players_per_group = 1350.0,
       .weekend_multiplier = 1.10,
       .always_full_fraction = 0.03},
  };
  return trace::generate(cfg);
}

/// Runs the §V-E provisioning simulation at the given latency tolerance.
inline core::SimulationResult run_north_america(
    const trace::WorldTrace& workload, dc::DistanceClass tolerance,
    const predict::PredictorFactory& predictor) {
  core::SimulationConfig cfg;
  cfg.datacenters = dc::north_america_ecosystem();
  core::GameSpec game;
  game.name = "NA-MMOG";
  game.load = core::LoadModel{core::UpdateModel::kQuadratic, 2000.0};
  game.latency_tolerance = tolerance;
  game.workload = workload;
  cfg.games.push_back(std::move(game));
  cfg.predictor = predictor;
  return core::simulate(cfg);
}

}  // namespace mmog::bench
