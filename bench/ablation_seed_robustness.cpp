// Ablation: statistical robustness. The paper reports single-trace results;
// this harness re-runs the Table V headline comparison (Neural vs Last
// value vs Average, plus the static baseline) on five independently seeded
// workloads and reports the spread, showing which conclusions are stable
// and which are within noise.

#include <cstdio>

#include "bench/common.hpp"
#include "util/stats.hpp"

using namespace mmog;
using util::ResourceKind;

int main() {
  bench::banner("Ablation", "Conclusion robustness across workload seeds");

  const std::uint64_t seeds[] = {2008, 7, 42, 1337, 90210};

  struct Row {
    std::vector<double> dyn_over, sta_over, neural_events, avg_under;
  } acc;

  for (std::uint64_t seed : seeds) {
    const auto workload = bench::paper_workload(seed);
    const auto neural = bench::neural_factory(workload);

    auto cfg = bench::standard_config(workload);
    cfg.predictor = neural.factory;
    const auto dyn = core::simulate(cfg);

    auto avg_cfg = bench::standard_config(workload);
    avg_cfg.predictor = [] {
      return std::make_unique<predict::AveragePredictor>();
    };
    const auto avg = core::simulate(avg_cfg);

    auto sta_cfg = bench::standard_config(workload);
    sta_cfg.mode = core::AllocationMode::kStatic;
    const auto sta = core::simulate(sta_cfg);

    acc.dyn_over.push_back(
        dyn.metrics.avg_over_allocation_pct(ResourceKind::kCpu));
    acc.sta_over.push_back(
        sta.metrics.avg_over_allocation_pct(ResourceKind::kCpu));
    acc.neural_events.push_back(
        static_cast<double>(dyn.metrics.significant_events()));
    acc.avg_under.push_back(
        avg.metrics.avg_under_allocation_pct(ResourceKind::kCpu));

    std::printf(
        "seed %-6llu dyn over %6.2f%%  static over %7.2f%%  neural events "
        "%4.0f  Average under %6.2f%%\n",
        static_cast<unsigned long long>(seed), acc.dyn_over.back(),
        acc.sta_over.back(), acc.neural_events.back(), acc.avg_under.back());
  }

  auto report = [](const char* what, const std::vector<double>& xs) {
    const auto s = util::summarize(xs);
    std::printf("  %-28s mean %8.2f  min %8.2f  max %8.2f\n", what, s.mean,
                s.min, s.max);
  };
  std::printf("\nAcross %zu seeds:\n", std::size(seeds));
  report("dynamic over-allocation [%]", acc.dyn_over);
  report("static over-allocation [%]", acc.sta_over);
  report("neural |Υ|>1% events", acc.neural_events);
  report("Average predictor under [%]", acc.avg_under);

  double min_ratio = 1e18;
  for (std::size_t i = 0; i < acc.dyn_over.size(); ++i) {
    min_ratio = std::min(min_ratio, acc.sta_over[i] / acc.dyn_over[i]);
  }
  std::printf(
      "\nStatic/dynamic inefficiency ratio >= %.1fx on every seed; the\n"
      "Average predictor under-allocates on every seed. The paper's\n"
      "qualitative conclusions do not hinge on a lucky trace.\n",
      min_ratio);
  return 0;
}
