// Ablation: the operating-cost angle the paper's introduction motivates
// (static infrastructures waste money on idle machines). Using the cost
// model (granted CPU unit-hours x the serving policy's price), compare the
// renting bill of static provisioning against dynamic provisioning under
// each predictor, over the standard two-week §V-B setup.

#include <cstdio>

#include "bench/common.hpp"

using namespace mmog;
using util::ResourceKind;

int main() {
  bench::banner("Ablation", "Renting cost: static vs dynamic provisioning");

  const auto workload = bench::paper_workload();

  auto static_cfg = bench::standard_config(workload);
  static_cfg.mode = core::AllocationMode::kStatic;
  const auto sta = core::simulate(static_cfg);

  util::TextTable table({"Strategy", "Cost [unit-hours]", "vs static",
                         "Over CPU [%]", "|Υ|>1% events"});
  table.add_row({"Static (dedicated)", util::TextTable::num(sta.total_cost, 0),
                 "1.00x",
                 util::TextTable::num(
                     sta.metrics.avg_over_allocation_pct(ResourceKind::kCpu),
                     1),
                 std::to_string(sta.metrics.significant_events())});

  for (const auto& nf : bench::tableV_lineup(workload)) {
    auto cfg = bench::standard_config(workload);
    cfg.predictor = nf.factory;
    const auto dyn = core::simulate(cfg);
    table.add_row(
        {"Dynamic / " + nf.name, util::TextTable::num(dyn.total_cost, 0),
         util::TextTable::num(dyn.total_cost / sta.total_cost, 2) + "x",
         util::TextTable::num(
             dyn.metrics.avg_over_allocation_pct(ResourceKind::kCpu), 1),
         std::to_string(dyn.metrics.significant_events())});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Dynamic provisioning cuts the renting bill to roughly the demand's\n"
      "integral even though fine-grained offers carry a per-unit premium;\n"
      "the paper's motivation — a large portion of statically-owned\n"
      "resources are unnecessary — expressed in money.\n");
  return 0;
}
