// Reproduces Figure 2: the number of globally active concurrent RuneScape
// players over two months, December 2007 - January 2008, including the
// highly unpopular decision of 10 December 2007 (a >25 % drop in under a
// day, later amended with recovery to ~95 %) and the two content releases
// (18 December 2007, 15 January 2008) with their >50 % surges.

#include <cstdio>

#include "bench/common.hpp"
#include "trace/analysis.hpp"
#include "trace/runescape_model.hpp"

using namespace mmog;

int main() {
  bench::banner("Figure 2",
                "Globally active concurrent players with population shocks");

  auto cfg = trace::RuneScapeModelConfig::paper_default();
  cfg.steps = util::samples_per_days(60);  // two months
  cfg.seed = 1207;

  // 10 December 2007 (day 9 of the window): the unpopular decision.
  trace::EventSpec unpopular;
  unpopular.kind = trace::EventSpec::Kind::kUnpopularDecision;
  unpopular.step = util::samples_per_days(9);
  unpopular.magnitude = 0.25;
  unpopular.recovery_delay_steps = util::samples_per_days(3);
  unpopular.recovery_level = 0.95;
  // 18 December 2007 (day 17): new content after the amendment.
  trace::EventSpec release1;
  release1.kind = trace::EventSpec::Kind::kContentRelease;
  release1.step = util::samples_per_days(17);
  release1.magnitude = 0.55;
  // 15 January 2008 (day 45): new content.
  trace::EventSpec release2;
  release2.kind = trace::EventSpec::Kind::kContentRelease;
  release2.step = util::samples_per_days(45);
  release2.magnitude = 0.55;
  cfg.events = {unpopular, release1, release2};

  const auto world = trace::generate(cfg);
  const auto global = world.global();

  // The paper plots two-hour averages.
  const auto two_hourly = global.downsample_mean(60);
  bench::print_series("Active concurrent players (2-hour averages)",
                      two_hourly, 120, "players");

  std::printf("\nTrace statistics:\n");
  std::printf("  max global concurrent players : %.0f\n", global.max());
  std::printf("  min global concurrent players : %.0f\n", global.min());

  const auto detected = trace::detect_events(global);
  std::printf("\nDetected population shocks (window = 1 day):\n");
  for (const auto& ev : detected) {
    std::printf("  day %5.1f: %s of %+.1f%%\n",
                static_cast<double>(ev.step) / 720.0,
                ev.kind == trace::DetectedEvent::Kind::kDrop ? "drop "
                                                             : "surge",
                ev.relative_change * 100.0);
  }
  std::printf(
      "\nPaper reference: a 25%% drop in <1 day on 10 Dec 2007, recovery to\n"
      "~95%% after amendment, and >50%% surges after each content release.\n");
  return 0;
}
