// Reproduces Figure 5: the prediction error of the seven algorithms (the
// neural predictor and six simple ones) on the eight emulated trace data
// sets of Table I. Prediction is per sub-zone with the world estimate being
// the sum of zone predictions (§IV-B); the error metric is the paper's
// normalized absolute error (§IV-D2).

#include <cstdio>
#include <map>

#include "bench/common.hpp"
#include "emu/datasets.hpp"
#include "predict/evaluate.hpp"
#include "util/thread_pool.hpp"

using namespace mmog;

int main() {
  bench::banner("Figure 5",
                "Accuracy of seven prediction algorithms on MMOG data");

  const auto sets = emu::table1_datasets();
  // First half of each simulated day: warm-up / neural training; the error
  // is scored on the second half.
  const std::size_t start = util::kSamplesPerDay / 2;

  std::vector<std::vector<util::TimeSeries>> zone_series(sets.size());
  util::parallel_for(sets.size(), [&](std::size_t i) {
    emu::Emulator emulator(emu::WorldConfig{}, sets[i]);
    zone_series[i] = emulator.run().zone_series();
  });

  std::vector<std::string> names;
  std::map<std::string, std::vector<double>> errors;

  for (std::size_t i = 0; i < sets.size(); ++i) {
    const auto& zones = zone_series[i];

    // Offline phases of the neural predictor (§IV-C) on the warm-up half of
    // a subsample of zones.
    predict::NeuralConfig ncfg;
    ncfg.train.max_eras = 300;
    ncfg.train.patience = 40;
    std::vector<util::TimeSeries> histories;
    for (const auto& zone : zones) {
      histories.push_back(zone.slice(0, start));
    }
    auto model = std::make_shared<const predict::NeuralModel>(
        predict::NeuralModel::fit(ncfg, histories));

    std::vector<bench::NamedFactory> lineup;
    lineup.push_back({"Neural", [model] {
                        return std::make_unique<predict::NeuralPredictor>(
                            model);
                      }});
    for (auto& f : bench::simple_factories()) lineup.push_back(std::move(f));
    lineup.push_back(
        {"Exp. smoothing 25%", [] {
           return std::make_unique<predict::ExponentialSmoothingPredictor>(
               0.25);
         }});
    lineup.push_back(
        {"Exp. smoothing 75%", [] {
           return std::make_unique<predict::ExponentialSmoothingPredictor>(
               0.75);
         }});

    for (const auto& nf : lineup) {
      // nullopt marks an all-zero evaluation window (error undefined); it
      // must not enter the per-set list, or the mean column would average
      // in a fake perfect score.
      const auto err = predict::zones_prediction_error(nf.factory, zones, start);
      if (!err.has_value()) continue;
      if (errors.find(nf.name) == errors.end()) names.push_back(nf.name);
      errors[nf.name].push_back(*err);
    }
  }

  util::TextTable table({"Predictor", "Set 1", "Set 2", "Set 3", "Set 4",
                         "Set 5", "Set 6", "Set 7", "Set 8", "Mean"});
  for (const auto& name : names) {
    std::vector<std::string> row = {name};
    double sum = 0.0;
    for (double e : errors[name]) {
      row.push_back(util::TextTable::num(e, 2) + "%");
      sum += e;
    }
    row.push_back(util::TextTable::num(
                      sum / static_cast<double>(errors[name].size()), 2) +
                  "%");
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());

  // Who wins per set?
  std::printf("Best predictor per data set:\n");
  std::size_t neural_wins = 0;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    std::string best;
    double best_err = 1e18;
    for (const auto& name : names) {
      if (errors[name][i] < best_err) {
        best_err = errors[name][i];
        best = name;
      }
    }
    if (best == "Neural") ++neural_wins;
    std::printf("  %s (%s): %s (%.2f%%)\n", sets[i].name.c_str(),
                std::string(emu::signal_type_name(emu::signal_type(i))).c_str(),
                best.c_str(), best_err);
  }
  std::printf(
      "\nPaper reference: the neural predictor has the lowest errors and\n"
      "adapts to all signal types; it wins clearly on the high-dynamics\n"
      "Type I and III sets. Neural wins here on %zu of 8 sets.\n",
      neural_wins);
  return 0;
}
