// Reproduces Figure 3: the region-0 (Europe) workload analysis over two
// weeks — (top) min/median/max load across the region's server groups,
// (middle) the interquartile range over time, (bottom) the per-group
// autocorrelation functions with their 24 h peak and 12 h trough.

#include <algorithm>
#include <cstdio>

#include "bench/common.hpp"
#include "trace/analysis.hpp"
#include "util/stats.hpp"

using namespace mmog;

int main() {
  bench::banner("Figure 3", "RuneScape workload for region 0 (Europe)");

  // Two full weeks plus the two adjacent days (§III-C: "over 11,000 data
  // samples taken at intervals of two minutes").
  const auto world = bench::paper_workload(815, 16);
  const auto& region = world.regions.front();
  std::printf("Region: %s, %zu server groups, %zu samples\n\n",
              region.name.c_str(), region.groups.size(),
              region.groups.front().players.size());

  // --- Top sub-plot: median load with max-min range. -----------------------
  const auto agg = trace::aggregate_over_groups(region);
  std::printf("# Median load with max-min range (every 4 hours)\n");
  for (std::size_t t = 0; t < agg.size(); t += 120) {
    std::printf("  t=%7.1fh  min=%7.0f  median=%7.0f  max=%7.0f\n",
                static_cast<double>(t) * 2.0 / 60.0, agg[t].min,
                agg[t].median, agg[t].max);
  }

  // The paper: "there is a strong load variation during the peak hours:
  // the median is about 50% higher than the minimum". Evaluate at the step
  // with the highest median load.
  std::size_t peak_step = 0;
  for (std::size_t t = 1; t < agg.size(); ++t) {
    if (agg[t].median > agg[peak_step].median) peak_step = t;
  }
  std::printf(
      "\n  at the peak step (t=%.1fh): median %.0f, minimum %.0f -> "
      "median/min = %.2f (paper: ~1.5)\n",
      static_cast<double>(peak_step) * 2.0 / 60.0, agg[peak_step].median,
      std::max(1.0, agg[peak_step].min),
      agg[peak_step].median / std::max(1.0, agg[peak_step].min));

  // --- Middle sub-plot: interquartile range over time. ----------------------
  const auto iqr = trace::iqr_over_time(region);
  std::printf("\n# Interquartile range of server-group load (every 4 hours)\n");
  for (std::size_t t = 0; t < iqr.size(); t += 120) {
    std::printf("  t=%7.1fh  IQR=%7.0f\n",
                static_cast<double>(t) * 2.0 / 60.0, iqr[t]);
  }
  const auto iqr_acf = util::autocorrelation(iqr, 720);
  std::printf("  IQR autocorrelation at 24h lag: %.2f (diurnal cycle)\n",
              iqr_acf[720]);

  // --- Bottom sub-plot: per-group load autocorrelations. --------------------
  const auto acfs = trace::group_autocorrelations(region, 760);
  std::printf("\n# Load autocorrelation per server group (lags of interest)\n");
  std::printf("  %-28s %10s %10s\n", "group", "ACF@12h", "ACF@24h");
  double sum12 = 0.0, sum24 = 0.0;
  std::size_t diurnal_groups = 0;
  for (std::size_t g = 0; g < acfs.size(); ++g) {
    if (g % 8 == 0) {
      std::printf("  %-28s %10.2f %10.2f\n", region.groups[g].name.c_str(),
                  acfs[g][360], acfs[g][720]);
    }
    sum12 += acfs[g][360];
    sum24 += acfs[g][720];
    if (acfs[g][720] > 0.3) ++diurnal_groups;
  }
  std::printf("  %-28s %10.2f %10.2f\n", "MEAN over all groups",
              sum12 / static_cast<double>(acfs.size()),
              sum24 / static_cast<double>(acfs.size()));
  std::printf(
      "\n  groups with a clear diurnal pattern: %zu / %zu\n", diurnal_groups,
      acfs.size());
  const auto always_full = trace::count_always_full(region, 0.92, 0.9);
  std::printf(
      "  always-full groups (>=95%% capacity around the clock): %zu "
      "(paper: 2-5%% of servers)\n",
      always_full);
  return 0;
}
