#pragma once

// Shared helpers for the table/figure reproduction harnesses. Each bench
// binary regenerates one table or figure of the paper; these helpers build
// the common experimental setup of §V-A: the two-week RuneScape-like trace
// (plus two lead-in days used to train the neural predictor) and the
// standard predictor line-up.

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/simulation.hpp"
#include "obs/recorder.hpp"
#include "predict/ar.hpp"
#include "predict/neural.hpp"
#include "predict/simple.hpp"
#include "trace/runescape_model.hpp"
#include "util/table.hpp"

namespace mmog::bench {

/// Simulation horizon used throughout §V: two weeks of 2-minute samples
/// plus the two adjacent lead-in days ("over 10,000 metric samples").
inline constexpr std::size_t kLeadInDays = 2;
inline constexpr std::size_t kExperimentDays = 14;

/// The §V-A workload: the five-region synthetic RuneScape-like trace.
inline trace::WorldTrace paper_workload(std::uint64_t seed = 2008,
                                        std::size_t days = kLeadInDays +
                                                           kExperimentDays) {
  auto cfg = trace::RuneScapeModelConfig::paper_default();
  cfg.steps = util::samples_per_days(static_cast<double>(days));
  cfg.seed = seed;
  return trace::generate(cfg);
}

/// A named predictor factory.
struct NamedFactory {
  std::string name;
  predict::PredictorFactory factory;
};

/// The neural predictor trained offline on the workload's lead-in days
/// (§IV-C's data-collection and training phases).
inline NamedFactory neural_factory(const trace::WorldTrace& workload) {
  predict::NeuralConfig cfg;
  cfg.train.max_eras = 40;
  cfg.train.patience = 8;
  return {"Neural",
          core::neural_factory_from_workload(
              workload, util::samples_per_days(kLeadInDays), cfg, 6)};
}

/// The six simple predictors of §IV/§V in the paper's order.
inline std::vector<NamedFactory> simple_factories() {
  return {
      {"Average", [] { return std::make_unique<predict::AveragePredictor>(); }},
      {"Last value",
       [] { return std::make_unique<predict::LastValuePredictor>(); }},
      {"Moving average",
       [] { return std::make_unique<predict::MovingAveragePredictor>(5); }},
      {"Sliding window",
       [] {
         return std::make_unique<predict::SlidingWindowMedianPredictor>(5);
       }},
      {"Exp. smoothing",
       [] {
         return std::make_unique<predict::ExponentialSmoothingPredictor>(0.5);
       }},
  };
}

/// The Table V line-up: Neural plus the six simple predictors (exponential
/// smoothing is reported once at alpha = 0.5 in Table V).
inline std::vector<NamedFactory> tableV_lineup(
    const trace::WorldTrace& workload) {
  std::vector<NamedFactory> all;
  all.push_back(neural_factory(workload));
  for (auto& f : simple_factories()) all.push_back(std::move(f));
  return all;
}

/// The standard §V-B provisioning configuration: Table III world with
/// HP-1/HP-2 round-robin, one O(n^2) game, no latency restriction.
inline core::SimulationConfig standard_config(trace::WorldTrace workload) {
  core::SimulationConfig cfg;
  cfg.datacenters = dc::paper_ecosystem();
  core::GameSpec game;
  game.name = "RuneScape-like";
  game.load = core::LoadModel{core::UpdateModel::kQuadratic, 2000.0};
  game.latency_tolerance = dc::DistanceClass::kVeryFar;
  game.workload = std::move(workload);
  cfg.games.push_back(std::move(game));
  return cfg;
}

/// Index of the data center carrying the most demand in a clean dynamic
/// probe run of `config` — the failure/chaos ablations aim injected faults
/// there so an outage actually takes live game servers down.
inline std::size_t busiest_datacenter(core::SimulationConfig config,
                                      predict::PredictorFactory factory) {
  config.mode = core::AllocationMode::kDynamic;
  config.predictor = std::move(factory);
  const auto probe = core::simulate(config);
  std::size_t busiest = 0;
  for (std::size_t i = 1; i < probe.datacenters.size(); ++i) {
    if (probe.datacenters[i].avg_allocated_cpu >
        probe.datacenters[busiest].avg_allocated_cpu) {
      busiest = i;
    }
  }
  return busiest;
}

/// Prints a time series as rows of (time, value), downsampled to roughly
/// `points` rows — the textual analogue of one plotted curve.
inline void print_series(const std::string& label,
                         const util::TimeSeries& series, std::size_t points,
                         const std::string& unit = "") {
  if (series.empty()) return;
  const std::size_t stride = std::max<std::size_t>(1, series.size() / points);
  std::printf("# %s%s\n", label.c_str(),
              unit.empty() ? "" : (" [" + unit + "]").c_str());
  for (std::size_t i = 0; i < series.size(); i += stride) {
    std::printf("  t=%7.1fh  %12.2f\n", series.time_at(i) / 3600.0,
                series[i]);
  }
}

/// Prints a registry snapshot as two tables — counters/gauges and duration
/// histograms — so every harness can emit the observability state of its
/// instrumented runs next to the reproduced table or figure.
inline void print_registry_snapshot(const obs::Snapshot& snap,
                                    const std::string& title =
                                        "Observability snapshot") {
  std::printf("# %s\n", title.c_str());
  if (!snap.counters.empty() || !snap.gauges.empty()) {
    util::TextTable table({"Metric", "Kind", "Value"});
    for (const auto& [name, value] : snap.counters) {
      table.add_row({name, "counter", util::TextTable::num(value, 0)});
    }
    for (const auto& [name, value] : snap.gauges) {
      table.add_row({name, "gauge", util::TextTable::num(value, 0)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  if (!snap.histograms.empty()) {
    util::TextTable table({"Histogram", "Count", "Mean", "P50", "P90", "P99",
                           "Max"});
    for (const auto& [name, h] : snap.histograms) {
      table.add_row({name, std::to_string(h.count),
                     util::TextTable::num(h.mean(), 3),
                     util::TextTable::num(h.quantile(0.5), 3),
                     util::TextTable::num(h.quantile(0.9), 3),
                     util::TextTable::num(h.quantile(0.99), 3),
                     util::TextTable::num(h.max, 3)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
}

/// Banner shared by every harness.
inline void banner(const std::string& id, const std::string& caption) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), caption.c_str());
  std::printf("==============================================================\n");
}

}  // namespace mmog::bench
