// Reproduces Table I: the eight emulator trace data sets — configuration
// (AI-profile mix, peak hours) plus the measured peak load, overall
// dynamics and instantaneous dynamics of the generated signals, and their
// Type I/II/III classification (§IV-D1).

#include <cmath>
#include <cstdio>

#include "bench/common.hpp"
#include "emu/datasets.hpp"
#include "util/stats.hpp"

using namespace mmog;

namespace {

// Overall dynamics: relative swing of the interaction level over the day.
double overall_dynamics(const util::TimeSeries& interactions) {
  const auto hourly = interactions.downsample_mean(30);
  if (hourly.mean() <= 0.0) return 0.0;
  return (hourly.max() - hourly.min()) / hourly.mean();
}

// Instantaneous dynamics: mean relative change between 2-minute samples.
double instantaneous_dynamics(const util::TimeSeries& interactions) {
  if (interactions.size() < 2 || interactions.mean() <= 0.0) return 0.0;
  double sum = 0.0;
  for (std::size_t t = 1; t < interactions.size(); ++t) {
    sum += std::abs(interactions[t] - interactions[t - 1]);
  }
  return sum / static_cast<double>(interactions.size() - 1) /
         interactions.mean();
}

}  // namespace

int main() {
  bench::banner("Table I",
                "Configuration and characteristics of the eight emulated "
                "trace data sets");

  util::TextTable table({"Data set", "Aggr", "Scout", "Team", "Camp",
                         "Peak hours", "Peak load", "Overall dyn.",
                         "Inst. dyn.", "Signal type"});

  const auto sets = emu::table1_datasets();
  for (std::size_t i = 0; i < sets.size(); ++i) {
    emu::Emulator emulator(emu::WorldConfig{}, sets[i]);
    const auto trace = emulator.run();
    const auto interactions = trace.interaction_series();
    const auto total = trace.total_series();
    table.add_row({
        sets[i].name,
        util::TextTable::num(sets[i].mix.aggressive * 100, 0) + "%",
        util::TextTable::num(sets[i].mix.scout * 100, 0) + "%",
        util::TextTable::num(sets[i].mix.team * 100, 0) + "%",
        util::TextTable::num(sets[i].mix.camper * 100, 0) + "%",
        sets[i].peak_hours ? "Yes" : "No",
        util::TextTable::num(total.max(), 0),
        util::TextTable::num(overall_dynamics(interactions), 2),
        util::TextTable::num(instantaneous_dynamics(interactions), 3),
        std::string(emu::signal_type_name(emu::signal_type(i))),
    });
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Type I = high instantaneous dynamics (sets 2-4), Type II = low\n"
      "instantaneous dynamics (sets 6-8), Type III = medium (sets 1, 5).\n"
      "Each set is one simulated day sampled every two minutes (§IV-D1).\n");
  return 0;
}
