// Reproduces Figure 9: the resource over- and under-allocation over time
// for the O(n), O(n^2) and O(n^3) update models under dynamic allocation
// with the Neural predictor (§V-C). Higher interaction complexity amplifies
// the load swings and so the fluctuations of both metrics.

#include <cstdio>

#include "bench/common.hpp"
#include "util/stats.hpp"

using namespace mmog;
using core::UpdateModel;
using util::ResourceKind;

int main() {
  bench::banner("Figure 9",
                "Over-/under-allocation over time for three update models");

  const auto workload = bench::paper_workload();
  const auto neural = bench::neural_factory(workload);

  const UpdateModel models[] = {UpdateModel::kLinear, UpdateModel::kQuadratic,
                                UpdateModel::kCubic};
  for (auto model : models) {
    auto cfg = bench::standard_config(workload);
    cfg.games[0].load.model = model;
    cfg.predictor = neural.factory;
    const auto result = core::simulate(cfg);
    const auto& steps = result.metrics.step_metrics();

    std::printf("\n# %s (sampled every 12 hours)\n",
                std::string(core::update_model_name(model)).c_str());
    std::printf("  %-8s %18s %18s\n", "day", "over-alloc [%]",
                "under-alloc [%]");
    for (std::size_t t = 0; t < steps.size(); t += 360) {
      std::printf("  %-8.1f %17.1f%% %17.2f%%\n",
                  static_cast<double>(t) / 720.0,
                  steps[t].over_allocation_pct(ResourceKind::kCpu),
                  steps[t].under_allocation_pct(ResourceKind::kCpu));
    }
    // Fluctuation measure: stddev of the over-allocation percentage.
    std::vector<double> over;
    for (const auto& m : steps) {
      over.push_back(m.over_allocation_pct(ResourceKind::kCpu));
    }
    const auto s = util::summarize(over);
    std::printf(
        "  summary: avg over %.1f%% (stddev %.1f), avg under %.2f%%, "
        "events %zu\n",
        result.metrics.avg_over_allocation_pct(ResourceKind::kCpu), s.stddev,
        result.metrics.avg_under_allocation_pct(ResourceKind::kCpu),
        result.metrics.significant_events());
  }

  std::printf(
      "\nPaper reference: the higher the update-model complexity, the\n"
      "greater the over-allocation fluctuations and the more frequent the\n"
      "significant under-allocation events.\n");
  return 0;
}
