// Reproduces Table V: the average provisioning performance of the dynamic
// resource allocation under six different prediction algorithms — CPU and
// external-network over-allocation, under-allocation, and the number of
// significant under-allocation events (|Υ| > 1 %). Setup of §V-B: Table III
// data centers with HP-1/HP-2 assigned round-robin, one O(n^2) MMOG, two
// weeks of the RuneScape-like trace.

#include <cstdio>

#include "bench/common.hpp"

using namespace mmog;
using util::ResourceKind;

int main() {
  bench::banner("Table V",
                "Dynamic resource allocation under six prediction algorithms");

  const auto workload = bench::paper_workload();
  const auto lineup = bench::tableV_lineup(workload);

  util::TextTable table({"Predictor", "Over CPU [%]", "Over ExtNet[in] [%]",
                         "Over ExtNet[out] [%]", "Under CPU [%]",
                         "Under ExtNet[out] [%]", "|Υ|>1% events"});

  // One metrics-only recorder shared by all runs: per-phase duration
  // histograms and offer/allocation counters aggregated over the line-up.
  obs::Recorder recorder(obs::TraceLevel::kOff);

  std::string best_name;
  std::size_t best_events = ~0ull;
  for (const auto& nf : lineup) {
    auto cfg = bench::standard_config(workload);
    cfg.predictor = nf.factory;
    cfg.recorder = &recorder;
    const auto result = core::simulate(cfg);
    const auto& m = result.metrics;
    const auto events = m.significant_events();
    table.add_row({
        nf.name,
        util::TextTable::num(m.avg_over_allocation_pct(ResourceKind::kCpu), 2),
        util::TextTable::num(m.avg_over_allocation_pct(ResourceKind::kNetIn),
                             2),
        util::TextTable::num(m.avg_over_allocation_pct(ResourceKind::kNetOut),
                             2),
        util::TextTable::num(m.avg_under_allocation_pct(ResourceKind::kCpu),
                             2),
        util::TextTable::num(
            m.avg_under_allocation_pct(ResourceKind::kNetOut), 2),
        std::to_string(events),
    });
    if (events < best_events) {
      best_events = events;
      best_name = nf.name;
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Fewest significant under-allocation events: %s (%zu)\n\n", best_name.c_str(),
      best_events);
  std::printf(
      "Paper reference (Table V): the Average predictor forms its own poor\n"
      "class (deep CPU under-allocation, thousands of events); Neural and\n"
      "Last value lead, with Neural producing roughly half the events of\n"
      "Last value. ExtNet[in] over-allocation is ~10x the demand because\n"
      "HP-1/HP-2 rent inbound bandwidth in 4-6 unit bulks.\n\n");
  bench::print_registry_snapshot(
      recorder.snapshot(),
      "Observability snapshot (all six runs, durations in us)");
  return 0;
}
