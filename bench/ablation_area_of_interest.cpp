// Ablation: the area-of-interest optimization of §II-A. Games that update
// only each avatar's area of interest reduce O(n^2) to O(n log n) and
// O(n^3) to O(n^2 log n); this harness quantifies what that buys in
// provisioning terms (average allocation, events, and the static baseline).

#include <cstdio>

#include "bench/common.hpp"

using namespace mmog;
using core::UpdateModel;
using util::ResourceKind;

int main() {
  bench::banner("Ablation", "Area-of-interest load reduction (SS II-A)");

  const auto workload = bench::paper_workload();
  const auto neural = bench::neural_factory(workload);

  util::TextTable table({"Update model", "AoI", "Dyn over [%]",
                         "Dyn under [%]", "Events", "Static over [%]",
                         "Avg CPU used [units]"});

  for (auto base : {UpdateModel::kQuadratic, UpdateModel::kCubic}) {
    for (bool aoi : {false, true}) {
      const auto model = aoi ? core::with_area_of_interest(base) : base;
      auto cfg = bench::standard_config(workload);
      cfg.games[0].load.model = model;
      cfg.predictor = neural.factory;
      const auto dyn = core::simulate(cfg);

      auto static_cfg = bench::standard_config(workload);
      static_cfg.games[0].load.model = model;
      static_cfg.mode = core::AllocationMode::kStatic;
      const auto sta = core::simulate(static_cfg);

      double used_sum = 0.0;
      for (const auto& m : dyn.metrics.step_metrics()) {
        used_sum += m.used.cpu();
      }
      table.add_row(
          {std::string(core::update_model_name(base)), aoi ? "yes" : "no",
           util::TextTable::num(
               dyn.metrics.avg_over_allocation_pct(ResourceKind::kCpu), 2),
           util::TextTable::num(
               dyn.metrics.avg_under_allocation_pct(ResourceKind::kCpu), 3),
           std::to_string(dyn.metrics.significant_events()),
           util::TextTable::num(
               sta.metrics.avg_over_allocation_pct(ResourceKind::kCpu), 2),
           util::TextTable::num(
               used_sum / static_cast<double>(dyn.metrics.steps()), 1)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Area-of-interest filtering lowers the consumed CPU, softens the\n"
      "load swings (fewer under-allocation events) and shrinks the static\n"
      "baseline's waste — quantifying why §II-A calls it essential for\n"
      "large game worlds.\n");
  return 0;
}
