// Ablation: the paper assumes zero resource allocation/provisioning/setup
// overhead (§V: "We assume zero overhead in resource allocation,
// provisioning, and setup"). This harness quantifies that assumption by
// sweeping a setup delay between granting an allocation and the game
// servers actually serving load.

#include <cstdio>

#include "bench/common.hpp"

using namespace mmog;
using util::ResourceKind;

int main() {
  bench::banner("Ablation",
                "Sensitivity to the zero-setup-overhead assumption");

  const auto workload = bench::paper_workload();
  const auto neural = bench::neural_factory(workload);

  util::TextTable table({"Setup delay", "Over [%]", "Under [%]",
                         "|Υ|>1% events"});
  for (std::size_t delay : {0u, 1u, 5u, 15u, 30u}) {
    auto cfg = bench::standard_config(workload);
    cfg.predictor = neural.factory;
    cfg.provisioning_delay_steps = delay;
    const auto result = core::simulate(cfg);
    table.add_row(
        {std::to_string(delay * 2) + " min",
         util::TextTable::num(
             result.metrics.avg_over_allocation_pct(ResourceKind::kCpu), 2),
         util::TextTable::num(
             result.metrics.avg_under_allocation_pct(ResourceKind::kCpu), 3),
         std::to_string(result.metrics.significant_events())});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Setup overheads up to ~10 minutes cost little because the 2-minute\n"
      "control loop plus the prediction cushion hide them; beyond that the\n"
      "operator chases a load that has already moved — the zero-overhead\n"
      "assumption matters for slow-to-boot game servers.\n");
  return 0;
}
