// Reproduces Figure 1: the number of MMORPG players over time (1997-2008)
// for the paper's title catalog, with the six >500k-player leaders
// highlighted and the 2011 extrapolation quoted in §II-C.

#include <cstdio>

#include "bench/common.hpp"
#include "trace/mmorpg_market.hpp"
#include "util/table.hpp"

using namespace mmog;

int main() {
  bench::banner("Figure 1", "Number of MMORPG players over time");

  const auto titles = trace::paper_title_catalog();
  const auto series = trace::market_series(titles, 1997.0, 2008.5, 0.5);

  util::TextTable table({"Year", "Total players [M]", "Largest title",
                         "Largest [M]"});
  for (const auto& point : series) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < point.per_title.size(); ++i) {
      if (point.per_title[i] > point.per_title[best]) best = i;
    }
    table.add_row({util::TextTable::num(point.year, 1),
                   util::TextTable::num(point.total / 1e6, 2),
                   point.total > 0 ? titles[best].name : "-",
                   util::TextTable::num(point.per_title[best] / 1e6, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  const auto leaders = trace::titles_above(titles, 2008.0, 500e3);
  std::printf("Titles with over 500k players in 2008 (paper: six):\n");
  for (const auto& name : leaders) std::printf("  - %s\n", name.c_str());

  const auto extrapolated = trace::market_series(titles, 2011.0, 2011.0, 1.0);
  std::printf(
      "\nExtrapolated catalog total in 2011: %.1f M players "
      "(paper projects >60 M for the whole US+EU market)\n",
      extrapolated.front().total / 1e6);
  return 0;
}
