// Reproduces Table VII: over- and under-allocation averages while the
// ecosystem concurrently services different MMOG types (§V-F) —
// MMOG A with O(n log n), MMOG B with O(n^2) and MMOG C with
// O(n^2 log n) update models, mixed in seven workload structures.
// The efficiency of the provisioning system is determined by its biggest
// consumer.

#include <cmath>
#include <cstdio>

#include "bench/common.hpp"

using namespace mmog;
using core::UpdateModel;
using util::ResourceKind;

namespace {

// Builds a workload whose group counts scale with `share` of the standard
// five-region world (shares in percent).
trace::WorldTrace scaled_workload(double share_pct, std::uint64_t seed) {
  if (share_pct <= 0.0) return {};
  auto cfg = trace::RuneScapeModelConfig::paper_default();
  cfg.steps = util::samples_per_days(bench::kLeadInDays +
                                     bench::kExperimentDays);
  cfg.seed = seed;
  for (auto& region : cfg.regions) {
    region.server_groups = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(static_cast<double>(region.server_groups) *
                            share_pct / 100.0)));
  }
  return trace::generate(cfg);
}

}  // namespace

int main() {
  bench::banner("Table VII", "Concurrently servicing multiple MMOG types");

  struct Scenario {
    double a, b, c;  // percent of the workload per MMOG type
  };
  const Scenario scenarios[] = {
      {0, 0, 100}, {5, 5, 90},   {10, 10, 80}, {25, 25, 50},
      {33, 33, 33}, {0, 100, 0}, {100, 0, 0},
  };

  util::TextTable table({"MMOG A [%]", "MMOG B [%]", "MMOG C [%]",
                         "Over [%]", "Under [%]", "|Υ|>1% events"});

  for (const auto& s : scenarios) {
    core::SimulationConfig cfg;
    cfg.datacenters = dc::paper_ecosystem();

    struct TypeSpec {
      const char* name;
      UpdateModel model;
      double share;
    };
    const TypeSpec types[] = {
        {"MMOG A", UpdateModel::kNLogN, s.a},
        {"MMOG B", UpdateModel::kQuadratic, s.b},
        {"MMOG C", UpdateModel::kQuadraticLogN, s.c},
    };
    std::uint64_t seed = 900;
    trace::WorldTrace predictor_source;
    for (const auto& t : types) {
      if (t.share <= 0.0) continue;
      core::GameSpec game;
      game.name = t.name;
      game.load = core::LoadModel{t.model, 2000.0};
      game.workload = scaled_workload(t.share, seed++);
      if (predictor_source.regions.empty()) {
        predictor_source = game.workload;
      }
      cfg.games.push_back(std::move(game));
    }
    predict::NeuralConfig ncfg;
    ncfg.train.max_eras = 40;
    ncfg.train.patience = 8;
    cfg.predictor = core::neural_factory_from_workload(
        predictor_source, util::samples_per_days(bench::kLeadInDays), ncfg, 6);

    const auto result = core::simulate(cfg);
    table.add_row(
        {util::TextTable::num(s.a, 0), util::TextTable::num(s.b, 0),
         util::TextTable::num(s.c, 0),
         util::TextTable::num(
             result.metrics.avg_over_allocation_pct(ResourceKind::kCpu), 2),
         util::TextTable::num(
             result.metrics.avg_under_allocation_pct(ResourceKind::kCpu), 3),
         std::to_string(result.metrics.significant_events())});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper reference (Table VII): while the workload is dominated by the\n"
      "compute-intensive B or C types the performance is stable (within a\n"
      "few percent); a pure A (O(n log n)) workload is served markedly\n"
      "better — the provisioning efficiency is set by the biggest consumer.\n");
  return 0;
}
