// Reproduces Table VI: the average performance of the static and of the
// dynamic allocation mechanisms for the five interaction (update) models
// (§V-C). Static over-allocation grows from ~56 % at O(n) to ~242 % at
// O(n^3) in the paper while staying free of under-allocation; dynamic
// allocation is 5-7x more efficient at the cost of a few hundred events.

#include <cstdio>

#include "bench/common.hpp"

using namespace mmog;
using core::UpdateModel;
using util::ResourceKind;

int main() {
  bench::banner("Table VI",
                "Static vs dynamic allocation for five interaction types");

  const auto workload = bench::paper_workload();
  const auto neural = bench::neural_factory(workload);

  util::TextTable table({"Interaction type", "Static over [%]",
                         "Dyn over [%]", "Dyn under [%]", "|Υ|>1% events",
                         "Static/dyn ratio"});

  const UpdateModel models[] = {
      UpdateModel::kLinear, UpdateModel::kNLogN, UpdateModel::kQuadratic,
      UpdateModel::kQuadraticLogN, UpdateModel::kCubic};
  for (auto model : models) {
    auto dynamic_cfg = bench::standard_config(workload);
    dynamic_cfg.games[0].load.model = model;
    dynamic_cfg.predictor = neural.factory;
    const auto dyn = core::simulate(dynamic_cfg);

    auto static_cfg = bench::standard_config(workload);
    static_cfg.games[0].load.model = model;
    static_cfg.mode = core::AllocationMode::kStatic;
    const auto sta = core::simulate(static_cfg);

    const double sta_over =
        sta.metrics.avg_over_allocation_pct(ResourceKind::kCpu);
    const double dyn_over =
        dyn.metrics.avg_over_allocation_pct(ResourceKind::kCpu);
    table.add_row({std::string(core::update_model_name(model)),
                   util::TextTable::num(sta_over, 2),
                   util::TextTable::num(dyn_over, 2),
                   util::TextTable::num(dyn.metrics.avg_under_allocation_pct(
                                            ResourceKind::kCpu),
                                        3),
                   std::to_string(dyn.metrics.significant_events()),
                   util::TextTable::num(sta_over / dyn_over, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper reference (Table VI): static over-allocation 55.7%% ->\n"
      "242.0%% and dynamic 8.5%% -> 54.6%% from O(n) to O(n^3); the static\n"
      "mechanism never under-allocates, the dynamic one stays below 3%% of\n"
      "the samples in events (at most 304 of >10,000).\n");
  return 0;
}
