// Ablation: zone-to-server partitioning (§II-A: MMOG operators distribute
// the load of a game world across multiple computational resources). We
// take hourly snapshots of an emulated day and compare three assignment
// strategies on servers needed, load balance, and the cross-server
// interaction traffic they induce.

#include <cstdio>

#include "bench/common.hpp"
#include "core/partition.hpp"
#include "emu/datasets.hpp"
#include "emu/emulator.hpp"
#include "util/stats.hpp"

using namespace mmog;

int main() {
  bench::banner("Ablation",
                "Zone-to-server partitioning strategies (SS II-A)");

  auto sets = emu::table1_datasets(31);
  emu::Emulator emulator(emu::WorldConfig{}, sets[4]);  // peak-hours mix
  const auto day = emulator.run();
  const double capacity = 180.0;  // entities per game server

  const core::PartitionStrategy strategies[] = {
      core::PartitionStrategy::kRoundRobin,
      core::PartitionStrategy::kGreedyLoad,
      core::PartitionStrategy::kAffinity,
  };

  util::TextTable table({"Strategy", "Avg servers", "Avg max load",
                         "Avg cut weight", "Overloaded snapshots"});
  for (auto strategy : strategies) {
    std::vector<double> servers, max_load, cut;
    std::size_t overloaded = 0;
    for (std::size_t t = 0; t < day.samples.size(); t += 30) {  // hourly
      const auto& sample = day.samples[t];
      const auto graph = core::ZoneGraph::from_grid(
          sample.zone_counts, day.world.zones_x, day.world.zones_y);
      const auto partition =
          core::partition_zones(graph, capacity, strategy);
      const auto cost = core::evaluate_partition(graph, partition, capacity);
      servers.push_back(static_cast<double>(partition.server_count()));
      max_load.push_back(cost.max_load);
      cut.push_back(cost.cut_weight);
      if (cost.overloaded > 0) ++overloaded;
    }
    table.add_row({std::string(core::partition_strategy_name(strategy)),
                   util::TextTable::num(util::mean(servers), 2),
                   util::TextTable::num(util::mean(max_load), 1),
                   util::TextTable::num(util::mean(cut), 1),
                   std::to_string(overloaded)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Greedy packing minimizes the fleet but slices interaction hot-spots\n"
      "apart; the affinity refinement keeps neighbouring zones together,\n"
      "cutting the cross-server synchronization traffic at (almost) no\n"
      "extra servers — why production shards follow world geometry.\n");
  return 0;
}
