// Reproduces Figure 7: the cumulative number of significant under-allocation
// events (|Υ| > 1 %) over the two simulated weeks, for the five predictors
// with normal over-allocation performance (§V-B; the poor-class Average
// predictor is excluded as in the paper's figure).

#include <cstdio>

#include "bench/common.hpp"

using namespace mmog;

int main() {
  bench::banner("Figure 7",
                "Cumulative significant under-allocation events per predictor");

  const auto workload = bench::paper_workload();
  std::vector<bench::NamedFactory> lineup;
  for (auto& nf : bench::tableV_lineup(workload)) {
    if (nf.name != "Average") lineup.push_back(std::move(nf));
  }

  std::vector<std::vector<std::size_t>> cumulative;
  for (const auto& nf : lineup) {
    auto cfg = bench::standard_config(workload);
    cfg.predictor = nf.factory;
    const auto result = core::simulate(cfg);
    cumulative.push_back(result.metrics.cumulative_events());
  }

  std::printf("# Cumulative events (sampled every 12 hours)\n");
  std::printf("  %-8s", "day");
  for (const auto& nf : lineup) std::printf(" %16s", nf.name.c_str());
  std::printf("\n");
  const std::size_t steps = cumulative.front().size();
  for (std::size_t t = 0; t < steps; t += 360) {
    std::printf("  %-8.1f", static_cast<double>(t) / 720.0);
    for (const auto& c : cumulative) std::printf(" %16zu", c[t]);
    std::printf("\n");
  }
  std::printf("  %-8s", "final");
  for (const auto& c : cumulative) std::printf(" %16zu", c.back());
  std::printf("\n");

  std::printf(
      "\nPaper reference (Fig 7): the Neural curve is the lowest and most\n"
      "stable of the smoothing predictors; the laggier Moving average and\n"
      "Sliding window accumulate events fastest. In this reproduction the\n"
      "Last value chaser also benefits from allocation ratcheting (see\n"
      "EXPERIMENTS.md for the discussion).\n");
  return 0;
}
