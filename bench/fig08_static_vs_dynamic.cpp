// Reproduces Figure 8: the CPU over-allocation over time when using static
// versus dynamic resource allocation for the same workload (§V-B). The
// static practice provisions a dedicated full server per group; the dynamic
// allocation follows the Neural predictor.

#include <cstdio>

#include "bench/common.hpp"

using namespace mmog;
using util::ResourceKind;

int main() {
  bench::banner("Figure 8", "Over-allocation: static vs dynamic allocation");

  const auto workload = bench::paper_workload();
  obs::Recorder recorder(obs::TraceLevel::kOff);

  auto dynamic_cfg = bench::standard_config(workload);
  dynamic_cfg.predictor = bench::neural_factory(workload).factory;
  dynamic_cfg.recorder = &recorder;
  const auto dynamic_result = core::simulate(dynamic_cfg);

  auto static_cfg = bench::standard_config(workload);
  static_cfg.mode = core::AllocationMode::kStatic;
  static_cfg.recorder = &recorder;
  const auto static_result = core::simulate(static_cfg);

  std::printf("# CPU over-allocation [%%] (sampled every 8 hours)\n");
  std::printf("  %-8s %14s %14s\n", "day", "Static", "Dynamic");
  const auto& sm = static_result.metrics.step_metrics();
  const auto& dm = dynamic_result.metrics.step_metrics();
  for (std::size_t t = 0; t < sm.size(); t += 240) {
    std::printf("  %-8.1f %13.1f%% %13.1f%%\n",
                static_cast<double>(t) / 720.0,
                sm[t].over_allocation_pct(ResourceKind::kCpu),
                dm[t].over_allocation_pct(ResourceKind::kCpu));
  }

  const double static_avg =
      static_result.metrics.avg_over_allocation_pct(ResourceKind::kCpu);
  const double dynamic_avg =
      dynamic_result.metrics.avg_over_allocation_pct(ResourceKind::kCpu);
  std::printf("\nAverage over-allocation: static %.1f%%, dynamic %.1f%%\n",
              static_avg, dynamic_avg);
  std::printf("Static / dynamic inefficiency ratio: %.1fx\n",
              static_avg / dynamic_avg);
  std::printf(
      "\nPaper reference: dynamic averages ~25%% against ~250%% for static\n"
      "(a 5-10x gap); the static curve swings with the diurnal load while\n"
      "the dynamic one stays low. Our dynamic allocator carries the §V-C\n"
      "safety margin, so its absolute level sits slightly higher.\n\n");
  bench::print_registry_snapshot(
      recorder.snapshot(),
      "Observability snapshot (both runs, durations in us)");
  return 0;
}
