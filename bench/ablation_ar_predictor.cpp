// Ablation: the autoregressive family the paper names but does not evaluate
// (§IV-A calls AR/ARMA "more time consuming and resource intensive, thus
// being ill suited for MMOGs"). We fit AR(p) offline — like the neural
// predictor's training phase — so its online cost is O(p), and measure both
// its accuracy on the Table I data sets and its prediction latency.

#include <chrono>
#include <cstdio>

#include "bench/common.hpp"
#include "emu/datasets.hpp"
#include "predict/ar.hpp"
#include "predict/evaluate.hpp"
#include "util/stats.hpp"

using namespace mmog;

int main() {
  bench::banner("Ablation", "AR(p) predictor vs the paper's line-up");

  const auto sets = emu::table1_datasets();
  const std::size_t start = util::kSamplesPerDay / 2;

  util::TextTable table({"Data set", "AR(6) err", "Neural err",
                         "Last value err", "Exp. smoothing err"});

  std::vector<double> fit_millis;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    emu::Emulator emulator(emu::WorldConfig{}, sets[i]);
    const auto zones = emulator.run().zone_series();

    std::vector<util::TimeSeries> histories;
    for (std::size_t z = 0; z < zones.size(); z += 16) {
      histories.push_back(zones[z].slice(0, start));
    }

    const auto t0 = std::chrono::steady_clock::now();
    auto ar = std::make_shared<const predict::ArModel>(
        predict::ArModel::fit(6, histories));
    const auto t1 = std::chrono::steady_clock::now();
    fit_millis.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());

    predict::NeuralConfig ncfg;
    ncfg.train.max_eras = 40;
    ncfg.train.patience = 8;
    auto nn = std::make_shared<const predict::NeuralModel>(
        predict::NeuralModel::fit(ncfg, histories));

    const double ar_err = *predict::zones_prediction_error(
        [ar] { return std::make_unique<predict::ArPredictor>(ar); }, zones,
        start);
    const double nn_err = *predict::zones_prediction_error(
        [nn] { return std::make_unique<predict::NeuralPredictor>(nn); },
        zones, start);
    const double lv_err = *predict::zones_prediction_error(
        [] { return std::make_unique<predict::LastValuePredictor>(); },
        zones, start);
    const double es_err = *predict::zones_prediction_error(
        [] {
          return std::make_unique<predict::ExponentialSmoothingPredictor>(
              0.5);
        },
        zones, start);
    table.add_row({sets[i].name, util::TextTable::num(ar_err, 2) + "%",
                   util::TextTable::num(nn_err, 2) + "%",
                   util::TextTable::num(lv_err, 2) + "%",
                   util::TextTable::num(es_err, 2) + "%"});
  }
  std::printf("%s\n", table.to_string().c_str());

  const auto fit_summary = util::summarize(fit_millis);
  std::printf("AR(6) offline fit time per data set: median %.2f ms "
              "(min %.2f, max %.2f)\n",
              fit_summary.median, fit_summary.min, fit_summary.max);
  std::printf(
      "\nWith offline fitting, AR becomes usable online (O(p) per\n"
      "prediction) and competitive in accuracy — but, like the explanatory\n"
      "models of §IV-A, the fitted coefficients go stale whenever the game\n"
      "is updated, whereas the neural predictor retrains on fresh traces.\n");
  return 0;
}
