// Reproduces Figure 12: the impact of the time bulk on the dynamic
// allocation performance (§V-D). The data centers use HP-5 and HP-8 to
// HP-11 (same resource bulks, time bulks from 3 hours to 2 days): shorter
// reservation periods make the allocation much more efficient.

#include <cstdio>

#include "bench/common.hpp"

using namespace mmog;
using util::ResourceKind;

int main() {
  bench::banner("Figure 12", "Impact of the time bulk on dynamic allocation");

  const auto workload = bench::paper_workload();
  const auto neural = bench::neural_factory(workload);

  util::TextTable table({"Policy", "Time bulk [h]", "Over [%]", "Under [%]",
                         "|Υ|>1% events"});
  for (int policy : {5, 8, 9, 10, 11}) {
    auto cfg = bench::standard_config(workload);
    for (auto& dc : cfg.datacenters) {
      dc.policy = dc::HostingPolicy::preset(policy);
    }
    cfg.predictor = neural.factory;
    const auto result = core::simulate(cfg);
    table.add_row(
        {"HP-" + std::to_string(policy),
         util::TextTable::num(
             dc::HostingPolicy::preset(policy).time_bulk_minutes / 60.0, 1),
         util::TextTable::num(
             result.metrics.avg_over_allocation_pct(ResourceKind::kCpu), 2),
         util::TextTable::num(
             result.metrics.avg_under_allocation_pct(ResourceKind::kCpu), 3),
         std::to_string(result.metrics.significant_events())});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper reference (Fig 12): allocation efficiency improves sharply\n"
      "with shorter time bulks; the increase of the average\n"
      "under-allocation stays low for realistic time bulks (>= 1 hour).\n");
  return 0;
}
