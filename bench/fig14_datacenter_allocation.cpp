// Reproduces Figure 14: the per-data-center resource allocation for the
// Very-far maximal allocation distance under the combined North American
// workload (§V-E) — split into US-East-Coast-handled requests, other
// requests, and free resources. The unsuitable (coarse) East Coast hosting
// policies are penalized: those centers are the ones left with free
// resources, while East Coast requests are served by Central and West
// centers.

#include <cstdio>

#include "bench/na_common.hpp"

using namespace mmog;

int main() {
  bench::banner("Figure 14",
                "Per-data-center allocation at Very-far tolerance");

  const auto workload = bench::north_america_workload();
  const auto neural = bench::neural_factory(workload);
  const auto result = bench::run_north_america(
      workload, dc::DistanceClass::kVeryFar, neural.factory);

  util::TextTable table({"Data center", "East-coast req [units]",
                         "Other req [units]", "Free [units]",
                         "Capacity [units]"});
  double east_remote = 0.0;
  for (const auto& usage : result.datacenters) {
    double east = 0.0;
    if (auto it = usage.avg_allocated_by_origin.find("US East Coast");
        it != usage.avg_allocated_by_origin.end()) {
      east = it->second;
    }
    const double other = usage.avg_allocated_cpu - east;
    const double free = usage.capacity_cpu - usage.avg_allocated_cpu;
    if (usage.name.find("East") == std::string::npos && east > 0.05) {
      east_remote += east;
    }
    table.add_row({usage.name, util::TextTable::num(east, 2),
                   util::TextTable::num(other, 2),
                   util::TextTable::num(free, 2),
                   util::TextTable::num(usage.capacity_cpu, 0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "East Coast demand served outside the East Coast: %.1f units on "
      "average\n\n",
      east_remote);
  std::printf(
      "Paper reference (Fig 14): the US East Coast data centers are the\n"
      "only ones with free resources (their coarse policies are penalized),\n"
      "while East Coast requests use US Central, Canada West and US West\n"
      "resources whenever the tolerance admits Far / Very far distances.\n");
  return 0;
}
