// Reproduces Figure 11: the impact of the CPU resource bulk on the dynamic
// allocation performance (§V-D). The data centers all use one of the HP-3
// to HP-7 policies (CPU bulks 0.22 -> 1.11, everything else constant):
// coarser bulks raise over-allocation, finer bulks raise the risk of
// under-allocation events.

#include <cstdio>

#include "bench/common.hpp"

using namespace mmog;
using util::ResourceKind;

int main() {
  bench::banner("Figure 11",
                "Impact of the CPU resource bulk on dynamic allocation");

  const auto workload = bench::paper_workload();
  const auto neural = bench::neural_factory(workload);

  util::TextTable table({"Policy", "CPU bulk [unit]", "Over [%]", "Under [%]",
                         "|Υ|>1% events"});
  for (int policy = 3; policy <= 7; ++policy) {
    auto cfg = bench::standard_config(workload);
    for (auto& dc : cfg.datacenters) {
      dc.policy = dc::HostingPolicy::preset(policy);
    }
    cfg.predictor = neural.factory;
    const auto result = core::simulate(cfg);
    table.add_row(
        {"HP-" + std::to_string(policy),
         util::TextTable::num(dc::HostingPolicy::preset(policy).bulk.cpu(), 2),
         util::TextTable::num(
             result.metrics.avg_over_allocation_pct(ResourceKind::kCpu), 2),
         util::TextTable::num(
             result.metrics.avg_under_allocation_pct(ResourceKind::kCpu), 3),
         std::to_string(result.metrics.significant_events())});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper reference (Fig 11): a visible tendency of higher\n"
      "over-allocation for bigger resource bulks, and more significant\n"
      "under-allocation events as the offer becomes finer grained. The\n"
      "optimal granularity depends on the game's tolerance to shortages.\n");
  return 0;
}
