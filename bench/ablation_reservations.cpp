// Ablation: the advance-reservation service model (§II-B names both
// best-effort and advance reservations; the paper's evaluation exercises
// only on-demand renting). An operator that knows yesterday's diurnal
// profile books tomorrow in 3-hour blocks at a committed-capacity discount;
// we compare cost and shortage risk against on-demand (Last value) renting
// on the same single data center.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench/common.hpp"
#include "dc/reservation.hpp"
#include "util/stats.hpp"

using namespace mmog;
using util::ResourceKind;
using util::ResourceVector;

int main() {
  bench::banner("Ablation", "Advance reservations vs on-demand renting");

  // One region, 4 observed days: day 1-2 to learn the profile, day 3-4 to
  // operate.
  trace::RuneScapeModelConfig tcfg;
  tcfg.steps = util::samples_per_days(4);
  tcfg.seed = 616;
  tcfg.regions = {{.name = "Europe",
                   .utc_offset_hours = 1,
                   .server_groups = 20,
                   .base_players_per_group = 1250.0,
                   .weekend_multiplier = 1.0,
                   .always_full_fraction = 0.0}};
  const auto workload = trace::generate(tcfg);
  const core::LoadModel load{core::UpdateModel::kQuadratic, 2000.0};

  // Demand series (CPU units) for the whole region.
  std::vector<double> demand(workload.steps(), 0.0);
  for (const auto& g : workload.regions[0].groups) {
    for (std::size_t t = 0; t < g.players.size(); ++t) {
      demand[t] += load.demand(g.players[t]).cpu();
    }
  }
  const std::size_t day = util::kSamplesPerDay;
  const std::size_t operate_from = 2 * day;

  // --- Reservation plan: per 3h block, book the p95 of the same block
  //     over the two learning days, plus 10 % headroom. -------------------
  constexpr std::size_t kBlock = 90;  // 3 hours
  constexpr double kReservationDiscount = 0.8;
  dc::ReservationCalendar calendar(ResourceVector::of(60, 240, 480, 240),
                                   workload.steps());
  double reserved_cost = 0.0;
  for (std::size_t start = operate_from; start < workload.steps();
       start += kBlock) {
    std::vector<double> history;
    for (std::size_t d = 0; d < 2; ++d) {
      for (std::size_t t = 0; t < kBlock; ++t) {
        const std::size_t idx = (start % day) + d * day + t;
        if (idx < demand.size()) history.push_back(demand[idx]);
      }
    }
    const double level = 1.1 * util::quantile(history, 0.95);
    const auto booked = calendar.book(ResourceVector::of(level, 0, 0, 0),
                                      start,
                                      std::min(start + kBlock, demand.size()));
    if (!booked.has_value()) {
      std::printf("warning: block at %zu did not fit\n", start);
    }
    reserved_cost += level * static_cast<double>(kBlock) *
                     (util::kSampleStepSeconds / 3600.0) *
                     kReservationDiscount;
  }

  // Score the reservation plan on days 3-4.
  double res_over_sum = 0.0;
  std::size_t res_events = 0, scored = 0;
  for (std::size_t t = operate_from; t < demand.size(); ++t) {
    const double available =
        calendar.capacity().cpu() - calendar.available_at(t).cpu();
    res_over_sum += (available / std::max(1e-9, demand[t]) - 1.0) * 100.0;
    if (demand[t] > available + 0.2) ++res_events;  // ~1% of 20 groups
    ++scored;
  }

  // --- On-demand renting (Last value + the standard §V machinery). -------
  core::SimulationConfig cfg;
  dc::DataCenterSpec center;
  center.name = "NL";
  center.location = {52.37, 4.90};
  center.machines = 60;
  center.policy = dc::HostingPolicy::preset(3);
  cfg.datacenters = {center};
  core::GameSpec game;
  game.load = load;
  game.workload = workload;
  cfg.games.push_back(std::move(game));
  cfg.predictor = [] {
    return std::make_unique<predict::LastValuePredictor>();
  };
  const auto on_demand = core::simulate(cfg);

  util::TextTable table({"Model", "Over CPU [%]", "Shortage samples",
                         "Cost [unit-hours]"});
  table.add_row({"Advance reservations (3h blocks, 0.8x price)",
                 util::TextTable::num(res_over_sum / scored, 2),
                 std::to_string(res_events),
                 util::TextTable::num(reserved_cost, 0)});
  table.add_row(
      {"On-demand (Last value predictor)",
       util::TextTable::num(
           on_demand.metrics.avg_over_allocation_pct(ResourceKind::kCpu), 2),
       std::to_string(on_demand.metrics.significant_events()),
       util::TextTable::num(on_demand.total_cost / 2.0, 0)});  // 4 days -> 2
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reservations trade flexibility for price: the p95-based daily plan\n"
      "over-books the off-peak blocks but rides the discount; on-demand\n"
      "tracks the load tightly and pays the premium. A real operator mixes\n"
      "both — a reserved base plus on-demand peaks.\n");
  return 0;
}
