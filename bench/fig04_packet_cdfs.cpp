// Reproduces Figure 4: the CDFs of packet length (left, truncated at 500 B)
// and packet inter-arrival time (right, truncated at 600 ms) for the eight
// emulated game-session captures — evidence that player interaction type
// drives the network load.

#include <cstdio>

#include "bench/common.hpp"
#include "net/session.hpp"
#include "util/stats.hpp"

using namespace mmog;

namespace {

void print_cdf_table(const char* what,
                     const std::vector<net::SessionTrace>& traces,
                     const std::vector<double>& grid,
                     std::vector<double> (net::SessionTrace::*extract)()
                         const) {
  std::printf("# CDF of %s\n", what);
  std::printf("  %-42s", "trace");
  for (double g : grid) std::printf(" %7.0f", g);
  std::printf("\n");
  for (const auto& t : traces) {
    const auto values = (t.*extract)();
    const auto cdf = util::empirical_cdf(values);
    std::printf("  %-42s", t.name.c_str());
    for (double g : grid) std::printf(" %6.1f%%", util::cdf_at(cdf, g) * 100.0);
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::banner("Figure 4",
                "Influence of player interaction on MMOG server load");

  std::vector<net::SessionTrace> traces;
  for (const auto& cfg : net::fig4_sessions()) {
    traces.push_back(net::emulate_session(cfg));
  }

  print_cdf_table("packet length [B] (truncated at 500B)", traces,
                  {60, 100, 150, 200, 300, 400, 500},
                  &net::SessionTrace::lengths);
  print_cdf_table("packet inter-arrival time [ms] (truncated at 600ms)",
                  traces, {25, 50, 100, 200, 300, 450, 600},
                  &net::SessionTrace::inter_arrival_ms);

  std::printf("# Session summary\n");
  std::printf("  %-42s %9s %9s %12s\n", "trace", "mean len", "mean IAT",
              "bandwidth");
  for (const auto& t : traces) {
    std::printf("  %-42s %7.1f B %7.1f ms %9.1f B/s\n", t.name.c_str(),
                util::mean(t.lengths()), util::mean(t.inter_arrival_ms()),
                t.mean_bandwidth_bps());
  }
  std::printf(
      "\nPaper findings reproduced: fast-paced sessions (T1, T6) keep the\n"
      "lowest IATs regardless of crowding; market trading (T2) shows long\n"
      "think-time IATs vs crowded p2p (T3) at similar packet sizes; group\n"
      "interaction (T4) has both the lowest IAT and the largest packets;\n"
      "consecutive captures of one environment (T5a/T5b) nearly coincide.\n");
  return 0;
}
