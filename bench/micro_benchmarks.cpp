// Micro-benchmarks of the library's hot paths: trace generation, emulator
// stepping, session packet emulation, matching, neural training, and the
// end-to-end provisioning step rate.

#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "emu/datasets.hpp"
#include "net/session.hpp"
#include "predict/evaluate.hpp"

using namespace mmog;

namespace {

void BM_TraceGenerationPerDay(benchmark::State& state) {
  auto cfg = trace::RuneScapeModelConfig::paper_default();
  cfg.steps = util::samples_per_days(1);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(trace::generate(cfg));
  }
}
BENCHMARK(BM_TraceGenerationPerDay)->Unit(benchmark::kMillisecond);

void BM_EmulatorSample(benchmark::State& state) {
  auto sets = emu::table1_datasets();
  emu::Emulator emulator(emu::WorldConfig{}, sets[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(emulator.step_sample());
  }
}
BENCHMARK(BM_EmulatorSample)->Unit(benchmark::kMicrosecond);

void BM_SessionEmulation(benchmark::State& state) {
  net::SessionConfig cfg;
  cfg.interaction = net::InteractionClass::kFastPaced;
  cfg.duration_seconds = 60.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(net::emulate_session(cfg));
  }
}
BENCHMARK(BM_SessionEmulation)->Unit(benchmark::kMicrosecond);

void BM_MatcherCandidates(benchmark::State& state) {
  const auto dcs = dc::paper_ecosystem();
  const core::Matcher matcher(dcs);
  const auto site = dc::region_site("Europe");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        matcher.candidates(site.location, dc::DistanceClass::kVeryFar));
  }
}
BENCHMARK(BM_MatcherCandidates);

void BM_NeuralTrainingEra(benchmark::State& state) {
  auto cfg = trace::RuneScapeModelConfig::paper_default();
  cfg.steps = util::samples_per_days(1);
  cfg.seed = 11;
  const auto world = trace::generate(cfg);
  std::vector<util::TimeSeries> histories = {
      world.regions[0].groups[0].players};
  for (auto _ : state) {
    predict::NeuralConfig ncfg;
    ncfg.train.max_eras = 1;
    ncfg.train.patience = 0;
    benchmark::DoNotOptimize(predict::NeuralModel::fit(ncfg, histories));
  }
}
BENCHMARK(BM_NeuralTrainingEra)->Unit(benchmark::kMillisecond);

void BM_ProvisioningDay(benchmark::State& state) {
  auto cfg = trace::RuneScapeModelConfig::paper_default();
  cfg.steps = util::samples_per_days(1);
  cfg.seed = 21;
  auto world = trace::generate(cfg);
  for (auto _ : state) {
    auto sim = bench::standard_config(world);
    sim.predictor = [] {
      return std::make_unique<predict::LastValuePredictor>();
    };
    benchmark::DoNotOptimize(core::simulate(sim));
  }
}
BENCHMARK(BM_ProvisioningDay)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
