// Micro-benchmarks of the library's hot paths: trace generation, emulator
// stepping, session packet emulation, matching, neural training, the
// parallel predict phase, and the end-to-end provisioning step rate.

#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "core/predict_phase.hpp"
#include "emu/datasets.hpp"
#include "net/session.hpp"
#include "predict/evaluate.hpp"

using namespace mmog;

namespace {

void BM_TraceGenerationPerDay(benchmark::State& state) {
  auto cfg = trace::RuneScapeModelConfig::paper_default();
  cfg.steps = util::samples_per_days(1);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(trace::generate(cfg));
  }
}
BENCHMARK(BM_TraceGenerationPerDay)->Unit(benchmark::kMillisecond);

void BM_EmulatorSample(benchmark::State& state) {
  auto sets = emu::table1_datasets();
  emu::Emulator emulator(emu::WorldConfig{}, sets[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(emulator.step_sample());
  }
}
BENCHMARK(BM_EmulatorSample)->Unit(benchmark::kMicrosecond);

void BM_SessionEmulation(benchmark::State& state) {
  net::SessionConfig cfg;
  cfg.interaction = net::InteractionClass::kFastPaced;
  cfg.duration_seconds = 60.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(net::emulate_session(cfg));
  }
}
BENCHMARK(BM_SessionEmulation)->Unit(benchmark::kMicrosecond);

void BM_MatcherCandidates(benchmark::State& state) {
  const auto dcs = dc::paper_ecosystem();
  const core::Matcher matcher(dcs);
  const auto site = dc::region_site("Europe");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        matcher.candidates(site.location, dc::DistanceClass::kVeryFar));
  }
}
BENCHMARK(BM_MatcherCandidates);

void BM_NeuralTrainingEra(benchmark::State& state) {
  auto cfg = trace::RuneScapeModelConfig::paper_default();
  cfg.steps = util::samples_per_days(1);
  cfg.seed = 11;
  const auto world = trace::generate(cfg);
  std::vector<util::TimeSeries> histories = {
      world.regions[0].groups[0].players};
  for (auto _ : state) {
    predict::NeuralConfig ncfg;
    ncfg.train.max_eras = 1;
    ncfg.train.patience = 0;
    benchmark::DoNotOptimize(predict::NeuralModel::fit(ncfg, histories));
  }
}
BENCHMARK(BM_NeuralTrainingEra)->Unit(benchmark::kMillisecond);

// The isolated predict phase: one high-order AR predictor per server group,
// sharded across the worker count given by Arg. The 4-thread run divided by
// the 1-thread run is the predict-phase speedup acceptance number (on a
// single-core machine all arguments collapse to the serial time).
void BM_PredictPhase(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kGroups = 256;
  constexpr std::size_t kOrder = 128;

  auto tcfg = trace::RuneScapeModelConfig::paper_default();
  tcfg.steps = util::samples_per_days(1);
  tcfg.seed = 31;
  const auto world = trace::generate(tcfg);
  std::vector<util::TimeSeries> histories = {
      world.regions[0].groups[0].players};
  const auto model = std::make_shared<const predict::ArModel>(
      predict::ArModel::fit(kOrder, histories));

  std::vector<std::unique_ptr<predict::Predictor>> predictors;
  std::vector<double> outs(kGroups, 0.0);
  std::vector<core::PredictSlot> slots;
  predictors.reserve(kGroups);
  slots.reserve(kGroups);
  const auto& samples = world.regions[0].groups[0].players;
  for (std::size_t g = 0; g < kGroups; ++g) {
    auto p = std::make_unique<predict::ArPredictor>(model);
    for (std::size_t t = 0; t < kOrder; ++t) {
      p->observe(samples[(g + t) % samples.size()]);
    }
    slots.push_back({p.get(), &outs[g]});
    predictors.push_back(std::move(p));
  }

  core::ParallelPredictor runner(threads);
  for (auto _ : state) {
    runner.run(slots, nullptr);
    benchmark::DoNotOptimize(outs.data());
    benchmark::ClobberMemory();
  }
  state.counters["slots"] = static_cast<double>(kGroups);
  state.counters["workers"] = static_cast<double>(runner.threads());
}
BENCHMARK(BM_PredictPhase)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond);

// End-to-end provisioning day with the predict phase timed by the obs phase
// profiler; the "predict_phase_ms" counter is the phase.predict_us sum as
// seen by the profiler, per thread count.
void BM_ProvisioningDayThreaded(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  auto tcfg = trace::RuneScapeModelConfig::paper_default();
  tcfg.steps = util::samples_per_days(1);
  tcfg.seed = 37;
  const auto world = trace::generate(tcfg);
  std::vector<util::TimeSeries> histories = {
      world.regions[0].groups[0].players};
  const auto model = std::make_shared<const predict::ArModel>(
      predict::ArModel::fit(64, histories));

  double predict_us = 0.0;
  for (auto _ : state) {
    obs::Recorder rec(obs::TraceLevel::kOff);
    auto sim = bench::standard_config(world);
    sim.predictor = [&model] {
      return std::make_unique<predict::ArPredictor>(model);
    };
    sim.threads = threads;
    sim.recorder = &rec;
    benchmark::DoNotOptimize(core::simulate(sim));
    const auto snap = rec.snapshot();
    const auto it = snap.histograms.find("phase.predict_us");
    if (it != snap.histograms.end()) predict_us += it->second.sum;
  }
  state.counters["predict_phase_ms"] = benchmark::Counter(
      predict_us / 1000.0, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ProvisioningDayThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_ProvisioningDay(benchmark::State& state) {
  auto cfg = trace::RuneScapeModelConfig::paper_default();
  cfg.steps = util::samples_per_days(1);
  cfg.seed = 21;
  auto world = trace::generate(cfg);
  for (auto _ : state) {
    auto sim = bench::standard_config(world);
    sim.predictor = [] {
      return std::make_unique<predict::LastValuePredictor>();
    };
    benchmark::DoNotOptimize(core::simulate(sim));
  }
}
BENCHMARK(BM_ProvisioningDay)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
