// Ablation: predictors beyond the paper's line-up — Holt's trend method,
// Holt-Winters with a daily season, and the drift baseline — in the
// standard §V-B provisioning setting. The seasonal model is the natural
// "explanatory" competitor for a workload whose dominant structure is the
// diurnal cycle (§III-C).

#include <cstdio>
#include <memory>

#include "bench/common.hpp"
#include "predict/holt_winters.hpp"

using namespace mmog;
using util::ResourceKind;

int main() {
  bench::banner("Ablation",
                "Extended predictor line-up (trend and seasonal methods)");

  const auto workload = bench::paper_workload();

  std::vector<bench::NamedFactory> lineup;
  lineup.push_back(bench::neural_factory(workload));
  lineup.push_back({"Last value", [] {
                      return std::make_unique<predict::LastValuePredictor>();
                    }});
  lineup.push_back(
      {"Holt", [] { return std::make_unique<predict::HoltPredictor>(); }});
  lineup.push_back({"Holt-Winters (24h)", [] {
                      return std::make_unique<predict::HoltWintersPredictor>(
                          util::kSamplesPerDay);
                    }});
  lineup.push_back(
      {"Drift", [] { return std::make_unique<predict::DriftPredictor>(); }});

  util::TextTable table({"Predictor", "Over [%]", "Under [%]",
                         "|Υ|>1% events", "Cost [unit-hours]"});
  for (const auto& nf : lineup) {
    auto cfg = bench::standard_config(workload);
    cfg.predictor = nf.factory;
    const auto result = core::simulate(cfg);
    table.add_row(
        {nf.name,
         util::TextTable::num(
             result.metrics.avg_over_allocation_pct(ResourceKind::kCpu), 2),
         util::TextTable::num(
             result.metrics.avg_under_allocation_pct(ResourceKind::kCpu), 3),
         std::to_string(result.metrics.significant_events()),
         util::TextTable::num(result.total_cost, 0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Holt's method rides the diurnal ramps (few events, modest waste);\n"
      "the seasonal Holt-Winters anticipates the daily shape once a full\n"
      "day is observed. Both support the paper's argument that MMOG-aware\n"
      "prediction beats generic one-step methods — while still requiring\n"
      "no in-game model, unlike explanatory approaches (SS IV-A).\n");
  return 0;
}
