// Ablation (the paper's §VII future work): prioritizing the resource
// requests according to the interaction type of the MMOG. Two games — a
// compute-light O(n log n) title and a compute-heavy O(n^2 log n) title —
// compete for a deliberately scarce data-center pool; we compare first-come
// matching against priority-for-the-heavy-game matching.

#include <cstdio>

#include "bench/common.hpp"

using namespace mmog;
using core::UpdateModel;
using util::ResourceKind;

namespace {

trace::WorldTrace half_world(std::uint64_t seed) {
  auto cfg = trace::RuneScapeModelConfig::paper_default();
  cfg.steps = util::samples_per_days(bench::kLeadInDays +
                                     bench::kExperimentDays);
  cfg.seed = seed;
  for (auto& region : cfg.regions) region.server_groups /= 2;
  return trace::generate(cfg);
}

core::SimulationConfig competition(bool prioritize,
                                   const trace::WorldTrace& light,
                                   const trace::WorldTrace& heavy,
                                   const predict::PredictorFactory& factory) {
  core::SimulationConfig cfg;
  cfg.datacenters = dc::paper_ecosystem();
  // Scarcity: 40 % of the Table III machines — peak demand exceeds supply.
  for (auto& dc : cfg.datacenters) {
    dc.machines = std::max<std::size_t>(1, (dc.machines * 2) / 5);
  }
  core::GameSpec a;
  a.name = "Light (O(n log n))";
  a.load = core::LoadModel{UpdateModel::kNLogN, 2000.0};
  a.workload = light;
  a.priority = 0;
  core::GameSpec b;
  b.name = "Heavy (O(n^2 log n))";
  b.load = core::LoadModel{UpdateModel::kQuadraticLogN, 2000.0};
  b.workload = heavy;
  b.priority = 10;
  cfg.games.push_back(std::move(a));
  cfg.games.push_back(std::move(b));
  cfg.predictor = factory;
  cfg.prioritize_by_interaction = prioritize;
  return cfg;
}

}  // namespace

int main() {
  bench::banner("Ablation", "Request prioritization by interaction type");

  const auto light = half_world(41);
  const auto heavy = half_world(42);
  const auto neural = bench::neural_factory(light);

  util::TextTable table({"Mode", "Game", "Over [%]", "Under [%]",
                         "|Υ|>1% events"});
  for (bool prioritize : {false, true}) {
    const auto result = core::simulate(
        competition(prioritize, light, heavy, neural.factory));
    for (const auto& game : result.games) {
      table.add_row(
          {prioritize ? "priority" : "first-come", game.name,
           util::TextTable::num(
               game.metrics.avg_over_allocation_pct(ResourceKind::kCpu), 2),
           util::TextTable::num(
               game.metrics.avg_under_allocation_pct(ResourceKind::kCpu), 3),
           std::to_string(game.metrics.significant_events())});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Under scarcity, serving the heavy game first shifts shortfalls from\n"
      "the prioritized title onto the best-effort one — the mechanism the\n"
      "paper proposes to investigate in its future work (§VII).\n");
  return 0;
}
