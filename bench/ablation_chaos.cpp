// Ablation: chaos injection. Instead of the single hand-scheduled outage of
// ablation_failover, a stochastic fault mix (repeated MTBF/MTTR-driven
// outages on the busiest center, partial capacity loss on its neighbour and
// short grant flaps) runs against three provisioning strategies. The claim
// under test: dynamic provisioning with the resilience policy re-places the
// force-released demand and returns |Υ| below the significance threshold
// within a bounded number of steps after every recovery, while static
// provisioning never wins back the lost machines.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "fault/parse.hpp"

using namespace mmog;
using util::ResourceKind;

namespace {

std::string worst_lag(const core::SimulationResult& result,
                      double threshold_pct) {
  const auto lags = core::recovery_lag_steps(result.metrics,
                                             result.fault_events,
                                             threshold_pct);
  if (lags.empty()) return "-";
  std::size_t worst = 0;
  for (const auto lag : lags) {
    if (lag == core::kNeverRecovered) return "never";
    worst = std::max(worst, lag);
  }
  return std::to_string(worst);
}

}  // namespace

int main() {
  bench::banner("Ablation", "Stochastic fault injection (chaos sweep)");

  const auto workload = bench::paper_workload();
  const auto neural = bench::neural_factory(workload);
  const std::size_t target = bench::busiest_datacenter(
      bench::standard_config(workload), neural.factory);
  const std::size_t n_dcs = dc::paper_ecosystem().size();
  const std::size_t neighbour = (target + 1) % n_dcs;

  const std::string spec_text =
      "outage:dc=" + std::to_string(target) + ",mtbf=3d,mttr=2h,seed=9;"
      "capacity:dc=" + std::to_string(neighbour) +
      ",mtbf=2d,mttr=6h,keep=0.4,seed=11;"
      "flap:dc=" + std::to_string(target) + ",mtbf=1d,mttr=10m,seed=13";
  const auto specs = fault::parse_fault_specs(spec_text);
  std::printf("Fault mix (primary target %s):\n",
              dc::paper_ecosystem()[target].name.c_str());
  for (const auto& spec : specs) {
    std::printf("  %s\n", fault::describe(spec).c_str());
  }
  std::printf("\n");

  obs::Recorder recorder(obs::TraceLevel::kOff);
  util::TextTable table({"Scenario", "Under [%]", "|Υ|>1% events",
                         "Avail [%]", "Down", "MTTR", "Worst lag"});
  double threshold_pct = 1.0;
  for (const std::string scenario :
       {"static", "dynamic", "dynamic+resilient"}) {
    auto cfg = bench::standard_config(workload);
    cfg.faults = specs;
    threshold_pct = cfg.event_threshold_pct;
    if (scenario == "static") {
      cfg.mode = core::AllocationMode::kStatic;
    } else {
      cfg.predictor = neural.factory;
    }
    if (scenario == "dynamic+resilient") {
      cfg.resilience.enabled = true;
      cfg.resilience.shed_low_priority = true;
      cfg.recorder = &recorder;  // collect retry/shed counters
    }
    const auto result = core::simulate(cfg);
    table.add_row(
        {scenario,
         util::TextTable::num(
             result.metrics.avg_under_allocation_pct(ResourceKind::kCpu), 3),
         std::to_string(result.metrics.significant_events()),
         util::TextTable::num(result.sla.availability_pct(), 2),
         std::to_string(result.sla.downtime_steps),
         util::TextTable::num(result.sla.mean_time_to_recover_steps, 1),
         worst_lag(result, threshold_pct)});
  }
  std::printf("%s\n", table.to_string().c_str());

  bench::print_registry_snapshot(recorder.snapshot(),
                                 "Resilient run counters");
  std::printf(
      "MTTR and the worst post-recovery lag are in 2-minute steps. The\n"
      "resilient dynamic operator re-places force-released demand in the\n"
      "same step (resilience.replaced) and is back under the %.1f %%\n"
      "threshold within a bounded lag after every fault window; static\n"
      "dedicated capacity stays in breach until the fault itself ends —\n"
      "and never recovers what an outage takes mid-run.\n",
      threshold_pct);
  return 0;
}
