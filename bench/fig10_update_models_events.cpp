// Reproduces Figure 10: the cumulative number of significant
// under-allocation events over time for the five update models of §II-A
// (dynamic allocation, Neural predictor, §V-C).

#include <cstdio>

#include "bench/common.hpp"

using namespace mmog;
using core::UpdateModel;

int main() {
  bench::banner("Figure 10",
                "Cumulative under-allocation events for five update models");

  const auto workload = bench::paper_workload();
  const auto neural = bench::neural_factory(workload);

  const UpdateModel models[] = {
      UpdateModel::kLinear, UpdateModel::kNLogN, UpdateModel::kQuadratic,
      UpdateModel::kQuadraticLogN, UpdateModel::kCubic};

  std::vector<std::vector<std::size_t>> cumulative;
  for (auto model : models) {
    auto cfg = bench::standard_config(workload);
    cfg.games[0].load.model = model;
    cfg.predictor = neural.factory;
    cumulative.push_back(core::simulate(cfg).metrics.cumulative_events());
  }

  std::printf("# Cumulative events (sampled every 12 hours)\n");
  std::printf("  %-8s", "day");
  for (auto model : models) {
    std::printf(" %15s", std::string(core::update_model_name(model)).c_str());
  }
  std::printf("\n");
  for (std::size_t t = 0; t < cumulative.front().size(); t += 360) {
    std::printf("  %-8.1f", static_cast<double>(t) / 720.0);
    for (const auto& c : cumulative) std::printf(" %15zu", c[t]);
    std::printf("\n");
  }
  std::printf("  %-8s", "final");
  for (const auto& c : cumulative) std::printf(" %15zu", c.back());
  std::printf("\n");

  std::printf(
      "\nPaper reference: at the end of the two weeks the count is\n"
      "significantly higher for O(n^3) than for O(n); the curves order by\n"
      "update-model complexity.\n");
  return 0;
}
