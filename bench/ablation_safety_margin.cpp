// Ablation: the §V-C over-provisioning mechanism ("a mechanism that
// allocates more than the predicted volume of required resources can be
// used"). Sweep the demand-estimation safety factor and chart the
// waste-vs-shortage trade-off it buys.

#include <cstdio>

#include "bench/common.hpp"

using namespace mmog;
using util::ResourceKind;

int main() {
  bench::banner("Ablation",
                "The over-provisioning knob: safety factor sweep (SS V-C)");

  const auto workload = bench::paper_workload();
  const auto neural = bench::neural_factory(workload);

  util::TextTable table({"Safety factor", "Over [%]", "Under [%]",
                         "|Υ|>1% events", "Cost [unit-hours]"});
  for (double safety : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    auto cfg = bench::standard_config(workload);
    cfg.predictor = neural.factory;
    cfg.safety_factor = safety;
    const auto result = core::simulate(cfg);
    table.add_row(
        {util::TextTable::num(safety, 2),
         util::TextTable::num(
             result.metrics.avg_over_allocation_pct(ResourceKind::kCpu), 2),
         util::TextTable::num(
             result.metrics.avg_under_allocation_pct(ResourceKind::kCpu), 3),
         std::to_string(result.metrics.significant_events()),
         util::TextTable::num(result.total_cost, 0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Each extra unit of safety trades over-allocation (and renting cost)\n"
      "for a steep reduction of significant under-allocation events —\n"
      "operators pick the point matching their game's tolerance to\n"
      "shortages (SS V-D draws the same conclusion for bulk granularity).\n");
  return 0;
}
