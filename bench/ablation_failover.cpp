// Ablation: failure injection. A large data center goes dark for two hours
// during the evening peak; dynamic provisioning re-places the demand within
// one 2-minute step, while static provisioning (dedicated machines) loses
// the capacity for good.

#include <cstdio>

#include "bench/common.hpp"

using namespace mmog;
using util::ResourceKind;

int main() {
  bench::banner("Ablation", "Data-center outage during the evening peak");

  const auto workload = bench::paper_workload();
  const auto neural = bench::neural_factory(workload);

  // Two-hour outage on day 8, starting 19:00 UTC (European evening peak).
  const std::size_t from = util::samples_per_days(8) + 19 * 30;
  const std::size_t to = from + 60;

  const std::size_t target = bench::busiest_datacenter(
      bench::standard_config(workload), neural.factory);
  std::printf("Injected outage: %s, day 8 19:00-21:00 UTC\n\n",
              dc::paper_ecosystem()[target].name.c_str());

  util::TextTable table({"Scenario", "Under [%]", "|Υ|>1% events",
                         "Unplaced [unit-steps]"});
  for (const bool inject : {false, true}) {
    for (const bool dynamic : {true, false}) {
      auto cfg = bench::standard_config(workload);
      if (dynamic) {
        cfg.predictor = neural.factory;
      } else {
        cfg.mode = core::AllocationMode::kStatic;
      }
      if (inject) {
        cfg.outages.push_back(
            {.dc_index = target, .from_step = from, .to_step = to});
      }
      const auto result = core::simulate(cfg);
      table.add_row(
          {std::string(inject ? "outage " : "clean  ") +
               (dynamic ? "/ dynamic" : "/ static"),
           util::TextTable::num(
               result.metrics.avg_under_allocation_pct(ResourceKind::kCpu),
               3),
           std::to_string(result.metrics.significant_events()),
           util::TextTable::num(result.unplaced_cpu_unit_steps, 1)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Dynamic provisioning turns a two-hour outage of the largest center\n"
      "into a one-step blip (the next control cycle re-places the demand on\n"
      "other hosters); the static dedicated infrastructure never recovers\n"
      "the lost machines — multi-hoster elasticity is also a reliability\n"
      "story, not just an efficiency one.\n");
  return 0;
}
