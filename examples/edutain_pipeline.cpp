// The edutain@grid pipeline (SS VII): the full loop the paper's project
// builds — an emulated game world produces per-sub-zone entity counts via
// in-game monitoring, a trained neural predictor forecasts them, and the
// provisioner rents data-center resources for the predicted load.
//
// Unlike the trace-driven benches, the workload here comes straight out of
// the game emulator, exercising emu -> predict -> core in one program.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/simulation.hpp"
#include "emu/datasets.hpp"
#include "emu/emulator.hpp"
#include "predict/neural.hpp"

using namespace mmog;
using util::ResourceKind;

namespace {

// Wraps the emulator's zone series as a workload: each cluster of sub-zones
// becomes one "server group" (a game server simulating that part of the
// world), with the reference capacity scaled to the cluster's peak.
trace::WorldTrace world_from_emulator(const emu::EmulatorTrace& trace,
                                      std::size_t zones_per_server) {
  const auto zones = trace.zone_series();
  trace::WorldTrace world;
  trace::RegionalTrace region;
  region.name = "Europe";  // where this game world is operated from
  for (std::size_t z0 = 0; z0 < zones.size(); z0 += zones_per_server) {
    trace::ServerGroupTrace group;
    group.name = "zones-" + std::to_string(z0);
    group.players = util::TimeSeries(util::kSampleStepSeconds);
    for (std::size_t t = 0; t < trace.samples.size(); ++t) {
      double sum = 0.0;
      for (std::size_t z = z0; z < std::min(zones.size(), z0 + zones_per_server);
           ++z) {
        sum += zones[z][t];
      }
      group.players.push_back(sum);
    }
    region.groups.push_back(std::move(group));
  }
  world.regions.push_back(std::move(region));
  return world;
}

}  // namespace

int main() {
  std::printf("edutain@grid pipeline: emulate -> monitor -> predict -> rent\n\n");

  // 1. Run the game emulator for one day (Table I set 5: mixed behaviour
  //    with peak hours — a typical MMORPG day).
  auto sets = emu::table1_datasets(2024);
  emu::Emulator emulator(emu::WorldConfig{}, sets[4]);
  const auto game_day = emulator.run();
  std::printf("Emulated %zu samples of a %zux%zu-zone world, peak %0.f "
              "entities\n",
              game_day.samples.size(), game_day.world.zones_x,
              game_day.world.zones_y, game_day.total_series().max());

  // 2. In-game monitoring: aggregate sub-zones into per-server entity
  //    counts. 16 zones -> one game server process.
  auto workload = world_from_emulator(game_day, 16);
  std::printf("Monitoring feeds %zu game servers\n",
              workload.regions[0].groups.size());

  // The emulated servers are small (hundreds of entities), so the load
  // model's reference is a typical fully loaded zone-cluster server (the
  // median per-server peak; hot clusters may exceed 1 unit).
  std::vector<double> peaks;
  for (const auto& g : workload.regions[0].groups) {
    peaks.push_back(std::max(1.0, g.players.max()));
  }
  std::sort(peaks.begin(), peaks.end());
  const double peak_per_server = peaks[peaks.size() / 2];

  // 3. Offline phases of SS IV-C: train the (6,3,1) predictor on the first
  //    half of the day.
  predict::NeuralConfig ncfg;
  ncfg.train.max_eras = 60;
  ncfg.train.patience = 10;
  auto predictor = core::neural_factory_from_workload(
      workload, game_day.samples.size() / 2, ncfg, 9);
  std::printf("Neural predictor trained on the first half-day\n");

  // 4. Rent resources from two European hosters for the second half.
  core::SimulationConfig cfg;
  dc::DataCenterSpec fine;
  fine.name = "Amsterdam (fine)";
  fine.location = {52.37, 4.90};
  fine.machines = 12;
  fine.policy = dc::HostingPolicy::preset(3);
  dc::DataCenterSpec coarse;
  coarse.name = "London (coarse)";
  coarse.location = {51.51, -0.13};
  coarse.machines = 12;
  coarse.policy = dc::HostingPolicy::preset(7);
  cfg.datacenters = {fine, coarse};

  core::GameSpec game;
  game.name = "Emulated MMOG";
  game.load = core::LoadModel{core::UpdateModel::kQuadratic, peak_per_server};
  game.latency_tolerance =
      dc::tolerance_class_for_genre(dc::GameGenre::kRolePlaying);
  game.workload = std::move(workload);
  cfg.games.push_back(std::move(game));
  cfg.predictor = std::move(predictor);

  const auto result = core::simulate(cfg);

  std::printf("\nProvisioning results over the emulated day:\n");
  std::printf("  CPU over-allocation  %6.1f %%\n",
              result.metrics.avg_over_allocation_pct(ResourceKind::kCpu));
  std::printf("  CPU under-allocation %6.2f %%\n",
              result.metrics.avg_under_allocation_pct(ResourceKind::kCpu));
  std::printf("  |Υ|>1%% events        %6zu\n",
              result.metrics.significant_events());
  std::printf("  renting cost         %6.1f unit-hours\n", result.total_cost);
  for (const auto& usage : result.datacenters) {
    std::printf("  %-18s %5.2f / %2.0f CPU units on average\n",
                usage.name.c_str(), usage.avg_allocated_cpu,
                usage.capacity_cpu);
  }
  std::printf(
      "\nThe whole loop ran without a real testbed: the emulator stands in\n"
      "for the game, the matcher rents from the fine-grained hoster first,\n"
      "and the predictor sizes the requests every two minutes. Note how a\n"
      "small game pays the granularity tax — its demand is a fraction of\n"
      "even the finest CPU bulk, the SS V-D effect at the small end.\n");
  return 0;
}
