// Growth planner: tie the Fig 1 market model to provisioning. Given a
// title's subscription growth curve, forecast the concurrent-player scale
// year by year and size the data-center fleet (dynamic vs static) each
// year — the capacity-planning question the paper's introduction raises
// ("there will be over 60 million players by 2011").

#include <cmath>
#include <cstdio>
#include <memory>

#include "core/simulation.hpp"
#include "predict/simple.hpp"
#include "trace/mmorpg_market.hpp"
#include "trace/runescape_model.hpp"
#include "util/table.hpp"

using namespace mmog;
using util::ResourceKind;

int main() {
  std::printf("Growth planner: sizing a RuneScape-like fleet 2002-2008\n\n");

  // The RuneScape growth curve from the Fig 1 catalog.
  const auto titles = trace::paper_title_catalog();
  const trace::TitleSpec* runescape = nullptr;
  for (const auto& t : titles) {
    if (t.name == "RuneScape") runescape = &t;
  }
  if (runescape == nullptr) return 1;

  // Peak concurrency runs at roughly 5 % of active players (§III-B: ~250 k
  // concurrent out of ~5 M active); the generated workload below embeds
  // that ratio, so the table reads concurrency straight off the trace.
  const double players_2008 = trace::title_players_at(*runescape, 2008.0);

  util::TextTable table({"Year", "Active players [M]", "Peak concurrent",
                         "Avg machines (dyn)", "Peak machines (dyn)",
                         "Machines (static)"});
  for (double year = 2002.0; year <= 2008.0; year += 1.0) {
    const double active = trace::title_players_at(*runescape, year);
    const double scale = active / players_2008;

    // Scale the reference workload's group count with the population and
    // run one simulated day of provisioning.
    auto cfg = trace::RuneScapeModelConfig::paper_default();
    cfg.steps = util::samples_per_days(1);
    cfg.seed = 2006 + static_cast<std::uint64_t>(year);
    for (auto& region : cfg.regions) {
      region.server_groups = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::llround(static_cast<double>(region.server_groups) *
                              scale)));
    }
    auto workload = trace::generate(cfg);
    const double concurrent = workload.global().max();

    core::SimulationConfig sim;
    sim.datacenters = dc::paper_ecosystem();
    // Give every center enough machines that capacity never binds; we are
    // measuring how many machines the demand needs, not contention.
    for (auto& center : sim.datacenters) center.machines *= 8;
    core::GameSpec game;
    game.load = core::LoadModel{core::UpdateModel::kQuadratic, 2000.0};
    game.workload = std::move(workload);
    sim.games.push_back(std::move(game));
    sim.predictor = [] {
      return std::make_unique<predict::LastValuePredictor>();
    };
    const auto dyn = core::simulate(sim);
    sim.mode = core::AllocationMode::kStatic;
    const auto sta = core::simulate(sim);

    auto peak_machines = [](const core::SimulationResult& r) {
      double peak = 0.0;
      for (const auto& m : r.metrics.step_metrics()) {
        peak = std::max(peak, m.allocated.cpu());
      }
      return peak;
    };
    auto avg_machines = [](const core::SimulationResult& r) {
      double sum = 0.0;
      for (const auto& m : r.metrics.step_metrics()) {
        sum += m.allocated.cpu();
      }
      return sum / static_cast<double>(r.metrics.steps());
    };
    table.add_row({util::TextTable::num(year, 0),
                   util::TextTable::num(active / 1e6, 2),
                   util::TextTable::num(concurrent, 0),
                   util::TextTable::num(avg_machines(dyn), 0),
                   util::TextTable::num(peak_machines(dyn), 0),
                   util::TextTable::num(peak_machines(sta), 0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Dynamic provisioning needs the peak-hour machine count only at the\n"
      "peak hour; the static column is what an operator must own around\n"
      "the clock. The gap is the capital the paper's approach frees as the\n"
      "game grows along its Fig 1 curve.\n");
  return 0;
}
