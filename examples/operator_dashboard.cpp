// Operator dashboard: follow a game operator through one evening peak —
// train the neural load predictor on yesterday's traces, then, every two
// minutes, predict the next load, decide the resource request, and watch
// the allocation track the players.
//
// This exercises the online loop a real deployment would run: observe ->
// predict -> request -> reconcile (SS IV-B, SS V of the paper).

#include <cmath>
#include <cstdio>
#include <memory>

#include "core/simulation.hpp"
#include "predict/neural.hpp"
#include "trace/runescape_model.hpp"

using namespace mmog;

int main() {
  // Two days of history for training, one day to operate.
  trace::RuneScapeModelConfig trace_cfg;
  trace_cfg.steps = util::samples_per_days(3);
  trace_cfg.seed = 99;
  trace_cfg.regions = {{.name = "Europe",
                        .utc_offset_hours = 1,
                        .server_groups = 8,
                        .base_players_per_group = 1250.0,
                        .weekend_multiplier = 1.0,
                        .always_full_fraction = 0.0}};
  const auto workload = trace::generate(trace_cfg);

  // Offline phases (SS IV-C): collect two days of samples, train the MLP.
  predict::NeuralConfig ncfg;
  ncfg.train.max_eras = 60;
  ncfg.train.patience = 10;
  std::printf("Training the (6,3,1) neural predictor on 2 days of traces");
  const auto factory = core::neural_factory_from_workload(
      workload, util::samples_per_days(2), ncfg, 8);
  std::printf(" ... done\n\n");

  // Operate day 3 on one server group, reporting the evening ramp.
  const auto& group = workload.regions[0].groups[0];
  const core::LoadModel load{core::UpdateModel::kQuadratic, 2000.0};
  auto predictor = factory();

  std::printf("%-8s %9s %10s %10s %9s\n", "time", "players", "predicted",
              "cpu req", "error");
  double abs_err = 0.0, total = 0.0;
  const std::size_t day3 = util::samples_per_days(2);
  for (std::size_t t = 0; t < workload.steps(); ++t) {
    const double players = group.players[t];
    if (t >= day3) {
      const double predicted = predictor->predict();
      const double err = predicted - players;
      abs_err += std::abs(err);
      total += players;
      // Print the evening ramp (16:00-22:00) every 30 minutes.
      const double hour = static_cast<double>(t - day3) / 30.0;
      if (hour >= 16.0 && hour <= 22.0 &&
          (t - day3) % 15 == 0) {
        std::printf("%02.0f:%02.0f    %9.0f %10.0f %10.3f %8.1f%%\n",
                    std::floor(hour), (hour - std::floor(hour)) * 60.0,
                    players, predicted, load.demand(predicted).cpu(),
                    err / players * 100.0);
      }
    }
    predictor->observe(players);
  }
  std::printf(
      "\nDay-3 prediction error (paper metric): %.2f%% of the served "
      "players\n",
      abs_err / total * 100.0);
  std::printf(
      "Each 2-minute row is one operator decision: the predicted count is\n"
      "converted through the O(n^2) load model into the CPU request sent\n"
      "to the data centers.\n");
  return 0;
}
