// Quickstart: provision a small MMOG on two data centers for one simulated
// day and print the headline efficiency numbers.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "core/simulation.hpp"
#include "predict/simple.hpp"
#include "trace/runescape_model.hpp"

using namespace mmog;

int main() {
  // 1. A workload: one European region with 10 server groups, one day of
  //    2-minute player-count samples from the synthetic RuneScape-like
  //    generator.
  trace::RuneScapeModelConfig trace_cfg;
  trace_cfg.steps = util::samples_per_days(1);
  trace_cfg.seed = 7;
  trace_cfg.regions = {{.name = "Europe",
                        .utc_offset_hours = 1,
                        .server_groups = 10,
                        .base_players_per_group = 1200.0,
                        .weekend_multiplier = 1.0,
                        .always_full_fraction = 0.0}};
  auto workload = trace::generate(trace_cfg);
  std::printf("Workload: %zu groups, %zu samples, peak %0.f players\n",
              workload.regions[0].groups.size(), workload.steps(),
              workload.global().max());

  // 2. Two hosters: a fine-grained one in Amsterdam and a coarse one in
  //    London (Table IV policies HP-3 and HP-7).
  dc::DataCenterSpec amsterdam;
  amsterdam.name = "Amsterdam";
  amsterdam.location = {52.37, 4.90};
  amsterdam.machines = 8;
  amsterdam.policy = dc::HostingPolicy::preset(3);
  dc::DataCenterSpec london;
  london.name = "London";
  london.location = {51.51, -0.13};
  london.machines = 8;
  london.policy = dc::HostingPolicy::preset(7);

  // 3. The game: an O(n^2)-interaction MMOG that tolerates any latency.
  core::GameSpec game;
  game.name = "Demo MMOG";
  game.load = core::LoadModel{core::UpdateModel::kQuadratic, 2000.0};
  game.latency_tolerance = dc::DistanceClass::kVeryFar;
  game.workload = std::move(workload);

  // 4. Dynamic provisioning with the zero-cost Last-value predictor.
  core::SimulationConfig cfg;
  cfg.datacenters = {amsterdam, london};
  cfg.games.push_back(std::move(game));
  cfg.predictor = [] {
    return std::make_unique<predict::LastValuePredictor>();
  };
  const auto dynamic_run = core::simulate(cfg);

  // 5. The static baseline: a dedicated machine per server group.
  cfg.mode = core::AllocationMode::kStatic;
  const auto static_run = core::simulate(cfg);

  using util::ResourceKind;
  std::printf("\n%-22s %12s %12s\n", "", "dynamic", "static");
  std::printf("%-22s %11.1f%% %11.1f%%\n", "CPU over-allocation",
              dynamic_run.metrics.avg_over_allocation_pct(ResourceKind::kCpu),
              static_run.metrics.avg_over_allocation_pct(ResourceKind::kCpu));
  std::printf("%-22s %11.2f%% %11.2f%%\n", "CPU under-allocation",
              dynamic_run.metrics.avg_under_allocation_pct(ResourceKind::kCpu),
              static_run.metrics.avg_under_allocation_pct(ResourceKind::kCpu));
  std::printf("%-22s %12zu %12zu\n", "|Υ|>1% events",
              dynamic_run.metrics.significant_events(),
              static_run.metrics.significant_events());

  std::printf("\nPer data center (average CPU units granted):\n");
  for (const auto& usage : dynamic_run.datacenters) {
    std::printf("  %-12s %6.2f / %4.0f units (%s policy)\n",
                usage.name.c_str(), usage.avg_allocated_cpu,
                usage.capacity_cpu,
                usage.name == "Amsterdam" ? "fine HP-3" : "coarse HP-7");
  }
  std::printf(
      "\nThe matcher prefers the finer-grained Amsterdam offer; London only\n"
      "sees overflow — exactly how the paper's operators penalize hosters\n"
      "with unsuitable policies (SS V-E).\n");
  return 0;
}
