// Trace explorer: generate a RuneScape-like world trace, then run the
// paper's SS III analysis on it — global population with events, regional
// diurnal statistics, autocorrelations, and packet-level session evidence.

#include <cstdio>

#include "net/session.hpp"
#include "trace/analysis.hpp"
#include "trace/runescape_model.hpp"
#include "util/stats.hpp"

using namespace mmog;

int main() {
  // A week of trace with one content release mid-week.
  auto cfg = trace::RuneScapeModelConfig::paper_default();
  cfg.steps = util::samples_per_days(7);
  cfg.seed = 20080815;
  trace::EventSpec release;
  release.kind = trace::EventSpec::Kind::kContentRelease;
  release.step = util::samples_per_days(3);
  release.magnitude = 0.5;
  cfg.events = {release};

  const auto world = trace::generate(cfg);
  const auto global = world.global();

  std::printf("Generated %zu regions, %zu samples (7 days @ 2 min)\n\n",
              world.regions.size(), world.steps());

  std::printf("Global population: mean %.0f, min %.0f, max %.0f players\n",
              global.mean(), global.min(), global.max());
  const auto events = trace::detect_events(global);
  for (const auto& ev : events) {
    std::printf("  detected %s of %+.0f%% around day %.1f\n",
                ev.kind == trace::DetectedEvent::Kind::kSurge ? "surge"
                                                              : "drop",
                ev.relative_change * 100.0,
                static_cast<double>(ev.step) / 720.0);
  }

  std::printf("\nPer-region diurnal structure:\n");
  std::printf("  %-16s %8s %8s %10s %10s\n", "region", "mean", "IQR",
              "ACF@12h", "ACF@24h");
  for (const auto& region : world.regions) {
    const auto total = region.total();
    const auto acf = util::autocorrelation(total.values(), 730);
    const auto iqr = trace::iqr_over_time(region);
    std::printf("  %-16s %8.0f %8.0f %10.2f %10.2f\n", region.name.c_str(),
                total.mean(), util::mean(iqr), acf[360], acf[720]);
  }

  std::printf("\nAlways-full server groups (>=92%% capacity, 90%% of time):\n");
  for (const auto& region : world.regions) {
    std::printf("  %-16s %zu of %zu groups\n", region.name.c_str(),
                trace::count_always_full(region, 0.92, 0.9),
                region.groups.size());
  }

  // Network-level view: what one session of each interaction class does.
  std::printf("\nSession-level packet evidence (SS III-D):\n");
  std::printf("  %-42s %10s %10s\n", "session", "mean B", "mean IAT");
  for (const auto& scfg : net::fig4_sessions(3)) {
    const auto session = net::emulate_session(scfg);
    std::printf("  %-42s %8.1f B %7.1f ms\n", scfg.name.c_str(),
                util::mean(session.lengths()),
                util::mean(session.inter_arrival_ms()));
  }
  return 0;
}
