// Capacity planner: which hosting policy should a data center offer to win
// MMOG business, and which should a game operator seek? Sweep the eleven
// Table IV policies for three game genres (different interaction models
// and latency tolerances) and report cost-of-waste vs risk-of-shortage.

#include <cstdio>
#include <memory>

#include "core/simulation.hpp"
#include "dc/ecosystem.hpp"
#include "predict/simple.hpp"
#include "trace/runescape_model.hpp"
#include "util/table.hpp"

using namespace mmog;
using util::ResourceKind;

namespace {

trace::WorldTrace make_workload(std::uint64_t seed) {
  trace::RuneScapeModelConfig cfg;
  cfg.steps = util::samples_per_days(4);
  cfg.seed = seed;
  cfg.regions = {{.name = "Europe",
                  .utc_offset_hours = 1,
                  .server_groups = 12,
                  .base_players_per_group = 1250.0,
                  .weekend_multiplier = 1.0,
                  .always_full_fraction = 0.0}};
  return trace::generate(cfg);
}

}  // namespace

int main() {
  std::printf("Capacity planning sweep: 11 hosting policies x 3 genres\n\n");

  struct Genre {
    const char* name;
    core::UpdateModel model;
  };
  const Genre genres[] = {
      {"RPG (O(n log n))", core::UpdateModel::kNLogN},
      {"MMORPG (O(n^2))", core::UpdateModel::kQuadratic},
      {"FPS-like (O(n^2 log n))", core::UpdateModel::kQuadraticLogN},
  };

  const auto workload = make_workload(31);

  for (const auto& genre : genres) {
    util::TextTable table({"Policy", "CPU bulk", "Time bulk [h]", "Over [%]",
                           "Under [%]", "Events"});
    int best_policy = 1;
    double best_score = 1e18;
    for (int p = 1; p <= 11; ++p) {
      core::SimulationConfig cfg;
      dc::DataCenterSpec center;
      center.name = "Planner DC";
      center.location = {52.37, 4.90};
      center.machines = 20;
      center.policy = dc::HostingPolicy::preset(p);
      cfg.datacenters = {center};
      core::GameSpec game;
      game.name = genre.name;
      game.load = core::LoadModel{genre.model, 2000.0};
      game.workload = workload;
      cfg.games.push_back(std::move(game));
      cfg.predictor = [] {
        return std::make_unique<predict::LastValuePredictor>();
      };
      const auto result = core::simulate(cfg);
      const double over =
          result.metrics.avg_over_allocation_pct(ResourceKind::kCpu);
      const auto events = result.metrics.significant_events();
      // A crude planner's utility: waste plus a stiff penalty per shortage.
      const double score =
          over + 5.0 * static_cast<double>(events) /
                     static_cast<double>(result.steps) * 100.0;
      if (score < best_score) {
        best_score = score;
        best_policy = p;
      }
      const auto policy = dc::HostingPolicy::preset(p);
      table.add_row({policy.name, util::TextTable::num(policy.bulk.cpu(), 2),
                     util::TextTable::num(policy.time_bulk_minutes / 60.0, 1),
                     util::TextTable::num(over, 1),
                     util::TextTable::num(result.metrics.avg_under_allocation_pct(
                                              ResourceKind::kCpu),
                                          3),
                     std::to_string(events)});
    }
    std::printf("== %s\n%s   -> recommended policy: HP-%d\n\n", genre.name,
                table.to_string().c_str(), best_policy);
  }
  std::printf(
      "Reading the sweep: finer CPU bulks and shorter time bulks cut waste\n"
      "(SS V-D); heavier interaction models shift the optimum because their\n"
      "load swings are amplified and shortages get more expensive.\n");
  return 0;
}
