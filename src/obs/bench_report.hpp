#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/report.hpp"

namespace mmog::obs {

/// The stable-schema scale-sweep benchmark artifact (`BENCH_scale.json`),
/// written by `tools/mmog_bench` and compared by `mmog_diff --kind bench`.
///
/// The schema splits metrics by portability:
///   * allocations per step are a deterministic property of the code and
///     the workload — machine-independent, hence the hard CI gate;
///   * timings, throughput and RSS depend on the machine (fingerprinted in
///     the `machine` section) — compared only against opt-in tolerances.

/// Identity of the machine that produced a bench artifact, so cross-host
/// timing comparisons are recognizable as apples-to-oranges.
struct BenchMachine {
  std::string os;       ///< uname sysname ("Linux")
  std::string release;  ///< uname release
  std::string arch;     ///< uname machine ("x86_64")
  std::uint64_t cpus = 0;
  std::uint64_t page_size = 0;
  /// FNV-1a 64 hex over the fields above: equal fingerprints = comparable
  /// timing numbers (same kernel/arch/core count).
  std::string fingerprint() const;
};

/// Collects the current host's identity (uname + sysconf).
BenchMachine collect_bench_machine();

/// Per-phase slice of one sweep run.
struct BenchPhase {
  std::string name;
  std::uint64_t count = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
  double allocs_per_step = 0.0;
  double alloc_bytes_per_step = 0.0;
};

/// One (groups, threads) cell of the sweep.
struct BenchRun {
  std::string label;  ///< stable pairing key, e.g. "g1000/t4"
  std::uint64_t groups = 0;
  std::uint64_t threads = 0;  ///< resolved worker count
  std::uint64_t steps = 0;
  double wall_seconds = 0.0;
  double steps_per_sec = 0.0;
  double group_steps_per_sec = 0.0;
  double allocs_per_step = 0.0;       ///< heap allocations per sim step
  double alloc_bytes_per_step = 0.0;  ///< requested bytes per sim step
  std::uint64_t peak_rss_kb = 0;
  std::vector<BenchPhase> phases;  ///< sorted by name
};

/// One google-benchmark result folded into the artifact (satellite: micro
/// and macro numbers live in one file).
struct MicroResult {
  std::string name;
  std::uint64_t iterations = 0;
  double real_time_us = 0.0;
  double cpu_time_us = 0.0;
};

/// Parses `--benchmark_format=json` output from a google-benchmark binary
/// into MicroResults (aggregate rows like "_mean" are skipped). Throws
/// std::invalid_argument on malformed input.
std::vector<MicroResult> parse_google_benchmark_json(std::string_view json);

struct BenchReport {
  static constexpr int kSchemaVersion = 1;
  /// Discriminator for mmog_diff's kind autodetection.
  static constexpr std::string_view kKind = "mmog-bench";

  std::string tool = "mmog_bench";
  BenchMachine machine;
  std::vector<BenchRun> runs;
  std::vector<MicroResult> micro;

  /// Stable-schema JSON (fixed key order, shortest round-trip numbers).
  std::string to_json() const;

  /// Human summary: one table row per sweep run plus the micro rows.
  std::string summary_table() const;

  /// Parses to_json() output. Throws std::invalid_argument on malformed
  /// or wrong-kind input.
  static BenchReport parse(std::string_view json);
};

/// Tolerances for diff_bench. Negative = that dimension is informational
/// only (a note, never a regression).
struct BenchDiffOptions {
  /// Relative drift budget for allocs/step and bytes/step — the
  /// machine-independent metrics, so this one defaults to a hard gate.
  double alloc_tolerance_pct = 10.0;
  /// Budget for steps/s and per-phase p50 regressions (candidate slower
  /// than baseline; improvements never fail). Off by default: two runs of
  /// the same build on a shared runner may time differently.
  double timing_tolerance_pct = -1.0;
  /// Budget for peak-RSS growth. Off by default.
  double rss_tolerance_pct = -1.0;
};

/// Compares a candidate sweep against a baseline: runs pair by label (a
/// label missing from the candidate is a regression; extra candidate runs
/// are notes). Allocation drift beyond `alloc_tolerance_pct` in either
/// direction fails; timing/RSS only fail in the slower/bigger direction
/// and only when their tolerance is enabled. Micro rows pair by name and
/// follow the timing tolerance.
DiffResult diff_bench(const BenchReport& baseline,
                      const BenchReport& candidate,
                      const BenchDiffOptions& options = {});

}  // namespace mmog::obs
