#include "obs/registry.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace mmog::obs {
namespace {

/// Transparent hashing so shard lookups take string_view without allocating.
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Per-shard histogram state sharing the registry's bound vector.
struct LocalHistogram {
  std::shared_ptr<const std::vector<double>> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  explicit LocalHistogram(std::shared_ptr<const std::vector<double>> b)
      : bounds(std::move(b)), counts(bounds->size() + 1, 0) {}

  void observe(double value) noexcept {
    const auto it =
        std::lower_bound(bounds->begin(), bounds->end(), value);
    ++counts[static_cast<std::size_t>(it - bounds->begin())];
    ++count;
    sum += value;
    min = std::min(min, value);
    max = std::max(max, value);
  }
};

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

}  // namespace

struct Registry::Shard {
  util::Mutex mutex;  ///< owner thread + snapshot() only: effectively free
  std::unordered_map<std::string, double, StringHash, std::equal_to<>>
      counters GUARDED_BY(mutex);
  std::unordered_map<std::string, LocalHistogram, StringHash, std::equal_to<>>
      histograms GUARDED_BY(mutex);
};

double HistogramData::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts[i]);
    if (counts[i] > 0 && next >= target) {
      double lo = i == 0 ? min : bounds[i - 1];
      double hi = i < bounds.size() ? bounds[i] : max;
      lo = std::clamp(lo, min, max);
      hi = std::clamp(hi, min, max);
      const double frac =
          (target - cumulative) / static_cast<double>(counts[i]);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return max;
}

std::vector<double> log_buckets(double lo, double hi, double factor) {
  if (lo <= 0.0 || factor <= 1.0) {
    throw std::invalid_argument("log_buckets: need lo > 0 and factor > 1");
  }
  std::vector<double> bounds;
  double b = lo;
  while (true) {
    bounds.push_back(b);
    if (b >= hi) break;
    b *= factor;
  }
  return bounds;
}

const std::vector<double>& duration_buckets_us() {
  static const std::vector<double> buckets = log_buckets(0.05, 1e6, 2.0);
  return buckets;
}

const std::vector<double>& count_buckets() {
  static const std::vector<double> buckets = log_buckets(1.0, 1e9, 4.0);
  return buckets;
}

Registry::Registry()
    : id_([] {
        static std::atomic<std::uint64_t> next{1};
        return next.fetch_add(1);
      }()) {}

Registry::~Registry() = default;

Registry::Shard& Registry::local_shard() const {
  // Keyed by the process-unique registry id (never an address, which could
  // be reused), so a stale entry from a destroyed registry is never hit.
  thread_local std::unordered_map<std::uint64_t, Shard*> cache;
  if (const auto it = cache.find(id_); it != cache.end()) return *it->second;
  util::MutexLock lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  cache.emplace(id_, shard);
  return *shard;
}

std::shared_ptr<const std::vector<double>> Registry::bounds_for(
    std::string_view name, const std::vector<double>& default_bounds) {
  util::MutexLock lock(mutex_);
  if (const auto it = histogram_bounds_.find(name);
      it != histogram_bounds_.end()) {
    return it->second;
  }
  auto bounds = std::make_shared<const std::vector<double>>(default_bounds);
  histogram_bounds_.emplace(std::string(name), bounds);
  return bounds;
}

void Registry::add(std::string_view counter, double delta) {
  Shard& shard = local_shard();
  util::MutexLock lock(shard.mutex);
  if (const auto it = shard.counters.find(counter);
      it != shard.counters.end()) {
    it->second += delta;
  } else {
    shard.counters.emplace(std::string(counter), delta);
  }
}

void Registry::set(std::string_view gauge, double value) {
  util::MutexLock lock(mutex_);
  if (const auto it = gauges_.find(gauge); it != gauges_.end()) {
    it->second = value;
  } else {
    gauges_.emplace(std::string(gauge), value);
  }
}

void Registry::define_histogram(std::string_view name,
                                std::vector<double> bounds) {
  if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::invalid_argument(
        "define_histogram: bounds must be non-empty and ascending");
  }
  util::MutexLock lock(mutex_);
  if (const auto it = histogram_bounds_.find(name);
      it != histogram_bounds_.end()) {
    if (*it->second != bounds) {
      throw std::invalid_argument("define_histogram: '" + std::string(name) +
                                  "' already defined with different bounds");
    }
    return;
  }
  histogram_bounds_.emplace(
      std::string(name),
      std::make_shared<const std::vector<double>>(std::move(bounds)));
}

void Registry::observe(std::string_view histogram, double value) {
  observe_with_default(histogram, value, duration_buckets_us());
}

void Registry::observe_count(std::string_view histogram, double value) {
  observe_with_default(histogram, value, count_buckets());
}

void Registry::observe_with_default(
    std::string_view histogram, double value,
    const std::vector<double>& default_bounds) {
  Shard& shard = local_shard();
  {
    util::MutexLock lock(shard.mutex);
    if (const auto it = shard.histograms.find(histogram);
        it != shard.histograms.end()) {
      it->second.observe(value);
      return;
    }
  }
  // First observation of this name on this thread: resolve the bounds
  // outside the shard lock (bounds_for takes the registry mutex, which
  // snapshot() holds while collecting shard pointers).
  auto bounds = bounds_for(histogram, default_bounds);
  util::MutexLock lock(shard.mutex);
  shard.histograms.emplace(std::string(histogram),
                           LocalHistogram(std::move(bounds)))
      .first->second.observe(value);
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::vector<Shard*> shards;
  {
    util::MutexLock lock(mutex_);
    shards.reserve(shards_.size());
    for (const auto& s : shards_) shards.push_back(s.get());
    snap.gauges.insert(gauges_.begin(), gauges_.end());
  }
  for (Shard* shard : shards) {
    util::MutexLock lock(shard->mutex);
    for (const auto& [name, value] : shard->counters) {
      snap.counters[name] += value;
    }
    for (const auto& [name, local] : shard->histograms) {
      auto [it, inserted] = snap.histograms.try_emplace(name);
      HistogramData& merged = it->second;
      if (inserted) {
        merged.bounds = *local.bounds;
        merged.counts.assign(local.counts.size(), 0);
      }
      for (std::size_t i = 0; i < local.counts.size(); ++i) {
        merged.counts[i] += local.counts[i];
      }
      const bool first = merged.count == 0;
      merged.count += local.count;
      merged.sum += local.sum;
      if (local.count > 0) {
        merged.min = first ? local.min : std::min(merged.min, local.min);
        merged.max = first ? local.max : std::max(merged.max, local.max);
      }
    }
  }
  return snap;
}

std::string Snapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool sep = false;
  for (const auto& [name, value] : counters) {
    if (sep) out += ',';
    out += '"';
    append_json_escaped(out, name);
    out += "\":" + json_number(value);
    sep = true;
  }
  out += "},\"gauges\":{";
  sep = false;
  for (const auto& [name, value] : gauges) {
    if (sep) out += ',';
    out += '"';
    append_json_escaped(out, name);
    out += "\":" + json_number(value);
    sep = true;
  }
  out += "},\"histograms\":{";
  sep = false;
  for (const auto& [name, h] : histograms) {
    if (sep) out += ',';
    out += '"';
    append_json_escaped(out, name);
    out += "\":{\"count\":" + json_number(static_cast<double>(h.count));
    out += ",\"sum\":" + json_number(h.sum);
    out += ",\"mean\":" + json_number(h.mean());
    out += ",\"min\":" + json_number(h.min);
    out += ",\"p50\":" + json_number(h.quantile(0.5));
    out += ",\"p90\":" + json_number(h.quantile(0.9));
    out += ",\"p99\":" + json_number(h.quantile(0.99));
    out += ",\"max\":" + json_number(h.max);
    out += ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out += ',';
      out += json_number(h.bounds[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) out += ',';
      out += json_number(static_cast<double>(h.counts[i]));
    }
    out += "]}";
    sep = true;
  }
  out += "}}";
  return out;
}

std::string Snapshot::to_csv() const {
  std::string out = "type,name,stat,value\n";
  // Metric names are free-form (callers may embed commas or quotes), so
  // the name field goes through RFC-4180 escaping; type and stat are fixed
  // tokens.
  auto row = [&out](std::string_view type, std::string_view name,
                    std::string_view stat, double value) {
    out += std::string(type) + ',' + util::csv_escape(name) + ',' +
           std::string(stat) + ',' + json_number(value) + '\n';
  };
  for (const auto& [name, value] : counters) {
    row("counter", name, "value", value);
  }
  for (const auto& [name, value] : gauges) row("gauge", name, "value", value);
  for (const auto& [name, h] : histograms) {
    row("histogram", name, "count", static_cast<double>(h.count));
    row("histogram", name, "sum", h.sum);
    row("histogram", name, "mean", h.mean());
    row("histogram", name, "min", h.min);
    row("histogram", name, "p50", h.quantile(0.5));
    row("histogram", name, "p90", h.quantile(0.9));
    row("histogram", name, "p99", h.quantile(0.99));
    row("histogram", name, "max", h.max);
  }
  return out;
}

}  // namespace mmog::obs
