#include "obs/audit.hpp"

#include <cctype>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "obs/jsonio.hpp"

namespace mmog::obs {
namespace {

struct OutcomeName {
  OfferOutcome outcome;
  std::string_view name;
};

constexpr OutcomeName kOutcomeNames[] = {
    {OfferOutcome::kGranted, "granted"},
    {OfferOutcome::kRejectedOutage, "rejected_outage"},
    {OfferOutcome::kRejectedLatencyDegraded, "rejected_latency_degraded"},
    {OfferOutcome::kRejectedBackoff, "rejected_backoff"},
    {OfferOutcome::kRejectedBulk, "rejected_bulk"},
    {OfferOutcome::kRejectedAmount, "rejected_amount"},
    {OfferOutcome::kGrantFlapped, "grant_flapped"},
};

struct KindName {
  AuditKind kind;
  std::string_view name;
};

constexpr KindName kKindNames[] = {
    {AuditKind::kMatch, "match"},
    {AuditKind::kReplace, "replace"},
    {AuditKind::kStatic, "static"},
    {AuditKind::kForceRelease, "force_release"},
};

}  // namespace

std::string_view offer_outcome_name(OfferOutcome outcome) {
  for (const auto& [value, name] : kOutcomeNames) {
    if (value == outcome) return name;
  }
  return "unknown";
}

OfferOutcome offer_outcome_from_name(std::string_view name) {
  for (const auto& [value, candidate] : kOutcomeNames) {
    if (candidate == name) return value;
  }
  throw std::invalid_argument("audit: unknown offer outcome \"" +
                              std::string(name) + "\"");
}

std::string_view audit_kind_name(AuditKind kind) {
  for (const auto& [value, name] : kKindNames) {
    if (value == kind) return name;
  }
  return "unknown";
}

AuditKind audit_kind_from_name(std::string_view name) {
  for (const auto& [value, candidate] : kKindNames) {
    if (candidate == name) return value;
  }
  throw std::invalid_argument("audit: unknown record kind \"" +
                              std::string(name) + "\"");
}

void AuditTrail::append(AuditRecord record) {
  util::MutexLock lock(mutex_);
  record.seq = next_seq_++;
  records_.push_back(std::move(record));
}

void AuditTrail::append_batch(std::vector<AuditRecord>& batch) {
  util::MutexLock lock(mutex_);
  for (auto& record : batch) {
    record.seq = next_seq_++;
    records_.push_back(std::move(record));
  }
  batch.clear();
}

std::size_t AuditTrail::size() const {
  util::MutexLock lock(mutex_);
  return records_.size();
}

std::vector<AuditRecord> AuditTrail::records() const {
  util::MutexLock lock(mutex_);
  return records_;
}

std::string audit_record_to_json(const AuditRecord& record) {
  std::string line;
  line.reserve(256);
  line += "{\"seq\":" + std::to_string(record.seq);
  line += ",\"step\":" + std::to_string(record.step);
  line += ",\"kind\":\"";
  line += audit_kind_name(record.kind);
  line += "\",\"game\":" + std::to_string(record.game);
  line += ",\"region\":\"";
  append_json_escaped(line, record.region);
  line += "\",\"predicted\":" + json_double(record.predicted_players);
  line += ",\"actual\":" + json_double(record.actual_players);
  line += ",\"margin_cpu\":" + json_double(record.margin_cpu);
  line += ",\"demand_cpu\":" + json_double(record.demand_cpu);
  line += ",\"held_cpu\":" + json_double(record.held_cpu);
  line += ",\"released_cpu\":" + json_double(record.released_cpu);
  line += ",\"requested_cpu\":" + json_double(record.requested_cpu);
  line += ",\"granted_cpu\":" + json_double(record.granted_cpu);
  line += ",\"unmet_cpu\":" + json_double(record.unmet_cpu);
  line += ",\"dc\":" + std::to_string(record.dc);
  line += ",\"cause\":\"";
  append_json_escaped(line, record.cause);
  line += "\",\"alloc_id\":" + std::to_string(record.alloc_id);
  line += ",\"offers\":[";
  for (std::size_t i = 0; i < record.offers.size(); ++i) {
    const AuditOffer& offer = record.offers[i];
    if (i) line += ',';
    line += "{\"dc\":" + std::to_string(offer.dc);
    line += ",\"outcome\":\"";
    line += offer_outcome_name(offer.outcome);
    line += "\",\"cpu\":" + json_double(offer.cpu);
    line += ",\"until_step\":" + std::to_string(offer.until_step);
    line += '}';
  }
  line += "]}";
  return line;
}

void AuditTrail::write_jsonl(std::ostream& out) const {
  const auto copy = records();
  for (const auto& record : copy) {
    out << audit_record_to_json(record) << '\n';
  }
}

std::string AuditTrail::to_jsonl() const {
  const auto copy = records();
  std::string out;
  for (const auto& record : copy) {
    out += audit_record_to_json(record);
    out += '\n';
  }
  return out;
}

std::vector<AuditRecord> read_audit_jsonl(std::istream& in) {
  std::vector<AuditRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    const JsonValue doc = parse_json(line);
    AuditRecord record;
    record.seq = static_cast<std::uint64_t>(doc.at("seq").as_number());
    record.step = static_cast<std::uint64_t>(doc.at("step").as_number());
    record.kind = audit_kind_from_name(doc.at("kind").as_string());
    record.game = static_cast<std::uint32_t>(doc.at("game").as_number());
    record.region = doc.at("region").as_string();
    record.predicted_players = doc.at("predicted").as_number();
    record.actual_players = doc.at("actual").as_number();
    record.margin_cpu = doc.at("margin_cpu").as_number();
    record.demand_cpu = doc.at("demand_cpu").as_number();
    record.held_cpu = doc.at("held_cpu").as_number();
    record.released_cpu = doc.at("released_cpu").as_number();
    record.requested_cpu = doc.at("requested_cpu").as_number();
    record.granted_cpu = doc.at("granted_cpu").as_number();
    record.unmet_cpu = doc.at("unmet_cpu").as_number();
    record.dc = static_cast<std::int32_t>(doc.at("dc").as_number());
    record.cause = doc.at("cause").as_string();
    record.alloc_id =
        static_cast<std::uint64_t>(doc.at("alloc_id").as_number());
    for (const JsonValue& item : doc.at("offers").as_array()) {
      AuditOffer offer;
      offer.dc = static_cast<std::uint32_t>(item.at("dc").as_number());
      offer.outcome = offer_outcome_from_name(item.at("outcome").as_string());
      offer.cpu = item.at("cpu").as_number();
      offer.until_step =
          static_cast<std::uint64_t>(item.at("until_step").as_number());
      record.offers.push_back(offer);
    }
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace mmog::obs
