#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/alerts.hpp"
#include "obs/audit.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/timeseries.hpp"
#include "obs/tracer.hpp"
#include "util/alloccount.hpp"

namespace mmog::obs {

/// How much the tracer records. The registry is always live (it is cheap);
/// the trace level bounds trace-file growth on long runs.
enum class TraceLevel {
  kOff = 0,     ///< metrics only, no trace events
  kSteps = 1,   ///< step/phase spans + allocation and under-allocation events
  kDetail = 2,  ///< + per-unit point events (prediction issued, request padded)
};

/// The observability sink instrumented code writes to. Call sites take a
/// `Recorder*` and treat nullptr as "observability disabled": every guard is
/// a single pointer test, so a null recorder costs nothing — no formatting,
/// no clock reads, no allocation.
class Recorder {
 public:
  explicit Recorder(TraceLevel level = TraceLevel::kSteps)
      : level_(level) {}

  Registry& registry() noexcept { return registry_; }
  const Registry& registry() const noexcept { return registry_; }
  Tracer& tracer() noexcept { return tracer_; }
  const Tracer& tracer() const noexcept { return tracer_; }

  TraceLevel trace_level() const noexcept { return level_; }
  bool tracing() const noexcept { return level_ >= TraceLevel::kSteps; }
  bool detail() const noexcept { return level_ >= TraceLevel::kDetail; }

  void count(std::string_view counter, double delta = 1.0) {
    registry_.add(counter, delta);
  }
  void gauge(std::string_view name, double value) {
    registry_.set(name, value);
  }
  void observe_us(std::string_view histogram, double us) {
    registry_.observe(histogram, us);
  }

  /// Point event; dropped below TraceLevel::kSteps.
  void instant(std::string_view name, std::string_view category,
               std::uint64_t step, std::vector<TraceArg> args = {}) {
    if (tracing()) tracer_.instant(name, category, step, std::move(args));
  }

  /// High-frequency point event; dropped below TraceLevel::kDetail.
  void detail_instant(std::string_view name, std::string_view category,
                      std::uint64_t step, std::vector<TraceArg> args = {}) {
    if (detail()) tracer_.instant(name, category, step, std::move(args));
  }

  Snapshot snapshot() const { return registry_.snapshot(); }

  // --- Live telemetry (PR 3) -------------------------------------------
  //
  // Off by default: a Recorder without enable_timeseries()/enable_alerts()
  // behaves exactly as before and live() short-circuits to false, so the
  // simulator's per-step sampling block never runs. When enabled, the
  // simulation thread calls sample_step() once per step; the HTTP thread
  // (TelemetryService) reads the store/engine through their own locks.
  //
  // The store/engine pointers are published through release/acquire
  // atomics: enable_*() may race with a scrape on the HTTP thread, and the
  // reader must observe a fully constructed object or nullptr — never a
  // half-written pointer. Each enable_*() is one-shot (the owner slot is
  // written once); re-enabling while serving is not supported.

  /// Keep a downsampling ring of every sampled metric (capacity points per
  /// series; resolution halves when full).
  void enable_timeseries(std::size_t capacity_per_series = 512) {
    timeseries_owner_ =
        std::make_unique<TimeSeriesStore>(capacity_per_series);
    timeseries_.store(timeseries_owner_.get(), std::memory_order_release);
  }

  /// Watch the sampled metrics with an alert-rule engine.
  void enable_alerts(std::vector<AlertRule> rules) {
    alerts_owner_ = std::make_unique<AlertEngine>(std::move(rules));
    alerts_.store(alerts_owner_.get(), std::memory_order_release);
  }

  /// Keep a structured decision-audit trail (PR 6). Same contract as the
  /// other enable_*(): one-shot, published release/acquire so a concurrent
  /// `GET /audit` scrape sees a fully constructed trail or nullptr. A
  /// Recorder without enable_audit() costs instrumented sites one pointer
  /// test per decision.
  void enable_audit() {
    audit_owner_ = std::make_unique<AuditTrail>();
    audit_.store(audit_owner_.get(), std::memory_order_release);
  }

  /// Attach the per-run resource profiler (PR 8): arms the global
  /// allocation-counting hooks for its lifetime, makes every PhaseScope
  /// also record `phase.<name>_allocs` / `phase.<name>_alloc_bytes`, and
  /// publishes throughput/RSS gauges plus the lock-free mirrors /healthz
  /// reads. Same one-shot release/acquire contract as the other
  /// enable_*(). Without it, PhaseScope pays one pointer test and every
  /// heap allocation one relaxed flag load — outcomes stay byte-identical
  /// (enforced by the determinism property tests).
  void enable_profiler() {
    profiler_owner_ = std::make_unique<ResourceProfiler>();
    profiler_.store(profiler_owner_.get(), std::memory_order_release);
  }

  TimeSeriesStore* timeseries() noexcept {
    return timeseries_.load(std::memory_order_acquire);
  }
  const TimeSeriesStore* timeseries() const noexcept {
    return timeseries_.load(std::memory_order_acquire);
  }
  AlertEngine* alerts() noexcept {
    return alerts_.load(std::memory_order_acquire);
  }
  const AlertEngine* alerts() const noexcept {
    return alerts_.load(std::memory_order_acquire);
  }
  AuditTrail* audit() noexcept {
    return audit_.load(std::memory_order_acquire);
  }
  const AuditTrail* audit() const noexcept {
    return audit_.load(std::memory_order_acquire);
  }
  ResourceProfiler* profiler() noexcept {
    return profiler_.load(std::memory_order_acquire);
  }
  const ResourceProfiler* profiler() const noexcept {
    return profiler_.load(std::memory_order_acquire);
  }

  /// True when per-step sampling has a consumer (store or alert engine).
  bool live() const noexcept {
    return timeseries() != nullptr || alerts() != nullptr;
  }

  /// Step of the most recent sample_step() call (0 before the first).
  std::uint64_t last_sampled_step() const noexcept {
    return last_step_.load(std::memory_order_relaxed);
  }

  /// What /healthz reports about checkpointing: the last durable
  /// checkpoint's step and how long ago it was written. `any` is false
  /// until the first note_checkpoint() call.
  struct CheckpointInfo {
    bool any = false;
    std::uint64_t step = 0;
    double age_seconds = 0.0;
  };

  /// Marks a checkpoint durably written at `step` (called on the
  /// simulation thread right after the file rename lands).
  void note_checkpoint(std::uint64_t step) noexcept {
    last_checkpoint_step_.store(step, std::memory_order_relaxed);
    last_checkpoint_us_.store(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count(),
        std::memory_order_release);
  }

  CheckpointInfo last_checkpoint() const noexcept {
    const std::int64_t at_us =
        last_checkpoint_us_.load(std::memory_order_acquire);
    if (at_us < 0) return {};
    const std::int64_t now_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    return {true, last_checkpoint_step_.load(std::memory_order_relaxed),
            static_cast<double>(now_us - at_us) / 1e6};
  }

  /// Records one step's live samples: publishes each as a gauge (so a
  /// /metrics scrape sees the current value), appends to the time-series
  /// store, and feeds the alert engine — firing/resolve edges become
  /// tracer instants (category "alert") and `alert.fired` /
  /// `alert.resolved` counters. Values are deterministic simulation state;
  /// this never influences control flow.
  void sample_step(std::uint64_t step, const std::vector<Sample>& samples) {
    last_step_.store(step, std::memory_order_relaxed);
    for (const auto& sample : samples) {
      registry_.set(sample.name, sample.value);
    }
    if (TimeSeriesStore* store = timeseries()) store->append(step, samples);
    AlertEngine* engine = alerts();
    if (!engine) return;
    for (const auto& edge : engine->observe(step, samples)) {
      const bool fired = edge.kind == AlertTransition::Kind::kFired;
      count(fired ? "alert.fired" : "alert.resolved");
      instant(fired ? "alert.firing" : "alert.resolved", "alert", step,
              {{"rule", edge.rule_name},
               {"metric", edge.metric},
               {"value", std::to_string(edge.value)}});
    }
  }

 private:
  Registry registry_;
  Tracer tracer_;
  TraceLevel level_;
  std::unique_ptr<TimeSeriesStore> timeseries_owner_;
  std::unique_ptr<AlertEngine> alerts_owner_;
  std::unique_ptr<AuditTrail> audit_owner_;
  std::unique_ptr<ResourceProfiler> profiler_owner_;
  std::atomic<TimeSeriesStore*> timeseries_{nullptr};
  std::atomic<AlertEngine*> alerts_{nullptr};
  std::atomic<AuditTrail*> audit_{nullptr};
  std::atomic<ResourceProfiler*> profiler_{nullptr};
  std::atomic<std::uint64_t> last_step_{0};
  std::atomic<std::uint64_t> last_checkpoint_step_{0};
  std::atomic<std::int64_t> last_checkpoint_us_{-1};  ///< -1 = none yet
};

/// Monotonic microsecond stopwatch for timing instrumented sections.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// RAII phase profiler: on destruction records the elapsed wall time into
/// the histogram "phase.<name>_us" and (when tracing) emits a span named
/// `name`. With a ResourceProfiler attached it additionally differences
/// the global allocation totals around the scope into
/// "phase.<name>_allocs" / "phase.<name>_alloc_bytes" (count-bucket
/// histograms). Null-recorder construction is free: no clock is read.
class PhaseScope {
 public:
  PhaseScope(Recorder* recorder, std::string_view name, std::uint64_t step,
             std::string_view category = "phase")
      : recorder_(recorder) {
    if (!recorder_) return;
    name_ = name;
    category_ = category;
    step_ = step;
    if (recorder_->tracing()) span_start_us_ = recorder_->tracer().now_us();
    if (recorder_->profiler() != nullptr) {
      profiled_ = true;
      alloc_start_ = util::alloccount::totals();
    }
    watch_.reset();
  }

  ~PhaseScope() {
    if (!recorder_) return;
    const double us = watch_.elapsed_us();
    // Histogram keys are composed on the stack: a nested scope's teardown
    // runs inside the enclosing scope's allocation window, so heap-built
    // key strings here would be charged to the parent phase's
    // "phase.<parent>_allocs" profile.
    char buf[64];
    if (profiled_) {
      // Delta first, record after: anything the recording itself allocates
      // belongs to the enclosing scope, not to this phase.
      const auto delta = util::alloccount::totals() - alloc_start_;
      Registry& registry = recorder_->registry();
      registry.observe_count(key(buf, "_allocs"),
                             static_cast<double>(delta.allocs));
      registry.observe_count(key(buf, "_alloc_bytes"),
                             static_cast<double>(delta.bytes));
    }
    recorder_->observe_us(key(buf, "_us"), us);
    if (recorder_->tracing()) {
      recorder_->tracer().complete_span(name_, category_, step_,
                                        span_start_us_, us);
    }
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  /// "phase.<name><suffix>" without touching the heap; falls back to an
  /// owned string only for names too long for the buffer.
  std::string_view key(char (&buf)[64], std::string_view suffix) {
    constexpr std::string_view prefix = "phase.";
    if (prefix.size() + name_.size() + suffix.size() > sizeof buf) {
      overflow_key_.assign(prefix);
      overflow_key_ += name_;
      overflow_key_ += suffix;
      return overflow_key_;
    }
    char* p = buf;
    std::memcpy(p, prefix.data(), prefix.size());
    p += prefix.size();
    std::memcpy(p, name_.data(), name_.size());
    p += name_.size();
    std::memcpy(p, suffix.data(), suffix.size());
    p += suffix.size();
    return {buf, static_cast<std::size_t>(p - buf)};
  }

  Recorder* recorder_;
  std::string name_;
  std::string category_;
  std::string overflow_key_;
  std::uint64_t step_ = 0;
  double span_start_us_ = 0.0;
  bool profiled_ = false;
  util::alloccount::Totals alloc_start_;
  Stopwatch watch_;
};

}  // namespace mmog::obs
