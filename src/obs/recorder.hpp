#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.hpp"
#include "obs/tracer.hpp"

namespace mmog::obs {

/// How much the tracer records. The registry is always live (it is cheap);
/// the trace level bounds trace-file growth on long runs.
enum class TraceLevel {
  kOff = 0,     ///< metrics only, no trace events
  kSteps = 1,   ///< step/phase spans + allocation and under-allocation events
  kDetail = 2,  ///< + per-unit point events (prediction issued, request padded)
};

/// The observability sink instrumented code writes to. Call sites take a
/// `Recorder*` and treat nullptr as "observability disabled": every guard is
/// a single pointer test, so a null recorder costs nothing — no formatting,
/// no clock reads, no allocation.
class Recorder {
 public:
  explicit Recorder(TraceLevel level = TraceLevel::kSteps)
      : level_(level) {}

  Registry& registry() noexcept { return registry_; }
  const Registry& registry() const noexcept { return registry_; }
  Tracer& tracer() noexcept { return tracer_; }
  const Tracer& tracer() const noexcept { return tracer_; }

  TraceLevel trace_level() const noexcept { return level_; }
  bool tracing() const noexcept { return level_ >= TraceLevel::kSteps; }
  bool detail() const noexcept { return level_ >= TraceLevel::kDetail; }

  void count(std::string_view counter, double delta = 1.0) {
    registry_.add(counter, delta);
  }
  void gauge(std::string_view name, double value) {
    registry_.set(name, value);
  }
  void observe_us(std::string_view histogram, double us) {
    registry_.observe(histogram, us);
  }

  /// Point event; dropped below TraceLevel::kSteps.
  void instant(std::string_view name, std::string_view category,
               std::uint64_t step, std::vector<TraceArg> args = {}) {
    if (tracing()) tracer_.instant(name, category, step, std::move(args));
  }

  /// High-frequency point event; dropped below TraceLevel::kDetail.
  void detail_instant(std::string_view name, std::string_view category,
                      std::uint64_t step, std::vector<TraceArg> args = {}) {
    if (detail()) tracer_.instant(name, category, step, std::move(args));
  }

  Snapshot snapshot() const { return registry_.snapshot(); }

 private:
  Registry registry_;
  Tracer tracer_;
  TraceLevel level_;
};

/// Monotonic microsecond stopwatch for timing instrumented sections.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// RAII phase profiler: on destruction records the elapsed wall time into
/// the histogram "phase.<name>_us" and (when tracing) emits a span named
/// `name`. Null-recorder construction is free: no clock is read.
class PhaseScope {
 public:
  PhaseScope(Recorder* recorder, std::string_view name, std::uint64_t step,
             std::string_view category = "phase")
      : recorder_(recorder) {
    if (!recorder_) return;
    name_ = name;
    category_ = category;
    step_ = step;
    if (recorder_->tracing()) span_start_us_ = recorder_->tracer().now_us();
    watch_.reset();
  }

  ~PhaseScope() {
    if (!recorder_) return;
    const double us = watch_.elapsed_us();
    recorder_->observe_us("phase." + name_ + "_us", us);
    if (recorder_->tracing()) {
      recorder_->tracer().complete_span(name_, category_, step_,
                                        span_start_us_, us);
    }
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Recorder* recorder_;
  std::string name_;
  std::string category_;
  std::uint64_t step_ = 0;
  double span_start_us_ = 0.0;
  Stopwatch watch_;
};

}  // namespace mmog::obs
