#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace mmog::obs {

class Recorder;

/// Minimal dependency-free HTTP/1.0 server on POSIX sockets, for exposing
/// telemetry from a running simulation. One background thread accepts
/// loopback connections, parses `METHOD PATH`, calls the handler, writes
/// the response with Content-Length and closes. Not a general web server:
/// no keep-alive, no TLS, request line + headers capped at 8 KiB.
class HttpServer {
 public:
  struct Request {
    std::string method;
    std::string path;  ///< decoded-as-is, query string stripped
  };
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  using Handler = std::function<Response(const Request&)>;

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts the
  /// accept thread. Throws std::runtime_error when the socket cannot be
  /// created, bound or listened on.
  HttpServer(std::uint16_t port, Handler handler);
  ~HttpServer();  ///< stop() + join

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Joins the accept thread and closes the socket. Idempotent and safe to
  /// call from multiple threads: one caller wins, the rest return at once.
  void stop();

 private:
  void serve();

  // No mutex: handler_/port_ are written only before the accept thread
  // starts, and listen_fd_ only before start and after the stop() join, so
  // every cross-thread hand-off is ordered by the thread start/join (and
  // stop_ is the one flag both threads touch concurrently).
  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// The live-telemetry endpoint bundle served by `mmog_simulate --serve`:
/// binds an HttpServer whose routes render a Recorder's state on demand.
///
///   GET /metrics           Prometheus text exposition v0.0.4 of the
///                          registry snapshot (counters, gauges, histogram
///                          buckets)
///   GET /healthz           {"status":"ok","step":N,"alerts":{...}}
///   GET /alerts            alert-rule states (AlertEngine::to_json)
///   GET /timeseries.json   per-metric downsampled step series
///   GET /audit             decision-audit trail as JSONL (one record per
///                          line; empty when auditing is not enabled)
///
/// Every route reads mutex-guarded snapshots (the registry merges shards;
/// the store and engine copy under their own locks), so scrapes never
/// block or perturb the simulation thread. The recorder must outlive the
/// service.
class TelemetryService {
 public:
  TelemetryService(Recorder& recorder, std::uint16_t port);

  std::uint16_t port() const noexcept { return server_.port(); }
  void stop() { server_.stop(); }

  /// Route table shared with tests: answers one request against a
  /// recorder without a socket in the path.
  static HttpServer::Response handle(Recorder& recorder,
                                     const HttpServer::Request& request);

 private:
  HttpServer server_;
};

}  // namespace mmog::obs
