#include "obs/alerts.hpp"

#include <cmath>
#include <cstdio>

namespace mmog::obs {
namespace {

std::string format_value(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.15g", v);
  return buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

std::string_view alert_op_name(AlertOp op) noexcept {
  switch (op) {
    case AlertOp::kGt: return ">";
    case AlertOp::kLt: return "<";
    case AlertOp::kGe: return ">=";
    case AlertOp::kLe: return "<=";
    case AlertOp::kEq: return "==";
    case AlertOp::kNe: return "!=";
  }
  return "?";
}

std::string_view alert_state_name(AlertState state) noexcept {
  switch (state) {
    case AlertState::kInactive: return "inactive";
    case AlertState::kPending: return "pending";
    case AlertState::kFiring: return "firing";
    case AlertState::kResolved: return "resolved";
  }
  return "?";
}

bool AlertRule::matches(double sample) const noexcept {
  switch (op) {
    case AlertOp::kGt: return sample > value;
    case AlertOp::kLt: return sample < value;
    case AlertOp::kGe: return sample >= value;
    case AlertOp::kLe: return sample <= value;
    case AlertOp::kEq: return sample == value;
    case AlertOp::kNe: return sample != value;
  }
  return false;
}

AlertEngine::AlertEngine(std::vector<AlertRule> rules) {
  statuses_.reserve(rules.size());
  for (auto& rule : rules) {
    AlertStatus status;
    status.rule = std::move(rule);
    statuses_.push_back(std::move(status));
  }
}

std::vector<AlertTransition> AlertEngine::observe(
    std::uint64_t step, const std::vector<Sample>& samples) {
  std::vector<AlertTransition> transitions;
  util::MutexLock lock(mutex_);
  last_step_ = step;
  for (auto& status : statuses_) {
    bool breached = false;
    for (const auto& sample : samples) {
      if (sample.name != status.rule.metric) continue;
      status.last_value = sample.value;
      status.has_value = true;
      breached = status.rule.matches(sample.value);
      break;
    }
    if (breached) {
      if (status.state == AlertState::kInactive ||
          status.state == AlertState::kResolved) {
        status.state = AlertState::kPending;
        status.pending_since_step = step;
      }
      if (status.state == AlertState::kPending &&
          step - status.pending_since_step >= status.rule.for_steps) {
        status.state = AlertState::kFiring;
        status.firing_since_step = step;
        ++status.fired_count;
        transitions.push_back({AlertTransition::Kind::kFired,
                               status.rule.name, status.rule.metric, step,
                               status.last_value});
      }
    } else {
      if (status.state == AlertState::kFiring) {
        status.state = AlertState::kResolved;
        status.last_resolved_step = step;
        ++status.resolved_count;
        transitions.push_back({AlertTransition::Kind::kResolved,
                               status.rule.name, status.rule.metric, step,
                               status.last_value});
      } else if (status.state == AlertState::kPending) {
        // The breach cleared inside the debounce window: never fired.
        status.state = status.resolved_count > 0 ? AlertState::kResolved
                                                 : AlertState::kInactive;
      }
    }
  }
  return transitions;
}

std::size_t AlertEngine::rule_count() const {
  util::MutexLock lock(mutex_);
  return statuses_.size();
}

std::vector<AlertStatus> AlertEngine::statuses() const {
  util::MutexLock lock(mutex_);
  return statuses_;
}

std::size_t AlertEngine::count_in_state(AlertState state) const {
  util::MutexLock lock(mutex_);
  std::size_t n = 0;
  for (const auto& status : statuses_) {
    if (status.state == state) ++n;
  }
  return n;
}

std::string AlertEngine::to_json() const {
  util::MutexLock lock(mutex_);
  std::string out = "{\"step\":" + std::to_string(last_step_);
  out += ",\"alerts\":[";
  bool sep = false;
  for (const auto& status : statuses_) {
    if (sep) out += ',';
    sep = true;
    out += "{\"name\":";
    append_json_string(out, status.rule.name);
    out += ",\"metric\":";
    append_json_string(out, status.rule.metric);
    out += ",\"op\":";
    append_json_string(out, alert_op_name(status.rule.op));
    out += ",\"value\":" + format_value(status.rule.value);
    out += ",\"for_steps\":" + std::to_string(status.rule.for_steps);
    out += ",\"state\":";
    append_json_string(out, alert_state_name(status.state));
    out += ",\"fired_count\":" + std::to_string(status.fired_count);
    out += ",\"resolved_count\":" + std::to_string(status.resolved_count);
    if (status.state == AlertState::kPending ||
        status.state == AlertState::kFiring) {
      out += ",\"pending_since_step\":" +
             std::to_string(status.pending_since_step);
    }
    if (status.state == AlertState::kFiring) {
      out +=
          ",\"firing_since_step\":" + std::to_string(status.firing_since_step);
    }
    if (status.resolved_count > 0) {
      out +=
          ",\"last_resolved_step\":" + std::to_string(status.last_resolved_step);
    }
    if (status.has_value) {
      out += ",\"last_value\":" + format_value(status.last_value);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::vector<AlertRule> default_alert_rules(double event_threshold_pct) {
  std::vector<AlertRule> rules;
  rules.push_back({"underalloc", "core.underalloc_frac", AlertOp::kGt,
                   event_threshold_pct / 100.0, 5});
  rules.push_back({"sla-availability", "sla.availability_min_pct",
                   AlertOp::kLt, 99.0, 10});
  return rules;
}

}  // namespace mmog::obs
