#include "obs/jsonio.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace mmog::obs {

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw std::invalid_argument("json: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) {
    throw std::invalid_argument("json: not a number");
  }
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) {
    throw std::invalid_argument("json: not a string");
  }
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) throw std::invalid_argument("json: not an array");
  return array_;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  if (const JsonValue* v = find(key)) return *v;
  throw std::invalid_argument("json: missing key \"" + std::string(key) +
                              "\"");
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) {
    throw std::invalid_argument("json: not an object");
  }
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) {
    throw std::invalid_argument("json: not an object");
  }
  return object_;
}

JsonValue JsonValue::make_null() { return {}; }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json: " + what + " at offset " +
                                std::to_string(pos_));
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  void expect(char c) {
    skip_ws();
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (consume("true")) return JsonValue::make_bool(true);
        fail("bad literal");
      case 'f':
        if (consume("false")) return JsonValue::make_bool(false);
        fail("bad literal");
      case 'n':
        if (consume("null")) return JsonValue::make_null();
        fail("bad literal");
      default: return JsonValue::make_number(parse_number());
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    expect('}');
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    expect(']');
    return JsonValue::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("dangling escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          const auto res = std::from_chars(s_.data() + pos_,
                                           s_.data() + pos_ + 4, code, 16);
          if (res.ptr != s_.data() + pos_ + 4) fail("bad \\u escape");
          pos_ += 4;
          // The repo's writers only emit \u00XX for control bytes; wider
          // code points pass through as a single truncated byte.
          out += static_cast<char>(code & 0xff);
          break;
        }
        default: fail("unsupported escape");
      }
    }
    if (pos_ >= s_.size()) fail("unterminated string");
    ++pos_;
    return out;
  }

  double parse_number() {
    skip_ws();
    const std::size_t begin = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (begin == pos_) fail("expected number");
    double value = 0.0;
    const auto res =
        std::from_chars(s_.data() + begin, s_.data() + pos_, value);
    if (res.ec != std::errc() || res.ptr != s_.data() + pos_) {
      fail("malformed number");
    }
    return value;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace mmog::obs
