#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/alerts.hpp"

namespace mmog::obs {

/// Parses one alert directive, mirroring the --fault grammar:
///
///   name:key=value,key=value,...
///
/// with keys
///
///   metric=NAME   sampled live metric the rule watches (required)
///   op=OP         comparator, one of > < >= <= == != (default >)
///   value=F       threshold (required)
///   for=DUR       debounce: the condition must hold this long before the
///                 rule fires; steps or s/m/h/d/w suffixes (default 0)
///
/// e.g. "underalloc:metric=core.underalloc_frac,op=>,value=0.01,for=5".
/// Throws std::invalid_argument with the offending token named.
AlertRule parse_alert_rule(std::string_view text);

/// Parses a ';'-separated list of alert directives (empty input -> empty).
std::vector<AlertRule> parse_alert_rules(std::string_view text);

/// Compact round-trippable description, for logs and --help output.
std::string describe(const AlertRule& rule);

}  // namespace mmog::obs
