#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace mmog::obs {

/// Why a candidate data center did or did not serve (part of) a request.
/// One entry per center the matcher's candidate walk actually visited —
/// centers outside the game's latency tolerance never enter the walk (they
/// are rejected once, up front, per request stream).
enum class OfferOutcome : std::uint8_t {
  kGranted = 0,             ///< offer accepted; `cpu` CPU units rented
  kRejectedOutage,          ///< center down (fault schedule)
  kRejectedLatencyDegraded, ///< latency fault pushed it past tolerance
  kRejectedBackoff,         ///< excluded by the resilience backoff window
  kRejectedBulk,            ///< CPU bulk cannot cut a usable offer
  kRejectedAmount,          ///< nothing (left) to offer
  kGrantFlapped,            ///< offer accepted but the grant never materialized
};

std::string_view offer_outcome_name(OfferOutcome outcome);
/// Inverse of offer_outcome_name; throws std::invalid_argument.
OfferOutcome offer_outcome_from_name(std::string_view name);

/// What kind of provisioning decision a record captures.
enum class AuditKind : std::uint8_t {
  kMatch = 0,     ///< regular per-step match-phase decision (release+acquire)
  kReplace,       ///< same-step resilient re-placement after a fault loss
  kStatic,        ///< one-shot static provisioning at step 0
  kForceRelease,  ///< eviction: outage / latency / capacity fault, or shed
};

std::string_view audit_kind_name(AuditKind kind);
/// Inverse of audit_kind_name; throws std::invalid_argument.
AuditKind audit_kind_from_name(std::string_view name);

/// One visited candidate in a decision's offer walk, in walk order.
struct AuditOffer {
  std::uint32_t dc = 0;  ///< data-center index in the run's configuration
  OfferOutcome outcome = OfferOutcome::kRejectedAmount;
  double cpu = 0.0;      ///< CPU units granted (kGranted only)
  /// Outcome-specific detail: for kRejectedBackoff / kGrantFlapped the
  /// first step at which the center becomes eligible again; 0 otherwise.
  std::uint64_t until_step = 0;

  friend bool operator==(const AuditOffer&, const AuditOffer&) = default;
};

/// Sentinel for AuditRecord::dc: no data center was chosen.
inline constexpr std::int32_t kAuditNoDc = -1;

/// One compact record per provisioning decision: what the predictor said,
/// how much safety margin the §V-C mechanism added, which centers the
/// matcher walk visited and why each was taken or skipped, and what the
/// demand actually turned out to be. Every field is deterministic for a
/// fixed configuration and seed — no wall-clock values — so same-seed runs
/// produce byte-identical trails at any thread count.
struct AuditRecord {
  std::uint64_t seq = 0;   ///< assigned by the trail in recording order
  std::uint64_t step = 0;
  AuditKind kind = AuditKind::kMatch;
  std::uint32_t game = 0;  ///< game index in the run's configuration
  std::string region;      ///< demand unit = one game in one region
  /// Demand pipeline (decision kinds; zero for kForceRelease).
  double predicted_players = 0.0;  ///< sum of per-group predictions
  double actual_players = 0.0;     ///< materialized load of the same step
  double margin_cpu = 0.0;    ///< CPU added by the safety padding (§V-C)
  double demand_cpu = 0.0;    ///< padded demand through the load model
  double held_cpu = 0.0;      ///< CPU held before this decision
  double released_cpu = 0.0;  ///< planned releases (kMatch) or eviction size
  double requested_cpu = 0.0; ///< missing difference sent to the matcher
  double granted_cpu = 0.0;
  double unmet_cpu = 0.0;     ///< shortfall left after the walk
  /// Chosen center: the first granting data center of the walk, or for
  /// kForceRelease the center the allocation was evicted from. kAuditNoDc
  /// when no center granted.
  std::int32_t dc = kAuditNoDc;
  /// Fault / policy cause: "outage", "latency", "capacity" or "shed" for
  /// kForceRelease; empty otherwise.
  std::string cause;
  std::uint64_t alloc_id = 0;  ///< evicted allocation (kForceRelease only)
  std::vector<AuditOffer> offers;  ///< visited candidates, walk order

  friend bool operator==(const AuditRecord&, const AuditRecord&) = default;
};

/// Append-only decision log. The simulation thread appends (batched per
/// step, after the step's actual demand is known); the telemetry thread
/// reads snapshots through the same mutex, so `GET /audit` can serve a
/// consistent prefix of a live run. Content is deterministic; only the
/// *existence* of the trail is an observability choice.
class AuditTrail {
 public:
  /// Appends one record, assigning the next sequence number.
  void append(AuditRecord record) EXCLUDES(mutex_);

  /// Appends a whole step's records in order under one lock acquisition,
  /// assigning consecutive sequence numbers; `batch` is left empty.
  void append_batch(std::vector<AuditRecord>& batch) EXCLUDES(mutex_);

  std::size_t size() const EXCLUDES(mutex_);
  std::vector<AuditRecord> records() const
      EXCLUDES(mutex_);  ///< copy, in recording order

  /// One JSON object per line; keys are fixed and always present, so a
  /// trail's bytes are a stable function of its records:
  /// {"seq":N,"step":N,"kind":"match",...,"offers":[{...}]}
  void write_jsonl(std::ostream& out) const EXCLUDES(mutex_);
  std::string to_jsonl() const EXCLUDES(mutex_);

 private:
  mutable util::Mutex mutex_;
  std::vector<AuditRecord> records_ GUARDED_BY(mutex_);
  std::uint64_t next_seq_ GUARDED_BY(mutex_) = 0;
};

/// Serializes one record as its JSONL line (no trailing newline).
std::string audit_record_to_json(const AuditRecord& record);

/// Parses a stream produced by AuditTrail::write_jsonl back into records.
/// Blank lines are skipped; throws std::invalid_argument on malformed
/// lines.
std::vector<AuditRecord> read_audit_jsonl(std::istream& in);

}  // namespace mmog::obs
