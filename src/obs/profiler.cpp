#include "obs/profiler.hpp"

#include <unistd.h>

#include <cstdio>

#include "obs/registry.hpp"
#include "obs/report.hpp"

namespace mmog::obs {

void ResourceProfiler::begin_run(std::uint64_t total_groups) noexcept {
  run_start_ = std::chrono::steady_clock::now();
  total_groups_ = total_groups;
}

void ResourceProfiler::note_step(Registry& registry,
                                 std::uint64_t steps_done) {
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    run_start_)
          .count();
  const double steps_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(steps_done) / elapsed_s : 0.0;
  const double group_steps_per_sec =
      steps_per_sec * static_cast<double>(total_groups_);
  const std::uint64_t current_kb = obs::current_rss_kb();
  const std::uint64_t peak_kb = current_peak_rss_kb();

  steps_per_sec_.store(steps_per_sec, std::memory_order_relaxed);
  group_steps_per_sec_.store(group_steps_per_sec, std::memory_order_relaxed);
  current_rss_kb_.store(current_kb, std::memory_order_relaxed);
  peak_rss_kb_.store(peak_kb, std::memory_order_relaxed);

  registry.set("sim.steps_per_sec", steps_per_sec);
  registry.set("sim.group_steps_per_sec", group_steps_per_sec);
  registry.set("proc.current_rss_kb", static_cast<double>(current_kb));
  registry.set("proc.peak_rss_kb", static_cast<double>(peak_kb));
}

std::uint64_t current_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size_pages = 0;
  unsigned long long resident_pages = 0;
  const int matched =
      std::fscanf(f, "%llu %llu", &size_pages, &resident_pages);
  std::fclose(f);
  if (matched != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return resident_pages * static_cast<unsigned long long>(page) / 1024;
}

}  // namespace mmog::obs
