#include "obs/export_prometheus.hpp"

#include <cmath>
#include <cstdio>

namespace mmog::obs {
namespace {

bool valid_first(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool valid_rest(char c) { return valid_first(c) || (c >= '0' && c <= '9'); }

/// Shortest round-trip-ish rendering: integers print without an exponent
/// or trailing ".0" (bucket counts, step counts), everything else as %.15g.
std::string format_value(double v) {
  if (!std::isfinite(v)) {
    if (std::isnan(v)) return "NaN";
    return v > 0 ? "+Inf" : "-Inf";
  }
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.15g", v);
  return buf;
}

}  // namespace

std::string sanitize_prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) out += valid_rest(c) ? c : '_';
  if (out.empty() || !valid_first(out.front())) out.insert(out.begin(), '_');
  return out;
}

std::string to_prometheus(const Snapshot& snapshot) {
  std::string out;
  // Which metric (as "<section> <registry name>") owns each exported
  // Prometheus name. Two distinct metrics whose names sanitize to the same
  // string would otherwise produce duplicate series that a scraper merges
  // or rejects silently; instead the later one (exporter order is
  // deterministic: counters, gauges, histograms, each name-sorted) gets a
  // numbered "_2"/"_3" suffix and a comment line pointing at the original.
  std::map<std::string, std::string> owner_by_prom;
  auto resolve = [&](std::string_view section, const std::string& name) {
    const std::string owner = std::string(section) + ' ' + name;
    std::string prom = sanitize_prometheus_name(name);
    if (owner_by_prom.emplace(prom, owner).second) return prom;
    for (std::size_t i = 2;; ++i) {
      std::string candidate = prom + '_' + std::to_string(i);
      if (owner_by_prom.emplace(candidate, owner).second) {
        out += "# NOTE " + candidate + " renamed from " + owner +
               ": sanitized name " + prom + " already taken by " +
               owner_by_prom.at(prom) + '\n';
        return candidate;
      }
    }
  };
  auto type_line = [&out](const std::string& name, std::string_view type) {
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
  };
  for (const auto& [name, value] : snapshot.counters) {
    const auto prom = resolve("counter", name);
    type_line(prom, "counter");
    out += prom + ' ' + format_value(value) + '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const auto prom = resolve("gauge", name);
    type_line(prom, "gauge");
    out += prom + ' ' + format_value(value) + '\n';
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const auto prom = resolve("histogram", name);
    type_line(prom, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.counts.size() ? h.counts[i] : 0;
      out += prom + "_bucket{le=\"" + format_value(h.bounds[i]) + "\"} " +
             format_value(static_cast<double>(cumulative)) + '\n';
    }
    out += prom + "_bucket{le=\"+Inf\"} " +
           format_value(static_cast<double>(h.count)) + '\n';
    out += prom + "_sum " + format_value(h.sum) + '\n';
    out += prom + "_count " + format_value(static_cast<double>(h.count)) +
           '\n';
  }
  return out;
}

}  // namespace mmog::obs
