#include "obs/bench_report.hpp"

#include <sys/utsname.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/jsonio.hpp"
#include "util/table.hpp"

namespace mmog::obs {
namespace {

std::uint64_t fnv1a64(std::string_view data, std::uint64_t hash) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kPrime;
  }
  return hash;
}

std::string quoted(std::string_view s) {
  std::string out = "\"";
  append_json_escaped(out, s);
  out += '"';
  return out;
}

std::uint64_t as_u64(const JsonValue& v) {
  return static_cast<std::uint64_t>(v.as_number());
}

/// Relative drift of `candidate` vs `base` in percent; 0 when both zero.
double rel_pct(double base, double candidate) {
  const double delta = std::fabs(candidate - base);
  if (base != 0.0) return 100.0 * delta / std::fabs(base);
  return delta > 0.0 ? 100.0 : 0.0;
}

std::string fmt(const char* format, double a, double b, double pct) {
  char buf[192];
  std::snprintf(buf, sizeof buf, format, a, b, pct);
  return buf;
}

}  // namespace

std::string BenchMachine::fingerprint() const {
  std::uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  for (const std::string& part :
       {os, release, arch, std::to_string(cpus),
        std::to_string(page_size)}) {
    hash = fnv1a64(part, hash);
    hash = fnv1a64("\n", hash);
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

BenchMachine collect_bench_machine() {
  BenchMachine m;
  utsname u{};
  if (uname(&u) == 0) {
    m.os = u.sysname;
    m.release = u.release;
    m.arch = u.machine;
  }
  const long cpus = sysconf(_SC_NPROCESSORS_ONLN);
  m.cpus = cpus > 0 ? static_cast<std::uint64_t>(cpus) : 0;
  const long page = sysconf(_SC_PAGESIZE);
  m.page_size = page > 0 ? static_cast<std::uint64_t>(page) : 0;
  return m;
}

std::vector<MicroResult> parse_google_benchmark_json(std::string_view json) {
  const JsonValue doc = parse_json(json);
  std::vector<MicroResult> out;
  const JsonValue* benchmarks = doc.find("benchmarks");
  if (benchmarks == nullptr) {
    throw std::invalid_argument(
        "google-benchmark json: missing \"benchmarks\" array");
  }
  for (const JsonValue& item : benchmarks->as_array()) {
    // Repetition aggregates (run_type "aggregate": _mean/_median/_stddev
    // rows) would double-count the plain iteration rows.
    if (const JsonValue* run_type = item.find("run_type");
        run_type != nullptr && run_type->as_string() != "iteration") {
      continue;
    }
    MicroResult r;
    r.name = item.at("name").as_string();
    r.iterations = as_u64(item.at("iterations"));
    double scale = 1.0;  // google-benchmark defaults to nanoseconds
    if (const JsonValue* unit = item.find("time_unit")) {
      const std::string& u = unit->as_string();
      if (u == "ns") {
        scale = 1e-3;
      } else if (u == "us") {
        scale = 1.0;
      } else if (u == "ms") {
        scale = 1e3;
      } else if (u == "s") {
        scale = 1e6;
      }
    } else {
      scale = 1e-3;
    }
    r.real_time_us = item.at("real_time").as_number() * scale;
    r.cpu_time_us = item.at("cpu_time").as_number() * scale;
    out.push_back(std::move(r));
  }
  return out;
}

std::string BenchReport::to_json() const {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":" + std::to_string(kSchemaVersion);
  out += ",\"kind\":" + quoted(kKind);
  out += ",\"tool\":" + quoted(tool);
  out += ",\"machine\":{";
  out += "\"os\":" + quoted(machine.os);
  out += ",\"release\":" + quoted(machine.release);
  out += ",\"arch\":" + quoted(machine.arch);
  out += ",\"cpus\":" + std::to_string(machine.cpus);
  out += ",\"page_size\":" + std::to_string(machine.page_size);
  out += ",\"fingerprint\":" + quoted(machine.fingerprint());
  out += "},\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const BenchRun& run = runs[i];
    if (i) out += ',';
    out += "{\"label\":" + quoted(run.label);
    out += ",\"groups\":" + std::to_string(run.groups);
    out += ",\"threads\":" + std::to_string(run.threads);
    out += ",\"steps\":" + std::to_string(run.steps);
    out += ",\"wall_seconds\":" + json_double(run.wall_seconds);
    out += ",\"steps_per_sec\":" + json_double(run.steps_per_sec);
    out += ",\"group_steps_per_sec\":" +
           json_double(run.group_steps_per_sec);
    out += ",\"allocs_per_step\":" + json_double(run.allocs_per_step);
    out += ",\"alloc_bytes_per_step\":" +
           json_double(run.alloc_bytes_per_step);
    out += ",\"peak_rss_kb\":" + std::to_string(run.peak_rss_kb);
    out += ",\"phases\":[";
    for (std::size_t p = 0; p < run.phases.size(); ++p) {
      const BenchPhase& phase = run.phases[p];
      if (p) out += ',';
      out += "{\"name\":" + quoted(phase.name);
      out += ",\"count\":" + std::to_string(phase.count);
      out += ",\"p50_us\":" + json_double(phase.p50_us);
      out += ",\"p95_us\":" + json_double(phase.p95_us);
      out += ",\"mean_us\":" + json_double(phase.mean_us);
      out += ",\"max_us\":" + json_double(phase.max_us);
      out += ",\"allocs_per_step\":" + json_double(phase.allocs_per_step);
      out += ",\"alloc_bytes_per_step\":" +
             json_double(phase.alloc_bytes_per_step);
      out += '}';
    }
    out += "]}";
  }
  out += "],\"micro\":[";
  for (std::size_t i = 0; i < micro.size(); ++i) {
    const MicroResult& m = micro[i];
    if (i) out += ',';
    out += "{\"name\":" + quoted(m.name);
    out += ",\"iterations\":" + std::to_string(m.iterations);
    out += ",\"real_time_us\":" + json_double(m.real_time_us);
    out += ",\"cpu_time_us\":" + json_double(m.cpu_time_us);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string BenchReport::summary_table() const {
  std::string out;
  util::TextTable table({"Run", "Groups", "Threads", "Steps", "Steps/s",
                         "Group-steps/s", "Allocs/step", "KiB/step",
                         "Peak RSS MiB"});
  for (const BenchRun& run : runs) {
    table.add_row({run.label, std::to_string(run.groups),
                   std::to_string(run.threads), std::to_string(run.steps),
                   util::TextTable::num(run.steps_per_sec, 1),
                   util::TextTable::num(run.group_steps_per_sec, 0),
                   util::TextTable::num(run.allocs_per_step, 1),
                   util::TextTable::num(run.alloc_bytes_per_step / 1024.0,
                                        1),
                   util::TextTable::num(
                       static_cast<double>(run.peak_rss_kb) / 1024.0, 1)});
  }
  out += table.to_string();
  if (!micro.empty()) {
    util::TextTable micro_table(
        {"Micro benchmark", "Iterations", "Real us", "CPU us"});
    for (const MicroResult& m : micro) {
      micro_table.add_row({m.name, std::to_string(m.iterations),
                           util::TextTable::num(m.real_time_us, 3),
                           util::TextTable::num(m.cpu_time_us, 3)});
    }
    out += '\n';
    out += micro_table.to_string();
  }
  return out;
}

BenchReport BenchReport::parse(std::string_view json) {
  const JsonValue doc = parse_json(json);
  if (static_cast<int>(doc.at("schema").as_number()) != kSchemaVersion) {
    throw std::invalid_argument("bench: unsupported schema version");
  }
  if (doc.at("kind").as_string() != kKind) {
    throw std::invalid_argument("bench: not a " + std::string(kKind) +
                                " artifact");
  }
  BenchReport report;
  report.tool = doc.at("tool").as_string();
  const JsonValue& machine = doc.at("machine");
  report.machine.os = machine.at("os").as_string();
  report.machine.release = machine.at("release").as_string();
  report.machine.arch = machine.at("arch").as_string();
  report.machine.cpus = as_u64(machine.at("cpus"));
  report.machine.page_size = as_u64(machine.at("page_size"));
  for (const JsonValue& item : doc.at("runs").as_array()) {
    BenchRun run;
    run.label = item.at("label").as_string();
    run.groups = as_u64(item.at("groups"));
    run.threads = as_u64(item.at("threads"));
    run.steps = as_u64(item.at("steps"));
    run.wall_seconds = item.at("wall_seconds").as_number();
    run.steps_per_sec = item.at("steps_per_sec").as_number();
    run.group_steps_per_sec = item.at("group_steps_per_sec").as_number();
    run.allocs_per_step = item.at("allocs_per_step").as_number();
    run.alloc_bytes_per_step = item.at("alloc_bytes_per_step").as_number();
    run.peak_rss_kb = as_u64(item.at("peak_rss_kb"));
    for (const JsonValue& pj : item.at("phases").as_array()) {
      BenchPhase phase;
      phase.name = pj.at("name").as_string();
      phase.count = as_u64(pj.at("count"));
      phase.p50_us = pj.at("p50_us").as_number();
      phase.p95_us = pj.at("p95_us").as_number();
      phase.mean_us = pj.at("mean_us").as_number();
      phase.max_us = pj.at("max_us").as_number();
      phase.allocs_per_step = pj.at("allocs_per_step").as_number();
      phase.alloc_bytes_per_step =
          pj.at("alloc_bytes_per_step").as_number();
      run.phases.push_back(std::move(phase));
    }
    report.runs.push_back(std::move(run));
  }
  for (const JsonValue& item : doc.at("micro").as_array()) {
    MicroResult m;
    m.name = item.at("name").as_string();
    m.iterations = as_u64(item.at("iterations"));
    m.real_time_us = item.at("real_time_us").as_number();
    m.cpu_time_us = item.at("cpu_time_us").as_number();
    report.micro.push_back(std::move(m));
  }
  return report;
}

DiffResult diff_bench(const BenchReport& baseline,
                      const BenchReport& candidate,
                      const BenchDiffOptions& options) {
  DiffResult result;
  auto& notes = result.notes;
  if (baseline.machine.fingerprint() != candidate.machine.fingerprint()) {
    notes.push_back("machine: " + baseline.machine.fingerprint() + " (" +
                    baseline.machine.arch + "/" +
                    std::to_string(baseline.machine.cpus) + " cpus) vs " +
                    candidate.machine.fingerprint() + " (" +
                    candidate.machine.arch + "/" +
                    std::to_string(candidate.machine.cpus) +
                    " cpus) — timing numbers are not comparable");
  }

  // Allocation drift: machine-independent, gated in both directions (a
  // large "improvement" usually means the workload silently changed).
  auto check_allocs = [&](const std::string& what, double base,
                          double cand) {
    if (options.alloc_tolerance_pct < 0.0) return;
    const double pct = rel_pct(base, cand);
    if (pct > options.alloc_tolerance_pct) {
      result.outcome_identical = false;
      notes.push_back(what + ": " +
                      fmt("%.1f -> %.1f (%.1f %% drift)", base, cand, pct) +
                      " beyond " +
                      json_double(options.alloc_tolerance_pct) +
                      " % alloc tolerance");
    }
  };
  // Timing: only the regression direction fails, and only when enabled.
  auto check_slower = [&](const std::string& what, double base_better,
                          double cand_worse, double pct) {
    if (options.timing_tolerance_pct < 0.0) return;
    if (pct > options.timing_tolerance_pct) {
      result.timing_ok = false;
      notes.push_back(what + ": " +
                      fmt("%.2f -> %.2f (%.1f %% slower)", base_better,
                          cand_worse, pct) +
                      " beyond " +
                      json_double(options.timing_tolerance_pct) +
                      " % timing tolerance");
    }
  };

  std::size_t paired = 0;
  for (const BenchRun& base : baseline.runs) {
    const BenchRun* cand = nullptr;
    for (const BenchRun& c : candidate.runs) {
      if (c.label == base.label) {
        cand = &c;
        break;
      }
    }
    if (cand == nullptr) {
      result.outcome_identical = false;
      notes.push_back("run \"" + base.label +
                      "\": only in baseline (sweep shrank)");
      continue;
    }
    ++paired;
    const std::string prefix = "run \"" + base.label + "\" ";
    check_allocs(prefix + "allocs/step", base.allocs_per_step,
                 cand->allocs_per_step);
    check_allocs(prefix + "bytes/step", base.alloc_bytes_per_step,
                 cand->alloc_bytes_per_step);
    if (cand->steps_per_sec < base.steps_per_sec) {
      check_slower(prefix + "steps/s", base.steps_per_sec,
                   cand->steps_per_sec,
                   rel_pct(base.steps_per_sec, cand->steps_per_sec));
    }
    for (const BenchPhase& bp : base.phases) {
      const BenchPhase* cp = nullptr;
      for (const BenchPhase& c : cand->phases) {
        if (c.name == bp.name) {
          cp = &c;
          break;
        }
      }
      if (cp == nullptr) continue;  // phase sets may differ across modes
      check_allocs(prefix + "phase " + bp.name + " allocs/step",
                   bp.allocs_per_step, cp->allocs_per_step);
      if (cp->p50_us > bp.p50_us) {
        check_slower(prefix + "phase " + bp.name + " p50", bp.p50_us,
                     cp->p50_us, rel_pct(bp.p50_us, cp->p50_us));
      }
    }
    if (options.rss_tolerance_pct >= 0.0 &&
        cand->peak_rss_kb > base.peak_rss_kb) {
      const double pct = rel_pct(static_cast<double>(base.peak_rss_kb),
                                 static_cast<double>(cand->peak_rss_kb));
      if (pct > options.rss_tolerance_pct) {
        result.timing_ok = false;
        notes.push_back(prefix + "peak RSS: " +
                        std::to_string(base.peak_rss_kb) + " KiB -> " +
                        std::to_string(cand->peak_rss_kb) + " KiB (" +
                        json_double(pct) + " % growth) beyond " +
                        json_double(options.rss_tolerance_pct) +
                        " % rss tolerance");
      }
    }
  }
  if (paired < candidate.runs.size()) {
    for (const BenchRun& c : candidate.runs) {
      bool found = false;
      for (const BenchRun& base : baseline.runs) {
        found = found || base.label == c.label;
      }
      if (!found) {
        notes.push_back("run \"" + c.label +
                        "\": only in candidate (new sweep cell)");
      }
    }
  }
  for (const MicroResult& base : baseline.micro) {
    const MicroResult* cand = nullptr;
    for (const MicroResult& c : candidate.micro) {
      if (c.name == base.name) {
        cand = &c;
        break;
      }
    }
    if (cand == nullptr) {
      notes.push_back("micro \"" + base.name + "\": only in baseline");
      continue;
    }
    if (cand->real_time_us > base.real_time_us) {
      check_slower("micro \"" + base.name + "\" real time",
                   base.real_time_us, cand->real_time_us,
                   rel_pct(base.real_time_us, cand->real_time_us));
    }
  }
  return result;
}

}  // namespace mmog::obs
