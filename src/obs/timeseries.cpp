#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/csv.hpp"

namespace mmog::obs {
namespace {

std::string format_value(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.15g", v);
  return buf;
}

}  // namespace

TimeSeriesBuffer::TimeSeriesBuffer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(2, capacity + (capacity & 1))) {
  points_.reserve(capacity_);
}

void TimeSeriesBuffer::push(double value) {
  acc_ += value;
  ++acc_n_;
  ++total_;
  if (acc_n_ < stride_) return;
  points_.push_back(acc_ / static_cast<double>(stride_));
  acc_ = 0.0;
  acc_n_ = 0;
  if (points_.size() < capacity_) return;
  // Compact: average adjacent pairs, halve the resolution, double the
  // stride. Runs right after a full point was appended, so the in-progress
  // accumulator is always empty here.
  for (std::size_t i = 0; i + 1 < points_.size(); i += 2) {
    points_[i / 2] = 0.5 * (points_[i] + points_[i + 1]);
  }
  points_.resize(points_.size() / 2);
  stride_ *= 2;
}

bool TimeSeriesBuffer::partial(double* mean_out) const noexcept {
  if (acc_n_ == 0) return false;
  if (mean_out) *mean_out = acc_ / static_cast<double>(acc_n_);
  return true;
}

TimeSeriesStore::TimeSeriesStore(std::size_t capacity_per_series)
    : capacity_(capacity_per_series) {}

void TimeSeriesStore::append(std::uint64_t step,
                             const std::vector<Sample>& samples) {
  util::MutexLock lock(mutex_);
  for (const auto& sample : samples) {
    auto it = series_.find(sample.name);
    if (it == series_.end()) {
      it = series_
               .emplace(sample.name,
                        Series{step, TimeSeriesBuffer(capacity_)})
               .first;
    }
    it->second.buffer.push(sample.value);
  }
}

std::size_t TimeSeriesStore::series_count() const {
  util::MutexLock lock(mutex_);
  return series_.size();
}

std::vector<std::string> TimeSeriesStore::names() const {
  util::MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, series] : series_) out.push_back(name);
  return out;
}

std::string TimeSeriesStore::to_json() const {
  util::MutexLock lock(mutex_);
  std::string out = "{\"series\":[";
  bool sep = false;
  for (const auto& [name, series] : series_) {
    if (sep) out += ',';
    sep = true;
    const auto& buf = series.buffer;
    out += "{\"name\":\"";
    for (char c : name) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\",\"start_step\":" + std::to_string(series.start_step);
    out += ",\"stride\":" + std::to_string(buf.stride());
    out += ",\"samples_seen\":" + std::to_string(buf.samples_seen());
    out += ",\"points\":[";
    for (std::size_t i = 0; i < buf.points().size(); ++i) {
      if (i) out += ',';
      out += format_value(buf.points()[i]);
    }
    double tail = 0.0;
    if (buf.partial(&tail)) {
      if (!buf.points().empty()) out += ',';
      out += format_value(tail);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string TimeSeriesStore::to_csv() const {
  util::MutexLock lock(mutex_);
  std::string out = "name,step,value\n";
  for (const auto& [name, series] : series_) {
    const auto& buf = series.buffer;
    const std::string escaped = util::csv_escape(name);
    auto row = [&](std::size_t index, double value) {
      out += escaped + ',' +
             std::to_string(series.start_step +
                            index * static_cast<std::uint64_t>(buf.stride())) +
             ',' + format_value(value) + '\n';
    };
    for (std::size_t i = 0; i < buf.points().size(); ++i) {
      row(i, buf.points()[i]);
    }
    double tail = 0.0;
    if (buf.partial(&tail)) row(buf.points().size(), tail);
  }
  return out;
}

}  // namespace mmog::obs
