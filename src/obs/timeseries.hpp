#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace mmog::obs {

/// One named value sampled at a simulation step for live telemetry. The
/// simulator builds the vector once (names are stable across steps) and
/// rewrites the values each step, so per-step sampling never allocates.
struct Sample {
  std::string name;
  double value = 0.0;
};

/// Fixed-capacity downsampling buffer for one metric's per-step samples.
///
/// Samples are appended in step order at stride 1. When the buffer reaches
/// capacity, adjacent point pairs are averaged in place — halving the
/// resolution and doubling the stride — like a compacting flight recorder:
/// a 500k-step run always fits in `capacity` points, each covering
/// `stride()` consecutive steps, with the full run span retained.
class TimeSeriesBuffer {
 public:
  /// Capacity is clamped to an even value >= 2 so compaction always pairs.
  explicit TimeSeriesBuffer(std::size_t capacity);

  void push(double value);

  std::size_t capacity() const noexcept { return capacity_; }
  /// Steps covered by each stored point (a power of two).
  std::size_t stride() const noexcept { return stride_; }
  /// Total samples pushed (across all compactions).
  std::size_t samples_seen() const noexcept { return total_; }
  /// Completed points, oldest first; each is the mean of `stride()` samples.
  const std::vector<double>& points() const noexcept { return points_; }
  /// Mean of the trailing samples not yet forming a full point, if any.
  bool partial(double* mean_out) const noexcept;

 private:
  std::size_t capacity_;
  std::size_t stride_ = 1;
  std::vector<double> points_;
  double acc_ = 0.0;        ///< sum of the in-progress stride window
  std::size_t acc_n_ = 0;   ///< samples in the in-progress window
  std::size_t total_ = 0;
};

/// Named collection of TimeSeriesBuffer, guarded for one writer (the
/// simulation thread appending each step) and concurrent readers (the HTTP
/// thread serializing). Buffers are created on first append of a name and
/// record the step of their first sample.
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(std::size_t capacity_per_series = 512);

  /// Appends one step's samples; creates series on first sight.
  void append(std::uint64_t step, const std::vector<Sample>& samples)
      EXCLUDES(mutex_);

  std::size_t series_count() const EXCLUDES(mutex_);
  std::vector<std::string> names() const EXCLUDES(mutex_);

  /// {"series":[{"name":..,"start_step":N,"stride":N,"samples_seen":N,
  ///             "points":[..]}, ...]} — points include the trailing
  /// partial window so the most recent steps are always visible.
  std::string to_json() const;

  /// Long-format CSV "name,step,value" (RFC-4180-escaped names); `step` is
  /// the first step each point covers.
  std::string to_csv() const;

 private:
  struct Series {
    std::uint64_t start_step = 0;
    TimeSeriesBuffer buffer;
  };

  std::size_t capacity_;
  mutable util::Mutex mutex_;
  std::map<std::string, Series, std::less<>> series_ GUARDED_BY(mutex_);
};

}  // namespace mmog::obs
