#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mmog::obs {

/// Appends `s` to `out` with JSON string escaping (quotes, backslash,
/// control bytes as \u00XX).
void append_json_escaped(std::string& out, std::string_view s);

/// Shortest decimal rendering that round-trips the exact double
/// (std::to_chars): equal strings iff equal bits, so serialized values can
/// be compared byte-for-byte without a tolerance. Non-finite values render
/// as 0 (JSON has no Inf/NaN).
std::string json_double(double v);

/// A parsed JSON value: the minimal dynamic representation the audit and
/// report readers need. Object keys keep the document's order alongside a
/// lookup index; numbers are always double (the writers only emit doubles
/// and unsigned integers that fit one).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;

  /// Object member by key; throws std::invalid_argument when absent or not
  /// an object. `find` returns nullptr instead.
  const JsonValue& at(std::string_view key) const;
  const JsonValue* find(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one JSON document (object, array, or scalar). Strict enough for
/// the repo's own writers plus hand-edited fixtures: throws
/// std::invalid_argument with an offset on malformed input or trailing
/// garbage.
JsonValue parse_json(std::string_view text);

}  // namespace mmog::obs
