#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/timeseries.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace mmog::obs {

enum class AlertOp { kGt, kLt, kGe, kLe, kEq, kNe };

std::string_view alert_op_name(AlertOp op) noexcept;  ///< ">", "<", ...

/// One SLA/metric alert rule: fire when `metric op value` has held
/// continuously for `for_steps` simulation steps. `for_steps == 0` fires on
/// the first breaching sample; `for_steps == k` stays *pending* until the
/// condition has held from step t through step t+k (k steps of simulated
/// time, i.e. k+1 consecutive samples) — the Prometheus `for:` debounce.
struct AlertRule {
  std::string name;
  std::string metric;
  AlertOp op = AlertOp::kGt;
  double value = 0.0;
  std::size_t for_steps = 0;

  bool matches(double sample) const noexcept;
};

/// pending -> firing -> resolved; kInactive is "never breached since the
/// last resolve" and kResolved is the latched post-firing rest state (so a
/// dashboard can tell "recovered" from "never fired").
enum class AlertState { kInactive, kPending, kFiring, kResolved };

std::string_view alert_state_name(AlertState state) noexcept;

/// Point-in-time view of one rule inside the engine.
struct AlertStatus {
  AlertRule rule;
  AlertState state = AlertState::kInactive;
  std::uint64_t pending_since_step = 0;   ///< valid when pending or firing
  std::uint64_t firing_since_step = 0;    ///< valid when firing
  std::uint64_t last_resolved_step = 0;   ///< valid when resolved_count > 0
  std::uint64_t fired_count = 0;
  std::uint64_t resolved_count = 0;
  double last_value = 0.0;  ///< last observed sample of rule.metric
  bool has_value = false;   ///< the metric has been seen at least once
};

/// One pending->firing or firing->resolved edge, returned by observe() so
/// the caller (Recorder) can emit tracer instants and registry counters.
struct AlertTransition {
  enum class Kind { kFired, kResolved };
  Kind kind = Kind::kFired;
  std::string rule_name;
  std::string metric;
  std::uint64_t step = 0;
  double value = 0.0;
};

/// Evaluates a fixed rule set against each step's live samples. A metric
/// missing from a step's sample set counts as "condition false" (the rule
/// cannot breach on data it does not have). Thread-safe: the simulation
/// thread calls observe() while the HTTP thread reads statuses()/to_json().
class AlertEngine {
 public:
  explicit AlertEngine(std::vector<AlertRule> rules);

  /// Feeds one step; returns the transitions that edge caused (in rule
  /// order), already applied to the internal state machine.
  std::vector<AlertTransition> observe(std::uint64_t step,
                                       const std::vector<Sample>& samples)
      EXCLUDES(mutex_);

  std::size_t rule_count() const EXCLUDES(mutex_);
  std::vector<AlertStatus> statuses() const
      EXCLUDES(mutex_);  ///< copy under the lock
  std::size_t count_in_state(AlertState state) const EXCLUDES(mutex_);
  std::size_t firing_count() const { return count_in_state(AlertState::kFiring); }

  /// {"step":N,"alerts":[{"name":..,"metric":..,"op":..,"value":F,
  ///   "for_steps":N,"state":"firing",...}]}
  std::string to_json() const;

 private:
  mutable util::Mutex mutex_;
  std::vector<AlertStatus> statuses_ GUARDED_BY(mutex_);
  std::uint64_t last_step_ GUARDED_BY(mutex_) = 0;
};

/// The built-in rules every live run watches unless overridden: the
/// paper's 1% under-provisioning QoS threshold (§V) on
/// `core.underalloc_frac`, debounced over 5 steps (10 simulated minutes),
/// and worst-game SLA availability `sla.availability_min_pct < 99.0` over
/// 10 steps. `event_threshold_pct` keeps the first rule aligned with
/// SimulationConfig::event_threshold_pct.
std::vector<AlertRule> default_alert_rules(double event_threshold_pct = 1.0);

}  // namespace mmog::obs
