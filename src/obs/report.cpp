#include "obs/report.hpp"

#include <sys/resource.h>

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

#include "obs/jsonio.hpp"

namespace mmog::obs {
namespace {

std::uint64_t fnv1a64(std::string_view data, std::uint64_t hash) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kPrime;
  }
  return hash;
}

std::string quoted(std::string_view s) {
  std::string out = "\"";
  append_json_escaped(out, s);
  out += '"';
  return out;
}

void append_string_map(std::string& out,
                       const std::map<std::string, std::string>& map) {
  out += '{';
  bool sep = false;
  for (const auto& [key, value] : map) {
    if (sep) out += ',';
    out += quoted(key) + ':' + quoted(value);
    sep = true;
  }
  out += '}';
}

void append_counter_map(std::string& out,
                        const std::map<std::string, double>& map) {
  out += '{';
  bool sep = false;
  for (const auto& [key, value] : map) {
    if (sep) out += ',';
    out += quoted(key) + ':' + json_double(value);
    sep = true;
  }
  out += '}';
}

std::uint64_t as_u64(const JsonValue& v) {
  return static_cast<std::uint64_t>(v.as_number());
}

std::string format_line(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

std::string format_line(const char* fmt, ...) {
  char buf[160];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

/// One exact-match comparison between two doubles parsed from reports:
/// shortest-round-trip serialization makes bit equality the right test.
void compare_number(std::vector<std::string>& notes, bool& identical,
                    std::string_view field, double a, double b) {
  if (a == b) return;
  identical = false;
  notes.push_back("outcome." + std::string(field) + ": " + json_double(a) +
                  " != " + json_double(b));
}

void compare_count(std::vector<std::string>& notes, bool& identical,
                   std::string_view field, std::uint64_t a, std::uint64_t b) {
  if (a == b) return;
  identical = false;
  notes.push_back("outcome." + std::string(field) + ": " +
                  std::to_string(a) + " != " + std::to_string(b));
}

}  // namespace

std::string RunReport::fingerprint() const {
  std::uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  for (const auto& [key, value] : config) {
    hash = fnv1a64(key, hash);
    hash = fnv1a64("=", hash);
    hash = fnv1a64(value, hash);
    hash = fnv1a64("\n", hash);
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::string RunReport::to_json() const {
  std::string out;
  out.reserve(2048);
  out += "{\"schema\":" + std::to_string(kSchemaVersion);
  out += ",\"tool\":" + quoted(tool);
  out += ",\"label\":" + quoted(label);
  out += ",\"config\":";
  append_string_map(out, config);
  out += ",\"fingerprint\":" + quoted(fingerprint());
  out += ",\"outcome\":{";
  out += "\"steps\":" + std::to_string(outcome.steps);
  out += ",\"over_allocation_pct\":" + json_double(outcome.over_allocation_pct);
  out += ",\"under_allocation_pct\":" +
         json_double(outcome.under_allocation_pct);
  out += ",\"significant_events\":" +
         std::to_string(outcome.significant_events);
  out += ",\"unplaced_cpu_unit_steps\":" +
         json_double(outcome.unplaced_cpu_unit_steps);
  out += ",\"total_cost\":" + json_double(outcome.total_cost);
  out += ",\"fault_windows\":" + std::to_string(outcome.fault_windows);
  out += ",\"sla\":{";
  out += "\"availability_pct\":" + json_double(outcome.availability_pct);
  out += ",\"steps\":" + std::to_string(outcome.sla_steps);
  out += ",\"downtime_steps\":" + std::to_string(outcome.downtime_steps);
  out += ",\"shed_steps\":" + std::to_string(outcome.shed_steps);
  out += ",\"breach_episodes\":" + std::to_string(outcome.breach_episodes);
  out += ",\"longest_breach_steps\":" +
         std::to_string(outcome.longest_breach_steps);
  out += ",\"recoveries\":" + std::to_string(outcome.recoveries);
  out += ",\"mean_time_to_recover_steps\":" +
         json_double(outcome.mean_time_to_recover_steps);
  out += ",\"max_time_to_recover_steps\":" +
         std::to_string(outcome.max_time_to_recover_steps);
  out += "},\"alerts\":{";
  out += "\"fired\":" + std::to_string(outcome.alerts_fired);
  out += ",\"resolved\":" + std::to_string(outcome.alerts_resolved);
  out += ",\"firing\":" + std::to_string(outcome.alerts_firing);
  out += "},\"audit_records\":" + std::to_string(outcome.audit_records);
  out += ",\"counters\":";
  append_counter_map(out, outcome.counters);
  out += "},\"timing\":{";
  out += "\"threads\":" + std::to_string(threads);
  out += ",\"wall_seconds\":" + json_double(wall_seconds);
  out += ",\"peak_rss_kb\":" + std::to_string(peak_rss_kb);
  out += ",\"steps_per_sec\":" + json_double(steps_per_sec);
  out += ",\"phases\":[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseStats& phase = phases[i];
    if (i) out += ',';
    out += "{\"name\":" + quoted(phase.name);
    out += ",\"count\":" + std::to_string(phase.count);
    out += ",\"mean_us\":" + json_double(phase.mean_us);
    out += ",\"p50_us\":" + json_double(phase.p50_us);
    out += ",\"p90_us\":" + json_double(phase.p90_us);
    out += ",\"p99_us\":" + json_double(phase.p99_us);
    out += ",\"max_us\":" + json_double(phase.max_us);
    out += ",\"allocs_mean\":" + json_double(phase.allocs_mean);
    out += ",\"alloc_bytes_mean\":" + json_double(phase.alloc_bytes_mean);
    out += '}';
  }
  out += "]}}";
  return out;
}

std::string RunReport::summary_text() const {
  std::string out;
  out += format_line("steps                  %llu\n",
                     static_cast<unsigned long long>(outcome.steps));
  out += format_line("CPU over-allocation    %.2f %%\n",
                     outcome.over_allocation_pct);
  out += format_line("CPU under-allocation   %.3f %%\n",
                     outcome.under_allocation_pct);
  out += format_line(
      "|Υ|>1%% events          %llu\n",
      static_cast<unsigned long long>(outcome.significant_events));
  out += format_line("unplaced CPU unit-steps %.1f\n",
                     outcome.unplaced_cpu_unit_steps);
  out += format_line("renting cost           %.1f\n", outcome.total_cost);
  // The SLA outcome matters whenever a breach (or fault exposure) actually
  // happened, not only on fault-injection runs.
  if (outcome.fault_windows > 0 || outcome.breach_episodes > 0 ||
      outcome.downtime_steps > 0) {
    out += "\nFault injection / SLA:\n";
    out += format_line("  fault windows        %llu\n",
                       static_cast<unsigned long long>(outcome.fault_windows));
    out += format_line("  availability         %.3f %%\n",
                       outcome.availability_pct);
    out += format_line(
        "  downtime steps       %llu / %llu\n",
        static_cast<unsigned long long>(outcome.downtime_steps),
        static_cast<unsigned long long>(outcome.sla_steps));
    out += format_line(
        "  breach episodes      %llu (longest %llu steps)\n",
        static_cast<unsigned long long>(outcome.breach_episodes),
        static_cast<unsigned long long>(outcome.longest_breach_steps));
    if (outcome.recoveries > 0) {
      out += format_line(
          "  time to recover      mean %.1f / max %llu steps\n",
          outcome.mean_time_to_recover_steps,
          static_cast<unsigned long long>(
              outcome.max_time_to_recover_steps));
    }
  }
  return out;
}

namespace {

RunReport report_from_value(const JsonValue& doc) {
  if (static_cast<int>(doc.at("schema").as_number()) !=
      RunReport::kSchemaVersion) {
    throw std::invalid_argument("report: unsupported schema version");
  }
  RunReport report;
  report.tool = doc.at("tool").as_string();
  report.label = doc.at("label").as_string();
  for (const auto& [key, value] : doc.at("config").members()) {
    report.config[key] = value.as_string();
  }
  const JsonValue& outcome = doc.at("outcome");
  report.outcome.steps = as_u64(outcome.at("steps"));
  report.outcome.over_allocation_pct =
      outcome.at("over_allocation_pct").as_number();
  report.outcome.under_allocation_pct =
      outcome.at("under_allocation_pct").as_number();
  report.outcome.significant_events = as_u64(outcome.at("significant_events"));
  report.outcome.unplaced_cpu_unit_steps =
      outcome.at("unplaced_cpu_unit_steps").as_number();
  report.outcome.total_cost = outcome.at("total_cost").as_number();
  report.outcome.fault_windows = as_u64(outcome.at("fault_windows"));
  const JsonValue& sla = outcome.at("sla");
  report.outcome.availability_pct = sla.at("availability_pct").as_number();
  report.outcome.sla_steps = as_u64(sla.at("steps"));
  report.outcome.downtime_steps = as_u64(sla.at("downtime_steps"));
  report.outcome.shed_steps = as_u64(sla.at("shed_steps"));
  report.outcome.breach_episodes = as_u64(sla.at("breach_episodes"));
  report.outcome.longest_breach_steps =
      as_u64(sla.at("longest_breach_steps"));
  report.outcome.recoveries = as_u64(sla.at("recoveries"));
  report.outcome.mean_time_to_recover_steps =
      sla.at("mean_time_to_recover_steps").as_number();
  report.outcome.max_time_to_recover_steps =
      as_u64(sla.at("max_time_to_recover_steps"));
  const JsonValue& alerts = outcome.at("alerts");
  report.outcome.alerts_fired = as_u64(alerts.at("fired"));
  report.outcome.alerts_resolved = as_u64(alerts.at("resolved"));
  report.outcome.alerts_firing = as_u64(alerts.at("firing"));
  report.outcome.audit_records = as_u64(outcome.at("audit_records"));
  for (const auto& [key, value] : outcome.at("counters").members()) {
    report.outcome.counters[key] = value.as_number();
  }
  const JsonValue& timing = doc.at("timing");
  report.threads = as_u64(timing.at("threads"));
  report.wall_seconds = timing.at("wall_seconds").as_number();
  report.peak_rss_kb = as_u64(timing.at("peak_rss_kb"));
  // Additive schema-1 fields (PR 8): reports written before them parse
  // with the zero default.
  if (const JsonValue* v = timing.find("steps_per_sec")) {
    report.steps_per_sec = v->as_number();
  }
  for (const JsonValue& item : timing.at("phases").as_array()) {
    RunReport::PhaseStats phase;
    phase.name = item.at("name").as_string();
    phase.count = as_u64(item.at("count"));
    phase.mean_us = item.at("mean_us").as_number();
    phase.p50_us = item.at("p50_us").as_number();
    phase.p90_us = item.at("p90_us").as_number();
    phase.p99_us = item.at("p99_us").as_number();
    phase.max_us = item.at("max_us").as_number();
    if (const JsonValue* v = item.find("allocs_mean")) {
      phase.allocs_mean = v->as_number();
    }
    if (const JsonValue* v = item.find("alloc_bytes_mean")) {
      phase.alloc_bytes_mean = v->as_number();
    }
    report.phases.push_back(std::move(phase));
  }
  return report;
}

}  // namespace

RunReport RunReport::parse(std::string_view json) {
  return report_from_value(parse_json(json));
}

std::vector<RunReport> parse_report_file(std::string_view json) {
  const JsonValue doc = parse_json(json);
  std::vector<RunReport> reports;
  if (doc.kind() == JsonValue::Kind::kObject) {
    reports.push_back(report_from_value(doc));
    return reports;
  }
  if (doc.kind() == JsonValue::Kind::kArray) {
    for (const JsonValue& item : doc.as_array()) {
      reports.push_back(report_from_value(item));
    }
    return reports;
  }
  throw std::invalid_argument("report: expected an object or array");
}

std::string reports_to_json(const std::vector<RunReport>& reports) {
  std::string out = "[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i) out += ",\n ";
    out += reports[i].to_json();
  }
  out += "]\n";
  return out;
}

DiffResult diff_reports(const RunReport& a, const RunReport& b,
                        double timing_tolerance_pct) {
  DiffResult result;
  auto& notes = result.notes;
  if (a.config != b.config) {
    result.outcome_identical = false;
    for (const auto& [key, value] : a.config) {
      const auto it = b.config.find(key);
      if (it == b.config.end()) {
        notes.push_back("config." + key + ": only in first (" + value + ")");
      } else if (it->second != value) {
        notes.push_back("config." + key + ": \"" + value + "\" != \"" +
                        it->second + "\"");
      }
    }
    for (const auto& [key, value] : b.config) {
      if (a.config.find(key) == a.config.end()) {
        notes.push_back("config." + key + ": only in second (" + value + ")");
      }
    }
  }
  bool& ok = result.outcome_identical;
  const auto& oa = a.outcome;
  const auto& ob = b.outcome;
  compare_count(notes, ok, "steps", oa.steps, ob.steps);
  compare_number(notes, ok, "over_allocation_pct", oa.over_allocation_pct,
                 ob.over_allocation_pct);
  compare_number(notes, ok, "under_allocation_pct", oa.under_allocation_pct,
                 ob.under_allocation_pct);
  compare_count(notes, ok, "significant_events", oa.significant_events,
                ob.significant_events);
  compare_number(notes, ok, "unplaced_cpu_unit_steps",
                 oa.unplaced_cpu_unit_steps, ob.unplaced_cpu_unit_steps);
  compare_number(notes, ok, "total_cost", oa.total_cost, ob.total_cost);
  compare_count(notes, ok, "fault_windows", oa.fault_windows,
                ob.fault_windows);
  compare_number(notes, ok, "sla.availability_pct", oa.availability_pct,
                 ob.availability_pct);
  compare_count(notes, ok, "sla.steps", oa.sla_steps, ob.sla_steps);
  compare_count(notes, ok, "sla.downtime_steps", oa.downtime_steps,
                ob.downtime_steps);
  compare_count(notes, ok, "sla.shed_steps", oa.shed_steps, ob.shed_steps);
  compare_count(notes, ok, "sla.breach_episodes", oa.breach_episodes,
                ob.breach_episodes);
  compare_count(notes, ok, "sla.longest_breach_steps",
                oa.longest_breach_steps, ob.longest_breach_steps);
  compare_count(notes, ok, "sla.recoveries", oa.recoveries, ob.recoveries);
  compare_number(notes, ok, "sla.mean_time_to_recover_steps",
                 oa.mean_time_to_recover_steps,
                 ob.mean_time_to_recover_steps);
  compare_count(notes, ok, "sla.max_time_to_recover_steps",
                oa.max_time_to_recover_steps, ob.max_time_to_recover_steps);
  compare_count(notes, ok, "alerts.fired", oa.alerts_fired, ob.alerts_fired);
  compare_count(notes, ok, "alerts.resolved", oa.alerts_resolved,
                ob.alerts_resolved);
  compare_count(notes, ok, "alerts.firing", oa.alerts_firing,
                ob.alerts_firing);
  compare_count(notes, ok, "audit_records", oa.audit_records,
                ob.audit_records);
  if (oa.counters != ob.counters) {
    ok = false;
    for (const auto& [key, value] : oa.counters) {
      const auto it = ob.counters.find(key);
      if (it == ob.counters.end()) {
        notes.push_back("counter " + key + ": only in first (" +
                        json_double(value) + ")");
      } else if (it->second != value) {
        notes.push_back("counter " + key + ": " + json_double(value) +
                        " != " + json_double(it->second));
      }
    }
    for (const auto& [key, value] : ob.counters) {
      if (oa.counters.find(key) == oa.counters.end()) {
        notes.push_back("counter " + key + ": only in second (" +
                        json_double(value) + ")");
      }
    }
  }
  if (timing_tolerance_pct >= 0.0) {
    for (const auto& pa : a.phases) {
      const RunReport::PhaseStats* pb = nullptr;
      for (const auto& candidate : b.phases) {
        if (candidate.name == pa.name) {
          pb = &candidate;
          break;
        }
      }
      if (pb == nullptr) {
        notes.push_back("timing: phase " + pa.name + " only in first");
        continue;
      }
      const double base = pa.p50_us;
      const double delta = std::fabs(pb->p50_us - base);
      const double rel_pct = base > 0.0 ? 100.0 * delta / base
                             : (delta > 0.0 ? 100.0 : 0.0);
      if (rel_pct > timing_tolerance_pct) {
        result.timing_ok = false;
        notes.push_back(format_line(
            "timing: phase %s p50 %.1f us -> %.1f us (%.1f %% > %.1f %% "
            "tolerance)",
            pa.name.c_str(), base, pb->p50_us, rel_pct,
            timing_tolerance_pct));
      }
    }
  }
  return result;
}

DiffResult diff_audits(const std::vector<AuditRecord>& a,
                       const std::vector<AuditRecord>& b,
                       std::size_t max_notes) {
  DiffResult result;
  if (a.size() != b.size()) {
    result.outcome_identical = false;
    result.notes.push_back("audit: record count " + std::to_string(a.size()) +
                           " != " + std::to_string(b.size()));
  }
  const std::size_t common = a.size() < b.size() ? a.size() : b.size();
  std::size_t reported = 0;
  for (std::size_t i = 0; i < common; ++i) {
    if (a[i] == b[i]) continue;
    result.outcome_identical = false;
    if (reported++ >= max_notes) continue;
    result.notes.push_back(
        "audit: record " + std::to_string(i) + " (step " +
        std::to_string(a[i].step) + ", game " + std::to_string(a[i].game) +
        ", region " + a[i].region + ") differs:\n  first:  " +
        audit_record_to_json(a[i]) + "\n  second: " +
        audit_record_to_json(b[i]));
  }
  if (reported > max_notes) {
    result.notes.push_back("audit: ... and " +
                           std::to_string(reported - max_notes) +
                           " more differing records");
  }
  return result;
}

std::uint64_t current_peak_rss_kb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss > 0 ? static_cast<std::uint64_t>(usage.ru_maxrss)
                             : 0;
}

}  // namespace mmog::obs
