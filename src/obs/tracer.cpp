#include "obs/tracer.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.hpp"

namespace mmog::obs {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string number(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

void append_args_object(std::string& out,
                        const std::vector<TraceArg>& args) {
  out += '{';
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out += ',';
    out += '"';
    append_escaped(out, args[i].key);
    out += "\":\"";
    append_escaped(out, args[i].value);
    out += '"';
  }
  out += '}';
}

/// Minimal cursor parser for the JSONL subset write_jsonl() emits: one flat
/// object per line whose values are strings, numbers, or the one-level
/// "args" object of string values.
class LineParser {
 public:
  explicit LineParser(std::string_view line) : s_(line) {}

  TraceEvent parse() {
    TraceEvent ev;
    expect('{');
    skip_ws();
    if (peek() != '}') {
      for (;;) {
        const std::string key = parse_string();
        expect(':');
        if (key == "args") {
          parse_args(ev.args);
        } else if (key == "kind") {
          const std::string kind = parse_string();
          if (kind == "span") {
            ev.kind = TraceKind::kSpan;
          } else if (kind == "instant") {
            ev.kind = TraceKind::kInstant;
          } else {
            throw std::invalid_argument("trace jsonl: unknown kind " + kind);
          }
        } else if (key == "name") {
          ev.name = parse_string();
        } else if (key == "cat") {
          ev.category = parse_string();
        } else if (key == "seq") {
          ev.seq = static_cast<std::uint64_t>(parse_number());
        } else if (key == "step") {
          ev.step = static_cast<std::uint64_t>(parse_number());
        } else if (key == "ts_us") {
          ev.ts_us = parse_number();
        } else if (key == "dur_us") {
          ev.dur_us = parse_number();
        } else {
          skip_value();
        }
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          skip_ws();
          continue;
        }
        break;
      }
    }
    expect('}');
    return ev;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("trace jsonl: " + what + " at offset " +
                                std::to_string(pos_));
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  void expect(char c) {
    skip_ws();
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("dangling escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          const unsigned code = static_cast<unsigned>(
              std::stoul(std::string(s_.substr(pos_, 4)), nullptr, 16));
          pos_ += 4;
          // The writer only emits \u00XX for control bytes.
          out += static_cast<char>(code & 0xff);
          break;
        }
        default: fail("unsupported escape");
      }
    }
    if (pos_ >= s_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double parse_number() {
    skip_ws();
    const std::size_t begin = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (begin == pos_) fail("expected number");
    return std::stod(std::string(s_.substr(begin, pos_ - begin)));
  }

  void parse_args(std::vector<TraceArg>& args) {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    for (;;) {
      TraceArg arg;
      arg.key = parse_string();
      expect(':');
      arg.value = parse_string();
      args.push_back(std::move(arg));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        skip_ws();
        continue;
      }
      break;
    }
    expect('}');
  }

  void skip_value() {
    skip_ws();
    if (peek() == '"') {
      parse_string();
    } else if (peek() == '{') {
      std::vector<TraceArg> ignored;
      parse_args(ignored);
    } else {
      parse_number();
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

Tracer::Tracer() : start_(std::chrono::steady_clock::now()) {}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void Tracer::instant(std::string_view name, std::string_view category,
                     std::uint64_t step, std::vector<TraceArg> args) {
  const double ts = now_us();
  TraceEvent ev;
  ev.kind = TraceKind::kInstant;
  ev.name = std::string(name);
  ev.category = std::string(category);
  ev.step = step;
  ev.ts_us = ts;
  ev.args = std::move(args);
  util::MutexLock lock(mutex_);
  ev.seq = next_seq_++;
  events_.push_back(std::move(ev));
}

void Tracer::complete_span(std::string_view name, std::string_view category,
                           std::uint64_t step, double ts_us, double dur_us,
                           std::vector<TraceArg> args) {
  TraceEvent ev;
  ev.kind = TraceKind::kSpan;
  ev.name = std::string(name);
  ev.category = std::string(category);
  ev.step = step;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.args = std::move(args);
  util::MutexLock lock(mutex_);
  ev.seq = next_seq_++;
  events_.push_back(std::move(ev));
}

std::size_t Tracer::size() const {
  util::MutexLock lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  util::MutexLock lock(mutex_);
  return events_;
}

void Tracer::write_jsonl(std::ostream& out) const {
  const auto evs = events();
  std::string line;
  for (const auto& ev : evs) {
    line.clear();
    line += "{\"seq\":" + std::to_string(ev.seq);
    line += ",\"kind\":\"";
    line += ev.kind == TraceKind::kSpan ? "span" : "instant";
    line += "\",\"name\":\"";
    append_escaped(line, ev.name);
    line += "\",\"cat\":\"";
    append_escaped(line, ev.category);
    line += "\",\"step\":" + std::to_string(ev.step);
    line += ",\"ts_us\":" + number(ev.ts_us);
    line += ",\"dur_us\":" + number(ev.dur_us);
    line += ",\"args\":";
    append_args_object(line, ev.args);
    line += "}\n";
    out << line;
  }
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  const auto evs = events();
  out << "{\"traceEvents\":[";
  std::string item;
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const auto& ev = evs[i];
    item.clear();
    if (i) item += ',';
    item += "\n{\"name\":\"";
    append_escaped(item, ev.name);
    item += "\",\"cat\":\"";
    append_escaped(item, ev.category);
    item += "\",\"ph\":\"";
    item += ev.kind == TraceKind::kSpan ? 'X' : 'i';
    item += "\",\"ts\":" + number(ev.ts_us);
    if (ev.kind == TraceKind::kSpan) {
      item += ",\"dur\":" + number(ev.dur_us);
    } else {
      item += ",\"s\":\"t\"";
    }
    item += ",\"pid\":0,\"tid\":0,\"args\":";
    std::vector<TraceArg> args = ev.args;
    args.push_back({"step", std::to_string(ev.step)});
    append_args_object(item, args);
    item += '}';
    out << item;
  }
  out << "\n]}\n";
}

std::vector<TraceEvent> read_trace_jsonl(std::istream& in) {
  std::vector<TraceEvent> events;
  std::string line;
  while (std::getline(in, line)) {
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    events.push_back(LineParser(line).parse());
  }
  return events;
}

TraceFileGuard::TraceFileGuard(const Tracer* tracer, std::string path,
                               Format format)
    : tracer_(tracer), path_(std::move(path)), format_(format) {
  if (tracer_ == nullptr || path_.empty()) done_ = true;
}

TraceFileGuard::~TraceFileGuard() {
  if (done_) return;
  // Unwinding (or the caller forgot to flush): best effort, never throw.
  try {
    write();
  } catch (...) {
  }
}

void TraceFileGuard::flush() {
  if (done_) return;
  write();
  done_ = true;
}

void TraceFileGuard::write() const {
  util::AtomicFileWriter writer(path_);
  if (format_ == Format::kJsonl) {
    tracer_->write_jsonl(writer.stream());
  } else {
    tracer_->write_chrome_trace(writer.stream());
  }
  writer.commit();
}

}  // namespace mmog::obs
