#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/audit.hpp"

namespace mmog::obs {

/// The canonical, stable-schema description of one simulation run, built so
/// every `mmog_simulate` / `mmog_chaos` invocation (and CI) can publish a
/// `BENCH_core.json` and `tools/mmog_diff` can compare two of them.
///
/// The report splits cleanly into:
///   * `config`   — the outcome-determining inputs (mode, predictor, seed,
///                  safety factor, fault specs, ...). `fingerprint()`
///                  hashes exactly these, so two reports with equal
///                  fingerprints claim to describe the same experiment.
///                  Execution details that must NOT change the outcome
///                  (thread count) go in the timing section instead.
///   * `outcome`  — deterministic results: byte-identical for same-seed,
///                  same-config runs at any `--threads` value.
///   * timing     — measured wall-clock quantities (phase quantiles from
///                  the `phase.*_us` histograms, wall seconds, peak RSS):
///                  machine-dependent, compared only against a tolerance.
struct RunReport {
  static constexpr int kSchemaVersion = 1;

  std::string tool;   ///< producing binary, e.g. "mmog_simulate"
  std::string label;  ///< scenario label for multi-run sweeps ("" = only run)
  /// Outcome-determining configuration, sorted by key.
  std::map<std::string, std::string> config;

  /// Deterministic outcome totals (the §V headline numbers plus SLA and
  /// alert accounting).
  struct Outcome {
    std::uint64_t steps = 0;
    double over_allocation_pct = 0.0;
    double under_allocation_pct = 0.0;
    std::uint64_t significant_events = 0;
    double unplaced_cpu_unit_steps = 0.0;
    double total_cost = 0.0;
    std::uint64_t fault_windows = 0;
    // Whole-run SLA outcome over the global breach signal.
    double availability_pct = 100.0;
    std::uint64_t sla_steps = 0;
    std::uint64_t downtime_steps = 0;
    std::uint64_t shed_steps = 0;
    std::uint64_t breach_episodes = 0;
    std::uint64_t longest_breach_steps = 0;
    std::uint64_t recoveries = 0;
    double mean_time_to_recover_steps = 0.0;
    std::uint64_t max_time_to_recover_steps = 0;
    // Alert engine totals (all zero when no engine was attached).
    std::uint64_t alerts_fired = 0;
    std::uint64_t alerts_resolved = 0;
    std::uint64_t alerts_firing = 0;
    std::uint64_t audit_records = 0;
    /// Every registry counter (offer.*, alloc.*, event.*, ...): counters
    /// are event counts and therefore deterministic.
    std::map<std::string, double> counters;

    friend bool operator==(const Outcome&, const Outcome&) = default;
  } outcome;

  /// Summary quantiles of one `phase.<name>_us` histogram, joined with the
  /// profiler's `phase.<name>_allocs` / `_alloc_bytes` histograms when a
  /// ResourceProfiler was attached (zero otherwise).
  struct PhaseStats {
    std::string name;  ///< phase name without the "phase."/"_us" wrapping
    std::uint64_t count = 0;
    double mean_us = 0.0;
    double p50_us = 0.0;
    double p90_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;
    double allocs_mean = 0.0;       ///< mean heap allocations per scope
    double alloc_bytes_mean = 0.0;  ///< mean requested bytes per scope
  };
  std::vector<PhaseStats> phases;  ///< sorted by name
  double wall_seconds = 0.0;
  std::uint64_t peak_rss_kb = 0;
  /// Simulation throughput (completed steps per wall second); from the
  /// profiler's `sim.steps_per_sec` gauge when attached, else steps/wall.
  double steps_per_sec = 0.0;
  std::uint64_t threads = 1;  ///< execution detail; outcome-neutral

  /// FNV-1a 64 hash (hex) over the sorted config key/value pairs.
  std::string fingerprint() const;

  /// Stable-schema JSON: fixed key set and order, shortest round-trip
  /// number rendering — the outcome section's bytes are a pure function of
  /// the outcome values.
  std::string to_json() const;

  /// The human run summary the CLI tools print, rendered from the report's
  /// own fields so the two can never disagree.
  std::string summary_text() const;

  /// Parses to_json() output (schema version 1). Throws
  /// std::invalid_argument on malformed or wrong-schema input.
  static RunReport parse(std::string_view json);
};

/// Parses a file that holds either one report object or an array of
/// labeled reports (mmog_chaos sweeps).
std::vector<RunReport> parse_report_file(std::string_view json);

/// Serializes several labeled reports as a JSON array of to_json() objects.
std::string reports_to_json(const std::vector<RunReport>& reports);

/// Outcome of comparing two runs.
struct DiffResult {
  bool outcome_identical = true;  ///< config + outcome byte/bit identical
  bool timing_ok = true;          ///< within tolerance (true when unchecked)
  std::vector<std::string> notes; ///< human-readable differences, in order

  bool regression() const noexcept {
    return !outcome_identical || !timing_ok;
  }
};

/// Compares two reports: every config entry and outcome field must match
/// exactly; phase timings (p50) are compared only when
/// `timing_tolerance_pct >= 0`, failing when the relative difference
/// exceeds the tolerance. The `threads` field and wall/RSS numbers are
/// never compared — they are execution details.
DiffResult diff_reports(const RunReport& a, const RunReport& b,
                        double timing_tolerance_pct = -1.0);

/// Compares two audit trails record by record; reports the first
/// `max_notes` divergences with step/region context.
DiffResult diff_audits(const std::vector<AuditRecord>& a,
                       const std::vector<AuditRecord>& b,
                       std::size_t max_notes = 5);

/// Peak resident set size of this process in KiB (getrusage), 0 when
/// unavailable. A recorded value only — never fed back into control flow.
std::uint64_t current_peak_rss_kb();

}  // namespace mmog::obs
