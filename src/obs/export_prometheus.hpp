#pragma once

#include <string>
#include <string_view>

#include "obs/registry.hpp"

namespace mmog::obs {

/// Maps a registry metric name onto the Prometheus name charset
/// [a-zA-Z_:][a-zA-Z0-9_:]*: every disallowed byte becomes '_' and a name
/// whose first byte would still be invalid (e.g. a leading digit) gains a
/// '_' prefix. "phase.step_us" -> "phase_step_us". Distinct registry names
/// can collide after sanitization ("a.b" and "a_b"); to_prometheus()
/// detects that and disambiguates rather than emitting duplicate series.
std::string sanitize_prometheus_name(std::string_view name);

/// Serializes a Snapshot to the Prometheus text exposition format v0.0.4.
///
/// Counters and gauges become one `# TYPE` line plus one sample each.
/// Histograms become the conventional `_bucket{le="..."}` series with
/// cumulative counts over the registry's bucket bounds, a final
/// `le="+Inf"` bucket equal to the total count, and `_sum` / `_count`
/// samples. Output is sorted by metric name (the Snapshot maps are
/// ordered), ends with a newline, and is accepted verbatim by a
/// Prometheus scraper; serve it with content type
/// "text/plain; version=0.0.4".
///
/// When two distinct registry metrics sanitize to the same Prometheus
/// name, the first keeps it and each later one is deterministically
/// renamed by appending "_2", "_3", ... (in the exporter's fixed
/// counters -> gauges -> histograms, name-sorted order), with a comment
/// line naming the original metric — duplicate series are never emitted
/// silently.
std::string to_prometheus(const Snapshot& snapshot);

}  // namespace mmog::obs
