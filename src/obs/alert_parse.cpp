#include "obs/alert_parse.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/duration.hpp"

namespace mmog::obs {
namespace {

double parse_number(std::string_view text, std::string_view what) {
  const std::string s(text);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size()) {
    throw std::invalid_argument("alert spec: malformed " + std::string(what) +
                                " '" + s + "'");
  }
  return v;
}

AlertOp parse_op(std::string_view text) {
  if (text == ">") return AlertOp::kGt;
  if (text == "<") return AlertOp::kLt;
  if (text == ">=") return AlertOp::kGe;
  if (text == "<=") return AlertOp::kLe;
  if (text == "==") return AlertOp::kEq;
  if (text == "!=") return AlertOp::kNe;
  throw std::invalid_argument("alert spec: unknown op '" + std::string(text) +
                              "' (expected > < >= <= == !=)");
}

}  // namespace

AlertRule parse_alert_rule(std::string_view text) {
  const auto colon = text.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    throw std::invalid_argument(
        "alert spec: expected 'name:key=value,...', got '" +
        std::string(text) + "'");
  }
  AlertRule rule;
  rule.name = std::string(text.substr(0, colon));

  bool have_metric = false;
  bool have_value = false;
  auto rest = text.substr(colon + 1);
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const auto token = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (token.empty()) continue;
    const auto eq = token.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("alert spec: expected key=value, got '" +
                                  std::string(token) + "'");
    }
    const auto key = token.substr(0, eq);
    const auto value = token.substr(eq + 1);
    if (key == "metric") {
      if (value.empty()) {
        throw std::invalid_argument("alert spec: empty metric name");
      }
      rule.metric = std::string(value);
      have_metric = true;
    } else if (key == "op") {
      rule.op = parse_op(value);
    } else if (key == "value") {
      rule.value = parse_number(value, "value");
      have_value = true;
    } else if (key == "for") {
      rule.for_steps = static_cast<std::size_t>(util::parse_duration_steps(
          value, /*allow_zero=*/true, "alert spec"));
    } else {
      throw std::invalid_argument("alert spec: unknown key '" +
                                  std::string(key) + "'");
    }
  }
  if (!have_metric) {
    throw std::invalid_argument("alert spec: missing metric=NAME");
  }
  if (!have_value) {
    throw std::invalid_argument("alert spec: missing value=F");
  }
  return rule;
}

std::vector<AlertRule> parse_alert_rules(std::string_view text) {
  std::vector<AlertRule> rules;
  while (!text.empty()) {
    const auto semi = text.find(';');
    const auto part = text.substr(0, semi);
    text = semi == std::string_view::npos ? std::string_view{}
                                          : text.substr(semi + 1);
    if (!part.empty()) rules.push_back(parse_alert_rule(part));
  }
  return rules;
}

std::string describe(const AlertRule& rule) {
  char value[64];
  std::snprintf(value, sizeof value, "%g", rule.value);
  std::string out = rule.name + ":metric=" + rule.metric +
                    ",op=" + std::string(alert_op_name(rule.op)) +
                    ",value=" + value;
  if (rule.for_steps > 0) {
    out += ",for=" + std::to_string(rule.for_steps);
  }
  return out;
}

}  // namespace mmog::obs
