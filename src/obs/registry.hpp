#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace mmog::obs {

/// Merged state of one fixed-bucket histogram. Bucket i counts observations
/// in (bounds[i-1], bounds[i]] (bucket 0 is unbounded below); counts.back()
/// is the overflow bucket for values above the last bound.
struct HistogramData {
  std::vector<double> bounds;          ///< ascending upper bucket bounds
  std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< smallest observed value (0 when count == 0)
  double max = 0.0;  ///< largest observed value (0 when count == 0)

  double mean() const noexcept { return count == 0 ? 0.0 : sum / count; }

  /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
  /// bucket holding the target rank, clamped to the observed [min, max].
  double quantile(double q) const noexcept;
};

/// A merged point-in-time view of a Registry, safe to read and serialize
/// while instrumented code keeps running.
struct Snapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}
  /// with per-histogram bounds, bucket counts and summary statistics.
  std::string to_json() const;

  /// Flat CSV with header "type,name,stat,value"; histograms expand to one
  /// row per summary statistic (count, sum, mean, min, p50, p90, p99, max).
  std::string to_csv() const;
};

/// Log-spaced bucket bounds: lo, lo*factor, ... up to and including the
/// first bound >= hi. Throws std::invalid_argument on a non-positive lo or
/// a factor <= 1.
std::vector<double> log_buckets(double lo, double hi, double factor);

/// Default duration buckets in microseconds: 0.05 us .. ~1 s, log-spaced.
const std::vector<double>& duration_buckets_us();

/// Default event-count buckets: 1 .. 1e9, log-spaced. For histograms that
/// count things per observation (allocations, bytes) rather than time them.
const std::vector<double>& count_buckets();

/// Named counters, gauges and fixed-bucket histograms.
///
/// Counter increments and histogram observations go to a thread-local shard
/// (one per writer thread, created on first use), so instrumentation inside
/// util::parallel_for sweeps never contends on a shared lock: each shard's
/// mutex is only ever touched by its owner thread and by snapshot(), which
/// merges all shards. Gauges are set-rarely values and live behind the
/// registry mutex directly (last write wins, whole-registry order).
class Registry {
 public:
  Registry();
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Adds `delta` to a named counter (creating it at zero).
  void add(std::string_view counter, double delta = 1.0);

  /// Sets a named gauge to `value` (last write wins).
  void set(std::string_view gauge, double value);

  /// Registers a histogram with explicit ascending upper bucket bounds.
  /// Idempotent for identical bounds; throws std::invalid_argument when the
  /// name exists with different bounds or the bounds are empty/unsorted.
  void define_histogram(std::string_view name, std::vector<double> bounds);

  /// Records one observation. Undefined histograms are auto-registered with
  /// duration_buckets_us().
  void observe(std::string_view histogram, double value);

  /// Like observe(), but undefined histograms auto-register with
  /// count_buckets() — use for per-phase allocation/byte counts.
  void observe_count(std::string_view histogram, double value);

  /// Merges every shard (plus the gauges) into one consistent view. May run
  /// concurrently with writers; each shard is merged atomically.
  Snapshot snapshot() const;

 private:
  struct Shard;

  Shard& local_shard() const EXCLUDES(mutex_);
  std::shared_ptr<const std::vector<double>> bounds_for(
      std::string_view name, const std::vector<double>& default_bounds)
      EXCLUDES(mutex_);
  void observe_with_default(std::string_view histogram, double value,
                            const std::vector<double>& default_bounds);

  const std::uint64_t id_;  ///< process-unique, keys the thread-local cache
  mutable util::Mutex mutex_;
  mutable std::vector<std::unique_ptr<Shard>> shards_ GUARDED_BY(mutex_);
  std::map<std::string, std::shared_ptr<const std::vector<double>>,
           std::less<>>
      histogram_bounds_ GUARDED_BY(mutex_);
  std::map<std::string, double, std::less<>> gauges_ GUARDED_BY(mutex_);
};

}  // namespace mmog::obs
