#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/alloccount.hpp"

namespace mmog::obs {

class Registry;

/// Per-run resource profiler (PR 8): the owner of everything "how much did
/// it cost" that the plain phase timers do not cover.
///
/// Attached via Recorder::enable_profiler(). While alive it
///   * arms the global allocation-counting hooks (util/alloccount), which
///     lets PhaseScope difference totals around each phase and publish
///     `phase.<name>_allocs` / `phase.<name>_alloc_bytes` histograms next
///     to the existing `phase.<name>_us` ones;
///   * tracks run throughput and process RSS: core::simulate calls
///     begin_run() before its step loop and note_step() once per completed
///     step, which updates the `sim.steps_per_sec`,
///     `sim.group_steps_per_sec`, `proc.current_rss_kb` and
///     `proc.peak_rss_kb` gauges and mirrors them into lock-free atomics
///     the telemetry server reads for /healthz.
///
/// Everything recorded is observational (gauges and histograms, never
/// counters): RunReport outcome sections include every counter and must be
/// byte-identical with profiling on or off — the determinism property
/// tests enforce exactly that.
class ResourceProfiler {
 public:
  ResourceProfiler() = default;

  /// Marks the start of a simulation run with `total_groups` server
  /// groups. Called on the simulation thread before the step loop; resets
  /// the throughput clock (a recorder created long before simulate() —
  /// e.g. across neural-predictor training — must not dilute steps/s).
  void begin_run(std::uint64_t total_groups) noexcept;

  /// Publishes throughput and RSS after `steps_done` completed steps.
  /// Called on the simulation thread once per step.
  void note_step(Registry& registry, std::uint64_t steps_done);

  double steps_per_sec() const noexcept {
    return steps_per_sec_.load(std::memory_order_relaxed);
  }
  double group_steps_per_sec() const noexcept {
    return group_steps_per_sec_.load(std::memory_order_relaxed);
  }
  std::uint64_t current_rss_kb() const noexcept {
    return current_rss_kb_.load(std::memory_order_relaxed);
  }
  std::uint64_t peak_rss_kb() const noexcept {
    return peak_rss_kb_.load(std::memory_order_relaxed);
  }

 private:
  /// Arms the allocation hooks for the profiler's lifetime; without a live
  /// profiler every hook is one relaxed flag load.
  util::alloccount::Scope arm_;
  std::chrono::steady_clock::time_point run_start_{};
  std::uint64_t total_groups_ = 0;
  std::atomic<double> steps_per_sec_{0.0};
  std::atomic<double> group_steps_per_sec_{0.0};
  std::atomic<std::uint64_t> current_rss_kb_{0};
  std::atomic<std::uint64_t> peak_rss_kb_{0};
};

/// Current resident set size of this process in KiB (/proc/self/statm),
/// 0 when unavailable. Observational only, like current_peak_rss_kb().
std::uint64_t current_rss_kb();

}  // namespace mmog::obs
