#include "obs/http_server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "obs/export_prometheus.hpp"
#include "obs/recorder.hpp"

namespace mmog::obs {
namespace {

std::string_view status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Internal Server Error";
  }
}

void write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; nothing useful to do
    data.remove_prefix(static_cast<std::size_t>(n));
  }
}

}  // namespace

HttpServer::HttpServer(std::uint16_t port, Handler handler)
    : handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("http: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("http: cannot listen on port " +
                             std::to_string(port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  thread_ = std::thread([this] { serve(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  // Exactly one caller wins the exchange, joins the accept thread and then
  // closes the socket; losers return immediately. Closing before the join
  // would yank listen_fd_ out from under the serve() poll loop.
  if (stop_.exchange(true)) return;
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::serve() {
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    // A finite poll timeout bounds how long stop() waits for the thread.
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;

    std::string raw;
    char buf[2048];
    while (raw.size() < 8192 && raw.find("\r\n\r\n") == std::string::npos &&
           raw.find("\n\n") == std::string::npos) {
      pollfd cfd{client, POLLIN, 0};
      if (::poll(&cfd, 1, 2000) <= 0) break;
      const ssize_t n = ::recv(client, buf, sizeof buf, 0);
      if (n <= 0) break;
      raw.append(buf, static_cast<std::size_t>(n));
    }

    Request request;
    Response response;
    const auto line_end = raw.find_first_of("\r\n");
    const auto line = raw.substr(0, line_end);
    const auto sp1 = line.find(' ');
    const auto sp2 = line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      response = {400, "text/plain; charset=utf-8", "bad request\n"};
    } else {
      request.method = line.substr(0, sp1);
      request.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const auto query = request.path.find('?');
      if (query != std::string::npos) request.path.resize(query);
      response = handler_(request);
    }

    std::string head = "HTTP/1.0 " + std::to_string(response.status) + " " +
                       std::string(status_text(response.status)) +
                       "\r\nContent-Type: " + response.content_type +
                       "\r\nContent-Length: " +
                       std::to_string(response.body.size()) +
                       "\r\nConnection: close\r\n\r\n";
    write_all(client, head);
    if (request.method != "HEAD") write_all(client, response.body);
    ::close(client);
  }
}

TelemetryService::TelemetryService(Recorder& recorder, std::uint16_t port)
    : server_(port, [&recorder](const HttpServer::Request& request) {
        return handle(recorder, request);
      }) {}

HttpServer::Response TelemetryService::handle(
    Recorder& recorder, const HttpServer::Request& request) {
  if (request.method != "GET" && request.method != "HEAD") {
    return {405, "text/plain; charset=utf-8", "method not allowed\n"};
  }
  if (request.path == "/metrics") {
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            to_prometheus(recorder.snapshot())};
  }
  if (request.path == "/healthz") {
    const AlertEngine* alerts = recorder.alerts();
    std::string body = "{\"status\":\"ok\",\"step\":" +
                       std::to_string(recorder.last_sampled_step());
    body += ",\"alerts\":{";
    if (alerts) {
      body += "\"rules\":" + std::to_string(alerts->rule_count());
      body += ",\"pending\":" +
              std::to_string(alerts->count_in_state(AlertState::kPending));
      body += ",\"firing\":" +
              std::to_string(alerts->count_in_state(AlertState::kFiring));
      body += ",\"resolved\":" +
              std::to_string(alerts->count_in_state(AlertState::kResolved));
    } else {
      body += "\"rules\":0,\"pending\":0,\"firing\":0,\"resolved\":0";
    }
    body += "}";
    const Recorder::CheckpointInfo ckpt = recorder.last_checkpoint();
    if (ckpt.any) {
      char age[32];
      std::snprintf(age, sizeof(age), "%.3f", ckpt.age_seconds);
      body += ",\"checkpoint\":{\"step\":" + std::to_string(ckpt.step) +
              ",\"age_seconds\":" + age + "}";
    } else {
      body += ",\"checkpoint\":null";
    }
    if (const ResourceProfiler* profiler = recorder.profiler()) {
      char rate[64];
      std::snprintf(rate, sizeof(rate),
                    "{\"steps_per_sec\":%.3f,\"group_steps_per_sec\":%.1f}",
                    profiler->steps_per_sec(),
                    profiler->group_steps_per_sec());
      body += ",\"throughput\":";
      body += rate;
      body += ",\"rss\":{\"current_kb\":" +
              std::to_string(profiler->current_rss_kb()) +
              ",\"peak_kb\":" + std::to_string(profiler->peak_rss_kb()) +
              "}";
    } else {
      body += ",\"throughput\":null,\"rss\":null";
    }
    body += "}";
    return {200, "application/json", std::move(body)};
  }
  if (request.path == "/alerts") {
    const AlertEngine* alerts = recorder.alerts();
    return {200, "application/json",
            alerts ? alerts->to_json() : "{\"step\":0,\"alerts\":[]}"};
  }
  if (request.path == "/timeseries.json") {
    const TimeSeriesStore* store = recorder.timeseries();
    return {200, "application/json",
            store ? store->to_json() : "{\"series\":[]}"};
  }
  if (request.path == "/audit") {
    // JSONL: one decision record per line, a consistent prefix of a live
    // run (the trail snapshots under its own mutex). Empty body when the
    // run has no audit trail enabled.
    const AuditTrail* trail = recorder.audit();
    return {200, "application/x-ndjson; charset=utf-8",
            trail ? trail->to_jsonl() : std::string()};
  }
  return {404, "text/plain; charset=utf-8", "not found\n"};
}

}  // namespace mmog::obs
