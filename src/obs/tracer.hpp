#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace mmog::obs {

/// One key/value annotation attached to a trace event.
struct TraceArg {
  std::string key;
  std::string value;

  friend bool operator==(const TraceArg&, const TraceArg&) = default;
};

enum class TraceKind { kSpan, kInstant };

/// One recorded event. The *content* (kind, name, category, step, seq,
/// args and recording order) is deterministic for a fixed configuration and
/// seed; ts_us/dur_us carry measured wall-clock time and are values only —
/// they never influence simulation control flow.
struct TraceEvent {
  TraceKind kind = TraceKind::kInstant;
  std::string name;
  std::string category;
  std::uint64_t step = 0;  ///< simulation step the event belongs to
  std::uint64_t seq = 0;   ///< per-tracer recording sequence number
  double ts_us = 0.0;      ///< wall-clock start, us since tracer creation
  double dur_us = 0.0;     ///< span duration in us (0 for instants)
  std::vector<TraceArg> args;
};

/// Records simulation-step spans and point events, exporting JSONL (one
/// event object per line) and the Chrome trace_event format understood by
/// chrome://tracing and Perfetto. Thread-safe; events are kept in memory in
/// recording order.
class Tracer {
 public:
  Tracer();

  /// Microseconds elapsed on the monotonic clock since construction.
  double now_us() const;

  /// Records a point event stamped at now_us().
  void instant(std::string_view name, std::string_view category,
               std::uint64_t step, std::vector<TraceArg> args = {});

  /// Records a completed span [ts_us, ts_us + dur_us).
  void complete_span(std::string_view name, std::string_view category,
                     std::uint64_t step, double ts_us, double dur_us,
                     std::vector<TraceArg> args = {});

  std::size_t size() const EXCLUDES(mutex_);
  std::vector<TraceEvent> events() const
      EXCLUDES(mutex_);  ///< copy, in recording order

  /// One JSON object per line:
  /// {"seq":N,"kind":"span|instant","name":..,"cat":..,"step":N,
  ///  "ts_us":F,"dur_us":F,"args":{..}}
  void write_jsonl(std::ostream& out) const;

  /// {"traceEvents":[...]}: spans as "ph":"X" complete events, instants as
  /// "ph":"i"; loads directly in chrome://tracing and ui.perfetto.dev.
  void write_chrome_trace(std::ostream& out) const;

 private:
  std::chrono::steady_clock::time_point start_;
  mutable util::Mutex mutex_;
  std::vector<TraceEvent> events_ GUARDED_BY(mutex_);
  std::uint64_t next_seq_ GUARDED_BY(mutex_) = 0;
};

/// Parses a stream produced by Tracer::write_jsonl back into events.
/// Throws std::invalid_argument on malformed lines (blank lines are
/// skipped). Covers the subset of JSON the writer emits.
std::vector<TraceEvent> read_trace_jsonl(std::istream& in);

}  // namespace mmog::obs
