#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace mmog::obs {

/// One key/value annotation attached to a trace event.
struct TraceArg {
  std::string key;
  std::string value;

  friend bool operator==(const TraceArg&, const TraceArg&) = default;
};

enum class TraceKind { kSpan, kInstant };

/// One recorded event. The *content* (kind, name, category, step, seq,
/// args and recording order) is deterministic for a fixed configuration and
/// seed; ts_us/dur_us carry measured wall-clock time and are values only —
/// they never influence simulation control flow.
struct TraceEvent {
  TraceKind kind = TraceKind::kInstant;
  std::string name;
  std::string category;
  std::uint64_t step = 0;  ///< simulation step the event belongs to
  std::uint64_t seq = 0;   ///< per-tracer recording sequence number
  double ts_us = 0.0;      ///< wall-clock start, us since tracer creation
  double dur_us = 0.0;     ///< span duration in us (0 for instants)
  std::vector<TraceArg> args;
};

/// Records simulation-step spans and point events, exporting JSONL (one
/// event object per line) and the Chrome trace_event format understood by
/// chrome://tracing and Perfetto. Thread-safe; events are kept in memory in
/// recording order.
class Tracer {
 public:
  Tracer();

  /// Microseconds elapsed on the monotonic clock since construction.
  double now_us() const;

  /// Records a point event stamped at now_us().
  void instant(std::string_view name, std::string_view category,
               std::uint64_t step, std::vector<TraceArg> args = {});

  /// Records a completed span [ts_us, ts_us + dur_us).
  void complete_span(std::string_view name, std::string_view category,
                     std::uint64_t step, double ts_us, double dur_us,
                     std::vector<TraceArg> args = {});

  std::size_t size() const EXCLUDES(mutex_);
  std::vector<TraceEvent> events() const
      EXCLUDES(mutex_);  ///< copy, in recording order

  /// One JSON object per line:
  /// {"seq":N,"kind":"span|instant","name":..,"cat":..,"step":N,
  ///  "ts_us":F,"dur_us":F,"args":{..}}
  void write_jsonl(std::ostream& out) const;

  /// {"traceEvents":[...]}: spans as "ph":"X" complete events, instants as
  /// "ph":"i"; loads directly in chrome://tracing and ui.perfetto.dev.
  void write_chrome_trace(std::ostream& out) const;

 private:
  std::chrono::steady_clock::time_point start_;
  mutable util::Mutex mutex_;
  std::vector<TraceEvent> events_ GUARDED_BY(mutex_);
  std::uint64_t next_seq_ GUARDED_BY(mutex_) = 0;
};

/// Parses a stream produced by Tracer::write_jsonl back into events.
/// Throws std::invalid_argument on malformed lines (blank lines are
/// skipped). Covers the subset of JSON the writer emits.
std::vector<TraceEvent> read_trace_jsonl(std::istream& in);

/// RAII trace-file writer: guarantees the tracer's events reach `path`
/// even when the guarded code (core::simulate) exits via exception.
/// Construct before the run; call flush() on the happy path to write
/// eagerly and surface I/O errors (std::runtime_error). If flush() was
/// never reached — an exception is unwinding — the destructor writes the
/// file and swallows any error, so a crashed run still leaves its partial
/// trace behind for diagnosis.
class TraceFileGuard {
 public:
  enum class Format { kJsonl, kChromeTrace };

  /// Arms the guard; a null tracer or empty path makes it a no-op.
  TraceFileGuard(const Tracer* tracer, std::string path, Format format);
  ~TraceFileGuard();

  TraceFileGuard(const TraceFileGuard&) = delete;
  TraceFileGuard& operator=(const TraceFileGuard&) = delete;

  /// Writes the trace now and disarms the destructor. Throws
  /// std::runtime_error when the file cannot be written.
  void flush();

 private:
  void write() const;

  const Tracer* tracer_;
  std::string path_;
  Format format_;
  bool done_ = false;
};

}  // namespace mmog::obs
