#include "ckpt/checkpoint.hpp"

#include <cmath>
#include <cstddef>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "obs/audit.hpp"
#include "obs/jsonio.hpp"
#include "util/atomic_file.hpp"
#include "util/units.hpp"

namespace mmog::ckpt {

namespace {

constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();

[[noreturn]] void bad(const std::string& what) {
  throw CheckpointError("checkpoint: " + what);
}

// ---------------------------------------------------------------- writing

void append_resources(std::string& out, const util::ResourceVector& v) {
  out += '[';
  for (std::size_t i = 0; i < util::kResourceKinds; ++i) {
    if (i) out += ',';
    out += obs::json_double(v.v[i]);
  }
  out += ']';
}

/// Steps that can be the kNever sentinel (hold-forever allocations) render
/// as -1: SIZE_MAX does not survive a round-trip through a JSON double.
void append_step_or_never(std::string& out, std::size_t v) {
  out += v == kNever ? std::string("-1") : std::to_string(v);
}

void append_sla(std::string& out, const core::SlaTracker::State& s) {
  out += "\"stats\":{\"steps\":" + std::to_string(s.stats.steps);
  out += ",\"downtime_steps\":" + std::to_string(s.stats.downtime_steps);
  out += ",\"shed_steps\":" + std::to_string(s.stats.shed_steps);
  out += ",\"breach_episodes\":" + std::to_string(s.stats.breach_episodes);
  out += ",\"recoveries\":" + std::to_string(s.stats.recoveries);
  out +=
      ",\"longest_breach_steps\":" + std::to_string(s.stats.longest_breach_steps);
  out += ",\"mean_time_to_recover_steps\":" +
         obs::json_double(s.stats.mean_time_to_recover_steps);
  out += ",\"max_time_to_recover_steps\":" +
         std::to_string(s.stats.max_time_to_recover_steps);
  out += "},\"streak\":" + std::to_string(s.streak);
  out += ",\"recovered_steps_sum\":" + obs::json_double(s.recovered_steps_sum);
}

void append_metrics_rows(std::string& out,
                         const std::vector<core::StepMetrics>& rows) {
  out += "\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& m = rows[i];
    if (i) out += ',';
    out += '[';
    for (std::size_t r = 0; r < util::kResourceKinds; ++r) {
      out += obs::json_double(m.allocated.v[r]);
      out += ',';
    }
    for (std::size_t r = 0; r < util::kResourceKinds; ++r) {
      out += obs::json_double(m.used.v[r]);
      out += ',';
    }
    for (std::size_t r = 0; r < util::kResourceKinds; ++r) {
      out += obs::json_double(m.shortfall.v[r]);
      out += ',';
    }
    out += std::to_string(m.machines);
    out += ']';
  }
  out += ']';
}

std::string hash_hex(std::uint64_t h) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (std::size_t i = 0; i < 16; ++i) {
    out[15 - i] = kDigits[h & 0xF];
    h >>= 4;
  }
  return out;
}

// ---------------------------------------------------------------- parsing

double require_number(const obs::JsonValue& obj, const char* key,
                      const char* where) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind() != obs::JsonValue::Kind::kNumber) {
    bad(std::string(where) + ": missing numeric field \"" + key + "\"");
  }
  return v->as_number();
}

std::size_t require_index(const obs::JsonValue& obj, const char* key,
                          const char* where) {
  const double d = require_number(obj, key, where);
  if (d < 0 || d != std::floor(d) || d > 9.007199254740992e15) {
    bad(std::string(where) + ": field \"" + key +
        "\" is not a non-negative integer");
  }
  return static_cast<std::size_t>(d);
}

std::size_t require_step_or_never(const obs::JsonValue& obj, const char* key,
                                  const char* where) {
  const double d = require_number(obj, key, where);
  if (d == -1.0) return kNever;
  if (d < 0 || d != std::floor(d)) {
    bad(std::string(where) + ": field \"" + key + "\" is not a step");
  }
  return static_cast<std::size_t>(d);
}

const std::string& require_string(const obs::JsonValue& obj, const char* key,
                                  const char* where) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind() != obs::JsonValue::Kind::kString) {
    bad(std::string(where) + ": missing string field \"" + key + "\"");
  }
  return v->as_string();
}

const std::vector<obs::JsonValue>& require_array(const obs::JsonValue& obj,
                                                 const char* key,
                                                 const char* where) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind() != obs::JsonValue::Kind::kArray) {
    bad(std::string(where) + ": missing array field \"" + key + "\"");
  }
  return v->as_array();
}

const obs::JsonValue& require_object(const obs::JsonValue& obj,
                                     const char* key, const char* where) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind() != obs::JsonValue::Kind::kObject) {
    bad(std::string(where) + ": missing object field \"" + key + "\"");
  }
  return *v;
}

const obs::JsonValue& require_field(const obs::JsonValue& obj,
                                    const char* key, const char* where) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr) {
    bad(std::string(where) + ": missing field \"" + key + "\"");
  }
  return *v;
}

util::ResourceVector parse_resources(const obs::JsonValue& v,
                                     const char* where) {
  if (v.kind() != obs::JsonValue::Kind::kArray ||
      v.as_array().size() != util::kResourceKinds) {
    bad(std::string(where) + ": resource vector must be an array of " +
        std::to_string(util::kResourceKinds) + " numbers");
  }
  util::ResourceVector out{};
  for (std::size_t i = 0; i < util::kResourceKinds; ++i) {
    out.v[i] = v.as_array()[i].as_number();
  }
  return out;
}

fault::FaultKind parse_fault_kind(const std::string& name) {
  if (name == "outage") return fault::FaultKind::kOutage;
  if (name == "capacity") return fault::FaultKind::kCapacityLoss;
  if (name == "latency") return fault::FaultKind::kLatencyDegradation;
  if (name == "flap") return fault::FaultKind::kGrantFlap;
  bad("unknown fault kind \"" + name + "\"");
}

core::SlaTracker::State parse_sla(const obs::JsonValue& obj,
                                  const char* where) {
  core::SlaTracker::State s;
  const obs::JsonValue& stats = require_object(obj, "stats", where);
  s.stats.steps = require_index(stats, "steps", where);
  s.stats.downtime_steps = require_index(stats, "downtime_steps", where);
  s.stats.shed_steps = require_index(stats, "shed_steps", where);
  s.stats.breach_episodes = require_index(stats, "breach_episodes", where);
  s.stats.recoveries = require_index(stats, "recoveries", where);
  s.stats.longest_breach_steps =
      require_index(stats, "longest_breach_steps", where);
  s.stats.mean_time_to_recover_steps =
      require_number(stats, "mean_time_to_recover_steps", where);
  s.stats.max_time_to_recover_steps =
      require_index(stats, "max_time_to_recover_steps", where);
  s.streak = require_index(obj, "streak", where);
  s.recovered_steps_sum = require_number(obj, "recovered_steps_sum", where);
  return s;
}

std::vector<core::StepMetrics> parse_metrics_rows(const obs::JsonValue& obj,
                                                  const char* where) {
  std::vector<core::StepMetrics> out;
  const auto& rows = require_array(obj, "rows", where);
  out.reserve(rows.size());
  for (const auto& row : rows) {
    if (row.kind() != obs::JsonValue::Kind::kArray ||
        row.as_array().size() != 3 * util::kResourceKinds + 1) {
      bad(std::string(where) + ": malformed metrics row");
    }
    const auto& cells = row.as_array();
    core::StepMetrics m;
    std::size_t c = 0;
    for (std::size_t r = 0; r < util::kResourceKinds; ++r) {
      m.allocated.v[r] = cells[c++].as_number();
    }
    for (std::size_t r = 0; r < util::kResourceKinds; ++r) {
      m.used.v[r] = cells[c++].as_number();
    }
    for (std::size_t r = 0; r < util::kResourceKinds; ++r) {
      m.shortfall.v[r] = cells[c++].as_number();
    }
    const double machines = cells[c].as_number();
    if (machines < 0 || machines != std::floor(machines)) {
      bad(std::string(where) + ": malformed machine count");
    }
    m.machines = static_cast<std::size_t>(machines);
    out.push_back(m);
  }
  return out;
}

/// Sequential cursor over the file's lines; every section is demanded in
/// its fixed position so a reordered or truncated file fails loudly.
class LineCursor {
 public:
  LineCursor(std::string_view text, std::size_t end)
      : text_(text), end_(end) {}

  bool done() const noexcept { return pos_ >= end_; }
  std::size_t line_number() const noexcept { return line_; }

  std::string_view next_raw(const char* expected) {
    if (done()) {
      bad(std::string("truncated: expected ") + expected +
          " after line " + std::to_string(line_));
    }
    const std::size_t eol = text_.find('\n', pos_);
    const std::size_t stop = eol == std::string_view::npos
                                 ? end_
                                 : std::min(eol, end_);
    std::string_view raw = text_.substr(pos_, stop - pos_);
    pos_ = eol == std::string_view::npos ? end_ : stop + 1;
    ++line_;
    return raw;
  }

  obs::JsonValue next(const char* expected) {
    const std::string_view raw = next_raw(expected);
    try {
      return obs::parse_json(raw);
    } catch (const std::invalid_argument& e) {
      bad("line " + std::to_string(line_) + " (" + expected +
          "): " + e.what());
    }
  }

  /// The next line, which must be a section object with the given name.
  obs::JsonValue section(const char* name) {
    obs::JsonValue v = next(name);
    if (v.kind() != obs::JsonValue::Kind::kObject) {
      bad("line " + std::to_string(line_) + ": expected a JSON object");
    }
    const obs::JsonValue* s = v.find("section");
    if (s == nullptr || s->kind() != obs::JsonValue::Kind::kString ||
        s->as_string() != name) {
      bad("line " + std::to_string(line_) + ": expected section \"" +
          name + "\"");
    }
    return v;
  }

 private:
  std::string_view text_;
  std::size_t end_ = 0;
  std::size_t pos_ = 0;
  std::size_t line_ = 0;
};

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string to_jsonl(const CheckpointFile& file) {
  const core::CheckpointState& st = file.state;
  std::string out;
  out.reserve(4096);

  // Header: identity, position, and the counts the parser walks by.
  out += "{\"magic\":\"";
  out += kMagic;
  out += "\",\"version\":" + std::to_string(kFormatVersion);
  out += ",\"next_step\":" + std::to_string(st.next_step);
  out += ",\"steps\":" + std::to_string(st.steps);
  out += ",\"units\":" + std::to_string(st.units.size());
  out += ",\"games\":" + std::to_string(st.game_step_metrics.size());
  out += "}\n";

  out += "{\"section\":\"extras\",\"data\":{";
  bool first = true;
  for (const auto& [key, value] : file.extras) {
    if (!first) out += ',';
    first = false;
    out += '"';
    obs::append_json_escaped(out, key);
    out += "\":\"";
    obs::append_json_escaped(out, value);
    out += '"';
  }
  out += "}}\n";

  out += "{\"section\":\"sim\",\"next_allocation_id\":" +
         std::to_string(st.next_allocation_id);
  out += ",\"unplaced_cpu_unit_steps\":" +
         obs::json_double(st.unplaced_cpu_unit_steps);
  out += ",\"total_cost\":" + obs::json_double(st.total_cost);
  out += "}\n";

  out += "{\"section\":\"faults\",\"events\":[";
  for (std::size_t i = 0; i < st.fault_events.size(); ++i) {
    const auto& e = st.fault_events[i];
    if (i) out += ',';
    out += "{\"kind\":\"";
    out += fault::fault_kind_name(e.kind);
    out += "\",\"dc\":" + std::to_string(e.dc_index);
    out += ",\"from\":" + std::to_string(e.from_step);
    out += ",\"to\":" + std::to_string(e.to_step);
    out += ",\"severity\":" + obs::json_double(e.severity);
    out += '}';
  }
  out += "]}\n";

  out += "{\"section\":\"ledgers\",\"items\":[";
  for (std::size_t i = 0; i < st.ledgers.size(); ++i) {
    const auto& l = st.ledgers[i];
    if (i) out += ',';
    out += "{\"in_use\":";
    append_resources(out, l.in_use);
    out += ",\"capacity_fraction\":" + obs::json_double(l.capacity_fraction);
    out += ",\"cpu_sum\":" + obs::json_double(l.cpu_sum);
    out += ",\"cpu_peak\":" + obs::json_double(l.cpu_peak);
    out += ",\"origin_sum\":{";
    bool first_origin = true;
    for (const auto& [region, sum] : l.origin_sum) {
      if (!first_origin) out += ',';
      first_origin = false;
      out += '"';
      obs::append_json_escaped(out, region);
      out += "\":" + obs::json_double(sum);
    }
    out += "}}";
  }
  out += "]}\n";

  for (std::size_t i = 0; i < st.units.size(); ++i) {
    const auto& u = st.units[i];
    out += "{\"section\":\"unit\",\"index\":" + std::to_string(i);
    out += ",\"game\":" + std::to_string(u.game_id);
    out += ",\"region\":\"";
    obs::append_json_escaped(out, u.region);
    out += "\",\"allocated\":";
    append_resources(out, u.allocated);
    out += ",\"allocations\":[";
    for (std::size_t a = 0; a < u.allocations.size(); ++a) {
      const auto& al = u.allocations[a];
      if (a) out += ',';
      out += "{\"id\":" + std::to_string(al.id);
      out += ",\"dc\":" + std::to_string(al.dc_index);
      out += ",\"game\":" + std::to_string(al.game_id);
      out += ",\"group\":" + std::to_string(al.group_id);
      out += ",\"region_id\":" + std::to_string(al.region_id);
      out += ",\"amount\":";
      append_resources(out, al.amount);
      out += ",\"start\":" + std::to_string(al.start_step);
      out += ",\"usable\":" + std::to_string(al.usable_step);
      out += ",\"release\":";
      append_step_or_never(out, al.earliest_release_step);
      out += '}';
    }
    out += "],\"backoff\":[";
    for (std::size_t b = 0; b < u.backoff.size(); ++b) {
      const auto& e = u.backoff[b];
      if (b) out += ',';
      out += "{\"dc\":" + std::to_string(e.dc);
      out += ",\"failures\":" + std::to_string(e.failures);
      out += ",\"until\":" + std::to_string(e.until);
      out += '}';
    }
    out += "],\"groups\":[";
    for (std::size_t g = 0; g < u.groups.size(); ++g) {
      const auto& gr = u.groups[g];
      if (g) out += ',';
      out += "{\"predictor\":\"";
      obs::append_json_escaped(out, gr.predictor);
      out += "\",\"state\":[";
      for (std::size_t s = 0; s < gr.state.size(); ++s) {
        if (s) out += ',';
        out += obs::json_double(gr.state[s]);
      }
      out += "],\"last_prediction\":" + obs::json_double(gr.last_prediction);
      out += ",\"abs_error_ewma\":" + obs::json_double(gr.abs_error_ewma);
      out += '}';
    }
    out += "]}\n";
  }

  out += "{\"section\":\"metrics\",\"scope\":\"global\",";
  append_metrics_rows(out, st.step_metrics);
  out += "}\n";
  for (std::size_t g = 0; g < st.game_step_metrics.size(); ++g) {
    out += "{\"section\":\"metrics\",\"scope\":\"game\",\"index\":" +
           std::to_string(g) + ",";
    append_metrics_rows(out, st.game_step_metrics[g]);
    out += "}\n";
  }

  out += "{\"section\":\"sla\",\"scope\":\"global\",";
  append_sla(out, st.overall_sla);
  out += "}\n";
  for (std::size_t g = 0; g < st.game_sla.size(); ++g) {
    out += "{\"section\":\"sla\",\"scope\":\"game\",\"index\":" +
           std::to_string(g) + ",";
    append_sla(out, st.game_sla[g]);
    out += "}\n";
  }

  out += "{\"section\":\"counters\",\"data\":{";
  first = true;
  for (const auto& [name, value] : st.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    obs::append_json_escaped(out, name);
    out += "\":" + obs::json_double(value);
  }
  out += "}}\n";

  out += "{\"section\":\"audit\",\"count\":" +
         std::to_string(st.audit_records.size()) + "}\n";
  for (const auto& record : st.audit_records) {
    out += obs::audit_record_to_json(record);
    out += '\n';
  }

  // Footer: FNV-1a 64 over every byte above, including the last newline.
  out += "{\"footer\":\"fnv1a64\",\"hash\":\"" + hash_hex(fnv1a64(out)) +
         "\"}\n";
  return out;
}

CheckpointFile parse_jsonl(std::string_view text) {
  if (text.empty()) bad("empty file");

  // Locate the footer: the last non-empty line. Everything before its
  // first byte is the checksummed region.
  std::size_t end = text.size();
  while (end > 0 && text[end - 1] == '\n') --end;
  if (end == 0) bad("empty file");
  const std::size_t last_nl = text.rfind('\n', end - 1);
  const std::size_t footer_start = last_nl == std::string_view::npos
                                       ? 0
                                       : last_nl + 1;
  if (footer_start == 0) bad("truncated: no footer line");

  obs::JsonValue footer = obs::JsonValue::make_null();
  try {
    footer = obs::parse_json(text.substr(footer_start, end - footer_start));
  } catch (const std::invalid_argument&) {
    bad("malformed footer line (file truncated?)");
  }
  if (footer.kind() != obs::JsonValue::Kind::kObject ||
      footer.find("footer") == nullptr) {
    bad("missing footer line (file truncated?)");
  }
  if (require_string(footer, "footer", "footer") != "fnv1a64") {
    bad("unknown footer checksum kind");
  }
  const std::string& want = require_string(footer, "hash", "footer");
  const std::string got = hash_hex(fnv1a64(text.substr(0, footer_start)));
  if (want != got) {
    bad("checksum mismatch (file corrupted): footer " + want +
        ", content " + got);
  }

  LineCursor cur(text, footer_start);
  CheckpointFile file;
  core::CheckpointState& st = file.state;

  const obs::JsonValue header = cur.next("header");
  if (header.kind() != obs::JsonValue::Kind::kObject ||
      header.find("magic") == nullptr ||
      header.at("magic").kind() != obs::JsonValue::Kind::kString ||
      header.at("magic").as_string() != kMagic) {
    bad("not a checkpoint file (bad magic)");
  }
  const std::size_t version = require_index(header, "version", "header");
  if (version != kFormatVersion) {
    bad("unsupported version " + std::to_string(version) + " (expected " +
        std::to_string(kFormatVersion) + ")");
  }
  st.next_step = require_index(header, "next_step", "header");
  st.steps = require_index(header, "steps", "header");
  const std::size_t n_units = require_index(header, "units", "header");
  const std::size_t n_games = require_index(header, "games", "header");

  const obs::JsonValue extras = cur.section("extras");
  for (const auto& [key, value] :
       require_object(extras, "data", "extras").members()) {
    if (value.kind() != obs::JsonValue::Kind::kString) {
      bad("extras: value of \"" + key + "\" is not a string");
    }
    file.extras.emplace(key, value.as_string());
  }

  const obs::JsonValue sim = cur.section("sim");
  st.next_allocation_id = require_index(sim, "next_allocation_id", "sim");
  st.unplaced_cpu_unit_steps =
      require_number(sim, "unplaced_cpu_unit_steps", "sim");
  st.total_cost = require_number(sim, "total_cost", "sim");

  const obs::JsonValue faults = cur.section("faults");
  for (const auto& ev : require_array(faults, "events", "faults")) {
    fault::FaultEvent e;
    e.kind = parse_fault_kind(require_string(ev, "kind", "faults"));
    e.dc_index = require_index(ev, "dc", "faults");
    e.from_step = require_index(ev, "from", "faults");
    e.to_step = require_index(ev, "to", "faults");
    e.severity = require_number(ev, "severity", "faults");
    st.fault_events.push_back(e);
  }

  const obs::JsonValue ledgers = cur.section("ledgers");
  for (const auto& item : require_array(ledgers, "items", "ledgers")) {
    core::LedgerCheckpoint l;
    l.in_use = parse_resources(require_field(item, "in_use", "ledgers"),
                               "ledgers");
    l.capacity_fraction = require_number(item, "capacity_fraction", "ledgers");
    l.cpu_sum = require_number(item, "cpu_sum", "ledgers");
    l.cpu_peak = require_number(item, "cpu_peak", "ledgers");
    for (const auto& [region, sum] :
         require_object(item, "origin_sum", "ledgers").members()) {
      l.origin_sum.emplace(region, sum.as_number());
    }
    st.ledgers.push_back(std::move(l));
  }

  st.units.reserve(n_units);
  for (std::size_t i = 0; i < n_units; ++i) {
    const obs::JsonValue unit = cur.section("unit");
    if (require_index(unit, "index", "unit") != i) {
      bad("unit sections out of order");
    }
    core::UnitCheckpoint u;
    u.game_id = require_index(unit, "game", "unit");
    u.region = require_string(unit, "region", "unit");
    u.allocated =
        parse_resources(require_field(unit, "allocated", "unit"), "unit");
    for (const auto& av : require_array(unit, "allocations", "unit")) {
      dc::Allocation al;
      al.id = require_index(av, "id", "unit");
      al.dc_index = require_index(av, "dc", "unit");
      al.game_id = require_index(av, "game", "unit");
      al.group_id = require_index(av, "group", "unit");
      al.region_id = require_index(av, "region_id", "unit");
      al.amount =
          parse_resources(require_field(av, "amount", "unit"), "unit");
      al.start_step = require_index(av, "start", "unit");
      al.usable_step = require_index(av, "usable", "unit");
      al.earliest_release_step = require_step_or_never(av, "release", "unit");
      u.allocations.push_back(al);
    }
    for (const auto& bv : require_array(unit, "backoff", "unit")) {
      fault::BackoffTracker::EntryView e;
      e.dc = require_index(bv, "dc", "unit");
      e.failures = require_index(bv, "failures", "unit");
      e.until = require_index(bv, "until", "unit");
      u.backoff.push_back(e);
    }
    for (const auto& gv : require_array(unit, "groups", "unit")) {
      core::GroupCheckpoint g;
      g.predictor = require_string(gv, "predictor", "unit");
      for (const auto& s : require_array(gv, "state", "unit")) {
        g.state.push_back(s.as_number());
      }
      g.last_prediction = require_number(gv, "last_prediction", "unit");
      g.abs_error_ewma = require_number(gv, "abs_error_ewma", "unit");
      u.groups.push_back(std::move(g));
    }
    st.units.push_back(std::move(u));
  }

  const obs::JsonValue metrics = cur.section("metrics");
  if (require_string(metrics, "scope", "metrics") != "global") {
    bad("expected the global metrics section first");
  }
  st.step_metrics = parse_metrics_rows(metrics, "metrics");
  st.game_step_metrics.reserve(n_games);
  for (std::size_t g = 0; g < n_games; ++g) {
    const obs::JsonValue gm = cur.section("metrics");
    if (require_string(gm, "scope", "metrics") != "game" ||
        require_index(gm, "index", "metrics") != g) {
      bad("game metrics sections out of order");
    }
    st.game_step_metrics.push_back(parse_metrics_rows(gm, "metrics"));
  }

  const obs::JsonValue sla = cur.section("sla");
  if (require_string(sla, "scope", "sla") != "global") {
    bad("expected the global sla section first");
  }
  st.overall_sla = parse_sla(sla, "sla");
  st.game_sla.reserve(n_games);
  for (std::size_t g = 0; g < n_games; ++g) {
    const obs::JsonValue gs = cur.section("sla");
    if (require_string(gs, "scope", "sla") != "game" ||
        require_index(gs, "index", "sla") != g) {
      bad("game sla sections out of order");
    }
    st.game_sla.push_back(parse_sla(gs, "sla"));
  }

  const obs::JsonValue counters = cur.section("counters");
  for (const auto& [name, value] :
       require_object(counters, "data", "counters").members()) {
    st.counters.emplace(name, value.as_number());
  }

  const obs::JsonValue audit = cur.section("audit");
  const std::size_t n_audit = require_index(audit, "count", "audit");
  std::string audit_lines;
  for (std::size_t i = 0; i < n_audit; ++i) {
    audit_lines += cur.next_raw("audit record");
    audit_lines += '\n';
  }
  try {
    std::istringstream in(audit_lines);
    st.audit_records = obs::read_audit_jsonl(in);
  } catch (const std::exception& e) {
    bad(std::string("malformed audit record: ") + e.what());
  }
  if (st.audit_records.size() != n_audit) {
    bad("audit record count mismatch");
  }

  if (!cur.done()) {
    bad("trailing content after the audit section");
  }
  return file;
}

void write_checkpoint_file(const std::string& path,
                           const CheckpointFile& file) {
  util::AtomicFileWriter writer(path);
  writer.stream() << to_jsonl(file);
  writer.commit(/*keep_previous=*/true);
}

namespace {

/// Reads a whole file; returns false (with a note) when it cannot be read.
bool slurp(const std::string& path, std::string& out, std::string& note) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    note = path + ": cannot open";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    note = path + ": read error";
    return false;
  }
  out = buf.str();
  return true;
}

}  // namespace

LoadedCheckpoint load_newest_valid(const std::string& path) {
  LoadedCheckpoint result;
  const std::string candidates[] = {path, path + ".prev"};
  for (const std::string& candidate : candidates) {
    std::string text;
    std::string note;
    if (!slurp(candidate, text, note)) {
      result.notes.push_back(note);
      continue;
    }
    try {
      result.file = parse_jsonl(text);
      result.path = candidate;
      return result;
    } catch (const CheckpointError& e) {
      result.notes.push_back(candidate + ": " + e.what());
    }
  }
  std::string message = "no valid checkpoint at " + path;
  for (const std::string& note : result.notes) {
    message += "; " + note;
  }
  throw CheckpointError(message);
}

// ------------------------------------------------------------------ diff

namespace {

std::string brief(const obs::JsonValue& v) {
  switch (v.kind()) {
    case obs::JsonValue::Kind::kNull:
      return "null";
    case obs::JsonValue::Kind::kBool:
      return v.as_bool() ? "true" : "false";
    case obs::JsonValue::Kind::kNumber:
      return obs::json_double(v.as_number());
    case obs::JsonValue::Kind::kString:
      return "\"" + v.as_string() + "\"";
    case obs::JsonValue::Kind::kArray:
      return "<array of " + std::to_string(v.as_array().size()) + ">";
    case obs::JsonValue::Kind::kObject:
      return "<object of " + std::to_string(v.members().size()) + ">";
  }
  return "?";
}

class Differ {
 public:
  explicit Differ(std::size_t max_notes) : max_notes_(max_notes) {}

  void note(const std::string& text) {
    ++total_;
    if (notes_.size() < max_notes_) notes_.push_back(text);
  }

  void compare(const obs::JsonValue& a, const obs::JsonValue& b,
               const std::string& path) {
    if (a.kind() != b.kind()) {
      note(path + ": " + brief(a) + " vs " + brief(b));
      return;
    }
    switch (a.kind()) {
      case obs::JsonValue::Kind::kNull:
        return;
      case obs::JsonValue::Kind::kBool:
      case obs::JsonValue::Kind::kNumber:
      case obs::JsonValue::Kind::kString: {
        const std::string sa = brief(a);
        const std::string sb = brief(b);
        if (sa != sb) note(path + ": " + sa + " vs " + sb);
        return;
      }
      case obs::JsonValue::Kind::kArray: {
        const auto& va = a.as_array();
        const auto& vb = b.as_array();
        if (va.size() != vb.size()) {
          note(path + ": " + std::to_string(va.size()) + " vs " +
               std::to_string(vb.size()) + " elements");
        }
        const std::size_t n = std::min(va.size(), vb.size());
        for (std::size_t i = 0; i < n; ++i) {
          compare(va[i], vb[i], path + "[" + std::to_string(i) + "]");
        }
        return;
      }
      case obs::JsonValue::Kind::kObject: {
        for (const auto& [key, value] : a.members()) {
          const obs::JsonValue* other = b.find(key);
          if (other == nullptr) {
            note(path + "." + key + ": only in first");
            continue;
          }
          compare(value, *other, path + "." + key);
        }
        for (const auto& [key, value] : b.members()) {
          if (a.find(key) == nullptr) {
            note(path + "." + key + ": only in second");
          }
        }
        return;
      }
    }
  }

  obs::DiffResult finish() {
    obs::DiffResult result;
    if (total_ > notes_.size()) {
      notes_.push_back("... and " + std::to_string(total_ - notes_.size()) +
                       " more differences");
    }
    result.notes = std::move(notes_);
    result.outcome_identical = total_ == 0;
    return result;
  }

 private:
  std::size_t max_notes_;
  std::size_t total_ = 0;
  std::vector<std::string> notes_;
};

/// Section-keyed view of a checkpoint's lines: pairs sections by identity
/// ("unit[3]", "sla.game[1]", "audit[17]") so runs of different shapes
/// still diff meaningfully instead of misaligning every later line.
std::vector<std::pair<std::string, obs::JsonValue>> keyed_lines(
    std::string_view text) {
  std::vector<std::pair<std::string, obs::JsonValue>> out;
  std::size_t end = text.size();
  while (end > 0 && text[end - 1] == '\n') --end;
  const std::size_t last_nl = text.rfind('\n', end - 1);
  const std::size_t footer_start =
      last_nl == std::string_view::npos ? 0 : last_nl + 1;
  LineCursor cur(text, footer_start);
  bool saw_header = false;
  std::size_t audit_index = 0;
  while (!cur.done()) {
    obs::JsonValue v = cur.next("line");
    std::string key;
    const obs::JsonValue* section =
        v.kind() == obs::JsonValue::Kind::kObject ? v.find("section")
                                                  : nullptr;
    if (!saw_header) {
      key = "header";
      saw_header = true;
    } else if (section == nullptr) {
      key = "audit[" + std::to_string(audit_index++) + "]";
    } else {
      key = section->as_string();
      if (const obs::JsonValue* scope = v.find("scope")) {
        key += "." + scope->as_string();
      }
      if (const obs::JsonValue* index = v.find("index")) {
        key += "[" + obs::json_double(index->as_number()) + "]";
      }
    }
    out.emplace_back(std::move(key), std::move(v));
  }
  return out;
}

}  // namespace

obs::DiffResult diff_checkpoints(std::string_view text_a,
                                 std::string_view text_b,
                                 std::size_t max_notes) {
  // Both sides must be intact checkpoints before fields are compared.
  (void)parse_jsonl(text_a);
  (void)parse_jsonl(text_b);

  const auto lines_a = keyed_lines(text_a);
  const auto lines_b = keyed_lines(text_b);
  Differ differ(max_notes);

  std::map<std::string, const obs::JsonValue*> index_b;
  for (const auto& [key, value] : lines_b) index_b.emplace(key, &value);
  std::map<std::string, bool> seen;
  for (const auto& [key, value] : lines_a) {
    seen[key] = true;
    const auto it = index_b.find(key);
    if (it == index_b.end()) {
      differ.note(key + ": only in first");
      continue;
    }
    differ.compare(value, *it->second, key);
  }
  for (const auto& [key, value] : lines_b) {
    if (!seen.contains(key)) differ.note(key + ": only in second");
  }
  return differ.finish();
}

}  // namespace mmog::ckpt
