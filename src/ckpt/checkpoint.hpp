#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/checkpoint.hpp"
#include "obs/report.hpp"

namespace mmog::ckpt {

/// Bumped whenever the on-disk layout changes; readers refuse anything
/// else (a checkpoint is a resume token, not an archival format).
inline constexpr std::uint32_t kFormatVersion = 1;

/// Magic of the header line; identifies the file type before any parsing.
inline constexpr std::string_view kMagic = "mmog-ckpt";

/// Any way a checkpoint file can be unusable: bad magic, unsupported
/// version, truncation, checksum mismatch, malformed section. The message
/// names the first problem found.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One complete checkpoint: the simulator's state plus tool-level payloads
/// that ride along (mmog_simulate stores its config echo and the serialized
/// neural model here so a restore never retrains). Extras are a sorted map
/// so serialization order is deterministic.
struct CheckpointFile {
  core::CheckpointState state;
  std::map<std::string, std::string> extras;
};

/// Serializes to the fixed-key JSONL format: a magic/version header line,
/// one line per section, and an FNV-1a-64 integrity footer over every
/// preceding byte. Doubles render via obs::json_double (shortest exact
/// form), so equal texts <=> equal states and the output is byte-stable
/// across save -> load -> save.
std::string to_jsonl(const CheckpointFile& file);

/// Parses and validates a serialized checkpoint. Throws CheckpointError on
/// bad magic, version mismatch, checksum mismatch, truncation or any
/// malformed section — a damaged checkpoint is never partially loaded.
CheckpointFile parse_jsonl(std::string_view text);

/// Writes atomically (temp file + fsync + rename) and keeps the previous
/// generation at "<path>.prev", so a crash mid-write leaves either the old
/// file or the new one — never a torn mix — and a corrupted newest file
/// still has a fallback. Throws std::runtime_error on I/O failure.
void write_checkpoint_file(const std::string& path, const CheckpointFile& file);

/// Result of load_newest_valid: the checkpoint plus where it came from and
/// why any newer candidate was skipped.
struct LoadedCheckpoint {
  CheckpointFile file;
  std::string path;  ///< the candidate actually loaded
  /// One message per skipped candidate (missing / failed validation), in
  /// the order tried; callers surface these so corruption is never silent.
  std::vector<std::string> notes;
};

/// Loads `path`, falling back to "<path>.prev" when the newest generation
/// is missing or fails validation. Throws CheckpointError when no
/// candidate is valid (the message lists every failure).
LoadedCheckpoint load_newest_valid(const std::string& path);

/// Field-for-field comparison of two serialized checkpoints (mmog_diff's
/// --kind checkpoint). Both must parse — validation failures throw
/// CheckpointError. Differences are reported as path-annotated notes like
/// "units[3].groups[2].state[17]: 1.5 vs 2". At most `max_notes` notes are
/// collected; a final note reports how many more differences were found.
obs::DiffResult diff_checkpoints(std::string_view text_a,
                                 std::string_view text_b,
                                 std::size_t max_notes = 32);

/// FNV-1a 64-bit over `bytes` — the footer checksum. Exposed for tests
/// that forge corrupted files.
std::uint64_t fnv1a64(std::string_view bytes);

}  // namespace mmog::ckpt
