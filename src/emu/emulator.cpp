#include "emu/emulator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace mmog::emu {
namespace {

Profile draw_profile(const ProfileMix& mix, util::Rng& rng) {
  const std::array<double, kProfileCount> weights = {
      mix.aggressive, mix.scout, mix.team, mix.camper};
  return static_cast<Profile>(rng.weighted_choice(weights));
}

}  // namespace

util::TimeSeries EmulatorTrace::total_series() const {
  util::TimeSeries out(util::kSampleStepSeconds);
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.total);
  return out;
}

std::vector<util::TimeSeries> EmulatorTrace::zone_series() const {
  std::vector<util::TimeSeries> out(world.zone_count(),
                                    util::TimeSeries(util::kSampleStepSeconds));
  for (auto& series : out) series.reserve(samples.size());
  for (const auto& s : samples) {
    for (std::size_t z = 0; z < world.zone_count(); ++z) {
      out[z].push_back(z < s.zone_counts.size() ? s.zone_counts[z] : 0.0);
    }
  }
  return out;
}

util::TimeSeries EmulatorTrace::interaction_series() const {
  util::TimeSeries out(util::kSampleStepSeconds);
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.interactions);
  return out;
}

Emulator::Emulator(const WorldConfig& world, const DatasetConfig& config)
    : world_(world), config_(config), rng_(config.seed) {
  zone_visits_.assign(world_.zone_count(), 0.0);
  team_cx_.assign(kTeams, 0.0);
  team_cy_.assign(kTeams, 0.0);
  // Hot-spot count scales with the world; they churn faster under high
  // instantaneous dynamics.
  const std::size_t n_hotspots =
      std::max<std::size_t>(2, world_.zone_count() / 32);
  hotspots_.resize(n_hotspots);
  for (auto& h : hotspots_) {
    h.x = rng_.uniform(0.0, world_.width());
    h.y = rng_.uniform(0.0, world_.height());
    h.ttl = static_cast<std::size_t>(rng_.uniform_int(100, 600));
  }
  const auto initial =
      static_cast<std::size_t>(std::max(1.0, target_population()));
  entities_.reserve(static_cast<std::size_t>(config_.peak_load) + 16);
  for (std::size_t i = 0; i < initial; ++i) spawn_entity();
}

double Emulator::target_population() const {
  const double t_hours = static_cast<double>(sample_index_) *
                         util::kSampleStepSeconds / 3600.0;
  double shape = 1.0;
  if (config_.peak_hours) {
    // Diurnal shape peaking in the late afternoon (§IV-D1), trough at night.
    const double phase =
        2.0 * std::numbers::pi * (t_hours - 18.0) / 24.0;
    shape = 0.55 + 0.45 * std::cos(phase);
  }
  // Slow modulation: the overall-dynamics knob.
  const double slow =
      1.0 + 0.35 * config_.overall_dynamics *
                std::sin(2.0 * std::numbers::pi * t_hours / 6.0);
  return std::max(8.0, config_.peak_load * shape * slow);
}

void Emulator::spawn_entity() {
  Entity e;
  e.x = rng_.uniform(0.0, world_.width());
  e.y = rng_.uniform(0.0, world_.height());
  e.preferred = draw_profile(config_.mix, rng_);
  e.current = e.preferred;
  e.team = static_cast<std::size_t>(rng_.uniform_int(0, kTeams - 1));
  e.camp_x = rng_.uniform(0.0, world_.width());
  e.camp_y = rng_.uniform(0.0, world_.height());
  entities_.push_back(e);
}

void Emulator::adjust_population() {
  const auto target = static_cast<std::size_t>(target_population());
  // Churn at most a few percent of the population per sample so joins and
  // quits look like sessions, not teleports.
  const std::size_t max_churn =
      std::max<std::size_t>(4, entities_.size() / 20);
  if (entities_.size() < target) {
    const std::size_t add = std::min(max_churn, target - entities_.size());
    for (std::size_t i = 0; i < add; ++i) spawn_entity();
  } else if (entities_.size() > target) {
    std::size_t drop = std::min(max_churn, entities_.size() - target);
    while (drop-- > 0 && !entities_.empty()) {
      const auto victim = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(entities_.size()) - 1));
      entities_[victim] = entities_.back();
      entities_.pop_back();
    }
  }
}

std::size_t Emulator::zone_of(double x, double y) const noexcept {
  auto zx = static_cast<std::size_t>(
      std::clamp(x / world_.zone_size, 0.0,
                 static_cast<double>(world_.zones_x) - 1e-9));
  auto zy = static_cast<std::size_t>(
      std::clamp(y / world_.zone_size, 0.0,
                 static_cast<double>(world_.zones_y) - 1e-9));
  return zy * world_.zones_x + zx;
}

void Emulator::move_entity(Entity& e) {
  // Dynamic profile switching (§IV-D1: entities prefer a profile but can
  // change dynamically).
  if (e.switch_cooldown > 0) {
    --e.switch_cooldown;
    if (e.switch_cooldown == 0) e.current = e.preferred;
  } else if (rng_.bernoulli(0.001 + 0.004 * config_.instantaneous_dynamics)) {
    e.current = draw_profile(config_.mix, rng_);
    e.switch_cooldown = static_cast<std::size_t>(rng_.uniform_int(20, 120));
  }

  // Base speed in world units per tick; fast-paced play moves faster.
  // Calibrated so a zone crossing takes a few 2-minute samples even under
  // high instantaneous dynamics — zone occupancy stays a signal rather
  // than white noise at the sampling interval.
  const double speed =
      (0.8 + 2.5 * config_.instantaneous_dynamics) *
      (0.75 + 0.5 * rng_.uniform());
  double tx = e.x, ty = e.y;
  switch (e.current) {
    case Profile::kAggressive: {
      // Seek the nearest interaction hot-spot (where opponents gather).
      double best = 1e18;
      for (const auto& h : hotspots_) {
        const double d = (h.x - e.x) * (h.x - e.x) + (h.y - e.y) * (h.y - e.y);
        if (d < best) {
          best = d;
          tx = h.x;
          ty = h.y;
        }
      }
      break;
    }
    case Profile::kScout: {
      // Head towards the least-visited zone in a random sample of zones.
      std::size_t best_zone = 0;
      double best_visits = 1e18;
      for (int trial = 0; trial < 4; ++trial) {
        const auto z = static_cast<std::size_t>(rng_.uniform_int(
            0, static_cast<std::int64_t>(world_.zone_count()) - 1));
        if (zone_visits_[z] < best_visits) {
          best_visits = zone_visits_[z];
          best_zone = z;
        }
      }
      const std::size_t zx = best_zone % world_.zones_x;
      const std::size_t zy = best_zone / world_.zones_x;
      tx = (static_cast<double>(zx) + 0.5) * world_.zone_size;
      ty = (static_cast<double>(zy) + 0.5) * world_.zone_size;
      break;
    }
    case Profile::kTeamPlayer: {
      tx = team_cx_[e.team];
      ty = team_cy_[e.team];
      break;
    }
    case Profile::kCamper: {
      tx = e.camp_x;
      ty = e.camp_y;
      break;
    }
  }
  const double dx = tx - e.x;
  const double dy = ty - e.y;
  const double dist = std::sqrt(dx * dx + dy * dy);
  if (dist > 1e-6) {
    const double step = std::min(speed, dist);
    e.x += dx / dist * step;
    e.y += dy / dist * step;
  }
  // Random jitter keeps zones from collapsing to points.
  e.x = std::clamp(e.x + rng_.normal(0.0, 1.5), 0.0, world_.width() - 1e-6);
  e.y = std::clamp(e.y + rng_.normal(0.0, 1.5), 0.0, world_.height() - 1e-6);
  zone_visits_[zone_of(e.x, e.y)] += 1.0;
}

void Emulator::tick() {
  // Update team centroids once per tick.
  std::vector<double> sx(kTeams, 0.0), sy(kTeams, 0.0);
  std::vector<std::size_t> n(kTeams, 0);
  for (const auto& e : entities_) {
    sx[e.team] += e.x;
    sy[e.team] += e.y;
    ++n[e.team];
  }
  for (std::size_t t = 0; t < kTeams; ++t) {
    if (n[t] > 0) {
      team_cx_[t] = sx[t] / static_cast<double>(n[t]);
      team_cy_[t] = sy[t] / static_cast<double>(n[t]);
    }
  }
  // Hot-spot churn: high instantaneous dynamics relocates them often.
  for (auto& h : hotspots_) {
    if (h.ttl == 0 ||
        rng_.bernoulli(0.0005 + 0.002 * config_.instantaneous_dynamics)) {
      h.x = rng_.uniform(0.0, world_.width());
      h.y = rng_.uniform(0.0, world_.height());
      h.ttl = static_cast<std::size_t>(rng_.uniform_int(100, 600));
    } else {
      --h.ttl;
    }
  }
  for (auto& e : entities_) move_entity(e);
  ++tick_index_;
}

ZoneSample Emulator::step_sample() {
  adjust_population();
  for (std::size_t t = 0; t < config_.ticks_per_sample; ++t) tick();
  ZoneSample sample;
  sample.zone_counts.assign(world_.zone_count(), 0.0);
  for (const auto& e : entities_) {
    sample.zone_counts[zone_of(e.x, e.y)] += 1.0;
  }
  sample.total = static_cast<double>(entities_.size());
  // Interaction intensity: pairwise encounters within each sub-zone.
  for (double c : sample.zone_counts) {
    sample.interactions += c * (c - 1.0) / 2.0;
  }
  ++sample_index_;
  return sample;
}

EmulatorTrace Emulator::run() {
  EmulatorTrace trace;
  trace.world = world_;
  trace.name = config_.name;
  trace.samples.reserve(config_.samples);
  for (std::size_t s = 0; s < config_.samples; ++s) {
    trace.samples.push_back(step_sample());
  }
  return trace;
}

}  // namespace mmog::emu
