#pragma once

#include <array>
#include <string_view>

#include "emu/emulator.hpp"

namespace mmog::emu {

/// The three signal types of §IV-D1: Type I — high instantaneous dynamics,
/// medium overall dynamics (sets 2, 3, 4); Type II — low instantaneous
/// dynamics (sets 6, 7, 8); Type III — medium instantaneous dynamics
/// (sets 1 and 5).
enum class SignalType { kTypeI, kTypeII, kTypeIII };

/// Signal type of data set `index` (0-based; set 1 of the paper = index 0).
constexpr SignalType signal_type(std::size_t index) noexcept {
  switch (index) {
    case 1:
    case 2:
    case 3: return SignalType::kTypeI;
    case 5:
    case 6:
    case 7: return SignalType::kTypeII;
    default: return SignalType::kTypeIII;  // sets 1 and 5 (indices 0, 4)
  }
}

constexpr std::string_view signal_type_name(SignalType t) noexcept {
  switch (t) {
    case SignalType::kTypeI: return "Type I";
    case SignalType::kTypeII: return "Type II";
    case SignalType::kTypeIII: return "Type III";
  }
  return "?";
}

/// The eight Table I emulator configurations. Player-behaviour percentages
/// are the paper's exactly; the peak-hours column follows the table; the
/// dynamics knobs encode the signal-type classification of §IV-D1 (the
/// magnitude columns are illegible in the archived copy).
std::array<DatasetConfig, 8> table1_datasets(std::uint64_t base_seed = 1000);

}  // namespace mmog::emu
