#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/timeseries.hpp"

namespace mmog::emu {

/// The four AI behaviour profiles of the paper's game emulator (§IV-D1),
/// matching Bartle's player types: achiever, explorer, socializer, killer.
enum class Profile : std::size_t {
  kAggressive = 0,  ///< seeks and interacts with opponents (killer)
  kScout = 1,       ///< explores uncharted zones, little interaction (explorer)
  kTeamPlayer = 2,  ///< acts in a group with teammates (socializer)
  kCamper = 3,      ///< hides and waits for opponents (achiever tactic)
};

inline constexpr std::size_t kProfileCount = 4;

/// Fractions of the entity population preferring each profile; they need not
/// sum to 1 (they are normalized internally).
struct ProfileMix {
  double aggressive = 0.25;
  double scout = 0.25;
  double team = 0.25;
  double camper = 0.25;

  double at(Profile p) const noexcept {
    switch (p) {
      case Profile::kAggressive: return aggressive;
      case Profile::kScout: return scout;
      case Profile::kTeamPlayer: return team;
      case Profile::kCamper: return camper;
    }
    return 0.0;
  }
};

/// Configuration of one emulated trace data set (one row of Table I).
struct DatasetConfig {
  std::string name = "Set";
  ProfileMix mix;
  bool peak_hours = false;     ///< diurnal population shape
  double peak_load = 1000.0;   ///< maximum entity count
  /// Variability of the entity interaction over a day, in [0,1].
  double overall_dynamics = 0.5;
  /// Variability of the entity interaction over two minutes, in [0,1]
  /// (typical of fast-paced FPS play).
  double instantaneous_dynamics = 0.5;
  std::uint64_t seed = 42;

  /// Simulated duration and sampling (paper: one day, 2-minute samples).
  std::size_t samples = util::kSamplesPerDay;
  std::size_t ticks_per_sample = 24;  ///< 5-second movement ticks
};

/// World geometry: a rectangular grid of square sub-zones (§IV-B: the game
/// world is partitioned into sub-zones small enough that entity count alone
/// characterizes each sub-zone's load).
struct WorldConfig {
  std::size_t zones_x = 12;
  std::size_t zones_y = 12;
  double zone_size = 60.0;  ///< world units per zone edge

  std::size_t zone_count() const noexcept { return zones_x * zones_y; }
  double width() const noexcept {
    return static_cast<double>(zones_x) * zone_size;
  }
  double height() const noexcept {
    return static_cast<double>(zones_y) * zone_size;
  }
};

/// One 2-minute sample of the emulated world.
struct ZoneSample {
  std::vector<double> zone_counts;  ///< entities per sub-zone
  double total = 0.0;               ///< entities in the world
  double interactions = 0.0;        ///< pairwise interaction intensity
};

/// A complete emulated trace: per-zone entity counts at every sample.
struct EmulatorTrace {
  WorldConfig world;
  std::string name;
  std::vector<ZoneSample> samples;

  /// Total entity count over time.
  util::TimeSeries total_series() const;

  /// Per-zone entity-count series (zone index = y * zones_x + x).
  std::vector<util::TimeSeries> zone_series() const;

  /// Interaction intensity over time.
  util::TimeSeries interaction_series() const;
};

/// The distributed-game emulator (§IV-D1). Entities are driven by the four
/// AI profiles with dynamic switching, attracted by moving interaction
/// hot-spots; population follows peak-hours shapes; the *overall* and
/// *instantaneous dynamics* knobs control slow and fast variability.
class Emulator {
 public:
  Emulator(const WorldConfig& world, const DatasetConfig& config);

  /// Runs the configured number of samples and returns the trace.
  EmulatorTrace run();

  /// Advances one 2-minute sample (ticks_per_sample movement ticks) and
  /// returns it. Exposed for incremental use and testing.
  ZoneSample step_sample();

  /// Current number of live entities.
  std::size_t entity_count() const noexcept { return entities_.size(); }

  const WorldConfig& world() const noexcept { return world_; }

 private:
  struct Entity {
    double x = 0.0, y = 0.0;
    Profile preferred = Profile::kScout;
    Profile current = Profile::kScout;
    std::size_t team = 0;
    double camp_x = 0.0, camp_y = 0.0;
    std::size_t switch_cooldown = 0;
  };

  struct Hotspot {
    double x = 0.0, y = 0.0;
    std::size_t ttl = 0;  ///< ticks until it moves elsewhere
  };

  void spawn_entity();
  void adjust_population();
  void tick();
  void move_entity(Entity& e);
  std::size_t zone_of(double x, double y) const noexcept;
  double target_population() const;

  WorldConfig world_;
  DatasetConfig config_;
  util::Rng rng_;
  std::vector<Entity> entities_;
  std::vector<Hotspot> hotspots_;
  std::vector<double> zone_visits_;  ///< scout exploration memory
  std::vector<double> team_cx_, team_cy_;
  std::size_t tick_index_ = 0;
  std::size_t sample_index_ = 0;
  static constexpr std::size_t kTeams = 8;
};

}  // namespace mmog::emu
