#include "emu/datasets.hpp"

namespace mmog::emu {

std::array<DatasetConfig, 8> table1_datasets(std::uint64_t base_seed) {
  // Table I behaviour percentages: Aggr / Scout / Team / Camp.
  struct Row {
    double aggr, scout, team, camp;
    bool peak_hours;
  };
  constexpr std::array<Row, 8> rows = {{
      {0.80, 0.10, 0.00, 0.10, false},  // Set 1
      {0.60, 0.10, 0.00, 0.20, false},  // Set 2
      {0.70, 0.20, 0.00, 0.10, false},  // Set 3
      {0.70, 0.30, 0.00, 0.00, false},  // Set 4
      {0.30, 0.40, 0.30, 0.00, true},   // Set 5
      {0.10, 0.80, 0.10, 0.00, true},   // Set 6
      {0.20, 0.40, 0.40, 0.00, true},   // Set 7
      {0.20, 0.80, 0.00, 0.00, true},   // Set 8
  }};

  std::array<DatasetConfig, 8> out;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    DatasetConfig c;
    c.name = "Set " + std::to_string(i + 1);
    c.mix = {rows[i].aggr, rows[i].scout, rows[i].team, rows[i].camp};
    c.peak_hours = rows[i].peak_hours;
    c.peak_load = 1000.0;
    switch (signal_type(i)) {
      case SignalType::kTypeI:  // high instantaneous, medium overall
        c.instantaneous_dynamics = 0.9;
        c.overall_dynamics = 0.5;
        break;
      case SignalType::kTypeII:  // low instantaneous
        c.instantaneous_dynamics = 0.1;
        c.overall_dynamics = 0.6;
        break;
      case SignalType::kTypeIII:  // medium instantaneous
        c.instantaneous_dynamics = 0.5;
        c.overall_dynamics = 0.5;
        break;
    }
    c.seed = base_seed + i;
    out[i] = c;
  }
  return out;
}

}  // namespace mmog::emu
