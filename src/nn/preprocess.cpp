#include "nn/preprocess.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mmog::nn {

std::vector<double> polyfit(std::span<const double> xs,
                            std::span<const double> ys, std::size_t degree) {
  if (xs.empty() || xs.size() != ys.size()) {
    throw std::invalid_argument("polyfit: empty or mismatched input");
  }
  if (degree >= xs.size()) {
    throw std::invalid_argument("polyfit: degree >= number of points");
  }
  const std::size_t m = degree + 1;
  // Normal equations A c = b with A[i][j] = sum x^(i+j), b[i] = sum y x^i.
  std::vector<double> powersums(2 * m - 1, 0.0);
  std::vector<double> b(m, 0.0);
  for (std::size_t s = 0; s < xs.size(); ++s) {
    double xp = 1.0;
    for (std::size_t p = 0; p < powersums.size(); ++p) {
      powersums[p] += xp;
      if (p < m) b[p] += ys[s] * xp;
      xp *= xs[s];
    }
  }
  std::vector<std::vector<double>> a(m, std::vector<double>(m, 0.0));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) a[i][j] = powersums[i + j];
  }
  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < m; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    const double diag = a[col][col];
    if (std::abs(diag) < 1e-12) {
      throw std::invalid_argument("polyfit: singular system");
    }
    for (std::size_t r = col + 1; r < m; ++r) {
      const double f = a[r][col] / diag;
      for (std::size_t c = col; c < m; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> coeffs(m, 0.0);
  for (std::size_t i = m; i-- > 0;) {
    double s = b[i];
    for (std::size_t j = i + 1; j < m; ++j) s -= a[i][j] * coeffs[j];
    coeffs[i] = s / a[i][i];
  }
  return coeffs;
}

double polyval(std::span<const double> coeffs, double x) noexcept {
  double y = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) y = y * x + coeffs[i];
  return y;
}

PolynomialSmoother::PolynomialSmoother(std::size_t degree, std::size_t window)
    : degree_(degree), window_(window) {
  if (window_ <= degree_) {
    throw std::invalid_argument("PolynomialSmoother: window must exceed degree");
  }
}

double PolynomialSmoother::smooth_last(std::span<const double> recent) const {
  if (recent.empty()) return 0.0;
  if (recent.size() <= degree_) return recent.back();
  const std::size_t n = std::min(window_, recent.size());
  const auto tail = recent.subspan(recent.size() - n, n);
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = static_cast<double>(i);
  const auto coeffs = polyfit(xs, tail, degree_);
  return polyval(coeffs, static_cast<double>(n - 1));
}

std::vector<double> PolynomialSmoother::smooth_series(
    std::span<const double> xs) const {
  std::vector<double> out(xs.size(), 0.0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out[i] = smooth_last(xs.subspan(0, i + 1));
  }
  return out;
}

void MinMaxNormalizer::fit(std::span<const double> xs) noexcept {
  if (xs.empty()) {
    lo_ = 0.0;
    hi_ = 1.0;
    return;
  }
  lo_ = *std::min_element(xs.begin(), xs.end());
  hi_ = *std::max_element(xs.begin(), xs.end());
  if (hi_ <= lo_) hi_ = lo_ + 1.0;
}

void MinMaxNormalizer::update(double x) noexcept {
  lo_ = std::min(lo_, x);
  hi_ = std::max(hi_, x);
  if (hi_ <= lo_) hi_ = lo_ + 1.0;
}

double MinMaxNormalizer::transform(double x) const noexcept {
  return (x - lo_) / (hi_ - lo_);
}

double MinMaxNormalizer::inverse(double y) const noexcept {
  return lo_ + y * (hi_ - lo_);
}

}  // namespace mmog::nn
