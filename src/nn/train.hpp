#pragma once

#include <cstddef>
#include <vector>

#include "nn/mlp.hpp"

namespace mmog::nn {

/// A supervised data set of (input, target) pairs.
struct Dataset {
  std::vector<std::vector<double>> inputs;
  std::vector<std::vector<double>> targets;

  std::size_t size() const noexcept { return inputs.size(); }
  bool empty() const noexcept { return inputs.empty(); }

  /// Splits off the first `fraction` of the samples as the training set and
  /// the remainder as the test set (the paper trains on "most of the
  /// previously collected samples" and tests on the rest, §IV-C).
  std::pair<Dataset, Dataset> split(double fraction) const;
};

/// Configuration of the era-based trainer (§IV-C: a training era presents
/// every training sample, adjusts the weights, then tests).
struct TrainConfig {
  std::size_t max_eras = 200;       ///< hard cap on training eras
  double learning_rate = 0.05;      ///< SGD step size
  double momentum = 0.5;            ///< classical momentum
  double target_rmse = 0.0;         ///< stop early when test RMSE <= this
  std::size_t patience = 20;        ///< stop when test RMSE has not improved
                                    ///< for this many eras (0 = disabled)
  /// Present the training samples in a fresh random order each era.
  /// Time-series windows are strongly autocorrelated; sequential
  /// presentation makes SGD chase the local signal level instead of the
  /// mapping. Disable only for tests that need strict ordering.
  bool shuffle = true;
  std::uint64_t shuffle_seed = 7;
};

/// Outcome of a training run.
struct TrainResult {
  std::size_t eras = 0;         ///< eras actually run
  double train_rmse = 0.0;      ///< RMSE on the training split after the run
  double test_rmse = 0.0;       ///< RMSE on the test split after the run
  bool converged = false;       ///< true if stopped by target/patience
};

/// Trains `net` on `train` with per-era testing on `test` until convergence
/// or the era cap. Restores the best-on-test parameters seen during the run.
TrainResult train(Mlp& net, const Dataset& train, const Dataset& test,
                  const TrainConfig& config);

}  // namespace mmog::nn
