#pragma once

#include <iosfwd>

#include "nn/mlp.hpp"

namespace mmog::nn {

/// Writes a trained network as a small text format: a magic line, the layer
/// sizes, then all parameters (weights and biases) in full precision.
/// Enables the §IV-C workflow of training offline and shipping the model to
/// the online predictors.
void save_mlp(std::ostream& out, const Mlp& net);

/// Reads a network written by save_mlp. Throws std::runtime_error on a
/// malformed stream (bad magic, wrong counts, non-numeric data).
Mlp load_mlp(std::istream& in);

}  // namespace mmog::nn
