#include "nn/serialize.hpp"

#include <iomanip>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace mmog::nn {

namespace {
constexpr const char* kMagic = "mmog-mlp-v1";
}

void save_mlp(std::ostream& out, const Mlp& net) {
  out << kMagic << '\n';
  const auto& sizes = net.layer_sizes();
  out << sizes.size();
  for (std::size_t s : sizes) out << ' ' << s;
  out << '\n';
  const auto params = net.parameters();
  out << params.size() << '\n';
  out << std::setprecision(17);
  for (std::size_t i = 0; i < params.size(); ++i) {
    out << params[i] << (i + 1 == params.size() ? '\n' : ' ');
  }
}

Mlp load_mlp(std::istream& in) {
  std::string magic;
  if (!(in >> magic) || magic != kMagic) {
    throw std::runtime_error("load_mlp: bad magic");
  }
  std::size_t n_layers = 0;
  if (!(in >> n_layers) || n_layers < 2 || n_layers > 64) {
    throw std::runtime_error("load_mlp: bad layer count");
  }
  std::vector<std::size_t> sizes(n_layers);
  for (auto& s : sizes) {
    if (!(in >> s) || s == 0) {
      throw std::runtime_error("load_mlp: bad layer size");
    }
  }
  std::size_t n_params = 0;
  if (!(in >> n_params)) throw std::runtime_error("load_mlp: bad param count");
  std::vector<double> params(n_params);
  for (auto& p : params) {
    if (!(in >> p)) throw std::runtime_error("load_mlp: truncated parameters");
  }
  // Placeholder init only — set_parameters() below overwrites every weight.
  util::Rng rng(0);  // mmog-lint: allow(seed-literal)
  Mlp net(std::move(sizes), rng);
  if (net.parameter_count() != n_params) {
    throw std::runtime_error("load_mlp: parameter count mismatch");
  }
  net.set_parameters(params);
  return net;
}

}  // namespace mmog::nn
