#include "nn/mlp.hpp"

#include <cmath>
#include <stdexcept>

namespace mmog::nn {

Mlp::Mlp(std::vector<std::size_t> layer_sizes, util::Rng& rng)
    : layer_sizes_(std::move(layer_sizes)) {
  if (layer_sizes_.size() < 2) {
    throw std::invalid_argument("Mlp: need at least input and output layers");
  }
  for (std::size_t s : layer_sizes_) {
    if (s == 0) throw std::invalid_argument("Mlp: zero-size layer");
  }
  layers_.resize(layer_sizes_.size() - 1);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Layer& layer = layers_[l];
    layer.in = layer_sizes_[l];
    layer.out = layer_sizes_[l + 1];
    layer.weights.resize(layer.in * layer.out);
    layer.biases.assign(layer.out, 0.0);
    layer.w_moment.assign(layer.weights.size(), 0.0);
    layer.b_moment.assign(layer.out, 0.0);
    const double scale =
        std::sqrt(6.0 / static_cast<double>(layer.in + layer.out));
    for (auto& w : layer.weights) w = rng.uniform(-scale, scale);
  }
}

std::size_t Mlp::parameter_count() const noexcept {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l.weights.size() + l.biases.size();
  return n;
}

void Mlp::forward_recording(
    std::span<const double> input,
    std::vector<std::vector<double>>& activations) const {
  activations.clear();
  activations.emplace_back(input.begin(), input.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const auto& prev = activations.back();
    std::vector<double> next(layer.out, 0.0);
    const bool is_output = (l + 1 == layers_.size());
    for (std::size_t o = 0; o < layer.out; ++o) {
      double z = layer.biases[o];
      const double* wrow = &layer.weights[o * layer.in];
      for (std::size_t i = 0; i < layer.in; ++i) z += wrow[i] * prev[i];
      next[o] = is_output ? z : std::tanh(z);
    }
    activations.push_back(std::move(next));
  }
}

std::vector<double> Mlp::forward(std::span<const double> input) const {
  if (input.size() != input_size()) {
    throw std::invalid_argument("Mlp::forward: wrong input size");
  }
  std::vector<std::vector<double>> acts;
  forward_recording(input, acts);
  return acts.back();
}

double Mlp::train_step(std::span<const double> input,
                       std::span<const double> target, double lr,
                       double momentum) {
  if (input.size() != input_size() || target.size() != output_size()) {
    throw std::invalid_argument("Mlp::train_step: wrong input/target size");
  }
  std::vector<std::vector<double>> acts;
  forward_recording(input, acts);

  // delta for the output layer (linear): dE/dz = (y - t)
  std::vector<double> delta(output_size());
  double sq_err = 0.0;
  for (std::size_t o = 0; o < output_size(); ++o) {
    const double err = acts.back()[o] - target[o];
    delta[o] = err;
    sq_err += err * err;
  }

  // Backwards through the layers.
  for (std::size_t li = layers_.size(); li-- > 0;) {
    Layer& layer = layers_[li];
    const auto& in_act = acts[li];
    // Gradient step for this layer's parameters.
    std::vector<double> prev_delta(layer.in, 0.0);
    for (std::size_t o = 0; o < layer.out; ++o) {
      double* wrow = &layer.weights[o * layer.in];
      double* mrow = &layer.w_moment[o * layer.in];
      for (std::size_t i = 0; i < layer.in; ++i) {
        prev_delta[i] += wrow[i] * delta[o];
        const double grad = delta[o] * in_act[i];
        mrow[i] = momentum * mrow[i] - lr * grad;
        wrow[i] += mrow[i];
      }
      layer.b_moment[o] = momentum * layer.b_moment[o] - lr * delta[o];
      layer.biases[o] += layer.b_moment[o];
    }
    if (li > 0) {
      // Through the tanh of the previous layer: dtanh = 1 - a^2.
      for (std::size_t i = 0; i < layer.in; ++i) {
        prev_delta[i] *= 1.0 - in_act[i] * in_act[i];
      }
      delta = std::move(prev_delta);
    }
  }
  return sq_err;
}

double Mlp::evaluate_mse(std::span<const std::vector<double>> inputs,
                         std::span<const std::vector<double>> targets) const {
  if (inputs.size() != targets.size()) {
    throw std::invalid_argument("Mlp::evaluate_mse: size mismatch");
  }
  if (inputs.empty()) return 0.0;
  double total = 0.0;
  std::size_t terms = 0;
  for (std::size_t s = 0; s < inputs.size(); ++s) {
    const auto out = forward(inputs[s]);
    for (std::size_t o = 0; o < out.size(); ++o) {
      const double err = out[o] - targets[s][o];
      total += err * err;
      ++terms;
    }
  }
  return total / static_cast<double>(terms);
}

std::vector<double> Mlp::parameters() const {
  std::vector<double> p;
  p.reserve(parameter_count());
  for (const auto& l : layers_) {
    p.insert(p.end(), l.weights.begin(), l.weights.end());
    p.insert(p.end(), l.biases.begin(), l.biases.end());
  }
  return p;
}

void Mlp::set_parameters(std::span<const double> params) {
  if (params.size() != parameter_count()) {
    throw std::invalid_argument("Mlp::set_parameters: size mismatch");
  }
  std::size_t pos = 0;
  for (auto& l : layers_) {
    for (auto& w : l.weights) w = params[pos++];
    for (auto& b : l.biases) b = params[pos++];
  }
}

}  // namespace mmog::nn
