#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace mmog::nn {

/// A small fully-connected multi-layer perceptron with tanh hidden units and
/// a linear output layer, trained with stochastic back-propagation.
///
/// The paper's MMOG load predictor uses a (6,3,1) structure: 6 inputs (the
/// last six normalized entity counts of a sub-zone), one hidden layer of 3,
/// one output (the next count). This class is general: any layer vector with
/// at least two layers (input + output) is accepted.
class Mlp {
 public:
  /// Builds the network with the given layer sizes (first = inputs,
  /// last = outputs) and Xavier-style random initial weights.
  /// Throws std::invalid_argument for fewer than two layers or a zero size.
  Mlp(std::vector<std::size_t> layer_sizes, util::Rng& rng);

  /// Number of inputs / outputs.
  std::size_t input_size() const noexcept { return layer_sizes_.front(); }
  std::size_t output_size() const noexcept { return layer_sizes_.back(); }

  /// Layer sizes as passed at construction (input first, output last).
  const std::vector<std::size_t>& layer_sizes() const noexcept {
    return layer_sizes_;
  }

  /// Total number of trainable parameters (weights + biases).
  std::size_t parameter_count() const noexcept;

  /// Forward pass. `input.size()` must equal input_size().
  std::vector<double> forward(std::span<const double> input) const;

  /// One step of back-propagation towards `target` with learning rate `lr`
  /// and classical momentum. Returns the squared error before the update.
  double train_step(std::span<const double> input,
                    std::span<const double> target, double lr,
                    double momentum = 0.0);

  /// Mean squared error over a batch (no weight updates).
  double evaluate_mse(std::span<const std::vector<double>> inputs,
                      std::span<const std::vector<double>> targets) const;

  /// Raw parameters, layer by layer (weights row-major, then biases); usable
  /// for checkpointing and exact-restore in tests.
  std::vector<double> parameters() const;

  /// Restores parameters captured by parameters(). Throws
  /// std::invalid_argument on a size mismatch.
  void set_parameters(std::span<const double> params);

 private:
  struct Layer {
    std::size_t in = 0;
    std::size_t out = 0;
    std::vector<double> weights;   // out x in, row-major
    std::vector<double> biases;    // out
    std::vector<double> w_moment;  // momentum buffers
    std::vector<double> b_moment;
  };

  // Forward pass that also records per-layer pre-activations/activations.
  void forward_recording(std::span<const double> input,
                         std::vector<std::vector<double>>& activations) const;

  std::vector<std::size_t> layer_sizes_;
  std::vector<Layer> layers_;
};

}  // namespace mmog::nn
