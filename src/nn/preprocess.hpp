#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mmog::nn {

/// Least-squares polynomial smoother (Savitzky-Golay style): fits a
/// polynomial of `degree` to a sliding window and evaluates it at the last
/// point. The paper's neural predictor feeds its MLP through "several
/// polynomial functions which ... remove the unwanted noise" (§IV-C); this
/// is that preprocessor.
class PolynomialSmoother {
 public:
  /// Window length must exceed the polynomial degree.
  /// Throws std::invalid_argument otherwise.
  PolynomialSmoother(std::size_t degree, std::size_t window);

  std::size_t degree() const noexcept { return degree_; }
  std::size_t window() const noexcept { return window_; }

  /// Smooths the last point of `recent` (the most recent `window` samples
  /// are used; shorter inputs are passed through unchanged).
  double smooth_last(std::span<const double> recent) const;

  /// Smooths an entire series causally (each output uses only samples up to
  /// and including its own index).
  std::vector<double> smooth_series(std::span<const double> xs) const;

 private:
  std::size_t degree_;
  std::size_t window_;
};

/// Min-max normalizer mapping an observed range onto [0, 1]; values outside
/// the fitted range extrapolate linearly. Inverse transform restores the
/// original scale. Used to feed bounded activations of the MLP.
class MinMaxNormalizer {
 public:
  MinMaxNormalizer() = default;

  /// Fits the range to the data; a constant (or empty) sample yields an
  /// identity-like transform centred on the constant.
  void fit(std::span<const double> xs) noexcept;

  /// Widens the fitted range to include x (for streaming use).
  void update(double x) noexcept;

  double transform(double x) const noexcept;
  double inverse(double y) const noexcept;

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }

 private:
  double lo_ = 0.0;
  double hi_ = 1.0;
};

/// Fits a least-squares polynomial of `degree` to points (xs, ys) and
/// returns the coefficients c0..c_degree (y = sum c_k x^k). Solved by normal
/// equations with Gaussian elimination; throws std::invalid_argument on
/// empty input or degree >= number of points.
std::vector<double> polyfit(std::span<const double> xs,
                            std::span<const double> ys, std::size_t degree);

/// Evaluates a polynomial given by coefficients c0..cn at x (Horner).
double polyval(std::span<const double> coeffs, double x) noexcept;

}  // namespace mmog::nn
