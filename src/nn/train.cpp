#include "nn/train.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace mmog::nn {

std::pair<Dataset, Dataset> Dataset::split(double fraction) const {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("Dataset::split: fraction not in [0,1]");
  }
  const auto cut = static_cast<std::size_t>(
      std::round(fraction * static_cast<double>(inputs.size())));
  Dataset a, b;
  a.inputs.assign(inputs.begin(), inputs.begin() + static_cast<std::ptrdiff_t>(cut));
  a.targets.assign(targets.begin(),
                   targets.begin() + static_cast<std::ptrdiff_t>(cut));
  b.inputs.assign(inputs.begin() + static_cast<std::ptrdiff_t>(cut), inputs.end());
  b.targets.assign(targets.begin() + static_cast<std::ptrdiff_t>(cut),
                   targets.end());
  return {std::move(a), std::move(b)};
}

TrainResult train(Mlp& net, const Dataset& train_set, const Dataset& test_set,
                  const TrainConfig& config) {
  if (train_set.inputs.size() != train_set.targets.size() ||
      test_set.inputs.size() != test_set.targets.size()) {
    throw std::invalid_argument("train: mismatched inputs/targets");
  }
  TrainResult result;
  if (train_set.empty()) return result;

  double best_test = std::numeric_limits<double>::infinity();
  std::vector<double> best_params = net.parameters();
  std::size_t since_best = 0;

  std::vector<std::size_t> order(train_set.size());
  for (std::size_t s = 0; s < order.size(); ++s) order[s] = s;
  util::Rng shuffle_rng(config.shuffle_seed);

  for (std::size_t era = 0; era < config.max_eras; ++era) {
    ++result.eras;
    // (1)+(2) present every training sample and adjust the weights.
    if (config.shuffle) util::shuffle(order, shuffle_rng);
    for (std::size_t s : order) {
      net.train_step(train_set.inputs[s], train_set.targets[s],
                     config.learning_rate, config.momentum);
    }
    // (3) test the prediction capability.
    const double test_mse =
        test_set.empty()
            ? net.evaluate_mse(train_set.inputs, train_set.targets)
            : net.evaluate_mse(test_set.inputs, test_set.targets);
    const double test_rmse = std::sqrt(test_mse);
    // Only a materially better RMSE resets patience; numerical jitter at the
    // 1e-9 scale must not keep a stalled run alive.
    if (test_rmse < best_test - 1e-9) {
      best_test = test_rmse;
      best_params = net.parameters();
      since_best = 0;
    } else {
      ++since_best;
    }
    if (test_rmse <= config.target_rmse ||
        (config.patience > 0 && since_best >= config.patience)) {
      result.converged = true;
      break;
    }
  }

  net.set_parameters(best_params);
  result.train_rmse =
      std::sqrt(net.evaluate_mse(train_set.inputs, train_set.targets));
  result.test_rmse =
      test_set.empty()
          ? result.train_rmse
          : std::sqrt(net.evaluate_mse(test_set.inputs, test_set.targets));
  return result;
}

}  // namespace mmog::nn
