#include "core/predict_phase.hpp"

#include <algorithm>
#include <thread>

namespace mmog::core {

ParallelPredictor::ParallelPredictor(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_ = threads;
  if (threads_ > 1) {
    team_ = std::make_unique<util::ShardTeam>(threads_);
  }
}

/// Everything one dispatch needs, stack-owned by run(): the team passes a
/// raw pointer to it, so the per-step fan-out allocates nothing.
struct ParallelPredictor::RunContext {
  ParallelPredictor* self;
  std::span<const PredictSlot> slots;
  obs::Recorder* rec;
};

// mmog-lint: hot-begin(predict)
void ParallelPredictor::run_range(std::span<const PredictSlot> slots,
                                  obs::Recorder* rec) {
  if (rec) {
    for (const auto& slot : slots) {
      const obs::Stopwatch watch;
      *slot.out = slot.predictor->predict();
      rec->observe_us("predictor.inference_us", watch.elapsed_us());
    }
  } else {
    for (const auto& slot : slots) *slot.out = slot.predictor->predict();
  }
}

void ParallelPredictor::shard_entry(void* ctx, std::size_t shard,
                                    std::size_t shards) {
  auto& run = *static_cast<RunContext*>(ctx);
  // Identical partition arithmetic to the historical ThreadPool path: at
  // most one contiguous chunk per worker, trailing workers idle when there
  // are fewer slots than shards.
  const std::size_t used = std::min(run.slots.size(), shards);
  const std::size_t chunk = (run.slots.size() + used - 1) / used;
  const std::size_t begin = shard * chunk;
  const std::size_t end = std::min(run.slots.size(), begin + chunk);
  if (begin >= end) return;
  const obs::Stopwatch watch;
  run_range(run.slots.subspan(begin, end - begin), run.rec);
  const double us = watch.elapsed_us();
  if (run.rec) run.rec->observe_us("phase.predict_shard_us", us);
  util::MutexLock lock(run.self->mutex_);
  run.self->worst_shard_us_ = std::max(run.self->worst_shard_us_, us);
}

void ParallelPredictor::run(std::span<const PredictSlot> slots,
                            obs::Recorder* rec) {
  if (!team_ || slots.size() <= 1) {
    // threads == 1: the historical serial code path, untouched by any team.
    run_range(slots, rec);
    return;
  }
  {
    util::MutexLock lock(mutex_);
    worst_shard_us_ = 0.0;
  }
  RunContext ctx{this, slots, rec};
  // The join inside run() is the determinism barrier: every slot is written
  // before the caller reads any prediction; a worker's exception is
  // rethrown here.
  team_->run(&ParallelPredictor::shard_entry, &ctx);
}
// mmog-lint: hot-end

double ParallelPredictor::last_worst_shard_us() const {
  util::MutexLock lock(mutex_);
  return worst_shard_us_;
}

}  // namespace mmog::core
