#include "core/predict_phase.hpp"

#include <algorithm>
#include <future>
#include <thread>
#include <vector>

namespace mmog::core {

ParallelPredictor::ParallelPredictor(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_ = threads;
  if (threads_ > 1) {
    pool_ = std::make_unique<util::ThreadPool>(threads_);
    futures_.reserve(threads_);
  }
}

// mmog-lint: hot-begin(predict)
void ParallelPredictor::run_range(std::span<const PredictSlot> slots,
                                  obs::Recorder* rec) {
  if (rec) {
    for (const auto& slot : slots) {
      const obs::Stopwatch watch;
      *slot.out = slot.predictor->predict();
      rec->observe_us("predictor.inference_us", watch.elapsed_us());
    }
  } else {
    for (const auto& slot : slots) *slot.out = slot.predictor->predict();
  }
}

void ParallelPredictor::run(std::span<const PredictSlot> slots,
                            obs::Recorder* rec) {
  if (!pool_ || slots.size() <= 1) {
    // threads == 1: the historical serial code path, untouched by any pool.
    run_range(slots, rec);
    return;
  }
  {
    util::MutexLock lock(mutex_);
    worst_shard_us_ = 0.0;
  }
  const std::size_t shards = std::min(slots.size(), pool_->thread_count());
  const std::size_t chunk = (slots.size() + shards - 1) / shards;
  futures_.clear();
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t begin = s * chunk;
    const std::size_t end = std::min(slots.size(), begin + chunk);
    if (begin >= end) break;
    // The pool's packaged task still owns its own shared state; what the
    // scratch vector saves is the per-step buffer regrowth.
    // mmog-lint: allow(hot-new)
    futures_.push_back(pool_->submit([this, shard = slots.subspan(
                                                begin, end - begin),
                                      rec] {
      const obs::Stopwatch watch;
      run_range(shard, rec);
      const double us = watch.elapsed_us();
      if (rec) rec->observe_us("phase.predict_shard_us", us);
      util::MutexLock lock(mutex_);
      worst_shard_us_ = std::max(worst_shard_us_, us);
    }));
  }
  // The join is the determinism barrier: every slot is written before the
  // caller reads any prediction. get() rethrows a worker's exception.
  for (auto& f : futures_) f.get();
  futures_.clear();
}
// mmog-lint: hot-end

double ParallelPredictor::last_worst_shard_us() const {
  util::MutexLock lock(mutex_);
  return worst_shard_us_;
}

}  // namespace mmog::core
