#include "core/alloc_pool.hpp"

namespace mmog::core {

void AllocPool::reserve(std::size_t n) {
  while (capacity() < n) {
    slabs_.push_back(std::make_unique<Slab>());
  }
}

AllocPool::Index AllocPool::carve_slot() {
  // Growth path: rare (the simulate() setup sizes the pool for the
  // workload's warm state) and amortized, like vector growth was.
  if (carved_ == capacity()) {
    slabs_.push_back(std::make_unique<Slab>());
  }
  return static_cast<Index>(carved_++);
}

std::vector<dc::Allocation> AllocPool::to_vector(const List& list) const {
  std::vector<dc::Allocation> out;
  out.reserve(list.size);
  for (Index i = list.head; i != kNil; i = next(i)) out.push_back(get(i));
  return out;
}

void AllocPool::assign(List& list, const std::vector<dc::Allocation>& records) {
  while (list.head != kNil) erase(list, list.head);
  for (const auto& a : records) acquire(list, a);
}

}  // namespace mmog::core
