#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "obs/recorder.hpp"
#include "predict/predictor.hpp"
#include "util/mutex.hpp"
#include "util/shard_team.hpp"
#include "util/thread_annotations.hpp"

namespace mmog::core {

/// One unit of work for the predict phase: read a predictor, write its
/// one-step forecast into a caller-owned slot. Slots must be pairwise
/// disjoint — each worker touches only the slots of its own shard.
struct PredictSlot {
  const predict::Predictor* predictor = nullptr;
  double* out = nullptr;
};

/// Runs the per-step predict phase of core::simulate over a flat list of
/// group streams (§IV-B predicts each sub-zone independently, so the phase
/// is embarrassingly parallel). The slot list is partitioned into contiguous
/// shards, one per worker; every worker writes only its own preallocated
/// `out` slots, and the caller reduces them in fixed index order afterwards,
/// so the results are bit-identical to the serial path for any thread count:
/// Predictor::predict() is const (no observation happens here), the shared
/// trained models are immutable, and IEEE arithmetic inside one predictor
/// does not depend on which thread executes it.
///
/// The workers are a persistent util::ShardTeam, so the per-step dispatch
/// performs zero heap allocations (the old ThreadPool::submit path paid a
/// packaged task per shard per step). The same team is shared with the
/// other sharded phases via team().
///
/// threads == 1 keeps everything on the calling thread with no team at all
/// (exactly the historical serial code path); threads == 0 resolves to the
/// hardware concurrency.
class ParallelPredictor {
 public:
  explicit ParallelPredictor(std::size_t threads = 1);

  /// The resolved worker count (>= 1).
  std::size_t threads() const noexcept { return threads_; }

  /// The shared worker team (nullptr when threads() == 1): other per-step
  /// phases shard their pure computation on the same threads instead of
  /// spawning their own.
  util::ShardTeam* team() noexcept { return team_.get(); }

  /// Predicts every slot. With a recorder, each prediction is timed into
  /// the "predictor.inference_us" histogram and each shard's wall time into
  /// "phase.predict_shard_us" (parallel path only). Exceptions thrown by a
  /// predictor are rethrown on the calling thread (first one wins).
  void run(std::span<const PredictSlot> slots, obs::Recorder* rec);

  /// Wall time of the slowest shard in the most recent parallel run()
  /// (microseconds; 0 after a serial run). Thread-safe.
  double last_worst_shard_us() const;

 private:
  struct RunContext;
  static void shard_entry(void* ctx, std::size_t shard, std::size_t shards);
  static void run_range(std::span<const PredictSlot> slots,
                        obs::Recorder* rec);

  std::size_t threads_ = 1;
  std::unique_ptr<util::ShardTeam> team_;
  mutable util::Mutex mutex_;
  double worst_shard_us_ GUARDED_BY(mutex_) = 0.0;
};

}  // namespace mmog::core
