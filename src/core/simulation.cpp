#include "core/simulation.hpp"

#include "core/predict_phase.hpp"

#include <algorithm>
#include <climits>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

namespace mmog::core {
namespace {

constexpr std::uint8_t kNotACandidate = 0xFF;

/// One predicted sub-stream: a server group's player counts plus its online
/// predictor (§IV-B: prediction happens per sub-zone; the region estimate is
/// the sum of the per-zone predictions).
struct GroupStream {
  const util::TimeSeries* players = nullptr;
  std::unique_ptr<predict::Predictor> predictor;
  double last_prediction = 0.0;
  double abs_error_ewma = 0.0;  ///< recent one-step |error| of the predictor
};

/// The unit at which a game operator requests resources: one game in one
/// geographic region (§II-C: operators submit aggregate requests to data
/// centers; §V-E routes them by the region's location).
struct DemandUnit {
  std::size_t game_id = 0;
  std::string region_name;
  std::vector<GroupStream> groups;
  std::vector<dc::Allocation> allocations;
  util::ResourceVector allocated{};
  std::vector<std::size_t> candidates;  ///< matcher-ordered DC indices
  /// Healthy distance class per data center (kNotACandidate when the
  /// center is outside the game's latency tolerance); latency-degradation
  /// faults worsen the effective class against `tolerance`.
  std::vector<std::uint8_t> base_class_by_dc;
  dc::DistanceClass tolerance = dc::DistanceClass::kVeryFar;
  /// Retry bookkeeping for the resilience policy (unused when disabled).
  fault::BackoffTracker backoff;
  int priority = 0;
};

/// Up-front configuration validation: every inconsistency fails loudly
/// here instead of silently no-opting deep in the run.
void validate_config(const SimulationConfig& config) {
  if (config.games.empty()) {
    throw std::invalid_argument("simulate: no games configured");
  }
  if (config.mode == AllocationMode::kDynamic && !config.predictor) {
    throw std::invalid_argument("simulate: dynamic mode needs a predictor");
  }
  if (config.datacenters.empty()) {
    throw std::invalid_argument("simulate: no data centers configured");
  }
  const std::size_t n_dcs = config.datacenters.size();
  for (const auto& outage : config.outages) {
    if (outage.dc_index >= n_dcs) {
      throw std::invalid_argument(
          "simulate: outage dc_index " + std::to_string(outage.dc_index) +
          " out of range (have " + std::to_string(n_dcs) +
          " data centers)");
    }
    if (outage.from_step >= outage.to_step) {
      throw std::invalid_argument(
          "simulate: outage window must satisfy from_step < to_step (got [" +
          std::to_string(outage.from_step) + ", " +
          std::to_string(outage.to_step) + "))");
    }
  }
  for (const auto& spec : config.faults) fault::validate(spec, n_dcs);
  if (!(config.safety_factor >= 0.0)) {
    throw std::invalid_argument("simulate: safety_factor must be >= 0");
  }
  if (!(config.event_threshold_pct >= 0.0)) {
    throw std::invalid_argument("simulate: event_threshold_pct must be >= 0");
  }
  if (config.resilience.standby_reserve_servers < 0.0) {
    throw std::invalid_argument(
        "simulate: standby_reserve_servers must be >= 0");
  }
}

}  // namespace

util::ResourceVector offer_amount(const util::ResourceVector& need,
                                  const util::ResourceVector& free,
                                  const dc::HostingPolicy& policy) noexcept {
  util::ResourceVector out{};
  if (policy.has_bundles()) {
    const std::size_t k = std::min(policy.bundles_needed(need),
                                   policy.bundles_fitting(free));
    out = policy.bundle_amount(k);
  }
  for (std::size_t i = 0; i < util::kResourceKinds; ++i) {
    if (policy.bulk.v[i] > 0.0) continue;  // covered by bundles
    out.v[i] = std::min(std::max(0.0, need.v[i]), std::max(0.0, free.v[i]));
  }
  return out;
}

SimulationResult simulate(const SimulationConfig& config) {
  validate_config(config);

  obs::Recorder* const rec = config.recorder;
  obs::AuditTrail* const audit = rec ? rec->audit() : nullptr;
  const auto& res_policy = config.resilience;
  const bool resilient = res_policy.enabled;

  const Matcher matcher(config.datacenters);
  std::vector<dc::DataCenterLedger> ledgers;
  ledgers.reserve(config.datacenters.size());
  for (const auto& spec : config.datacenters) ledgers.emplace_back(spec);

  // Build one demand unit per (game, region) and resolve each unit's
  // candidate data centers (matching criteria of §II-C).
  std::vector<DemandUnit> units;
  std::size_t total_groups = 0;
  std::size_t horizon = std::numeric_limits<std::size_t>::max();
  for (std::size_t g = 0; g < config.games.size(); ++g) {
    const auto& game = config.games[g];
    for (const auto& region : game.workload.regions) {
      if (region.groups.empty()) continue;
      const auto site = dc::region_site(region.name);
      DemandUnit unit;
      unit.game_id = g;
      unit.region_name = region.name;
      unit.candidates =
          matcher.candidates(site.location, game.latency_tolerance);
      unit.tolerance = game.latency_tolerance;
      unit.base_class_by_dc.assign(config.datacenters.size(), kNotACandidate);
      for (const std::size_t cand : unit.candidates) {
        unit.base_class_by_dc[cand] = static_cast<std::uint8_t>(
            dc::classify_distance(matcher.distance_km(site.location, cand)));
      }
      unit.backoff = fault::BackoffTracker(res_policy.base_backoff_steps,
                                           res_policy.max_backoff_steps);
      // Warm-start the holdings vector so the allocate hot path almost
      // never regrows it mid-step (growth past this stays amortized).
      unit.allocations.reserve(unit.candidates.size() * 4);
      if (rec) {
        // Matching criterion 2 (§II-C, geographic proximity): centers
        // outside the game's latency tolerance are rejected up front, once
        // per (game, region) request stream.
        rec->count("offer.rejected.latency",
                   static_cast<double>(config.datacenters.size() -
                                       unit.candidates.size()));
      }
      unit.priority = game.priority;
      for (const auto& sg : region.groups) {
        GroupStream stream;
        stream.players = &sg.players;
        if (config.mode == AllocationMode::kDynamic) {
          stream.predictor = config.predictor();
        }
        horizon = std::min(horizon, sg.players.size());
        unit.groups.push_back(std::move(stream));
        ++total_groups;
      }
      units.push_back(std::move(unit));
    }
  }
  if (units.empty() || horizon == 0 ||
      horizon == std::numeric_limits<std::size_t>::max()) {
    throw std::invalid_argument("simulate: empty workload");
  }
  const std::size_t steps =
      config.steps == 0 ? horizon : std::min(config.steps, horizon);

  // Expand the fault processes over the run's horizon; the legacy outage
  // windows fold into the same schedule. Empty schedule = the exact
  // fault-free behavior this simulator always had.
  std::vector<fault::FaultEvent> fixed_events;
  fixed_events.reserve(config.outages.size());
  for (const auto& outage : config.outages) {
    fixed_events.push_back({fault::FaultKind::kOutage, outage.dc_index,
                            outage.from_step, outage.to_step, 1.0});
  }
  const auto schedule =
      fault::FaultSchedule::generate(config.faults, config.datacenters.size(),
                                     steps, std::move(fixed_events));
  const bool have_faults = !schedule.empty();

  if (rec) {
    rec->gauge("sim.steps", static_cast<double>(steps));
    rec->gauge("sim.units", static_cast<double>(units.size()));
    rec->gauge("sim.groups", static_cast<double>(total_groups));
    rec->gauge("sim.datacenters",
               static_cast<double>(config.datacenters.size()));
    if (have_faults) {
      rec->gauge("fault.windows",
                 static_cast<double>(schedule.events().size()));
    }
  }

  // Service order: stable by priority when the extension is enabled,
  // otherwise first-come (flattening order).
  std::vector<std::size_t> order(units.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (config.prioritize_by_interaction) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return units[a].priority > units[b].priority;
                     });
  }

  // Predict-phase scheduler: a flat, service-ordered view of every group
  // stream, sharded contiguously across `config.threads` workers. Each
  // worker writes only its own slots' `last_prediction`; the pad phase
  // below reduces them serially in fixed index order, so any thread count
  // reproduces the serial run bit for bit. Pointers stay valid because
  // `units` and each `unit.groups` are fully built above and never resized
  // again.
  ParallelPredictor predict_runner(
      config.mode == AllocationMode::kDynamic ? config.threads : 1);
  std::vector<PredictSlot> predict_slots;
  if (config.mode == AllocationMode::kDynamic) {
    predict_slots.reserve(total_groups);
    for (const std::size_t idx : order) {
      for (auto& stream : units[idx].groups) {
        predict_slots.push_back(
            {stream.predictor.get(), &stream.last_prediction});
      }
    }
  }
  if (rec) {
    rec->gauge("sim.predict_threads",
               static_cast<double>(predict_runner.threads()));
  }

  // Resource profiler (PR 8): throughput and RSS sampled once per step.
  // Observational only — attached or not, outcomes are byte-identical.
  obs::ResourceProfiler* const profiler = rec ? rec->profiler() : nullptr;
  if (profiler) {
    profiler->begin_run(static_cast<std::uint64_t>(total_groups));
  }

  std::size_t next_allocation_id = 1;
  SimulationResult result;
  result.steps = steps;
  result.fault_events = schedule.events();

  // Per-DC usage accumulators.
  std::vector<double> dc_cpu_sum(ledgers.size(), 0.0);
  std::vector<double> dc_cpu_peak(ledgers.size(), 0.0);
  std::vector<std::map<std::string, double>> dc_origin_sum(ledgers.size());

  // SLA accounting: one tracker per game plus the global signal; per-step
  // shed flags mark games deliberately degraded by the resilience policy.
  SlaTracker overall_sla;
  std::vector<SlaTracker> game_sla(config.games.size());
  std::vector<char> game_shed(config.games.size(), 0);

  // A latency-degradation fault pushes the center's effective distance
  // class beyond the unit's tolerance: no new grants, and hosted servers
  // must migrate away.
  auto latency_violated = [&](const DemandUnit& unit, std::size_t d,
                              std::size_t step) {
    if (!have_faults) return false;
    const std::size_t penalty = schedule.latency_penalty_at(d, step);
    if (penalty == 0) return false;
    const std::uint8_t base = unit.base_class_by_dc[d];
    if (base == kNotACandidate) return true;
    return base + penalty > static_cast<std::size_t>(unit.tolerance);
  };

  // Decision-audit scratch (only touched when the recorder has an audit
  // trail attached): the step's records in occurrence order. Actual player
  // counts are backfilled per unit once the step's load materializes in the
  // account phase, then the batch is flushed to the trail in one lock
  // acquisition. Everything runs on the simulation thread, so trails are
  // byte-identical at any `config.threads` value.
  std::vector<obs::AuditRecord> audit_batch;
  std::vector<std::vector<std::size_t>> audit_backfill(units.size());
  std::vector<double> audit_predicted(units.size(), 0.0);
  std::vector<double> audit_margin(units.size(), 0.0);
  if (audit) audit_batch.reserve(units.size() * 2);

  // `ar` collects one AuditOffer per visited candidate (nullptr = audit
  // off: the walk pays one pointer test per branch).
  // mmog-lint: hot-begin(allocate)
  auto try_allocate = [&](DemandUnit& unit, const util::ResourceVector& need_in,
                          std::size_t step, std::size_t hold_steps,
                          obs::AuditRecord* ar) {
    util::ResourceVector need = need_in.clamped_non_negative();
    if (ar) ar->offers.reserve(unit.candidates.size());
    for (std::size_t cand : unit.candidates) {
      const auto dc32 = static_cast<std::uint32_t>(cand);
      if (have_faults && schedule.outage_at(cand, step)) {
        if (rec) rec->count("offer.rejected.outage");
        if (ar) {
          ar->offers.push_back(
              {dc32, obs::OfferOutcome::kRejectedOutage, 0.0, 0});
        }
        continue;
      }
      if (have_faults && latency_violated(unit, cand, step)) {
        // Matching criterion 2 re-evaluated under degradation: the center
        // is temporarily too far for this game.
        if (rec) rec->count("offer.rejected.latency_degraded");
        if (ar) {
          ar->offers.push_back(
              {dc32, obs::OfferOutcome::kRejectedLatencyDegraded, 0.0, 0});
        }
        continue;
      }
      if (resilient && unit.backoff.excluded(cand, step)) {
        if (rec) rec->count("offer.rejected.backoff");
        if (ar) {
          ar->offers.push_back({dc32, obs::OfferOutcome::kRejectedBackoff,
                                0.0, unit.backoff.excluded_until(cand)});
        }
        continue;
      }
      double outstanding = 0.0;
      for (double v : need.v) outstanding += v;
      if (outstanding <= 1e-9) break;
      auto& ledger = ledgers[cand];
      const auto& policy = ledger.spec().policy;
      const auto amount = offer_amount(need, ledger.free(), policy);
      // CPU drives placement: when CPU is needed, a grant without CPU only
      // wastes bandwidth; and an empty offer is no offer.
      if (need.cpu() > 1e-9 && amount.cpu() <= 1e-9) {
        // Matching criterion 3 (§II-C, offer granularity): the policy's CPU
        // bulk cannot produce a usable offer from this center's free pool.
        if (rec) rec->count("offer.rejected.bulk");
        if (ar) {
          ar->offers.push_back(
              {dc32, obs::OfferOutcome::kRejectedBulk, 0.0, 0});
        }
        continue;
      }
      double total = 0.0;
      for (double v : amount.v) total += v;
      if (total <= 1e-9) {
        if (rec) rec->count("offer.rejected.amount");
        if (ar) {
          ar->offers.push_back(
              {dc32, obs::OfferOutcome::kRejectedAmount, 0.0, 0});
        }
        continue;
      }
      if (have_faults && schedule.flap_at(cand, step)) {
        // Transient grant failure: the offer was accepted but the rented
        // resources never materialize. The request retries elsewhere.
        if (rec) rec->count("alloc.grant_failed.transient");
        std::size_t until = 0;
        if (resilient) until = unit.backoff.record_failure(cand, step);
        if (ar) {
          ar->offers.push_back(
              {dc32, obs::OfferOutcome::kGrantFlapped, 0.0, until});
        }
        continue;
      }
      if (!ledger.grant(amount)) {
        // Matching criterion 1 (§II-C, amount fit): nothing left to offer.
        if (rec) rec->count("offer.rejected.amount");
        if (ar) {
          ar->offers.push_back(
              {dc32, obs::OfferOutcome::kRejectedAmount, 0.0, 0});
        }
        continue;
      }
      dc::Allocation alloc;
      alloc.id = next_allocation_id++;
      alloc.dc_index = cand;
      alloc.game_id = unit.game_id;
      alloc.amount = amount;
      alloc.start_step = step;
      alloc.usable_step = step + config.provisioning_delay_steps;
      alloc.earliest_release_step =
          hold_steps == std::numeric_limits<std::size_t>::max()
              ? hold_steps
              : step + std::max<std::size_t>(hold_steps,
                                             policy.time_bulk_steps());
      unit.allocations.push_back(alloc);
      unit.allocated += amount;
      need = (need - amount).clamped_non_negative();
      if (resilient) unit.backoff.record_success(cand);
      if (ar) {
        ar->offers.push_back(
            {dc32, obs::OfferOutcome::kGranted, amount.cpu(), 0});
        if (ar->dc == obs::kAuditNoDc) {
          ar->dc = static_cast<std::int32_t>(cand);
        }
        ar->granted_cpu += amount.cpu();
      }
      if (rec) {
        rec->count("offer.matched");
        rec->count("alloc.granted");
        rec->instant("alloc.granted", "alloc", step,
                     {{"dc", ledger.spec().name},
                      {"region", unit.region_name},
                      {"cpu", std::to_string(amount.cpu())},   // mmog-lint: allow(hot-string)
                      {"id", std::to_string(alloc.id)}});      // mmog-lint: allow(hot-string)
      }
    }
    return need;  // unmet demand
  };

  // Force-releases one allocation (fault eviction or shedding), returning
  // its resources to the ledger and recording why.
  auto force_release = [&](std::size_t unit_index, std::size_t alloc_index,
                           std::size_t step, const char* reason) {
    DemandUnit& unit = units[unit_index];
    const auto alloc = unit.allocations[alloc_index];
    ledgers[alloc.dc_index].release(alloc.amount);
    if (audit) {
      obs::AuditRecord ar;
      ar.step = step;
      ar.kind = obs::AuditKind::kForceRelease;
      ar.game = static_cast<std::uint32_t>(unit.game_id);
      ar.region = unit.region_name;
      ar.held_cpu = unit.allocated.cpu();
      ar.released_cpu = alloc.amount.cpu();
      ar.dc = static_cast<std::int32_t>(alloc.dc_index);
      ar.cause = reason;
      ar.alloc_id = alloc.id;
      audit_batch.push_back(std::move(ar));
    }
    if (rec) {
      rec->count("alloc.force_released");
      rec->instant("alloc.force_released", "alloc", step,
                   {{"dc", ledgers[alloc.dc_index].spec().name},
                    {"cpu", std::to_string(alloc.amount.cpu())},  // mmog-lint: allow(hot-string)
                    {"id", std::to_string(alloc.id)},             // mmog-lint: allow(hot-string)
                    {"reason", reason}});
    }
    unit.allocated -= alloc.amount;
    unit.allocated = unit.allocated.clamped_non_negative();
    unit.allocations.erase(unit.allocations.begin() +
                           static_cast<std::ptrdiff_t>(alloc_index));
    if (resilient) unit.backoff.record_failure(alloc.dc_index, step);
  };

  // Graceful degradation: make room for `needy` by force-releasing
  // allocations of strictly lower-priority units hosted in its candidate
  // centers — lowest priority first, newest allocation first. Returns true
  // when anything was freed (the caller then retries the acquisition).
  auto shed_for = [&](const DemandUnit& needy, const util::ResourceVector& need,
                      std::size_t step) {
    double need_cpu = need.cpu();
    bool freed = false;
    while (need_cpu > 1e-9) {
      std::size_t victim_unit = units.size();
      std::size_t victim_alloc = 0;
      int victim_priority = INT_MAX;
      std::size_t victim_id = 0;
      for (std::size_t u = 0; u < units.size(); ++u) {
        const DemandUnit& unit = units[u];
        if (&unit == &needy || unit.priority >= needy.priority) continue;
        for (std::size_t a = 0; a < unit.allocations.size(); ++a) {
          const auto& alloc = unit.allocations[a];
          const std::size_t d = alloc.dc_index;
          // Freeing capacity only helps where needy can actually rent.
          if (needy.base_class_by_dc[d] == kNotACandidate) continue;
          if (schedule.grants_blocked_at(d, step)) continue;
          if (latency_violated(needy, d, step)) continue;
          if (resilient && needy.backoff.excluded(d, step)) continue;
          if (unit.priority < victim_priority ||
              (unit.priority == victim_priority && alloc.id > victim_id)) {
            victim_unit = u;
            victim_alloc = a;
            victim_priority = unit.priority;
            victim_id = alloc.id;
          }
        }
      }
      if (victim_unit >= units.size()) break;
      const double freed_cpu =
          units[victim_unit].allocations[victim_alloc].amount.cpu();
      game_shed[units[victim_unit].game_id] = 1;
      if (rec) rec->count("resilience.shed");
      force_release(victim_unit, victim_alloc, step, "shed");
      need_cpu -= freed_cpu;
      freed = true;
    }
    return freed;
  };
  // mmog-lint: hot-end

  // Resume from a checkpoint: every config-derived structure above was
  // rebuilt normally; now overwrite each loop-carried value with the
  // snapshot and start the loop at the saved boundary. Geometry and the
  // expanded fault schedule are verified first — a checkpoint from a
  // different configuration must fail loudly, never resume quietly.
  std::size_t start_step = 0;
  if (config.restore_from != nullptr) {
    const CheckpointState& st = *config.restore_from;
    const auto mismatch = [](const std::string& what) {
      throw std::invalid_argument(
          "simulate: checkpoint does not match the configuration (" + what +
          ")");
    };
    if (st.steps != steps || st.next_step > steps) mismatch("horizon");
    if (st.fault_events != schedule.events()) mismatch("fault schedule");
    if (st.ledgers.size() != ledgers.size()) mismatch("data centers");
    if (st.units.size() != units.size()) mismatch("demand units");
    if (st.game_sla.size() != config.games.size() ||
        st.game_step_metrics.size() != config.games.size()) {
      mismatch("games");
    }
    if (st.step_metrics.size() != st.next_step) mismatch("metrics length");
    for (std::size_t u = 0; u < units.size(); ++u) {
      const auto& uc = st.units[u];
      if (uc.game_id != units[u].game_id ||
          uc.region != units[u].region_name ||
          uc.groups.size() != units[u].groups.size()) {
        mismatch("unit " + std::to_string(u));
      }
    }
    for (std::size_t d = 0; d < ledgers.size(); ++d) {
      ledgers[d].restore(st.ledgers[d].in_use,
                         st.ledgers[d].capacity_fraction);
      dc_cpu_sum[d] = st.ledgers[d].cpu_sum;
      dc_cpu_peak[d] = st.ledgers[d].cpu_peak;
      dc_origin_sum[d] = st.ledgers[d].origin_sum;
    }
    for (std::size_t u = 0; u < units.size(); ++u) {
      DemandUnit& unit = units[u];
      const auto& uc = st.units[u];
      unit.allocations = uc.allocations;
      unit.allocated = uc.allocated;
      unit.backoff.restore_entries(uc.backoff);
      for (std::size_t s = 0; s < unit.groups.size(); ++s) {
        auto& stream = unit.groups[s];
        const auto& gc = uc.groups[s];
        if (stream.predictor) {
          if (gc.predictor != stream.predictor->name()) {
            mismatch("predictor of unit " + std::to_string(u));
          }
          stream.predictor->load_state(gc.state);
        } else if (!gc.predictor.empty() || !gc.state.empty()) {
          mismatch("predictor of unit " + std::to_string(u));
        }
        stream.last_prediction = gc.last_prediction;
        stream.abs_error_ewma = gc.abs_error_ewma;
      }
    }
    next_allocation_id = st.next_allocation_id;
    result.unplaced_cpu_unit_steps = st.unplaced_cpu_unit_steps;
    result.total_cost = st.total_cost;
    for (const auto& m : st.step_metrics) result.metrics.add(m);
    result.games.resize(config.games.size());
    for (std::size_t g = 0; g < config.games.size(); ++g) {
      result.games[g].name = config.games[g].name;
      if (st.game_step_metrics[g].size() != st.next_step) {
        mismatch("metrics length of game " + std::to_string(g));
      }
      for (const auto& m : st.game_step_metrics[g]) {
        result.games[g].metrics.add(m);
      }
      game_sla[g].restore(st.game_sla[g]);
    }
    overall_sla.restore(st.overall_sla);
    if (rec) {
      // Apply counter *deltas*: this process already emitted the same
      // pre-loop counts the producing run did (unit-build offer
      // rejections), so adding totals verbatim would double them.
      const auto current = rec->snapshot().counters;
      for (const auto& [name, value] : st.counters) {
        const auto it = current.find(name);
        const double have = it == current.end() ? 0.0 : it->second;
        if (value > have) rec->count(name, value - have);
      }
    }
    if (audit && !st.audit_records.empty()) {
      // append_batch reassigns consecutive sequence numbers from 0, so the
      // preloaded prefix and every later record keep the original seqs.
      auto prefix = st.audit_records;
      audit->append_batch(prefix);
    }
    start_step = st.next_step;
  }

  // Static mode: the industry practice the paper compares against — every
  // server group gets a dedicated machine sized for a full game server
  // (capacity for `reference_players`), provisioned once and held forever.
  // A restored run skips it: the one-shot allocations are in the snapshot.
  if (config.mode == AllocationMode::kStatic &&
      config.restore_from == nullptr) {
    if (have_faults) {
      for (std::size_t d = 0; d < ledgers.size(); ++d) {
        ledgers[d].set_capacity_fraction(schedule.capacity_fraction_at(d, 0));
      }
    }
    const obs::PhaseScope scope(rec, "static_allocate", 0);
    for (std::size_t idx : order) {
      DemandUnit& unit = units[idx];
      const auto& load = config.games[unit.game_id].load;
      const auto full_servers = load.demand(load.reference_players) *
                                static_cast<double>(unit.groups.size());
      obs::AuditRecord ar;
      if (audit) {
        ar.kind = obs::AuditKind::kStatic;
        ar.game = static_cast<std::uint32_t>(unit.game_id);
        ar.region = unit.region_name;
        ar.predicted_players = load.reference_players *
                               static_cast<double>(unit.groups.size());
        ar.demand_cpu = full_servers.cpu();
        ar.requested_cpu = full_servers.cpu();
      }
      const auto unmet =
          try_allocate(unit, full_servers, 0,
                       std::numeric_limits<std::size_t>::max(),
                       audit ? &ar : nullptr);
      result.unplaced_cpu_unit_steps +=
          unmet.cpu() * static_cast<double>(steps);
      if (audit) {
        ar.unmet_cpu = unmet.cpu();
        audit_backfill[idx].push_back(audit_batch.size());
        audit_batch.push_back(std::move(ar));
      }
    }
  }

  // Live telemetry: one sample vector reused every step (metric names are
  // fixed up front, so per-step sampling rewrites values and never
  // allocates). Only built when the recorder has a time-series store or
  // alert engine attached; sampling reads simulation state and never
  // feeds back into it, so runs stay bit-identical either way.
  const bool live = rec != nullptr && rec->live();
  std::vector<obs::Sample> live_samples;
  std::size_t live_game_base = 0;
  if (live) {
    live_samples.push_back({"core.allocated_cpu", 0.0});
    live_samples.push_back({"core.demand_cpu", 0.0});
    live_samples.push_back({"core.underalloc_frac", 0.0});
    live_samples.push_back({"core.overalloc_frac", 0.0});
    live_samples.push_back({"core.predictor_abs_err", 0.0});
    live_samples.push_back({"core.unplaced_cpu_unit_steps", 0.0});
    live_samples.push_back({"sla.availability_min_pct", 100.0});
    live_game_base = live_samples.size();
    for (const auto& game : config.games) {
      live_samples.push_back({"sla.availability_pct." + game.name, 100.0});
    }
  }

  // Snapshot every loop-carried value at a step boundary (`next_step`
  // steps are complete) and hand it to the sink. Runs on the simulation
  // thread between steps, so no state is mid-mutation.
  auto capture_checkpoint = [&](std::size_t next_step) {
    CheckpointState st;
    st.next_step = next_step;
    st.steps = steps;
    st.next_allocation_id = next_allocation_id;
    st.unplaced_cpu_unit_steps = result.unplaced_cpu_unit_steps;
    st.total_cost = result.total_cost;
    st.fault_events = schedule.events();
    st.ledgers.reserve(ledgers.size());
    for (std::size_t d = 0; d < ledgers.size(); ++d) {
      LedgerCheckpoint lc;
      lc.in_use = ledgers[d].in_use();
      lc.capacity_fraction = ledgers[d].capacity_fraction();
      lc.cpu_sum = dc_cpu_sum[d];
      lc.cpu_peak = dc_cpu_peak[d];
      lc.origin_sum = dc_origin_sum[d];
      st.ledgers.push_back(std::move(lc));
    }
    st.units.reserve(units.size());
    for (const auto& unit : units) {
      UnitCheckpoint uc;
      uc.game_id = unit.game_id;
      uc.region = unit.region_name;
      uc.allocated = unit.allocated;
      uc.allocations = unit.allocations;
      uc.backoff = unit.backoff.entries();
      uc.groups.reserve(unit.groups.size());
      for (const auto& stream : unit.groups) {
        GroupCheckpoint gc;
        if (stream.predictor) {
          gc.predictor = std::string(stream.predictor->name());
          stream.predictor->save_state(gc.state);
        }
        gc.last_prediction = stream.last_prediction;
        gc.abs_error_ewma = stream.abs_error_ewma;
        uc.groups.push_back(std::move(gc));
      }
      st.units.push_back(std::move(uc));
    }
    st.step_metrics = result.metrics.step_metrics();
    st.game_step_metrics.reserve(result.games.size());
    for (const auto& game : result.games) {
      st.game_step_metrics.push_back(game.metrics.step_metrics());
    }
    st.overall_sla = overall_sla.state();
    st.game_sla.reserve(game_sla.size());
    for (const auto& tracker : game_sla) {
      st.game_sla.push_back(tracker.state());
    }
    if (rec) st.counters = rec->snapshot().counters;
    if (audit) st.audit_records = audit->records();
    config.checkpoint_sink(st);
  };

  // Reused per-step scratch: the padded demand of every unit, the fault
  // flags of units that lost capacity this step, and the per-game metric
  // slots — all hoisted out of the loop so the step phases allocate
  // nothing (see the hot-begin regions and the bench allocs/step gate).
  std::vector<util::ResourceVector> demands(units.size());
  std::vector<char> lost_capacity(units.size(), 0);
  std::vector<StepMetrics> per_game(config.games.size());

  std::size_t completed = steps;
  for (std::size_t t = start_step; t < steps; ++t) {
    const obs::PhaseScope step_scope(rec, "step", t, "step");
    if (have_faults) {
      // Apply this step's fault state: capacity fractions on every ledger,
      // begin/end markers and a downed-center gauge for the recorder.
      for (std::size_t d = 0; d < ledgers.size(); ++d) {
        ledgers[d].set_capacity_fraction(schedule.capacity_fraction_at(d, t));
      }
      if (rec) {
        for (const auto& ev : schedule.events()) {
          if (ev.from_step == t) {
            rec->count("fault.begun");
            rec->instant("fault.begin", "fault", t,
                         {{"kind", std::string(fault_kind_name(ev.kind))},
                          {"dc", ledgers[ev.dc_index].spec().name},
                          {"severity", std::to_string(ev.severity)},
                          {"until_step", std::to_string(ev.to_step)}});
          }
          if (ev.to_step == t) {
            rec->instant("fault.end", "fault", t,
                         {{"kind", std::string(fault_kind_name(ev.kind))},
                          {"dc", ledgers[ev.dc_index].spec().name}});
          }
        }
        double down = 0.0;
        for (std::size_t d = 0; d < ledgers.size(); ++d) {
          if (schedule.outage_at(d, t)) down += 1.0;
        }
        if (down > 0.0) rec->count("fault.dc_down_steps", down);
      }
    }
    std::fill(game_shed.begin(), game_shed.end(), 0);

    if (config.mode == AllocationMode::kDynamic) {
      {
        // Phase 1 — predict: one online prediction per server group (§IV-B),
        // sharded across workers when config.threads > 1 (the phase is the
        // provisioning loop's scaling bottleneck, Fig. 6). run() joins all
        // shards before returning, so phase 2 always reads complete slots.
        // mmog-lint: hot-begin(predict)
        const obs::PhaseScope scope(rec, "predict", t);
        predict_runner.run(predict_slots, rec);
        if (rec) rec->count("predict.issued", static_cast<double>(total_groups));
        // mmog-lint: hot-end
      }

      {
        // Phase 2 — safety padding: region demand = sum of per-group
        // predictions through the (nonlinear) load model, each padded by the
        // predictor's own recent error (the §V-C over-allocation mechanism).
        // mmog-lint: hot-begin(pad)
        const obs::PhaseScope scope(rec, "pad", t);
        for (std::size_t idx : order) {
          DemandUnit& unit = units[idx];
          const auto& load = config.games[unit.game_id].load;
          util::ResourceVector demand{};
          for (const auto& stream : unit.groups) {
            const double padded =
                stream.last_prediction +
                config.safety_factor * stream.abs_error_ewma;
            demand += load.demand(padded);
          }
          if (resilient && res_policy.standby_reserve_servers > 0.0) {
            // N+k standby reserve: hold spare full servers so losing up to
            // k servers' worth of rented capacity costs no shortfall.
            demand += load.demand(load.reference_players) *
                      res_policy.standby_reserve_servers;
          }
          demands[idx] = demand;
          if (audit) {
            // The safety margin (§V-C) is whatever the padding added on top
            // of the raw prediction through the load model — including the
            // N+k standby reserve when enabled.
            double predicted = 0.0;
            util::ResourceVector raw{};
            for (const auto& stream : unit.groups) {
              predicted += stream.last_prediction;
              raw += load.demand(stream.last_prediction);
            }
            audit_predicted[idx] = predicted;
            audit_margin[idx] = demand.cpu() - raw.cpu();
          }
          if (rec) {
            rec->count("request.padded");
            rec->detail_instant("request.padded", "demand", t,
                                {{"region", unit.region_name},
                                 {"cpu", std::to_string(demand.cpu())}});  // mmog-lint: allow(hot-string)
          }
        }
        // mmog-lint: hot-end
      }

      {
        // Phase 3 — matching: release what the prediction no longer needs,
        // then acquire the missing difference (§II-C request-offer matching).
        // mmog-lint: hot-begin(match)
        const obs::PhaseScope scope(rec, "match", t);
        for (std::size_t idx : order) {
          DemandUnit& unit = units[idx];
          const auto& demand = demands[idx];
          obs::AuditRecord ar;
          if (audit) {
            ar.step = t;
            ar.kind = obs::AuditKind::kMatch;
            ar.game = static_cast<std::uint32_t>(unit.game_id);
            ar.region = unit.region_name;
            ar.predicted_players = audit_predicted[idx];
            ar.margin_cpu = audit_margin[idx];
            ar.demand_cpu = demand.cpu();
            ar.held_cpu = unit.allocated.cpu();
          }

          // Release expired allocations no longer needed (largest first so
          // coarse chunks go back to the pool as soon as possible).
          bool released = true;
          while (released) {
            released = false;
            std::size_t best = unit.allocations.size();
            double best_cpu = 0.0;
            for (std::size_t a = 0; a < unit.allocations.size(); ++a) {
              const auto& alloc = unit.allocations[a];
              if (!alloc.releasable_at(t)) continue;
              const auto rest = unit.allocated - alloc.amount;
              if (!rest.clamped_non_negative().covers(demand)) continue;
              if (rest.cpu() + 1e-9 < demand.cpu()) continue;
              if (alloc.amount.cpu() > best_cpu) {
                best_cpu = alloc.amount.cpu();
                best = a;
              }
            }
            if (best < unit.allocations.size()) {
              const auto amount = unit.allocations[best].amount;
              ledgers[unit.allocations[best].dc_index].release(amount);
              if (rec) {
                rec->count("alloc.released");
                rec->instant(
                    "alloc.released", "alloc", t,
                    {{"dc", ledgers[unit.allocations[best].dc_index]
                                .spec()
                                .name},
                     {"cpu", std::to_string(amount.cpu())},  // mmog-lint: allow(hot-string)
                     {"id", std::to_string(unit.allocations[best].id)}});  // mmog-lint: allow(hot-string)
              }
              unit.allocated -= amount;
              unit.allocated = unit.allocated.clamped_non_negative();
              unit.allocations.erase(unit.allocations.begin() +
                                     static_cast<std::ptrdiff_t>(best));
              released = true;
              if (audit) ar.released_cpu += amount.cpu();
            }
          }

          // Acquire what the prediction says is missing.
          if (!unit.allocated.covers(demand)) {
            const auto need = demand - unit.allocated;
            if (audit) {
              ar.requested_cpu = need.clamped_non_negative().cpu();
            }
            auto unmet = try_allocate(unit, need, t, 1, audit ? &ar : nullptr);
            if (unmet.cpu() > 1e-9 && resilient &&
                res_policy.shed_low_priority) {
              // Total supply cannot cover demand: degrade lower-priority
              // games to keep this one whole.
              if (shed_for(unit, unmet, t)) {
                unmet = try_allocate(unit, unmet, t, 1,
                                     audit ? &ar : nullptr);
              }
            }
            if (audit) ar.unmet_cpu = unmet.cpu();
            result.unplaced_cpu_unit_steps += unmet.cpu();
          }
          // Only decisions that acted make a record — a unit whose holding
          // already matches its demand stays silent, keeping trails compact.
          if (audit && (ar.released_cpu > 0.0 || ar.requested_cpu > 0.0)) {
            audit_backfill[idx].push_back(audit_batch.size());
            audit_batch.push_back(std::move(ar));
          }
        }
        // mmog-lint: hot-end
      }
    }

    // Failure injection: a center going down mid-interval takes its
    // allocations with it; without the resilience policy the operator can
    // only re-place the demand at the next 2-minute step, which is the
    // shortfall the metrics observe.
    // mmog-lint: hot-begin(fault-inject)
    std::fill(lost_capacity.begin(), lost_capacity.end(), 0);
    if (have_faults) {
      for (std::size_t u = 0; u < units.size(); ++u) {
        DemandUnit& unit = units[u];
        for (std::size_t a = unit.allocations.size(); a-- > 0;) {
          const std::size_t d = unit.allocations[a].dc_index;
          const char* reason = nullptr;
          if (schedule.outage_at(d, t)) {
            reason = "outage";
          } else if (latency_violated(unit, d, t)) {
            reason = "latency";
          }
          if (!reason) continue;
          force_release(u, a, t, reason);
          lost_capacity[u] = 1;
        }
      }
      // Partial capacity loss: evict newest-first until the survivors fit
      // into the degraded capacity (no preemption granularity below one
      // allocation, §II-B).
      for (std::size_t d = 0; d < ledgers.size(); ++d) {
        while (ledgers[d].over_capacity()) {
          std::size_t victim_unit = units.size();
          std::size_t victim_alloc = 0;
          std::size_t victim_id = 0;
          for (std::size_t u = 0; u < units.size(); ++u) {
            const auto& allocations = units[u].allocations;
            for (std::size_t a = 0; a < allocations.size(); ++a) {
              if (allocations[a].dc_index != d) continue;
              if (allocations[a].id >= victim_id) {
                victim_unit = u;
                victim_alloc = a;
                victim_id = allocations[a].id;
              }
            }
          }
          if (victim_unit >= units.size()) break;
          force_release(victim_unit, victim_alloc, t, "capacity");
          lost_capacity[victim_unit] = 1;
        }
      }
    }
    // mmog-lint: hot-end

    // Resilient re-placement: what a fault took this step is re-requested
    // within the same 2-minute interval — the failed center is excluded by
    // its backoff window, so the walk goes straight to the survivors.
    if (resilient && config.mode == AllocationMode::kDynamic) {
      bool any_lost = false;
      for (const char lost : lost_capacity) any_lost |= (lost != 0);
      if (any_lost) {
        // mmog-lint: hot-begin(replace)
        const obs::PhaseScope scope(rec, "replace", t);
        for (std::size_t idx : order) {
          if (!lost_capacity[idx]) continue;
          DemandUnit& unit = units[idx];
          const auto& demand = demands[idx];
          if (unit.allocated.covers(demand)) continue;
          if (rec) rec->count("resilience.retry");
          obs::AuditRecord ar;
          if (audit) {
            ar.step = t;
            ar.kind = obs::AuditKind::kReplace;
            ar.game = static_cast<std::uint32_t>(unit.game_id);
            ar.region = unit.region_name;
            ar.predicted_players = audit_predicted[idx];
            ar.margin_cpu = audit_margin[idx];
            ar.demand_cpu = demand.cpu();
            ar.held_cpu = unit.allocated.cpu();
            ar.requested_cpu =
                (demand - unit.allocated).clamped_non_negative().cpu();
          }
          auto unmet = try_allocate(unit, demand - unit.allocated, t, 1,
                                    audit ? &ar : nullptr);
          if (unmet.cpu() > 1e-9 && res_policy.shed_low_priority) {
            if (shed_for(unit, unmet, t)) {
              unmet = try_allocate(unit, unmet, t, 1, audit ? &ar : nullptr);
            }
          }
          if (unmet.cpu() <= 1e-9) {
            if (rec) rec->count("resilience.replaced");
          }
          result.unplaced_cpu_unit_steps += unmet.cpu();
          if (audit) {
            ar.unmet_cpu = unmet.cpu();
            audit_backfill[idx].push_back(audit_batch.size());
            audit_batch.push_back(std::move(ar));
          }
        }
        // mmog-lint: hot-end
      }
    }

    // Phase 4 — metric accounting: the actual load materializes; score the
    // step (globally and per game).
    // mmog-lint: hot-begin(account)
    const obs::PhaseScope account_scope(rec, "account", t);
    StepMetrics step_metrics;
    step_metrics.machines = total_groups;
    std::fill(per_game.begin(), per_game.end(), StepMetrics{});
    for (std::size_t u = 0; u < units.size(); ++u) {
      DemandUnit& unit = units[u];
      const auto& load = config.games[unit.game_id].load;
      util::ResourceVector lambda{};
      double actual_players_total = 0.0;
      for (auto& stream : unit.groups) {
        const double actual = (*stream.players)[t];
        actual_players_total += actual;
        lambda += load.demand(actual);
        if (stream.predictor) {
          constexpr double kErrorEwmaAlpha = 0.05;
          stream.abs_error_ewma =
              (1.0 - kErrorEwmaAlpha) * stream.abs_error_ewma +
              kErrorEwmaAlpha * std::abs(actual - stream.last_prediction);
          stream.predictor->observe(actual);
        }
      }
      // Only allocations past their setup delay serve load.
      util::ResourceVector usable = unit.allocated;
      if (config.provisioning_delay_steps > 0) {
        usable = {};
        for (const auto& alloc : unit.allocations) {
          if (alloc.usable_at(t)) usable += alloc.amount;
        }
      }
      if (audit) {
        // The step's decisions were made on predictions; now the actual
        // load is known, close the loop in their records.
        for (const std::size_t rec_idx : audit_backfill[u]) {
          audit_batch[rec_idx].actual_players = actual_players_total;
        }
      }
      step_metrics.allocated += usable;
      step_metrics.used += lambda;
      auto& game_step = per_game[unit.game_id];
      game_step.allocated += usable;
      game_step.used += lambda;
      game_step.machines += unit.groups.size();
      for (std::size_t i = 0; i < util::kResourceKinds; ++i) {
        const double short_i = std::min(usable.v[i] - lambda.v[i], 0.0);
        step_metrics.shortfall.v[i] += short_i;
        game_step.shortfall.v[i] += short_i;
      }
    }
    if (rec &&
        step_metrics.significant_under_allocation(config.event_threshold_pct)) {
      rec->count("event.under_allocation");
      rec->instant(
          "event.under_allocation", "event", t,
          {{"under_pct",
            std::to_string(  // mmog-lint: allow(hot-string)
                step_metrics.under_allocation_pct(util::ResourceKind::kCpu))}});
    }
    result.metrics.add(step_metrics);
    if (result.games.empty()) {
      result.games.resize(config.games.size());
      for (std::size_t g = 0; g < config.games.size(); ++g) {
        result.games[g].name = config.games[g].name;
      }
    }
    overall_sla.observe(
        step_metrics.significant_under_allocation(config.event_threshold_pct));
    for (std::size_t g = 0; g < config.games.size(); ++g) {
      result.games[g].metrics.add(per_game[g]);
      const auto transition = game_sla[g].observe(
          per_game[g].significant_under_allocation(config.event_threshold_pct),
          game_shed[g] != 0);
      if (rec && have_faults &&
          transition != SlaTracker::Transition::kNone) {
        rec->instant(transition == SlaTracker::Transition::kBreachBegan
                         ? "sla.breach.begin"
                         : "sla.breach.end",
                     "sla", t, {{"game", config.games[g].name}});
      }
    }
    // mmog-lint: hot-end

    if (live) {
      live_samples[0].value = step_metrics.allocated.cpu();
      live_samples[1].value = step_metrics.used.cpu();
      live_samples[2].value =
          -step_metrics.under_allocation_pct(util::ResourceKind::kCpu) /
          100.0;
      live_samples[3].value =
          step_metrics.over_allocation_pct(util::ResourceKind::kCpu) / 100.0;
      double err_sum = 0.0;
      for (const auto& unit : units) {
        for (const auto& stream : unit.groups) {
          err_sum += stream.abs_error_ewma;
        }
      }
      live_samples[4].value =
          total_groups > 0 ? err_sum / static_cast<double>(total_groups)
                           : 0.0;
      live_samples[5].value = result.unplaced_cpu_unit_steps;
      double min_avail = 100.0;
      for (std::size_t g = 0; g < config.games.size(); ++g) {
        const double avail = game_sla[g].stats().availability_pct();
        live_samples[live_game_base + g].value = avail;
        min_avail = std::min(min_avail, avail);
      }
      live_samples[6].value = min_avail;
      rec->sample_step(t, live_samples);
    }

    for (std::size_t d = 0; d < ledgers.size(); ++d) {
      const double cpu = ledgers[d].in_use().cpu();
      dc_cpu_sum[d] += cpu;
      dc_cpu_peak[d] = std::max(dc_cpu_peak[d], cpu);
      result.total_cost += cpu *
                           ledgers[d].spec().policy.cpu_unit_price_per_hour *
                           (util::kSampleStepSeconds / 3600.0);
    }
    for (const auto& unit : units) {
      for (const auto& alloc : unit.allocations) {
        dc_origin_sum[alloc.dc_index][unit.region_name] += alloc.amount.cpu();
      }
    }
    if (audit) {
      audit->append_batch(audit_batch);
      for (auto& list : audit_backfill) list.clear();
    }
    if (profiler) {
      profiler->note_step(rec->registry(),
                          static_cast<std::uint64_t>(t + 1 - start_step));
    }

    // Step t is complete (audit flushed, accumulators final): a clean
    // boundary for checkpoint capture and cooperative shutdown.
    const bool stop_requested =
        config.stop_flag != nullptr &&
        config.stop_flag->load(std::memory_order_relaxed);
    if (config.checkpoint_sink &&
        ((config.checkpoint_every_steps > 0 &&
          (t + 1) % config.checkpoint_every_steps == 0) ||
         stop_requested)) {
      capture_checkpoint(t + 1);
    }
    if (stop_requested) {
      completed = t + 1;
      result.interrupted = true;
      break;
    }
  }

  result.steps = completed;
  result.sla = overall_sla.stats();
  for (std::size_t g = 0;
       g < config.games.size() && g < result.games.size(); ++g) {
    result.games[g].sla = game_sla[g].stats();
  }

  result.datacenters.reserve(ledgers.size());
  for (std::size_t d = 0; d < ledgers.size(); ++d) {
    DataCenterUsage usage;
    usage.name = ledgers[d].spec().name;
    usage.capacity_cpu = ledgers[d].spec().total_capacity().cpu();
    usage.avg_allocated_cpu = dc_cpu_sum[d] / static_cast<double>(completed);
    usage.peak_allocated_cpu = dc_cpu_peak[d];
    for (const auto& [origin, sum] : dc_origin_sum[d]) {
      usage.avg_allocated_by_origin[origin] =
          sum / static_cast<double>(completed);
    }
    result.datacenters.push_back(std::move(usage));
  }
  return result;
}

std::vector<std::size_t> recovery_lag_steps(
    const MetricsAccumulator& metrics,
    const std::vector<fault::FaultEvent>& events, double threshold_pct) {
  const auto& steps = metrics.step_metrics();
  std::vector<std::size_t> lags;
  lags.reserve(events.size());
  for (const auto& ev : events) {
    if (ev.to_step >= steps.size()) continue;  // recovers outside the run
    std::size_t lag = kNeverRecovered;
    for (std::size_t t = ev.to_step; t < steps.size(); ++t) {
      if (!steps[t].significant_under_allocation(threshold_pct)) {
        lag = t - ev.to_step;
        break;
      }
    }
    lags.push_back(lag);
  }
  return lags;
}

std::shared_ptr<const predict::NeuralModel> neural_model_from_workload(
    const trace::WorldTrace& workload, std::size_t lead_in_steps,
    predict::NeuralConfig config, std::size_t max_training_groups) {
  std::vector<util::TimeSeries> histories;
  for (const auto& region : workload.regions) {
    for (const auto& group : region.groups) {
      if (histories.size() >= max_training_groups) break;
      histories.push_back(group.players.slice(0, lead_in_steps));
    }
    if (histories.size() >= max_training_groups) break;
  }
  if (histories.empty()) {
    throw std::invalid_argument(
        "neural_factory_from_workload: empty workload");
  }
  return std::make_shared<const predict::NeuralModel>(
      predict::NeuralModel::fit(config, histories));
}

predict::PredictorFactory neural_factory_from_model(
    std::shared_ptr<const predict::NeuralModel> model) {
  if (!model) {
    throw std::invalid_argument("neural_factory_from_model: null model");
  }
  return [model = std::move(model)] {
    return std::make_unique<predict::NeuralPredictor>(model);
  };
}

predict::PredictorFactory neural_factory_from_workload(
    const trace::WorldTrace& workload, std::size_t lead_in_steps,
    predict::NeuralConfig config, std::size_t max_training_groups) {
  return neural_factory_from_model(neural_model_from_workload(
      workload, lead_in_steps, config, max_training_groups));
}

}  // namespace mmog::core
